// Command matchbench runs the experiment suite (E1–E15, EA, ES of
// DESIGN.md section 4) and prints one table per experiment. Each table
// regenerates a quantitative claim or figure of Ahn–Guha (SPAA 2015).
//
// Usage:
//
//	matchbench                 # run everything at full scale
//	matchbench -quick          # CI-sized runs
//	matchbench -exp e1,e6,e7   # selected experiments
//	matchbench -seed 42
//	matchbench -workers 4      # shard the pipeline (0 = GOMAXPROCS)
//	matchbench -json -rev abc  # also write BENCH_abc.json
//
// With -json the run is additionally captured as a machine-readable
// BENCH_<rev>.json (override the path with -jsonpath): every table's
// rows plus per-experiment wall time, so successive revisions accumulate
// a perf trajectory that tooling can diff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/parallel"
)

// benchDoc is the BENCH_<rev>.json schema.
type benchDoc struct {
	Rev             string      `json:"rev"`
	GoVersion       string      `json:"goVersion"`
	GOMAXPROCS      int         `json:"gomaxprocs"`
	Quick           bool        `json:"quick"`
	Seed            uint64      `json:"seed"`
	Workers         int         `json:"workers"`
	WorkersResolved int         `json:"workersResolved"`
	TotalWallMS     float64     `json:"totalWallMs"`
	Experiments     []benchItem `json:"experiments"`
}

type benchItem struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	WallMS  float64    `json:"wallMs"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

func main() {
	quick := flag.Bool("quick", false, "shrink experiment sizes")
	exps := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	seed := flag.Uint64("seed", 1, "base random seed")
	workers := flag.Int("workers", 0, "pipeline workers (0 = GOMAXPROCS, 1 = sequential)")
	jsonOut := flag.Bool("json", false, "also write a machine-readable BENCH_<rev>.json")
	rev := flag.String("rev", "dev", "revision label for the JSON capture")
	jsonPath := flag.String("jsonpath", "", "override the JSON capture path (default BENCH_<rev>.json)")
	flag.Parse()

	cfg := bench.Config{Quick: *quick, Seed: *seed, Workers: *workers}
	ids := bench.IDs()
	if *exps != "" {
		ids = ids[:0]
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := bench.ByID(id); !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (e1..e15, ea, es)\n", id)
				os.Exit(2)
			}
			ids = append(ids, strings.ToLower(id))
		}
	}

	doc := benchDoc{
		Rev:             *rev,
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Quick:           *quick,
		Seed:            *seed,
		Workers:         *workers,
		WorkersResolved: parallel.Workers(*workers),
	}
	for _, id := range ids {
		fn, _ := bench.ByID(id)
		start := time.Now()
		tab := fn(cfg)
		wallMS := float64(time.Since(start).Microseconds()) / 1000
		tab.Print(os.Stdout)
		doc.TotalWallMS += wallMS
		doc.Experiments = append(doc.Experiments, benchItem{
			ID: tab.ID, Title: tab.Title, WallMS: wallMS,
			Columns: tab.Columns, Rows: tab.Rows, Notes: tab.Notes,
		})
	}

	if *jsonOut {
		path := *jsonPath
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", *rev)
		}
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encode: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d experiments, %.0f ms total)\n", path, len(doc.Experiments), doc.TotalWallMS)
	}
}
