// Command matchbench runs the experiment suite (E1–E18, EA, ES of
// DESIGN.md section 4) and prints one table per experiment. Each table
// regenerates a quantitative claim or figure of Ahn–Guha (SPAA 2015).
//
// Usage:
//
//	matchbench                 # run everything at full scale
//	matchbench -quick          # CI-sized runs
//	matchbench -exp e1,e6,e7   # selected experiments
//	matchbench -seed 42
//	matchbench -workers 4      # shard the pipeline (0 = GOMAXPROCS)
//	matchbench -json -rev abc  # also write BENCH_abc.json
//	matchbench -compare BENCH_pr3.json BENCH_pr4.json
//	matchbench -throughput     # serving layer only (E17: sessions, warm duals, Pool)
//	matchbench -exp e18        # HTTP serving layer (matchd) over a socket
//
// With -json the run is additionally captured as a machine-readable
// BENCH_<rev>.json (override the path with -jsonpath): every table's
// rows plus per-experiment wall time, so successive revisions accumulate
// a perf trajectory that tooling can diff. -compare diffs two such
// captures — per-experiment wall-time deltas with regression flags — so
// the committed BENCH_<rev>.json files form a usable trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/parallel"
)

// benchDoc is the BENCH_<rev>.json schema.
type benchDoc struct {
	Rev             string      `json:"rev"`
	GoVersion       string      `json:"goVersion"`
	GOMAXPROCS      int         `json:"gomaxprocs"`
	Quick           bool        `json:"quick"`
	Seed            uint64      `json:"seed"`
	Workers         int         `json:"workers"`
	WorkersResolved int         `json:"workersResolved"`
	TotalWallMS     float64     `json:"totalWallMs"`
	Experiments     []benchItem `json:"experiments"`
}

type benchItem struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	WallMS  float64    `json:"wallMs"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

func main() {
	quick := flag.Bool("quick", false, "shrink experiment sizes")
	exps := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	seed := flag.Uint64("seed", 1, "base random seed")
	workers := flag.Int("workers", 0, "pipeline workers (0 = GOMAXPROCS, 1 = sequential)")
	jsonOut := flag.Bool("json", false, "also write a machine-readable BENCH_<rev>.json")
	rev := flag.String("rev", "dev", "revision label for the JSON capture")
	jsonPath := flag.String("jsonpath", "", "override the JSON capture path (default BENCH_<rev>.json)")
	compare := flag.String("compare", "", "diff two BENCH captures: -compare OLD.json NEW.json (no experiments are run)")
	throughput := flag.Bool("throughput", false, "run only the serving-throughput experiment (shorthand for -exp e17)")
	flag.Parse()

	if *compare != "" {
		newPath := flag.Arg(0)
		if newPath == "" {
			fmt.Fprintln(os.Stderr, "usage: matchbench -compare OLD.json NEW.json")
			os.Exit(2)
		}
		if err := runCompare(os.Stdout, *compare, newPath); err != nil {
			fmt.Fprintf(os.Stderr, "compare: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed, Workers: *workers}
	ids := bench.IDs()
	if *throughput {
		if *exps != "" {
			fmt.Fprintln(os.Stderr, "-throughput and -exp are mutually exclusive")
			os.Exit(2)
		}
		*exps = "e17"
	}
	if *exps != "" {
		ids = ids[:0]
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := bench.ByID(id); !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (e1..e18, ea, es)\n", id)
				os.Exit(2)
			}
			ids = append(ids, strings.ToLower(id))
		}
	}

	doc := benchDoc{
		Rev:             *rev,
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Quick:           *quick,
		Seed:            *seed,
		Workers:         *workers,
		WorkersResolved: parallel.Workers(*workers),
	}
	for _, id := range ids {
		fn, _ := bench.ByID(id)
		start := time.Now()
		tab := fn(cfg)
		wallMS := float64(time.Since(start).Microseconds()) / 1000
		tab.Print(os.Stdout)
		doc.TotalWallMS += wallMS
		doc.Experiments = append(doc.Experiments, benchItem{
			ID: tab.ID, Title: tab.Title, WallMS: wallMS,
			Columns: tab.Columns, Rows: tab.Rows, Notes: tab.Notes,
		})
	}

	writeCapture(*jsonOut, *jsonPath, *rev, doc)
}

func writeCapture(jsonOut bool, jsonPath, rev string, doc benchDoc) {
	if jsonOut {
		path := jsonPath
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", rev)
		}
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encode: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d experiments, %.0f ms total)\n", path, len(doc.Experiments), doc.TotalWallMS)
	}
}

// regressionFactor is how much slower an experiment must get (with a
// small absolute floor to ignore timer noise on sub-millisecond runs)
// before -compare flags it.
const (
	regressionFactor  = 1.25
	regressionFloorMS = 2.0
)

// loadCapture reads one BENCH_<rev>.json document.
func loadCapture(path string) (benchDoc, error) {
	var doc benchDoc
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// runCompare diffs two BENCH captures: per-experiment wall-time deltas
// with regression/improvement flags, plus totals. Experiments present in
// only one capture are listed as added/removed — a diff across revisions
// that grew the suite stays readable.
func runCompare(w io.Writer, oldPath, newPath string) error {
	oldDoc, err := loadCapture(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := loadCapture(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]benchItem, len(oldDoc.Experiments))
	for _, it := range oldDoc.Experiments {
		oldBy[it.ID] = it
	}
	fmt.Fprintf(w, "compare %s (%s) -> %s (%s)\n", oldDoc.Rev, oldPath, newDoc.Rev, newPath)
	fmt.Fprintf(w, "%-6s %12s %12s %9s  %s\n", "exp", oldDoc.Rev+" ms", newDoc.Rev+" ms", "delta", "flag")
	regressions := 0
	for _, it := range newDoc.Experiments {
		old, ok := oldBy[it.ID]
		if !ok {
			fmt.Fprintf(w, "%-6s %12s %12.1f %9s  added\n", it.ID, "-", it.WallMS, "-")
			continue
		}
		delete(oldBy, it.ID)
		delta := it.WallMS - old.WallMS
		pct := 0.0
		if old.WallMS > 0 {
			pct = 100 * delta / old.WallMS
		}
		flag := ""
		switch {
		case it.WallMS > old.WallMS*regressionFactor && delta > regressionFloorMS:
			flag = "REGRESSION"
			regressions++
		case old.WallMS > it.WallMS*regressionFactor && -delta > regressionFloorMS:
			flag = "improved"
		}
		fmt.Fprintf(w, "%-6s %12.1f %12.1f %+8.1f%%  %s\n", it.ID, old.WallMS, it.WallMS, pct, flag)
	}
	for _, it := range oldDoc.Experiments {
		if _, still := oldBy[it.ID]; still {
			fmt.Fprintf(w, "%-6s %12.1f %12s %9s  removed\n", it.ID, it.WallMS, "-", "-")
		}
	}
	fmt.Fprintf(w, "total  %12.1f %12.1f  (%d experiments -> %d, %d regression flags)\n",
		oldDoc.TotalWallMS, newDoc.TotalWallMS, len(oldDoc.Experiments), len(newDoc.Experiments), regressions)
	return nil
}
