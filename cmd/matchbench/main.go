// Command matchbench runs the experiment suite (E1–E15, EA, ES of
// DESIGN.md section 4) and prints one table per experiment. Each table
// regenerates a quantitative claim or figure of Ahn–Guha (SPAA 2015).
//
// Usage:
//
//	matchbench                 # run everything at full scale
//	matchbench -quick          # CI-sized runs
//	matchbench -exp e1,e6,e7   # selected experiments
//	matchbench -seed 42
//	matchbench -workers 4      # shard the pipeline (0 = GOMAXPROCS)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "shrink experiment sizes")
	exps := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	seed := flag.Uint64("seed", 1, "base random seed")
	workers := flag.Int("workers", 0, "pipeline workers (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	cfg := bench.Config{Quick: *quick, Seed: *seed, Workers: *workers}
	if *exps == "" {
		for _, tab := range bench.All(cfg) {
			tab.Print(os.Stdout)
		}
		return
	}
	for _, id := range strings.Split(*exps, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		fn, ok := bench.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (e1..e15, ea, es)\n", id)
			os.Exit(2)
		}
		tab := fn(cfg)
		tab.Print(os.Stdout)
	}
}
