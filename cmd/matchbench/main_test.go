package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeDoc writes a minimal BENCH capture for compare tests.
func writeDoc(t *testing.T, path string, doc benchDoc) {
	t.Helper()
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCompareCaptures pins the -compare contract: per-experiment deltas,
// a regression flag past the threshold, added/removed rows for suite
// growth, and totals.
func TestCompareCaptures(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeDoc(t, oldPath, benchDoc{Rev: "pr3", TotalWallMS: 130, Experiments: []benchItem{
		{ID: "E1", WallMS: 100},
		{ID: "E2", WallMS: 20},
		{ID: "E3", WallMS: 10},
	}})
	writeDoc(t, newPath, benchDoc{Rev: "pr4", TotalWallMS: 165, Experiments: []benchItem{
		{ID: "E1", WallMS: 101}, // within noise: no flag
		{ID: "E2", WallMS: 60},  // 3x slower: REGRESSION
		{ID: "E16", WallMS: 4},  // new experiment: added
	}})
	var out bytes.Buffer
	if err := runCompare(&out, oldPath, newPath); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"REGRESSION", "added", "removed", "pr3", "pr4", "1 regression flags"} {
		if !strings.Contains(got, want) {
			t.Errorf("compare output missing %q:\n%s", want, got)
		}
	}
	if e1 := lineOf(got, "E1"); strings.Contains(e1, "REGRESSION") {
		t.Errorf("E1 within noise must not be flagged: %q", e1)
	}
	if e3 := lineOf(got, "E3"); !strings.Contains(e3, "removed") {
		t.Errorf("E3 missing from new capture must be 'removed': %q", e3)
	}
}

func TestCompareMissingFile(t *testing.T) {
	if err := runCompare(&bytes.Buffer{}, "/no/such/a.json", "/no/such/b.json"); err == nil {
		t.Fatal("expected an error for missing captures")
	}
}

// lineOf returns the first output line starting with the given id.
func lineOf(s, id string) string {
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, id+" ") {
			return line
		}
	}
	return ""
}
