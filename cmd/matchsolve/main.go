// Command matchsolve runs the dual-primal (1-ε)-approximate weighted
// nonbipartite b-matching solver on a generated or file-based instance
// and prints the matching, the dual certificate and the resource stats.
//
// Instances come from a generator or from -input with a -format:
//
//	matchsolve -n 200 -m 2000 -dist uniform -eps 0.25 -p 2
//	matchsolve -input edges.txt -eps 0.125            # lines: u v w
//	matchsolve -input inst.col -format dimacs         # DIMACS edge format
//	matchsolve -input big.rbg -format bin             # out-of-core binary
//	matchsolve -n 100 -m 800 -verify                  # compare to exact blossom
//	matchsolve -input edges.txt -convert big.rbg      # text -> binary (RBG2), no solve
//	matchsolve -input old.rbg -format bin -convert new.rbg  # migrate RBG1 -> RBG2
//	matchsolve -input e.txt -convert g.rbg -codec rbg1      # force the fixed-record codec
//	matchsolve -n 200 -m 2000 -json                   # machine-readable result
//	matchsolve -n 200 -m 2000 -max-rounds 2           # enforce a round budget
//	matchsolve -algo list                             # enumerate the registry
//	matchsolve -n 200 -m 2000 -algo greedy            # a different substrate
//	matchsolve -n 200 -m 2000 -repeat 5 -warm-duals   # session reuse + warm-started duals
//
// Every algorithm in the registry (-algo list) runs under the same
// engine driver: budgets, the stats meters and context handling behave
// identically whichever substrate computes the matching.
//
// The binary format (-format bin) is solved through the file-backed
// source: edges are read in buffered passes and never fully
// materialized, so instances larger than memory work.
//
// The resource budgets (-max-passes, -max-rounds, -max-words; 0 =
// unlimited) are enforced inside the engine: when one trips, the
// best-so-far matching is still printed, the tripped axis goes to
// stderr, and the exit code is 3.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/parallel"
	"repro/internal/stream"
	"repro/match"
)

// Exit codes: 0 success, 1 operational error, 2 usage error, 3 budget
// exceeded (best-so-far result was still printed).
const exitBudget = 3

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// solveOutput is the -json document: the instance summary, the full
// public result, and — when a budget tripped — the axis details.
type solveOutput struct {
	Algorithm string `json:"algorithm"`
	Instance  struct {
		N      int `json:"n"`
		M      int `json:"m"`
		TotalB int `json:"totalB"`
	} `json:"instance"`
	Result         *match.Result      `json:"result"`
	BudgetExceeded *match.BudgetError `json:"budgetExceeded,omitempty"`
	Verification   *verification      `json:"verification,omitempty"`
}

type verification struct {
	Optimum float64 `json:"optimum"`
	Ratio   float64 `json:"ratio"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("matchsolve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 128, "vertices (generated instance)")
	m := fs.Int("m", 1024, "edges (generated instance)")
	dist := fs.String("dist", "uniform", "weight distribution: unit|uniform|powers|exp")
	wmax := fs.Float64("wmax", 100, "max weight for uniform")
	eps := fs.Float64("eps", 0.25, "accuracy epsilon")
	p := fs.Float64("p", 2, "space exponent p (> 1)")
	seed := fs.Uint64("seed", 1, "random seed")
	input := fs.String("input", "", "instance file instead of a generator")
	format := fs.String("format", "edgelist", "input format: edgelist|dimacs|bin")
	convert := fs.String("convert", "", "write the instance to this binary file and exit")
	codec := fs.String("codec", "rbg2", "binary codec for -convert: rbg2 (compressed) | rbg1 (fixed records)")
	bmax := fs.Int("bmax", 1, "random vertex capacities in [1,bmax]")
	verify := fs.Bool("verify", false, "also run the exact blossom solver and report the ratio")
	workers := fs.Int("workers", 0, "pipeline workers (0 = GOMAXPROCS, 1 = sequential; results identical)")
	jsonOut := fs.Bool("json", false, "print the result as JSON instead of text")
	maxPasses := fs.Int("max-passes", 0, "budget: metered passes over the input (0 = unlimited)")
	maxRounds := fs.Int("max-rounds", 0, "budget: adaptive sampling rounds (0 = unlimited)")
	maxWords := fs.Int("max-words", 0, "budget: peak central storage in words (0 = unlimited)")
	algo := fs.String("algo", match.DefaultAlgorithm, "matching algorithm from the registry, or 'list' to enumerate")
	repeat := fs.Int("repeat", 1, "re-solve the same source N times through one session (per-iteration lines in text mode)")
	warmDuals := fs.Bool("warm-duals", false, "with -repeat: seed each re-solve's duals from the previous solution")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *repeat < 1 {
		fmt.Fprintf(stderr, "-repeat %d must be >= 1\n", *repeat)
		return 2
	}
	if *warmDuals && *repeat < 2 {
		fmt.Fprintln(stderr, "-warm-duals requires -repeat >= 2 (there is no previous solution to seed from)")
		return 2
	}

	fail := func(formatStr string, a ...any) int {
		fmt.Fprintf(stderr, formatStr+"\n", a...)
		return 1
	}

	if *algo == "list" {
		printAlgorithms(stdout)
		return 0
	}

	// Assemble the instance behind a Source. The binary path stays
	// out-of-core; everything else materializes (text must be parsed, and
	// a generated graph here is small by construction).
	var src match.Source
	switch {
	case *input != "" && strings.ToLower(*format) == "bin":
		if *bmax > 1 {
			return fail("-bmax is not supported with -format bin: capacities live in the file (use -convert after applying them)")
		}
		fsrc, err := stream.OpenBinary(*input)
		if err != nil {
			return fail("open %s: %v", *input, err)
		}
		defer fsrc.Close()
		src = fsrc
	case *input != "":
		g, err := readTextGraph(*input, *format)
		if err != nil {
			return fail("read %s: %v", *input, err)
		}
		if *bmax > 1 {
			graph.WithRandomB(g, *bmax, false, *seed+1)
		}
		src = stream.NewEdgeStream(g)
	default:
		wc := graph.WeightConfig{Mode: graph.UniformWeights, WMax: *wmax}
		switch *dist {
		case "unit":
			wc = graph.WeightConfig{Mode: graph.UnitWeights}
		case "powers":
			wc = graph.WeightConfig{Mode: graph.PowersOf, Eps: *eps, Levels: 12}
		case "exp":
			wc = graph.WeightConfig{Mode: graph.ExpWeights, Scale: 2}
		case "uniform":
		default:
			fmt.Fprintf(stderr, "unknown -dist %q\n", *dist)
			return 2
		}
		g := graph.GNM(*n, *m, wc, *seed)
		if *bmax > 1 {
			graph.WithRandomB(g, *bmax, false, *seed+1)
		}
		src = stream.NewEdgeStream(g)
	}

	if *convert != "" {
		write := stream.WriteBinaryFile2
		switch strings.ToLower(*codec) {
		case "rbg2":
		case "rbg1":
			write = stream.WriteBinaryFile
		default:
			fmt.Fprintf(stderr, "unknown -codec %q (want rbg1 or rbg2)\n", *codec)
			return 2
		}
		if err := write(*convert, src); err != nil {
			return fail("convert: %v", err)
		}
		fmt.Fprintf(stdout, "wrote %s (%s): n=%d m=%d B=%d\n", *convert, strings.ToLower(*codec), src.N(), src.Len(), src.TotalB())
		return 0
	}

	solver, err := match.New(
		match.WithEps(*eps),
		match.WithSpaceExponent(*p),
		match.WithSeed(*seed+2),
		match.WithWorkers(*workers),
		match.WithBudget(match.Budget{Passes: *maxPasses, Rounds: *maxRounds, SpaceWords: *maxWords}),
		match.WithAlgorithm(*algo),
	)
	if err != nil {
		return fail("configure: %v", err)
	}
	// One solver session serves every -repeat iteration; with
	// -warm-duals each re-solve seeds its duals from the previous
	// solution, so the per-iteration lines make the round/pass savings
	// visible. Only the final iteration's result is reported in full
	// (and in the -json document).
	var res *match.Result
	var budgetErr *match.BudgetError
	for iter := 1; iter <= *repeat; iter++ {
		var extra []match.Option
		if *warmDuals && res != nil {
			extra = append(extra, match.WithInitialDuals(res))
		}
		r, err := solver.Solve(context.Background(), src, extra...)
		budgetErr = nil
		if err != nil && !errors.As(err, &budgetErr) {
			return fail("solve: %v", err)
		}
		res = r
		if *repeat > 1 && !*jsonOut {
			st := r.Stats
			fmt.Fprintf(stdout, "repeat          iter=%d/%d rounds=%d init=%d passes=%d weight=%.4f warm=%v\n",
				iter, *repeat, st.SamplingRounds, st.InitRounds, st.Passes, r.Weight, st.WarmStarted)
		}
	}
	if err := res.Validate(src); err != nil {
		return fail("internal error: invalid matching: %v", err)
	}

	var verif *verification
	if *verify {
		g := stream.Materialize(src)
		_, opt := matching.OfflineB(g, matching.OfflineConfig{ExactLimit: 1200})
		if opt > 0 {
			verif = &verification{Optimum: opt, Ratio: res.Weight / opt}
		}
	}

	if *jsonOut {
		out := solveOutput{Algorithm: *algo, Result: res, BudgetExceeded: budgetErr, Verification: verif}
		out.Instance.N = src.N()
		out.Instance.M = src.Len()
		out.Instance.TotalB = src.TotalB()
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return fail("encode: %v", err)
		}
	} else {
		if *algo != match.DefaultAlgorithm {
			fmt.Fprintf(stdout, "algorithm       %s\n", *algo)
		}
		fmt.Fprintf(stdout, "instance        n=%d m=%d B=%d\n", src.N(), src.Len(), src.TotalB())
		fmt.Fprintf(stdout, "matching        edges=%d weight=%.4f\n", res.Matching.Size(), res.Weight)
		fmt.Fprintf(stdout, "dual            objective=%.4f lambda=%.4f certified-bound=%.4f\n",
			res.DualObjective, res.Lambda, res.CertifiedUpperBound())
		st := res.Stats
		fmt.Fprintf(stdout, "rounds          init=%d sampling=%d (early-stop=%v)\n", st.InitRounds, st.SamplingRounds, st.EarlyStopped)
		fmt.Fprintf(stdout, "adaptivity      oracle-uses=%d micro-calls=%d pack-iters=%d\n", st.OracleUses, st.MicroCalls, st.PackIters)
		fmt.Fprintf(stdout, "space           peak-sampled-edges=%d peak-words=%d dual-state-words=%d\n", st.PeakSampleEdges, st.PeakWords, st.DualStateWords)
		fmt.Fprintf(stdout, "stream          passes=%d\n", st.Passes)
		fmt.Fprintf(stdout, "pipeline        workers=%d (resolved %d)\n", *workers, parallel.Workers(*workers))
		if verif != nil {
			fmt.Fprintf(stdout, "verification    optimum=%.4f ratio=%.4f (target >= %.4f)\n", verif.Optimum, verif.Ratio, 1-*eps)
		}
	}
	if budgetErr != nil {
		fmt.Fprintf(stderr, "budget exceeded on %s: used %d, limit %d (best-so-far result printed)\n",
			budgetErr.Axis, budgetErr.Used, budgetErr.Limit)
		return exitBudget
	}
	return 0
}

// printAlgorithms renders the registry as an aligned table — the
// -algo list enumeration.
func printAlgorithms(w io.Writer) {
	infos := match.Algorithms()
	rows := make([][4]string, 0, len(infos)+1)
	rows = append(rows, [4]string{"NAME", "MODEL", "GUARANTEE", "RESOURCES"})
	for _, info := range infos {
		rows = append(rows, [4]string{info.Name, info.Model, info.Guarantee, info.Resources})
	}
	var width [3]int
	for _, r := range rows {
		for i := 0; i < 3; i++ {
			if len(r[i]) > width[i] {
				width[i] = len(r[i])
			}
		}
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-*s  %-*s  %-*s  %s\n", width[0], r[0], width[1], r[1], width[2], r[2], r[3])
	}
}

func readTextGraph(path, format string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(format) {
	case "edgelist":
		return graph.ReadEdgeList(f)
	case "dimacs":
		return graph.ReadDIMACS(f)
	default:
		return nil, fmt.Errorf("unknown -format %q (edgelist|dimacs|bin)", format)
	}
}
