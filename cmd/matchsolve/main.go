// Command matchsolve runs the dual-primal (1-ε)-approximate weighted
// nonbipartite b-matching solver on a generated or file-based instance
// and prints the matching, the dual certificate and the resource stats.
//
// Instances come from a generator or from -input with a -format:
//
//	matchsolve -n 200 -m 2000 -dist uniform -eps 0.25 -p 2
//	matchsolve -input edges.txt -eps 0.125            # lines: u v w
//	matchsolve -input inst.col -format dimacs         # DIMACS edge format
//	matchsolve -input big.rbg -format bin             # out-of-core binary
//	matchsolve -n 100 -m 800 -verify                  # compare to exact blossom
//	matchsolve -input edges.txt -convert big.rbg      # text -> binary, no solve
//
// The binary format (-format bin) is solved through the file-backed
// stream.Source: edges are read in buffered passes and never fully
// materialized, so instances larger than memory work.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/parallel"
	"repro/internal/stream"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("matchsolve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 128, "vertices (generated instance)")
	m := fs.Int("m", 1024, "edges (generated instance)")
	dist := fs.String("dist", "uniform", "weight distribution: unit|uniform|powers|exp")
	wmax := fs.Float64("wmax", 100, "max weight for uniform")
	eps := fs.Float64("eps", 0.25, "accuracy epsilon")
	p := fs.Float64("p", 2, "space exponent p (> 1)")
	seed := fs.Uint64("seed", 1, "random seed")
	input := fs.String("input", "", "instance file instead of a generator")
	format := fs.String("format", "edgelist", "input format: edgelist|dimacs|bin")
	convert := fs.String("convert", "", "write the instance to this binary (RBG1) file and exit")
	bmax := fs.Int("bmax", 1, "random vertex capacities in [1,bmax]")
	verify := fs.Bool("verify", false, "also run the exact blossom solver and report the ratio")
	workers := fs.Int("workers", 0, "pipeline workers (0 = GOMAXPROCS, 1 = sequential; results identical)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(formatStr string, a ...any) int {
		fmt.Fprintf(stderr, formatStr+"\n", a...)
		return 1
	}

	// Assemble the instance behind a stream.Source. The binary path stays
	// out-of-core; everything else materializes (text must be parsed, and
	// a generated graph here is small by construction).
	var src stream.Source
	switch {
	case *input != "" && strings.ToLower(*format) == "bin":
		if *bmax > 1 {
			return fail("-bmax is not supported with -format bin: capacities live in the file (use -convert after applying them)")
		}
		fsrc, err := stream.OpenBinary(*input)
		if err != nil {
			return fail("open %s: %v", *input, err)
		}
		defer fsrc.Close()
		src = fsrc
	case *input != "":
		g, err := readTextGraph(*input, *format)
		if err != nil {
			return fail("read %s: %v", *input, err)
		}
		if *bmax > 1 {
			graph.WithRandomB(g, *bmax, false, *seed+1)
		}
		src = stream.NewEdgeStream(g)
	default:
		wc := graph.WeightConfig{Mode: graph.UniformWeights, WMax: *wmax}
		switch *dist {
		case "unit":
			wc = graph.WeightConfig{Mode: graph.UnitWeights}
		case "powers":
			wc = graph.WeightConfig{Mode: graph.PowersOf, Eps: *eps, Levels: 12}
		case "exp":
			wc = graph.WeightConfig{Mode: graph.ExpWeights, Scale: 2}
		case "uniform":
		default:
			fmt.Fprintf(stderr, "unknown -dist %q\n", *dist)
			return 2
		}
		g := graph.GNM(*n, *m, wc, *seed)
		if *bmax > 1 {
			graph.WithRandomB(g, *bmax, false, *seed+1)
		}
		src = stream.NewEdgeStream(g)
	}

	if *convert != "" {
		if err := stream.WriteBinaryFile(*convert, src); err != nil {
			return fail("convert: %v", err)
		}
		fmt.Fprintf(stdout, "wrote %s: n=%d m=%d B=%d\n", *convert, src.N(), src.Len(), src.TotalB())
		return 0
	}

	res, err := core.Solve(src, core.Options{Eps: *eps, P: *p, Seed: *seed + 2, Workers: *workers})
	if err != nil {
		return fail("solve: %v", err)
	}
	if err := res.Matching.ValidateStream(src); err != nil {
		return fail("internal error: invalid matching: %v", err)
	}
	fmt.Fprintf(stdout, "instance        n=%d m=%d B=%d\n", src.N(), src.Len(), src.TotalB())
	fmt.Fprintf(stdout, "matching        edges=%d weight=%.4f\n", res.Matching.Size(), res.Weight)
	fmt.Fprintf(stdout, "dual            objective=%.4f lambda=%.4f certified-bound=%.4f\n",
		res.DualObjective, res.Lambda, res.CertifiedUpperBound(*eps))
	st := res.Stats
	fmt.Fprintf(stdout, "rounds          init=%d sampling=%d (early-stop=%v)\n", st.InitRounds, st.SamplingRounds, st.EarlyStopped)
	fmt.Fprintf(stdout, "adaptivity      oracle-uses=%d micro-calls=%d pack-iters=%d\n", st.OracleUses, st.MicroCalls, st.PackIters)
	fmt.Fprintf(stdout, "space           peak-sampled-edges=%d peak-words=%d dual-state-words=%d\n", st.PeakSampleEdges, st.PeakWords, st.DualStateWords)
	fmt.Fprintf(stdout, "stream          passes=%d\n", st.Passes)
	fmt.Fprintf(stdout, "pipeline        workers=%d (resolved %d)\n", *workers, parallel.Workers(*workers))
	if *verify {
		g := stream.Materialize(src)
		_, opt := matching.OfflineB(g, matching.OfflineConfig{ExactLimit: 1200})
		if opt > 0 {
			fmt.Fprintf(stdout, "verification    optimum=%.4f ratio=%.4f (target >= %.4f)\n", opt, res.Weight/opt, 1-*eps)
		}
	}
	return 0
}

func readTextGraph(path, format string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(format) {
	case "edgelist":
		return graph.ReadEdgeList(f)
	case "dimacs":
		return graph.ReadDIMACS(f)
	default:
		return nil, fmt.Errorf("unknown -format %q (edgelist|dimacs|bin)", format)
	}
}
