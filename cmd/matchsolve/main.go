// Command matchsolve runs the dual-primal (1-ε)-approximate weighted
// nonbipartite b-matching solver on a generated or file-based instance
// and prints the matching, the dual certificate and the resource stats.
//
// Usage:
//
//	matchsolve -n 200 -m 2000 -dist uniform -eps 0.25 -p 2
//	matchsolve -input edges.txt -eps 0.125      # lines: u v w
//	matchsolve -n 100 -m 800 -verify            # compare to exact blossom
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/parallel"
)

func main() {
	n := flag.Int("n", 128, "vertices (generated instance)")
	m := flag.Int("m", 1024, "edges (generated instance)")
	dist := flag.String("dist", "uniform", "weight distribution: unit|uniform|powers|exp")
	wmax := flag.Float64("wmax", 100, "max weight for uniform")
	eps := flag.Float64("eps", 0.25, "accuracy epsilon")
	p := flag.Float64("p", 2, "space exponent p (> 1)")
	seed := flag.Uint64("seed", 1, "random seed")
	input := flag.String("input", "", "edge-list file (u v w per line) instead of a generator")
	bmax := flag.Int("bmax", 1, "random vertex capacities in [1,bmax]")
	verify := flag.Bool("verify", false, "also run the exact blossom solver and report the ratio")
	workers := flag.Int("workers", 0, "pipeline workers (0 = GOMAXPROCS, 1 = sequential; results identical)")
	flag.Parse()

	var g *graph.Graph
	if *input != "" {
		var err error
		g, err = readGraph(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "read %s: %v\n", *input, err)
			os.Exit(1)
		}
	} else {
		wc := graph.WeightConfig{Mode: graph.UniformWeights, WMax: *wmax}
		switch *dist {
		case "unit":
			wc = graph.WeightConfig{Mode: graph.UnitWeights}
		case "powers":
			wc = graph.WeightConfig{Mode: graph.PowersOf, Eps: *eps, Levels: 12}
		case "exp":
			wc = graph.WeightConfig{Mode: graph.ExpWeights, Scale: 2}
		case "uniform":
		default:
			fmt.Fprintf(os.Stderr, "unknown -dist %q\n", *dist)
			os.Exit(2)
		}
		g = graph.GNM(*n, *m, wc, *seed)
	}
	if *bmax > 1 {
		graph.WithRandomB(g, *bmax, false, *seed+1)
	}

	res, err := core.Solve(g, core.Options{Eps: *eps, P: *p, Seed: *seed + 2, Workers: *workers})
	if err != nil {
		fmt.Fprintf(os.Stderr, "solve: %v\n", err)
		os.Exit(1)
	}
	if err := res.Matching.Validate(g); err != nil {
		fmt.Fprintf(os.Stderr, "internal error: invalid matching: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("instance        n=%d m=%d B=%d\n", g.N(), g.M(), g.TotalB())
	fmt.Printf("matching        edges=%d weight=%.4f\n", res.Matching.Size(), res.Weight)
	fmt.Printf("dual            objective=%.4f lambda=%.4f certified-bound=%.4f\n",
		res.DualObjective, res.Lambda, res.CertifiedUpperBound(*eps))
	st := res.Stats
	fmt.Printf("rounds          init=%d sampling=%d (early-stop=%v)\n", st.InitRounds, st.SamplingRounds, st.EarlyStopped)
	fmt.Printf("adaptivity      oracle-uses=%d micro-calls=%d pack-iters=%d\n", st.OracleUses, st.MicroCalls, st.PackIters)
	fmt.Printf("space           peak-sampled-edges=%d dual-state-words=%d\n", st.PeakSampleEdges, st.DualStateWords)
	fmt.Printf("stream          passes=%d\n", st.Passes)
	fmt.Printf("pipeline        workers=%d (resolved %d)\n", *workers, parallel.Workers(*workers))
	if *verify {
		_, opt := matching.OfflineB(g, matching.OfflineConfig{ExactLimit: 1200})
		if opt > 0 {
			fmt.Printf("verification    optimum=%.4f ratio=%.4f (target >= %.4f)\n", opt, res.Weight/opt, 1-*eps)
		}
	}
}

func readGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}
