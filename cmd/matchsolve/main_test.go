package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// runCLI invokes the command and returns its stdout, failing on nonzero
// exit or stderr output.
func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var out, errOut bytes.Buffer
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errOut.String())
	}
	if errOut.Len() > 0 {
		t.Fatalf("unexpected stderr: %s", errOut.String())
	}
	return out.String()
}

// checkGolden compares got against the named golden file (creating or
// rewriting it under -update-golden).
func checkGolden(t *testing.T, got, name string) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if got != string(want) {
		t.Errorf("CLI output drifted from %s.\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestGoldenSmallInstance pins the full CLI output — matching, dual
// certificate, resource stats, verification ratio — on a small seeded
// instance, so any solver or accounting regression trips tier-1.
// Workers is pinned to 1 so the "resolved" line is machine-independent.
func TestGoldenSmallInstance(t *testing.T) {
	got := runCLI(t, "-n", "40", "-m", "200", "-wmax", "20", "-seed", "3",
		"-eps", "0.25", "-p", "2", "-workers", "1", "-verify")
	golden := filepath.Join("testdata", "solve_small.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if got != string(want) {
		t.Errorf("CLI output drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestBinaryPathMatchesInMemory solves the same instance from an
// edge-list file and from its binary conversion: the two outputs must be
// identical line for line (the backend must not leak into results).
func TestBinaryPathMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	edgelist := filepath.Join(dir, "inst.txt")
	// A deterministic weighted instance with a capacity line.
	var sb strings.Builder
	sb.WriteString("# test instance\nb 0 2\n")
	edges := []string{"0 1 5", "0 2 4.5", "1 2 3", "2 3 7", "3 4 2", "4 5 6", "0 5 1.25", "1 4 2.5"}
	sb.WriteString(strings.Join(edges, "\n") + "\n")
	if err := os.WriteFile(edgelist, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "inst.rbg")
	conv := runCLI(t, "-input", edgelist, "-convert", bin)
	if !strings.Contains(conv, "n=6 m=8 B=7") {
		t.Fatalf("unexpected convert summary: %q", conv)
	}
	fromText := runCLI(t, "-input", edgelist, "-seed", "5", "-workers", "1")
	fromBin := runCLI(t, "-input", bin, "-format", "bin", "-seed", "5", "-workers", "1")
	if fromText != fromBin {
		t.Errorf("binary backend output differs from edge-list backend:\n--- text ---\n%s--- bin ---\n%s", fromText, fromBin)
	}

	// Codec migration: RBG1 -> RBG2 through -convert, then solve all
	// three representations; every output must be identical.
	bin1 := filepath.Join(dir, "inst1.rbg")
	if out := runCLI(t, "-input", edgelist, "-convert", bin1, "-codec", "rbg1"); !strings.Contains(out, "(rbg1)") {
		t.Fatalf("rbg1 convert summary: %q", out)
	}
	bin2 := filepath.Join(dir, "inst2.rbg")
	if out := runCLI(t, "-input", bin1, "-format", "bin", "-convert", bin2); !strings.Contains(out, "(rbg2)") {
		t.Fatalf("migration convert summary: %q", out)
	}
	fromBin1 := runCLI(t, "-input", bin1, "-format", "bin", "-seed", "5", "-workers", "1")
	fromBin2 := runCLI(t, "-input", bin2, "-format", "bin", "-seed", "5", "-workers", "1")
	if fromBin1 != fromText || fromBin2 != fromText {
		t.Errorf("codec migration changed results:\n--- rbg1 ---\n%s--- rbg2 ---\n%s", fromBin1, fromBin2)
	}
}

func TestDIMACSInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "inst.col")
	dimacs := "c tiny triangle plus pendant\np edge 4 4\ne 1 2 3\ne 2 3 2\ne 1 3 1\ne 3 4 5\n"
	if err := os.WriteFile(path, []byte(dimacs), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "-input", path, "-format", "dimacs", "-workers", "1")
	if !strings.Contains(out, "instance        n=4 m=4 B=4") {
		t.Fatalf("DIMACS instance not parsed as expected:\n%s", out)
	}
	// Optimum is edges {1,2} and {3,4}: weight 8; eps=0.25 must find it
	// on a 4-vertex instance.
	if !strings.Contains(out, "weight=8.0000") {
		t.Fatalf("unexpected matching weight:\n%s", out)
	}
}

// TestGoldenJSONOutput pins the -json document — instance, result (with
// baked-in eps), verification — on the same seeded instance as the text
// golden, so the machine-readable surface is as regression-guarded as
// the human one.
func TestGoldenJSONOutput(t *testing.T) {
	got := runCLI(t, "-n", "40", "-m", "200", "-wmax", "20", "-seed", "3",
		"-eps", "0.25", "-p", "2", "-workers", "1", "-verify", "-json")
	var doc map[string]any
	if err := json.Unmarshal([]byte(got), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, got)
	}
	golden := filepath.Join("testdata", "solve_small_json.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if got != string(want) {
		t.Errorf("-json output drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestBudgetTrippedExit pins the budget-exceeded contract of the CLI: a
// distinct exit code, the axis on stderr, and the best-so-far result
// still printed on stdout.
func TestBudgetTrippedExit(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "40", "-m", "200", "-wmax", "20", "-seed", "3",
		"-eps", "0.25", "-p", "2", "-workers", "1", "-max-rounds", "1"}, &out, &errOut)
	if code != exitBudget {
		t.Fatalf("budget-tripped run exited %d, want %d\nstderr: %s", code, exitBudget, errOut.String())
	}
	if !strings.Contains(errOut.String(), "budget exceeded on rounds") {
		t.Fatalf("stderr missing the tripped axis: %q", errOut.String())
	}
	if !strings.Contains(out.String(), "matching") || !strings.Contains(out.String(), "sampling=1") {
		t.Fatalf("best-so-far result not printed:\n%s", out.String())
	}

	// The JSON surface carries the trip in-band.
	out.Reset()
	errOut.Reset()
	code = run([]string{"-n", "40", "-m", "200", "-wmax", "20", "-seed", "3",
		"-eps", "0.25", "-p", "2", "-workers", "1", "-max-passes", "4", "-json"}, &out, &errOut)
	if code != exitBudget {
		t.Fatalf("JSON budget run exited %d, want %d\nstderr: %s", code, exitBudget, errOut.String())
	}
	var doc struct {
		BudgetExceeded *struct {
			Axis  string `json:"axis"`
			Limit int    `json:"limit"`
			Used  int    `json:"used"`
		} `json:"budgetExceeded"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("budget-tripped -json output invalid: %v\n%s", err, out.String())
	}
	if doc.BudgetExceeded == nil || doc.BudgetExceeded.Axis != "passes" || doc.BudgetExceeded.Limit != 4 {
		t.Fatalf("budgetExceeded not reported in JSON: %+v\n%s", doc.BudgetExceeded, out.String())
	}
}

// TestAlgoListGolden pins the -algo list enumeration of the algorithm
// registry: name, model, guarantee and resource profile per entry.
func TestAlgoListGolden(t *testing.T) {
	got := runCLI(t, "-algo", "list")
	checkGolden(t, got, "algo_list.golden")
	for _, name := range []string{"dual-primal", "greedy", "greedy-augment", "clique-maximal", "hopcroft-karp"} {
		if !strings.Contains(got, name) {
			t.Errorf("-algo list missing %q:\n%s", name, got)
		}
	}
}

// TestGoldenAlgoSelection pins a non-default substrate end to end
// through -algo: the algorithm line, its matching, and the shared
// resource stats on the same seeded instance as the main golden.
func TestGoldenAlgoSelection(t *testing.T) {
	got := runCLI(t, "-n", "40", "-m", "200", "-wmax", "20", "-seed", "3",
		"-workers", "1", "-algo", "greedy-augment", "-verify")
	checkGolden(t, got, "algo_greedy_augment.golden")
	if !strings.Contains(got, "algorithm       greedy-augment") {
		t.Errorf("algorithm line missing:\n%s", got)
	}
}

// TestGoldenRepeatWarmDuals pins the -repeat/-warm-duals surface: one
// session re-solving the same instance, per-iteration lines making the
// warm-start savings visible (iteration 1 is cold, iteration 2 installs
// the snapshot and drops rounds, later iterations converge in one
// round), and the final full report coming from the last iteration.
func TestGoldenRepeatWarmDuals(t *testing.T) {
	got := runCLI(t, "-n", "40", "-m", "200", "-wmax", "20", "-seed", "3",
		"-eps", "0.3", "-p", "2", "-workers", "1", "-repeat", "4", "-warm-duals")
	checkGolden(t, got, "repeat_warm_duals.golden")
	if !strings.Contains(got, "iter=1/4") || !strings.Contains(got, "iter=4/4") {
		t.Errorf("per-iteration lines missing:\n%s", got)
	}
	if !strings.Contains(got, "warm=false") || !strings.Contains(got, "warm=true") {
		t.Errorf("warm flags missing from iteration lines:\n%s", got)
	}
	// Without -warm-duals the repeats stay cold — the session is reused
	// but every iteration rebuilds the initial solution.
	cold := runCLI(t, "-n", "40", "-m", "200", "-wmax", "20", "-seed", "3",
		"-eps", "0.3", "-p", "2", "-workers", "1", "-repeat", "2")
	if strings.Contains(cold, "warm=true") {
		t.Errorf("-repeat without -warm-duals warm-started:\n%s", cold)
	}
}

func TestBadRepeatFails(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-repeat", "0"}, &out, &errOut); code != 2 {
		t.Fatalf("-repeat 0 exited %d, want 2", code)
	}
	// -warm-duals with nothing to seed from is a usage error, not a
	// silent cold run.
	errOut.Reset()
	if code := run([]string{"-warm-duals"}, &out, &errOut); code != 2 {
		t.Fatalf("-warm-duals without -repeat exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-repeat") {
		t.Fatalf("stderr should explain the -repeat requirement: %q", errOut.String())
	}
}

// TestAlgoBudgetUniform pins that budgets work identically through
// every substrate: a 1-round budget trips the multi-round
// greedy-augment run with the standard exit code and stderr axis.
func TestAlgoBudgetUniform(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "40", "-m", "200", "-seed", "3", "-workers", "1",
		"-algo", "greedy-augment", "-max-rounds", "1"}, &out, &errOut)
	if code != exitBudget {
		t.Fatalf("budget-tripped run exited %d, want %d\nstderr: %s", code, exitBudget, errOut.String())
	}
	if !strings.Contains(errOut.String(), "budget exceeded on rounds") {
		t.Fatalf("stderr missing the tripped axis: %q", errOut.String())
	}
	if !strings.Contains(out.String(), "matching") {
		t.Fatalf("best-so-far result not printed:\n%s", out.String())
	}
}

func TestUnknownAlgoFails(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-algo", "nope"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown -algo exited %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "registered") {
		t.Fatalf("stderr should list the registered algorithms: %q", errOut.String())
	}
}

func TestBadFlagsFail(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-dist", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("bad -dist exited %d, want 2", code)
	}
	if code := run([]string{"-input", "/no/such/file"}, &out, &errOut); code != 1 {
		t.Fatalf("missing input exited %d, want 1", code)
	}
}
