// Command matchd serves the dual-primal matching solver over HTTP: a
// fixed fleet of reusable solve sessions (match.Pool) behind a JSON
// API with admission control, per-tenant budgets, per-round SSE event
// streams, warm-dual reuse across fingerprint-identical instances and
// Prometheus metrics.
//
//	matchd -addr :8470                         # serve with defaults
//	matchd -pool 4 -queue 128 -eps 0.2         # a bigger fleet, tighter ε
//	matchd -max-rounds 50                      # cap every job's rounds
//	matchd -bench -clients 8 -jobs 40          # in-process load benchmark
//
// The API (all JSON; see the README walkthrough):
//
//	POST /v1/jobs             submit a solve job, 202 + job id
//	POST /v1/solve            submit and wait for the result
//	GET  /v1/jobs/{id}        status (queued|running|done|failed)
//	GET  /v1/jobs/{id}/result final document (409 until terminal)
//	GET  /v1/jobs/{id}/events SSE stream of per-round solver events
//	GET  /v1/algorithms       the algorithm registry
//	GET  /metrics             Prometheus text format
//	GET  /healthz             liveness
//
// A full admission queue answers 429 with Retry-After; budget-tripped
// jobs are "done" with the best-so-far matching and the tripped axis
// in the body. SIGINT/SIGTERM drain gracefully: running jobs finish,
// queued jobs are failed cleanly, then the process exits.
//
// -bench starts an in-process server, drives it with concurrent
// clients mixing all three job kinds (inline edges, generator specs,
// an RBG1 upload) plus a warm-repeat stream, and prints end-to-end
// throughput and latency percentiles — the standalone twin of
// matchbench experiment E18.
package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/match"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("matchd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8470", "listen address")
	pool := fs.Int("pool", 2, "solve sessions in the fleet")
	queueLimit := fs.Int("queue", 64, "admission queue depth before 429s")
	eps := fs.Float64("eps", 0.25, "default accuracy epsilon")
	p := fs.Float64("p", 2, "default space exponent p (> 1)")
	seed := fs.Uint64("seed", 1, "default solve seed")
	workers := fs.Int("workers", 0, "fleet-wide worker budget (0 = GOMAXPROCS)")
	algo := fs.String("algo", "", "default algorithm (empty = registry default)")
	warmCache := fs.Int("warm-cache", 256, "warm-dual fingerprint cache entries (negative disables)")
	maxPasses := fs.Int("max-passes", 0, "default per-job pass budget (0 = unlimited)")
	maxRounds := fs.Int("max-rounds", 0, "default per-job round budget (0 = unlimited)")
	maxWords := fs.Int("max-words", 0, "default per-job central-space budget in words (0 = unlimited)")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	bench := fs.Bool("bench", false, "run the in-process load benchmark instead of serving")
	clients := fs.Int("clients", 4, "bench: concurrent clients")
	jobs := fs.Int("jobs", 25, "bench: jobs per client")
	benchJSON := fs.Bool("json", false, "bench: machine-readable output")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opts := []match.Option{
		match.WithEps(*eps),
		match.WithSpaceExponent(*p),
		match.WithSeed(*seed),
		match.WithWorkers(*workers),
	}
	if *algo != "" {
		opts = append(opts, match.WithAlgorithm(*algo))
	}
	cfg := serve.Config{
		PoolSize:   *pool,
		QueueLimit: *queueLimit,
		Options:    opts,
		DefaultBudget: match.Budget{
			Passes: *maxPasses, Rounds: *maxRounds, SpaceWords: *maxWords,
		},
		WarmCacheSize: *warmCache,
		RetryAfter:    *retryAfter,
	}
	s, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "matchd: %v\n", err)
		return 1
	}

	if *bench {
		defer s.Close()
		return runBench(s, *clients, *jobs, *benchJSON, stdout, stderr)
	}

	httpServer := &http.Server{Addr: *addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	fmt.Fprintf(stdout, "matchd: serving on %s (pool %d, queue %d, eps %g)\n",
		*addr, *pool, *queueLimit, *eps)

	select {
	case err := <-errCh:
		s.Close()
		fmt.Fprintf(stderr, "matchd: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "matchd: draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	httpServer.Shutdown(shutdownCtx)
	s.Close()
	fmt.Fprintln(stdout, "matchd: drained")
	return 0
}

// benchSpecs is the job mix the load benchmark drives: the three wire
// kinds over distinct instances plus a repeated spec that exercises
// the warm-dual path.
func benchSpecs() ([]serve.JobSpec, error) {
	g := graph.GNM(64, 512, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 50}, 11)
	edges := serve.SourceSpec{Kind: "edges", N: g.N()}
	for _, e := range g.Edges() {
		edges.Edges = append(edges.Edges, []float64{float64(e.U), float64(e.V), e.W})
	}
	var buf bytes.Buffer
	if err := stream.WriteBinary(&buf, stream.NewEdgeStream(
		graph.GNM(64, 512, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 50}, 12))); err != nil {
		return nil, err
	}
	warm := serve.SourceSpec{Kind: "gen", N: 64, M: 512, Weights: "uniform", WMax: 50, Seed: 13}
	return []serve.JobSpec{
		{Tenant: "edges", Source: edges},
		{Tenant: "gen", Source: serve.SourceSpec{Kind: "gen", N: 64, M: 512, Weights: "uniform", WMax: 50, Seed: 14}},
		{Tenant: "rbg1", Source: serve.SourceSpec{Kind: "rbg1", DataBase64: base64.StdEncoding.EncodeToString(buf.Bytes())}},
		{Tenant: "warm", Source: warm},
		{Tenant: "warm", Source: warm},
	}, nil
}

// loopback is an ephemeral localhost listener for the bench server.
type loopback struct {
	listener net.Listener
	url      string
}

func newLoopback() (*loopback, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &loopback{listener: ln, url: "http://" + ln.Addr().String()}, nil
}

// runBench serves in-process over a loopback listener and reports the
// same numbers experiment E18 captures.
func runBench(s *serve.Server, clients, jobs int, asJSON bool, stdout, stderr io.Writer) int {
	specs, err := benchSpecs()
	if err != nil {
		fmt.Fprintf(stderr, "matchd: building bench specs: %v\n", err)
		return 1
	}
	ln, err := newLoopback()
	if err != nil {
		fmt.Fprintf(stderr, "matchd: %v\n", err)
		return 1
	}
	httpServer := &http.Server{Handler: s.Handler()}
	go httpServer.Serve(ln.listener)
	defer httpServer.Close()

	stats, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		BaseURL:       ln.url,
		Clients:       clients,
		JobsPerClient: jobs,
		Specs:         specs,
	})
	if err != nil {
		fmt.Fprintf(stderr, "matchd: load run: %v\n", err)
		return 1
	}
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Jobs         int     `json:"jobs"`
			Failed       int     `json:"failed"`
			Retries429   int     `json:"retries429"`
			WallMS       float64 `json:"wallMs"`
			SolvesPerSec float64 `json:"solvesPerSec"`
			P50MS        float64 `json:"p50Ms"`
			P95MS        float64 `json:"p95Ms"`
			P99MS        float64 `json:"p99Ms"`
		}{stats.Jobs, stats.Failed, stats.Retries429,
			float64(stats.Wall.Microseconds()) / 1000, stats.SolvesPerSec,
			float64(stats.P50.Microseconds()) / 1000,
			float64(stats.P95.Microseconds()) / 1000,
			float64(stats.P99.Microseconds()) / 1000})
		return 0
	}
	fmt.Fprintf(stdout, "matchd bench: %d jobs (%d failed, %d retries after 429) in %v\n",
		stats.Jobs, stats.Failed, stats.Retries429, stats.Wall.Round(time.Millisecond))
	fmt.Fprintf(stdout, "  throughput %.1f solves/s, latency p50 %v p95 %v p99 %v\n",
		stats.SolvesPerSec, stats.P50.Round(time.Microsecond),
		stats.P95.Round(time.Microsecond), stats.P99.Round(time.Microsecond))
	return 0
}
