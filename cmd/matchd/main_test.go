package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestBenchJSON runs the in-process load benchmark end to end and pins
// the machine-readable document matchbench E18 consumes.
func TestBenchJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-bench", "-json", "-clients", "2", "-jobs", "3", "-pool", "2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errb.String())
	}
	var doc struct {
		Jobs         int     `json:"jobs"`
		Failed       int     `json:"failed"`
		SolvesPerSec float64 `json:"solvesPerSec"`
		P99MS        float64 `json:"p99Ms"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("decoding bench output: %v\n%s", err, out.String())
	}
	if doc.Jobs != 6 || doc.Failed != 0 {
		t.Errorf("jobs = %d failed = %d, want 6/0", doc.Jobs, doc.Failed)
	}
	if doc.SolvesPerSec <= 0 || doc.P99MS <= 0 {
		t.Errorf("degenerate stats: %+v", doc)
	}
}

// TestBadFlagsAndConfig pins the exit-code contract: usage errors exit
// 2, configuration the solver rejects exits 1.
func TestBadFlagsAndConfig(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-eps", "0.9", "-bench"}, &out, &errb); code != 1 {
		t.Errorf("invalid eps: exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "eps") {
		t.Errorf("stderr does not mention eps: %s", errb.String())
	}
}
