package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestDirtyModule runs the CLI against the fixture module, whose one
// source file violates maprange, noclock, and errwrapbudget.
func TestDirtyModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "testdata/dirtymod", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1; stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"[maprange]", "[noclock]", "[errwrapbudget]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing a %s finding:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "\n"); n != 3 {
		t.Errorf("got %d findings, want 3:\n%s", n, out)
	}
}

func TestOnlyFlagFilters(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "testdata/dirtymod", "-only", "noclock", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1; stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if strings.Count(out, "\n") != 1 || !strings.Contains(out, "[noclock]") {
		t.Errorf("-only noclock should report exactly the clock finding:\n%s", out)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnosis: %s", stderr.String())
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	for _, a := range analysis.All() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing %s", a.Name)
		}
	}
}

// TestRepoIsClean is the enforcement point: the whole repository must
// pass every analyzer, so a regression fails tier-1 `go test ./...`
// even when nobody remembers to run `make lint`.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the full repo")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", "../.."}, &stdout, &stderr); code != 0 {
		t.Fatalf("matchlint over the repo exited %d\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}
