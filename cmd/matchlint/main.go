// Command matchlint runs the repo-invariant static analyzers from
// internal/analysis over one or more Go package patterns.
//
// Usage:
//
//	matchlint [-only name[,name]] [-list] [patterns...]
//
// With no patterns it checks ./... relative to the current directory.
// Output is vet-style, one line per finding:
//
//	path/file.go:12:2: [maprange] range over map m iterates in randomized order; ...
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on a
// loader or usage error. Type errors in the analyzed packages are
// reported and also exit 2: the analyzers need well-typed input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("matchlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list available analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("C", ".", "change to `dir` before loading packages")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}

	analyzers := analysis.All()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "matchlint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	units, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "matchlint: %v\n", err)
		return 2
	}

	broken := false
	for _, u := range units {
		for _, te := range u.TypeErrors {
			fmt.Fprintf(stderr, "matchlint: type error in %s: %v\n", u.Path, te)
			broken = true
		}
	}
	if broken {
		return 2
	}

	diags, err := analysis.RunAll(units, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "matchlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "matchlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
