// Package core is a deliberately dirty fixture: every function below
// violates one repo invariant, and the matchlint CLI test asserts the
// binary reports each of them and exits 1.
package core

import (
	"fmt"
	"time"
)

func SumInMapOrder(m map[int]float64) float64 {
	t := 0.0
	for _, v := range m {
		t += v
	}
	return t
}

func TimedRound() time.Time {
	return time.Now()
}

func LossyWrap(err error) error {
	return fmt.Errorf("round failed: %v", err)
}
