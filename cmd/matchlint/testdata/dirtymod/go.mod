module repro

go 1.24
