package repro

// One testing.B benchmark per experiment table (E1–E14, E17, EA, ES — see
// DESIGN.md section 4 and EXPERIMENTS.md). Each benchmark regenerates
// its table in quick mode and reports rows produced; `go test -bench=. -benchmem`
// therefore re-derives every quantitative claim of the paper at CI
// scale. Run cmd/matchbench for the full-scale tables.

import (
	"io"
	"testing"

	"repro/internal/bench"
)

func runExperiment(b *testing.B, id string) {
	fn, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	rows := 0
	for i := 0; i < b.N; i++ {
		tab := fn(bench.Config{Quick: true, Seed: uint64(i) + 1})
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		rows += len(tab.Rows)
		tab.Print(io.Discard)
	}
	b.ReportMetric(float64(rows)/float64(b.N), "rows/op")
}

func BenchmarkE1Approximation(b *testing.B) { runExperiment(b, "e1") }
func BenchmarkE2RoundsSpace(b *testing.B)   { runExperiment(b, "e2") }
func BenchmarkE3Baselines(b *testing.B)     { runExperiment(b, "e3") }
func BenchmarkE4Adaptivity(b *testing.B)    { runExperiment(b, "e4") }
func BenchmarkE5TriangleGap(b *testing.B)   { runExperiment(b, "e5") }
func BenchmarkE6Width(b *testing.B)         { runExperiment(b, "e6") }
func BenchmarkE7Sparsifier(b *testing.B)    { runExperiment(b, "e7") }
func BenchmarkE8Filtering(b *testing.B)     { runExperiment(b, "e8") }
func BenchmarkE9MapReduce(b *testing.B)     { runExperiment(b, "e9") }
func BenchmarkE10BMatching(b *testing.B)    { runExperiment(b, "e10") }
func BenchmarkE11Congest(b *testing.B)      { runExperiment(b, "e11") }
func BenchmarkE12Relaxations(b *testing.B)  { runExperiment(b, "e12") }
func BenchmarkE13Scaling(b *testing.B)      { runExperiment(b, "e13") }
func BenchmarkE14Workers(b *testing.B)      { runExperiment(b, "e14") }
func BenchmarkE17Throughput(b *testing.B)   { runExperiment(b, "e17") }

func BenchmarkEAblations(b *testing.B)  { runExperiment(b, "ea") }
func BenchmarkESemiStream(b *testing.B) { runExperiment(b, "es") }
