package match_test

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stream"
	"repro/match"
)

func TestNewValidatesOptions(t *testing.T) {
	cases := []struct {
		name string
		opts []match.Option
	}{
		{"eps-zero", []match.Option{match.WithEps(0)}},
		{"eps-half", []match.Option{match.WithEps(0.5)}},
		{"p-one", []match.Option{match.WithSpaceExponent(1)}},
		{"workers-negative", []match.Option{match.WithWorkers(-1)}},
		{"max-rounds-negative", []match.Option{match.WithMaxRounds(-2)}},
		{"budget-negative", []match.Option{match.WithBudget(match.Budget{Rounds: -1})}},
	}
	for _, tc := range cases {
		if _, err := match.New(tc.opts...); !errors.Is(err, match.ErrInvalidOption) {
			t.Errorf("%s: err = %v, want ErrInvalidOption", tc.name, err)
		}
	}
	if s, err := match.New(); err != nil || s.Eps() != match.DefaultEps {
		t.Fatalf("defaults: %v %v", s, err)
	}
}

func TestSolveEmptySource(t *testing.T) {
	solver, err := match.New()
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), stream.NewEdgeStream(graph.New(5)))
	if err != nil || res.Weight != 0 || res.Matching.Size() != 0 {
		t.Fatalf("empty source: %+v %v", res, err)
	}
}

// zeroWeightSource serves an inner stream with every weight forced to
// zero — a degenerate instance no shipped backend can produce (the
// graph constructors reject non-positive weights) but a custom public
// Source can.
type zeroWeightSource struct {
	stream.Source
}

func (z *zeroWeightSource) ForEach(f func(idx int, e graph.Edge) bool) {
	z.Source.ForEach(func(idx int, e graph.Edge) bool {
		e.W = 0
		return f(idx, e)
	})
}

func (z *zeroWeightSource) Sweep(f func(idx int, e graph.Edge) bool) {
	z.Source.Sweep(func(idx int, e graph.Edge) bool {
		e.W = 0
		return f(idx, e)
	})
}

// TestSolveDegenerateSourceNonNilResult pins the documented contract
// that a validated Solver never returns a nil Result: a degenerate
// custom source (all weights zero, so the discretization scheme cannot
// be built) yields an error plus an empty result with its meters filled.
func TestSolveDegenerateSourceNonNilResult(t *testing.T) {
	g := graph.GNM(10, 30, graph.WeightConfig{Mode: graph.UnitWeights}, 2)
	solver, err := match.New(match.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), &zeroWeightSource{Source: stream.NewEdgeStream(g)})
	if err == nil {
		t.Fatal("all-zero-weight source accepted")
	}
	if res == nil {
		t.Fatal("degenerate source returned a nil result despite validated options")
	}
	if res.Stats.Passes < 1 {
		t.Errorf("meters not filled on the degenerate path: %+v", res.Stats)
	}
}

func TestObserverSubsumesTraces(t *testing.T) {
	g := graph.GNM(48, 300, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 20}, 55)
	ref, err := core.Solve(stream.NewEdgeStream(g), core.Options{Eps: 0.25, P: 2, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	trace := &match.TraceObserver{}
	solver, err := match.New(match.WithSeed(3), match.WithWorkers(1), match.WithObserver(trace))
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), stream.NewEdgeStream(g))
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Events) != res.Stats.SamplingRounds {
		t.Fatalf("%d events for %d sampling rounds", len(trace.Events), res.Stats.SamplingRounds)
	}
	for i, ev := range trace.Events {
		if ev.Round != i+1 {
			t.Fatalf("event %d has round %d: events must arrive in round order", i, ev.Round)
		}
		if ev.Passes <= 0 || ev.PeakWords < 0 {
			t.Fatalf("event %d carries empty meters: %+v", i, ev)
		}
	}
	// The observer reconstructs the engine's historical trace slices
	// exactly — it subsumes them.
	if !reflect.DeepEqual(trace.Lambdas(), ref.Stats.LambdaTrace) {
		t.Errorf("observer lambdas differ from the engine's LambdaTrace\nobs: %v\nref: %v",
			trace.Lambdas(), ref.Stats.LambdaTrace)
	}
	if !reflect.DeepEqual(trace.Betas(), ref.Stats.BetaTrace) {
		t.Errorf("observer betas differ from the engine's BetaTrace")
	}
}

func TestResultJSONRoundtrip(t *testing.T) {
	g := graph.GNM(40, 260, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 15}, 9)
	graph.WithRandomB(g, 3, false, 10)
	solver, err := match.New(match.WithSeed(11), match.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), stream.NewEdgeStream(g))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("result not JSON-marshalable: %v", err)
	}
	var back match.Result
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	// The opaque warm-duals handle is deliberately outside the JSON
	// surface; compare the serialized fields through a second marshal.
	rawBack, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(rawBack) {
		t.Errorf("JSON roundtrip drifted\nin:  %s\nout: %s", raw, rawBack)
	}
	// The baked-in ε survives the roundtrip, so the certified bound is
	// reproducible from the serialized form alone.
	if back.CertifiedUpperBound() != res.CertifiedUpperBound() {
		t.Error("certified bound not recoverable from serialized result")
	}
	if res.Lambda > 0 && res.CertifiedUpperBound() < res.Weight {
		t.Errorf("certified upper bound %v below achieved weight %v", res.CertifiedUpperBound(), res.Weight)
	}
}

func TestWithProfileAndMaxRounds(t *testing.T) {
	prof := match.Practical(0.3)
	prof.SparsifierK = 6
	prof.ChiOverride = 1
	solver, err := match.New(match.WithEps(0.3), match.WithSeed(13), match.WithWorkers(1),
		match.WithProfile(prof), match.WithMaxRounds(2))
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GNM(64, 512, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 20}, 77)
	res, err := solver.Solve(context.Background(), stream.NewEdgeStream(g))
	if err != nil {
		t.Fatal(err)
	}
	// WithMaxRounds redefines the algorithmic budget: the run stops
	// silently, without a budget error.
	if res.Stats.SamplingRounds > 2 {
		t.Fatalf("MaxRounds(2) ignored: %d rounds", res.Stats.SamplingRounds)
	}
	if res.Weight <= 0 {
		t.Fatal("no matching under profile override")
	}
}
