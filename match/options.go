package match

// Option configures a Solver at construction. Options are applied in
// order; New validates the final configuration and fails with
// ErrInvalidOption on nonsense, so a constructed Solver is always
// runnable.
type Option func(*Solver)

// WithEps sets the accuracy target ε: the solve aims at (1-O(ε))·OPT.
// Must lie in (0, 0.5). Default DefaultEps.
func WithEps(eps float64) Option {
	return func(s *Solver) { s.opt.Eps = eps }
}

// WithSpaceExponent sets the space exponent p > 1: central space scales
// as ~n^(1+1/p) words and adaptive rounds as O(p/ε). Default
// DefaultSpaceExponent.
func WithSpaceExponent(p float64) Option {
	return func(s *Solver) { s.opt.P = p }
}

// WithSeed sets the seed all randomness flows from; equal seeds give
// bit-identical Results. Default DefaultSeed.
func WithSeed(seed uint64) Option {
	return func(s *Solver) { s.opt.Seed = seed }
}

// WithWorkers shards the per-edge/per-vertex work of every sampling
// round across a worker pool: 0 = GOMAXPROCS, 1 = sequential. The Result
// is bit-identical for every worker count — only wall-clock time
// changes.
func WithWorkers(n int) Option {
	return func(s *Solver) { s.opt.Workers = n }
}

// WithProfile selects the constant regime (Practical or Faithful, or a
// modified copy). The profile is copied; later mutation of p does not
// affect the Solver. Default: Practical(eps) for the configured ε.
func WithProfile(p Profile) Option {
	return func(s *Solver) {
		prof := p
		s.opt.Profile = &prof
	}
}

// WithMaxRounds overrides the algorithm's own O(p/ε) round budget τo
// (0 = derive from the profile). This redefines when the algorithm
// considers itself done and stops silently — it is an algorithmic knob,
// not a resource constraint. To bound rounds as an enforced resource
// with best-so-far semantics and an ErrBudgetExceeded trip, use
// WithBudget(Budget{Rounds: r}) instead.
func WithMaxRounds(r int) Option {
	return func(s *Solver) { s.opt.MaxRounds = r }
}

// WithBudget bounds the run's resources along the paper's three axes;
// zero axes are unlimited. See Budget and Solver.Solve for the trip
// semantics.
func WithBudget(b Budget) Option {
	return func(s *Solver) { s.budget = b }
}

// WithObserver registers an Observer for per-round events. Pass nil to
// clear. See Observer for the event contract.
func WithObserver(o Observer) Option {
	return func(s *Solver) { s.obs = o }
}

// WithInitialDuals requests a warm start from a prior solution: the
// dual-primal solver seeds its λ/β trajectory from prev's final dual
// state instead of building the initial solution from scratch, so
// repeated solves on the same or slowly drifting instances converge in
// fewer rounds and passes (observable per round through an Observer;
// Stats.WarmStarted reports whether the seed was installed).
//
// Validity is checked at solve time: the snapshot must address the same
// discretization (same vertex count, ε, maximum weight W* and total
// capacity B — the quantities that fully determine the level scheme).
// When it does not — or prev is nil, carries no duals, or came from a
// different algorithm — the solve falls back to the certified cold
// start; warm starting never fails a solve and never weakens the
// certificate, because λ and the dual objective are re-evaluated
// against the current instance every round regardless of where the
// starting duals came from.
//
// Algorithms other than the dual-primal solver have no duals and ignore
// the option. As a per-solve extra it composes with the cached session:
// solver.Solve(ctx, src, match.WithInitialDuals(prev)) reuses the
// session and warm-starts it.
func WithInitialDuals(prev *Result) Option {
	return func(s *Solver) {
		if prev == nil {
			s.warm = nil
			return
		}
		s.warm = prev.warm
	}
}
