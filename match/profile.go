package match

import "repro/internal/core"

// Profile collects the algorithm's tunable constants (covering widths,
// iteration caps, sparsifier knobs, ablation switches). Most callers
// never touch it: the default is Practical(eps). Pass a (possibly
// modified) Profile through WithProfile.
type Profile = core.Profile

// Practical returns the laptop-sized constant regime: the algorithm's
// structure and asymptotic knobs are preserved while iteration budgets
// are capped so runs finish. Approximation quality under this profile is
// measured (experiment E1), not proven. This is the default profile.
func Practical(eps float64) Profile { return core.Practical(eps) }

// Faithful returns the paper's own constants — astronomically
// conservative at laptop scale, useful for structure checks on tiny
// instances.
func Faithful(eps float64) Profile { return core.Faithful(eps) }
