package match

import "repro/internal/core"

// RoundEvent is the per-round snapshot an Observer receives: the dual
// trajectory (λ entering the round, the primal target β) and the
// resource meters (passes consumed, peak central words) at that point.
type RoundEvent = core.RoundEvent

// Observer receives one RoundEvent per adaptive sampling round, at the
// start of the round, in strictly increasing Round order (Round is
// 1-based). Events are delivered synchronously from the solving
// goroutine — OnRound must not block — and subsume the historical
// LambdaTrace/BetaTrace slices: collecting ev.Lambda and ev.Beta per
// event reconstructs them exactly.
type Observer interface {
	OnRound(RoundEvent)
}

// ObserverFunc adapts a plain function to the Observer interface.
type ObserverFunc func(RoundEvent)

// OnRound implements Observer.
func (f ObserverFunc) OnRound(ev RoundEvent) { f(ev) }

// TraceObserver accumulates the per-round λ/β trajectory — a drop-in
// replacement for reading the old trace slices off Stats.
type TraceObserver struct {
	// Events holds every RoundEvent in delivery order.
	Events []RoundEvent
}

// OnRound implements Observer.
func (t *TraceObserver) OnRound(ev RoundEvent) { t.Events = append(t.Events, ev) }

// Lambdas returns the per-round λ values (the old LambdaTrace).
func (t *TraceObserver) Lambdas() []float64 {
	out := make([]float64, len(t.Events))
	for i, ev := range t.Events {
		out[i] = ev.Lambda
	}
	return out
}

// Betas returns the per-round β values (the old BetaTrace).
func (t *TraceObserver) Betas() []float64 {
	out := make([]float64, len(t.Events))
	for i, ev := range t.Events {
		out[i] = ev.Beta
	}
	return out
}
