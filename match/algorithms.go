package match

import (
	"repro/internal/engine"

	// The ported substrates (semi-streaming greedy, clique protocol,
	// Hopcroft–Karp) register themselves with the engine on import; the
	// dual-primal registration rides in with internal/core.
	_ "repro/internal/algos"
)

// DefaultAlgorithm is the algorithm a Solver runs when WithAlgorithm is
// not given: the paper's dual-primal solver. The default path is
// bit-identical to the historical engine behavior.
const DefaultAlgorithm = "dual-primal"

// AlgorithmInfo describes one registered algorithm: its registry name,
// the model of computation it belongs to, its guarantee, and its
// resource profile in the paper's currency (passes, rounds, central
// words).
type AlgorithmInfo = engine.Info

// Algorithms enumerates every registered matching algorithm, sorted by
// name. Any returned Name is valid for WithAlgorithm; all of them run
// under the same round-loop driver, so budgets, observers, cancellation
// and the Stats meters behave uniformly across the registry.
func Algorithms() []AlgorithmInfo { return engine.List() }

// ErrUnsupported is the sentinel Solve errors wrap when the configured
// algorithm does not support the instance (e.g. hopcroft-karp on a
// nonbipartite graph or non-unit capacities). Match it with errors.Is to
// distinguish "wrong algorithm for this input" from solver failures.
var ErrUnsupported = engine.ErrUnsupported

// WithAlgorithm selects which registered algorithm the Solver runs; see
// Algorithms for the registry. The default is DefaultAlgorithm, the
// dual-primal solver. Every algorithm honors the same budgets, observer
// events and context cancellation; options an algorithm has no use for
// (e.g. WithEps for the exact baseline) are ignored by it.
func WithAlgorithm(name string) Option {
	return func(s *Solver) { s.algo = name }
}
