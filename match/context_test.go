package match_test

// Context plumbing: Solve(ctx, src) must return promptly with ctx.Err()
// when cancelled mid-pass, on every stream backend. The blocking wrapper
// below parks the sweep partway through a pass until the context is
// cancelled — if cancellation were only honored between passes, these
// tests would hang.

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/match"
)

// blockingSource delegates to an inner backend but parks the first
// metered pass at edge `at`: it signals `reached` and then blocks until
// ctx is done, after which it keeps delivering edges (so only the
// engine's own cancellation handling can end the pass).
type blockingSource struct {
	stream.Source
	ctx     context.Context
	at      int
	reached chan struct{}
	once    sync.Once
}

func (b *blockingSource) ForEach(f func(idx int, e graph.Edge) bool) {
	delivered := 0
	b.Source.ForEach(func(idx int, e graph.Edge) bool {
		if delivered == b.at {
			b.once.Do(func() { close(b.reached) })
			<-b.ctx.Done()
		}
		delivered++
		return f(idx, e)
	})
}

// cancelBackends builds the same instance behind every backend.
func cancelBackends(t *testing.T) map[string]stream.Source {
	t.Helper()
	spec := stream.GenSpec{N: 80, M: 4000,
		Weights: graph.WeightConfig{Mode: graph.UniformWeights, WMax: 25}, Seed: 41}
	gen, err := stream.NewGen(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := stream.Materialize(gen)
	path := filepath.Join(t.TempDir(), "cancel.rbg")
	if err := stream.WriteBinaryFile(path, stream.NewEdgeStream(g)); err != nil {
		t.Fatal(err)
	}
	file, err := stream.OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { file.Close() })
	genFresh, err := stream.NewGen(spec)
	if err != nil {
		t.Fatal(err)
	}
	half := g.M() / 2
	a, b := graph.New(g.N()), graph.New(g.N())
	for i, e := range g.Edges() {
		dst := a
		if i >= half {
			dst = b
		}
		dst.MustAddEdge(int(e.U), int(e.V), e.W)
	}
	concat, err := stream.Concat(stream.NewEdgeStream(a), stream.NewEdgeStream(b))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]stream.Source{
		"EdgeStream":   stream.NewEdgeStream(g),
		"FileSource":   file,
		"GenSource":    genFresh,
		"ConcatSource": concat,
	}
}

func TestSolveCancelledMidPassEveryBackend(t *testing.T) {
	for name, inner := range cancelBackends(t) {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			src := &blockingSource{Source: inner, ctx: ctx, at: 37, reached: make(chan struct{})}
			solver, err := match.New(match.WithSeed(5), match.WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			type outcome struct {
				res *match.Result
				err error
			}
			done := make(chan outcome, 1)
			go func() {
				res, err := solver.Solve(ctx, src)
				done <- outcome{res, err}
			}()
			select {
			case <-src.reached:
			case <-time.After(10 * time.Second):
				t.Fatal("solve never started a pass")
			}
			cancel()
			select {
			case out := <-done:
				if !errors.Is(out.err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", out.err)
				}
				if out.res == nil {
					t.Fatal("cancelled solve returned a nil best-so-far result")
				}
				if out.res.Stats.Passes < 1 {
					t.Errorf("cancelled mid-pass but no pass metered: %+v", out.res.Stats)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("solve did not return promptly after mid-pass cancellation")
			}
		})
	}
}

// TestSolveAlreadyCancelled pins the contract at its earliest edge: a
// context cancelled before Solve even starts must come back as ctx.Err()
// with a (zeroed) best-so-far result — not as an internal error from the
// aborted W* scan feeding the discretization garbage.
func TestSolveAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := graph.GNM(30, 100, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 10}, 3)
	solver, err := match.New(match.WithSeed(5), match.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve(ctx, stream.NewEdgeStream(g))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("pre-cancelled solve returned a nil best-so-far result")
	}
}

// passBlockingSource parks a chosen metered pass at a chosen edge until
// ctx is done — the instrument for cancelling a specific pass (e.g. a λ
// evaluation) mid-flight.
type passBlockingSource struct {
	stream.Source
	ctx     context.Context
	pass    int // 1-based pass to park
	at      int // edge offset within that pass
	reached chan struct{}
	once    sync.Once
	seen    int
}

func (b *passBlockingSource) ForEach(f func(idx int, e graph.Edge) bool) {
	b.seen++
	pass, delivered := b.seen, 0
	b.Source.ForEach(func(idx int, e graph.Edge) bool {
		if pass == b.pass && delivered == b.at {
			b.once.Do(func() { close(b.reached) })
			<-b.ctx.Done()
		}
		delivered++
		return f(idx, e)
	})
}

// TestSolveCancelledDuringLambdaPassMarshals pins the certificate
// contract of a cancelled run: aborting a λ evaluation mid-pass leaves a
// prefix-minimum that would be an unsound certificate, so the engine
// surrenders it — Lambda is zeroed (never lambdaOf's +Inf sentinel, so
// the best-so-far Result still marshals to JSON) and
// CertifiedUpperBound reports +Inf.
func TestSolveCancelledDuringLambdaPassMarshals(t *testing.T) {
	g := graph.GNM(60, 2000, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 25}, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Pass 3 is the initial λ evaluation (after the W* scan and the
	// level census); parking it at edge 0 aborts it before any kept edge
	// lowers lambdaOf's +Inf running minimum.
	src := &passBlockingSource{Source: stream.NewEdgeStream(g), ctx: ctx,
		pass: 3, at: 0, reached: make(chan struct{})}
	solver, err := match.New(match.WithSeed(5), match.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res *match.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := solver.Solve(ctx, src)
		done <- outcome{res, err}
	}()
	select {
	case <-src.reached:
	case <-time.After(10 * time.Second):
		t.Fatal("solve never reached the λ pass")
	}
	cancel()
	var out outcome
	select {
	case out = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("solve did not return after cancellation")
	}
	if !errors.Is(out.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", out.err)
	}
	if out.res.Lambda != 0 {
		t.Fatalf("cancelled run kept lambda %v: a partial λ evaluation must surrender the certificate", out.res.Lambda)
	}
	if !math.IsInf(out.res.CertifiedUpperBound(), 1) {
		t.Fatalf("cancelled run still certifies a bound: %v", out.res.CertifiedUpperBound())
	}
	if _, err := json.Marshal(out.res); err != nil {
		t.Fatalf("cancelled best-so-far result not JSON-marshalable: %v", err)
	}
}

// TestSolveBudgetTripKeepsCertificate pins the complement: a budget trip
// fires only at pass boundaries, after complete λ evaluations, so the
// best-so-far result keeps a sound (finite, positive) certificate.
func TestSolveBudgetTripKeepsCertificate(t *testing.T) {
	g := graph.GNM(64, 512, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 40}, 101)
	solver, err := match.New(match.WithSeed(7), match.WithWorkers(1),
		match.WithBudget(match.Budget{Rounds: 1}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), stream.NewEdgeStream(g))
	if !errors.Is(err, match.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if res.Lambda <= 0 {
		t.Fatalf("budget trip surrendered the certificate: lambda = %v", res.Lambda)
	}
	if math.IsInf(res.CertifiedUpperBound(), 1) {
		t.Fatal("budget-tripped run reports no certified bound")
	}
}

func TestSolveDeadlineExceeded(t *testing.T) {
	backends := cancelBackends(t)
	inner := backends["EdgeStream"]
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	src := &blockingSource{Source: inner, ctx: ctx, at: 11, reached: make(chan struct{})}
	solver, err := match.New(match.WithSeed(5), match.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := solver.Solve(ctx, src)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res == nil {
		t.Fatal("deadline-exceeded solve returned a nil best-so-far result")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("solve took %v past a 50ms deadline", elapsed)
	}
}
