package match

import (
	"math"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/matching"
)

// Matching is a feasible b-matching: edge indices into the solved
// Source's sequence, with per-edge multiplicities (multiplicity is 1 in
// ordinary matchings; Mult may be empty then).
type Matching struct {
	// EdgeIdx are the selected edges' indices in the input stream.
	EdgeIdx []int `json:"edgeIdx"`
	// Mult holds the multiplicity of each selected edge, parallel to
	// EdgeIdx (empty = all 1).
	Mult []int `json:"mult,omitempty"`
}

// Size returns the number of matched edges counting multiplicity.
func (m *Matching) Size() int { return m.asInternal().Size() }

// asInternal adapts to the internal matching representation (nil Mult
// means all-ones there; an empty public Mult converts back to nil).
func (m *Matching) asInternal() *matching.Matching {
	im := &matching.Matching{EdgeIdx: m.EdgeIdx}
	if len(m.Mult) > 0 {
		im.Mult = m.Mult
	}
	return im
}

// Stats reports the resources a solve actually consumed — the
// quantities the paper's theorems bound. All fields marshal to JSON. The
// per-round λ/β trajectory is not stored here; register an Observer to
// stream it.
type Stats struct {
	// SamplingRounds is the number of adaptive access rounds (Theorem 15
	// bounds it by O(p/ε)).
	SamplingRounds int `json:"samplingRounds"`
	// InitRounds is the rounds consumed by the per-level initial
	// solution (Lemma 20).
	InitRounds int `json:"initRounds"`
	// OracleUses counts sequential deferred-sparsifier uses — the
	// "adaptivity at use" the paper separates from data access.
	OracleUses int `json:"oracleUses"`
	// MicroCalls counts MicroOracle invocations.
	MicroCalls int `json:"microCalls"`
	// PackIters counts inner packing iterations.
	PackIters int `json:"packIters"`
	// Passes is the metered passes over the input Source.
	Passes int `json:"passes"`
	// PeakSampleEdges is the peak count of sampled edges held centrally.
	PeakSampleEdges int `json:"peakSampleEdges"`
	// PeakWords is the high-water mark of metered central storage.
	PeakWords int `json:"peakWords"`
	// DualStateWords is the final size of the dual state.
	DualStateWords int `json:"dualStateWords"`
	// UnionSizes lists, per sampling round, the offline-solve union size.
	UnionSizes []int `json:"unionSizes,omitempty"`
	// WitnessEvents counts MicroOracle part (i) firings.
	WitnessEvents int `json:"witnessEvents"`
	// EarlyStopped reports whether the dual certificate reached its
	// target before the round budget ran out.
	EarlyStopped bool `json:"earlyStopped"`
	// WarmStarted reports that the solve installed a prior solution's
	// dual snapshot (WithInitialDuals) instead of building the initial
	// solution; a requested-but-invalid snapshot falls back to the cold
	// start and reports false.
	WarmStarted bool `json:"warmStarted"`
	// RoundOfBestMatching is the 1-based sampling round in which the
	// reported matching was found.
	RoundOfBestMatching int `json:"roundOfBestMatching"`
}

// Result is the outcome of a Solve: the primal matching, the dual
// certificate, and the resource stats. It marshals to JSON as-is
// (every field is finite; the possibly-infinite certified bound is a
// method, not a field).
type Result struct {
	// Matching is the best integral b-matching found.
	Matching Matching `json:"matching"`
	// Weight is the matching's weight in original units.
	Weight float64 `json:"weight"`
	// DualObjective is the final dual objective scaled back to original
	// units.
	DualObjective float64 `json:"dualObjective"`
	// Lambda is the final minimum normalized coverage over kept edges.
	Lambda float64 `json:"lambda"`
	// Eps is the accuracy target the run was configured with — baked in
	// here so the certificate below cannot be computed against a
	// mismatched ε.
	Eps float64 `json:"eps"`
	// Stats meters what the run consumed.
	Stats Stats `json:"stats"`

	// warm is the detached dual snapshot a later solve can seed from via
	// WithInitialDuals (nil for algorithms without duals and for runs
	// that aborted before the duals existed). Deliberately unexported:
	// it is an opaque handle, not part of the JSON surface.
	warm *core.WarmDuals
}

// CertifiedUpperBound returns the dual certificate's upper bound on the
// optimum matching weight: (dual objective)/λ with the (1+ε)
// discretization slack folded in, using the ε the solve ran with. Valid
// (up to the weight mass dropped by discretization) whenever Lambda > 0
// by weak duality; returns +Inf when Lambda <= 0 — check before
// marshaling it anywhere. Cancelled runs carry no certificate (the
// engine zeroes Lambda, so this reports +Inf); a budget-tripped run
// keeps the last completely evaluated λ — its certificate stands when
// Lambda > 0, and a trip early enough that no λ pass had run yet
// reports +Inf like any other certificate-free result.
func (r *Result) CertifiedUpperBound() float64 {
	if r.Lambda <= 0 {
		return math.Inf(1)
	}
	return r.DualObjective / r.Lambda * (1 + r.Eps)
}

// Validate checks the matching's degree feasibility against any Source
// in one metered pass and O(|M|) memory.
func (r *Result) Validate(src Source) error {
	return r.Matching.asInternal().ValidateStream(src)
}

// fromCore converts the engine's result to the public shape, baking in
// the solve-time ε.
func fromCore(res *core.Result, eps float64) *Result {
	out := &Result{
		Weight:        res.Weight,
		DualObjective: res.DualObjective,
		Lambda:        res.Lambda,
		Eps:           eps,
		Stats: Stats{
			SamplingRounds:      res.Stats.SamplingRounds,
			InitRounds:          res.Stats.InitRounds,
			OracleUses:          res.Stats.OracleUses,
			MicroCalls:          res.Stats.MicroCalls,
			PackIters:           res.Stats.PackIters,
			Passes:              res.Stats.Passes,
			PeakSampleEdges:     res.Stats.PeakSampleEdges,
			PeakWords:           res.Stats.PeakWords,
			DualStateWords:      res.Stats.DualStateWords,
			UnionSizes:          res.Stats.UnionSizes,
			WitnessEvents:       res.Stats.WitnessEvents,
			EarlyStopped:        res.Stats.EarlyStopped,
			WarmStarted:         res.Stats.WarmStarted,
			RoundOfBestMatching: res.Stats.RoundOfBestMatching,
		},
		warm: res.Warm,
	}
	if res.Matching != nil {
		out.Matching = Matching{EdgeIdx: res.Matching.EdgeIdx, Mult: res.Matching.Mult}
	}
	return out
}

// fromOutcome converts a driver Outcome (any registry algorithm) to the
// public shape. The driver's generic meters land on the same Stats
// fields the dual-primal solver fills — rounds, passes, peak words — so
// cross-algorithm rows compare like for like; substrate-specific
// counters (oracle uses, micro calls) stay zero for algorithms that
// have no such machinery.
func fromOutcome(out *engine.Outcome, eps float64) *Result {
	res := &Result{
		Weight:        out.Weight,
		DualObjective: out.DualObjective,
		Lambda:        out.Lambda,
		Eps:           eps,
		Stats: Stats{
			SamplingRounds: out.Rounds,
			Passes:         out.Passes,
			PeakWords:      out.PeakWords,
			EarlyStopped:   out.EarlyStopped,
		},
	}
	if out.Matching != nil {
		res.Matching = Matching{EdgeIdx: out.Matching.EdgeIdx, Mult: out.Matching.Mult}
	}
	return res
}
