package match_test

// Budget semantics: for each axis the returned best-so-far matching is
// feasible, errors.Is(err, match.ErrBudgetExceeded) holds, the reported
// trip axis is the constrained one, and an ample budget is a strict
// no-op (bit-identical result).

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/match"
)

func budgetInstance() *graph.Graph {
	return graph.GNM(64, 512, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 40}, 101)
}

func solveBudgeted(t *testing.T, b match.Budget) (*match.Result, error, stream.Source) {
	t.Helper()
	src := stream.NewEdgeStream(budgetInstance())
	solver, err := match.New(match.WithSeed(7), match.WithWorkers(1), match.WithBudget(b))
	if err != nil {
		t.Fatal(err)
	}
	res, serr := solver.Solve(context.Background(), src)
	return res, serr, src
}

// assertTrip checks the common contract of a tripped run.
func assertTrip(t *testing.T, res *match.Result, err error, axis match.BudgetAxis) *match.BudgetError {
	t.Helper()
	if !errors.Is(err, match.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *match.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err %v is not a *BudgetError", err)
	}
	if be.Axis != axis {
		t.Fatalf("tripped axis %q, want %q (err: %v)", be.Axis, axis, err)
	}
	if be.Used <= be.Limit {
		t.Errorf("trip reports used %d <= limit %d", be.Used, be.Limit)
	}
	if res == nil {
		t.Fatal("tripped solve returned no best-so-far result")
	}
	return be
}

func TestBudgetRounds(t *testing.T) {
	base, err, _ := solveBudgeted(t, match.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.SamplingRounds < 2 {
		t.Fatalf("instance converges in %d rounds; budget test needs >= 2", base.Stats.SamplingRounds)
	}
	res, err, src := solveBudgeted(t, match.Budget{Rounds: 1})
	assertTrip(t, res, err, match.AxisRounds)
	if res.Stats.SamplingRounds != 1 {
		t.Errorf("ran %d sampling rounds under a 1-round budget", res.Stats.SamplingRounds)
	}
	if verr := res.Validate(src); verr != nil {
		t.Errorf("best-so-far matching infeasible: %v", verr)
	}
	if res.Weight <= 0 {
		t.Error("one full round produced no matching")
	}
}

func TestBudgetPasses(t *testing.T) {
	// A run always wants at least 5 passes (3 setup/λ + 2 per round); a
	// 4-pass budget trips after the first round's λ re-evaluation.
	res, err, src := solveBudgeted(t, match.Budget{Passes: 4})
	be := assertTrip(t, res, err, match.AxisPasses)
	if be.Limit != 4 {
		t.Errorf("limit %d recorded, want 4", be.Limit)
	}
	if res.Stats.Passes <= 4 {
		t.Errorf("trip with only %d passes metered", res.Stats.Passes)
	}
	if verr := res.Validate(src); verr != nil {
		t.Errorf("best-so-far matching infeasible: %v", verr)
	}

	// A 2-pass budget trips before any sampling: the best-so-far result
	// is an empty (still feasible) matching.
	early, err, src2 := solveBudgeted(t, match.Budget{Passes: 2})
	assertTrip(t, early, err, match.AxisPasses)
	if early.Stats.SamplingRounds != 0 {
		t.Errorf("sampling ran despite a 2-pass budget: %+v", early.Stats)
	}
	if verr := early.Validate(src2); verr != nil {
		t.Errorf("empty best-so-far matching infeasible: %v", verr)
	}
}

func TestBudgetSpaceWords(t *testing.T) {
	res, err, src := solveBudgeted(t, match.Budget{SpaceWords: 50})
	be := assertTrip(t, res, err, match.AxisSpaceWords)
	if be.Used <= 50 {
		t.Errorf("space trip reports used %d <= limit 50", be.Used)
	}
	if res.Stats.PeakWords <= 50 {
		t.Errorf("peak words %d inconsistent with a space trip at 50", res.Stats.PeakWords)
	}
	if verr := res.Validate(src); verr != nil {
		t.Errorf("best-so-far matching infeasible: %v", verr)
	}
}

func TestBudgetAmpleIsNoOp(t *testing.T) {
	base, err, _ := solveBudgeted(t, match.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	ample, err, _ := solveBudgeted(t, match.Budget{Passes: 1 << 20, Rounds: 1 << 20, SpaceWords: 1 << 40})
	if err != nil {
		t.Fatalf("ample budget tripped: %v", err)
	}
	if !reflect.DeepEqual(base, ample) {
		t.Fatalf("ample budget changed the result\nbase:  w=%v stats=%+v\nample: w=%v stats=%+v",
			base.Weight, base.Stats, ample.Weight, ample.Stats)
	}
}

func TestBudgetZeroValueUnlimited(t *testing.T) {
	if !(match.Budget{}).IsZero() {
		t.Fatal("zero Budget not IsZero")
	}
	res, err, _ := solveBudgeted(t, match.Budget{})
	if err != nil || res.Weight <= 0 {
		t.Fatalf("unbudgeted solve failed: %v %v", res, err)
	}
}
