package match_test

// Allocation benchmarks for the session lifecycle: cold
// construct-per-call solves, reused-session solves, warm-started repeat
// solves, and pool-served solves. CI runs these with -benchtime=1x as
// an allocation smoke — a regression that re-introduces per-solve
// rebuild cost shows up as an allocs/op jump here before it shows up in
// E17.

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/match"
)

func benchGraph() *graph.Graph {
	return graph.GNM(48, 320, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 25}, 17)
}

func benchOpts() []match.Option {
	return []match.Option{match.WithSeed(7), match.WithWorkers(1), match.WithEps(0.3)}
}

func BenchmarkSolveCold(b *testing.B) {
	src := stream.NewEdgeStream(benchGraph())
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		solver, err := match.New(benchOpts()...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := solver.Solve(ctx, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveSessionReuse(b *testing.B) {
	src := stream.NewEdgeStream(benchGraph())
	ctx := context.Background()
	solver, err := match.New(benchOpts()...)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := solver.Solve(ctx, src); err != nil { // session warm-up
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(ctx, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveWarmRepeat(b *testing.B) {
	src := stream.NewEdgeStream(benchGraph())
	ctx := context.Background()
	solver, err := match.New(benchOpts()...)
	if err != nil {
		b.Fatal(err)
	}
	prev, err := solver.Solve(ctx, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solver.Solve(ctx, src, match.WithInitialDuals(prev))
		if err != nil {
			b.Fatal(err)
		}
		prev = res
	}
}

func BenchmarkPoolSolve(b *testing.B) {
	src := stream.NewEdgeStream(benchGraph())
	ctx := context.Background()
	pool, err := match.NewPool(2, benchOpts()...)
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	if r := <-pool.Submit(ctx, src); r.Err != nil { // session warm-up
		b.Fatal(r.Err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := <-pool.Submit(ctx, src); r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}
