package match_test

// Runnable godoc examples for the public facade: the basic one-shot
// solve, a budgeted solve with best-so-far semantics, and algorithm
// selection through the registry. `go test` executes these and pins the
// printed output, so the documented usage can never drift from the
// actual API.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/match"
)

// exampleGraph is a small deterministic weighted instance shared by the
// examples.
func exampleGraph() *graph.Graph {
	return graph.GNM(40, 200, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 20}, 3)
}

func ExampleSolve() {
	g := exampleGraph()
	res, err := match.Solve(context.Background(), stream.NewEdgeStream(g),
		match.WithEps(0.25),
		match.WithSpaceExponent(2),
		match.WithSeed(5),
		match.WithWorkers(1),
	)
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	fmt.Printf("matched %d edges, weight %.2f\n", res.Matching.Size(), res.Weight)
	fmt.Printf("resources: %d sampling rounds, %d passes\n",
		res.Stats.SamplingRounds, res.Stats.Passes)
	// Output:
	// matched 20 edges, weight 356.98
	// resources: 25 sampling rounds, 53 passes
}

func ExampleWithBudget() {
	g := exampleGraph()
	// Two adaptive rounds, then the exchange must act: the engine stops
	// at the boundary and hands back the best feasible matching so far.
	res, err := match.Solve(context.Background(), stream.NewEdgeStream(g),
		match.WithSeed(5),
		match.WithWorkers(1),
		match.WithBudget(match.Budget{Rounds: 2}),
	)
	if errors.Is(err, match.ErrBudgetExceeded) {
		var be *match.BudgetError
		errors.As(err, &be)
		fmt.Printf("budget tripped on %s (limit %d)\n", be.Axis, be.Limit)
	} else if err != nil {
		fmt.Println("solve:", err)
		return
	}
	fmt.Printf("best-so-far: %d edges after %d rounds\n",
		res.Matching.Size(), res.Stats.SamplingRounds)
	// Output:
	// budget tripped on rounds (limit 2)
	// best-so-far: 20 edges after 2 rounds
}

func ExampleWithAlgorithm() {
	g := exampleGraph()
	// The same instance through two substrates of the registry: the
	// default dual-primal solver and the one-pass greedy baseline. Both
	// run under the same engine driver, so the resource meters compare
	// like for like.
	for _, name := range []string{match.DefaultAlgorithm, "greedy"} {
		res, err := match.Solve(context.Background(), stream.NewEdgeStream(g),
			match.WithAlgorithm(name),
			match.WithSeed(5),
			match.WithWorkers(1),
		)
		if err != nil {
			fmt.Println(name, "->", err)
			continue
		}
		fmt.Printf("%s: weight %.2f in %d passes\n", name, res.Weight, res.Stats.Passes)
	}
	// Output:
	// dual-primal: weight 356.98 in 53 passes
	// greedy: weight 193.90 in 1 passes
}

func ExampleWithInitialDuals() {
	g := exampleGraph()
	// One Solver = one reusable session. Re-solving the same (or a
	// slowly drifting) instance with the previous solution's duals
	// installed converges in far fewer rounds — the repeat-solve shape
	// of a server answering a stream of related instances.
	solver, err := match.New(match.WithSeed(5), match.WithWorkers(1), match.WithEps(0.3))
	if err != nil {
		fmt.Println("configure:", err)
		return
	}
	ctx := context.Background()
	src := stream.NewEdgeStream(g)
	var prev *match.Result
	for i := 1; i <= 3; i++ {
		var extra []match.Option
		if prev != nil {
			extra = append(extra, match.WithInitialDuals(prev))
		}
		res, err := solver.Solve(ctx, src, extra...)
		if err != nil {
			fmt.Println("solve:", err)
			return
		}
		fmt.Printf("solve %d: weight %.2f in %d rounds (warm=%v)\n",
			i, res.Weight, res.Stats.SamplingRounds, res.Stats.WarmStarted)
		prev = res
	}
	// Output:
	// solve 1: weight 356.98 in 21 rounds (warm=false)
	// solve 2: weight 356.98 in 10 rounds (warm=true)
	// solve 3: weight 356.98 in 1 rounds (warm=true)
}

func ExampleNewPool() {
	// A Pool is a fixed-size fleet of solve sessions behind one FIFO
	// queue: Submit returns immediately with a result channel, jobs are
	// served in arrival order, and each worker's session is reused from
	// job to job. Close drains gracefully.
	pool, err := match.NewPool(2, match.WithSeed(5), match.WithWorkers(1))
	if err != nil {
		fmt.Println("pool:", err)
		return
	}
	defer pool.Close()
	ctx := context.Background()
	jobs := []<-chan match.JobResult{
		pool.Submit(ctx, stream.NewEdgeStream(exampleGraph())),
		pool.Submit(ctx, stream.NewEdgeStream(exampleGraph()),
			match.WithBudget(match.Budget{Rounds: 2})), // per-job budget
	}
	for i, ch := range jobs {
		r := <-ch
		if r.Err != nil && !errors.Is(r.Err, match.ErrBudgetExceeded) {
			fmt.Println("job", i, "failed:", r.Err)
			continue
		}
		fmt.Printf("job %d: weight %.2f in %d rounds\n", i, r.Result.Weight, r.Result.Stats.SamplingRounds)
	}
	// Output:
	// job 0: weight 356.98 in 25 rounds
	// job 1: weight 356.98 in 2 rounds
}

func ExampleAlgorithms() {
	for _, info := range match.Algorithms() {
		fmt.Printf("%s (%s)\n", info.Name, info.Model)
	}
	// Output:
	// clique-maximal (congested clique (simulated))
	// dual-primal (semi-streaming / MPC / clique (Ahn–Guha))
	// greedy (semi-streaming)
	// greedy-augment (semi-streaming)
	// hopcroft-karp (offline (exact baseline))
}
