package match_test

// The acceptance gate of the facade: match.Solver.Solve with default
// plumbing must be bit-identical to the engine's historical core.Solve —
// on the pinned 14-run corpus (7 instance families × 2 worker counts)
// for the in-memory backend, and across all four stream backends. The
// public Result is compared to the engine Result field by field (exact
// float bits, exact matching indices, exact stats).

import (
	"context"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stream"
	"repro/match"
)

// corpus returns the 7 instance families of the pinned corpus (the same
// families internal/core's worker bit-identity suite uses).
func corpus() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"gnm-uniform": graph.GNM(64, 512, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 40}, 101),
		"gnm-powers":  graph.GNM(48, 300, graph.WeightConfig{Mode: graph.PowersOf, Eps: 0.25, Levels: 10}, 102),
		"gnm-exp":     graph.GNM(56, 400, graph.WeightConfig{Mode: graph.ExpWeights, Scale: 2}, 103),
		"powerlaw":    graph.PowerLaw(64, 10, 2.5, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 30}, 104),
		"triangles":   graph.TriangleChain(16),
		"bipartite":   graph.BipartiteParallel(24, 24, 200, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 12}, 105, 2),
		"bmatching":   graph.WithRandomB(graph.GNM(40, 260, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 15}, 106), 3, false, 107),
	}
}

// assertMatchesCore compares the public result against the engine result
// bit for bit. The public Stats drops the λ/β trace slices (the Observer
// subsumes them); everything else must agree exactly.
func assertMatchesCore(t *testing.T, label string, pub *match.Result, ref *core.Result) {
	t.Helper()
	exact := func(name string, got, want float64) {
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s: %s = %v, engine has %v (not bit-identical)", label, name, got, want)
		}
	}
	exact("Weight", pub.Weight, ref.Weight)
	exact("DualObjective", pub.DualObjective, ref.DualObjective)
	exact("Lambda", pub.Lambda, ref.Lambda)
	if !reflect.DeepEqual(pub.Matching.EdgeIdx, ref.Matching.EdgeIdx) {
		t.Errorf("%s: matching edge indices differ\npub: %v\nref: %v", label, pub.Matching.EdgeIdx, ref.Matching.EdgeIdx)
	}
	if !reflect.DeepEqual(pub.Matching.Mult, ref.Matching.Mult) {
		t.Errorf("%s: matching multiplicities differ", label)
	}
	refStats := []int{ref.Stats.SamplingRounds, ref.Stats.InitRounds, ref.Stats.OracleUses,
		ref.Stats.MicroCalls, ref.Stats.PackIters, ref.Stats.Passes, ref.Stats.PeakSampleEdges,
		ref.Stats.PeakWords, ref.Stats.DualStateWords, ref.Stats.WitnessEvents, ref.Stats.RoundOfBestMatching}
	pubStats := []int{pub.Stats.SamplingRounds, pub.Stats.InitRounds, pub.Stats.OracleUses,
		pub.Stats.MicroCalls, pub.Stats.PackIters, pub.Stats.Passes, pub.Stats.PeakSampleEdges,
		pub.Stats.PeakWords, pub.Stats.DualStateWords, pub.Stats.WitnessEvents, pub.Stats.RoundOfBestMatching}
	if !reflect.DeepEqual(pubStats, refStats) {
		t.Errorf("%s: stats differ\npub: %v\nref: %v", label, pubStats, refStats)
	}
	if !reflect.DeepEqual(pub.Stats.UnionSizes, ref.Stats.UnionSizes) {
		t.Errorf("%s: union sizes differ", label)
	}
	if pub.Stats.EarlyStopped != ref.Stats.EarlyStopped {
		t.Errorf("%s: early-stop flag differs", label)
	}
}

func TestSolveEquivalentToCoreOnCorpus(t *testing.T) {
	// 7 families × workers {1, 4} = the pinned 14-run corpus.
	for name, g := range corpus() {
		for _, workers := range []int{1, 4} {
			ref, err := core.Solve(stream.NewEdgeStream(g), core.Options{Eps: 0.25, P: 2, Seed: 7, Workers: workers})
			if err != nil {
				t.Fatalf("%s: engine: %v", name, err)
			}
			solver, err := match.New(match.WithEps(0.25), match.WithSpaceExponent(2),
				match.WithSeed(7), match.WithWorkers(workers))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			pub, err := solver.Solve(context.Background(), stream.NewEdgeStream(g))
			if err != nil {
				t.Fatalf("%s: facade: %v", name, err)
			}
			assertMatchesCore(t, name, pub, ref)
			if pub.Eps != 0.25 {
				t.Errorf("%s: solve-time eps not baked into the result: %v", name, pub.Eps)
			}
			if got, want := pub.CertifiedUpperBound(), ref.CertifiedUpperBound(0.25); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%s: certified bound %v, engine (with matching eps) has %v", name, got, want)
			}
		}
	}
}

func TestSolveEquivalentToCoreAcrossBackends(t *testing.T) {
	// The same edge sequence behind all four backends must match the
	// engine's in-memory reference exactly, for sequential and sharded
	// pipelines.
	spec := stream.GenSpec{N: 72, M: 700,
		Weights: graph.WeightConfig{Mode: graph.UniformWeights, WMax: 30}, Seed: 21}
	gen, err := stream.NewGen(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := stream.Materialize(gen)
	path := filepath.Join(t.TempDir(), "inst.rbg")
	if err := stream.WriteBinaryFile(path, stream.NewEdgeStream(g)); err != nil {
		t.Fatal(err)
	}
	file, err := stream.OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	genFresh, err := stream.NewGen(spec)
	if err != nil {
		t.Fatal(err)
	}
	half := g.M() / 2
	a, b := graph.New(g.N()), graph.New(g.N())
	for i, e := range g.Edges() {
		dst := a
		if i >= half {
			dst = b
		}
		dst.MustAddEdge(int(e.U), int(e.V), e.W)
	}
	concat, err := stream.Concat(stream.NewEdgeStream(a), stream.NewEdgeStream(b))
	if err != nil {
		t.Fatal(err)
	}
	backends := map[string]match.Source{
		"memory":    stream.NewEdgeStream(g),
		"file":      file,
		"generator": genFresh,
		"sharded":   concat,
	}
	for _, workers := range []int{1, 0} {
		ref, err := core.Solve(stream.NewEdgeStream(g), core.Options{Eps: 0.25, P: 2, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		solver, err := match.New(match.WithSeed(9), match.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for name, src := range backends {
			pub, err := solver.Solve(context.Background(), src)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			assertMatchesCore(t, name, pub, ref)
		}
	}
}
