package match

import "repro/internal/core"

// Budget bounds the resources one Solve may consume along the paper's
// three axes. The zero value (and any zero field) means "unlimited" on
// that axis:
//
//   - Passes bounds the metered passes over the input Source — the same
//     quantity Stats.Passes reports.
//   - Rounds bounds the adaptive sampling rounds
//     (Stats.SamplingRounds).
//   - SpaceWords bounds the high-water mark of central storage
//     (Stats.PeakWords).
//
// Enforcement happens inside the engine at pass and round boundaries.
// When an axis runs out, Solve returns the best-so-far Result plus a
// *BudgetError naming the axis; an ample budget is a strict no-op (the
// run is bit-identical to an unbudgeted one).
type Budget = core.Budget

// BudgetAxis names the resource axis that tripped a budget.
type BudgetAxis = core.BudgetAxis

// The three resource axes of the paper: data accesses, adaptive rounds,
// central space.
const (
	AxisPasses     = core.AxisPasses
	AxisRounds     = core.AxisRounds
	AxisSpaceWords = core.AxisSpaceWords
)

// ErrBudgetExceeded is the sentinel every budget trip matches via
// errors.Is. The concrete error is always a *BudgetError; extract it
// with errors.As to learn the axis and the amounts.
var ErrBudgetExceeded = core.ErrBudgetExceeded

// BudgetError reports which budget axis tripped, the configured limit,
// and the consumption that exceeded it. It accompanies a best-so-far
// Result — a budget trip is a bounded answer, not a failure.
type BudgetError = core.BudgetError
