// Package match is the public face of the reproduction of "Access to
// Data and Number of Iterations: Dual Primal Algorithms for Maximum
// Matching under Resource Constraints" (Ahn–Guha, SPAA 2015): a
// (1-ε)-approximate weighted nonbipartite maximum b-matching solver
// whose resource axes — passes over the data, adaptive rounds, central
// space — are explicit, enforceable inputs rather than post-hoc
// observations.
//
// A Solver is configured once with functional options and then run
// against any Source backend:
//
//	solver, err := match.New(
//	    match.WithEps(0.25),           // accuracy: (1-O(ε))·OPT
//	    match.WithSpaceExponent(2),    // central space ~ n^(1+1/p), O(p/ε) rounds
//	    match.WithSeed(42),
//	)
//	res, err := solver.Solve(ctx, src)
//
// Solve honors ctx cancellation and deadlines at pass and round
// boundaries on every backend (in-memory, file-backed, generator-backed,
// sharded). A Budget makes the paper's resource constraints binding: the
// engine stops the moment an axis runs out and returns the best-so-far
// matching together with a *BudgetError that errors.Is-matches
// ErrBudgetExceeded:
//
//	solver, _ := match.New(match.WithBudget(match.Budget{Rounds: 4}))
//	res, err := solver.Solve(ctx, src)
//	if errors.Is(err, match.ErrBudgetExceeded) {
//	    var be *match.BudgetError
//	    errors.As(err, &be) // be.Axis, be.Limit, be.Used
//	    // res.Matching is the best feasible matching found in 4 rounds
//	}
//
// An Observer streams the per-round dual trajectory (λ, β) and resource
// meters while the solve runs. The default-options in-memory path is
// bit-identical to the internal engine's historical behavior, pinned by
// an equivalence test over a 14-run corpus; the Result is a pure
// function of (edge sequence, options) for every backend and worker
// count.
//
// The dual-primal solver is one algorithm in a registry: WithAlgorithm
// selects others (the semi-streaming greedy baselines, the simulated
// congested-clique protocol, exact Hopcroft–Karp; see Algorithms), all
// running on the same round-loop driver, so budgets, observers,
// cancellation and the Stats meters behave identically whichever
// substrate computes the matching:
//
//	res, err := match.Solve(ctx, src, match.WithAlgorithm("greedy"))
//
// A Solver is also a reusable session: repeated Solve calls reuse the
// previous solve's working memory with bit-identical results, and
// WithInitialDuals warm-starts a solve from a prior solution so
// repeats on the same or drifting instances converge in fewer rounds.
// Pool runs a fixed-size fleet of sessions behind a FIFO queue for
// many instances in flight:
//
//	pool, _ := match.NewPool(4, match.WithEps(0.3))
//	defer pool.Close()
//	r := <-pool.Submit(ctx, src) // r.Result, r.Err
package match

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stream"
)

// Source is the "access to data" abstraction a Solver consumes: a
// replayable, read-only edge sequence with explicit pass metering. Four
// backends ship with the module — stream.NewEdgeStream (in-memory),
// stream.OpenBinary (on-disk, out-of-core), stream.NewGen (replayed
// generator) and stream.Concat (sharded composition) — and all of them
// yield bit-identical Results on the same edge sequence.
type Source = stream.Source

// Default option values: a mid-accuracy, laptop-friendly configuration.
const (
	// DefaultEps is the accuracy target ε used when WithEps is not given.
	DefaultEps = 0.25
	// DefaultSpaceExponent is the space exponent p used when
	// WithSpaceExponent is not given.
	DefaultSpaceExponent = 2.0
	// DefaultSeed drives all randomness when WithSeed is not given.
	DefaultSeed = 1
)

// ErrInvalidOption is the sentinel wrapped by every option-validation
// error New returns.
var ErrInvalidOption = errors.New("match: invalid option")

// Solver is a configured solve. Its configuration is immutable after
// New; internally it caches one reusable solve *session* (the algorithm
// instance plus its scratch arena), so calling Solve repeatedly on one
// Solver reuses working memory instead of rebuilding every structure —
// near-zero allocation on same-shape instances, with results
// bit-identical to a fresh Solver's (pinned by the engine conformance
// suite and the equivalence corpus).
//
// A Solver remains safe for concurrent Solve calls: the cached session
// serves one solve at a time and concurrent callers transparently fall
// back to a fresh throwaway session (same results, cold allocation
// cost). For a fleet of sessions serving many instances concurrently,
// use a Pool. The configured Observer is shared across concurrent
// solves and must tolerate that.
type Solver struct {
	opt    core.Options
	budget Budget
	obs    Observer
	algo   string
	warm   *core.WarmDuals
	cache  *sessionCache
}

// sessionCache holds the Solver's reusable sessions behind a mutex.
// Acquisition uses TryLock: the point of the cache is saved allocation,
// never serialization, so a busy cache yields a fresh session instead
// of a wait.
type sessionCache struct {
	mu   sync.Mutex
	core *core.Session
	eng  *engine.Session
}

// New builds a Solver from functional options; unspecified knobs take
// the Default* values. All validation happens here — a non-nil Solver
// never fails to start for configuration reasons.
func New(opts ...Option) (*Solver, error) {
	s := &Solver{opt: core.Options{
		Eps:  DefaultEps,
		P:    DefaultSpaceExponent,
		Seed: DefaultSeed,
	}, algo: DefaultAlgorithm, cache: &sessionCache{}}
	for _, o := range opts {
		o(s)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// validate checks the full configuration; every failure wraps
// ErrInvalidOption.
func (s *Solver) validate() error {
	if !(s.opt.Eps > 0) || s.opt.Eps >= 0.5 {
		return fmt.Errorf("%w: eps %v outside (0, 0.5)", ErrInvalidOption, s.opt.Eps)
	}
	if !(s.opt.P > 1) {
		return fmt.Errorf("%w: space exponent %v must be > 1", ErrInvalidOption, s.opt.P)
	}
	if s.opt.Workers < 0 {
		return fmt.Errorf("%w: workers %d must be >= 0", ErrInvalidOption, s.opt.Workers)
	}
	if s.opt.MaxRounds < 0 {
		return fmt.Errorf("%w: max rounds %d must be >= 0", ErrInvalidOption, s.opt.MaxRounds)
	}
	if s.budget.Passes < 0 || s.budget.Rounds < 0 || s.budget.SpaceWords < 0 {
		return fmt.Errorf("%w: budget axes must be >= 0 (0 = unlimited), got %+v", ErrInvalidOption, s.budget)
	}
	if _, _, ok := engine.Lookup(s.algo); !ok {
		return fmt.Errorf("%w: unknown algorithm %q (registered: %s)", ErrInvalidOption, s.algo, engine.Names())
	}
	return nil
}

// Eps returns the configured accuracy target.
func (s *Solver) Eps() float64 { return s.opt.Eps }

// Budget returns the configured resource budget (zero value when none).
func (s *Solver) Budget() Budget { return s.budget }

// Algorithm returns the name of the algorithm this Solver runs.
func (s *Solver) Algorithm() string { return s.algo }

// RetainedWords reports the scratch capacity the Solver's cached session
// currently retains across solves (sketch pools, forest pools, oracle
// scratch), in 64-bit words. Retained capacity is process memory kept
// warm for the next solve — deliberately not part of any run's metered
// live space, so a Budget{SpaceWords} trips identically on warm and
// cold sessions. Zero before the first session-cacheable solve.
func (s *Solver) RetainedWords() int {
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	w := 0
	if s.cache.core != nil {
		w += s.cache.core.RetainedWords()
	}
	if s.cache.eng != nil {
		w += s.cache.eng.RetainedWords()
	}
	return w
}

// Solve runs the configured algorithm over src — the dual-primal solver
// by default, or any registry algorithm selected with WithAlgorithm. An
// algorithm that cannot serve the instance (e.g. hopcroft-karp on a
// nonbipartite graph) fails with an error matching ErrUnsupported.
//
// The context is checked at pass and round boundaries on every backend;
// once it is cancelled (or its deadline passes), in-flight sweeps abort
// within a constant number of edges and Solve returns ctx.Err() together
// with the best-so-far Result.
//
// A configured Budget is enforced at the same checkpoints, identically
// for every algorithm. On a trip, Solve returns the best-so-far Result
// and a *BudgetError matching ErrBudgetExceeded; Result.Matching is
// always feasible (every algorithm updates it only in whole,
// feasibility-preserving steps — the dual-primal solver by whole
// offline solutions) and Result.Stats meters what was actually
// consumed. An ample budget changes nothing: the run is bit-identical
// to an unbudgeted one.
//
// The Result is a pure function of (edge sequence, options): every
// backend serving the same sequence returns a bit-identical Result for
// any worker count — and a session-reused solve is bit-identical to a
// cold one.
//
// Per-solve options may be appended: they apply to this call only, on
// top of the Solver's configuration. Extras that leave the
// session-defining knobs untouched (algorithm, eps, space exponent,
// seed, workers, max rounds, profile) — a per-job Budget, an Observer,
// WithInitialDuals — still reuse the cached session; extras that change
// them run on a fresh session for the call.
func (s *Solver) Solve(ctx context.Context, src Source, extra ...Option) (*Result, error) {
	run := s
	if len(extra) > 0 {
		c := *s
		for _, o := range extra {
			o(&c)
		}
		if err := c.validate(); err != nil {
			return nil, err
		}
		run = &c
	}
	var hook func(core.RoundEvent)
	if run.obs != nil {
		obs := run.obs
		hook = func(ev core.RoundEvent) { obs.OnRound(ev) }
	}
	ext := engine.Extensions{Budget: run.budget, Observer: hook}
	// The cached session is usable when the session-defining
	// configuration is the base Solver's (budget, observer and warm
	// duals are per-run inputs, not session state).
	cacheable := run.algo == s.algo && run.opt == s.opt
	if run.algo == DefaultAlgorithm {
		// The dual-primal path keeps its dedicated session type so the
		// full Options (including the constant-regime Profile) reach the
		// solver and the rich per-substrate Stats survive; it runs under
		// the same engine driver as every registry algorithm.
		sess, release, err := s.acquireCore(run.opt, cacheable)
		if err != nil {
			return nil, err
		}
		defer release()
		res, err := sess.Solve(ctx, src, ext, run.warm)
		if res == nil {
			return nil, err
		}
		return fromCore(res, run.opt.Eps), err
	}
	sess, release, err := s.acquireEngine(run.algo, run.params(), cacheable)
	if err != nil {
		return nil, err
	}
	defer release()
	out, err := sess.Solve(ctx, src, ext)
	if out == nil {
		return nil, err
	}
	return fromOutcome(out, run.opt.Eps), err
}

// params maps the Solver configuration onto the registry's
// model-agnostic parameter set.
func (s *Solver) params() engine.Params {
	return engine.Params{Eps: s.opt.Eps, P: s.opt.P, Seed: s.opt.Seed,
		Workers: s.opt.Workers, MaxRounds: s.opt.MaxRounds}
}

// acquireCore hands out the cached dual-primal session (creating it on
// first use) when the configuration allows and no other solve holds it;
// otherwise a fresh throwaway session. The release func must be called
// once the solve is done.
func (s *Solver) acquireCore(opt core.Options, cacheable bool) (*core.Session, func(), error) {
	if cacheable && s.cache != nil && s.cache.mu.TryLock() {
		if s.cache.core == nil {
			sess, err := core.NewSession(opt)
			if err != nil {
				s.cache.mu.Unlock()
				return nil, nil, err
			}
			s.cache.core = sess
		}
		return s.cache.core, s.cache.mu.Unlock, nil
	}
	sess, err := core.NewSession(opt)
	if err != nil {
		return nil, nil, err
	}
	return sess, func() {}, nil
}

// acquireEngine is acquireCore for registry algorithms.
func (s *Solver) acquireEngine(algo string, p engine.Params, cacheable bool) (*engine.Session, func(), error) {
	if cacheable && s.cache != nil && s.cache.mu.TryLock() {
		if s.cache.eng == nil {
			sess, err := engine.NewSession(algo, p)
			if err != nil {
				s.cache.mu.Unlock()
				return nil, nil, err
			}
			s.cache.eng = sess
		}
		return s.cache.eng, s.cache.mu.Unlock, nil
	}
	sess, err := engine.NewSession(algo, p)
	if err != nil {
		return nil, nil, err
	}
	return sess, func() {}, nil
}

// Solve is the one-shot convenience path — match.New plus Solver.Solve
// in a single call. It is the glue every harness (the bench experiments,
// the examples, simple callers) shares:
//
//	res, err := match.Solve(ctx, stream.NewEdgeStream(g),
//	    match.WithEps(0.25), match.WithAlgorithm("greedy"))
//
// Build a Solver with New instead when one configuration runs many
// solves.
func Solve(ctx context.Context, src Source, opts ...Option) (*Result, error) {
	s, err := New(opts...)
	if err != nil {
		return nil, err
	}
	return s.Solve(ctx, src)
}
