package match_test

// match.Pool: correctness of the fleet (every job answered, results
// identical to sequential solves), per-job budgets, FIFO fairness of
// the queue, closed-pool semantics, and a cancellation-mid-drain
// stress designed to run under -race (the CI race job executes this
// package with the detector on).

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/match"
)

func poolGraph(seed uint64) *graph.Graph {
	return graph.GNM(40, 200, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 20}, seed)
}

// TestPoolMatchesSequential pins that a pool solve is the same solve:
// every job's result is bit-identical to the one a lone Solver returns
// for the same (instance, options).
func TestPoolMatchesSequential(t *testing.T) {
	opts := []match.Option{match.WithSeed(5), match.WithWorkers(1)}
	pool, err := match.NewPool(3, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	const jobs = 9
	chans := make([]<-chan match.JobResult, jobs)
	for j := 0; j < jobs; j++ {
		chans[j] = pool.Submit(context.Background(), stream.NewEdgeStream(poolGraph(uint64(j%3))))
	}
	for j := 0; j < jobs; j++ {
		got := <-chans[j]
		if got.Err != nil {
			t.Fatalf("job %d: %v", j, got.Err)
		}
		solver, err := match.New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		want, err := solver.Solve(context.Background(), stream.NewEdgeStream(poolGraph(uint64(j%3))))
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "pool-job", want, got.Result)
	}
}

// TestPoolPerJobBudget pins that Submit's extra options are per-job: a
// budgeted job trips while its unbudgeted sibling completes.
func TestPoolPerJobBudget(t *testing.T) {
	pool, err := match.NewPool(2, match.WithSeed(5), match.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	g := poolGraph(7)
	tight := pool.Submit(context.Background(), stream.NewEdgeStream(g),
		match.WithBudget(match.Budget{Rounds: 1}))
	free := pool.Submit(context.Background(), stream.NewEdgeStream(g))
	tr := <-tight
	if !errors.Is(tr.Err, match.ErrBudgetExceeded) {
		t.Fatalf("budgeted job err = %v, want ErrBudgetExceeded", tr.Err)
	}
	if tr.Result == nil || tr.Result.Stats.SamplingRounds != 1 {
		t.Fatalf("budgeted job did not return the best-so-far result: %+v", tr.Result)
	}
	fr := <-free
	if fr.Err != nil {
		t.Fatalf("unbudgeted job: %v", fr.Err)
	}
	if fr.Result.Stats.SamplingRounds <= 1 {
		t.Fatalf("unbudgeted job was constrained: %d rounds", fr.Result.Stats.SamplingRounds)
	}
}

// fifoObserver records which job a round event belonged to — the
// service-order probe of the FIFO test.
type fifoObserver struct {
	mu    *sync.Mutex
	order *[]int
	job   int
	seen  bool
}

func (o *fifoObserver) OnRound(match.RoundEvent) {
	if o.seen {
		return
	}
	o.seen = true
	o.mu.Lock()
	*o.order = append(*o.order, o.job)
	o.mu.Unlock()
}

// TestPoolFIFO pins arrival-order fairness: a single-session pool must
// *serve* jobs strictly in Submit order (observed via per-job round
// observers, which fire on the worker during the solve — receiver
// goroutine scheduling plays no part).
func TestPoolFIFO(t *testing.T) {
	pool, err := match.NewPool(1, match.WithSeed(5), match.WithWorkers(1), match.WithAlgorithm("greedy"))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	const jobs = 6
	var chans [jobs]<-chan match.JobResult
	for j := 0; j < jobs; j++ {
		chans[j] = pool.Submit(context.Background(), stream.NewEdgeStream(poolGraph(uint64(j))),
			match.WithObserver(&fifoObserver{mu: &mu, order: &order, job: j}))
	}
	for j := 0; j < jobs; j++ {
		if r := <-chans[j]; r.Err != nil {
			t.Fatalf("job %d: %v", j, r.Err)
		}
	}
	pool.Close()
	for i, j := range order {
		if i != j {
			t.Fatalf("service order %v is not Submit order", order)
		}
	}
}

// TestPoolClosed pins the closed-pool contract.
func TestPoolClosed(t *testing.T) {
	pool, err := match.NewPool(2, match.WithSeed(5), match.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	pool.Close() // idempotent
	r := <-pool.Submit(context.Background(), stream.NewEdgeStream(poolGraph(1)))
	if !errors.Is(r.Err, match.ErrPoolClosed) {
		t.Fatalf("submit after close: err = %v, want ErrPoolClosed", r.Err)
	}
}

// TestPoolCancellationMidDrain is the race-detector stress: many
// submitters, several with contexts cancelled while their jobs are
// queued or solving, then Close racing the last submissions. Every job
// must be answered exactly once with either a result or a context/
// closed error — no deadlock, no leaked worker, no double send.
func TestPoolCancellationMidDrain(t *testing.T) {
	pool, err := match.NewPool(3, match.WithSeed(5), match.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	const submitters = 8
	const perSubmitter = 5
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for j := 0; j < perSubmitter; j++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if (s+j)%3 == 0 {
					ctx, cancel = context.WithCancel(ctx)
					go func() {
						time.Sleep(time.Duration(s+j) * 100 * time.Microsecond)
						cancel()
					}()
				}
				res := <-pool.Submit(ctx, stream.NewEdgeStream(poolGraph(uint64(j))))
				switch {
				case res.Err == nil:
					if res.Result == nil {
						t.Error("nil result without error")
					}
				case errors.Is(res.Err, context.Canceled):
					// cancelled while queued (nil result) or mid-solve
					// (best-so-far result) — both legal.
				default:
					t.Errorf("unexpected job error: %v", res.Err)
				}
				if cancel != nil {
					cancel()
				}
			}
		}(s)
	}
	wg.Wait()
	pool.Close()
	// After the drain, submits answer ErrPoolClosed.
	r := <-pool.Submit(context.Background(), stream.NewEdgeStream(poolGraph(2)))
	if !errors.Is(r.Err, match.ErrPoolClosed) {
		t.Fatalf("post-drain submit: err = %v, want ErrPoolClosed", r.Err)
	}
}

// gatedSource is an EdgeStream whose metered passes block until the
// gate channel is closed — it lets the test freeze solves mid-pool so
// queue depth and in-flight counts are observable at a known state.
type gatedSource struct {
	*stream.EdgeStream
	gate <-chan struct{}
}

func (g *gatedSource) ForEach(f func(int, graph.Edge) bool) {
	<-g.gate
	g.EdgeStream.ForEach(f)
}

func (g *gatedSource) ForEachParallel(workers int, f func(int, graph.Edge)) {
	<-g.gate
	g.EdgeStream.ForEachParallel(workers, f)
}

func (g *gatedSource) ForEachBlocks(f func(int, []graph.Edge) bool) {
	<-g.gate
	g.EdgeStream.ForEachBlocks(f)
}

func (g *gatedSource) ForEachBlocksParallel(workers int, f func(int, []graph.Edge)) {
	<-g.gate
	g.EdgeStream.ForEachBlocksParallel(workers, f)
}

// waitStats polls until the pool snapshot satisfies ok (the pool keeps
// moving between Submit and a session pickup, so the test must wait for
// the state to settle rather than assert it instantaneously).
func waitStats(t *testing.T, pool *match.Pool, ok func(match.PoolStats) bool) match.PoolStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := pool.Stats()
		if ok(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool stats never settled: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolStats pins the introspection contract the serving layer
// scrapes: Sessions is the configured size, InFlight counts solves
// holding a session, Queued counts accepted jobs no session has picked
// up, and both drain back to zero once the jobs finish.
func TestPoolStats(t *testing.T) {
	pool, err := match.NewPool(1, match.WithSeed(3), match.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if st := pool.Stats(); st.Sessions != 1 || st.Queued != 0 || st.InFlight != 0 {
		t.Fatalf("idle pool stats = %+v, want {1 0 0}", st)
	}
	gate := make(chan struct{})
	const jobs = 3
	chans := make([]<-chan match.JobResult, jobs)
	for j := 0; j < jobs; j++ {
		src := &gatedSource{EdgeStream: stream.NewEdgeStream(poolGraph(uint64(j))), gate: gate}
		chans[j] = pool.Submit(context.Background(), src)
	}
	st := waitStats(t, pool, func(st match.PoolStats) bool {
		return st.InFlight == 1 && st.Queued == jobs-1
	})
	if st.Sessions != 1 {
		t.Fatalf("Sessions = %d, want 1", st.Sessions)
	}
	close(gate)
	for j, ch := range chans {
		if r := <-ch; r.Err != nil {
			t.Fatalf("job %d: %v", j, r.Err)
		}
	}
	waitStats(t, pool, func(st match.PoolStats) bool {
		return st.InFlight == 0 && st.Queued == 0
	})
}
