package match

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
)

// ErrPoolClosed is returned (through a job's result channel) by Submit
// calls made after Close.
var ErrPoolClosed = errors.New("match: pool is closed")

// JobResult is one submitted solve's outcome: the Result (best-so-far
// on budget trips and cancellations, exactly as Solver.Solve returns
// it) and the accompanying error, if any.
type JobResult struct {
	Result *Result
	Err    error
}

// poolJob is one queued solve.
type poolJob struct {
	ctx   context.Context
	src   Source
	extra []Option
	out   chan JobResult
}

// Pool is a fixed-size fleet of solve sessions serving many instances
// concurrently: the serving shape the scalable-auction line of work
// motivates (arXiv:2307.08979), stacked on this module's session reuse.
// NewPool starts size worker goroutines, each owning one Solver whose
// cached session persists across the jobs it serves — a stream of
// same-shape instances through a Pool converges to near-zero allocation
// per solve, exactly like sequential session reuse.
//
// Scheduling is a single FIFO queue: jobs are served strictly in Submit
// order as workers free up, so no submitter can starve another
// (fairness is arrival order; per-job resource budgets bound how long
// any one job can hold a worker). The configured worker budget
// (WithWorkers, 0 = GOMAXPROCS) is shared by the fleet: each session
// gets an equal share (at least 1), so a size-J pool over W workers
// drives ~W goroutines total, not J·W.
//
// Every method is safe for concurrent use.
type Pool struct {
	jobs     chan *poolJob
	wg       sync.WaitGroup
	size     int
	inflight atomic.Int64

	mu      sync.Mutex
	closed  bool
	pending sync.WaitGroup // Submit calls between the closed-check and their enqueue
}

// PoolStats is a point-in-time snapshot of a Pool's serving state: how
// many sessions the fleet runs, how many accepted jobs wait for one,
// and how many solves are in flight right now. It is the introspection
// a serving layer scrapes into its metrics (queue depth feeds admission
// control and backpressure decisions); because the pool keeps moving
// while the snapshot is taken, the numbers are individually exact but
// only approximately simultaneous.
type PoolStats struct {
	// Sessions is the fixed number of worker sessions (NewPool's size).
	Sessions int
	// Queued counts jobs accepted by Submit that no session has picked
	// up yet.
	Queued int
	// InFlight counts solves currently running on a session.
	InFlight int
}

// Stats returns a snapshot of the pool's queue depth and in-flight
// solve count. Safe for concurrent use; cheap enough to call on every
// metrics scrape.
func (p *Pool) Stats() PoolStats {
	return PoolStats{Sessions: p.size, Queued: len(p.jobs), InFlight: int(p.inflight.Load())}
}

// NewPool builds a pool of size sessions configured with opts (the same
// options New takes; WithWorkers is interpreted as the fleet-wide
// budget and divided across sessions). Solves begin when Submit is
// called; Close drains and stops the fleet.
func NewPool(size int, opts ...Option) (*Pool, error) {
	if size < 1 {
		return nil, fmt.Errorf("%w: pool size %d must be >= 1", ErrInvalidOption, size)
	}
	probe, err := New(opts...)
	if err != nil {
		return nil, err
	}
	per := parallel.Workers(probe.opt.Workers) / size
	if per < 1 {
		per = 1
	}
	p := &Pool{jobs: make(chan *poolJob, 4*size), size: size}
	for i := 0; i < size; i++ {
		solver, err := New(append(append([]Option{}, opts...), WithWorkers(per))...)
		if err != nil {
			return nil, err // unreachable: probe validated, WithWorkers(per) is valid
		}
		p.wg.Add(1)
		go p.serve(solver)
	}
	return p, nil
}

// Submit enqueues one solve and immediately returns a single-result
// channel (buffered: the receiver may read it whenever it likes). The
// job runs solver.Solve(ctx, src, extra...) on the next free session;
// per-job options — a budget, an observer, WithInitialDuals — apply to
// that job alone. The context covers the job's whole lifetime: a job
// cancelled while queued is answered with its context error without
// occupying a session, and one cancelled mid-solve aborts within a
// pass and yields the best-so-far result, exactly like Solver.Solve.
// When the queue is saturated, Submit blocks until there is room or ctx
// is cancelled. After Close, every Submit answers ErrPoolClosed.
func (p *Pool) Submit(ctx context.Context, src Source, extra ...Option) <-chan JobResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan JobResult, 1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		out <- JobResult{Err: ErrPoolClosed}
		close(out)
		return out
	}
	p.pending.Add(1)
	p.mu.Unlock()
	defer p.pending.Done()
	select {
	case p.jobs <- &poolJob{ctx: ctx, src: src, extra: extra, out: out}:
	case <-ctx.Done():
		out <- JobResult{Err: ctx.Err()}
		close(out)
	}
	return out
}

// Close stops the pool gracefully: no further Submit is accepted, every
// already-queued job is still served (jobs whose context is already
// cancelled are answered without solving), and Close returns once the
// last worker has drained. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.pending.Wait() // in-flight Submits finish their enqueue (or bail on ctx)
	close(p.jobs)
	p.wg.Wait()
}

// serve is one worker: one Solver, one cached session, jobs in FIFO
// order until the queue closes.
func (p *Pool) serve(s *Solver) {
	defer p.wg.Done()
	for job := range p.jobs {
		if err := job.ctx.Err(); err != nil {
			job.out <- JobResult{Err: err}
			close(job.out)
			continue
		}
		p.inflight.Add(1)
		res, err := s.Solve(job.ctx, job.src, job.extra...)
		p.inflight.Add(-1)
		job.out <- JobResult{Result: res, Err: err}
		close(job.out)
	}
}
