package match_test

// Session reuse and warm-started duals through the public facade: a
// Solver solved twice must be bit-identical to two fresh Solvers (the
// cached session retains capacity, never state), warm starts must
// reduce the work of repeat solves without weakening the certificate,
// and an invalid snapshot must fall back to the certified cold start
// bit-identically to a never-warmed run.

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/match"
)

// assertSameResult compares two public results bit for bit.
func assertSameResult(t *testing.T, label string, want, got *match.Result) {
	t.Helper()
	if math.Float64bits(want.Weight) != math.Float64bits(got.Weight) {
		t.Errorf("%s: Weight %v != %v", label, got.Weight, want.Weight)
	}
	if math.Float64bits(want.DualObjective) != math.Float64bits(got.DualObjective) {
		t.Errorf("%s: DualObjective %v != %v", label, got.DualObjective, want.DualObjective)
	}
	if math.Float64bits(want.Lambda) != math.Float64bits(got.Lambda) {
		t.Errorf("%s: Lambda %v != %v", label, got.Lambda, want.Lambda)
	}
	if !reflect.DeepEqual(want.Matching, got.Matching) {
		t.Errorf("%s: matchings differ", label)
	}
	if !reflect.DeepEqual(want.Stats, got.Stats) {
		t.Errorf("%s: stats differ\nwant: %+v\ngot:  %+v", label, want.Stats, got.Stats)
	}
}

// TestSolverReuseBitIdenticalOnCorpus is the facade-level reuse gate:
// for every corpus family and both the default and a registry
// algorithm, one Solver solved twice equals two cold solves exactly.
func TestSolverReuseBitIdenticalOnCorpus(t *testing.T) {
	ctx := context.Background()
	for name, g := range corpus() {
		for _, algo := range []string{match.DefaultAlgorithm, "greedy-augment"} {
			opts := []match.Option{match.WithSeed(7), match.WithWorkers(1), match.WithAlgorithm(algo)}
			coldSolver, err := match.New(opts...)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := coldSolver.Solve(ctx, stream.NewEdgeStream(g))
			if err != nil {
				t.Fatalf("%s/%s: cold: %v", name, algo, err)
			}
			reused, err := match.New(opts...)
			if err != nil {
				t.Fatal(err)
			}
			first, err := reused.Solve(ctx, stream.NewEdgeStream(g))
			if err != nil {
				t.Fatalf("%s/%s: first: %v", name, algo, err)
			}
			firstIdx := append([]int(nil), first.Matching.EdgeIdx...)
			second, err := reused.Solve(ctx, stream.NewEdgeStream(g))
			if err != nil {
				t.Fatalf("%s/%s: second: %v", name, algo, err)
			}
			assertSameResult(t, name+"/"+algo+"/first", cold, first)
			assertSameResult(t, name+"/"+algo+"/second", cold, second)
			if !reflect.DeepEqual(first.Matching.EdgeIdx, firstIdx) {
				t.Errorf("%s/%s: second solve mutated the first result", name, algo)
			}
		}
	}
}

// TestSolverRetainedWords pins the accessor the E17 table reports: zero
// before any solve, positive once the cached session has pooled its
// scratch, and stable in the sense that retained capacity never makes a
// repeat solve differ (covered by the corpus gate above).
func TestSolverRetainedWords(t *testing.T) {
	ctx := context.Background()
	g := graph.GNM(48, 320, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 25}, 17)
	solver, err := match.New(match.WithSeed(7), match.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if w := solver.RetainedWords(); w != 0 {
		t.Fatalf("RetainedWords before any solve = %d, want 0", w)
	}
	if _, err := solver.Solve(ctx, stream.NewEdgeStream(g)); err != nil {
		t.Fatal(err)
	}
	if _, err := solver.Solve(ctx, stream.NewEdgeStream(g)); err != nil {
		t.Fatal(err)
	}
	if w := solver.RetainedWords(); w <= 0 {
		t.Fatalf("RetainedWords after reused solves = %d, want > 0", w)
	}
}

// drifted returns g with a fraction of edge weights nudged — the
// "slowly drifting instance" regime warm starts target. The maximum
// weight and capacities are preserved (the max-weight edges are never
// nudged) so the discretization — and with it warm-start validity — is
// unchanged.
func drifted(g *graph.Graph, seed uint64) *graph.Graph {
	wstar := g.MaxWeight()
	out := graph.New(g.N())
	for i, e := range g.Edges() {
		w := e.W
		if i%7 == int(seed%7) && w > 1 && w < wstar {
			w *= 0.95
		}
		out.MustAddEdge(int(e.U), int(e.V), w)
	}
	return out
}

func TestWarmStartReducesWork(t *testing.T) {
	ctx := context.Background()
	g := graph.GNM(48, 320, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 25}, 41)
	// ε = 0.3 puts the certificate target within reach, so the warm
	// trajectory's head start converts into fewer rounds immediately.
	solver, err := match.New(match.WithSeed(13), match.WithWorkers(1), match.WithEps(0.3))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := solver.Solve(ctx, stream.NewEdgeStream(g))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.WarmStarted {
		t.Error("cold solve reports WarmStarted")
	}
	coldWork := cold.Stats.Passes

	// Repeat solves seeded from the previous solution: same instance
	// and then a drifted one. The warm path must install (WarmStarted),
	// skip the initial solution (InitRounds == 0), spend fewer passes
	// than cold, and keep the certificate sound.
	prev := cold
	for i, src := range []match.Source{
		stream.NewEdgeStream(g),
		stream.NewEdgeStream(drifted(g, 3)),
	} {
		warm, err := solver.Solve(ctx, src, match.WithInitialDuals(prev))
		if err != nil {
			t.Fatalf("warm solve %d: %v", i, err)
		}
		if !warm.Stats.WarmStarted {
			t.Fatalf("warm solve %d: snapshot not installed", i)
		}
		if warm.Stats.InitRounds != 0 {
			t.Errorf("warm solve %d: InitRounds = %d, want 0", i, warm.Stats.InitRounds)
		}
		// The repeat on the unchanged instance must convert the head
		// start into strictly fewer passes; a drifted instance may
		// legitimately need the full trajectory again, but never more
		// than cold.
		if i == 0 && warm.Stats.Passes >= coldWork {
			t.Errorf("warm repeat: %d passes, cold needed %d — no win", warm.Stats.Passes, coldWork)
		}
		if warm.Stats.Passes > coldWork {
			t.Errorf("warm solve %d: %d passes exceeds cold's %d", i, warm.Stats.Passes, coldWork)
		}
		if err := warm.Validate(src); err != nil {
			t.Errorf("warm solve %d: invalid matching: %v", i, err)
		}
		if warm.Lambda > 0 {
			if ub := warm.CertifiedUpperBound(); ub < warm.Weight*(1-1e-9) {
				t.Errorf("warm solve %d: certified bound %v below achieved weight %v", i, ub, warm.Weight)
			}
		}
		prev = warm
	}
}

// TestWarmStartInvalidFallsBackCold pins the certified fallback: a
// snapshot from a different discretization (different n / W* / B) must
// be rejected, and the run must be bit-identical to a never-warmed one.
func TestWarmStartInvalidFallsBackCold(t *testing.T) {
	ctx := context.Background()
	small := graph.GNM(30, 150, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 12}, 5)
	big := graph.GNM(64, 400, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 20}, 6)
	solver, err := match.New(match.WithSeed(3), match.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	prev, err := solver.Solve(ctx, stream.NewEdgeStream(small))
	if err != nil {
		t.Fatal(err)
	}
	coldSolver, err := match.New(match.WithSeed(3), match.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := coldSolver.Solve(ctx, stream.NewEdgeStream(big))
	if err != nil {
		t.Fatal(err)
	}
	fallback, err := solver.Solve(ctx, stream.NewEdgeStream(big), match.WithInitialDuals(prev))
	if err != nil {
		t.Fatal(err)
	}
	if fallback.Stats.WarmStarted {
		t.Fatal("mismatched snapshot was installed")
	}
	assertSameResult(t, "fallback", cold, fallback)

	// Nil previous result and results from dual-free algorithms are
	// quietly cold too.
	nilWarm, err := coldSolver.Solve(ctx, stream.NewEdgeStream(big), match.WithInitialDuals(nil))
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "nil-prev", cold, nilWarm)
	greedyRes, err := match.Solve(ctx, stream.NewEdgeStream(big), match.WithAlgorithm("greedy"), match.WithSeed(3), match.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	fromGreedy, err := coldSolver.Solve(ctx, stream.NewEdgeStream(big), match.WithInitialDuals(greedyRes))
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "dual-free-prev", cold, fromGreedy)
}
