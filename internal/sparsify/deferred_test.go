package sparsify

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// deferredSetup builds a deferred sparsifier for graph g from promise
// values sigma, then refines with true weights u.
func deferredSetup(t *testing.T, g *graph.Graph, sigma, u []float64, chi float64, cfg Config) (*Deferred, *Sparsifier) {
	t.Helper()
	d, err := NewDeferred(g.N(), func(i int) (int32, int32) {
		e := g.Edge(i)
		return e.U, e.V
	}, g.M(), sigma, chi, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Refine(func(i int) float64 { return u[i] })
	return d, s
}

func TestDeferredValidation(t *testing.T) {
	g := graph.GNM(10, 20, graph.WeightConfig{}, 41)
	sigma := make([]float64, g.M())
	if _, err := NewDeferred(g.N(), func(i int) (int32, int32) { e := g.Edge(i); return e.U, e.V }, g.M(), sigma, 0.5, Config{}); err == nil {
		t.Fatal("chi < 1 accepted")
	}
	if _, err := NewDeferred(g.N(), func(i int) (int32, int32) { e := g.Edge(i); return e.U, e.V }, g.M(), sigma[:5], 2, Config{}); err == nil {
		t.Fatal("short sigma accepted")
	}
}

func TestDeferredExactPromise(t *testing.T) {
	// chi = 1: promise equals truth; behaves like a plain sparsifier.
	g := graph.GNM(80, 1500, graph.WeightConfig{}, 42)
	sigma := make([]float64, g.M())
	for i := range sigma {
		sigma[i] = 1
	}
	ug := make([]float64, g.M())
	copy(ug, sigma)
	_, s := deferredSetup(t, g, sigma, ug, 1, Config{Xi: 0.25, Seed: 11})
	if err := maxCutError(g, s, 50, 12); err > 0.35 {
		t.Fatalf("cut error %.3f with exact promise", err)
	}
}

func TestDeferredDriftedWeights(t *testing.T) {
	// True weights drift from the promise by up to chi in both
	// directions; refined sparsifier must still track the *true* cuts.
	g := graph.GNM(80, 1500, graph.WeightConfig{}, 43)
	r := xrand.New(13)
	chi := 2.0
	sigma := make([]float64, g.M())
	u := make([]float64, g.M())
	for i := range sigma {
		sigma[i] = 1 + 4*r.Float64()
		// u in [sigma/chi, sigma*chi]
		f := math.Pow(chi, 2*r.Float64()-1)
		u[i] = sigma[i] * f
	}
	// Build the u-weighted truth graph.
	tg := graph.New(g.N())
	for i, e := range g.Edges() {
		tg.MustAddEdge(int(e.U), int(e.V), u[i])
	}
	_, s := deferredSetup(t, g, sigma, u, chi, Config{Xi: 0.25, Seed: 14})
	if err := maxCutError(tg, s, 50, 15); err > 0.35 {
		t.Fatalf("cut error %.3f with drifted weights", err)
	}
}

func TestDeferredOversamples(t *testing.T) {
	// Larger chi must store at least as many edges (statistically; we
	// compare sharply different chis on the same seed).
	g := graph.GNP(60, 0.5, graph.WeightConfig{}, 44)
	sigma := make([]float64, g.M())
	for i := range sigma {
		sigma[i] = 1
	}
	mk := func(chi float64) int {
		d, err := NewDeferred(g.N(), func(i int) (int32, int32) { e := g.Edge(i); return e.U, e.V }, g.M(), sigma, chi, Config{Xi: 0.5, Seed: 16})
		if err != nil {
			t.Fatal(err)
		}
		return d.Size()
	}
	small, big := mk(1), mk(4)
	if big < small {
		t.Fatalf("chi=4 stored %d < chi=1 stored %d", big, small)
	}
}

func TestDeferredRevealOnlyStored(t *testing.T) {
	g := graph.GNM(40, 400, graph.WeightConfig{}, 45)
	sigma := make([]float64, g.M())
	for i := range sigma {
		sigma[i] = 1
	}
	d, err := NewDeferred(g.N(), func(i int) (int32, int32) { e := g.Edge(i); return e.U, e.V }, g.M(), sigma, 2, Config{Xi: 0.5, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	stored := map[int]bool{}
	for _, idx := range d.StoredEdges() {
		stored[idx] = true
	}
	d.Refine(func(i int) float64 {
		if !stored[i] {
			t.Fatalf("Refine revealed non-stored edge %d", i)
		}
		return 1
	})
}

func TestDeferredZeroWeightDropped(t *testing.T) {
	g := graph.GNM(30, 200, graph.WeightConfig{}, 46)
	sigma := make([]float64, g.M())
	for i := range sigma {
		sigma[i] = 1
	}
	d, err := NewDeferred(g.N(), func(i int) (int32, int32) { e := g.Edge(i); return e.U, e.V }, g.M(), sigma, 2, Config{Xi: 0.5, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	s := d.Refine(func(i int) float64 { return 0 })
	if len(s.Items) != 0 {
		t.Fatalf("zero-weight edges kept: %d", len(s.Items))
	}
}

func TestDeferredSizeGrowsWithChiSquared(t *testing.T) {
	// Size should scale roughly like chi^2 on a dense graph, far from
	// linear in m. We only check monotonicity and a loose factor.
	g := graph.GNP(80, 0.8, graph.WeightConfig{}, 47)
	sigma := make([]float64, g.M())
	for i := range sigma {
		sigma[i] = 1
	}
	sizes := map[float64]int{}
	for _, chi := range []float64{1, 2, 4} {
		d, err := NewDeferred(g.N(), func(i int) (int32, int32) { e := g.Edge(i); return e.U, e.V }, g.M(), sigma, chi, Config{Xi: 0.5, Seed: 19})
		if err != nil {
			t.Fatal(err)
		}
		sizes[chi] = d.Size()
	}
	if sizes[4] < sizes[2] || sizes[2] < sizes[1] {
		t.Fatalf("sizes not monotone in chi: %v", sizes)
	}
}
