package sparsify

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

func BenchmarkUnweightedSparsify(b *testing.B) {
	g := graph.GNP(200, 0.5, graph.WeightConfig{}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Unweighted(g, Config{Xi: 0.25, Seed: uint64(i)})
	}
}

// BenchmarkWeightedSparsifyWorkers measures the per-class parallel
// construction at several worker counts on a many-class instance (the
// workers-scaling row of EXPERIMENTS.md). Output is bit-identical across
// sub-benchmarks.
func BenchmarkWeightedSparsifyWorkers(b *testing.B) {
	g := graph.GNP(400, 0.5, graph.WeightConfig{Mode: graph.ExpWeights, Scale: 2}, 3)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Weighted(g, Config{Xi: 0.25, Seed: 7, Workers: workers})
			}
		})
	}
}

func BenchmarkDeferredSparsify(b *testing.B) {
	g := graph.GNP(200, 0.5, graph.WeightConfig{}, 2)
	sigma := make([]float64, g.M())
	for i := range sigma {
		sigma[i] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := NewDeferred(g.N(), func(j int) (int32, int32) {
			e := g.Edge(j)
			return e.U, e.V
		}, g.M(), sigma, 2, Config{Xi: 0.25, K: 8, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		d.Refine(func(int) float64 { return 1 })
	}
}
