package sparsify

import (
	"testing"

	"repro/internal/graph"
)

func BenchmarkUnweightedSparsify(b *testing.B) {
	g := graph.GNP(200, 0.5, graph.WeightConfig{}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Unweighted(g, Config{Xi: 0.25, Seed: uint64(i)})
	}
}

func BenchmarkDeferredSparsify(b *testing.B) {
	g := graph.GNP(200, 0.5, graph.WeightConfig{}, 2)
	sigma := make([]float64, g.M())
	for i := range sigma {
		sigma[i] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := NewDeferred(g.N(), func(j int) (int32, int32) {
			e := g.Edge(j)
			return e.U, e.V
		}, g.M(), sigma, 2, Config{Xi: 0.25, K: 8, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		d.Refine(func(int) float64 { return 1 })
	}
}
