package sparsify

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// The builder's contract: feeding the same (localIdx, u, v, sigma)
// sequence NewDeferred receives via arrays must produce a bit-identical
// Deferred. The solver's out-of-core sampling round depends on this.
func TestBuilderMatchesNewDeferred(t *testing.T) {
	for _, tc := range []struct {
		name string
		n, m int
		chi  float64
		seed uint64
	}{
		{"small", 24, 120, 2, 5},
		{"wide-sigma", 40, 400, 4, 6},
		{"single-class", 16, 60, 1, 7},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := graph.GNM(tc.n, tc.m, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 30}, tc.seed)
			r := xrand.New(tc.seed + 100)
			sigma := make([]float64, g.M())
			for i := range sigma {
				// Span several powers-of-two classes; sprinkle zeros to
				// exercise the drop rule.
				sigma[i] = r.Float64() * 16
				if r.Bernoulli(0.05) {
					sigma[i] = 0
				}
			}
			cfg := Config{Xi: 0.5, K: 4, Seed: tc.seed + 9}
			want, err := NewDeferred(g.N(), func(i int) (int32, int32) {
				e := g.Edge(i)
				return e.U, e.V
			}, g.M(), sigma, tc.chi, cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewDeferredBuilder(g.N(), g.M(), tc.chi, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, e := range g.Edges() {
				b.Add(i, e.U, e.V, e.W, i, sigma[i])
			}
			got := b.Finish()
			if got.Size() != want.Size() {
				t.Fatalf("size %d, NewDeferred %d", got.Size(), want.Size())
			}
			// The builder additionally records W; compare everything else
			// field by field.
			for i := range got.items {
				a, w := got.items[i], want.items[i]
				a.W = 0
				if !reflect.DeepEqual(a, w) {
					t.Fatalf("item %d differs: builder %+v vs NewDeferred %+v", i, got.items[i], w)
				}
			}
			if !reflect.DeepEqual(got.byEdge, want.byEdge) {
				t.Fatal("byEdge maps differ")
			}
			// Refinement must agree too (RefineWith vs RefineParallel).
			u := make([]float64, g.M())
			for i := range u {
				u[i] = sigma[i] * (0.5 + r.Float64())
			}
			spWant := want.Refine(func(i int) float64 { return u[i] })
			spGot := got.RefineWith(1, func(it Item) float64 { return u[it.Orig] })
			if len(spWant.Items) != len(spGot.Items) {
				t.Fatalf("refined sizes differ: %d vs %d", len(spGot.Items), len(spWant.Items))
			}
			for i := range spGot.Items {
				a, w := spGot.Items[i], spWant.Items[i]
				a.W = 0
				if !reflect.DeepEqual(a, w) {
					t.Fatalf("refined item %d differs: %+v vs %+v", i, spGot.Items[i], w)
				}
			}
		})
	}
}

func TestBuilderRejectsBadArgs(t *testing.T) {
	if _, err := NewDeferredBuilder(10, 5, 0.5, Config{}); err == nil {
		t.Fatal("chi < 1 accepted")
	}
	if _, err := NewDeferredBuilder(10, -1, 2, Config{}); err == nil {
		t.Fatal("negative m accepted")
	}
}

func TestBuilderStaleRevealUsesPromise(t *testing.T) {
	// The stored Item's provisional Weight is the sampling-time promise:
	// a stale reveal (ablation mode) returns it unchanged and the refined
	// weight is promise/prob.
	g := graph.GNM(12, 40, graph.WeightConfig{}, 11)
	b, err := NewDeferredBuilder(g.N(), g.M(), 2, Config{Xi: 0.5, K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range g.Edges() {
		b.Add(i, e.U, e.V, e.W, i, 1.5)
	}
	d := b.Finish()
	sp := d.RefineWith(1, func(it Item) float64 { return it.Weight })
	for _, it := range sp.Items {
		if got := it.Weight * it.Prob; got < 1.5-1e-12 || got > 1.5+1e-12 {
			t.Fatalf("stale refine weight %v * prob %v != promise 1.5", it.Weight, it.Prob)
		}
	}
}
