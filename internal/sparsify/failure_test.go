package sparsify

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Failure-injection tests: what happens when the deferred sparsifier's
// contract is violated. These document the boundary of Definition 4's
// promise rather than asserting graceful magic.

func TestDeferredPromiseViolationDegrades(t *testing.T) {
	// True weights drift far beyond the declared chi: the refined
	// estimate may be (much) worse than with an honest chi. We check the
	// honest configuration is at least as good — i.e. the chi parameter
	// is doing real work.
	g := graph.GNP(70, 0.6, graph.WeightConfig{}, 301)
	r := xrand.New(302)
	sigma := make([]float64, g.M())
	u := make([]float64, g.M())
	actualDrift := 8.0
	for i := range sigma {
		sigma[i] = 1 + 3*r.Float64()
		u[i] = sigma[i] * math.Pow(actualDrift, 2*r.Float64()-1)
	}
	tg := graph.New(g.N())
	for i, e := range g.Edges() {
		tg.MustAddEdge(int(e.U), int(e.V), u[i])
	}
	errFor := func(declaredChi float64, seed uint64) float64 {
		d, err := NewDeferred(g.N(), func(i int) (int32, int32) {
			e := g.Edge(i)
			return e.U, e.V
		}, g.M(), sigma, declaredChi, Config{Xi: 0.25, K: 12, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sp := d.Refine(func(i int) float64 { return u[i] })
		worst := 0.0
		rr := xrand.New(seed + 7)
		for trial := 0; trial < 30; trial++ {
			mask := make([]bool, g.N())
			for i := range mask {
				mask[i] = rr.Bernoulli(0.5)
			}
			truth := tg.CutWeight(mask)
			if truth <= 0 {
				continue
			}
			if rel := math.Abs(sp.CutWeight(mask)-truth) / truth; rel > worst {
				worst = rel
			}
		}
		return worst
	}
	// Average over seeds to avoid single-draw noise.
	liar, honest := 0.0, 0.0
	const reps = 5
	for s := uint64(0); s < reps; s++ {
		liar += errFor(1, 400+s)
		honest += errFor(actualDrift, 400+s)
	}
	if honest > liar+0.05 {
		t.Fatalf("honest chi (avg err %.3f) should not be worse than understated chi (avg err %.3f)",
			honest/reps, liar/reps)
	}
}

func TestDeferredAllZeroPromise(t *testing.T) {
	// Zero promises mean no edge carries weight: nothing is stored.
	g := graph.GNM(20, 60, graph.WeightConfig{}, 303)
	sigma := make([]float64, g.M())
	d, err := NewDeferred(g.N(), func(i int) (int32, int32) {
		e := g.Edge(i)
		return e.U, e.V
	}, g.M(), sigma, 2, Config{Xi: 0.25, Seed: 304})
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 0 {
		t.Fatalf("stored %d edges from zero promises", d.Size())
	}
	sp := d.Refine(func(int) float64 { return 1 })
	if len(sp.Items) != 0 {
		t.Fatal("refined items from empty structure")
	}
}

func TestDeferredExtremePromiseRange(t *testing.T) {
	// Promises spanning 30 orders of magnitude must not panic or lose
	// the heavy edges.
	g := graph.New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(4, 5, 1)
	sigma := []float64{1e-15, 1, 1e15}
	d, err := NewDeferred(g.N(), func(i int) (int32, int32) {
		e := g.Edge(i)
		return e.U, e.V
	}, g.M(), sigma, 1, Config{Xi: 0.25, Seed: 305})
	if err != nil {
		t.Fatal(err)
	}
	// Every edge is a bridge (connectivity 1): all must be stored.
	if d.Size() != 3 {
		t.Fatalf("stored %d, want 3 (all bridges)", d.Size())
	}
}

func TestUnweightedSingleEdgeAndEmpty(t *testing.T) {
	g := graph.New(3)
	s := Unweighted(g, Config{Xi: 0.25, Seed: 306})
	if len(s.Items) != 0 {
		t.Fatal("items from empty graph")
	}
	g.MustAddEdge(0, 1, 5)
	s = Unweighted(g, Config{Xi: 0.25, Seed: 307})
	if len(s.Items) != 1 || s.Items[0].Weight != 5 || s.Items[0].Prob != 1 {
		t.Fatalf("single edge mishandled: %+v", s.Items)
	}
}

func TestWeightedZeroAndNegativeClassesDropped(t *testing.T) {
	// bucketByClass must drop non-positive weights rather than panic.
	classes := bucketByClass(1, func(i int) float64 {
		return []float64{0}[i]
	}, 1)
	if len(classes) != 0 {
		t.Fatalf("zero-weight edge classified: %v", classes)
	}
}
