// Package sparsify implements cut sparsification as used by the paper:
//
//   - the single-pass streaming construction of Algorithm 6 (geometric
//     edge-subsampling levels G_0 ⊇ G_1 ⊇ …, with k spanning forests per
//     level estimating edge connectivity), following Benczúr–Karger
//     sampling as systematized by Fung et al. and Ahn–Guha–McGregor;
//   - weighted sparsification by weight class (sum of per-class
//     sparsifiers is a sparsifier of the sum — Lemma 17's proof);
//   - the *deferred* sparsifier of Definition 4: sampling decisions are
//     made from promise values ς with ς/χ ≤ u ≤ ςχ, oversampling by
//     Θ(χ²); the exact weights u are revealed only for stored edges, after
//     which Refine produces an unbiased (1±ξ) cut approximation.
//
// Edges kept at critical level i′ (the smallest subsampling level at which
// the endpoints are no longer k-connected) survive with probability
// 2^(−i′); inverse-probability weighting makes every cut unbiased, and
// k = O(ξ⁻² log² n) concentrates it.
package sparsify

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/unionfind"
	"repro/internal/xrand"
)

// Config parameterizes a sparsifier construction.
type Config struct {
	// K is the number of spanning forests per subsampling level
	// (connectivity threshold). The theory wants O(ξ⁻² log² n); the
	// constructor computes a default from Xi and N when K == 0.
	K int
	// Xi is the target cut accuracy (default 0.25 when 0).
	Xi float64
	// Seed drives all sampling.
	Seed uint64
	// Workers shards the weight-class bucketing by edge range and runs
	// the per-class constructions concurrently (0 = GOMAXPROCS, 1 =
	// sequential). The output is bit-identical for every worker count:
	// per-class randomness is seeded from the class id, and classes merge
	// in increasing class order.
	Workers int
	// Scratch, when non-nil, supplies the constructions' union-find
	// forests from a reusable pool sized for the same vertex count
	// (callers releasing their constructions hand the forests back). A
	// Reset forest equals a fresh one, so results are unchanged; only
	// allocation traffic is.
	Scratch *Scratch
}

func (c Config) withDefaults(n int) Config {
	if c.Xi <= 0 {
		c.Xi = 0.25
	}
	if c.K == 0 {
		logn := math.Log2(float64(n) + 1)
		c.K = int(math.Ceil(2 * logn / (c.Xi * c.Xi)))
		if c.K < 4 {
			c.K = 4
		}
	}
	return c
}

// Sparsifier is the output: a weighted subgraph approximating all cuts of
// the input within (1 ± ξ) with high probability.
type Sparsifier struct {
	N     int
	Items []Item
}

// Item is one stored edge with its inverse-probability weight. An Item
// carries everything downstream consumers need about the edge — the
// refinement reveal and the union/offline steps of the solver work from
// stored Items alone, with no random access back into the input stream.
type Item struct {
	EdgeIdx int     // index into the construction's local edge sequence
	Orig    int     // index into the original source stream (== EdgeIdx unless built via DeferredBuilder)
	U, V    int32   // endpoints
	W       float64 // original edge weight (0 when the builder was not told it)
	Weight  float64 // reweighted value (source weight / retention prob)
	Prob    float64 // retention probability used
}

// Graph materializes the sparsifier as a graph (for downstream cut
// queries).
func (s *Sparsifier) Graph() *graph.Graph {
	g := graph.New(s.N)
	for _, it := range s.Items {
		g.MustAddEdge(int(it.U), int(it.V), it.Weight)
	}
	return g
}

// CutWeight evaluates the sparsifier's estimate of the cut around the set.
func (s *Sparsifier) CutWeight(inSet []bool) float64 {
	t := 0.0
	for _, it := range s.Items {
		if inSet[it.U] != inSet[it.V] {
			t += it.Weight
		}
	}
	return t
}

// construction holds the per-level forest state shared by the plain and
// deferred builds.
type construction struct {
	cfg     Config
	n       int
	numLv   int
	levelOf func(edgeIdx int) int // geometric subsampling level of an edge
	ufs     [][]*unionfind.UF     // [level][j], j < K
	stored  [][]int               // [level] -> edge indices stored in forests
}

func newConstruction(n, m int, cfg Config) *construction {
	numLv := 1
	for v := 1; v < m; v <<= 1 {
		numLv++
	}
	h := xrand.NewPolyHash(xrand.New(cfg.Seed), 2)
	// A retired shell supplies the spines and the stored rows' capacity;
	// the hash is always rebuilt from the seed, so a pooled construction
	// computes exactly what a fresh one does.
	var c *construction
	if s := cfg.Scratch; s != nil && s.n == n {
		c = s.getShell()
	}
	if c == nil {
		c = &construction{}
	}
	c.cfg = cfg
	c.n = n
	c.numLv = numLv
	c.levelOf = func(edgeIdx int) int {
		return h.Level(uint64(edgeIdx)+1, numLv-1)
	}
	c.ufs = respine(c.ufs, numLv)
	c.stored = respine(c.stored, numLv)
	// Forests are allocated lazily: forest j at level i exists only once
	// some edge was rejected by forests 0..j-1 there. An unallocated
	// forest is semantically a discrete forest (nothing connected), which
	// is exactly the state it would be allocated in.
	return c
}

// respine sizes a slice-of-slices spine to n rows, keeping surviving
// rows' backing arrays (retired shells truncate them to length 0).
func respine[T any](rows [][]T, n int) [][]T {
	for len(rows) < n {
		rows = append(rows, nil)
	}
	return rows[:n]
}

// process streams one edge through every level it survives to, inserting
// it into the first forest without a cycle (Algorithm 6 steps 5-8).
// Reports whether the edge was stored at any level, so streaming callers
// can retain side data for stored edges only.
func (c *construction) process(edgeIdx int, u, v int32) bool {
	lv := c.levelOf(edgeIdx)
	storedAny := false
	for i := 0; i <= lv && i < c.numLv; i++ {
		forests := c.ufs[i]
		placed := false
		for j := 0; j < len(forests); j++ {
			if !forests[j].Same(int(u), int(v)) {
				forests[j].Union(int(u), int(v))
				c.stored[i] = append(c.stored[i], edgeIdx)
				placed = true
				break
			}
		}
		if placed {
			storedAny = true
			continue
		}
		if len(forests) < c.cfg.K {
			nf := c.newForest()
			nf.Union(int(u), int(v))
			c.ufs[i] = append(forests, nf)
			c.stored[i] = append(c.stored[i], edgeIdx)
			storedAny = true
		}
	}
	return storedAny
}

// newForest allocates one spanning-forest structure, from the pool when
// the construction was configured with one.
func (c *construction) newForest() *unionfind.UF {
	if s := c.cfg.Scratch; s != nil && s.n == c.n {
		return s.Get()
	}
	return unionfind.New(c.n)
}

// release hands every allocated forest back to the configured pool.
// Call only once the construction is fully consumed (criticalLevel
// reads the forests during item emission).
func (c *construction) release() {
	s := c.cfg.Scratch
	if s == nil || s.n != c.n {
		return
	}
	for i, forests := range c.ufs {
		s.Put(forests...)
		c.ufs[i] = nil
	}
}

// retire releases the forests and hands the construction shell itself
// back to the pool for the next newConstruction. Call only once fully
// consumed; the construction must not be used afterwards.
func (c *construction) retire() {
	c.release()
	s := c.cfg.Scratch
	if s == nil || s.n != c.n {
		return
	}
	for i := range c.stored {
		c.stored[i] = c.stored[i][:0]
	}
	c.levelOf = nil
	s.putShell(c)
}

// criticalLevel returns i′(e): the smallest level at which the endpoints
// are not connected in the K-th (last) forest structure, i.e. the level
// where the edge's connectivity drops below K. ok=false if the endpoints
// are K-connected at every level (out of levels; treat as not output).
func (c *construction) criticalLevel(u, v int32) (int, bool) {
	for i := 0; i < c.numLv; i++ {
		// Fewer than K forests allocated means no edge ever needed the
		// K-th: the endpoints cannot be K-connected there.
		if len(c.ufs[i]) < c.cfg.K {
			return i, true
		}
		if !c.ufs[i][c.cfg.K-1].Same(int(u), int(v)) {
			return i, true
		}
	}
	return 0, false
}

// finish emits the sparsifier items (Algorithm 6 steps 10-15): an edge is
// output iff its own subsampling level reaches its critical level i′; the
// weight is inverse-probability scaled. An edge whose subsampling level
// reaches i′ necessarily entered a forest at level i′ (its endpoints are
// not K-connected there), so the stored set always contains every output
// candidate and the inverse-probability estimator is unbiased.
func (c *construction) finish(edges []graph.Edge, weightOf func(edgeIdx int) float64) []Item {
	seen := make(map[int]bool)
	var items []Item
	for i := 0; i < c.numLv; i++ {
		for _, idx := range c.stored[i] {
			if seen[idx] {
				continue
			}
			seen[idx] = true
			e := edges[idx]
			ip, ok := c.criticalLevel(e.U, e.V)
			if !ok {
				continue
			}
			if c.levelOf(idx) < ip {
				continue
			}
			prob := retentionProb(ip)
			items = append(items, Item{
				EdgeIdx: idx,
				Orig:    idx,
				U:       e.U,
				V:       e.V,
				W:       weightOf(idx),
				Weight:  weightOf(idx) / prob,
				Prob:    prob,
			})
		}
	}
	return items
}

// Unweighted builds a sparsifier of an unweighted (or uniformly weighted)
// graph in a single pass over its edges.
func Unweighted(g *graph.Graph, cfg Config) *Sparsifier {
	cfg = cfg.withDefaults(g.N())
	c := newConstruction(g.N(), g.M(), cfg)
	for idx, e := range g.Edges() {
		c.process(idx, e.U, e.V)
	}
	items := c.finish(g.Edges(), func(i int) float64 { return g.Edge(i).W })
	return &Sparsifier{N: g.N(), Items: items}
}

// Weighted builds a sparsifier of a weighted graph by splitting edges
// into powers-of-two weight classes, sparsifying each class, and taking
// the union (the sum of sparsifiers of a partition is a sparsifier of the
// whole — Lemma 17). Weights may span any positive range. Classes build
// concurrently on cfg.Workers goroutines and merge in class order, so the
// output is identical for every worker count.
func Weighted(g *graph.Graph, cfg Config) *Sparsifier {
	cfg = cfg.withDefaults(g.N())
	classes := bucketByClass(g.M(), func(i int) float64 { return g.Edge(i).W }, cfg.Workers)
	perClass := parallel.Map(cfg.Workers, len(classes), func(ci int) []Item {
		grp := classes[ci]
		sub := newConstruction(g.N(), g.M(), withClassSeed(cfg, grp.class))
		for _, idx := range grp.idxs {
			e := g.Edge(idx)
			sub.process(idx, e.U, e.V)
		}
		return sub.finish(g.Edges(), func(i int) float64 { return g.Edge(i).W })
	})
	var items []Item
	for _, its := range perClass {
		items = append(items, its...)
	}
	return &Sparsifier{N: g.N(), Items: items}
}

func withClassSeed(cfg Config, class int) Config {
	cfg.Seed = xrand.Mix64(cfg.Seed ^ (uint64(class)+1)*0x9e3779b97f4a7c15)
	return cfg
}

// classGroup is one powers-of-two weight class with its edge indices in
// increasing edge order.
type classGroup struct {
	class int
	idxs  []int
}

// bucketByClass groups edge indices by ⌊log2(weight)⌋ class, sharding the
// scan by edge range across workers. Shard-local lists concatenate in
// shard order, so each class's index list comes out in increasing edge
// order — exactly what a sequential scan produces for any shard partition
// — and parallel edges (same endpoints, same class) keep their arrival
// order, which makes their downstream weight sums deterministic. Classes
// are returned sorted; zero-weight edges are dropped (no cut mass).
func bucketByClass(m int, weightOf func(int) float64, workers int) []classGroup {
	shards := parallel.Shards(m, parallel.Workers(workers))
	locals := parallel.Map(workers, len(shards), func(s int) map[int][]int {
		local := make(map[int][]int)
		for i := shards[s].Lo; i < shards[s].Hi; i++ {
			w := weightOf(i)
			if w <= 0 {
				continue
			}
			cl := int(math.Floor(math.Log2(w)))
			local[cl] = append(local[cl], i)
		}
		return local
	})
	merged := make(map[int][]int)
	for _, local := range locals {
		//lint:ordered per-class append; shard order is fixed by the locals slice
		for cl, idxs := range local {
			merged[cl] = append(merged[cl], idxs...)
		}
	}
	keys := make([]int, 0, len(merged))
	//lint:ordered key collection, sorted immediately below
	for cl := range merged {
		keys = append(keys, cl)
	}
	sort.Ints(keys)
	out := make([]classGroup, 0, len(keys))
	for _, cl := range keys {
		out = append(out, classGroup{class: cl, idxs: merged[cl]})
	}
	return out
}
