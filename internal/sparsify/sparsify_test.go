package sparsify

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// maxCutError measures the worst relative cut error over singleton cuts
// and `trials` random cuts.
func maxCutError(g *graph.Graph, s *Sparsifier, trials int, seed uint64) float64 {
	r := xrand.New(seed)
	worst := 0.0
	check := func(mask []bool) {
		truth := g.CutWeight(mask)
		if truth <= 0 {
			return
		}
		est := s.CutWeight(mask)
		rel := math.Abs(est-truth) / truth
		if rel > worst {
			worst = rel
		}
	}
	for v := 0; v < g.N(); v++ {
		mask := make([]bool, g.N())
		mask[v] = true
		check(mask)
	}
	for t := 0; t < trials; t++ {
		mask := make([]bool, g.N())
		for i := range mask {
			mask[i] = r.Bernoulli(0.5)
		}
		check(mask)
	}
	return worst
}

func TestUnweightedPreservesCuts(t *testing.T) {
	g := graph.GNM(120, 3000, graph.WeightConfig{Mode: graph.UnitWeights}, 31)
	s := Unweighted(g, Config{Xi: 0.25, Seed: 1})
	if err := maxCutError(g, s, 60, 2); err > 0.35 {
		t.Fatalf("max cut error %.3f exceeds tolerance", err)
	}
}

func TestUnweightedShrinksDenseGraph(t *testing.T) {
	g := graph.GNP(150, 0.6, graph.WeightConfig{}, 32)
	s := Unweighted(g, Config{Xi: 0.5, Seed: 3})
	if len(s.Items) >= g.M() {
		t.Fatalf("sparsifier (%d) not smaller than graph (%d)", len(s.Items), g.M())
	}
}

func TestSparsifierKeepsSparseGraphExactly(t *testing.T) {
	// A tree has connectivity 1 everywhere: every edge is critical at
	// level 0 and must be kept with probability 1 and weight unchanged.
	const n = 50
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(i, i/2, 1)
	}
	s := Unweighted(g, Config{Xi: 0.25, Seed: 4})
	if len(s.Items) != g.M() {
		t.Fatalf("tree sparsifier has %d items, want %d", len(s.Items), g.M())
	}
	for _, it := range s.Items {
		if it.Prob != 1 || it.Weight != 1 {
			t.Fatalf("tree edge resampled: prob=%f weight=%f", it.Prob, it.Weight)
		}
	}
}

func TestWeightedPreservesCuts(t *testing.T) {
	g := graph.GNM(100, 2500, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 1000}, 33)
	s := Weighted(g, Config{Xi: 0.25, Seed: 5})
	if err := maxCutError(g, s, 60, 6); err > 0.35 {
		t.Fatalf("max weighted cut error %.3f", err)
	}
}

func TestWeightedHandlesWideDynamicRange(t *testing.T) {
	g := graph.New(40)
	r := xrand.New(7)
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			if r.Bernoulli(0.5) {
				g.MustAddEdge(i, j, math.Pow(2, float64(r.Intn(20))))
			}
		}
	}
	s := Weighted(g, Config{Xi: 0.25, Seed: 8})
	if err := maxCutError(g, s, 40, 9); err > 0.35 {
		t.Fatalf("wide-range cut error %.3f", err)
	}
}

func TestSparsifierGraphRoundTrip(t *testing.T) {
	g := graph.GNM(30, 200, graph.WeightConfig{}, 34)
	s := Unweighted(g, Config{Xi: 0.5, Seed: 10})
	sg := s.Graph()
	if sg.N() != g.N() {
		t.Fatalf("graph N = %d", sg.N())
	}
	mask := make([]bool, g.N())
	for i := 0; i < 10; i++ {
		mask[i] = true
	}
	if a, b := s.CutWeight(mask), sg.CutWeight(mask); math.Abs(a-b) > 1e-9 {
		t.Fatalf("CutWeight mismatch %f vs %f", a, b)
	}
}

func TestUnbiasedSingletonCuts(t *testing.T) {
	// Average over many seeds: the estimator of a fixed cut should be
	// unbiased, so the mean relative error should be far below the
	// per-sample deviation.
	g := graph.GNM(60, 900, graph.WeightConfig{}, 35)
	mask := make([]bool, g.N())
	for i := 0; i < 30; i++ {
		mask[i] = true
	}
	truth := g.CutWeight(mask)
	sum := 0.0
	const reps = 40
	for rseed := uint64(0); rseed < reps; rseed++ {
		s := Unweighted(g, Config{Xi: 0.5, Seed: 100 + rseed})
		sum += s.CutWeight(mask)
	}
	mean := sum / reps
	if math.Abs(mean-truth)/truth > 0.1 {
		t.Fatalf("estimator biased: mean %.2f vs truth %.2f", mean, truth)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults(100)
	if c.Xi != 0.25 || c.K < 4 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	c2 := Config{K: 7, Xi: 0.1}.withDefaults(100)
	if c2.K != 7 || c2.Xi != 0.1 {
		t.Fatalf("explicit config overridden: %+v", c2)
	}
}
