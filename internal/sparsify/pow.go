package sparsify

import "math"

// pow05 caches 2^(−i) for every subsampling level a construction can
// produce: numLv grows by one per doubling of the edge count, so level
// indices stay far below 64 for any input that fits in memory. Entries
// are the exact math.Pow values the emission paths used to compute per
// stored edge, built once at package init.
var pow05 [64]float64

func init() {
	for i := range pow05 {
		//lint:powtable table construction; the per-item hot path reads this table
		pow05[i] = math.Pow(0.5, float64(i))
	}
}

// retentionProb returns 2^(−level), the survival probability of an edge
// kept at subsampling level `level`, from the table (closed-form
// fallback for out-of-range levels, which no realistic m produces).
func retentionProb(level int) float64 {
	if level >= 0 && level < len(pow05) {
		return pow05[level]
	}
	//lint:powtable out-of-table fallback, unreachable below 2^63 edges
	return math.Pow(0.5, float64(level))
}
