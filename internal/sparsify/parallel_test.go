package sparsify

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// weightedInstance spans many powers-of-two weight classes so the
// per-class fan-out actually has work to distribute.
func weightedInstance(n int, seed uint64) *graph.Graph {
	return graph.GNP(n, 0.4, graph.WeightConfig{Mode: graph.ExpWeights, Scale: 2}, seed)
}

// TestWeightedWorkersBitIdentical is the sparsify layer's half of the
// pipeline determinism contract: same seed, any worker count, identical
// items in identical order.
func TestWeightedWorkersBitIdentical(t *testing.T) {
	g := weightedInstance(120, 3)
	base := Weighted(g, Config{Xi: 0.25, Seed: 9, Workers: 1})
	if len(base.Items) == 0 {
		t.Fatal("empty sparsifier")
	}
	for _, workers := range []int{2, 4, 0} {
		sp := Weighted(g, Config{Xi: 0.25, Seed: 9, Workers: workers})
		if !reflect.DeepEqual(base.Items, sp.Items) {
			t.Fatalf("workers=%d: items differ from sequential", workers)
		}
	}
}

func TestDeferredWorkersBitIdentical(t *testing.T) {
	g := weightedInstance(100, 5)
	r := xrand.New(17)
	sigma := make([]float64, g.M())
	u := make([]float64, g.M())
	for i := range sigma {
		sigma[i] = 0.5 + 4*r.Float64()
		u[i] = sigma[i] * (0.7 + 0.6*r.Float64())
	}
	build := func(workers int) *Deferred {
		d, err := NewDeferred(g.N(), func(i int) (int32, int32) {
			e := g.Edge(i)
			return e.U, e.V
		}, g.M(), sigma, 2, Config{Xi: 0.25, K: 8, Seed: 23, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	seq := build(1)
	if seq.Size() == 0 {
		t.Fatal("empty deferred structure")
	}
	for _, workers := range []int{2, 4, 0} {
		par := build(workers)
		if !reflect.DeepEqual(seq.items, par.items) {
			t.Fatalf("workers=%d: stored items differ", workers)
		}
		a := seq.Refine(func(i int) float64 { return u[i] })
		b := par.RefineParallel(workers, func(i int) float64 { return u[i] })
		if !reflect.DeepEqual(a.Items, b.Items) {
			t.Fatalf("workers=%d: refined sparsifiers differ", workers)
		}
	}
}

func TestBucketByClassMatchesSequentialScan(t *testing.T) {
	weights := []float64{1, 2, 3, 0, 4.5, 0.9, 2.2, -1, 1024, 1025, 0.003}
	weightOf := func(i int) float64 { return weights[i] }
	seq := bucketByClass(len(weights), weightOf, 1)
	for _, workers := range []int{2, 3, 8} {
		par := bucketByClass(len(weights), weightOf, workers)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: %v vs %v", workers, par, seq)
		}
	}
	// Classes sorted, indices increasing, non-positive weights dropped.
	prevClass := -1 << 30
	total := 0
	for _, grp := range seq {
		if grp.class <= prevClass {
			t.Fatalf("classes not sorted: %v", seq)
		}
		prevClass = grp.class
		for i := 1; i < len(grp.idxs); i++ {
			if grp.idxs[i] <= grp.idxs[i-1] {
				t.Fatalf("class %d indices not increasing: %v", grp.class, grp.idxs)
			}
		}
		total += len(grp.idxs)
	}
	if total != len(weights)-2 { // two non-positive weights dropped
		t.Fatalf("bucketed %d edges, want %d", total, len(weights)-2)
	}
}

func TestWeightedDeterministicAcrossRuns(t *testing.T) {
	// Regression: class iteration used to follow Go map order, which made
	// item order vary run to run. It must now be a pure function of the
	// seed.
	g := weightedInstance(80, 11)
	a := Weighted(g, Config{Xi: 0.25, Seed: 31})
	b := Weighted(g, Config{Xi: 0.25, Seed: 31})
	if !reflect.DeepEqual(a.Items, b.Items) {
		t.Fatal("same-seed runs produced different item orders")
	}
}
