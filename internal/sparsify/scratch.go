package sparsify

import (
	"sync"

	"repro/internal/unionfind"
)

// Scratch is a reusable pool of union-find forests for the leveled
// sparsifier constructions. The lazy forest allocation of construction
// (one unionfind.New(n) per forest, per level, per weight class, per
// (use, level) job, per sampling round) is the dominant per-round
// garbage of the dual-primal solver's sampling pass; a Scratch lets
// every construction of a solve — and, through a session, every solve
// of a lifetime — draw Reset forests from one free list instead. A
// Reset forest is indistinguishable from a fresh one (n singleton sets,
// zero ranks), so wiring a Scratch through Config never changes any
// construction's output.
//
// Get and Put are safe for concurrent use: the per-class and per-job
// constructions of one sampling round run on the worker pool and share
// the solve's Scratch.
type Scratch struct {
	n    int
	mu   sync.Mutex
	free []*unionfind.UF
}

// NewScratch returns an empty pool of forests over n elements.
func NewScratch(n int) *Scratch { return &Scratch{n: n} }

// N returns the element count the pooled forests are sized for.
func (s *Scratch) N() int { return s.n }

// Retained returns how many forests the pool currently holds.
func (s *Scratch) Retained() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.free)
}

// Get returns a forest of n singleton sets: a pooled one Reset in
// place, or a fresh one when the pool is empty.
func (s *Scratch) Get() *unionfind.UF {
	s.mu.Lock()
	var uf *unionfind.UF
	if last := len(s.free) - 1; last >= 0 {
		uf = s.free[last]
		s.free = s.free[:last]
	}
	s.mu.Unlock()
	if uf == nil {
		return unionfind.New(s.n)
	}
	uf.Reset()
	return uf
}

// Put returns forests to the pool. Only forests obtained from this
// Scratch (or sized exactly n) may come back; the caller must not use
// them afterwards.
func (s *Scratch) Put(ufs ...*unionfind.UF) {
	s.mu.Lock()
	s.free = append(s.free, ufs...)
	s.mu.Unlock()
}
