package sparsify

import (
	"sync"

	"repro/internal/unionfind"
)

// Scratch is a reusable pool of working structures for the leveled
// sparsifier constructions. The lazy forest allocation of construction
// (one unionfind.New(n) per forest, per level, per weight class, per
// (use, level) job, per sampling round) is the dominant per-round
// garbage of the dual-primal solver's sampling pass; a Scratch lets
// every construction of a solve — and, through a session, every solve
// of a lifetime — draw Reset forests from one free list instead. A
// Reset forest is indistinguishable from a fresh one (n singleton sets,
// zero ranks), so wiring a Scratch through Config never changes any
// construction's output.
//
// Beyond forests, the pool recycles the rest of the builder lifecycle's
// containers: construction shells (level spines and stored-index rows),
// the builder's class and side-data maps, the emitted Deferred's item
// slices and byEdge index, and the refinement's reveal buffers. Every
// getter hands back a logically empty structure (cleared map, length-0
// or fully-overwritten slice), so pooled and cold constructions are
// bit-identical.
//
// All getters and putters are safe for concurrent use: the per-class
// and per-job constructions of one sampling round run on the worker
// pool and share the solve's Scratch.
type Scratch struct {
	n    int
	mu   sync.Mutex
	free []*unionfind.UF

	shells   []*construction
	infos    []map[int]builderEdge
	classes  []map[int]*construction
	intMaps  []map[int]int
	boolMaps []map[int]bool
	items    [][]Item
	f64s     [][]float64
}

// NewScratch returns an empty pool of forests over n elements.
func NewScratch(n int) *Scratch { return &Scratch{n: n} }

// N returns the element count the pooled forests are sized for.
func (s *Scratch) N() int { return s.n }

// Retained returns how many forests the pool currently holds.
func (s *Scratch) Retained() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.free)
}

// RetainedWords reports the pool's slice-backed capacity in 64-bit
// words (forests, construction-shell rows, item and reveal buffers; an
// Item is 6 words). The map pools are excluded — Go maps do not expose
// their footprint — so this is a floor on what the pool keeps warm.
// Like every arena-side count, retained capacity is never part of any
// run's metered live space.
func (s *Scratch) RetainedWords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := 0
	for _, uf := range s.free {
		w += uf.Words()
	}
	for _, c := range s.shells {
		for _, row := range c.stored {
			w += cap(row)
		}
		w += 3 * (cap(c.ufs) + cap(c.stored)) // spine headers
	}
	for _, b := range s.items {
		w += 6 * cap(b)
	}
	for _, b := range s.f64s {
		w += cap(b)
	}
	return w
}

// Get returns a forest of n singleton sets: a pooled one Reset in
// place, or a fresh one when the pool is empty.
func (s *Scratch) Get() *unionfind.UF {
	s.mu.Lock()
	var uf *unionfind.UF
	if last := len(s.free) - 1; last >= 0 {
		uf = s.free[last]
		s.free = s.free[:last]
	}
	s.mu.Unlock()
	if uf == nil {
		return unionfind.New(s.n)
	}
	uf.Reset()
	return uf
}

// Put returns forests to the pool. Only forests obtained from this
// Scratch (or sized exactly n) may come back; the caller must not use
// them afterwards.
func (s *Scratch) Put(ufs ...*unionfind.UF) {
	s.mu.Lock()
	s.free = append(s.free, ufs...)
	s.mu.Unlock()
}

// getShell pops a retired construction shell (nil when none is
// pooled); putShell retires one. The caller re-initializes every field
// except the retained spine/row capacity.
func (s *Scratch) getShell() *construction {
	s.mu.Lock()
	defer s.mu.Unlock()
	if last := len(s.shells) - 1; last >= 0 {
		c := s.shells[last]
		s.shells = s.shells[:last]
		return c
	}
	return nil
}

func (s *Scratch) putShell(c *construction) {
	s.mu.Lock()
	s.shells = append(s.shells, c)
	s.mu.Unlock()
}

// The map getters return empty maps (pooled ones are cleared on the
// way back in), the slice getters length-0 slices with whatever
// capacity a retired buffer carried.

func (s *Scratch) getInfoMap() map[int]builderEdge {
	s.mu.Lock()
	defer s.mu.Unlock()
	if last := len(s.infos) - 1; last >= 0 {
		m := s.infos[last]
		s.infos = s.infos[:last]
		return m
	}
	return make(map[int]builderEdge)
}

func (s *Scratch) putInfoMap(m map[int]builderEdge) {
	clear(m)
	s.mu.Lock()
	s.infos = append(s.infos, m)
	s.mu.Unlock()
}

func (s *Scratch) getClassMap() map[int]*construction {
	s.mu.Lock()
	defer s.mu.Unlock()
	if last := len(s.classes) - 1; last >= 0 {
		m := s.classes[last]
		s.classes = s.classes[:last]
		return m
	}
	return make(map[int]*construction)
}

func (s *Scratch) putClassMap(m map[int]*construction) {
	clear(m)
	s.mu.Lock()
	s.classes = append(s.classes, m)
	s.mu.Unlock()
}

func (s *Scratch) getIntMap() map[int]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if last := len(s.intMaps) - 1; last >= 0 {
		m := s.intMaps[last]
		s.intMaps = s.intMaps[:last]
		return m
	}
	return make(map[int]int)
}

func (s *Scratch) putIntMap(m map[int]int) {
	clear(m)
	s.mu.Lock()
	s.intMaps = append(s.intMaps, m)
	s.mu.Unlock()
}

func (s *Scratch) getBoolMap() map[int]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if last := len(s.boolMaps) - 1; last >= 0 {
		m := s.boolMaps[last]
		s.boolMaps = s.boolMaps[:last]
		return m
	}
	return make(map[int]bool)
}

func (s *Scratch) putBoolMap(m map[int]bool) {
	clear(m)
	s.mu.Lock()
	s.boolMaps = append(s.boolMaps, m)
	s.mu.Unlock()
}

func (s *Scratch) getItems(capHint int) []Item {
	s.mu.Lock()
	if last := len(s.items) - 1; last >= 0 {
		b := s.items[last]
		s.items = s.items[:last]
		s.mu.Unlock()
		return b[:0]
	}
	s.mu.Unlock()
	return make([]Item, 0, capHint)
}

func (s *Scratch) putItems(b []Item) {
	s.mu.Lock()
	s.items = append(s.items, b)
	s.mu.Unlock()
}

// getF64s returns a length-n float64 buffer whose every element the
// caller must overwrite before reading (reveal buffers are filled by a
// full-range shard sweep, so no clear happens here).
func (s *Scratch) getF64s(n int) []float64 {
	s.mu.Lock()
	for i := len(s.f64s) - 1; i >= 0; i-- {
		if cap(s.f64s[i]) >= n {
			b := s.f64s[i][:n]
			last := len(s.f64s) - 1
			s.f64s[i] = s.f64s[last]
			s.f64s = s.f64s[:last]
			s.mu.Unlock()
			return b
		}
	}
	s.mu.Unlock()
	return make([]float64, n)
}

func (s *Scratch) putF64s(b []float64) {
	s.mu.Lock()
	s.f64s = append(s.f64s, b)
	s.mu.Unlock()
}
