package sparsify

import (
	"fmt"
	"math"

	"repro/internal/parallel"
)

// Deferred implements Definition 4 (The Deferred Cut-Sparsifier Problem):
// sampling decisions are made from promise values ς with the guarantee
// ς_e/χ ≤ u_e ≤ ς_e·χ for the true (hidden) weights u, oversampling every
// retention probability by Θ(χ²). After construction, the exact u values
// of the *stored* edges are revealed via Refine, which produces the final
// (1±ξ) cut sparsifier of the u-weighted graph.
//
// In the paper the promise values are the edge multipliers at sampling
// time and the true values are the multipliers at use time, which drift
// by at most e^(±ε) per inner iteration — χ = γ = n^(1/(2p)) covers a full
// batch of −ε⁻¹·log γ iterations (Theorem 3).
type Deferred struct {
	n      int
	chi    float64
	items  []Item // probabilities fixed at sampling time; Weight holds ς until refined
	byEdge map[int]int

	// scr is the pool the structure's containers return to on Release
	// (set when built through a Scratch-configured DeferredBuilder; nil
	// means plain heap ownership). refined retains the backing of the
	// last RefineWith output so Release can reclaim it — the solver
	// consumes each refinement before releasing the structure.
	scr     *Scratch
	refined []Item
}

// Release hands the structure's pooled containers (items, byEdge index,
// and the last refinement's backing) back to the Scratch it was built
// with. No-op without one. The Deferred — and any Sparsifier its
// RefineWith produced — must not be used afterwards.
func (d *Deferred) Release() {
	if d.scr == nil {
		return
	}
	if d.items != nil {
		d.scr.putItems(d.items)
		d.items = nil
	}
	if d.byEdge != nil {
		d.scr.putIntMap(d.byEdge)
		d.byEdge = nil
	}
	if d.refined != nil {
		d.scr.putItems(d.refined)
		d.refined = nil
	}
}

// NewDeferred samples the structure D from promise values sigma (indexed
// like edges). chi ≥ 1 is the promised distortion bound. The edges slice
// is only read for endpoints; weights used are sigma. With cfg.Workers
// != 1 (including the zero value, which resolves to GOMAXPROCS)
// edgeEndpoints may be called concurrently from multiple goroutines and
// must be safe for that — a pure index lookup, as in every caller here.
// The output is bit-identical for every worker count.
func NewDeferred(n int, edgeEndpoints func(i int) (u, v int32), m int, sigma []float64, chi float64, cfg Config) (*Deferred, error) {
	if chi < 1 {
		return nil, fmt.Errorf("sparsify: chi %v < 1", chi)
	}
	if len(sigma) != m {
		return nil, fmt.Errorf("sparsify: %d promise values for %d edges", len(sigma), m)
	}
	cfg = deferredConfig(n, chi, cfg)

	// Per weight class of sigma, run the leveled construction. Endpoint
	// materialization shards by edge range; the per-class constructions
	// run concurrently on cfg.Workers goroutines and merge in class
	// order, so the structure is identical for every worker count.
	type fakeEdge struct{ u, v int32 }
	endpoints := make([]fakeEdge, m)
	parallel.ForEachShard(cfg.Workers, m, func(_ int, sh parallel.Range) {
		for i := sh.Lo; i < sh.Hi; i++ {
			u, v := edgeEndpoints(i)
			endpoints[i] = fakeEdge{u, v}
		}
	})
	classes := bucketByClass(m, func(i int) float64 { return sigma[i] }, cfg.Workers)
	perClass := parallel.Map(cfg.Workers, len(classes), func(ci int) []Item {
		grp := classes[ci]
		sub := newConstruction(n, m, withClassSeed(cfg, grp.class))
		for _, idx := range grp.idxs {
			sub.process(idx, endpoints[idx].u, endpoints[idx].v)
		}
		// finish needs a graph.Edge slice; synthesize on the fly.
		seen := make(map[int]bool)
		var items []Item
		for i := 0; i < sub.numLv; i++ {
			for _, idx := range sub.stored[i] {
				if seen[idx] {
					continue
				}
				seen[idx] = true
				ep := endpoints[idx]
				ipLv, ok := sub.criticalLevel(ep.u, ep.v)
				if !ok {
					continue
				}
				if sub.levelOf(idx) < ipLv {
					continue
				}
				prob := retentionProb(ipLv)
				items = append(items, Item{
					EdgeIdx: idx,
					Orig:    idx,
					U:       ep.u,
					V:       ep.v,
					Weight:  sigma[idx], // provisional; replaced on Refine
					Prob:    prob,
				})
			}
		}
		return items
	})
	d := &Deferred{n: n, chi: chi, byEdge: make(map[int]int)}
	for _, its := range perClass {
		for _, it := range its {
			d.byEdge[it.EdgeIdx] = len(d.items)
			d.items = append(d.items, it)
		}
	}
	return d, nil
}

// deferredConfig resolves a deferred construction's configuration: fill
// in defaults, then oversample by chi² (Lemma 17: "multiply p′_e by
// O(χ²)") by raising the connectivity threshold K by chi², which
// multiplies every edge's retention probability by ~chi² *and* keeps the
// construction consistent — an edge whose subsampling level reaches its
// (new, lower) critical level necessarily enters a forest there, so the
// inverse-probability estimator stays unbiased. This is exactly where
// the χ² factor of the O(nχ²ξ⁻²·polylog) space bound comes from.
func deferredConfig(n int, chi float64, cfg Config) Config {
	cfg = cfg.withDefaults(n)
	boost := int(math.Ceil(chi * chi))
	if boost < 1 {
		boost = 1
	}
	const maxK = 1 << 13 // memory guard; beyond this the structure would
	// store everything anyway at the sizes this repository runs
	if cfg.K > maxK/boost {
		cfg.K = maxK
	} else {
		cfg.K *= boost
	}
	return cfg
}

// Size returns the number of stored edges (the structure's space).
func (d *Deferred) Size() int { return len(d.items) }

// Items returns the stored items (read-only; the slice is the
// structure's backing store). Each Item carries the edge's endpoints,
// original index and weight, and its sampling-time promise value in
// Weight — everything the union and reveal steps need without touching
// the input stream again.
func (d *Deferred) Items() []Item { return d.items }

// StoredEdges returns the indices of the stored edges — the only edges
// whose exact weights the refiner is allowed to request (Definition 4).
func (d *Deferred) StoredEdges() []int {
	out := make([]int, len(d.items))
	for i, it := range d.items {
		out[i] = it.EdgeIdx
	}
	return out
}

// Refine reveals the exact weights of the stored edges and returns the
// final sparsifier. reveal is called only for stored edge indices; it
// must return the true weight u_e. Edges whose revealed weight is zero
// are dropped.
func (d *Deferred) Refine(reveal func(edgeIdx int) float64) *Sparsifier {
	return d.RefineParallel(1, reveal)
}

// RefineParallel is Refine with the reveal calls sharded by item range
// across workers (0 = GOMAXPROCS, 1 = sequential Refine). reveal must be
// safe for concurrent calls when workers != 1 — in the solver it is a
// read-only evaluation of the frozen dual state. Output order matches
// Refine exactly for any worker count.
func (d *Deferred) RefineParallel(workers int, reveal func(edgeIdx int) float64) *Sparsifier {
	return d.RefineWith(workers, func(it Item) float64 { return reveal(it.EdgeIdx) })
}

// RefineWith is RefineParallel with the reveal callback handed the whole
// stored Item rather than just its local index: the reveal can use the
// endpoints (and the provisional promise value in Weight) directly, so
// refinement needs no random access back into the input stream — the
// out-of-core reveal path of the solver.
func (d *Deferred) RefineWith(workers int, reveal func(it Item) float64) *Sparsifier {
	var revealed []float64
	if d.scr != nil {
		revealed = d.scr.getF64s(len(d.items))
	} else {
		revealed = make([]float64, len(d.items))
	}
	parallel.ForEachShard(workers, len(d.items), func(_ int, sh parallel.Range) {
		for i := sh.Lo; i < sh.Hi; i++ {
			revealed[i] = reveal(d.items[i])
		}
	})
	var items []Item
	if d.scr != nil {
		items = d.scr.getItems(len(d.items))
	} else {
		items = make([]Item, 0, len(d.items))
	}
	for i, it := range d.items {
		if revealed[i] <= 0 {
			continue
		}
		it.Weight = revealed[i] / it.Prob
		items = append(items, it)
	}
	if d.scr != nil {
		d.scr.putF64s(revealed)
		d.refined = items // reclaimed by Release
	}
	return &Sparsifier{N: d.n, Items: items}
}
