package sparsify

import (
	"fmt"
	"math"
)

// Deferred implements Definition 4 (The Deferred Cut-Sparsifier Problem):
// sampling decisions are made from promise values ς with the guarantee
// ς_e/χ ≤ u_e ≤ ς_e·χ for the true (hidden) weights u, oversampling every
// retention probability by Θ(χ²). After construction, the exact u values
// of the *stored* edges are revealed via Refine, which produces the final
// (1±ξ) cut sparsifier of the u-weighted graph.
//
// In the paper the promise values are the edge multipliers at sampling
// time and the true values are the multipliers at use time, which drift
// by at most e^(±ε) per inner iteration — χ = γ = n^(1/(2p)) covers a full
// batch of −ε⁻¹·log γ iterations (Theorem 3).
type Deferred struct {
	n      int
	chi    float64
	items  []Item // probabilities fixed at sampling time; Weight holds ς until refined
	byEdge map[int]int
}

// NewDeferred samples the structure D from promise values sigma (indexed
// like edges). chi ≥ 1 is the promised distortion bound. The edges slice
// is only read for endpoints; weights used are sigma.
func NewDeferred(n int, edgeEndpoints func(i int) (u, v int32), m int, sigma []float64, chi float64, cfg Config) (*Deferred, error) {
	if chi < 1 {
		return nil, fmt.Errorf("sparsify: chi %v < 1", chi)
	}
	if len(sigma) != m {
		return nil, fmt.Errorf("sparsify: %d promise values for %d edges", len(sigma), m)
	}
	cfg = cfg.withDefaults(n)
	// Oversample by chi² (Lemma 17: "multiply p′_e by O(χ²)"): raise the
	// connectivity threshold K by chi², which multiplies every edge's
	// retention probability by ~chi² *and* keeps the construction
	// consistent — an edge whose subsampling level reaches its (new,
	// lower) critical level necessarily enters a forest there, so the
	// inverse-probability estimator stays unbiased. This is exactly where
	// the χ² factor of the O(nχ²ξ⁻²·polylog) space bound comes from.
	boost := int(math.Ceil(chi * chi))
	if boost < 1 {
		boost = 1
	}
	const maxK = 1 << 13 // memory guard; beyond this the structure would
	// store everything anyway at the sizes this repository runs
	if cfg.K > maxK/boost {
		cfg.K = maxK
	} else {
		cfg.K *= boost
	}

	// Per weight class of sigma, run the leveled construction.
	type fakeEdge struct{ u, v int32 }
	endpoints := make([]fakeEdge, m)
	for i := 0; i < m; i++ {
		u, v := edgeEndpoints(i)
		endpoints[i] = fakeEdge{u, v}
	}
	classMap := make(map[int][]int)
	for i := 0; i < m; i++ {
		if sigma[i] <= 0 {
			continue
		}
		cl := int(math.Floor(math.Log2(sigma[i])))
		classMap[cl] = append(classMap[cl], i)
	}
	d := &Deferred{n: n, chi: chi, byEdge: make(map[int]int)}
	for ci, class := range classMap {
		sub := newConstruction(n, m, withClassSeed(cfg, ci))
		for _, idx := range class {
			sub.process(idx, endpoints[idx].u, endpoints[idx].v)
		}
		// finish needs a graph.Edge slice; synthesize on the fly.
		seen := make(map[int]bool)
		for i := 0; i < sub.numLv; i++ {
			for _, idx := range sub.stored[i] {
				if seen[idx] {
					continue
				}
				seen[idx] = true
				ep := endpoints[idx]
				ipLv, ok := sub.criticalLevel(ep.u, ep.v)
				if !ok {
					continue
				}
				if sub.levelOf(idx) < ipLv {
					continue
				}
				prob := math.Pow(0.5, float64(ipLv))
				d.byEdge[idx] = len(d.items)
				d.items = append(d.items, Item{
					EdgeIdx: idx,
					U:       ep.u,
					V:       ep.v,
					Weight:  sigma[idx], // provisional; replaced on Refine
					Prob:    prob,
				})
			}
		}
	}
	return d, nil
}

// Size returns the number of stored edges (the structure's space).
func (d *Deferred) Size() int { return len(d.items) }

// StoredEdges returns the indices of the stored edges — the only edges
// whose exact weights the refiner is allowed to request (Definition 4).
func (d *Deferred) StoredEdges() []int {
	out := make([]int, len(d.items))
	for i, it := range d.items {
		out[i] = it.EdgeIdx
	}
	return out
}

// Refine reveals the exact weights of the stored edges and returns the
// final sparsifier. reveal is called only for stored edge indices; it
// must return the true weight u_e. Edges whose revealed weight is zero
// are dropped.
func (d *Deferred) Refine(reveal func(edgeIdx int) float64) *Sparsifier {
	items := make([]Item, 0, len(d.items))
	for _, it := range d.items {
		u := reveal(it.EdgeIdx)
		if u <= 0 {
			continue
		}
		it.Weight = u / it.Prob
		items = append(items, it)
	}
	return &Sparsifier{N: d.n, Items: items}
}
