package sparsify

import (
	"fmt"
	"math"
	"sort"
)

// DeferredBuilder is the streaming construction of the deferred
// cut-sparsifier: edges arrive one at a time with their promise value ς
// and are pushed straight through the per-class leveled forest
// constructions, so the builder's memory is the stored sample plus the
// forest state — never the edge sequence itself. Feeding the builder the
// same (localIdx, u, v, ς) sequence that NewDeferred receives via its
// arrays produces a bit-identical Deferred (same per-class seeds, same
// within-class processing order, same item emission order); the solver
// relies on this to run its sampling round as one chunked pass over a
// Source without materializing promise or endpoint arrays.
//
// Unlike NewDeferred, the builder also records each stored edge's
// original stream index and weight, so the resulting Items carry enough
// to drive refinement and the offline union step with no random access
// back into the input.
type DeferredBuilder struct {
	n, m    int
	chi     float64
	cfg     Config // defaults and chi² oversampling already applied
	classes map[int]*construction
	info    map[int]builderEdge // localIdx -> side data for stored edges
}

// builderEdge is the per-stored-edge side data the construction core does
// not keep.
type builderEdge struct {
	u, v  int32
	w     float64
	orig  int
	sigma float64
}

// NewDeferredBuilder prepares a streaming deferred construction over a
// local edge sequence of length m (the count must be known up front: it
// fixes the subsampling depth, exactly as NewDeferred derives it from its
// array length). chi >= 1 is the promised distortion bound.
func NewDeferredBuilder(n, m int, chi float64, cfg Config) (*DeferredBuilder, error) {
	if chi < 1 {
		return nil, fmt.Errorf("sparsify: chi %v < 1", chi)
	}
	if m < 0 {
		return nil, fmt.Errorf("sparsify: negative edge count %d", m)
	}
	b := &DeferredBuilder{
		n:   n,
		m:   m,
		chi: chi,
		cfg: deferredConfig(n, chi, cfg),
	}
	if s := b.cfg.Scratch; s != nil && s.n == n {
		b.classes = s.getClassMap()
		b.info = s.getInfoMap()
	} else {
		b.classes = make(map[int]*construction)
		b.info = make(map[int]builderEdge)
	}
	return b, nil
}

// Add streams one edge into the construction. localIdx must be the edge's
// position in the builder's own sequence (0..m-1, strictly increasing
// across calls — it drives the subsampling hash); orig is its index in
// the original stream and w its original weight, both retained only for
// stored edges. Edges with non-positive sigma are dropped, matching
// bucketByClass.
func (b *DeferredBuilder) Add(localIdx int, u, v int32, w float64, orig int, sigma float64) {
	if !(sigma > 0) {
		return
	}
	cl := int(math.Floor(math.Log2(sigma)))
	c := b.classes[cl]
	if c == nil {
		c = newConstruction(b.n, b.m, withClassSeed(b.cfg, cl))
		b.classes[cl] = c
	}
	if c.process(localIdx, u, v) {
		b.info[localIdx] = builderEdge{u: u, v: v, w: w, orig: orig, sigma: sigma}
	}
}

// Finish emits the Deferred. The per-class item streams concatenate in
// increasing class order — the order NewDeferred's sorted bucketByClass
// produces — so the structure is identical to the array-fed construction
// on the same input. When the builder was configured with a Scratch,
// Finish draws the emitted structure's containers from the pool and
// retires every construction (forests and shells) back to it on the way
// out: the Deferred carries only its Items and needs no forest state,
// and the caller hands the containers back through Deferred.Release.
// The builder must not be used after Finish.
func (b *DeferredBuilder) Finish() *Deferred {
	var scr *Scratch
	if s := b.cfg.Scratch; s != nil && s.n == b.n {
		scr = s
	}
	keys := make([]int, 0, len(b.classes))
	//lint:ordered key collection, sorted immediately below
	for cl := range b.classes {
		keys = append(keys, cl)
	}
	sort.Ints(keys)
	d := &Deferred{n: b.n, chi: b.chi, scr: scr}
	var seen map[int]bool
	if scr != nil {
		d.byEdge = scr.getIntMap()
		d.items = scr.getItems(0)
		seen = scr.getBoolMap()
	} else {
		d.byEdge = make(map[int]int)
	}
	for _, cl := range keys {
		sub := b.classes[cl]
		// Per-class dedup: edge indices never repeat across classes, so
		// one cleared map behaves exactly like a fresh map per class.
		if scr != nil {
			clear(seen)
		} else {
			seen = make(map[int]bool)
		}
		for i := 0; i < sub.numLv; i++ {
			for _, idx := range sub.stored[i] {
				if seen[idx] {
					continue
				}
				seen[idx] = true
				info := b.info[idx]
				ipLv, ok := sub.criticalLevel(info.u, info.v)
				if !ok {
					continue
				}
				if sub.levelOf(idx) < ipLv {
					continue
				}
				prob := retentionProb(ipLv)
				d.byEdge[idx] = len(d.items)
				d.items = append(d.items, Item{
					EdgeIdx: idx,
					Orig:    info.orig,
					U:       info.u,
					V:       info.v,
					W:       info.w,
					Weight:  info.sigma, // provisional; replaced on Refine
					Prob:    prob,
				})
			}
		}
		sub.retire()
	}
	if scr != nil {
		scr.putBoolMap(seen)
		scr.putClassMap(b.classes)
		scr.putInfoMap(b.info)
		b.classes, b.info = nil, nil
	}
	return d
}
