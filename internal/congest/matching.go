package congest

import (
	"math"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Distributed maximal b-matching in the congested clique, in the style
// the paper sketches ("each vertex to sketch its neighborhood n^(1/p)
// times... O(p/ε) rounds and O(n^(1/p)) size message per vertex"): each
// round, every unsaturated vertex samples ~n^(1/p) of its surviving
// incident edges and ships them to a coordinator (player 0), which
// extends a greedy maximal matching and broadcasts newly saturated
// vertices. Lemma 19/20's filtering analysis gives O(p) rounds for
// maximal matching; weight classes (processed heaviest-first by the
// caller) lift it to the O(1)-approximation regime.

// MatchingResult reports the matched pairs and resource stats.
type MatchingResult struct {
	Pairs [][2]int32 // matched edges (one per multiplicity unit omitted)
	Mults []int
	Stats Stats
	// MaxSampleMsgWords is the largest sampling message a (non-
	// coordinator) vertex sent — the paper's O(n^(1/p)) quantity. The
	// coordinator's saturation broadcasts are accounted separately in
	// Stats.
	MaxSampleMsgWords int
}

// MaximalMatchingClique runs the protocol on g with message budget
// ~n^(1/p) edge words per vertex per round.
func MaximalMatchingClique(g *graph.Graph, p float64, seed uint64, maxRounds int) MatchingResult {
	n := g.N()
	c := NewClique(n)
	budget := int(math.Ceil(math.Pow(float64(n), 1/p)))
	if budget < 2 {
		budget = 2
	}
	if maxRounds == 0 {
		maxRounds = int(4*p) + 4
	}
	// Per-node state (closures capture; the simulator runs nodes in
	// parallel but each node only touches its own state and the
	// coordinator's state is only touched by node 0).
	resid := make([]int, n)
	for v := range resid {
		resid[v] = g.B(v)
	}
	// Residual capacities as known by each node (synced by broadcast).
	known := make([][]int, n)
	for v := range known {
		known[v] = append([]int(nil), resid...)
	}
	// Adjacency snapshot per node.
	inc := make([][]graph.Edge, n)
	for _, e := range g.Edges() {
		inc[e.U] = append(inc[e.U], e)
		inc[e.V] = append(inc[e.V], e)
	}
	rngs := make([]*xrand.RNG, n)
	for v := range rngs {
		rngs[v] = xrand.New(seed).Split(uint64(v))
	}
	var pairs [][2]int32
	var mults []int
	maxSample := make([]int, n)
	var selfSample []uint64 // coordinator keeps its own sample locally
	handler := func(node, round int, inbox []Message, send func(to int, payload []uint64)) bool {
		if round%2 == 0 {
			// Sampling round. First apply saturation updates broadcast by
			// the coordinator in the previous (odd) round.
			for _, msg := range inbox {
				if msg.From == 0 {
					for i := 0; i+1 < len(msg.Payload); i += 2 {
						known[node][int(msg.Payload[i])] = int(msg.Payload[i+1])
					}
				}
			}
			// Unsaturated vertices send up to `budget` surviving edges
			// to the coordinator.
			if known[node][node] <= 0 {
				return false
			}
			var alive []graph.Edge
			for _, e := range inc[node] {
				if known[node][e.U] > 0 && known[node][e.V] > 0 {
					alive = append(alive, e)
				}
			}
			if len(alive) == 0 {
				return false
			}
			r := rngs[node]
			var payload []uint64
			if len(alive) <= budget {
				for _, e := range alive {
					payload = append(payload, graph.KeyOf(e.U, e.V))
				}
			} else {
				perm := r.Perm(len(alive))[:budget]
				for _, pi := range perm {
					e := alive[pi]
					payload = append(payload, graph.KeyOf(e.U, e.V))
				}
			}
			if node == 0 {
				selfSample = payload // a node may keep its own data
			} else {
				if len(payload) > maxSample[node] {
					maxSample[node] = len(payload)
				}
				send(0, payload)
			}
			return true
		}
		// Coordination round: node 0 extends the matching greedily and
		// broadcasts saturation updates.
		if node != 0 {
			return known[node][node] > 0
		}
		var updates []uint64
		work := inbox
		if len(selfSample) > 0 {
			work = append([]Message{{From: 0, Payload: selfSample}}, inbox...)
			selfSample = nil
		}
		for _, msg := range work {
			for _, key := range msg.Payload {
				u, v := graph.UnKey(key)
				cu, cv := known[0][u], known[0][v]
				m := cu
				if cv < m {
					m = cv
				}
				if m > 0 {
					known[0][u] -= m
					known[0][v] -= m
					pairs = append(pairs, [2]int32{u, v})
					mults = append(mults, m)
					updates = append(updates, uint64(u), uint64(known[0][u]), uint64(v), uint64(known[0][v]))
				}
			}
		}
		if len(updates) > 0 {
			for to := 1; to < n; to++ {
				send(to, updates)
			}
		}
		return true
	}
	c.Run(2*maxRounds, handler)
	maxS := 0
	for _, v := range maxSample {
		if v > maxS {
			maxS = v
		}
	}
	return MatchingResult{Pairs: pairs, Mults: mults, Stats: c.Stats(), MaxSampleMsgWords: maxS}
}
