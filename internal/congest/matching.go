package congest

import (
	"math"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Distributed maximal b-matching in the congested clique, in the style
// the paper sketches ("each vertex to sketch its neighborhood n^(1/p)
// times... O(p/ε) rounds and O(n^(1/p)) size message per vertex"): each
// round, every unsaturated vertex samples ~n^(1/p) of its surviving
// incident edges and ships them to a coordinator (player 0), which
// extends a greedy maximal matching and broadcasts newly saturated
// vertices. Lemma 19/20's filtering analysis gives O(p) rounds for
// maximal matching; weight classes (processed heaviest-first by the
// caller) lift it to the O(1)-approximation regime.

// MatchingResult reports the matched pairs and resource stats.
type MatchingResult struct {
	Pairs [][2]int32 // matched edges (one per multiplicity unit omitted)
	Mults []int
	Stats Stats
	// MaxSampleMsgWords is the largest sampling message a (non-
	// coordinator) vertex sent — the paper's O(n^(1/p)) quantity. The
	// coordinator's saturation broadcasts are accounted separately in
	// Stats.
	MaxSampleMsgWords int
}

// Protocol is the stepping form of the clique matching protocol: one
// Step per simulated clique round, so the engine's round-loop driver can
// own the loop (rounds budget, observer events, cancellation between
// rounds). MaximalMatchingClique wraps it for wholesale runs.
type Protocol struct {
	c          *Clique
	handler    Handler
	limit      int // clique-round cap (2 per matching round)
	steps      int
	halted     bool
	quiesced   bool // halted because every node stopped, not the cap
	pairs      [][2]int32
	mults      []int
	maxSample  []int
	selfSample []uint64 // coordinator keeps its own sample locally
	known      [][]int
	inc        [][]graph.Edge
	rngs       []*xrand.RNG
	budget     int
}

// NewProtocol prepares the protocol on g with message budget ~n^(1/p)
// edge words per vertex per round; maxRounds caps the matching rounds
// (0 = the Lemma 19/20 default of 4p+4, each matching round being two
// clique rounds: sample, then coordinate).
func NewProtocol(g *graph.Graph, p float64, seed uint64, maxRounds int) *Protocol {
	n := g.N()
	pr := &Protocol{c: NewClique(n)}
	pr.budget = int(math.Ceil(math.Pow(float64(n), 1/p)))
	if pr.budget < 2 {
		pr.budget = 2
	}
	if maxRounds == 0 {
		maxRounds = int(4*p) + 4
	}
	pr.limit = 2 * maxRounds
	// Per-node state (the handler closure captures the Protocol; the
	// simulator runs nodes in parallel but each node only touches its
	// own state and the coordinator's state is only touched by node 0).
	resid := make([]int, n)
	for v := range resid {
		resid[v] = g.B(v)
	}
	// Residual capacities as known by each node (synced by broadcast).
	pr.known = make([][]int, n)
	for v := range pr.known {
		pr.known[v] = append([]int(nil), resid...)
	}
	// Adjacency snapshot per node.
	pr.inc = make([][]graph.Edge, n)
	for _, e := range g.Edges() {
		pr.inc[e.U] = append(pr.inc[e.U], e)
		pr.inc[e.V] = append(pr.inc[e.V], e)
	}
	pr.rngs = make([]*xrand.RNG, n)
	for v := range pr.rngs {
		pr.rngs[v] = xrand.New(seed).Split(uint64(v))
	}
	pr.maxSample = make([]int, n)
	pr.handler = pr.node
	return pr
}

// node runs one node for one round — the Handler of the protocol.
func (pr *Protocol) node(node, round int, inbox []Message, send func(to int, payload []uint64)) bool {
	known := pr.known
	if round%2 == 0 {
		// Sampling round. First apply saturation updates broadcast by
		// the coordinator in the previous (odd) round.
		for _, msg := range inbox {
			if msg.From == 0 {
				for i := 0; i+1 < len(msg.Payload); i += 2 {
					known[node][int(msg.Payload[i])] = int(msg.Payload[i+1])
				}
			}
		}
		// Unsaturated vertices send up to `budget` surviving edges
		// to the coordinator.
		if known[node][node] <= 0 {
			return false
		}
		var alive []graph.Edge
		for _, e := range pr.inc[node] {
			if known[node][e.U] > 0 && known[node][e.V] > 0 {
				alive = append(alive, e)
			}
		}
		if len(alive) == 0 {
			return false
		}
		r := pr.rngs[node]
		var payload []uint64
		if len(alive) <= pr.budget {
			for _, e := range alive {
				payload = append(payload, graph.KeyOf(e.U, e.V))
			}
		} else {
			perm := r.Perm(len(alive))[:pr.budget]
			for _, pi := range perm {
				e := alive[pi]
				payload = append(payload, graph.KeyOf(e.U, e.V))
			}
		}
		if node == 0 {
			pr.selfSample = payload // a node may keep its own data
		} else {
			if len(payload) > pr.maxSample[node] {
				pr.maxSample[node] = len(payload)
			}
			send(0, payload)
		}
		return true
	}
	// Coordination round: node 0 extends the matching greedily and
	// broadcasts saturation updates.
	if node != 0 {
		return known[node][node] > 0
	}
	var updates []uint64
	work := inbox
	if len(pr.selfSample) > 0 {
		work = append([]Message{{From: 0, Payload: pr.selfSample}}, inbox...)
		pr.selfSample = nil
	}
	for _, msg := range work {
		for _, key := range msg.Payload {
			u, v := graph.UnKey(key)
			cu, cv := known[0][u], known[0][v]
			m := cu
			if cv < m {
				m = cv
			}
			if m > 0 {
				known[0][u] -= m
				known[0][v] -= m
				pr.pairs = append(pr.pairs, [2]int32{u, v})
				pr.mults = append(pr.mults, m)
				updates = append(updates, uint64(u), uint64(known[0][u]), uint64(v), uint64(known[0][v]))
			}
		}
	}
	if len(updates) > 0 {
		for to := 1; to < pr.c.N; to++ {
			send(to, updates)
		}
	}
	return true
}

// Step executes the next simulated clique round and reports whether the
// protocol is done (every node halted, or the round cap reached).
func (pr *Protocol) Step() (done bool) {
	if pr.halted || pr.steps >= pr.limit {
		pr.halted = true
		return true
	}
	alive := pr.c.Step(pr.handler)
	pr.steps++
	if !alive {
		pr.quiesced = true
	}
	if !alive || pr.steps >= pr.limit {
		pr.halted = true
	}
	return pr.halted
}

// Quiesced reports whether the protocol ended because every node halted
// — as opposed to hitting the round cap with nodes still alive. The
// engine adapter maps this to "converged before the round cap".
func (pr *Protocol) Quiesced() bool { return pr.quiesced }

// Result reports the matched pairs and the resource statistics
// accumulated so far. It is valid mid-protocol: the pairs matched so
// far are a feasible (partial) b-matching, which is what the engine's
// best-so-far budget semantics hand back on a trip.
func (pr *Protocol) Result() MatchingResult {
	maxS := 0
	for _, v := range pr.maxSample {
		if v > maxS {
			maxS = v
		}
	}
	return MatchingResult{Pairs: pr.pairs, Mults: pr.mults, Stats: pr.c.Stats(), MaxSampleMsgWords: maxS}
}

// MaximalMatchingClique runs the protocol on g to completion with
// message budget ~n^(1/p) edge words per vertex per round.
func MaximalMatchingClique(g *graph.Graph, p float64, seed uint64, maxRounds int) MatchingResult {
	pr := NewProtocol(g, p, seed, maxRounds)
	for !pr.Step() {
	}
	return pr.Result()
}
