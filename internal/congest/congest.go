// Package congest simulates the Congested Clique model: n players, one
// per vertex, proceeding in synchronous rounds; in each round every
// player may send a bounded message to every other player. The simulator
// measures rounds and the maximum message size (in 64-bit words) any
// player sends in a round — the quantities behind the paper's claim that
// its sketches give (1-ε)-approximate weighted b-matching in O(p/ε)
// rounds with O(n^(1/p))-size messages per vertex.
package congest

import (
	"sort"
	"sync"
)

// Message is a payload delivered at the start of the next round.
type Message struct {
	From    int
	Payload []uint64
}

// Handler runs one node for one round: it receives the node id, round
// number and inbox, and sends messages via send. Returning false halts
// the protocol after this round (the protocol stops when every node
// returns false).
type Handler func(node, round int, inbox []Message, send func(to int, payload []uint64)) bool

// Stats reports resource usage.
type Stats struct {
	Rounds          int
	MaxMessageWords int   // largest single message
	MaxNodeOutWords []int // per round: max total words sent by one node
	TotalWords      int
}

// Clique is the simulator. It holds the pending inboxes between rounds,
// so a protocol can be run wholesale (Run) or stepped one synchronous
// round at a time (Step) — the engine's round-loop driver uses the
// latter, so one simulated clique round is one driver round.
type Clique struct {
	N       int
	stats   Stats
	inboxes [][]Message
}

// NewClique creates a clique simulator over n nodes.
func NewClique(n int) *Clique { return &Clique{N: n, inboxes: make([][]Message, n)} }

// Stats returns the accumulated statistics.
func (c *Clique) Stats() Stats { return c.stats }

// Step executes one synchronous round, running the nodes in parallel,
// and reports whether any node is still alive. Message delivery is
// deterministic: inboxes are sorted by sender.
func (c *Clique) Step(handler Handler) bool {
	round := c.stats.Rounds
	c.stats.Rounds++
	next := make([][]Message, c.N)
	outWords := make([]int, c.N)
	var mu sync.Mutex
	var wg sync.WaitGroup
	anyAlive := false
	aliveMu := sync.Mutex{}
	for v := 0; v < c.N; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			alive := handler(v, round, c.inboxes[v], func(to int, payload []uint64) {
				if to < 0 || to >= c.N || to == v {
					return
				}
				cp := append([]uint64(nil), payload...)
				mu.Lock()
				next[to] = append(next[to], Message{From: v, Payload: cp})
				outWords[v] += len(cp)
				if len(cp) > c.stats.MaxMessageWords {
					c.stats.MaxMessageWords = len(cp)
				}
				c.stats.TotalWords += len(cp)
				mu.Unlock()
			})
			if alive {
				aliveMu.Lock()
				anyAlive = true
				aliveMu.Unlock()
			}
		}(v)
	}
	wg.Wait()
	maxOut := 0
	for _, w := range outWords {
		if w > maxOut {
			maxOut = w
		}
	}
	c.stats.MaxNodeOutWords = append(c.stats.MaxNodeOutWords, maxOut)
	for v := range next {
		sort.Slice(next[v], func(i, j int) bool { return next[v][i].From < next[v][j].From })
	}
	c.inboxes = next
	return anyAlive
}

// Run executes the protocol for at most maxRounds rounds, stopping early
// once every node has halted.
func (c *Clique) Run(maxRounds int, handler Handler) {
	for round := 0; round < maxRounds; round++ {
		if !c.Step(handler) {
			return
		}
	}
}
