package congest

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/stream"
)

func TestCliquePingPong(t *testing.T) {
	c := NewClique(2)
	var got []uint64
	c.Run(4, func(node, round int, inbox []Message, send func(int, []uint64)) bool {
		if node == 0 && round == 0 {
			send(1, []uint64{42, 43})
			return true
		}
		if node == 1 && round == 1 {
			for _, m := range inbox {
				got = append(got, m.Payload...)
			}
			send(0, []uint64{44})
			return true
		}
		return round < 2
	})
	if len(got) != 2 || got[0] != 42 {
		t.Fatalf("payload lost: %v", got)
	}
	st := c.Stats()
	if st.MaxMessageWords != 2 || st.TotalWords != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCliqueHaltsWhenAllDone(t *testing.T) {
	c := NewClique(3)
	c.Run(100, func(node, round int, _ []Message, _ func(int, []uint64)) bool {
		return round < 2
	})
	if c.Stats().Rounds > 4 {
		t.Fatalf("did not halt: %d rounds", c.Stats().Rounds)
	}
}

func TestCliqueNoSelfOrOutOfRangeSend(t *testing.T) {
	c := NewClique(2)
	var delivered int64 // nodes run concurrently: count atomically
	c.Run(2, func(node, round int, inbox []Message, send func(int, []uint64)) bool {
		if round == 0 {
			send(node, []uint64{1})   // self: dropped
			send(99, []uint64{1})     // out of range: dropped
			send(1-node, []uint64{1}) // valid
			return true
		}
		atomic.AddInt64(&delivered, int64(len(inbox)))
		return false
	})
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2", delivered)
	}
}

func TestCliqueMatchingMaximal(t *testing.T) {
	g := graph.GNM(60, 500, graph.WeightConfig{}, 37)
	res := MaximalMatchingClique(g, 2, 41, 0)
	// Convert to a Matching over g for validation.
	bestIdx := map[uint64]int{}
	for i, e := range g.Edges() {
		bestIdx[e.Key()] = i
	}
	m := &matching.Matching{Mult: []int{}}
	for i, pr := range res.Pairs {
		m.EdgeIdx = append(m.EdgeIdx, bestIdx[graph.KeyOf(pr[0], pr[1])])
		m.Mult = append(m.Mult, res.Mults[i])
	}
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !m.IsMaximal(g) {
		t.Fatal("clique matching not maximal")
	}
}

func TestCliqueMessageBudget(t *testing.T) {
	g := graph.GNM(100, 3000, graph.WeightConfig{}, 43)
	p := 2.0
	res := MaximalMatchingClique(g, p, 47, 0)
	budget := int(math.Ceil(math.Pow(float64(g.N()), 1/p)))
	if res.MaxSampleMsgWords > budget {
		t.Fatalf("sample message %d exceeds budget %d", res.MaxSampleMsgWords, budget)
	}
}

func TestCliqueMatchesFilteringQuality(t *testing.T) {
	// The clique protocol is the distributed twin of the filtering
	// algorithm; both produce maximal matchings, so sizes are within 2x
	// of each other (both within 2x of maximum).
	g := graph.GNM(80, 1200, graph.WeightConfig{}, 53)
	res := MaximalMatchingClique(g, 2, 59, 0)
	s := stream.NewEdgeStream(g)
	fm, _ := matching.MaximalMatchingFilter(s, 2, 61, nil)
	cliqueSize := len(res.Pairs)
	if cliqueSize*2 < fm.Size() || fm.Size()*2 < cliqueSize {
		t.Fatalf("sizes diverge: clique %d filter %d", cliqueSize, fm.Size())
	}
}

func TestCliqueBMatching(t *testing.T) {
	g := graph.GNM(40, 300, graph.WeightConfig{}, 67)
	graph.WithRandomB(g, 3, false, 71)
	res := MaximalMatchingClique(g, 2, 73, 0)
	bestIdx := map[uint64]int{}
	for i, e := range g.Edges() {
		bestIdx[e.Key()] = i
	}
	m := &matching.Matching{Mult: []int{}}
	for i, pr := range res.Pairs {
		m.EdgeIdx = append(m.EdgeIdx, bestIdx[graph.KeyOf(pr[0], pr[1])])
		m.Mult = append(m.Mult, res.Mults[i])
	}
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !m.IsMaximal(g) {
		t.Fatal("clique b-matching not maximal")
	}
}
