package cover

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// identityOracle: covering system I·x >= 1 over P = {x >= 0, Σx <= beta}.
// The Dantzig-Wolfe oracle puts all mass on the largest multiplier.
func identityOracle(m int, beta, eps float64) Oracle {
	return func(u []float64, _ int) ([]float64, bool) {
		best, sum := 0, 0.0
		for l := range u {
			sum += u[l]
			if u[l] > u[best] {
				best = l
			}
		}
		if beta*u[best] < (1-eps/2)*sum {
			return nil, false
		}
		a := make([]float64, m)
		a[best] = beta
		return a, true
	}
}

func TestCoverIdentityFeasible(t *testing.T) {
	const m = 8
	eps := 0.1
	beta := float64(m) * 1.3 // comfortably feasible
	init := make([]float64, m)
	for l := range init {
		init[l] = 0.05 // x0 = (beta/m)*scaled-down start
	}
	res, err := Solve(init, identityOracle(m, beta, eps), Options{Eps: eps, Rho: beta})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Solved {
		t.Fatalf("status %v (lambda %f after %d iters)", res.Status, res.Lambda, res.Iters)
	}
	if res.Lambda < 1-3*eps {
		t.Fatalf("lambda %f below target", res.Lambda)
	}
}

func TestCoverIdentityInfeasible(t *testing.T) {
	const m = 8
	eps := 0.1
	beta := float64(m) / 2 // infeasible: cannot cover all rows
	init := make([]float64, m)
	for l := range init {
		init[l] = 0.05
	}
	res, err := Solve(init, identityOracle(m, beta, eps), Options{Eps: eps, Rho: beta})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != OracleInfeasible {
		t.Fatalf("status %v, want oracle-infeasible", res.Status)
	}
}

func TestCoverValidatesInput(t *testing.T) {
	if _, err := Solve([]float64{1}, nil, Options{Eps: 0, Rho: 1}); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := Solve([]float64{1}, nil, Options{Eps: 0.1, Rho: 0}); err == nil {
		t.Fatal("rho=0 accepted")
	}
	if _, err := Solve([]float64{0}, nil, Options{Eps: 0.1, Rho: 1}); err == nil {
		t.Fatal("zero initial row accepted")
	}
}

func TestCoverEmptySystem(t *testing.T) {
	res, err := Solve(nil, nil, Options{Eps: 0.1, Rho: 1})
	if err != nil || res.Status != Solved {
		t.Fatalf("empty system: %v %v", res.Status, err)
	}
}

func TestCoverIterLimit(t *testing.T) {
	// An oracle that never improves anything hits the cap.
	m := 4
	stuck := func(u []float64, _ int) ([]float64, bool) {
		a := make([]float64, m)
		for l := range a {
			a[l] = 0.5 // never lifts rows above 0.5
		}
		return a, true
	}
	init := []float64{0.5, 0.5, 0.5, 0.5}
	res, err := Solve(init, stuck, Options{Eps: 0.1, Rho: 2, MaxIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != IterLimit {
		t.Fatalf("status %v, want iter-limit", res.Status)
	}
	if res.Iters != 50 {
		t.Fatalf("iters %d", res.Iters)
	}
}

func TestCoverMultipliersFavorLowRows(t *testing.T) {
	// Capture the u passed to the oracle: the lowest row must get the
	// largest multiplier.
	var captured []float64
	orc := func(u []float64, _ int) ([]float64, bool) {
		if captured == nil {
			captured = append([]float64(nil), u...)
		}
		return []float64{2, 2, 2}, true
	}
	init := []float64{0.2, 0.5, 0.9}
	if _, err := Solve(init, orc, Options{Eps: 0.1, Rho: 2}); err != nil {
		t.Fatal(err)
	}
	if captured[0] <= captured[1] || captured[1] <= captured[2] {
		t.Fatalf("multipliers not decreasing with row value: %v", captured)
	}
	if math.Abs(captured[0]-1) > 1e-12 {
		t.Fatalf("max multiplier should be rescaled to 1, got %v", captured[0])
	}
}

func TestCoverRandomFeasibleSystems(t *testing.T) {
	// Random covering systems Ax >= 1 with A ∈ [0.5, 1.5]^{m×n} over the
	// scaled simplex; large enough beta makes them feasible.
	for seed := uint64(0); seed < 10; seed++ {
		r := xrand.New(seed)
		m, n := 5+int(seed%4), 4
		A := make([][]float64, m)
		for i := range A {
			A[i] = make([]float64, n)
			for j := range A[i] {
				A[i][j] = 0.5 + r.Float64()
			}
		}
		beta := 3.0
		orc := func(u []float64, _ int) ([]float64, bool) {
			// max_j Σ_l u_l A[l][j] * beta (mass on best column)
			bestJ, bestV := 0, -1.0
			for j := 0; j < n; j++ {
				v := 0.0
				for l := 0; l < m; l++ {
					v += u[l] * A[l][j]
				}
				if v > bestV {
					bestJ, bestV = j, v
				}
			}
			sum := 0.0
			for _, uv := range u {
				sum += uv
			}
			if beta*bestV < (1-0.05)*sum {
				return nil, false
			}
			a := make([]float64, m)
			for l := 0; l < m; l++ {
				a[l] = beta * A[l][bestJ]
			}
			return a, true
		}
		init := make([]float64, m)
		for l := range init {
			init[l] = 0.1
		}
		res, err := Solve(init, orc, Options{Eps: 0.1, Rho: 1.5 * beta})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Solved {
			t.Fatalf("seed %d: status %v lambda %f", seed, res.Status, res.Lambda)
		}
	}
}

func TestCheckOracleInequality(t *testing.T) {
	u := []float64{1, 1}
	if !CheckOracleInequality(u, []float64{1, 1}, 0.1) {
		t.Fatal("exact cover rejected")
	}
	if CheckOracleInequality(u, []float64{0.1, 0.1}, 0.1) {
		t.Fatal("bad cover accepted")
	}
}
