// Package cover implements the fractional covering framework of Plotkin,
// Shmoys and Tardos as restated in Theorem 5 of the paper, with the
// Corollary 6 relaxation that the oracle may return any x̃ ∈ P with
// uᵀAx̃ >= (1-ε/2)·uᵀc (or report that none exists, certifying
// infeasibility of the covering system for the current multipliers).
//
// The solver is generic over the constraint system: it operates on
// *normalized row values* r_ℓ = (Ax)_ℓ / c_ℓ and multiplier vectors
// u_ℓ ∝ exp(-α r_ℓ), leaving the representation of x entirely to the
// oracle (which is what lets the dual-primal core average sparse oracle
// answers without materializing the exponentially many odd-set duals).
package cover

import (
	"errors"
	"math"
)

// Status reports how a Solve run ended.
type Status int

const (
	// Solved: the row values reached λ >= 1-3ε.
	Solved Status = iota
	// OracleInfeasible: the oracle certified that no x ∈ P satisfies
	// uᵀAx >= (1-ε/2)uᵀc, proving {Ax >= c, x ∈ P} infeasible.
	OracleInfeasible
	// IterLimit: the safety iteration cap was reached.
	IterLimit
)

// String renders the status for logs and errors.
func (s Status) String() string {
	switch s {
	case Solved:
		return "solved"
	case OracleInfeasible:
		return "oracle-infeasible"
	case IterLimit:
		return "iteration-limit"
	default:
		return "unknown"
	}
}

// Oracle receives the multipliers u (one per row, already normalized by
// c) and the step index. It must either return the normalized row values
// a_ℓ = (Ax̃)_ℓ/c_ℓ of a solution x̃ ∈ P satisfying
// Σ u_ℓ a_ℓ >= (1-ε/2) Σ u_ℓ, or ok=false certifying none exists. The
// oracle owns the representation of x̃; the framework only averages row
// values.
type Oracle func(u []float64, step int) (rowValues []float64, ok bool)

// Options configures the solver.
type Options struct {
	// Eps is the paper's ε (accuracy). Required, in (0, 1/3].
	Eps float64
	// Rho is the width: an upper bound on (Ax)_ℓ/c_ℓ over x ∈ P.
	Rho float64
	// MaxIters caps oracle calls (safety). 0 = derive from the theorem
	// bound T = O(ρ(ε⁻² + log(1/(1-ε₀))) log M).
	MaxIters int
	// OnPhase, if non-nil, is called at each phase boundary with the
	// current λ (instrumentation for experiment E4).
	OnPhase func(iter int, lambda float64)
}

// Result carries the outcome.
type Result struct {
	Rows   []float64 // final normalized row values
	Lambda float64   // min row value
	Iters  int       // oracle invocations that returned a solution
	Status Status
}

// Solve runs the covering framework from the initial normalized row
// values (the theorem's Ax0 >= (1-ε0)c: all entries must be positive).
// The weights w returned to the oracle satisfy w_ℓ ∝ exp(-α r_ℓ),
// rescaled so max w_ℓ = 1 for numerical stability (only the direction of
// u matters to the oracle inequality).
func Solve(initRows []float64, oracle Oracle, opt Options) (Result, error) {
	m := len(initRows)
	if m == 0 {
		return Result{Status: Solved, Lambda: math.Inf(1)}, nil
	}
	if !(opt.Eps > 0) || opt.Eps > 1.0/3 {
		return Result{}, errors.New("cover: Eps must be in (0, 1/3]")
	}
	if !(opt.Rho > 0) {
		return Result{}, errors.New("cover: Rho must be positive")
	}
	rows := append([]float64(nil), initRows...)
	lambda := minOf(rows)
	if lambda <= 0 {
		return Result{}, errors.New("cover: initial solution must have all row values positive")
	}
	eps := opt.Eps
	target := 1 - 3*eps
	maxIters := opt.MaxIters
	if maxIters == 0 {
		// Theorem 5's T = O(ρ(ε⁻² + log(1/(1-ε0))) log(M/ε)); the hidden
		// constant is ~64 (each oracle call advances one row by σ·ρ).
		t := opt.Rho * (1/(eps*eps) + math.Log(1/lambda)/eps) * math.Log(float64(m)/eps)
		maxIters = int(64*t) + 64
	}
	u := make([]float64, m)
	iters := 0
	for lambda < target {
		// Phase: fixed α for the current λ_t.
		lambdaT := lambda
		alpha := 2 * math.Log(float64(m)/eps) / (lambdaT * eps)
		sigma := eps / (4 * alpha * opt.Rho)
		if opt.OnPhase != nil {
			opt.OnPhase(iters, lambda)
		}
		phaseEnd := 2 * lambdaT
		if phaseEnd > target {
			phaseEnd = target
		}
		for lambda < phaseEnd {
			if iters >= maxIters {
				return Result{Rows: rows, Lambda: lambda, Iters: iters, Status: IterLimit}, nil
			}
			// Multipliers, rescaled so max is 1 (shift by min row).
			minR := minOf(rows)
			for l := range u {
				u[l] = math.Exp(-alpha * (rows[l] - minR))
			}
			a, ok := oracle(u, iters)
			if !ok {
				return Result{Rows: rows, Lambda: lambda, Iters: iters, Status: OracleInfeasible}, nil
			}
			if len(a) != m {
				return Result{}, errors.New("cover: oracle returned wrong row count")
			}
			for l := range rows {
				rows[l] = (1-sigma)*rows[l] + sigma*a[l]
			}
			lambda = minOf(rows)
			iters++
		}
	}
	if opt.OnPhase != nil {
		opt.OnPhase(iters, lambda)
	}
	return Result{Rows: rows, Lambda: lambda, Iters: iters, Status: Solved}, nil
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// CheckOracleInequality is a test helper verifying Corollary 6's oracle
// contract on returned row values.
func CheckOracleInequality(u, rowValues []float64, eps float64) bool {
	lhs, rhs := 0.0, 0.0
	for l := range u {
		lhs += u[l] * rowValues[l]
		rhs += u[l]
	}
	return lhs >= (1-eps/2)*rhs-1e-12
}
