package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/levels"
)

func testScheme(t *testing.T) *levels.Scheme {
	t.Helper()
	s, err := levels.NewScheme(0.25, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDualStateXBasics(t *testing.T) {
	sc := testScheme(t)
	st := newDualState(sc, 4, 0)
	st.SetInit([]xEntry{{v: 0, k: 1, val: 2.5}, {v: 0, k: 3, val: 1.0}})
	if got := st.XI(0, 1); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("XI = %f", got)
	}
	if got := st.XMax(0); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("XMax = %f", got)
	}
	if st.XI(1, 1) != 0 {
		t.Fatal("untouched vertex has mass")
	}
}

func TestDualStateZLookup(t *testing.T) {
	sc := testScheme(t)
	st := newDualState(sc, 6, 0)
	ans := &oracleAnswer{zEntries: []zEntry{
		{members: []int32{0, 1, 2}, level: 2, val: 3},
		{members: []int32{1, 3, 4}, level: 0, val: 5},
	}}
	st.Average(0.5, ans) // scale 0.5, values halved into state
	// Edge (0,1) at level >= 2 sees the first set.
	if got := st.ZAt(0, 1, 2); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("ZAt(0,1,2) = %f", got)
	}
	// Below the set's level it does not apply.
	if got := st.ZAt(0, 1, 1); got != 0 {
		t.Fatalf("ZAt(0,1,1) = %f", got)
	}
	// Edge (1,3) sees the second set from level 0 up.
	if got := st.ZAt(1, 3, 0); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("ZAt(1,3,0) = %f", got)
	}
	// Vertex 1 at level 2 sees both.
	if got := st.ZVertexAt(1, 2); math.Abs(got-4) > 1e-12 {
		t.Fatalf("ZVertexAt = %f", got)
	}
	// Non-member pair sees nothing.
	if got := st.ZAt(0, 5, 3); got != 0 {
		t.Fatalf("ZAt(0,5) = %f", got)
	}
}

func TestDualStateAveragePreservesScaleSemantics(t *testing.T) {
	sc := testScheme(t)
	st := newDualState(sc, 3, 0)
	st.SetInit([]xEntry{{v: 0, k: 0, val: 1}})
	// Average with sigma = 0.25 and an answer of 2 at the same slot:
	// new value = 0.75*1 + 0.25*2 = 1.25.
	st.Average(0.25, &oracleAnswer{xEntries: []xEntry{{v: 0, k: 0, val: 2}}})
	if got := st.XI(0, 0); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("averaged XI = %f", got)
	}
	// A slot untouched by the answer decays by (1-sigma).
	st2 := newDualState(sc, 3, 0)
	st2.SetInit([]xEntry{{v: 1, k: 2, val: 4}})
	st2.Average(0.5, &oracleAnswer{})
	if got := st2.XI(1, 2); math.Abs(got-2) > 1e-12 {
		t.Fatalf("decayed XI = %f", got)
	}
}

func TestDualStateRescaleStability(t *testing.T) {
	sc := testScheme(t)
	st := newDualState(sc, 2, 0)
	st.SetInit([]xEntry{{v: 0, k: 0, val: 1}})
	// Thousands of small decays must not underflow.
	for i := 0; i < 500000; i++ {
		st.Average(0.01, &oracleAnswer{})
	}
	if got := st.XI(0, 0); got < 0 || math.IsNaN(got) {
		t.Fatalf("XI corrupted: %v", got)
	}
}

func TestDualStateObjective(t *testing.T) {
	sc := testScheme(t)
	st := newDualState(sc, 4, 0)
	st.SetInit([]xEntry{{v: 0, k: 0, val: 2}, {v: 1, k: 1, val: 3}})
	st.Average(0.5, &oracleAnswer{zEntries: []zEntry{{members: []int32{0, 1, 2}, level: 0, val: 4}}})
	b := func(v int) int { return 1 }
	// After averaging: x0=1, x1=1.5, z=2 on a set of norm 3 (floor 1).
	want := 1.0 + 1.5 + 2.0
	if got := st.Objective(b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("objective %f, want %f", got, want)
	}
}

func TestDualStateCoverage(t *testing.T) {
	sc := testScheme(t)
	st := newDualState(sc, 3, 0)
	st.SetInit([]xEntry{{v: 0, k: 1, val: 1}, {v: 1, k: 1, val: 0.5}})
	st.Average(0.5, &oracleAnswer{zEntries: []zEntry{{members: []int32{0, 1, 2}, level: 1, val: 1}}})
	// coverage(0,1,1) = 0.5 + 0.25 + 0.5 = 1.25
	if got := st.Coverage(0, 1, 1); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("coverage %f", got)
	}
	ratio := st.CoverageRatio(0, 1, 1)
	if math.Abs(ratio-1.25/sc.WHat(1)) > 1e-12 {
		t.Fatalf("ratio %f", ratio)
	}
}

func TestDualStateLambda(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 8)
	g.MustAddEdge(1, 2, 16)
	sc, err := levels.ForGraph(g, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	st := newDualState(sc, 3, 0)
	// Cover both edges at their levels to a known ratio.
	k1, _ := sc.Level(8)
	k2, _ := sc.Level(16)
	st.SetInit([]xEntry{
		{v: 0, k: k1, val: 0.3 * sc.WHat(k1)},
		{v: 2, k: k2, val: 0.8 * sc.WHat(k2)},
	})
	lam := st.Lambda(g)
	if math.Abs(lam-0.3) > 1e-9 {
		t.Fatalf("lambda %f, want 0.3", lam)
	}
}

func TestDualStatePrune(t *testing.T) {
	sc := testScheme(t)
	st := newDualState(sc, 40, 1e-6)
	// One large set and many tiny ones; pruning should drop the tiny.
	big := &oracleAnswer{zEntries: []zEntry{{members: []int32{0, 1, 2}, level: 0, val: 1000}}}
	st.Average(0.5, big)
	for i := 0; i < 200; i++ {
		tiny := &oracleAnswer{zEntries: []zEntry{{members: []int32{3, 4, 5}, level: 0, val: 1e-12}}}
		st.Average(1e-6, tiny)
	}
	if len(st.zsets) > 170 {
		t.Fatalf("prune did not trigger: %d sets", len(st.zsets))
	}
	if st.ZAt(0, 1, 0) == 0 {
		t.Fatal("prune dropped the large set")
	}
}
