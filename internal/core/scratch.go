package core

import (
	"slices"

	"repro/internal/oddset"
)

// oracleScratch owns the retained working buffers of the sequential
// refine-and-use loop: the P_o row machinery of runMiniOracle, the
// per-call maps and odd-set instance buffers of runMicroOracle, and the
// answer containers the packing framework averages. One scratch belongs
// to one solver and the oracle loop is sequential, so nothing locks.
//
// The aliasing rules that keep reuse sound:
//
//   - Pools with lent tracking (row-value vectors, answer containers)
//     are reclaimed at the START of each runMiniOracle call. Everything
//     handed out during the previous call is dead by then — the final
//     answer is consumed by dualState.Average before the next use, and
//     pack.Solve copies its initial rows instead of retaining them.
//   - Maps and append-buffers without lent tracking are cleared at the
//     start of the call that owns them (zeta per packing-oracle
//     invocation, the odd-set buffers per MicroOracle call).
//   - Anything that lands in long-lived state is NEVER pooled: odd-set
//     member lists (retained by dualState.addZSet) stay freshly
//     allocated in sortedMembers, as do the LP7 witness fields.
//
// A nil scratch is legal everywhere and means "allocate fresh", which
// is also how the tests drive the oracles directly.
type oracleScratch struct {
	// MiniOracle row machinery, rebuilt per call.
	rowIndex   map[rowKey]int
	rows       []rowKey
	vertexRows map[int32][]int
	rowSpare   [][]int // retired vertexRows value slices
	zeta       map[rowKey]float64

	// refineBatch buffers: per-level support rows (each written only by
	// the worker that owns its index, so the parallel fan-out stays
	// race-free) and their level-order concatenation. The concatenated
	// support is consumed by the runMiniOracle call that follows and is
	// dead by the next refineBatch.
	perLevel [][]supportEdge
	support  []supportEdge

	f64s  lentPool[float64] // row-value vectors (rv, crv, uniform)
	xents lentPool[xEntry]  // answer containers; entries are value copies
	zents lentPool[zEntry]  // (zEntry member pointers stay fresh)

	// answerAccum backing: one accumulator and one final answer live per
	// MiniOracle call, so these are plain fields, not pools — growth
	// across the packing iterations is retained.
	accX, finX, combX []xEntry
	accZ, finZ, combZ []zEntry

	// MicroOracle per-call state.
	s           map[rowKey]float64
	levelsInUse map[int]bool
	zetaKeys    []rowKey // both key buffers are alive at once, hence two
	sKeys       []rowKey
	pos         map[int32][]posEntry
	posSpare    [][]posEntry
	posVerts    []int32
	kstar       map[int32]int
	zetaBarSums map[rowKey]float64
	activeDesc  []int
	qhat        []float64      // oddset.Instance charge vector, len nV
	bnorm       []int          // oddset.Instance norms, len nV
	qedges      []oddset.QEdge // oddset.Instance edge list
}

func newOracleScratch() *oracleScratch {
	return &oracleScratch{
		rowIndex:    make(map[rowKey]int),
		vertexRows:  make(map[int32][]int),
		zeta:        make(map[rowKey]float64),
		s:           make(map[rowKey]float64),
		levelsInUse: make(map[int]bool),
		pos:         make(map[int32][]posEntry),
		kstar:       make(map[int32]int),
		zetaBarSums: make(map[rowKey]float64),
	}
}

// beginMini resets the scratch for one runMiniOracle call: reclaim the
// lent pools (the previous call's buffers are all dead, see above) and
// clear the row machinery.
func (sc *oracleScratch) beginMini() {
	sc.f64s.reclaim()
	sc.xents.reclaim()
	sc.zents.reclaim()
	clear(sc.rowIndex)
	sc.rows = sc.rows[:0]
	//lint:ordered slice recycling into a spare pool; order never observed
	for v, l := range sc.vertexRows {
		sc.rowSpare = append(sc.rowSpare, l[:0])
		delete(sc.vertexRows, v)
	}
}

// rowList returns an empty []int for a vertexRows entry, recycling a
// retired one when available.
func (sc *oracleScratch) rowList() []int {
	if last := len(sc.rowSpare) - 1; last >= 0 {
		l := sc.rowSpare[last]
		sc.rowSpare = sc.rowSpare[:last]
		return l
	}
	return nil
}

// beginMicro resets the MicroOracle per-call state.
func (sc *oracleScratch) beginMicro() {
	clear(sc.s)
	clear(sc.levelsInUse)
	clear(sc.kstar)
	clear(sc.zetaBarSums)
	sc.posVerts = sc.posVerts[:0]
	sc.activeDesc = sc.activeDesc[:0]
	//lint:ordered slice recycling into a spare pool; order never observed
	for v, l := range sc.pos {
		sc.posSpare = append(sc.posSpare, l[:0])
		delete(sc.pos, v)
	}
}

// posList returns an empty []posEntry, recycling a retired one.
func (sc *oracleScratch) posList() []posEntry {
	if last := len(sc.posSpare) - 1; last >= 0 {
		l := sc.posSpare[last]
		sc.posSpare = sc.posSpare[:last]
		return l
	}
	return nil
}

// posEntry is one positive-deficit level of a vertex (d_{i,k} > 0).
type posEntry struct {
	k int
	d float64
}

// retainedWords approximates the scratch's pooled footprint in 64-bit
// words: slice-backed buffers at capacity, struct sizes rounded up to
// whole words. The map-backed scratch (row index, ζ, deficit tables) is
// excluded — Go maps do not expose their footprint — so this is a
// floor. Retained capacity, never part of any run's metered live space.
func (sc *oracleScratch) retainedWords() int {
	const (
		rowKeyW      = 2 // {int32, int}
		supportEdgeW = 4 // {int32, int32, int, float64, int}
		xEntryW      = 3 // {int32, int, float64}
		zEntryW      = 5 // {int, float64, []int32 header}
		posEntryW    = 2 // {int, float64}
		qEdgeW       = 2 // {int32, int32, float64}
	)
	w := rowKeyW * (cap(sc.rows) + cap(sc.zetaKeys) + cap(sc.sKeys))
	for _, l := range sc.rowSpare {
		w += cap(l)
	}
	w += supportEdgeW * cap(sc.support)
	for _, row := range sc.perLevel {
		w += supportEdgeW * cap(row)
	}
	w += sc.f64s.capWords(1)
	w += sc.xents.capWords(xEntryW)
	w += sc.zents.capWords(zEntryW)
	w += xEntryW * (cap(sc.accX) + cap(sc.finX) + cap(sc.combX))
	w += zEntryW * (cap(sc.accZ) + cap(sc.finZ) + cap(sc.combZ))
	for _, l := range sc.posSpare {
		w += posEntryW * cap(l)
	}
	w += (cap(sc.posVerts) + 1) / 2
	w += cap(sc.activeDesc) + cap(sc.qhat) + cap(sc.bnorm)
	w += qEdgeW * cap(sc.qedges)
	return w
}

// lentPool is a typed free-list with wholesale reclaim — the engine
// arena's bufPool pattern scoped to the oracle loop, where buffers turn
// over per call rather than per run. get pops the most recently freed
// buffer when it fits (within one MiniOracle call nearly every request
// has the same length, so the last-freed buffer almost always fits and
// the best-fit scan never runs), zeroes it to the requested length, and
// records it as lent; getEmpty returns a zero-length buffer for
// append-style use.
type lentPool[T any] struct {
	free [][]T
	lent [][]T
}

func (p *lentPool[T]) get(n int) []T {
	var buf []T
	if last := len(p.free) - 1; last >= 0 && cap(p.free[last]) >= n {
		buf = p.free[last][:n]
		p.free = p.free[:last]
		clear(buf)
	} else {
		best := -1
		for i, b := range p.free {
			if cap(b) >= n && (best < 0 || cap(b) < cap(p.free[best])) {
				best = i
			}
		}
		if best >= 0 {
			last := len(p.free) - 1
			buf = p.free[best][:n]
			p.free[best] = p.free[last]
			p.free = p.free[:last]
			clear(buf)
		} else {
			buf = make([]T, n)
		}
	}
	p.lent = append(p.lent, buf)
	return buf
}

func (p *lentPool[T]) getEmpty() []T {
	return p.get(0)[:0]
}

// retain replaces the most recently lent header with buf, so append
// growth past the pooled capacity is kept at reclaim. Must follow the
// get that produced buf's original backing with no interleaving get on
// the same pool.
func (p *lentPool[T]) retain(buf []T) {
	if last := len(p.lent) - 1; last >= 0 {
		p.lent[last] = buf
	}
}

func (p *lentPool[T]) reclaim() {
	p.free = append(p.free, p.lent...)
	p.lent = p.lent[:0]
}

// capWords sums both lists' capacity at wordsPerElem words per element.
func (p *lentPool[T]) capWords(wordsPerElem int) int {
	n := 0
	for _, b := range p.free {
		n += cap(b)
	}
	for _, b := range p.lent {
		n += cap(b)
	}
	return wordsPerElem * n
}

// sortedRowKeysInto is sortedRowKeys appending into a caller-retained
// buffer: the canonical (v, k) accumulation order without the per-call
// key-slice allocation and without sort.Slice's reflection-based
// swapper. Map keys are distinct, so any correct sort produces the same
// permutation — bit-identical to the sort.Slice path.
func sortedRowKeysInto(buf []rowKey, m map[rowKey]float64) []rowKey {
	keys := buf[:0]
	//lint:ordered key collection, sorted immediately below
	for rk := range m {
		keys = append(keys, rk)
	}
	slices.SortFunc(keys, func(a, b rowKey) int {
		if a.v != b.v {
			if a.v < b.v {
				return -1
			}
			return 1
		}
		switch {
		case a.k < b.k:
			return -1
		case a.k > b.k:
			return 1
		}
		return 0
	})
	return keys
}
