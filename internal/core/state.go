package core

import (
	"math"
	"slices"
	"sort"

	"repro/internal/graph"
	"repro/internal/levels"
)

// dualState is the central Õ(n)-space dual solution the covering
// framework averages: per-vertex per-level costs x_i(k), their maxima
// x_i, and a list of odd-set duals z_{U,ℓ}. A global scale factor makes
// the covering update x ← (1-σ)x + σx̃ O(nnz(x̃)) instead of O(|state|).
type dualState struct {
	scheme *levels.Scheme
	n      int
	nl     int

	scale float64     // stored values × scale = actual values
	xflat []float64   // n×nl backing of xik
	xik   [][]float64 // [vertex][level] views into xflat
	zsets []zset

	vertexSets [][]int32        // per vertex: indices into zsets
	zIndex     map[uint64]int32 // (members, level) fingerprint -> zsets idx
	zPruneRel  float64
}

// zset is one odd-set dual z_{U,ℓ} (stored value; actual = val*scale).
type zset struct {
	members []int32 // sorted
	level   int
	val     float64
}

func newDualState(scheme *levels.Scheme, n int, zPruneRel float64) *dualState {
	nl := scheme.NumLevels()
	st := &dualState{
		scheme:     scheme,
		n:          n,
		nl:         nl,
		scale:      1,
		xflat:      make([]float64, n*nl),
		xik:        make([][]float64, n),
		vertexSets: make([][]int32, n),
		zIndex:     make(map[uint64]int32),
		zPruneRel:  zPruneRel,
	}
	for v := range st.xik {
		st.xik[v] = st.xflat[v*nl : (v+1)*nl : (v+1)*nl]
	}
	return st
}

// reuseOrNewState returns a state ready for a fresh run: the retained
// one zeroed in place when its (n, levels) shape matches the new
// scheme, a newly allocated one otherwise. A reused state is
// indistinguishable from a fresh one — every x value zeroed, z list
// empty, scale 1 — it merely keeps the n×nl backing table, the
// per-vertex index rows and the fingerprint map warm for the session's
// next run.
func reuseOrNewState(prev *dualState, scheme *levels.Scheme, n int, zPruneRel float64) *dualState {
	if prev == nil || prev.n != n || prev.nl != scheme.NumLevels() {
		return newDualState(scheme, n, zPruneRel)
	}
	prev.scheme = scheme
	prev.zPruneRel = zPruneRel
	prev.scale = 1
	clear(prev.xflat)
	for v := range prev.vertexSets {
		prev.vertexSets[v] = prev.vertexSets[v][:0]
	}
	prev.zsets = prev.zsets[:0]
	clear(prev.zIndex)
	return prev
}

// XI returns the actual x_i(k).
func (st *dualState) XI(i, k int) float64 { return st.xik[i][k] * st.scale }

// XMax returns x_i = max_k x_i(k).
func (st *dualState) XMax(i int) float64 {
	m := 0.0
	for _, v := range st.xik[i] {
		if v > m {
			m = v
		}
	}
	return m * st.scale
}

// ZAt returns Σ_{ℓ<=k} Σ_{U∋i,j} z_{U,ℓ} for the edge (i, j) at level k.
func (st *dualState) ZAt(i, j int32, k int) float64 {
	a, b := st.vertexSets[i], st.vertexSets[j]
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	// Iterate the shorter list; membership check in the set itself.
	if len(b) < len(a) {
		a = b
		b = st.vertexSets[i]
		i, j = j, i
	}
	t := 0.0
	for _, si := range a {
		zs := &st.zsets[si]
		if zs.level > k || zs.val == 0 {
			continue
		}
		if containsSorted(zs.members, j) {
			t += zs.val
		}
	}
	return t * st.scale
}

// ZVertexAt returns Σ_{ℓ<=k} Σ_{U∋i} z_{U,ℓ}.
func (st *dualState) ZVertexAt(i int32, k int) float64 {
	t := 0.0
	for _, si := range st.vertexSets[i] {
		zs := &st.zsets[si]
		if zs.level <= k {
			t += zs.val
		}
	}
	return t * st.scale
}

func containsSorted(xs []int32, v int32) bool {
	lo, hi := 0, len(xs)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch {
		case xs[mid] < v:
			lo = mid + 1
		case xs[mid] > v:
			hi = mid - 1
		default:
			return true
		}
	}
	return false
}

// Coverage returns (Ax)_e = x_i(k) + x_j(k) + Σ_{ℓ<=k} Σ_{U∋i,j} z_{U,ℓ}
// for an edge at level k (the covering row value before dividing by ŵ_k).
func (st *dualState) Coverage(i, j int32, k int) float64 {
	return st.XI(int(i), k) + st.XI(int(j), k) + st.ZAt(i, j, k)
}

// CoverageRatio returns (Ax)_e / ŵ_k — the normalized covering row.
func (st *dualState) CoverageRatio(i, j int32, k int) float64 {
	return st.Coverage(i, j, k) / st.scheme.WHat(k)
}

// Objective returns b·x + Σ floor(||U||_b/2)·z (the dual objective, in
// rescaled ŵ units). bOf supplies vertex capacities.
func (st *dualState) Objective(bOf func(v int) int) float64 {
	t := 0.0
	for v := 0; v < st.n; v++ {
		t += float64(bOf(v)) * st.XMax(v)
	}
	for _, zs := range st.zsets {
		if zs.val == 0 {
			continue
		}
		norm := 0
		for _, m := range zs.members {
			norm += bOf(int(m))
		}
		t += zs.val * st.scale * float64(norm/2)
	}
	return t
}

// oracleAnswer is a sparse x̃ from the MicroOracle: per-(vertex, level)
// x values and new odd-set duals. All values are actual (unscaled).
type oracleAnswer struct {
	xEntries []xEntry
	zEntries []zEntry
}

type xEntry struct {
	v   int32
	k   int
	val float64
}

type zEntry struct {
	members []int32 // sorted
	level   int
	val     float64
}

// isZero reports an all-zero answer.
func (a *oracleAnswer) isZero() bool { return len(a.xEntries) == 0 && len(a.zEntries) == 0 }

// BDotX returns b·x + Σ floor z contributions of the answer.
func (a *oracleAnswer) objective(bOf func(v int) int) float64 {
	t := 0.0
	// x_i contributes via max over k; conservative upper bound uses the
	// per-entry max per vertex.
	maxPerVertex := map[int32]float64{}
	for _, xe := range a.xEntries {
		if xe.val > maxPerVertex[xe.v] {
			maxPerVertex[xe.v] = xe.val
		}
	}
	// Accumulate in sorted vertex order: summing floats in map iteration
	// order would make the objective differ in the last bits run to run.
	vs := make([]int32, 0, len(maxPerVertex))
	//lint:ordered key collection, sorted immediately below
	for v := range maxPerVertex {
		vs = append(vs, v)
	}
	slices.Sort(vs)
	for _, v := range vs {
		t += float64(bOf(int(v))) * maxPerVertex[v]
	}
	for _, ze := range a.zEntries {
		norm := 0
		for _, m := range ze.members {
			norm += bOf(int(m))
		}
		t += ze.val * float64(norm/2)
	}
	return t
}

// Average applies the covering update x ← (1-σ)x + σ·x̃ using the scale
// trick: the global scale absorbs (1-σ); the answer is divided by the
// new scale on insertion.
func (st *dualState) Average(sigma float64, ans *oracleAnswer) {
	if sigma <= 0 {
		return
	}
	st.scale *= 1 - sigma
	if st.scale < 1e-280 {
		st.rescale()
	}
	inv := sigma / st.scale
	for _, xe := range ans.xEntries {
		st.xik[xe.v][xe.k] += xe.val * inv
	}
	for _, ze := range ans.zEntries {
		st.addZSet(ze.members, ze.level, ze.val*inv)
	}
	if st.zPruneRel > 0 && len(st.zsets) > 4*st.n {
		st.prune()
	}
}

// addZSet accumulates one odd-set dual (stored value, i.e. already
// divided by the current scale) into the deduplicated z list: identical
// (U, ℓ) duals accumulate into one set — this keeps the state size at
// the number of *distinct* priced odd sets rather than the number of
// oracle answers.
func (st *dualState) addZSet(members []int32, level int, val float64) {
	fp := zFingerprint(members, level)
	if idx, ok := st.zIndex[fp]; ok && sameSet(st.zsets[idx].members, members) && st.zsets[idx].level == level {
		st.zsets[idx].val += val
		return
	}
	idx := int32(len(st.zsets))
	st.zsets = append(st.zsets, zset{
		members: members,
		level:   level,
		val:     val,
	})
	st.zIndex[fp] = idx
	for _, m := range members {
		st.vertexSets[m] = append(st.vertexSets[m], idx)
	}
}

// zFingerprint hashes a sorted member list and level (FNV-1a).
func zFingerprint(members []int32, level int) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(level))
	for _, m := range members {
		mix(uint64(uint32(m)))
	}
	return h
}

func sameSet(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rescale folds the global scale back into the stored values.
func (st *dualState) rescale() {
	s := st.scale
	for v := range st.xik {
		for k := range st.xik[v] {
			st.xik[v][k] *= s
		}
	}
	for i := range st.zsets {
		st.zsets[i].val *= s
	}
	st.scale = 1
}

// prune drops z-sets whose value is negligible relative to the largest,
// rebuilding the vertex index.
func (st *dualState) prune() {
	maxV := 0.0
	for _, zs := range st.zsets {
		if zs.val > maxV {
			maxV = zs.val
		}
	}
	thresh := maxV * st.zPruneRel
	kept := st.zsets[:0]
	for _, zs := range st.zsets {
		if zs.val > thresh {
			kept = append(kept, zs)
		}
	}
	st.zsets = kept
	for v := range st.vertexSets {
		st.vertexSets[v] = st.vertexSets[v][:0]
	}
	st.zIndex = make(map[uint64]int32, len(st.zsets))
	for i, zs := range st.zsets {
		st.zIndex[zFingerprint(zs.members, zs.level)] = int32(i)
		for _, m := range zs.members {
			st.vertexSets[m] = append(st.vertexSets[m], int32(i))
		}
	}
}

// SetInit installs the Lemma 12/21 initial solution: x_i(k) = val for
// saturated (i, k) pairs. Must be called on a fresh state.
func (st *dualState) SetInit(entries []xEntry) {
	for _, xe := range entries {
		if xe.val/st.scale > st.xik[xe.v][xe.k] {
			st.xik[xe.v][xe.k] = xe.val / st.scale
		}
	}
}

// Lambda computes λ = min over the graph's kept edges of the normalized
// coverage (one full pass; in the paper's models this is one round of
// sketch evaluation, and the driver accounts it against the round that
// already reads the input).
func (st *dualState) Lambda(g *graph.Graph) float64 {
	lam := math.Inf(1)
	for _, e := range g.Edges() {
		k, ok := st.scheme.Level(e.W)
		if !ok {
			continue
		}
		if r := st.CoverageRatio(e.U, e.V, k); r < lam {
			lam = r
		}
	}
	return lam
}

// sortedMembers normalizes a member list.
func sortedMembers(ms []int32) []int32 {
	out := append([]int32(nil), ms...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
