package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Determinism pinning for the retained oracle scratch: everything the
// scratch recycles must leave results bit-identical to cold allocation,
// including across calls of different shapes (the dangerous path — a
// stale entry from a larger previous call leaking into a smaller one).

// TestSortedRowKeysIntoMatchesAllocating pins the scratch key-slice path
// against the allocating sortedRowKeys across reuses of one buffer on
// maps of varying size (shrinking included).
func TestSortedRowKeysIntoMatchesAllocating(t *testing.T) {
	rng := xrand.New(99)
	var buf []rowKey
	for trial, size := range []int{17, 120, 3, 64, 0, 9} {
		m := make(map[rowKey]float64, size)
		for len(m) < size {
			m[rowKey{int32(rng.Intn(40)), rng.Intn(6)}] = rng.Float64()
		}
		want := sortedRowKeys(m)
		buf = sortedRowKeysInto(buf, m)
		if len(buf) != len(want) {
			t.Fatalf("trial %d: got %d keys, want %d", trial, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("trial %d: key %d = %v, want %v", trial, i, buf[i], want[i])
			}
		}
	}
}

// answersEqual compares oracle answers entry-wise at the bit level
// (reused buffers differ from cold nil slices only in capacity, which
// reflect.DeepEqual would misreport as a difference for empty answers).
func answersEqual(a, b *oracleAnswer) bool {
	if len(a.xEntries) != len(b.xEntries) || len(a.zEntries) != len(b.zEntries) {
		return false
	}
	for i := range a.xEntries {
		x, y := a.xEntries[i], b.xEntries[i]
		if x.v != y.v || x.k != y.k || math.Float64bits(x.val) != math.Float64bits(y.val) {
			return false
		}
	}
	for i := range a.zEntries {
		x, y := a.zEntries[i], b.zEntries[i]
		if x.level != y.level || math.Float64bits(x.val) != math.Float64bits(y.val) ||
			len(x.members) != len(y.members) {
			return false
		}
		for j := range x.members {
			if x.members[j] != y.members[j] {
				return false
			}
		}
	}
	return true
}

// TestMicroOracleScratchReuseBitIdentical drives the micro oracle
// through heterogeneous inputs — different graphs, levels, and case
// branches — twice each: cold (fresh scratch) and through one shared
// scratch. Every pair must agree bit-for-bit.
func TestMicroOracleScratchReuseBitIdentical(t *testing.T) {
	sc := newOracleScratch()
	cases := []struct {
		g         *graph.Graph
		level     int
		rho, beta float64
	}{
		{graph.GNM(12, 40, graph.WeightConfig{Mode: graph.UnitWeights}, 5), 0, 1e-6, 1e9},
		{graph.TriangleChain(3), 2, 0.5, 4},
		{graph.GNM(30, 90, graph.WeightConfig{Mode: graph.UnitWeights}, 7), 1, 0.05, 2},
		{graph.TriangleChain(1), 0, 1, 10},
		{graph.GNM(8, 12, graph.WeightConfig{Mode: graph.UnitWeights}, 9), 0, 0.2, 1},
	}
	for ci, tc := range cases {
		in := microFromGraph(tc.g, tc.level, 1, nil, tc.rho, tc.beta, 0.25)
		cold := runMicroOracle(in)
		warm := runMicroOracleScratch(in, sc)
		if cold.matchingWitness != warm.matchingWitness {
			t.Fatalf("case %d: witness %v != %v", ci, warm.matchingWitness, cold.matchingWitness)
		}
		if math.Float64bits(cold.gamma) != math.Float64bits(warm.gamma) {
			t.Fatalf("case %d: gamma %v != %v", ci, warm.gamma, cold.gamma)
		}
		if !answersEqual(&cold.answer, &warm.answer) {
			t.Fatalf("case %d: scratch-reuse answer differs from cold answer", ci)
		}
	}
}

// TestMiniOracleScratchReuseBitIdentical runs the full inner loop —
// packing iterations, ϱ binary search, answer averaging — with a shared
// scratch across supports of different shapes and checks each run
// against a cold (nil-scratch) run.
func TestMiniOracleScratchReuseBitIdentical(t *testing.T) {
	prof := Practical(0.25)
	bOf := func(int) int { return 1 }
	sc := newOracleScratch()
	graphs := []*graph.Graph{
		graph.GNM(20, 60, graph.WeightConfig{Mode: graph.UnitWeights}, 11),
		graph.TriangleChain(4),
		graph.GNM(8, 10, graph.WeightConfig{Mode: graph.UnitWeights}, 13),
	}
	for gi, g := range graphs {
		var edges []supportEdge
		for i, e := range g.Edges() {
			edges = append(edges, supportEdge{u: e.U, v: e.V, k: i % 2, w: 1, origIdx: i})
		}
		for _, beta := range []float64{0.5, 4, 50} {
			cold := runMiniOracle(edges, beta, 0.25, prof, bOf, unitWHat, 2, 7, nil)
			warm := runMiniOracle(edges, beta, 0.25, prof, bOf, unitWHat, 2, 7, sc)
			if cold.matchingWitness != warm.matchingWitness ||
				cold.microCalls != warm.microCalls || cold.packIters != warm.packIters {
				t.Fatalf("graph %d beta %v: trajectory differs: cold={w:%v micro:%d pack:%d} warm={w:%v micro:%d pack:%d}",
					gi, beta, cold.matchingWitness, cold.microCalls, cold.packIters,
					warm.matchingWitness, warm.microCalls, warm.packIters)
			}
			if !answersEqual(&cold.answer, &warm.answer) {
				t.Fatalf("graph %d beta %v: scratch-reuse answer differs from cold answer", gi, beta)
			}
		}
	}
}
