package core

// Solver-level acceptance tests for the pluggable access layer: every
// Source backend serving the same edge sequence must produce a
// bit-identical Result, and the file-backed path must solve without the
// solver ever holding the full edge set centrally (measured by the
// SpaceAccountant high-water mark).

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/stream"
)

// backendSet builds the same instance behind every backend: the
// generator is the ground truth; the in-memory, file and sharded
// backends serve its materialization.
func backendSet(t *testing.T, spec stream.GenSpec) map[string]stream.Source {
	t.Helper()
	gen, err := stream.NewGen(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := stream.Materialize(gen)
	path := filepath.Join(t.TempDir(), "instance.rbg")
	if err := stream.WriteBinaryFile(path, stream.NewEdgeStream(g)); err != nil {
		t.Fatal(err)
	}
	file, err := stream.OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { file.Close() })

	// A sharded composition: the same sequence split into two shards.
	half := g.M() / 2
	a, b := graph.New(g.N()), graph.New(g.N())
	for v := 0; v < g.N(); v++ {
		a.SetB(v, g.B(v))
		b.SetB(v, g.B(v))
	}
	for i, e := range g.Edges() {
		dst := a
		if i >= half {
			dst = b
		}
		dst.MustAddEdge(int(e.U), int(e.V), e.W)
	}
	concat, err := stream.Concat(stream.NewEdgeStream(a), stream.NewEdgeStream(b))
	if err != nil {
		t.Fatal(err)
	}
	// The generator must be handed over fresh: Materialize consumed one
	// of its passes and Result.Stats.Passes counts from a snapshot, but a
	// clean fixture is clearer.
	genFresh, err := stream.NewGen(spec)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]stream.Source{
		"memory":    stream.NewEdgeStream(g),
		"file":      file,
		"generator": genFresh,
		"sharded":   concat,
	}
}

func TestSolveBackendsBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec stream.GenSpec
	}{
		{"uniform", stream.GenSpec{N: 72, M: 700, Weights: graph.WeightConfig{Mode: graph.UniformWeights, WMax: 30}, Seed: 21}},
		{"unit-bmatching", stream.GenSpec{N: 48, M: 400, Weights: graph.WeightConfig{Mode: graph.UnitWeights}, Seed: 22, BMax: 3}},
		{"powers", stream.GenSpec{N: 56, M: 450, Weights: graph.WeightConfig{Mode: graph.PowersOf, Eps: 0.25, Levels: 9}, Seed: 23}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			backends := backendSet(t, tc.spec)
			opt := Options{Eps: 0.25, P: 2, Seed: 9, Workers: 1}
			base, err := Solve(backends["memory"], opt)
			if err != nil {
				t.Fatal(err)
			}
			if base.Weight <= 0 {
				t.Fatal("reference solve produced an empty matching")
			}
			for name, src := range backends {
				if name == "memory" {
					continue
				}
				res, err := Solve(src, opt)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !reflect.DeepEqual(base, res) {
					t.Errorf("%s backend differs from memory:\nmem: w=%v stats=%+v\n%s: w=%v stats=%+v",
						name, base.Weight, base.Stats, name, res.Weight, res.Stats)
				}
			}
			// Workers must stay orthogonal to the backend choice.
			opt.Workers = 4
			par, err := Solve(backends["generator"], Options{Eps: 0.25, P: 2, Seed: 9, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			// The generator already consumed passes above; only the
			// passes delta is stats-relevant and Solve snapshots it, so
			// the Results must still match exactly.
			if !reflect.DeepEqual(base, par) {
				t.Error("generator backend with Workers:4 differs from sequential in-memory result")
			}
		})
	}
}

func TestSolveFileBackedOutOfCore(t *testing.T) {
	// The acceptance gate for the access-layer refactor: a file-backed
	// solve must never hold the edge set centrally. The SpaceAccountant
	// high-water mark (samples + staging chunk + init transients) has to
	// stay well below m — the file is read in passes, not loaded.
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := stream.GenSpec{N: 220, M: 30000,
		Weights: graph.WeightConfig{Mode: graph.UniformWeights, WMax: 20}, Seed: 31}
	gen, err := stream.NewGen(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "big.rbg")
	if err := stream.WriteBinaryFile(path, gen); err != nil {
		t.Fatal(err)
	}
	src, err := stream.OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	// The Practical profile's oversampled sparsifiers store nearly every
	// edge at this n (K·χ² exceeds the typical connectivity), which is a
	// statement about the constants, not the access layer. Pin a leaner
	// sparsifier so the sample is genuinely sublinear and what's measured
	// is the property under test: no path ever materializes the stream.
	prof := Practical(0.3)
	prof.SparsifierK = 6
	prof.ChiOverride = 1
	res, err := Solve(src, Options{Eps: 0.3, P: 2, Seed: 11, MaxRounds: 2, Profile: &prof})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight <= 0 {
		t.Fatal("file-backed solve produced an empty matching")
	}
	if res.Stats.PeakWords <= 0 {
		t.Fatal("space accounting recorded nothing")
	}
	if res.Stats.PeakWords >= spec.M/2 {
		t.Fatalf("peak central storage %d words on an m=%d instance: the edge set leaked into memory",
			res.Stats.PeakWords, spec.M)
	}
	if res.Stats.Passes < 3 {
		t.Fatalf("implausible pass count %d for a streamed solve", res.Stats.Passes)
	}
}

func TestSolvePassAccounting(t *testing.T) {
	// Passes = 2 setup scans (W*, level census) + 1 initial λ evaluation
	// + per round (1 fused sampling pass + 1 λ re-evaluation), uniformly
	// across backends.
	g := graph.GNM(40, 300, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 10}, 77)
	src := stream.NewEdgeStream(g)
	res, err := Solve(src, Options{Eps: 0.25, P: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := 3 + 2*res.Stats.SamplingRounds
	if res.Stats.Passes != want {
		t.Fatalf("passes %d, want %d (= 3 + 2·%d rounds)", res.Stats.Passes, want, res.Stats.SamplingRounds)
	}
	if src.Passes() != want {
		t.Fatalf("source counted %d passes, stats say %d", src.Passes(), want)
	}
}
