// Package core implements the paper's primary contribution: the
// dual-primal algorithm for (1-ε)-approximate weighted nonbipartite
// b-matching under resource constraints (Theorems 1, 3, 4 and 15;
// Algorithms 1, 2, 4 and 5).
//
// The solver runs O(p/ε) adaptive sampling rounds. Each round samples a
// batch of deferred cut-sparsifiers from the current edge multipliers
// (Section 4), solves an offline matching on the union of sampled edges
// (Algorithm 2 step 5, raising the primal bound β), and then consumes the
// sparsifiers sequentially — refining each with the drifted multipliers
// and feeding it to the MiniOracle (inner fractional packing over the
// penalty box P_o, Theorem 4) whose answers advance the outer fractional
// covering state (Theorem 3). Lack of dual progress materializes as the
// MicroOracle's part (i): an explicit witness that the sampled subgraph
// carries a (1-ε)β matching.
package core

import "math"

// Profile collects the tunable constants of the algorithm. Faithful()
// uses the paper's constants (astronomically conservative at laptop
// scale); Practical() keeps the structure and the asymptotic knobs but
// caps the iteration budgets so experiments finish. Every table in
// EXPERIMENTS.md was produced under Practical unless its notes say
// otherwise (see "Profile of constants" there).
type Profile struct {
	// RInitFactor: the initial solution assigns x_i(k) = RInitFactor*ε*ŵ_k
	// to saturated vertices (the paper's r = ε/256 means 1.0/256).
	RInitFactor float64
	// OuterRho is the outer covering width ρo (the paper proves 6 for the
	// penalty relaxation).
	OuterRho float64
	// InnerRhoEps: ρi = InnerRhoEps*(1/ε + 1/ε²) (paper: 8(1/ε + 1/ε²)
	// from the P_i box (24/ε + 24/ε²)ŵ_k against q_o = 3ŵ_k).
	InnerRhoEps float64
	// InnerIterCap caps packing iterations per MiniOracle call
	// (0 = theorem bound).
	InnerIterCap int
	// UsesPerRoundScale scales the ε⁻¹·ln γ deferred-sparsifier uses per
	// sampling round.
	UsesPerRoundScale float64
	// MaxRoundsScale scales the O(p/ε) round budget.
	MaxRoundsScale float64
	// BinSearchCap bounds the Lemma 10 binary search depth.
	BinSearchCap int
	// SparsifierXi is the cut accuracy of the deferred sparsifiers
	// (paper: ε/16).
	SparsifierXi float64
	// SparsifierK overrides the per-level forest count (0 = default).
	SparsifierK int
	// OfflineExactLimit: vertex-count threshold for exact blossom on the
	// sampled union.
	OfflineExactLimit int
	// ZPruneRel drops accumulated z-sets below this fraction of the
	// largest (0 disables pruning).
	ZPruneRel float64
	// OddSetNormCap caps the odd-set norm the MicroOracle separates
	// (0 = the paper's 4/ε). The paper's bound is what the worst case
	// needs; on non-adversarial workloads small odd sets carry the gap
	// and the separation heuristic's cost grows with the cap.
	OddSetNormCap int
	// SigmaBoost multiplies the covering step size σ = ε/(4αρo) (1 =
	// PST's worst-case-safe step; larger values converge far faster on
	// real instances at the cost of the worst-case potential argument —
	// λ is re-evaluated exactly each round, so overshoot is observable,
	// not silent).
	SigmaBoost float64

	// Ablation switches (all false/zero in normal operation; see the
	// "ablations" experiment). DisableOddSets removes the MicroOracle's
	// odd-set pricing (Algorithm 5 steps 11-18), degenerating the dual to
	// the bipartite relaxation. StaleRefinement skips the deferred
	// refinement of Definition 4: sparsifiers are used with their
	// sampling-time promise weights instead of the drifted multipliers.
	// ChiOverride forces the deferred oversampling parameter χ (e.g. 1 =
	// no oversampling despite multiplier drift).
	DisableOddSets  bool
	StaleRefinement bool
	ChiOverride     float64
}

// Faithful returns the paper's constants.
func Faithful(eps float64) Profile {
	return Profile{
		RInitFactor:       1.0 / 256,
		OuterRho:          6,
		InnerRhoEps:       8,
		InnerIterCap:      0, // theorem bound
		UsesPerRoundScale: 1,
		MaxRoundsScale:    1,
		BinSearchCap:      64,
		SparsifierXi:      eps / 16,
		OfflineExactLimit: 600,
		ZPruneRel:         0,
		SigmaBoost:        1,
	}
}

// Practical returns a profile that preserves the algorithm's structure
// while keeping iteration counts laptop-sized. The approximation quality
// under this profile is measured, not proven (experiment E1).
func Practical(eps float64) Profile {
	return Profile{
		RInitFactor:       1.0 / 8,
		OuterRho:          6,
		InnerRhoEps:       2,
		InnerIterCap:      24,
		UsesPerRoundScale: 1,
		MaxRoundsScale:    1,
		BinSearchCap:      16,
		SparsifierXi:      math.Max(eps/4, 0.1),
		SparsifierK:       24,
		OfflineExactLimit: 600,
		ZPruneRel:         1e-9,
		SigmaBoost:        32,
		OddSetNormCap:     9,
	}
}

// InnerRho returns ρi for the given ε.
func (p Profile) InnerRho(eps float64) float64 {
	r := p.InnerRhoEps * (1/eps + 1/(eps*eps))
	if r < 2 {
		r = 2
	}
	return r
}
