package core

// The dual-primal solve session: the rich-result counterpart of
// engine.Session. One Session holds one dualPrimal instance plus one
// scratch arena across solves, so a second solve on a same-shape
// instance reuses the first solve's working memory — the dual state's
// n×nl table, the (use, level) construction grids, the staging chunk,
// the union map/subgraph and the union-find forest pool — instead of
// reallocating all of it. Every solve is bit-identical to a cold
// Solve/SolveWith of the same (source, Options): retention is capacity
// only, never state, and the space accountant meters exactly the words
// a cold run meters.

import (
	"context"

	"repro/internal/engine"
	"repro/internal/stream"
)

// Session is a reusable dual-primal solve lifecycle: construct once
// with NewSession, Solve many times. Not safe for concurrent use — one
// algorithm instance, one arena; hold several Sessions for in-flight
// parallelism (the public repro/match.Pool does).
type Session struct {
	opt   Options
	alg   *dualPrimal
	arena *engine.Arena
	runs  int
}

// NewSession validates the options and builds a session.
func NewSession(opt Options) (*Session, error) {
	alg, err := newDualPrimal(opt)
	if err != nil {
		return nil, err
	}
	return &Session{opt: opt, alg: alg, arena: engine.NewArena()}, nil
}

// Solve runs one solve through the session under the shared engine
// driver. warm overrides the session Options' warm-start request for
// this run only (nil = the Options' own Warm, usually cold); see
// Options.Warm for the validity-check-and-fallback semantics. The
// returned Result carries a fresh dual snapshot in Warm, ready to seed
// a later solve.
func (s *Session) Solve(ctx context.Context, src stream.Source, ext Extensions, warm *WarmDuals) (*Result, error) {
	if s.runs > 0 {
		s.alg.Reset(engine.Params{})
		s.arena.Reclaim()
	}
	if warm != nil {
		s.alg.SetWarm(warm)
	}
	s.runs++
	out, err := engine.DriveArena(ctx, s.alg, src, ext, s.arena)
	res := s.alg.res
	res.Matching = out.Matching
	res.Weight = out.Weight
	res.DualObjective = out.DualObjective
	res.Lambda = out.Lambda
	res.Stats.SamplingRounds = out.Rounds
	res.Stats.Passes = out.Passes
	res.Stats.PeakWords = out.PeakWords
	res.Stats.EarlyStopped = out.EarlyStopped
	res.Warm = s.alg.snapshotDuals()
	return res, err
}

// Runs returns how many solves the session has started.
func (s *Session) Runs() int { return s.runs }

// RetainedWords reports the session's retained scratch capacity — warm
// memory between runs, not part of any run's metered live space. It
// sums the engine arena's typed pools with the solver-owned pools this
// arena cannot see: the sparsifier scratch (forests, shells, item and
// reveal buffers) and the oracle-loop scratch. Map-backed scratch is
// excluded (maps do not expose their footprint), so this is a floor.
func (s *Session) RetainedWords() int {
	return s.arena.RetainedWords() + s.alg.retainedWords()
}
