package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/matching"
)

func solveRatio(t *testing.T, g *graph.Graph, eps float64, seed uint64) (float64, *Result) {
	t.Helper()
	res, err := SolveGraph(g, Options{Eps: eps, P: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Matching.Validate(g); err != nil {
		t.Fatalf("invalid matching: %v", err)
	}
	_, opt := matching.MaxWeightMatchingFloat(g, false)
	if opt == 0 {
		return 1, res
	}
	return res.Weight / opt, res
}

func TestSolveEmptyGraph(t *testing.T) {
	g := graph.New(5)
	res, err := SolveGraph(g, Options{Eps: 0.25, P: 2})
	if err != nil || res.Weight != 0 {
		t.Fatalf("empty graph: %v %v", res, err)
	}
}

func TestSolveValidatesOptions(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1)
	if _, err := SolveGraph(g, Options{Eps: 0, P: 2}); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := SolveGraph(g, Options{Eps: 0.25, P: 1}); err == nil {
		t.Fatal("p=1 accepted")
	}
}

func TestSolveSingleEdge(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 7)
	ratio, _ := solveRatio(t, g, 0.25, 1)
	if ratio < 1-1e-9 {
		t.Fatalf("single edge ratio %f", ratio)
	}
}

func TestSolveSmallUnweighted(t *testing.T) {
	g := graph.GNM(40, 200, graph.WeightConfig{Mode: graph.UnitWeights}, 11)
	ratio, res := solveRatio(t, g, 0.25, 2)
	if ratio < 1-0.25-0.05 {
		t.Fatalf("ratio %f below 1-eps slack (stats %+v)", ratio, res.Stats)
	}
}

func TestSolveWeightedNonbipartite(t *testing.T) {
	g := graph.GNM(48, 300, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 50}, 13)
	ratio, res := solveRatio(t, g, 0.25, 3)
	if ratio < 1-0.25-0.05 {
		t.Fatalf("weighted ratio %f (stats %+v)", ratio, res.Stats)
	}
}

func TestSolvePowersWeights(t *testing.T) {
	g := graph.GNM(40, 250, graph.WeightConfig{Mode: graph.PowersOf, Eps: 0.25, Levels: 8}, 17)
	ratio, _ := solveRatio(t, g, 0.25, 5)
	if ratio < 1-0.25-0.05 {
		t.Fatalf("powers ratio %f", ratio)
	}
}

func TestSolveTriangleChain(t *testing.T) {
	// Odd structure everywhere: the bipartite relaxation is off by 3/2,
	// so matching quality requires the odd-set machinery end to end.
	g := graph.TriangleChain(8)
	ratio, _ := solveRatio(t, g, 0.25, 7)
	if ratio < 1-0.25-0.05 {
		t.Fatalf("triangle chain ratio %f", ratio)
	}
}

func TestSolveBMatching(t *testing.T) {
	g := graph.GNM(30, 150, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 9}, 19)
	graph.WithRandomB(g, 3, false, 23)
	res, err := SolveGraph(g, Options{Eps: 0.25, P: 2, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Matching.Validate(g); err != nil {
		t.Fatalf("invalid b-matching: %v", err)
	}
	_, opt := matching.OfflineB(g, matching.OfflineConfig{})
	if opt > 0 && res.Weight/opt < 1-0.25-0.10 {
		t.Fatalf("b-matching ratio %f", res.Weight/opt)
	}
}

func TestSolveImprovesWithSmallerEps(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := graph.GNM(40, 300, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 20}, 31)
	rCoarse, _ := solveRatio(t, g, 0.4, 37)
	rFine, _ := solveRatio(t, g, 0.125, 37)
	if rFine < rCoarse-0.05 {
		t.Fatalf("smaller eps did not help: coarse %f fine %f", rCoarse, rFine)
	}
	if rFine < 1-0.125-0.08 {
		t.Fatalf("fine ratio %f below target", rFine)
	}
}

func TestSolveStatsAccounting(t *testing.T) {
	g := graph.GNM(50, 400, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 30}, 41)
	res, err := SolveGraph(g, Options{Eps: 0.25, P: 2, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.SamplingRounds < 1 {
		t.Fatal("no sampling rounds recorded")
	}
	if st.OracleUses < st.SamplingRounds {
		t.Fatalf("uses %d < rounds %d: deferred batches missing", st.OracleUses, st.SamplingRounds)
	}
	if st.MicroCalls < st.OracleUses {
		t.Fatalf("micro calls %d < uses %d", st.MicroCalls, st.OracleUses)
	}
	if st.Passes < st.SamplingRounds {
		t.Fatalf("passes %d < rounds %d", st.Passes, st.SamplingRounds)
	}
	if st.PeakSampleEdges <= 0 || st.PeakSampleEdges > g.M()*len(st.UnionSizes)*8 {
		t.Fatalf("peak sample edges implausible: %d", st.PeakSampleEdges)
	}
	if len(st.LambdaTrace) != st.SamplingRounds {
		t.Fatalf("lambda trace %d vs rounds %d", len(st.LambdaTrace), st.SamplingRounds)
	}
}

func TestSolveDualBoundsPrimal(t *testing.T) {
	// Weak duality: the dual objective (over kept edges) divided by λ
	// must upper-bound the kept-edge optimum when λ > 0. We check
	// against the overall optimum with discretization slack.
	g := graph.GNM(40, 250, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 25}, 47)
	res, err := SolveGraph(g, Options{Eps: 0.25, P: 2, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda <= 0 {
		t.Fatalf("lambda %f", res.Lambda)
	}
	_, opt := matching.MaxWeightMatchingFloat(g, false)
	bound := res.DualObjective / res.Lambda * (1 + 0.25) // discretization slack
	if bound < opt*(1-0.3) {
		t.Fatalf("dual bound %f too far below optimum %f", bound, opt)
	}
}

func TestSolveRoundsScaleWithP(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := graph.GNM(60, 800, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 12}, 59)
	res2, err := SolveGraph(g, Options{Eps: 0.25, P: 2, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	res4, err := SolveGraph(g, Options{Eps: 0.25, P: 4, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	// Larger p means less space per round; rounds should not shrink.
	if res4.Stats.SamplingRounds+res4.Stats.InitRounds < res2.Stats.SamplingRounds+res2.Stats.InitRounds {
		t.Logf("p=2 rounds %d+%d, p=4 rounds %d+%d (informational)",
			res2.Stats.InitRounds, res2.Stats.SamplingRounds,
			res4.Stats.InitRounds, res4.Stats.SamplingRounds)
	}
	if res2.Weight <= 0 || res4.Weight <= 0 {
		t.Fatal("empty matchings")
	}
}

func TestSolveDeterministicForSeed(t *testing.T) {
	g := graph.GNM(40, 220, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 9}, 67)
	a, err := SolveGraph(g, Options{Eps: 0.25, P: 2, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveGraph(g, Options{Eps: 0.25, P: 2, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Weight-b.Weight) > 1e-12 || a.Stats.SamplingRounds != b.Stats.SamplingRounds {
		t.Fatalf("nondeterministic: %f/%d vs %f/%d", a.Weight, a.Stats.SamplingRounds, b.Weight, b.Stats.SamplingRounds)
	}
}

func TestSolveFaithfulProfileSmall(t *testing.T) {
	// The faithful profile must at least run end to end on a tiny
	// instance (its iteration budgets are huge, so keep it very small and
	// cap rounds).
	g := graph.GNM(12, 30, graph.WeightConfig{Mode: graph.UnitWeights}, 73)
	prof := Faithful(0.25)
	prof.InnerIterCap = 50 // keep the smoke test fast
	res, err := SolveGraph(g, Options{Eps: 0.25, P: 2, Seed: 79, Profile: &prof, MaxRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Matching.Validate(g); err != nil {
		t.Fatal(err)
	}
	if res.Weight <= 0 {
		t.Fatal("faithful profile produced empty matching")
	}
}

func TestSolvePlantedLargeGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Larger instance with a planted optimum: exact solver is skipped and
	// the planted weight gives the reference.
	g, planted := graph.PlantedMatching(200, 2000, 100, 3, 83)
	res, err := SolveGraph(g, Options{Eps: 0.25, P: 2, Seed: 89})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Matching.Validate(g); err != nil {
		t.Fatal(err)
	}
	if res.Weight < planted*(1-0.25-0.05) {
		t.Fatalf("planted ratio %f", res.Weight/planted)
	}
}

func TestSolveLargerEps8Performance(t *testing.T) {
	// Regression guard for the lazy-forest optimization: an eps=1/8 run
	// at n=128 must finish quickly (it took ~110s before the fix, ~2s
	// after). The generous bound still catches order-of-magnitude
	// regressions.
	if testing.Short() {
		t.Skip("short mode")
	}
	g := graph.GNM(128, 1024, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 50}, 128)
	start := time.Now()
	res, err := SolveGraph(g, Options{Eps: 0.125, P: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Matching.Validate(g); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 60*time.Second {
		t.Fatalf("eps=1/8 solve took %v (lazy-forest regression?)", elapsed)
	}
}
