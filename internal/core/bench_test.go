package core

import (
	"testing"

	"repro/internal/graph"
)

func BenchmarkSolveSmall(b *testing.B) {
	g := graph.GNM(64, 512, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 30}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveGraph(g, Options{Eps: 0.25, P: 2, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveRound(b *testing.B) {
	// Single-round cost (sampling + offline + one batch of oracle uses).
	g := graph.GNM(128, 1024, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 30}, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveGraph(g, Options{Eps: 0.25, P: 2, Seed: uint64(i), MaxRounds: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
