package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/matching"
)

// Ablation-path tests: each switch must keep the solver correct (valid
// matchings, sane stats) while changing the dual's behaviour in the
// predicted direction.

func ablSolve(t *testing.T, g *graph.Graph, mod func(*Profile), rounds int) *Result {
	t.Helper()
	prof := Practical(0.125)
	if mod != nil {
		mod(&prof)
	}
	res, err := SolveGraph(g, Options{Eps: 0.125, P: 2, Seed: 3, Profile: &prof, MaxRounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Matching.Validate(g); err != nil {
		t.Fatalf("invalid matching under ablation: %v", err)
	}
	return res
}

func TestAblationNoOddSetsStillMatches(t *testing.T) {
	g := graph.TriangleChain(10)
	full := ablSolve(t, g, nil, 60)
	no := ablSolve(t, g, func(p *Profile) { p.DisableOddSets = true }, 60)
	_, opt := matching.MaxWeightMatchingFloat(g, false)
	if full.Weight < opt*(1-0.2) || no.Weight < opt*(1-0.2) {
		t.Fatalf("primal degraded: full %f, no-oddsets %f, opt %f", full.Weight, no.Weight, opt)
	}
}

func TestAblationNoOddSetsFiresWitnesses(t *testing.T) {
	// With odd-set pricing disabled, once vertex violations stop paying
	// the MicroOracle must fall through to part (i) — on odd-dominated
	// graphs this shows up as witness events.
	g := graph.TriangleChain(10)
	no := ablSolve(t, g, func(p *Profile) { p.DisableOddSets = true }, 400)
	full := ablSolve(t, g, nil, 400)
	if no.Stats.WitnessEvents <= full.Stats.WitnessEvents {
		t.Fatalf("witness events: no-oddsets %d <= full %d", no.Stats.WitnessEvents, full.Stats.WitnessEvents)
	}
}

func TestAblationStaleRefinementRuns(t *testing.T) {
	g := graph.GNM(36, 250, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 20}, 7)
	res := ablSolve(t, g, func(p *Profile) { p.StaleRefinement = true }, 40)
	_, opt := matching.MaxWeightMatchingFloat(g, false)
	if res.Weight < opt*(1-0.2) {
		t.Fatalf("stale refinement primal ratio %f", res.Weight/opt)
	}
}

func TestAblationChiOverrideRuns(t *testing.T) {
	g := graph.GNM(36, 250, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 20}, 11)
	res := ablSolve(t, g, func(p *Profile) { p.ChiOverride = 1 }, 40)
	_, opt := matching.MaxWeightMatchingFloat(g, false)
	if res.Weight < opt*(1-0.2) {
		t.Fatalf("chi=1 primal ratio %f", res.Weight/opt)
	}
}

func TestDualCertificateConverges(t *testing.T) {
	// With an extended round budget the dual certificate must reach
	// λ >= 1-3ε and certify the optimum within the slack on a pure
	// odd-structure instance.
	g := graph.TriangleChain(13)
	res := ablSolve(t, g, nil, 700)
	if !res.Stats.EarlyStopped {
		t.Fatalf("no early stop: lambda %f", res.Lambda)
	}
	_, opt := matching.MaxWeightMatchingFloat(g, false)
	bound := res.CertifiedUpperBound(0.125)
	if bound < opt*(1-0.15) {
		t.Fatalf("certificate %f below optimum %f", bound, opt)
	}
	if bound > opt*2 {
		t.Fatalf("certificate %f uselessly loose vs %f", bound, opt)
	}
}

func TestCertifiedUpperBoundInfWhenNoLambda(t *testing.T) {
	r := &Result{Lambda: 0}
	if b := r.CertifiedUpperBound(0.25); b < 1e308 {
		t.Fatalf("bound %f should be +Inf", b)
	}
}
