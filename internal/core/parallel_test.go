package core

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

// The pipeline determinism contract at the solver level: Solve with
// Workers: k must return a bit-identical Result to Workers: 1 on the same
// seed — matching, weight, dual objective, and every Stats field
// including the per-round traces. This is the acceptance gate for the
// sharded sampling pipeline.

func solverCorpus() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"gnm-uniform": graph.GNM(64, 512, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 40}, 101),
		"gnm-powers":  graph.GNM(48, 300, graph.WeightConfig{Mode: graph.PowersOf, Eps: 0.25, Levels: 10}, 102),
		"gnm-exp":     graph.GNM(56, 400, graph.WeightConfig{Mode: graph.ExpWeights, Scale: 2}, 103),
		"powerlaw":    graph.PowerLaw(64, 10, 2.5, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 30}, 104),
		"triangles":   graph.TriangleChain(16),
		"bipartite":   graph.BipartiteParallel(24, 24, 200, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 12}, 105, 2),
		"bmatching":   graph.WithRandomB(graph.GNM(40, 260, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 15}, 106), 3, false, 107),
	}
}

func TestSolveWorkersBitIdentical(t *testing.T) {
	for name, g := range solverCorpus() {
		base, err := SolveGraph(g, Options{Eps: 0.25, P: 2, Seed: 7, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, workers := range []int{2, 4, 0} {
			res, err := SolveGraph(g, Options{Eps: 0.25, P: 2, Seed: 7, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if !reflect.DeepEqual(base, res) {
				t.Errorf("%s workers=%d: Result differs from Workers:1\nseq: weight=%v stats=%+v\npar: weight=%v stats=%+v",
					name, workers, base.Weight, base.Stats, res.Weight, res.Stats)
			}
		}
	}
}

func TestSolveWorkersBitIdenticalSmallEps(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := graph.GNM(64, 512, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 25}, 201)
	base, err := SolveGraph(g, Options{Eps: 0.125, P: 3, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveGraph(g, Options{Eps: 0.125, P: 3, Seed: 11, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, res) {
		t.Fatalf("eps=1/8 p=3: parallel result differs from sequential")
	}
}

func TestSolveWorkersValidMatching(t *testing.T) {
	g := graph.GNM(80, 640, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 50}, 301)
	res, err := SolveGraph(g, Options{Eps: 0.25, P: 2, Seed: 13, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Matching.Validate(g); err != nil {
		t.Fatal(err)
	}
	if res.Weight <= 0 {
		t.Fatal("empty matching from parallel solve")
	}
}
