package core

import (
	"errors"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/levels"
	"repro/internal/matching"
	"repro/internal/parallel"
	"repro/internal/sparsify"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// Options configures a Solve run.
type Options struct {
	// Eps is the accuracy target ε (result aims at (1-O(ε))·OPT).
	Eps float64
	// P is the space exponent p > 1: central space ~ n^(1+1/p), rounds
	// O(p/ε).
	P float64
	// Seed drives all randomness.
	Seed uint64
	// Profile selects the constant regime; nil means Practical(eps).
	Profile *Profile
	// MaxRounds overrides the round budget (0 = derive from profile).
	MaxRounds int
	// Workers shards the per-edge/per-vertex work of every sampling
	// round (promise-multiplier passes, deferred-sparsifier construction,
	// refinement reveals, the per-level initial solutions) across a
	// worker pool: 0 = GOMAXPROCS, 1 = exact sequential execution. The
	// Result is bit-identical for every worker count — randomness is
	// pre-split per shard and shard outputs merge in deterministic order
	// (see internal/parallel); only wall-clock time changes. The
	// sequential oracle-use loop is untouched: that adaptivity is the
	// quantity the paper bounds, not an implementation artifact.
	Workers int
}

// Stats reports the resource usage the paper's theorems bound.
type Stats struct {
	SamplingRounds  int   // adaptive access rounds (Theorem 15: O(p/ε))
	InitRounds      int   // rounds consumed by the initial solution (Lemma 20)
	OracleUses      int   // sequential deferred-sparsifier uses ("adaptivity at use")
	MicroCalls      int   // MicroOracle invocations
	PackIters       int   // inner packing iterations
	Passes          int   // stream passes made by the simulation
	PeakSampleEdges int   // peak sampled edges held centrally
	DualStateWords  int   // final size of the dual state
	UnionSizes      []int // per round: offline-solve union size
	LambdaTrace     []float64
	BetaTrace       []float64
	WitnessEvents   int // MicroOracle part (i) firings
	EarlyStopped    bool
	// RoundOfBestMatching is the (1-based) sampling round in which the
	// reported matching was found — the primal convergence point, usually
	// far earlier than the dual early-stop.
	RoundOfBestMatching int
}

// Result is the outcome of a Solve run.
type Result struct {
	// Matching is the best integral b-matching found (indices into the
	// input graph's edge list, with multiplicities).
	Matching *matching.Matching
	// Weight is the matching's weight in original units.
	Weight float64
	// DualObjective is the final dual objective scaled back to original
	// units; DualObjective/Lambda upper-bounds the optimum over the kept
	// (non-discretization-dropped) edges when Lambda > 0.
	DualObjective float64
	// Lambda is the final minimum normalized coverage over kept edges.
	Lambda float64
	Stats  Stats
}

// CertifiedUpperBound returns the dual certificate's upper bound on the
// optimum matching weight: (dual objective)/λ with the (1+ε)
// discretization slack folded in. Valid (up to the weight mass dropped
// by discretization, < m·W*/B) whenever Lambda > 0, by weak duality of
// the layered relaxation LP10 against LP6. Returns +Inf when Lambda <= 0.
func (r *Result) CertifiedUpperBound(eps float64) float64 {
	if r.Lambda <= 0 {
		return math.Inf(1)
	}
	return r.DualObjective / r.Lambda * (1 + eps)
}

// Solve runs the dual-primal algorithm on g.
func Solve(g *graph.Graph, opt Options) (*Result, error) {
	if !(opt.Eps > 0) || opt.Eps >= 0.5 {
		return nil, errors.New("core: Eps must be in (0, 0.5)")
	}
	if !(opt.P > 1) {
		return nil, errors.New("core: P must be > 1")
	}
	prof := Practical(opt.Eps)
	if opt.Profile != nil {
		prof = *opt.Profile
	}
	res := &Result{Matching: &matching.Matching{}}
	if g.M() == 0 {
		return res, nil
	}
	eps := opt.Eps
	scheme, err := levels.ForGraph(g, eps)
	if err != nil {
		return nil, err
	}
	s := stream.NewEdgeStream(g)
	acct := stream.NewSpaceAccountant()
	rng := xrand.New(opt.Seed)
	workers := parallel.Workers(opt.Workers)
	bOf := func(v int) int { return g.B(v) }
	wHat := scheme.WHat
	nl := scheme.NumLevels()
	maxNorm := int(math.Ceil(4 / eps))
	if prof.OddSetNormCap > 0 && maxNorm > prof.OddSetNormCap {
		maxNorm = prof.OddSetNormCap
	}
	if maxNorm < 3 {
		maxNorm = 3
	}

	// ---- Initial solution (Lemmas 12, 20, 21) ----
	state := newDualState(scheme, g.N(), prof.ZPruneRel)
	initRounds := buildInitialSolution(g, scheme, prof, eps, opt.P, rng.Split(1), acct, state, workers)
	res.Stats.InitRounds = initRounds

	// ---- Outer loop (Algorithms 2/4) ----
	gammaChi := math.Pow(float64(g.N()), 1/(2*opt.P))
	if gammaChi < 2 {
		gammaChi = 2
	}
	if prof.ChiOverride > 0 {
		gammaChi = prof.ChiOverride
	}
	tUses := int(math.Ceil(prof.UsesPerRoundScale * math.Log(gammaChi) / eps))
	if tUses < 1 {
		tUses = 1
	}
	maxRounds := opt.MaxRounds
	if maxRounds == 0 {
		maxRounds = int(math.Ceil(prof.MaxRoundsScale*3*opt.P/eps)) + 1
	}
	lambda := state.Lambda(g)
	extraPasses := 1 // λ evaluation passes not routed through the stream
	beta := state.Objective(bOf)
	if beta <= 0 {
		beta = 1e-12
	}
	target := 1 - 3*eps
	mKept := float64(g.M())
	perLevelEdges := scheme.Partition(g)

	bestHat := 0.0
	// For ε >= 1/3 the certificate target 1-3ε is non-positive and any
	// dual point satisfies it; still run at least one sampling round so a
	// matching is produced.
	for round := 0; round < maxRounds && (round == 0 || lambda < target); round++ {
		acct.BeginRound()
		res.Stats.SamplingRounds++
		res.Stats.LambdaTrace = append(res.Stats.LambdaTrace, lambda)
		res.Stats.BetaTrace = append(res.Stats.BetaTrace, beta)

		// Outer covering parameters for this phase (Theorem 5 via
		// Corollary 6): α from the current λ, σ = ε/(4αρo).
		alpha := 2 * math.Log(mKept/eps) / (math.Max(lambda, 1e-9) * eps)
		boost := prof.SigmaBoost
		if boost <= 0 {
			boost = 1
		}
		sigma := eps / (4 * alpha * prof.OuterRho) * boost
		if sigma > 0.5 {
			sigma = 0.5
		}

		// Promise multipliers ς_e = exp(-α(cov_e/ŵ_k - λ))/ŵ_k
		// (max-normalized; one sharded pass — computed exactly as the
		// distributed mappers would from the broadcast read-only dual
		// state, each shard writing its own index range).
		sigmaP := make([]float64, g.M())
		s.ForEachParallel(workers, func(idx int, e graph.Edge) {
			k, ok := scheme.Level(e.W)
			if !ok {
				return
			}
			r := state.CoverageRatio(e.U, e.V, k)
			sigmaP[idx] = math.Exp(-alpha*(r-lambda)) / wHat(k)
		})

		// Sample t deferred sparsifiers, per weight level (Lemma 11: the
		// union of per-class sparsifiers is the sparsifier we need). The
		// (use, level) pairs are independent given their seeds, so the
		// seeds are split sequentially up front — in the exact order the
		// sequential loop would draw them — and the constructions fan out
		// across the worker pool, each slotted back into its (q, level)
		// position.
		type deferredBatch struct {
			defs []*sparsify.Deferred
		}
		type defJob struct {
			q, slot int
			idxs    []int
			seed    uint64
		}
		batches := make([]deferredBatch, tUses)
		var jobs []defJob
		for q := 0; q < tUses; q++ {
			slot := 0
			for k, idxs := range perLevelEdges {
				if len(idxs) == 0 {
					continue
				}
				jobs = append(jobs, defJob{
					q: q, slot: slot, idxs: idxs,
					seed: rng.Split(uint64(round*1000 + q*100 + k)).Uint64(),
				})
				slot++
			}
			batches[q].defs = make([]*sparsify.Deferred, slot)
		}
		type defResult struct {
			d   *sparsify.Deferred
			err error
		}
		defInner := innerWorkers(workers, len(jobs))
		defResults := parallel.Map(workers, len(jobs), func(ji int) defResult {
			j := jobs[ji]
			sig := make([]float64, len(j.idxs))
			for li, ei := range j.idxs {
				sig[li] = sigmaP[ei]
			}
			local := j.idxs
			d, derr := sparsify.NewDeferred(g.N(), func(i int) (int32, int32) {
				e := g.Edge(local[i])
				return e.U, e.V
			}, len(j.idxs), sig, gammaChi, sparsify.Config{
				Xi:      prof.SparsifierXi,
				K:       prof.SparsifierK,
				Seed:    j.seed,
				Workers: defInner,
			})
			return defResult{d: d, err: derr}
		})
		sampledTotal := 0
		for ji, r := range defResults {
			if r.err != nil {
				return nil, r.err
			}
			batches[jobs[ji].q].defs[jobs[ji].slot] = r.d
			sampledTotal += r.d.Size()
		}
		extraPasses++ // the sampling pass over the input
		acct.Alloc(sampledTotal)
		if cur := acct.Current(); cur > res.Stats.PeakSampleEdges {
			res.Stats.PeakSampleEdges = cur
		}

		// Offline solve on the union of sampled edges (Algorithm 2 step
		// 5); raise β on improvement (step 6).
		union := collectUnion(batches[0].defs, perLevelEdges)
		for q := 1; q < len(batches); q++ {
			for idx := range collectUnion(batches[q].defs, perLevelEdges) {
				union[idx] = true
			}
		}
		unionIdx := make([]int, 0, len(union))
		for idx := range union {
			unionIdx = append(unionIdx, idx)
		}
		sort.Ints(unionIdx)
		res.Stats.UnionSizes = append(res.Stats.UnionSizes, len(unionIdx))
		sub := g.Subgraph(unionIdx)
		cand, _ := matching.OfflineB(sub, matching.OfflineConfig{ExactLimit: prof.OfflineExactLimit})
		candHat := 0.0
		for ci, si := range cand.EdgeIdx {
			mult := 1
			if cand.Mult != nil {
				mult = cand.Mult[ci]
			}
			if hk, ok := scheme.Level(sub.Edge(si).W); ok {
				candHat += wHat(hk) * float64(mult)
			}
		}
		if candHat > bestHat*(1+eps/8) || res.Matching.Size() == 0 && candHat > 0 {
			res.Stats.RoundOfBestMatching = round + 1
		}
		if candHat > bestHat {
			bestHat = candHat
			// Remap subgraph edge indices back to g.
			remap := &matching.Matching{Mult: []int{}}
			for ci, si := range cand.EdgeIdx {
				remap.EdgeIdx = append(remap.EdgeIdx, unionIdx[si])
				if cand.Mult != nil {
					remap.Mult = append(remap.Mult, cand.Mult[ci])
				} else {
					remap.Mult = append(remap.Mult, 1)
				}
			}
			res.Matching = remap
		}
		if candHat > beta {
			beta = candHat * (1 + eps)
		}

		// Sequential refinement and use of the t sparsifiers (the right
		// half of Figure 1: no further input access).
		for q := 0; q < tUses; q++ {
			support := refineBatch(batches[q].defs, perLevelEdges, g, scheme, state, alpha, lambda, prof.StaleRefinement, sigmaP, workers)
			res.Stats.OracleUses++
			mini := runMiniOracle(support, beta, eps, prof, bOf, wHat, nl, maxNorm)
			res.Stats.MicroCalls += mini.microCalls
			res.Stats.PackIters += mini.packIters
			if mini.matchingWitness {
				res.Stats.WitnessEvents++
				beta *= 1 + eps
				continue
			}
			if !mini.answer.isZero() {
				state.Average(sigma, &mini.answer)
			}
		}
		acct.Free(sampledTotal)

		lambda = state.Lambda(g)
		extraPasses++
	}
	if lambda >= target {
		res.Stats.EarlyStopped = true
	}
	res.Lambda = lambda
	res.Stats.Passes = s.Passes() + extraPasses
	res.Stats.DualStateWords = g.N()*nl + 4*len(state.zsets)
	res.DualObjective = scheme.Unscale(state.Objective(bOf))
	res.Weight = res.Matching.Weight(g)
	return res, nil
}

// innerWorkers splits a worker budget between an outer job fan-out and
// the sharded work inside each job: with fewer jobs than workers the
// leftover pool goes to the jobs' internals. Never affects results —
// every layer is bit-identical for any worker count — only utilization.
func innerWorkers(workers, jobs int) int {
	if jobs < 1 || workers <= jobs {
		return 1
	}
	return workers / jobs
}

// collectUnion maps Deferred-local stored indices back to graph edge
// indices using the per-level index lists (batch i corresponds to level
// order of perLevelEdges traversal at construction).
func collectUnion(defs []*sparsify.Deferred, perLevelEdges [][]int) map[int]bool {
	union := map[int]bool{}
	di := 0
	for _, idxs := range perLevelEdges {
		if len(idxs) == 0 {
			continue
		}
		d := defs[di]
		di++
		for _, localIdx := range d.StoredEdges() {
			union[idxs[localIdx]] = true
		}
	}
	return union
}

// refineBatch reveals current multipliers for the stored edges of one
// deferred batch (Definition 4's reveal step) and emits the support.
// With stale=true (ablation) the sampling-time promise values are used
// instead, skipping the refinement. The per-level reveals run across the
// worker pool — every reveal is a read-only evaluation of the frozen dual
// state — and the per-level supports concatenate in level order, so the
// support is identical for any worker count.
func refineBatch(defs []*sparsify.Deferred, perLevelEdges [][]int, g *graph.Graph,
	scheme *levels.Scheme, state *dualState, alpha, lambda float64,
	stale bool, promise []float64, workers int) []supportEdge {

	type levelRef struct {
		d    *sparsify.Deferred
		k    int
		idxs []int
	}
	var levelsWork []levelRef
	di := 0
	for k, idxs := range perLevelEdges {
		if len(idxs) == 0 {
			continue
		}
		levelsWork = append(levelsWork, levelRef{d: defs[di], k: k, idxs: idxs})
		di++
	}
	// The level fan-out is the outer parallelism; when there are fewer
	// levels than workers (single weight class is common for unit
	// weights) push the leftover pool down into the per-item reveals.
	inner := innerWorkers(workers, len(levelsWork))
	perLevel := parallel.Map(workers, len(levelsWork), func(li int) []supportEdge {
		lw := levelsWork[li]
		sp := lw.d.RefineParallel(inner, func(localIdx int) float64 {
			if stale {
				return promise[lw.idxs[localIdx]]
			}
			e := g.Edge(lw.idxs[localIdx])
			r := state.CoverageRatio(e.U, e.V, lw.k)
			return math.Exp(-alpha*(r-lambda)) / scheme.WHat(lw.k)
		})
		out := make([]supportEdge, 0, len(sp.Items))
		for _, item := range sp.Items {
			out = append(out, supportEdge{
				u: item.U, v: item.V, k: lw.k,
				w:       item.Weight,
				origIdx: lw.idxs[item.EdgeIdx],
			})
		}
		return out
	})
	var support []supportEdge
	for _, out := range perLevel {
		support = append(support, out...)
	}
	return support
}

// buildInitialSolution computes per-level maximal b-matchings by
// filtering (Lemma 20) and installs the Lemma 21 assignment
// x_i(k) = r·ŵ_k on saturated vertices. Returns the rounds consumed
// (levels run conceptually in parallel: the max over levels — and with
// workers > 1 they genuinely do, each with a pre-split seed, entries
// merging in level order). The jobs meter nothing shared; each level's
// FilterStats replay onto acct in level order afterwards, so acct's
// rounds, current, and peak end up exactly as a sequential run leaves
// them for any worker count — concurrent levels never inflate the
// measured peak.
func buildInitialSolution(g *graph.Graph, scheme *levels.Scheme,
	prof Profile, eps, p float64, rng *xrand.RNG, acct *stream.SpaceAccountant,
	state *dualState, workers int) int {

	r := prof.RInitFactor * eps
	parts := scheme.Partition(g)
	type levelJob struct {
		k    int
		idxs []int
		seed uint64
	}
	var jobs []levelJob
	for k, idxs := range parts {
		if len(idxs) == 0 {
			continue
		}
		jobs = append(jobs, levelJob{k: k, idxs: idxs, seed: rng.Split(uint64(k)).Uint64()})
	}
	type levelResult struct {
		entries    []xEntry
		rounds     int
		peakSample int
	}
	results := parallel.Map(workers, len(jobs), func(ji int) levelResult {
		j := jobs[ji]
		sub := g.Subgraph(j.idxs)
		subStream := stream.NewEdgeStream(sub)
		m, stats := matching.MaximalBMatchingFilter(subStream, p, j.seed, nil)
		deg := m.MatchedDegrees(sub)
		var entries []xEntry
		for v := 0; v < sub.N(); v++ {
			if deg[v] >= sub.B(v) { // saturated at level k
				entries = append(entries, xEntry{v: int32(v), k: j.k, val: r * scheme.WHat(j.k)})
			}
		}
		return levelResult{entries: entries, rounds: stats.Rounds, peakSample: stats.PeakSample}
	})
	maxRounds := 0
	var entries []xEntry
	for _, lr := range results {
		if lr.rounds > maxRounds {
			maxRounds = lr.rounds
		}
		entries = append(entries, lr.entries...)
		// Replay: a sequential run meters each level's rounds and holds
		// its peak transiently before freeing it all (filters free every
		// allocation before returning).
		for i := 0; i < lr.rounds; i++ {
			acct.BeginRound()
		}
		acct.Alloc(lr.peakSample)
		acct.Free(lr.peakSample)
	}
	state.SetInit(entries)
	for i := 0; i < maxRounds; i++ {
		acct.BeginRound()
	}
	return maxRounds
}
