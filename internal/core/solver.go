package core

import (
	"context"
	"errors"
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/levels"
	"repro/internal/matching"
	"repro/internal/parallel"
	"repro/internal/sparsify"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// Options configures a Solve run.
type Options struct {
	// Eps is the accuracy target ε (result aims at (1-O(ε))·OPT).
	Eps float64
	// P is the space exponent p > 1: central space ~ n^(1+1/p), rounds
	// O(p/ε).
	P float64
	// Seed drives all randomness.
	Seed uint64
	// Profile selects the constant regime; nil means Practical(eps).
	Profile *Profile
	// MaxRounds overrides the round budget (0 = derive from profile).
	MaxRounds int
	// Workers shards the per-edge/per-vertex work of every sampling
	// round (promise-multiplier evaluation, deferred-sparsifier
	// construction, refinement reveals, the per-level initial solutions)
	// across a worker pool: 0 = GOMAXPROCS, 1 = exact sequential
	// execution. The Result is bit-identical for every worker count —
	// randomness is pre-split per shard and shard outputs merge in
	// deterministic order (see internal/parallel); only wall-clock time
	// changes. The sequential oracle-use loop is untouched: that
	// adaptivity is the quantity the paper bounds, not an implementation
	// artifact.
	Workers int
	// Warm, when non-nil, requests a warm start from a prior solution's
	// dual snapshot: when the snapshot addresses the same discretization
	// (same n, ε, W*, B — see WarmDuals), the solve installs it in place
	// of the Lemma 20/21 initial solution and typically converges in
	// fewer rounds and passes; otherwise it falls back to the certified
	// cold start. Stats.WarmStarted reports which path ran.
	Warm *WarmDuals
}

// Stats reports the resource usage the paper's theorems bound.
type Stats struct {
	SamplingRounds  int   // adaptive access rounds (Theorem 15: O(p/ε))
	InitRounds      int   // rounds consumed by the initial solution (Lemma 20)
	OracleUses      int   // sequential deferred-sparsifier uses ("adaptivity at use")
	MicroCalls      int   // MicroOracle invocations
	PackIters       int   // inner packing iterations
	Passes          int   // metered passes over the input Source (W* scan, level census, λ evaluations, one fused sampling pass per round)
	PeakSampleEdges int   // peak sampled edges held centrally
	PeakWords       int   // peak words of central storage ever metered (samples, staging chunks, init transients) — the SpaceAccountant's high-water mark
	DualStateWords  int   // final size of the dual state
	UnionSizes      []int // per round: offline-solve union size
	LambdaTrace     []float64
	BetaTrace       []float64
	WitnessEvents   int // MicroOracle part (i) firings
	EarlyStopped    bool
	// WarmStarted reports that the run installed a prior solution's dual
	// snapshot instead of building the Lemma 20/21 initial solution (a
	// requested-but-invalid snapshot falls back cold and reports false).
	WarmStarted bool
	// RoundOfBestMatching is the (1-based) sampling round in which the
	// reported matching was found — the primal convergence point, usually
	// far earlier than the dual early-stop.
	RoundOfBestMatching int
}

// Result is the outcome of a Solve run.
type Result struct {
	// Matching is the best integral b-matching found (indices into the
	// input stream's edge sequence, with multiplicities).
	Matching *matching.Matching
	// Weight is the matching's weight in original units.
	Weight float64
	// DualObjective is the final dual objective scaled back to original
	// units; DualObjective/Lambda upper-bounds the optimum over the kept
	// (non-discretization-dropped) edges when Lambda > 0.
	DualObjective float64
	// Lambda is the final minimum normalized coverage over kept edges.
	Lambda float64
	Stats  Stats
	// Warm is a detached snapshot of the final dual state, installable
	// into a later solve via Options.Warm (nil when the run aborted
	// before the duals existed).
	Warm *WarmDuals
}

// CertifiedUpperBound returns the dual certificate's upper bound on the
// optimum matching weight: (dual objective)/λ with the (1+ε)
// discretization slack folded in. Valid (up to the weight mass dropped
// by discretization, < m·W*/B) whenever Lambda > 0, by weak duality of
// the layered relaxation LP10 against LP6. Returns +Inf when Lambda <= 0.
func (r *Result) CertifiedUpperBound(eps float64) float64 {
	if r.Lambda <= 0 {
		return math.Inf(1)
	}
	return r.DualObjective / r.Lambda * (1 + eps)
}

// solveChunkEdges is the staging-buffer granule of the fused sampling
// pass: edges are read from the Source in chunks of this size, promise
// multipliers are evaluated over the chunk in parallel shards, and the
// chunk is dispatched into the streaming sparsifier constructions. It is
// a constant so chunk boundaries — which never affect results anyway —
// are also independent of everything. The buffer is metered against the
// SpaceAccountant; it is the only per-round state whose size is not
// already bounded by the sample.
const solveChunkEdges = 1 << 12

// chunkEdge is one staged edge of the fused sampling pass.
type chunkEdge struct {
	u, v  int32
	k     int32 // weight level
	orig  int   // index in the source stream
	local int   // index within the level's own sequence
	w     float64
	sigma float64 // promise multiplier, filled per chunk
}

// SolveGraph runs the dual-primal algorithm on a materialized in-memory
// graph — the historical entry point, now a thin wrapper that serves the
// graph to Solve through the in-memory Source backend.
func SolveGraph(g *graph.Graph, opt Options) (*Result, error) {
	return Solve(stream.NewEdgeStream(g), opt)
}

// Solve runs the dual-primal algorithm against any stream.Source: an
// in-memory edge list, an on-disk binary file, a replayed generator, or
// a sharded composition. The solver holds O(n) dual state plus the
// O(n^(1+1/p))-word samples and a constant-size staging chunk; it never
// materializes the edge set, so instances larger than memory run through
// the file- or generator-backed Sources unchanged. The Result is a pure
// function of (source edge sequence, Options) — every backend serving
// the same sequence yields a bit-identical Result for any worker count.
func Solve(src stream.Source, opt Options) (*Result, error) {
	return SolveWith(context.Background(), src, opt, Extensions{})
}

// SolveWith is the engine entry point behind the public repro/match
// facade: Solve plus the optional resource extensions. The dual-primal
// solver is an engine.Algorithm — the first one — and SolveWith is a
// thin adapter that runs it under engine.Drive, the shared round-loop
// driver that owns cancellation, budgets and observer events. The
// context is honored at pass and round boundaries — sequential sweeps
// abort within a constant number of edges of cancellation on every
// backend, and the engine returns ctx.Err() at the next checkpoint.
// Budget axes are enforced at the same checkpoints; a trip returns the
// best-so-far primal result together with a *BudgetError
// (errors.Is-matchable against ErrBudgetExceeded) naming the axis. The
// returned *Result is non-nil whenever the options validate: on
// cancellation or a budget trip its Matching is the best found so far
// (feasibility is invariant — the matching only ever grows by whole
// offline solutions) and its Stats meter what was actually consumed.
// With an ample budget, a nil observer, and an uncancelled context,
// SolveWith is bit-identical to Solve: enforcement only reads meters the
// engine already keeps.
func SolveWith(ctx context.Context, src stream.Source, opt Options, ext Extensions) (*Result, error) {
	s, err := NewSession(opt)
	if err != nil {
		return nil, err
	}
	return s.Solve(ctx, src, ext, opt.Warm)
}

// dualPrimal is the paper's dual-primal solver (Algorithms 2/4) as an
// engine.Algorithm: Init runs the pre-loop passes (W* scan, level
// census, Lemma 20/21 initial solution, first λ evaluation) and Round is
// one sampling round — t deferred sparsifiers in a fused chunked pass,
// the offline solve on the sampled union, the sequential refine-and-use
// oracle loop, the λ re-evaluation. The engine.Run owns the accountant,
// pass meter, round counter, budgets and observer; this struct owns the
// dual state and everything derived from the instance.
type dualPrimal struct {
	opt  Options
	prof Profile
	res  *Result
	warm *WarmDuals // per-run warm-start request (nil = cold)

	// Instance-derived state, set by Init. The dual state is retained
	// across session runs (reuseOrNewState zeroes it in place when the
	// instance shape repeats).
	src        stream.Source
	eps        float64
	n, nl      int
	scheme     *levels.Scheme
	state      *dualState
	rng        *xrand.RNG
	workers    int
	maxNorm    int
	gammaChi   float64
	tUses      int
	maxRounds  int
	target     float64
	mKept      float64
	liveLevels []int
	levelCount []int // arena-backed

	// The (use, level) job grid of one sampling round, fixed across
	// rounds: job (q, slot) owns the deferred construction for use q at
	// level liveLevels[slot].
	jobs        []defJob
	chunk       []chunkEdge
	levelCursor []int // arena-backed
	slotOf      []int // arena-backed
	// Per-slot index lists into the chunk, rebuilt per dispatch (backing
	// arrays reused): each (use, level) job walks only its own level's
	// edges rather than rescanning the whole chunk.
	bySlot [][]int32

	// Round-loop scratch retained across rounds and runs: the (use,
	// slot) grids of deferred constructions, the offline-solve union
	// map and its sorted index list, the union subgraph, and the pool
	// of union-find forests every construction draws from. All of it is
	// rebuilt from scratch-equivalent state each round; retention only
	// removes the per-round make/alloc traffic the allocation audit
	// found here.
	batches   [][]*sparsify.DeferredBuilder
	batchBuf  []*sparsify.DeferredBuilder
	defs      [][]*sparsify.Deferred
	defBuf    []*sparsify.Deferred
	union     map[int]graph.Edge
	unionIdx  []int
	sub       *graph.Graph
	ufScratch *sparsify.Scratch
	scratch   *oracleScratch // refine + oracle-loop working buffers

	// Trajectory and best-so-far primal state.
	lambda       float64
	beta         float64
	bestHat      float64
	bestWeight   float64
	best         *matching.Matching
	earlyStopped bool
}

type defJob struct{ q, slot, k int }

// newDualPrimal validates the options and builds a fresh solver
// instance for one run.
func newDualPrimal(opt Options) (*dualPrimal, error) {
	if !(opt.Eps > 0) || opt.Eps >= 0.5 {
		return nil, errors.New("core: Eps must be in (0, 0.5)")
	}
	if !(opt.P > 1) {
		return nil, errors.New("core: P must be > 1")
	}
	prof := Practical(opt.Eps)
	if opt.Profile != nil {
		prof = *opt.Profile
	}
	return &dualPrimal{opt: opt, prof: prof, res: &Result{}, warm: opt.Warm}, nil
}

// Reset prepares the solver for another run (the engine.Algorithm
// reuse contract): per-run results, duals-trajectory and convergence
// state clear; the retained scratch — the dual state's backing table,
// the job grids, the staging chunk, the union map/subgraph and the
// union-find pool — stays warm for Init to reuse. The best-so-far
// matching is released, not truncated: the previous run's Outcome owns
// those slices.
func (a *dualPrimal) Reset(engine.Params) {
	a.res = &Result{}
	a.warm = a.opt.Warm
	a.src = nil
	a.scheme = nil
	a.rng = nil
	a.liveLevels = a.liveLevels[:0]
	a.jobs = a.jobs[:0]
	a.levelCount, a.levelCursor, a.slotOf = nil, nil, nil // arena-backed; re-taken at Init
	a.chunk = a.chunk[:0]
	// Drop the previous run's construction pointers so their samples can
	// be collected between runs; the grid backing stays.
	clear(a.batchBuf)
	clear(a.defBuf)
	a.lambda, a.beta = 0, 0
	a.bestHat, a.bestWeight = 0, 0
	a.best = nil
	a.earlyStopped = false
}

// SetWarm installs the warm-start request for the next run (nil =
// cold). Sessions call it after Reset, before the drive.
func (a *dualPrimal) SetWarm(w *WarmDuals) { a.warm = w }

// retainedWords sums the solver-owned pooled scratch the session arena
// cannot see: the sparsifier scratch (forests, shells, item and reveal
// buffers) and the oracle-loop scratch. Zero before the first Init.
func (a *dualPrimal) retainedWords() int {
	w := 0
	if a.ufScratch != nil {
		w += a.ufScratch.RetainedWords()
	}
	if a.scratch != nil {
		w += a.scratch.retainedWords()
	}
	return w
}

// bOf adapts the source's capacities to the dual-state callbacks.
func (a *dualPrimal) bOf(v int) int { return a.src.B(v) }

// Init runs everything before the sampling loop. Checkpoints sit after
// every metered pass: a cancelled W* scan yields a garbage W* (typically
// 0), which must surface as ctx.Err() with the best-so-far result, not
// as a scheme-validation error.
func (a *dualPrimal) Init(_ context.Context, run *engine.Run, src stream.Source) error {
	a.src = src
	a.eps = a.opt.Eps
	a.n = src.N()

	// Pass: W* scan — the only instance statistic the discretization
	// needs that is not known a priori.
	wstar := stream.MaxWeight(src)
	if err := run.Check(); err != nil {
		return err
	}
	scheme, err := levels.NewScheme(a.eps, wstar, src.TotalB())
	if err != nil {
		// A degenerate instance (e.g. a custom backend serving only
		// zero-weight edges), not bad options: the documented non-nil
		// Result contract still holds, with the meters filled in.
		return err
	}
	a.scheme = scheme
	a.rng = xrand.New(a.opt.Seed)
	a.workers = parallel.Workers(a.opt.Workers)
	a.nl = scheme.NumLevels()
	a.maxNorm = int(math.Ceil(4 / a.eps))
	if a.prof.OddSetNormCap > 0 && a.maxNorm > a.prof.OddSetNormCap {
		a.maxNorm = a.prof.OddSetNormCap
	}
	if a.maxNorm < 3 {
		a.maxNorm = 3
	}

	// Pass: level census — how many edges live at each weight level. The
	// populated levels define the per-level streams of the initial
	// solution and the (use, level) sparsifier grid; the counts fix each
	// construction's subsampling depth.
	a.levelCount = run.Arena().Ints(a.nl)
	stream.ForEachBlocks(src, func(_ int, edges []graph.Edge) bool {
		for i := range edges {
			if k, ok := scheme.Level(edges[i].W); ok {
				a.levelCount[k]++
			}
		}
		return true
	})
	a.liveLevels = a.liveLevels[:0]
	for k, cnt := range a.levelCount {
		if cnt > 0 {
			a.liveLevels = append(a.liveLevels, k)
		}
	}
	if err := run.Check(); err != nil {
		return err
	}

	// ---- Initial solution (Lemmas 12, 20, 21) or warm start ----
	a.state = reuseOrNewState(a.state, scheme, a.n, a.prof.ZPruneRel)
	// The init-solution seed split is consumed on both paths so the
	// per-round sampling seeds below stay aligned between warm and cold
	// runs of the same configuration.
	initRNG := a.rng.Split(1)
	if a.warm.installable(a.n, a.eps, scheme) {
		// Warm start: install the prior solution's duals in place of the
		// initial solution. The certificate is unaffected — λ and the
		// objective are re-evaluated against this instance below and
		// every round — only the trajectory's starting point moves.
		a.warm.install(a.state)
		a.res.Stats.WarmStarted = true
	} else {
		initRounds := buildInitialSolution(src, a.liveLevels, scheme, a.prof, a.eps, a.opt.P,
			initRNG, run.Acct, a.state, a.workers)
		a.res.Stats.InitRounds = initRounds
	}
	if err := run.Check(); err != nil {
		return err
	}

	// ---- Outer loop parameters (Algorithms 2/4) ----
	//lint:powtable once per Init (γ = n^(1/2p), Theorem 3), not a per-round cost
	a.gammaChi = math.Pow(float64(a.n), 1/(2*a.opt.P))
	if a.gammaChi < 2 {
		a.gammaChi = 2
	}
	if a.prof.ChiOverride > 0 {
		a.gammaChi = a.prof.ChiOverride
	}
	a.tUses = int(math.Ceil(a.prof.UsesPerRoundScale * math.Log(a.gammaChi) / a.eps))
	if a.tUses < 1 {
		a.tUses = 1
	}
	a.maxRounds = a.opt.MaxRounds
	if a.maxRounds == 0 {
		a.maxRounds = int(math.Ceil(a.prof.MaxRoundsScale*3*a.opt.P/a.eps)) + 1
	}
	a.lambda = lambdaOf(src, scheme, a.state) // pass: initial λ evaluation
	if err := run.Check(); err != nil {
		return err
	}
	a.beta = a.state.Objective(a.bOf)
	if a.beta <= 0 {
		a.beta = 1e-12
	}
	a.target = 1 - 3*a.eps
	a.mKept = float64(src.Len())

	a.jobs = a.jobs[:0]
	for q := 0; q < a.tUses; q++ {
		for slot, k := range a.liveLevels {
			a.jobs = append(a.jobs, defJob{q: q, slot: slot, k: k})
		}
	}
	if a.chunk == nil {
		a.chunk = make([]chunkEdge, 0, solveChunkEdges)
	}
	a.levelCursor = run.Arena().Ints(a.nl)
	a.slotOf = run.Arena().Ints(a.nl)
	for slot, k := range a.liveLevels {
		a.slotOf[k] = slot
	}
	a.bySlot = resizeRows(a.bySlot, len(a.liveLevels))

	// Round-loop scratch, sized once per run from the (use, level) grid
	// and the instance; a session's next run finds it warm.
	a.batches, a.batchBuf = grid(a.batches, a.batchBuf, a.tUses, len(a.liveLevels))
	a.defs, a.defBuf = grid(a.defs, a.defBuf, a.tUses, len(a.liveLevels))
	if a.union == nil {
		a.union = make(map[int]graph.Edge)
	}
	if a.sub == nil || a.sub.N() != a.n {
		a.sub = graph.New(a.n)
	}
	if a.ufScratch == nil || a.ufScratch.N() != a.n {
		a.ufScratch = sparsify.NewScratch(a.n)
	}
	if a.scratch == nil {
		a.scratch = newOracleScratch()
	}
	return nil
}

// resizeRows reuses a slice-of-slices spine: the length becomes n, the
// surviving rows keep their backing arrays (callers truncate them with
// [:0] before refilling).
func resizeRows[T any](rows [][]T, n int) [][]T {
	for len(rows) < n {
		rows = append(rows, nil)
	}
	return rows[:n]
}

// grid carves an r×c grid of row views out of one flat buffer, reusing
// both allocations across runs. Stale entries from a previous round or
// run are left in place — every (row, col) cell is overwritten before
// it is read in each round — except that Reset clears the buffer so
// retired constructions do not outlive their run.
func grid[T any](rows [][]T, buf []T, r, c int) ([][]T, []T) {
	if cap(buf) >= r*c {
		buf = buf[:r*c]
	} else {
		buf = make([]T, r*c)
	}
	if cap(rows) >= r {
		rows = rows[:r]
	} else {
		rows = make([][]T, r)
	}
	for i := 0; i < r; i++ {
		rows[i] = buf[i*c : (i+1)*c : (i+1)*c]
	}
	return rows, buf
}

// Round runs one sampling round, or reports convergence. For ε >= 1/3
// the certificate target 1-3ε is non-positive and any dual point
// satisfies it; still run at least one sampling round so a matching is
// produced.
func (a *dualPrimal) Round(_ context.Context, run *engine.Run) (bool, error) {
	round := run.Rounds() // 0-based index of the round about to run
	if round >= a.maxRounds || (round > 0 && a.lambda >= a.target) {
		a.earlyStopped = a.lambda >= a.target
		return true, nil
	}
	run.Lambda, run.Beta = a.lambda, a.beta
	// The rounds budget trips inside BeginRound exactly when the loop
	// wants a round it is not allowed: a run that converges within
	// budget never trips.
	if err := run.BeginRound(); err != nil {
		return false, err
	}
	acct := run.Acct
	src := a.src
	scheme, state := a.scheme, a.state
	eps, wHat := a.eps, scheme.WHat
	a.res.Stats.LambdaTrace = append(a.res.Stats.LambdaTrace, a.lambda)
	a.res.Stats.BetaTrace = append(a.res.Stats.BetaTrace, a.beta)

	// Outer covering parameters for this phase (Theorem 5 via
	// Corollary 6): α from the current λ, σ = ε/(4αρo).
	alpha := 2 * math.Log(a.mKept/eps) / (math.Max(a.lambda, 1e-9) * eps)
	boost := a.prof.SigmaBoost
	if boost <= 0 {
		boost = 1
	}
	sigma := eps / (4 * alpha * a.prof.OuterRho) * boost
	if sigma > 0.5 {
		sigma = 0.5
	}

	// Sample t deferred sparsifiers, per weight level (Lemma 11: the
	// union of per-class sparsifiers is the sparsifier we need), in
	// ONE fused chunked pass over the source: each staged chunk gets
	// its promise multipliers ς_e = exp(-α(cov_e/ŵ_k - λ))/ŵ_k
	// evaluated in parallel shards (the broadcast read-only dual
	// state, exactly as the distributed mappers would), then streams
	// into every (use, level) construction. The (use, level) pairs
	// are independent given their seeds, so the seeds are split
	// sequentially up front — in the exact order the sequential loop
	// would draw them — and the constructions consume the chunk
	// concurrently, each slotted at its (q, level) position. Nothing
	// of size m is ever materialized: the staging chunk is constant,
	// the constructions hold only their samples.
	for q := 0; q < a.tUses; q++ {
		for slot, k := range a.liveLevels {
			b, berr := sparsify.NewDeferredBuilder(a.n, a.levelCount[k], a.gammaChi, sparsify.Config{
				Xi:      a.prof.SparsifierXi,
				K:       a.prof.SparsifierK,
				Seed:    a.rng.Split(uint64(round*1000 + q*100 + k)).Uint64(),
				Scratch: a.ufScratch,
			})
			if berr != nil {
				return false, berr
			}
			a.batches[q][slot] = b
		}
	}
	dispatch := func(buf []chunkEdge) {
		if len(buf) == 0 {
			return
		}
		parallel.ForEachShard(a.workers, len(buf), func(_ int, sh parallel.Range) {
			for i := sh.Lo; i < sh.Hi; i++ {
				ce := &buf[i]
				r := state.CoverageRatio(ce.u, ce.v, int(ce.k))
				ce.sigma = math.Exp(-alpha*(r-a.lambda)) / wHat(int(ce.k))
			}
		})
		for slot := range a.bySlot {
			a.bySlot[slot] = a.bySlot[slot][:0]
		}
		for i := range buf {
			slot := a.slotOf[buf[i].k]
			a.bySlot[slot] = append(a.bySlot[slot], int32(i))
		}
		parallel.Run(a.workers, len(a.jobs), func(ji int) {
			job := a.jobs[ji]
			b := a.batches[job.q][job.slot]
			for _, i := range a.bySlot[job.slot] {
				ce := &buf[i]
				b.Add(ce.local, ce.u, ce.v, ce.w, ce.orig, ce.sigma)
			}
		})
	}
	for k := range a.levelCursor {
		a.levelCursor[k] = 0
	}
	acct.Alloc(solveChunkEdges) // the staging buffer is central storage
	// Staging chunks cut at solveChunkEdges regardless of the delivered
	// block shape, so dispatch boundaries — and therefore every sampling
	// draw — are independent of the backend's block geometry.
	stream.ForEachBlocks(src, func(base int, edges []graph.Edge) bool {
		for i := range edges {
			e := edges[i]
			k, ok := scheme.Level(e.W)
			if !ok {
				continue
			}
			a.chunk = append(a.chunk, chunkEdge{
				u: e.U, v: e.V, k: int32(k),
				orig: base + i, local: a.levelCursor[k], w: e.W,
			})
			a.levelCursor[k]++
			if len(a.chunk) == solveChunkEdges {
				dispatch(a.chunk)
				a.chunk = a.chunk[:0]
			}
		}
		return true
	})
	if err := run.Check(); err != nil {
		return false, err
	}
	dispatch(a.chunk)
	a.chunk = a.chunk[:0]
	acct.Free(solveChunkEdges)
	// Seal the constructions (the criticalLevel scans fan out over
	// the job grid, each result landing in its own index-keyed slot —
	// defBuf is the flat backing of the defs grid and job ji owns cell
	// (q, slot) = (ji/L, ji%L) — so the merge order is job order for any
	// worker count). Finish also hands every construction's forests back
	// to the pool.
	parallel.Run(a.workers, len(a.jobs), func(ji int) {
		a.defBuf[ji] = a.batches[a.jobs[ji].q][a.jobs[ji].slot].Finish()
	})
	sampledTotal := 0
	for _, d := range a.defBuf {
		sampledTotal += d.Size()
	}
	acct.Alloc(sampledTotal)
	if cur := acct.Current(); cur > a.res.Stats.PeakSampleEdges {
		a.res.Stats.PeakSampleEdges = cur
	}
	if err := run.Check(); err != nil {
		return false, err
	}

	// Offline solve on the union of sampled edges (Algorithm 2 step
	// 5); raise β on improvement (step 6). The stored Items carry
	// endpoints and original weights, so the union subgraph is built
	// from the samples alone — no lookback into the source. The union
	// map, index list and subgraph are retained scratch, rebuilt in
	// place each round.
	clear(a.union)
	for q := range a.defs {
		for _, d := range a.defs[q] {
			for _, it := range d.Items() {
				a.union[it.Orig] = graph.Edge{U: it.U, V: it.V, W: it.W}
			}
		}
	}
	a.unionIdx = a.unionIdx[:0]
	//lint:ordered key collection, sort.Ints'd immediately below
	for idx := range a.union {
		a.unionIdx = append(a.unionIdx, idx)
	}
	sort.Ints(a.unionIdx)
	a.res.Stats.UnionSizes = append(a.res.Stats.UnionSizes, len(a.unionIdx))
	sub := a.sub
	sub.Clear()
	for v := 0; v < a.n; v++ {
		if b := src.B(v); b != 1 {
			sub.SetB(v, b)
		}
	}
	for _, idx := range a.unionIdx {
		e := a.union[idx]
		sub.MustAddEdge(int(e.U), int(e.V), e.W)
	}
	cand, _ := matching.OfflineB(sub, matching.OfflineConfig{ExactLimit: a.prof.OfflineExactLimit})
	candHat := 0.0
	for ci, si := range cand.EdgeIdx {
		mult := 1
		if cand.Mult != nil {
			mult = cand.Mult[ci]
		}
		if hk, ok := scheme.Level(sub.Edge(si).W); ok {
			candHat += wHat(hk) * float64(mult)
		}
	}
	if candHat > a.bestHat*(1+eps/8) || (a.best == nil || a.best.Size() == 0) && candHat > 0 {
		a.res.Stats.RoundOfBestMatching = round + 1
	}
	if candHat > a.bestHat {
		a.bestHat = candHat
		// Remap subgraph edge indices back to source indices.
		remap := &matching.Matching{Mult: []int{}}
		w := 0.0
		for ci, si := range cand.EdgeIdx {
			remap.EdgeIdx = append(remap.EdgeIdx, a.unionIdx[si])
			mult := 1
			if cand.Mult != nil {
				mult = cand.Mult[ci]
			}
			remap.Mult = append(remap.Mult, mult)
			w += sub.Edge(si).W * float64(mult)
		}
		a.best = remap
		a.bestWeight = w
	}
	if candHat > a.beta {
		a.beta = candHat * (1 + eps)
	}

	// Sequential refinement and use of the t sparsifiers (the right
	// half of Figure 1: no further input access).
	for q := 0; q < a.tUses; q++ {
		support := refineBatch(a.defs[q], a.liveLevels, scheme, state, alpha, a.lambda, a.prof.StaleRefinement, a.workers, a.scratch)
		a.res.Stats.OracleUses++
		mini := runMiniOracle(support, a.beta, eps, a.prof, a.bOf, wHat, a.nl, a.maxNorm, a.scratch)
		a.res.Stats.MicroCalls += mini.microCalls
		a.res.Stats.PackIters += mini.packIters
		if mini.matchingWitness {
			a.res.Stats.WitnessEvents++
			a.beta *= 1 + eps
			continue
		}
		if !mini.answer.isZero() {
			state.Average(sigma, &mini.answer)
		}
	}
	// Every sparsifier of the round is consumed: hand their pooled
	// containers (items, indexes, refinement buffers) back for the next
	// round's constructions. The freed words below are the same words a
	// cold round frees — pooling never touches the accountant.
	for _, d := range a.defBuf {
		d.Release()
	}
	acct.Free(sampledTotal)

	a.lambda = lambdaOf(src, scheme, state) // pass: λ re-evaluation
	if err := run.Check(); err != nil {
		return false, err
	}
	return false, nil
}

// Finish reports the best-so-far matching and the dual fields. It is
// the one block shared by the normal exit and every abort — a checkpoint
// can fire before the dual state exists, so nil state is legal. A budget
// trip fires only at pass/round boundaries, so its λ is the last
// completely evaluated one (0 if it tripped before any λ pass ran) and
// the certificate, when positive, stands; the driver zeroes λ for
// non-budget aborts (a cancellation can interrupt a λ pass mid-flight,
// leaving an unsound prefix-minimum).
func (a *dualPrimal) Finish(_ *engine.Run) (*matching.Matching, engine.Extras) {
	ex := engine.Extras{
		Weight:       a.bestWeight,
		Lambda:       a.lambda,
		EarlyStopped: a.earlyStopped,
	}
	if a.state != nil {
		a.res.Stats.DualStateWords = a.n*a.nl + 4*len(a.state.zsets)
		ex.DualObjective = a.scheme.Unscale(a.state.Objective(a.bOf))
	}
	return a.best, ex
}

func init() {
	engine.Register(engine.Info{
		Name:      "dual-primal",
		Model:     "semi-streaming / MPC / clique (Ahn–Guha)",
		Guarantee: "(1-O(ε))·OPT weighted b-matching + dual certificate",
		Resources: "O(n^(1+1/p)) words, O(p/ε) rounds, 3+2·rounds passes",
	}, func(p engine.Params) (engine.Algorithm, error) {
		return newDualPrimal(Options{Eps: p.Eps, P: p.P, Seed: p.Seed,
			Workers: p.Workers, MaxRounds: p.MaxRounds})
	})
}

// lambdaOf computes λ = min over the source's kept edges of the
// normalized coverage (one metered pass; in the paper's models this is
// one round of sketch evaluation).
func lambdaOf(src stream.Source, scheme *levels.Scheme, state *dualState) float64 {
	lam := math.Inf(1)
	stream.ForEachBlocks(src, func(_ int, edges []graph.Edge) bool {
		for i := range edges {
			if k, ok := scheme.Level(edges[i].W); ok {
				if r := state.CoverageRatio(edges[i].U, edges[i].V, k); r < lam {
					lam = r
				}
			}
		}
		return true
	})
	return lam
}

// innerWorkers splits a worker budget between an outer job fan-out and
// the sharded work inside each job: with fewer jobs than workers the
// leftover pool goes to the jobs' internals. Never affects results —
// every layer is bit-identical for any worker count — only utilization.
func innerWorkers(workers, jobs int) int {
	if jobs < 1 || workers <= jobs {
		return 1
	}
	return workers / jobs
}

// refineBatch reveals current multipliers for the stored edges of one
// deferred batch (Definition 4's reveal step) and emits the support. The
// reveals work entirely from the stored Items — endpoints and levels
// travel with the sample, so no source access happens here (the right
// half of Figure 1). With stale=true (ablation) the sampling-time
// promise values carried in the Items are used instead, skipping the
// refinement. The per-level reveals run across the worker pool — every
// reveal is a read-only evaluation of the frozen dual state — and the
// per-level supports concatenate in level order, so the support is
// identical for any worker count.
func refineBatch(defs []*sparsify.Deferred, liveLevels []int,
	scheme *levels.Scheme, state *dualState, alpha, lambda float64,
	stale bool, workers int, sc *oracleScratch) []supportEdge {

	if sc == nil {
		sc = newOracleScratch()
	}
	// The level fan-out is the outer parallelism; when there are fewer
	// levels than workers (single weight class is common for unit
	// weights) push the leftover pool down into the per-item reveals.
	// Each job writes only its own per-level row of the scratch, so the
	// retained buffers stay race-free.
	inner := innerWorkers(workers, len(defs))
	sc.perLevel = resizeRows(sc.perLevel, len(defs))
	parallel.Run(workers, len(defs), func(li int) {
		k := liveLevels[li]
		sp := defs[li].RefineWith(inner, func(it sparsify.Item) float64 {
			if stale {
				return it.Weight // the sampling-time promise value
			}
			r := state.CoverageRatio(it.U, it.V, k)
			return math.Exp(-alpha*(r-lambda)) / scheme.WHat(k)
		})
		out := sc.perLevel[li][:0]
		for _, item := range sp.Items {
			out = append(out, supportEdge{
				u: item.U, v: item.V, k: k,
				w:       item.Weight,
				origIdx: item.Orig,
			})
		}
		sc.perLevel[li] = out
	})
	support := sc.support[:0]
	for _, out := range sc.perLevel {
		support = append(support, out...)
	}
	sc.support = support
	return support
}

// buildInitialSolution computes per-level maximal b-matchings by
// filtering (Lemma 20) and installs the Lemma 21 assignment
// x_i(k) = r·ŵ_k on saturated vertices. Each level's stream is a
// Filtered view of the source — no per-level subgraph is materialized;
// the filter holds O(n) residuals and its metered transient sample.
// Returns the rounds consumed (levels run conceptually in parallel: the
// max over levels — and with workers > 1 they genuinely do, each with a
// pre-split seed, entries merging in level order). The jobs meter
// nothing shared; each level's FilterStats replay onto acct in level
// order afterwards, so acct's rounds, current, and peak end up exactly
// as a sequential run leaves them for any worker count — concurrent
// levels never inflate the measured peak.
func buildInitialSolution(src stream.Source, liveLevels []int, scheme *levels.Scheme,
	prof Profile, eps, p float64, rng *xrand.RNG, acct *stream.SpaceAccountant,
	state *dualState, workers int) int {

	r := prof.RInitFactor * eps
	type levelJob struct {
		k    int
		seed uint64
	}
	jobs := make([]levelJob, 0, len(liveLevels))
	for _, k := range liveLevels {
		jobs = append(jobs, levelJob{k: k, seed: rng.Split(uint64(k)).Uint64()})
	}
	type levelResult struct {
		entries    []xEntry
		rounds     int
		peakSample int
	}
	results := parallel.Map(workers, len(jobs), func(ji int) levelResult {
		j := jobs[ji]
		view := stream.NewFilter(src, func(_ int, e graph.Edge) bool {
			ek, ok := scheme.Level(e.W)
			return ok && ek == j.k
		})
		_, stats := matching.MaximalBMatchingFilter(view, p, j.seed, nil)
		var entries []xEntry
		for v := 0; v < src.N(); v++ {
			if stats.FinalResidual[v] == 0 { // saturated at level k
				entries = append(entries, xEntry{v: int32(v), k: j.k, val: r * scheme.WHat(j.k)})
			}
		}
		return levelResult{entries: entries, rounds: stats.Rounds, peakSample: stats.PeakSample}
	})
	maxRounds := 0
	var entries []xEntry
	for _, lr := range results {
		if lr.rounds > maxRounds {
			maxRounds = lr.rounds
		}
		entries = append(entries, lr.entries...)
		// Replay: a sequential run meters each level's rounds and holds
		// its peak transiently before freeing it all (filters free every
		// allocation before returning).
		for i := 0; i < lr.rounds; i++ {
			acct.BeginRound()
		}
		acct.Alloc(lr.peakSample)
		acct.Free(lr.peakSample)
	}
	state.SetInit(entries)
	for i := 0; i < maxRounds; i++ {
		acct.BeginRound()
	}
	return maxRounds
}
