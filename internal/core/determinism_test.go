package core

import (
	"testing"
)

// Pinning tests for the sorted-iteration discipline (lines the maprange
// analyzer polices). Both tests use adversarial magnitudes (±1e16 next
// to O(1) terms) so that summing in a different order changes the float
// result by several ulps of the large intermediate — enough to flip a
// comparison. Go randomizes map iteration per range statement, so the
// pre-fix code gave different answers call to call; these tests fail on
// it with overwhelming probability.

func TestCheckLP7Deterministic(t *testing.T) {
	// One support edge (0,1) at level 0, ŵ_0 = 1. The witness carries μ
	// rows {1e16, 1, -1e16}: in exact arithmetic the objective is
	// y_0 - 3·(1e16 + 1 - 1e16) = 10 - 3 = 7, but float evaluation
	// lands a few ulps-of-3e16 away (≈4 or 8 depending on order). With
	// (1-ε)β = 6 the verdict sits inside that band: some iteration
	// orders failed the objective check, others passed it and tripped
	// the vertex-capacity check instead.
	in := microInput{
		edges:   []supportEdge{{u: 0, v: 1, k: 0, w: 1}},
		zeta:    map[rowKey]float64{},
		rho:     1,
		beta:    8,
		eps:     0.25,
		bOf:     func(int) int { return 1 },
		wHat:    unitWHat,
		nLevels: 1,
		maxNorm: 3,
	}
	w := &lp7Witness{
		y: []float64{10},
		mu: map[rowKey]float64{
			{0, 0}: 1e16,
			{1, 0}: 1,
			{2, 0}: -1e16,
		},
		beta: 8,
	}
	first := checkLP7(in, w, 0)
	if first != "objective below (1-eps)beta" {
		t.Fatalf("sorted-order verdict changed: %q", first)
	}
	for i := 0; i < 300; i++ {
		if got := checkLP7(in, w, 0); got != first {
			t.Fatalf("call %d: verdict %q, previous calls said %q", i, got, first)
		}
	}
}

func TestObjectiveDeterministic(t *testing.T) {
	// maxPerVertex holds {1, 1, 1e16}. Sorted by vertex the sum is
	// (1+1)+1e16 = 1e16+2 exactly; starting from 1e16 instead, each +1
	// is a round-to-even tie that vanishes, giving 1e16. The pre-fix
	// map-order sum returned either value depending on the run.
	a := &oracleAnswer{
		xEntries: []xEntry{
			{v: 0, val: 1},
			{v: 1, val: 1},
			{v: 2, val: 1e16},
		},
	}
	bOf := func(int) int { return 1 }
	const want = 1e16 + 2
	for i := 0; i < 300; i++ {
		if got := a.objective(bOf); got != want {
			t.Fatalf("call %d: objective %v, want exactly %v", i, got, want)
		}
	}
}
