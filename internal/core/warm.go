package core

// Warm-started duals ("Faster Matchings via Learned Duals",
// arXiv:2107.09770, transplanted onto the covering framework): a
// finished solve snapshots its dual state, and a later solve on a
// similar instance can install that snapshot in place of the Lemma
// 20/21 initial solution, entering the sampling loop with a dual point
// that is already close to feasible for the drifted instance. The
// correctness argument is the one the paper's certificate already
// makes: λ and the dual objective are re-evaluated against the *current*
// instance every round, so the certificate (dual objective / λ) stands
// by weak duality no matter where the starting duals came from — a warm
// start can only change how many rounds the trajectory needs, never
// what a positive certificate means.
//
// Validity and the certified fallback: installing a snapshot is only
// meaningful when both solves discretize weights identically — same
// vertex count, same ε, and the same (W*, B) pair, which fully
// determine the level scheme. When any of those drifted, the snapshot's
// (vertex, level) grid no longer addresses the new instance and the
// solve falls back to the cold initial solution, whose Lemma 20/21
// guarantees certify the run exactly as if no warm start had been
// requested. Stats.WarmStarted reports which path ran.

import "repro/internal/levels"

// WarmDuals is a portable snapshot of a solve's final dual state,
// detached from the solver that produced it: installing it cannot alias
// live session state, and the producing session reusing its buffers
// cannot corrupt it.
type WarmDuals struct {
	// N, Eps, WStar, TotalB fingerprint the discretization the snapshot
	// was taken under; all four must match for the snapshot to be
	// installable (they fully determine the level scheme).
	N      int
	Eps    float64
	WStar  float64
	TotalB int
	// NumLevels is the level count of the scheme (derived, kept for the
	// flat X layout).
	NumLevels int
	// X is the flat [vertex*NumLevels + level] table of x_i(k) values in
	// actual (unscaled) units.
	X []float64
	// Z holds the odd-set duals in actual units.
	Z []WarmZSet
}

// WarmZSet is one odd-set dual z_{U,ℓ} of a snapshot.
type WarmZSet struct {
	Members []int32
	Level   int
	Val     float64
}

// snapshotDuals copies the run's final dual state into a detached
// WarmDuals. Nil when the run aborted before the state existed.
func (a *dualPrimal) snapshotDuals() *WarmDuals {
	st := a.state
	if st == nil || a.scheme == nil {
		return nil
	}
	w := &WarmDuals{
		N:         a.n,
		Eps:       a.eps,
		WStar:     a.scheme.WStar,
		TotalB:    int(a.scheme.B),
		NumLevels: st.nl,
		X:         make([]float64, st.n*st.nl),
	}
	for v := 0; v < st.n; v++ {
		row := st.xik[v]
		for k, val := range row {
			w.X[v*st.nl+k] = val * st.scale
		}
	}
	// All member lists share one backing array: the snapshot runs on
	// every dual-primal solve (the Result contract is that Warm is
	// always installable later), so its own allocation count must stay
	// O(1) in the number of odd sets.
	total := 0
	live := 0
	for _, zs := range st.zsets {
		if zs.val != 0 {
			total += len(zs.members)
			live++
		}
	}
	if live > 0 {
		backing := make([]int32, 0, total)
		w.Z = make([]WarmZSet, 0, live)
		for _, zs := range st.zsets {
			if zs.val == 0 {
				continue
			}
			lo := len(backing)
			backing = append(backing, zs.members...)
			w.Z = append(w.Z, WarmZSet{
				Members: backing[lo:len(backing):len(backing)],
				Level:   zs.level,
				Val:     zs.val * st.scale,
			})
		}
	}
	return w
}

// installable reports whether the snapshot addresses the same
// discretization as the current instance.
func (w *WarmDuals) installable(n int, eps float64, scheme *levels.Scheme) bool {
	return w != nil &&
		w.N == n &&
		w.Eps == eps &&
		w.WStar == scheme.WStar &&
		w.TotalB == int(scheme.B) &&
		w.NumLevels == scheme.NumLevels() &&
		len(w.X) == n*scheme.NumLevels()
}

// install seeds a fresh dual state from the snapshot. Must be called on
// a state with scale 1 and no z-sets (the state Init just built).
func (w *WarmDuals) install(st *dualState) {
	for v := 0; v < st.n; v++ {
		copy(st.xik[v], w.X[v*st.nl:(v+1)*st.nl])
	}
	for _, z := range w.Z {
		if z.Val <= 0 || len(z.Members) == 0 {
			continue
		}
		// The member list is aliased, not copied: both the snapshot and
		// the state treat members as immutable, and snapshotDuals copies
		// outward, so the sharing is never observable.
		st.addZSet(z.Members, z.Level, z.Val)
	}
}
