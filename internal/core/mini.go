package core

import (
	"repro/internal/pack"
)

// MiniOracle — Theorem 4. Solves Sparse for one refined deferred
// sparsifier: find x̃ with
//
//	(uˢ)ᵀAx̃ >= (1-ε/8)(uˢ)ᵀc,  P_o x̃ <= 2q_o,  G(uˢ,x̃),  Q̃(β)
//
// by running the fractional packing framework (Theorem 7 / Corollary 8)
// over the P_o rows, with Oracle-P implemented from the MicroOracle via
// the ϱ binary search of Lemma 10. The returned answer mirrors the
// packing framework's own averaging exactly (via pack.Options.OnAccept),
// so the P_o bounds proved for the framework's x apply verbatim to it.
type miniResult struct {
	matchingWitness bool
	answer          oracleAnswer
	microCalls      int
	packIters       int
}

// answerAccum mirrors x ← (1-σ)x + σx̃ over sparse answers with a global
// scale factor. Its containers come from the scratch (entries are value
// copies; the member slices inside zEntries stay owned by their fresh
// allocations), so the growth across a packing run is retained for the
// next oracle use.
type answerAccum struct {
	scale float64
	acc   oracleAnswer
	sc    *oracleScratch
}

func newAnswerAccum(first *oracleAnswer, sc *oracleScratch) *answerAccum {
	a := &answerAccum{scale: 1, sc: sc}
	a.acc.xEntries = append(sc.accX[:0], first.xEntries...)
	a.acc.zEntries = append(sc.accZ[:0], first.zEntries...)
	return a
}

func (a *answerAccum) step(sigma float64, ans *oracleAnswer) {
	a.scale *= 1 - sigma
	inv := sigma / a.scale
	for _, xe := range ans.xEntries {
		a.acc.xEntries = append(a.acc.xEntries, xEntry{xe.v, xe.k, xe.val * inv})
	}
	for _, ze := range ans.zEntries {
		a.acc.zEntries = append(a.acc.zEntries, zEntry{ze.members, ze.level, ze.val * inv})
	}
}

func (a *answerAccum) final() oracleAnswer {
	// Retain the grown backing for the scratch's next accumulator; the
	// final answer is consumed (copied into the dual state) before the
	// next MiniOracle call reuses either buffer.
	a.sc.accX, a.sc.accZ = a.acc.xEntries, a.acc.zEntries
	out := oracleAnswer{xEntries: a.sc.finX[:0], zEntries: a.sc.finZ[:0]}
	for _, xe := range a.acc.xEntries {
		out.xEntries = append(out.xEntries, xEntry{xe.v, xe.k, xe.val * a.scale})
	}
	for _, ze := range a.acc.zEntries {
		out.zEntries = append(out.zEntries, zEntry{ze.members, ze.level, ze.val * a.scale})
	}
	a.sc.finX, a.sc.finZ = out.xEntries, out.zEntries
	return out
}

// runMiniOracle executes the inner loop for a support. sc supplies the
// retained scratch of the sequential oracle loop; nil allocates a fresh
// one (the cold path, bit-identical by the scratch contract).
func runMiniOracle(edges []supportEdge, beta, eps float64, prof Profile,
	bOf func(v int) int, wHat func(k int) float64, nLevels, maxNorm int,
	sc *oracleScratch) miniResult {

	if sc == nil {
		sc = newOracleScratch()
	}
	sc.beginMini()
	res := miniResult{}
	if len(edges) == 0 {
		return res
	}
	// P_o rows: (i,k) pairs with incident support edges; q_o = 3ŵ_k.
	rowIndex := sc.rowIndex
	rows := sc.rows
	vertexRows := sc.vertexRows
	for _, e := range edges {
		for _, rk := range [2]rowKey{{e.u, e.k}, {e.v, e.k}} {
			if _, ok := rowIndex[rk]; !ok {
				rowIndex[rk] = len(rows)
				if _, seen := vertexRows[rk.v]; !seen {
					vertexRows[rk.v] = sc.rowList()
				}
				vertexRows[rk.v] = append(vertexRows[rk.v], len(rows))
				rows = append(rows, rk)
			}
		}
	}
	sc.rows = rows
	// Row values of an answer: (2x_i(k) + Σ_{ℓ<=k} Σ_{U∋i} z_{U,ℓ}) / 3ŵ_k.
	rowValues := func(ans *oracleAnswer) []float64 {
		rv := sc.f64s.get(len(rows))
		for _, xe := range ans.xEntries {
			if ri, ok := rowIndex[rowKey{xe.v, xe.k}]; ok {
				rv[ri] += 2 * xe.val
			}
		}
		for _, ze := range ans.zEntries {
			for _, m := range ze.members {
				for _, ri := range vertexRows[m] {
					if rows[ri].k >= ze.level {
						rv[ri] += ze.val
					}
				}
			}
		}
		for ri, rk := range rows {
			rv[ri] /= 3 * wHat(rk.k)
		}
		return rv
	}
	usC := 0.0
	for _, e := range edges {
		usC += wHat(e.k) * e.w
	}

	var accum *answerAccum
	var pending oracleAnswer

	// Oracle-P: Lemma 10's binary search over ϱ.
	oracle := func(z []float64, _ int) ([]float64, bool) {
		// ζ_{i,k} = z_row / (3ŵ_k) (the PST multipliers carry 1/d_r).
		zeta := sc.zeta
		clear(zeta)
		zTqo := 0.0
		for ri, rk := range rows {
			if z[ri] > 0 {
				zeta[rk] = z[ri] / (3 * wHat(rk.k))
				zTqo += z[ri]
			}
		}
		if zTqo <= 0 {
			zTqo = 1e-300
		}
		upsilon := (13.0 / 12) * zTqo
		rho0 := 12 * usC / (13 * zTqo)
		call := func(rho float64) (microResult, []float64, float64) {
			res.microCalls++
			mr := runMicroOracleScratch(microInput{
				edges: edges, zeta: zeta, rho: rho, beta: beta, eps: eps,
				bOf: bOf, wHat: wHat, nLevels: nLevels, maxNorm: maxNorm,
				noOdd: prof.DisableOddSets,
			}, sc)
			rv := rowValues(&mr.answer)
			zPo := 0.0
			for ri := range rows {
				zPo += z[ri] * rv[ri]
			}
			return mr, rv, zPo
		}
		rho1 := eps * usC / (16 * zTqo)
		mr, rv, zPo := call(rho1)
		if mr.matchingWitness {
			res.matchingWitness = true
			return nil, false
		}
		if zPo <= upsilon {
			pending = mr.answer
			return rv, true
		}
		// Binary search: lo violates Eq 2 (zᵀP_o x > Υ), hi satisfies.
		lo, hi := rho1, rho0
		loAns, loRv, loZ := mr.answer, rv, zPo
		var hiAns oracleAnswer
		var hiRv []float64
		hiZ := 0.0
		hiSet := false
		for step := 0; step < prof.BinSearchCap && hi-lo > eps*rho0/16; step++ {
			mid := (lo + hi) / 2
			m, mrv, mz := call(mid)
			if m.matchingWitness {
				res.matchingWitness = true
				return nil, false
			}
			if mz <= upsilon {
				hi, hiAns, hiRv, hiZ, hiSet = mid, m.answer, mrv, mz, true
			} else {
				lo, loAns, loRv, loZ = mid, m.answer, mrv, mz
			}
		}
		if !hiSet {
			// ϱ0 makes x = 0 feasible for Eq 1; an all-zero answer
			// trivially satisfies Eq 2.
			m, mrv, mz := call(rho0)
			if m.matchingWitness {
				res.matchingWitness = true
				return nil, false
			}
			hiAns, hiRv, hiZ = m.answer, mrv, mz
			if hiZ > upsilon {
				// Still violating at ϱ0 (numerical corner); fall back to
				// the zero answer.
				hiAns = oracleAnswer{}
				hiRv = sc.f64s.get(len(rows))
				hiZ = 0
			}
		}
		// Convex combination with s1·Υ1 + s2·Υ2 = Υ.
		den := loZ - hiZ
		s1 := 0.0
		if den > 1e-300 {
			s1 = (upsilon - hiZ) / den
		}
		if s1 < 0 {
			s1 = 0
		}
		if s1 > 1 {
			s1 = 1
		}
		s2 := 1 - s1
		pending = combineAnswers(&loAns, s1, &hiAns, s2, sc)
		crv := sc.f64s.get(len(rows))
		for ri := range rows {
			crv[ri] = s1*loRv[ri] + s2*hiRv[ri]
		}
		return crv, true
	}

	// First oracle call provides the packing framework's initial x0.
	firstRv, ok := oracle(uniform(len(rows), sc), 0)
	if !ok {
		return res
	}
	accum = newAnswerAccum(&pending, sc)
	pres, err := pack.Solve(firstRv, oracle, pack.Options{
		Delta:    eps / 6,
		RhoPrime: prof.InnerRho(eps),
		MaxIters: prof.InnerIterCap,
		OnAccept: func(_ int, sigma float64) { accum.step(sigma, &pending) },
	})
	if err != nil {
		return res
	}
	res.packIters = pres.Iters + 1
	if res.matchingWitness {
		return res
	}
	res.answer = accum.final()
	return res
}

func uniform(n int, sc *oracleScratch) []float64 {
	u := sc.f64s.get(n)
	for i := range u {
		u[i] = 1
	}
	return u
}

// combineAnswers returns s1·a + s2·b in the scratch's combination
// buffers — one combined answer is alive at a time (the packing loop
// consumes it via OnAccept before the next oracle invocation).
func combineAnswers(a *oracleAnswer, s1 float64, b *oracleAnswer, s2 float64, sc *oracleScratch) oracleAnswer {
	out := oracleAnswer{xEntries: sc.combX[:0], zEntries: sc.combZ[:0]}
	if s1 > 0 {
		for _, xe := range a.xEntries {
			out.xEntries = append(out.xEntries, xEntry{xe.v, xe.k, xe.val * s1})
		}
		for _, ze := range a.zEntries {
			out.zEntries = append(out.zEntries, zEntry{ze.members, ze.level, ze.val * s1})
		}
	}
	if s2 > 0 {
		for _, xe := range b.xEntries {
			out.xEntries = append(out.xEntries, xEntry{xe.v, xe.k, xe.val * s2})
		}
		for _, ze := range b.zEntries {
			out.zEntries = append(out.zEntries, zEntry{ze.members, ze.level, ze.val * s2})
		}
	}
	sc.combX, sc.combZ = out.xEntries, out.zEntries
	return out
}
