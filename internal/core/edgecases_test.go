package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/matching"
)

// Edge-case and stress tests for the end-to-end solver.

func quickSolve(t *testing.T, g *graph.Graph, eps float64) *Result {
	t.Helper()
	res, err := SolveGraph(g, Options{Eps: eps, P: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Matching.Validate(g); err != nil {
		t.Fatalf("invalid matching: %v", err)
	}
	return res
}

func TestSolveDisconnectedComponents(t *testing.T) {
	// Two far-apart cliques plus isolated vertices.
	g := graph.New(24)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			g.MustAddEdge(i, j, 5)
			g.MustAddEdge(10+i, 10+j, 3)
		}
	}
	res := quickSolve(t, g, 0.25)
	_, opt := matching.MaxWeightMatchingFloat(g, false)
	if res.Weight < opt*(1-0.3) {
		t.Fatalf("disconnected ratio %f", res.Weight/opt)
	}
}

func TestSolveStarGraph(t *testing.T) {
	// A star can match only one edge; the heaviest should be found.
	g := graph.New(30)
	for i := 1; i < 30; i++ {
		g.MustAddEdge(0, i, float64(i))
	}
	res := quickSolve(t, g, 0.25)
	if res.Weight != 29 {
		t.Fatalf("star weight %f, want 29", res.Weight)
	}
}

func TestSolveStarWithCapacity(t *testing.T) {
	// With b(center)=5 the star matches its 5 heaviest edges.
	g := graph.New(30)
	g.SetB(0, 5)
	for i := 1; i < 30; i++ {
		g.MustAddEdge(0, i, float64(i))
	}
	res := quickSolve(t, g, 0.25)
	want := float64(29 + 28 + 27 + 26 + 25)
	if res.Weight < want*(1-0.25) {
		t.Fatalf("capacitated star %f, want ~%f", res.Weight, want)
	}
}

func TestSolveLongPath(t *testing.T) {
	const n = 101
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	res := quickSolve(t, g, 0.25)
	if res.Matching.Size() < 50*3/4 {
		t.Fatalf("path matching size %d, optimum 50", res.Matching.Size())
	}
}

func TestSolveParallelEdges(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 1, 9) // heavier parallel copy
	g.MustAddEdge(2, 3, 4)
	res := quickSolve(t, g, 0.25)
	if res.Weight < 13*(1-0.3) {
		t.Fatalf("parallel-edge weight %f, want ~13", res.Weight)
	}
}

func TestSolveHugeDynamicRange(t *testing.T) {
	// Weights spanning 6 orders of magnitude: discretization must keep
	// the heavy edges and may drop the negligible ones.
	g := graph.New(8)
	g.MustAddEdge(0, 1, 1e6)
	g.MustAddEdge(2, 3, 1e3)
	g.MustAddEdge(4, 5, 1)
	g.MustAddEdge(6, 7, 1e-3) // dropped by discretization (< W*/B)
	res := quickSolve(t, g, 0.25)
	if res.Weight < (1e6+1e3+1)*(1-0.3) {
		t.Fatalf("dynamic-range weight %f", res.Weight)
	}
}

func TestSolveEpsNearHalf(t *testing.T) {
	g := graph.GNM(20, 60, graph.WeightConfig{Mode: graph.UnitWeights}, 31)
	res := quickSolve(t, g, 0.49)
	if res.Weight <= 0 {
		t.Fatal("empty matching at eps=0.49")
	}
}

func TestSolveSmallEps(t *testing.T) {
	// Small eps means many levels and tight discretization; just verify
	// it completes with good quality on a small instance.
	g := graph.GNM(16, 50, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 10}, 37)
	res, err := SolveGraph(g, Options{Eps: 1.0 / 16, P: 2, Seed: 5, MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Matching.Validate(g); err != nil {
		t.Fatal(err)
	}
	_, opt := matching.MaxWeightMatchingFloat(g, false)
	if res.Weight < opt*(1-1.0/8) {
		t.Fatalf("small-eps ratio %f", res.Weight/opt)
	}
}

func TestSolveCompleteGraphDense(t *testing.T) {
	g := graph.GNP(40, 1, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 9}, 41)
	res := quickSolve(t, g, 0.25)
	_, opt := matching.MaxWeightMatchingFloat(g, false)
	if res.Weight < opt*(1-0.3) {
		t.Fatalf("dense ratio %f", res.Weight/opt)
	}
}

func TestSolveAllEqualWeights(t *testing.T) {
	// Equal weights exercise the single-level path.
	g := graph.GNM(40, 200, graph.WeightConfig{Mode: graph.UnitWeights}, 43)
	res := quickSolve(t, g, 0.25)
	edges := make([]matching.WEdge, g.M())
	for i, e := range g.Edges() {
		edges[i] = matching.WEdge{U: e.U, V: e.V, W: 1}
	}
	mate, _ := matching.MaxWeightMatching(g.N(), edges, true)
	maxCard := 0
	for v, u := range mate {
		if u >= 0 && int32(v) < u {
			maxCard++
		}
	}
	if res.Matching.Size() < int(float64(maxCard)*(1-0.3)) {
		t.Fatalf("cardinality %d vs optimum %d", res.Matching.Size(), maxCard)
	}
}

func TestSolveBipartiteInput(t *testing.T) {
	// Bipartite graphs are a special case the nonbipartite machinery
	// must handle without odd-set interference.
	g := graph.Bipartite(20, 20, 160, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 30}, 47)
	res := quickSolve(t, g, 0.25)
	_, opt := matching.MaxWeightMatchingFloat(g, false)
	if res.Weight < opt*(1-0.3) {
		t.Fatalf("bipartite ratio %f", res.Weight/opt)
	}
}

func TestSolveWeightScaleInvariance(t *testing.T) {
	// Scaling all weights by a constant scales the result accordingly.
	g1 := graph.GNM(24, 100, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 7}, 53)
	g2 := graph.New(24)
	for _, e := range g1.Edges() {
		g2.MustAddEdge(int(e.U), int(e.V), e.W*1000)
	}
	r1 := quickSolve(t, g1, 0.25)
	r2 := quickSolve(t, g2, 0.25)
	if math.Abs(r2.Weight/1000-r1.Weight)/r1.Weight > 0.05 {
		t.Fatalf("not scale invariant: %f vs %f", r1.Weight, r2.Weight/1000)
	}
}
