package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Direct MicroOracle (Algorithm 5) tests: drive the oracle with synthetic
// supports and verify the three-way case split and the part (i) witness.

func unitWHat(k int) float64 { return math.Pow(1.25, float64(k)) }

func microFromGraph(g *graph.Graph, level int, w float64, zeta map[rowKey]float64, rho, beta, eps float64) microInput {
	var edges []supportEdge
	for i, e := range g.Edges() {
		edges = append(edges, supportEdge{u: e.U, v: e.V, k: level, w: w, origIdx: i})
	}
	if zeta == nil {
		zeta = map[rowKey]float64{}
	}
	maxNorm := int(math.Ceil(4 / eps))
	return microInput{
		edges: edges, zeta: zeta, rho: rho, beta: beta, eps: eps,
		bOf:  func(int) int { return 1 },
		wHat: unitWHat, nLevels: level + 1, maxNorm: maxNorm,
	}
}

func TestMicroZeroGammaReturnsZero(t *testing.T) {
	// Heavy ζ makes γ <= 0: the zero answer satisfies LagInner trivially.
	g := graph.TriangleChain(1)
	zeta := map[rowKey]float64{}
	for v := int32(0); v < 3; v++ {
		zeta[rowKey{v, 0}] = 100
	}
	in := microFromGraph(g, 0, 1, zeta, 1, 10, 0.25)
	res := runMicroOracle(in)
	if res.matchingWitness || !res.answer.isZero() {
		t.Fatalf("expected zero answer, got witness=%v answer=%+v", res.matchingWitness, res.answer)
	}
	if res.gamma > 0 {
		t.Fatalf("gamma %f should be <= 0", res.gamma)
	}
}

func TestMicroSmallBetaTriggersVertexPay(t *testing.T) {
	// Tiny β makes the vertex thresholds γ·b·ŵ/β huge... inverted: tiny β
	// RAISES the threshold, so nothing pays; LARGE β makes violations
	// easy. With large β the oracle should return an x-type answer.
	g := graph.GNM(12, 40, graph.WeightConfig{Mode: graph.UnitWeights}, 5)
	in := microFromGraph(g, 0, 1, nil, 1e-6, 1e9, 0.25)
	res := runMicroOracle(in)
	if res.matchingWitness {
		t.Fatal("witness with huge beta")
	}
	if len(res.answer.xEntries) == 0 {
		t.Fatal("expected x-type answer with huge beta")
	}
	// Answer must respect the P_i box: x_i(k) <= 24/eps... loosely check
	// positivity and finiteness.
	for _, xe := range res.answer.xEntries {
		if !(xe.val > 0) || math.IsInf(xe.val, 0) {
			t.Fatalf("bad x value %v", xe.val)
		}
	}
}

func TestMicroPartIWitnessOnMatchableSupport(t *testing.T) {
	// A perfect-matching-rich support with small β: no vertex or odd-set
	// pays, so the oracle must return part (i) with a feasible LP7
	// witness.
	g := graph.GNM(20, 60, graph.WeightConfig{Mode: graph.UnitWeights}, 7)
	in := microFromGraph(g, 0, 1, nil, 1, 1e-3, 0.25)
	res := runMicroOracle(in)
	if !res.matchingWitness {
		t.Fatalf("expected part (i); got answer with %d x / %d z entries",
			len(res.answer.xEntries), len(res.answer.zEntries))
	}
	if res.witness == nil {
		t.Fatal("witness not constructed")
	}
	if msg := checkLP7(in, res.witness, 1e-9); msg != "" {
		t.Fatalf("LP7 witness infeasible: %s", msg)
	}
}

func TestMicroWitnessObjectiveScalesWithBeta(t *testing.T) {
	g := graph.GNM(16, 50, graph.WeightConfig{Mode: graph.UnitWeights}, 9)
	for _, beta := range []float64{1e-3, 1e-2} {
		in := microFromGraph(g, 0, 1, nil, 1, beta, 0.25)
		res := runMicroOracle(in)
		if !res.matchingWitness || res.witness == nil {
			t.Fatalf("beta=%g: no witness", beta)
		}
		if msg := checkLP7(in, res.witness, 1e-9); msg != "" {
			t.Fatalf("beta=%g: %s", beta, msg)
		}
	}
}

func TestMicroOddSetPayOnTriangles(t *testing.T) {
	// Heavy triangles with moderate β: vertices should not pay (their
	// thresholds are met) but the odd sets should — producing z entries.
	// Construct: each triangle's edges carry large uˢ while β is sized so
	// vertex deltas stay under γ·b·ŵ/β but triangle density exceeds the
	// Eq. 4 threshold. We scan β to find the z-producing regime and then
	// validate the answer's structure.
	g := graph.TriangleChain(4)
	found := false
	for _, beta := range []float64{0.5, 1, 2, 4, 8, 16} {
		in := microFromGraph(g, 0, 1, nil, 1, beta, 0.25)
		res := runMicroOracle(in)
		if len(res.answer.zEntries) > 0 {
			found = true
			for _, ze := range res.answer.zEntries {
				if len(ze.members)%2 == 0 {
					t.Fatalf("even-size z set: %v", ze.members)
				}
				if !(ze.val > 0) {
					t.Fatalf("non-positive z value")
				}
			}
			break
		}
	}
	if !found {
		t.Skip("no β in the scan produced a z answer on this instance (vertex pay dominates)")
	}
}

func TestMicroDeterministic(t *testing.T) {
	g := graph.GNM(14, 40, graph.WeightConfig{Mode: graph.UnitWeights}, 11)
	in := microFromGraph(g, 0, 1, nil, 0.7, 3, 0.25)
	a := runMicroOracle(in)
	b := runMicroOracle(in)
	if a.matchingWitness != b.matchingWitness || len(a.answer.xEntries) != len(b.answer.xEntries) ||
		len(a.answer.zEntries) != len(b.answer.zEntries) {
		t.Fatal("MicroOracle nondeterministic")
	}
}

func TestEnumerateOddSubsets(t *testing.T) {
	vs := []int32{0, 1, 2, 3, 4}
	count := 0
	enumerateOddSubsets(vs, func(int) int { return 1 }, 5, func(set []int32) bool {
		count++
		return true
	})
	if count != 11 { // C(5,3)+C(5,5)
		t.Fatalf("count %d, want 11", count)
	}
	// Early stop.
	count = 0
	enumerateOddSubsets(vs, func(int) int { return 1 }, 5, func([]int32) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop failed: %d", count)
	}
}

func TestMicroRandomizedInvariants(t *testing.T) {
	// Across random supports and parameters: answers are non-negative,
	// witnesses are LP7-feasible, x answers respect b·x <= β (Q̃(β)).
	r := xrand.New(13)
	for trial := 0; trial < 30; trial++ {
		n := 8 + r.Intn(10)
		m := 10 + r.Intn(30)
		g := graph.GNM(n, m, graph.WeightConfig{Mode: graph.UnitWeights}, uint64(trial)+100)
		beta := math.Pow(10, -2+4*r.Float64())
		rho := math.Pow(10, -1+2*r.Float64())
		in := microFromGraph(g, 0, 1, nil, rho, beta, 0.25)
		res := runMicroOracle(in)
		if res.matchingWitness {
			if res.witness == nil {
				t.Fatalf("trial %d: witness flag without data", trial)
			}
			if msg := checkLP7(in, res.witness, 1e-9); msg != "" {
				t.Fatalf("trial %d: %s", trial, msg)
			}
			continue
		}
		bx := 0.0
		maxPerVertex := map[int32]float64{}
		for _, xe := range res.answer.xEntries {
			if xe.val < 0 {
				t.Fatalf("trial %d: negative x", trial)
			}
			if xe.val > maxPerVertex[xe.v] {
				maxPerVertex[xe.v] = xe.val
			}
		}
		for _, xv := range maxPerVertex {
			bx += xv
		}
		if bx > beta*(1+1e-9) && len(res.answer.xEntries) > 0 {
			t.Fatalf("trial %d: b·x = %f exceeds beta %f", trial, bx, beta)
		}
	}
}
