package core

import (
	"testing"

	"repro/internal/graph"
)

func TestProfileEps8(t *testing.T) {
	g := graph.GNM(128, 1024, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 50}, 128)
	res, err := SolveGraph(g, Options{Eps: 0.125, P: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("rounds=%d uses=%d micro=%d zsets-words=%d", res.Stats.SamplingRounds, res.Stats.OracleUses, res.Stats.MicroCalls, res.Stats.DualStateWords)
}
