package core

import (
	"sort"

	"repro/internal/oddset"
)

// MicroOracle — Algorithm 5 (part (ii) of the oracle behind Lemma 14).
//
// Given the refined sparsifier weights uˢ (supported on E′), packing
// multipliers ζ_{i,k} on the P_o rows, a Lagrange multiplier ϱ and the
// current dual budget β, it either
//
//   - returns a sparse dual step x̃ = ({x_i(k)}, {z_{U,ℓ}}) satisfying the
//     Lagrangian LagInner together with G(uˢ,x̃) and Q̃(β)   (part ii), or
//   - certifies that the support carries a (1-ε)-sized fractional
//     b-matching witness (LP7)                                (part i).
//
// The logic follows the three-way split of Algorithm 5: violating
// vertices pay (Γ(V) large → x-type answer), violating odd sets pay
// (Γ(Os) large → z-type answer), or nothing pays much and the support is
// itself a large matching witness.

// supportEdge is one refined sparsifier edge.
type supportEdge struct {
	u, v    int32
	k       int     // weight level
	w       float64 // uˢ value (refined multiplier estimate)
	origIdx int     // index into the input graph's edge list
}

// microInput bundles a MicroOracle invocation.
type microInput struct {
	edges   []supportEdge
	zeta    map[rowKey]float64 // ζ_{i,k} (same scale as uˢ)
	rho     float64            // the Lagrange multiplier ϱ
	beta    float64
	eps     float64
	bOf     func(v int) int
	wHat    func(k int) float64
	nLevels int
	maxNorm int  // 4/ε bound for odd sets
	noOdd   bool // ablation: skip odd-set pricing
}

// rowKey identifies a P_o row (vertex, level).
type rowKey struct {
	v int32
	k int
}

// microResult is the oracle's answer.
type microResult struct {
	// matchingWitness true means part (i): the support certifies a large
	// matching (the caller raises β / extracts a matching offline).
	matchingWitness bool
	// witness is the explicit LP7 solution of Algorithm 5 steps 20-21
	// (set only when matchingWitness is true and the oracle reached the
	// constructive branch — the noOdd ablation short-circuits it).
	witness *lp7Witness
	answer  oracleAnswer
	gamma   float64 // γ of Algorithm 5 step 1 (diagnostics)
}

// lp7Witness is a feasible solution of LP7 over the support: fractional
// edge values y (per support edge, in the order of microInput.edges) and
// vertex slacks μ_{i,k}. By Lemma 13 its existence certifies an integral
// matching of weight >= (1-2ε)β within the support.
type lp7Witness struct {
	y     []float64 // parallel to microInput.edges
	mu    map[rowKey]float64
	beta  float64
	gamma float64
}

// runMicroOracle executes Algorithm 5 with a fresh scratch — the
// direct entry point the tests use; the solver's oracle loop threads
// its retained scratch through runMicroOracleScratch instead.
func runMicroOracle(in microInput) microResult {
	return runMicroOracleScratch(in, newOracleScratch())
}

func runMicroOracleScratch(in microInput, sc *oracleScratch) microResult {
	sc.beginMicro()
	// Per-(i,k) incident support weight s_{i,k} = Σ_j uˢ_{ijk}.
	s := sc.s
	// Total weighted support (uˢ)ᵀc = Σ_k ŵ_k Σ_{E'_k} uˢ.
	usC := 0.0
	levelsInUse := sc.levelsInUse
	for _, e := range in.edges {
		s[rowKey{e.u, e.k}] += e.w
		s[rowKey{e.v, e.k}] += e.w
		usC += in.wHat(e.k) * e.w
		levelsInUse[e.k] = true
	}
	// Map iteration order is randomized in Go, and float addition is not
	// associative: every sum over these maps walks keys in sorted order so
	// the oracle is a pure function of its input — the determinism the
	// parallel pipeline's bit-identical contract rests on.
	zetaKeys := sortedRowKeysInto(sc.zetaKeys, in.zeta)
	sc.zetaKeys = zetaKeys
	sKeys := sortedRowKeysInto(sc.sKeys, s)
	sc.sKeys = sKeys
	// γ = (uˢ)ᵀc - 3ϱ Σ_{i,k} ŵ_k ζ_{i,k}.
	gamma := usC
	for _, rk := range zetaKeys {
		gamma -= 3 * in.rho * in.wHat(rk.k) * in.zeta[rk]
	}
	res := microResult{gamma: gamma}
	if gamma <= 0 {
		// Step 1 note: x = 0 satisfies LagInner trivially.
		return res
	}
	// d_{i,k} = s_{i,k} - 2ϱζ_{i,k}; Pos(i) = {k : d_{i,k} > 0}.
	pos := sc.pos
	posVerts := sc.posVerts
	for _, rk := range sKeys {
		d := s[rk] - 2*in.rho*in.zeta[rk]
		if d > 0 {
			if len(pos[rk.v]) == 0 {
				posVerts = append(posVerts, rk.v)
				pos[rk.v] = sc.posList()
			}
			pos[rk.v] = append(pos[rk.v], posEntry{rk.k, d})
		}
	}
	sc.posVerts = posVerts
	// ζ rows with no support mass have d <= 0 and never join Pos.
	// Δ(i,ℓ) = Σ_{k∈Pos(i),k<=ℓ} ŵ_k d_{i,k} + Σ_{k∈Pos(i),k>ℓ} ŵ_ℓ d_{i,k}.
	delta := func(i int32, l int) float64 {
		t := 0.0
		for _, pe := range pos[i] {
			if pe.k <= l {
				t += in.wHat(pe.k) * pe.d
			} else {
				t += in.wHat(l) * pe.d
			}
		}
		return t
	}
	// k*_i = largest ℓ with Δ(i,ℓ) > γ·b_i·ŵ_ℓ/β (-1 if none).
	kstar := sc.kstar
	gammaOverBeta := gamma / in.beta
	var viol []int32
	gammaV := 0.0
	for _, i := range posVerts {
		ks := -1
		for l := in.nLevels - 1; l >= 0; l-- {
			if delta(i, l) > gammaOverBeta*float64(in.bOf(int(i)))*in.wHat(l) {
				ks = l
				break
			}
		}
		if ks >= 0 {
			kstar[i] = ks
			viol = append(viol, i)
			gammaV += delta(i, ks)
		}
	}
	// Case A (step 5): vertex violations pay. The answer container is
	// lent from the scratch pool: the binary search in runMiniOracle
	// holds several micro answers at once, and all of them die by the
	// next MiniOracle call's reclaim.
	if gammaV >= in.eps*gamma/24 {
		res.answer.xEntries = sc.xents.getEmpty()
		for _, i := range viol {
			ks := kstar[i]
			for _, pe := range pos[i] {
				var val float64
				if pe.k > ks {
					val = gamma * in.wHat(ks) / gammaV
				} else {
					val = gamma * in.wHat(pe.k) / gammaV
				}
				res.answer.xEntries = append(res.answer.xEntries, xEntry{v: i, k: pe.k, val: val})
			}
		}
		sc.xents.retain(res.answer.xEntries)
		return res
	}
	// Step 9: raise ζ to ζ̄ on violating (i, k<=k*, k∈Pos).
	zetaBar := func(i int32, k int) float64 {
		if ks, ok := kstar[i]; ok && k <= ks {
			for _, pe := range pos[i] {
				if pe.k == k {
					// ζ̄ = s_{i,k}/(2ϱ).
					return s[rowKey{i, k}] / (2 * in.rho)
				}
			}
		}
		return in.zeta[rowKey{i, k}]
	}
	// γ′ (step 10).
	gammaP := usC
	zetaBarSums := sc.zetaBarSums // cache ζ̄ per touched row
	for _, rk := range sKeys {
		zb := zetaBar(rk.v, rk.k)
		zetaBarSums[rk] = zb
		gammaP -= 3 * in.rho * in.wHat(rk.k) * zb
	}
	for _, rk := range zetaKeys {
		if _, ok := s[rk]; !ok {
			gammaP -= 3 * in.rho * in.wHat(rk.k) * in.zeta[rk]
		}
	}
	// Steps 11-14: per level ℓ, collect disjoint dense odd sets K(ℓ).
	// Charges (proof of Lemma 16): q_ij(ℓ) = (1-ε/4)β/γ · uˢ (edges with
	// k >= ℓ); q̂_i(ℓ) = b_i + 2(1-ε/4)ϱβ/γ · Σ_{k>=ℓ} ζ̄_{i,k}.
	scaleQ := (1 - in.eps/4) * in.beta / gamma
	type levelSets struct {
		level int
		sets  []oddset.Set
		// Δ(U,ℓ) = Σ_{k>=ℓ}(Σ_{ij∈U} uˢ - ϱ Σ_{i∈U} ζ̄) per set
		deltas []float64
	}
	var perLevel []levelSets
	gammaOs := 0.0
	if in.noOdd {
		// Ablation: no odd sets are priced; fall through to part (i).
		res.matchingWitness = true
		return res
	}
	// Precompute per-vertex suffix ζ̄ sums and per-edge suffix inclusion.
	maxV := int32(0)
	for _, e := range in.edges {
		if e.u > maxV {
			maxV = e.u
		}
		if e.v > maxV {
			maxV = e.v
		}
	}
	nV := int(maxV) + 1
	// Only levels that actually carry support edges can yield distinct
	// collections: for ℓ between two active levels the charges q(ℓ) are
	// identical to those of the next active level up, so z_{U,ℓ} placed
	// there covers the same constraints. Iterate active levels only.
	activeDesc := sc.activeDesc
	//lint:ordered key collection, sortDesc'd immediately below
	for l := range levelsInUse {
		activeDesc = append(activeDesc, l)
	}
	sortDesc(activeDesc)
	sc.activeDesc = activeDesc
	// The odd-set instance buffers live one level at a time: Collect
	// returns fresh member copies, so nothing retained by perLevel
	// aliases them and the next level overwrites in place.
	if cap(sc.qhat) < nV {
		sc.qhat = make([]float64, nV)
	}
	if cap(sc.bnorm) < nV {
		sc.bnorm = make([]int, nV)
	}
	for _, l := range activeDesc {
		inst := &oddset.Instance{
			N:       nV,
			QHat:    sc.qhat[:nV],
			MaxNorm: in.maxNorm,
			Eps:     in.eps,
		}
		inst.Edges = sc.qedges[:0]
		bn := sc.bnorm[:nV]
		unit := true
		for v := 0; v < nV; v++ {
			bn[v] = in.bOf(v)
			if bn[v] != 1 {
				unit = false
			}
			zsum := 0.0
			for k := l; k < in.nLevels; k++ {
				if zb, ok := zetaBarSums[rowKey{int32(v), k}]; ok {
					zsum += zb
				}
			}
			inst.QHat[v] = float64(bn[v]) + 2*scaleQ*in.rho*zsum
		}
		if !unit {
			inst.BNorm = bn
		}
		for _, e := range in.edges {
			if e.k >= l {
				inst.Edges = append(inst.Edges, oddset.QEdge{U: e.u, V: e.v, Q: scaleQ * e.w})
			}
		}
		sc.qedges = inst.Edges
		sets := inst.Collect()
		if len(sets) == 0 {
			continue
		}
		ls := levelSets{level: l}
		for _, st := range sets {
			// Δ(U,ℓ) in uˢ units: internal/scaleQ - ϱ Σ ζ̄ suffix.
			inside := st.Internal / scaleQ
			zpart := 0.0
			for _, m := range st.Members {
				for k := l; k < in.nLevels; k++ {
					if zb, ok := zetaBarSums[rowKey{int32(m), k}]; ok {
						zpart += zb
					}
				}
			}
			d := inside - in.rho*zpart
			ls.sets = append(ls.sets, st)
			ls.deltas = append(ls.deltas, d)
			gammaOs += in.wHat(l) * d
		}
		perLevel = append(perLevel, ls)
	}
	// Case B (step 16): odd-set violations pay. (Note use of γ′.) The
	// entry container is pooled; the member lists are NOT — addZSet
	// retains them in the dual state, so sortedMembers allocates fresh.
	if gammaOs >= in.eps*gammaP/24 && gammaOs > 0 {
		res.answer.zEntries = sc.zents.getEmpty()
		for _, ls := range perLevel {
			for si := range ls.sets {
				members := make([]int32, len(ls.sets[si].Members))
				for mi, m := range ls.sets[si].Members {
					members[mi] = int32(m)
				}
				res.answer.zEntries = append(res.answer.zEntries, zEntry{
					members: sortedMembers(members),
					level:   ls.level,
					val:     gammaP * in.wHat(ls.level) / gammaOs,
				})
			}
		}
		sc.zents.retain(res.answer.zEntries)
		return res
	}
	// Part (i): nothing pays — the support certifies a large matching.
	// Steps 20-21: lift ζ̄ to ζ̂ on the members of the collected sets and
	// scale (uˢ, ϱζ̂) into the LP7 solution (y, μ); the driver's offline
	// solve extracts the integral matching per Lemma 13.
	res.matchingWitness = true
	zetaHat := make(map[rowKey]float64, len(zetaBarSums))
	//lint:ordered per-key copy, no cross-key accumulation
	for rk, zb := range zetaBarSums {
		zetaHat[rk] = zb
	}
	//lint:ordered per-key fill-in, no cross-key accumulation
	for rk, z := range in.zeta {
		if _, ok := zetaHat[rk]; !ok {
			zetaHat[rk] = z
		}
	}
	for _, ls := range perLevel {
		for _, set := range ls.sets {
			for _, m := range set.Members {
				rk := rowKey{int32(m), ls.level}
				zetaHat[rk] += gamma * float64(in.bOf(m)) / (2 * in.rho * in.beta)
			}
		}
	}
	scaleY := (1 - in.eps/4) * in.beta / ((1 + in.eps/2) * gamma)
	w := &lp7Witness{
		y:     make([]float64, len(in.edges)),
		mu:    make(map[rowKey]float64, len(zetaHat)),
		beta:  in.beta,
		gamma: gamma,
	}
	for i, e := range in.edges {
		w.y[i] = scaleY * e.w
	}
	//lint:ordered per-key scale into w.mu, no cross-key accumulation
	for rk, zh := range zetaHat {
		if zh > 0 {
			w.mu[rk] = scaleY * in.rho * zh
		}
	}
	res.witness = w
	return res
}

// checkLP7 verifies the witness against LP7's constraints over the
// support, enumerating odd sets up to maxNorm over the support vertices
// (exponential — test/verification use only). It returns the first
// violation as a non-empty string, or "".
func checkLP7(in microInput, w *lp7Witness, tol float64) string {
	// Objective: Σ_k ŵ_k (Σ y - 3 Σ_i μ_{i,k}) >= (1-ε)β. Like every
	// float accumulation in this file, the sums walk map keys in sorted
	// order so the verdict is bit-identical run to run — near-tolerance
	// witnesses must not flip with Go's randomized map iteration.
	muKeys := sortedRowKeys(w.mu)
	obj := 0.0
	for i, e := range in.edges {
		obj += in.wHat(e.k) * w.y[i]
	}
	for _, rk := range muKeys {
		obj -= 3 * in.wHat(rk.k) * w.mu[rk]
	}
	if obj < (1-in.eps)*w.beta-tol {
		return "objective below (1-eps)beta"
	}
	// Vertex constraints: Σ_k max(0, Σ_j y_{ijk} - 2μ_{i,k}) <= b_i.
	perRow := map[rowKey]float64{}
	verts := map[int32]bool{}
	for i, e := range in.edges {
		perRow[rowKey{e.u, e.k}] += w.y[i]
		perRow[rowKey{e.v, e.k}] += w.y[i]
		verts[e.u] = true
		verts[e.v] = true
	}
	perVertex := map[int32]float64{}
	for _, rk := range sortedRowKeys(perRow) {
		d := perRow[rk] - 2*w.mu[rk]
		if d > 0 {
			perVertex[rk.v] += d
		}
	}
	//lint:ordered per-key threshold check, no cross-key accumulation
	for v, tot := range perVertex {
		if tot > float64(in.bOf(int(v)))+tol {
			return "vertex capacity violated"
		}
	}
	// Odd-set constraints: Σ_{k>=ℓ}(Σ_{ij∈U} y - Σ_{i∈U} μ_{i,k}) <=
	// floor(||U||_b/2) for every odd U up to maxNorm and every active ℓ.
	// Vertices and levels are sorted so the subset enumeration order (and
	// hence which violation is reported first) is deterministic.
	vs := make([]int32, 0, len(verts))
	//lint:ordered key collection, sorted immediately below
	for v := range verts {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	levelSet := map[int]bool{}
	for _, e := range in.edges {
		levelSet[e.k] = true
	}
	levels := make([]int, 0, len(levelSet))
	//lint:ordered key collection, sorted immediately below
	for l := range levelSet {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	viol := ""
	enumerateOddSubsets(vs, in.bOf, in.maxNorm, func(set []int32) bool {
		mask := map[int32]bool{}
		norm := 0
		for _, v := range set {
			mask[v] = true
			norm += in.bOf(int(v))
		}
		for _, l := range levels {
			lhs := 0.0
			for i, e := range in.edges {
				if e.k >= l && mask[e.u] && mask[e.v] {
					lhs += w.y[i]
				}
			}
			for _, rk := range muKeys {
				if rk.k >= l && mask[rk.v] {
					lhs -= w.mu[rk]
				}
			}
			if lhs > float64(norm/2)+tol {
				viol = "odd-set constraint violated"
				return false
			}
		}
		return true
	})
	return viol
}

// enumerateOddSubsets enumerates subsets of vs with odd b-norm, size >= 3
// and norm <= maxNorm, calling f (stop on false).
func enumerateOddSubsets(vs []int32, bOf func(int) int, maxNorm int, f func([]int32) bool) {
	var cur []int32
	stopped := false
	var rec func(start, norm int)
	rec = func(start, norm int) {
		if stopped {
			return
		}
		if len(cur) >= 3 && norm%2 == 1 {
			if !f(cur) {
				stopped = true
				return
			}
		}
		for i := start; i < len(vs); i++ {
			nb := bOf(int(vs[i]))
			if norm+nb > maxNorm {
				continue
			}
			cur = append(cur, vs[i])
			rec(i+1, norm+nb)
			cur = cur[:len(cur)-1]
			if stopped {
				return
			}
		}
	}
	rec(0, 0)
}

// sortedRowKeys returns the keys of a rowKey-indexed map in (v, k) order,
// the canonical iteration order for float accumulations over P_o rows.
func sortedRowKeys(m map[rowKey]float64) []rowKey {
	keys := make([]rowKey, 0, len(m))
	//lint:ordered key collection, sorted immediately below
	for rk := range m {
		keys = append(keys, rk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].v != keys[j].v {
			return keys[i].v < keys[j].v
		}
		return keys[i].k < keys[j].k
	})
	return keys
}

func sortDesc(xs []int) {
	sort.Sort(sort.Reverse(sort.IntSlice(xs)))
}
