package core

// The resource-constraint machinery — budgets, trip errors, per-round
// observer events, cancellation-guarded sources — used to live here,
// next to the one round loop that existed. It now lives in
// internal/engine, the shared driver every matching substrate runs
// under; these aliases keep the engine-facing names this package's
// callers (and the public repro/match facade) have always used.

import "repro/internal/engine"

// Budget bounds the resources one Solve run may consume; see
// engine.Budget for the axis semantics.
type Budget = engine.Budget

// BudgetAxis names the resource axis that tripped a budget.
type BudgetAxis = engine.BudgetAxis

// The three resource axes of the paper: data accesses, adaptive rounds,
// central space.
const (
	AxisPasses     = engine.AxisPasses
	AxisRounds     = engine.AxisRounds
	AxisSpaceWords = engine.AxisSpaceWords
)

// ErrBudgetExceeded is the sentinel all budget trips match via
// errors.Is.
var ErrBudgetExceeded = engine.ErrBudgetExceeded

// BudgetError reports which budget axis tripped.
type BudgetError = engine.BudgetError

// RoundEvent is the per-round notification of an Extensions.Observer.
type RoundEvent = engine.RoundEvent

// Extensions carries the optional engine hooks of a SolveWith run.
type Extensions = engine.Extensions
