package levels

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func mustScheme(t *testing.T, eps, wstar float64, b int) *Scheme {
	t.Helper()
	s, err := NewScheme(eps, wstar, b)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemeValidation(t *testing.T) {
	if _, err := NewScheme(0, 1, 1); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewScheme(0.5, 0, 1); err == nil {
		t.Fatal("W*=0 accepted")
	}
	if _, err := NewScheme(0.5, 1, 0); err == nil {
		t.Fatal("B=0 accepted")
	}
}

func TestLevelBrackets(t *testing.T) {
	// Definition 3: (W*/B)·ŵ_k <= w < (W*/B)·ŵ_{k+1}.
	s := mustScheme(t, 0.25, 100, 50)
	unit := s.WStar / s.B // 2
	for k := 0; k <= s.L; k++ {
		w := unit * s.WHat(k) * 1.0001
		got, ok := s.Level(w)
		if !ok || got != k {
			t.Fatalf("level of %f: got %d ok=%v, want %d", w, got, ok, k)
		}
	}
}

func TestLevelDropsTinyEdges(t *testing.T) {
	s := mustScheme(t, 0.25, 100, 50)
	if _, ok := s.Level(1.9); ok { // below W*/B = 2
		t.Fatal("tiny edge not dropped")
	}
	if _, ok := s.Level(2.0); !ok {
		t.Fatal("boundary edge dropped")
	}
}

func TestMaxWeightTopLevel(t *testing.T) {
	for _, eps := range []float64{0.1, 0.25, 0.5} {
		for _, b := range []int{2, 10, 1000} {
			s := mustScheme(t, eps, 7.5, b)
			k, ok := s.Level(s.WStar)
			if !ok {
				t.Fatalf("W* dropped (eps=%f B=%d)", eps, b)
			}
			if k != s.L {
				t.Fatalf("W* at level %d, want L=%d (eps=%f B=%d)", k, s.L, eps, b)
			}
		}
	}
}

func TestRescaleLowerBound(t *testing.T) {
	// Rescaled value underestimates by at most (1+eps): ŵ <= scaled < (1+eps)ŵ.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		eps := 0.1 + r.Float64()*0.4
		s, err := NewScheme(eps, 50, 20)
		if err != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			w := 50 * math.Pow(r.Float64(), 2) // spread across range
			if w <= 0 {
				continue
			}
			hat, ok := s.Rescale(w)
			if !ok {
				continue
			}
			scaled := w * s.B / s.WStar
			if hat > scaled*(1+1e-9) || scaled >= hat*(1+eps)*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNumLevelsIsLogB(t *testing.T) {
	s := mustScheme(t, 0.5, 1, 1024)
	want := int(math.Floor(math.Log(1024)/math.Log(1.5))) + 1
	if s.NumLevels() != want {
		t.Fatalf("NumLevels = %d, want %d", s.NumLevels(), want)
	}
}

func TestGroups(t *testing.T) {
	s := mustScheme(t, 0.25, 10, 100)
	gs := s.GroupSize()
	if gs < 1 {
		t.Fatalf("group size %d", gs)
	}
	// Alternate groups differ by at least a factor 2 in weight.
	ratio := s.WHat(gs)
	if ratio < 2 || ratio >= 2*(1+s.Eps)*(1+1e-9) {
		t.Fatalf("group weight ratio %f not in [2, 2(1+eps))", ratio)
	}
	// Group 0 contains the top level; groups are monotone down.
	if s.Group(s.L) != 0 {
		t.Fatalf("top level in group %d", s.Group(s.L))
	}
	if s.Group(0) != s.NumGroups()-1 {
		t.Fatalf("bottom level in group %d, want %d", s.Group(0), s.NumGroups()-1)
	}
	for k := 1; k <= s.L; k++ {
		if s.Group(k) > s.Group(k-1) {
			t.Fatal("group index should be non-increasing in level")
		}
	}
}

func TestPartitionCoversKeptEdges(t *testing.T) {
	g := graph.GNM(40, 150, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 50}, 11)
	s, err := ForGraph(g, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	parts := s.Partition(g)
	if len(parts) != s.NumLevels() {
		t.Fatalf("parts len %d != NumLevels %d", len(parts), s.NumLevels())
	}
	covered := 0
	for k, part := range parts {
		for _, idx := range part {
			covered++
			got, ok := s.Level(g.Edge(idx).W)
			if !ok || got != k {
				t.Fatalf("edge %d in part %d but Level says %d ok=%v", idx, k, got, ok)
			}
		}
	}
	dropped := 0
	for _, e := range g.Edges() {
		if _, ok := s.Level(e.W); !ok {
			dropped++
		}
	}
	if covered+dropped != g.M() {
		t.Fatalf("partition covers %d + dropped %d != m %d", covered, dropped, g.M())
	}
}

func TestDroppedWeightSmall(t *testing.T) {
	// With B >= n, dropped edges each have weight < W*/B, so the dropped
	// total is < m * W*/B.
	g := graph.GNM(30, 100, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 1000}, 12)
	s, err := ForGraph(g, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	limit := float64(g.M()) * s.WStar / s.B
	if d := s.DroppedWeight(g); d >= limit {
		t.Fatalf("dropped weight %f >= bound %f", d, limit)
	}
}

func TestUnscaleRoundTrip(t *testing.T) {
	s := mustScheme(t, 0.25, 80, 40)
	for _, w := range []float64{2.5, 10, 79.9, 80} {
		hat, ok := s.Rescale(w)
		if !ok {
			t.Fatalf("weight %f dropped", w)
		}
		back := s.Unscale(hat)
		if back > w*(1+1e-9) || back < w/(1+s.Eps)*(1-1e-9) {
			t.Fatalf("unscale(%f) = %f not within (w/(1+eps), w]", w, back)
		}
	}
}
