// Package levels implements the weight discretization of Definitions 2, 3
// and 6 of the paper: edge weights are rescaled by B/W* and rounded down
// to integral powers ŵ_k = (1+ε)^k, partitioning the edge set into level
// classes Ê_k, k = 0..L with L = O(ε⁻¹ ln B). Levels are further bucketed
// into groups of ⌈log_{1+ε} 2⌉ consecutive levels so that weights across
// alternate groups fall by a factor of at least 2 (used by the initial
// solution of Lemma 12/21).
package levels

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Scheme captures a discretization: the reference weight W*, the total
// capacity B and the accuracy ε. Edges with rescaled weight below 1 (i.e.
// w_ij < W*/B) are dropped; their total contribution is at most ε·β* when
// B ≥ n/ε (Observation 1 regime), and always at most W* ≤ β*.
type Scheme struct {
	Eps   float64
	WStar float64 // maximum edge weight W*
	B     float64 // Σ b_i
	L     int     // index of the highest level in use

	log1pEps float64
	what     []float64 // ŵ_k = (1+ε)^k for k = 0..L, built once at construction
}

// NewScheme builds a discretization for accuracy eps from W* and B.
func NewScheme(eps, wstar float64, b int) (*Scheme, error) {
	if !(eps > 0) || eps > 1 {
		return nil, fmt.Errorf("levels: eps %v out of (0,1]", eps)
	}
	if !(wstar > 0) {
		return nil, fmt.Errorf("levels: W* must be positive, got %v", wstar)
	}
	if b < 1 {
		return nil, fmt.Errorf("levels: B must be >= 1, got %d", b)
	}
	s := &Scheme{Eps: eps, WStar: wstar, B: float64(b), log1pEps: math.Log1p(eps)}
	// The top level: the rescaled max weight is B, so L = floor(log_{1+eps} B).
	s.L = int(math.Floor(math.Log(s.B)/s.log1pEps + 1e-12))
	// Levels are small bounded ints, so ŵ is a table: each entry is the
	// exact math.Pow value WHat used to compute per call, built once here.
	s.what = make([]float64, s.L+1)
	for k := range s.what {
		//lint:powtable table construction; the per-call hot path reads this table
		s.what[k] = math.Pow(1+eps, float64(k))
	}
	return s, nil
}

// ForGraph builds a scheme from a graph's max weight and total capacity.
func ForGraph(g *graph.Graph, eps float64) (*Scheme, error) {
	return NewScheme(eps, g.MaxWeight(), g.TotalB())
}

// WHat returns ŵ_k = (1+ε)^k. Levels in use are 0..L, served from the
// precomputed table; out-of-range k (never produced by Level, but legal
// for callers probing hypothetical levels) falls back to the closed form
// the table was built from.
func (s *Scheme) WHat(k int) float64 {
	if k >= 0 && k < len(s.what) {
		return s.what[k]
	}
	//lint:powtable out-of-table fallback, not reachable from solver levels
	return math.Pow(1+s.Eps, float64(k))
}

// Level returns the level of an original edge weight w, and ok=false if
// the edge is dropped (rescaled weight < 1, i.e. w < W*/B). Definition 3:
// k is the unique level with (W*/B)·ŵ_k <= w < (W*/B)·ŵ_{k+1}.
func (s *Scheme) Level(w float64) (k int, ok bool) {
	scaled := w * s.B / s.WStar
	if scaled < 1 {
		return 0, false
	}
	k = int(math.Floor(math.Log(scaled)/s.log1pEps + 1e-12))
	if k > s.L {
		k = s.L // guard against floating point at w == W*
	}
	return k, true
}

// Rescale returns the rescaled, discretized weight ŵ for an original
// weight w (the value the solver optimizes), with ok=false for dropped
// edges. Original values are recovered by w ≈ ŵ · W*/B.
func (s *Scheme) Rescale(w float64) (float64, bool) {
	k, ok := s.Level(w)
	if !ok {
		return 0, false
	}
	return s.WHat(k), true
}

// Unscale maps a discretized objective value back to original units.
func (s *Scheme) Unscale(objective float64) float64 {
	return objective * s.WStar / s.B
}

// NumLevels returns L+1, the number of levels in use.
func (s *Scheme) NumLevels() int { return s.L + 1 }

// GroupSize returns ⌈log_{1+ε} 2⌉, the number of levels per group
// (Definition 6).
func (s *Scheme) GroupSize() int {
	return int(math.Ceil(math.Log(2)/s.log1pEps - 1e-12))
}

// Group returns the group index of level k. Group 0 holds the *highest*
// levels (Definition 6 numbers groups from the top).
func (s *Scheme) Group(k int) int {
	gs := s.GroupSize()
	return (s.L - k) / gs
}

// NumGroups returns the number of groups.
func (s *Scheme) NumGroups() int {
	gs := s.GroupSize()
	return s.L/gs + 1
}

// Partition splits a graph's edge indices by level, dropping edges below
// level 0. The returned slice has length NumLevels(); entry k lists the
// indices of edges in Ê_k.
func (s *Scheme) Partition(g *graph.Graph) [][]int {
	parts := make([][]int, s.NumLevels())
	for i, e := range g.Edges() {
		if k, ok := s.Level(e.W); ok {
			parts[k] = append(parts[k], i)
		}
	}
	return parts
}

// DroppedWeight returns the total original weight of edges dropped by the
// discretization (those with w < W*/B).
func (s *Scheme) DroppedWeight(g *graph.Graph) float64 {
	t := 0.0
	for _, e := range g.Edges() {
		if _, ok := s.Level(e.W); !ok {
			t += e.W
		}
	}
	return t
}
