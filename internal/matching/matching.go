// Package matching implements the matching algorithms the paper builds on
// or compares against:
//
//   - greedy maximal matching and maximal b-matching (the primitive inside
//     Lemma 20's per-level initial solutions),
//   - the iterative-filtering algorithm of Lattanzi, Moseley, Suri and
//     Vassilvitskii (SPAA 2011) — the paper's O(1)-approximation baseline,
//   - Hopcroft–Karp bipartite maximum cardinality matching,
//   - exact maximum-weight matching on general graphs via Galil's blossom
//     algorithm (O(n³)), used as the offline solver of Algorithm 2 step 5
//     and as ground truth in every experiment,
//   - an offline (1-ε)-style approximate solver that dispatches between
//     exact blossom and greedy depending on instance size (the stand-in
//     for Duan–Pettie [13] / Ahn–Guha [2]; see DESIGN.md substitutions).
package matching

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/stream"
)

// Matching is a set of edges of a host graph, by edge index, with
// multiplicities (for b-matching; multiplicity is 1 in ordinary
// matchings).
type Matching struct {
	EdgeIdx []int
	Mult    []int // parallel multiplicity per selected edge (nil = all 1)
}

// Weight returns the total weight of the matching in g (multiplicities
// included).
func (m *Matching) Weight(g *graph.Graph) float64 {
	t := 0.0
	for i, idx := range m.EdgeIdx {
		w := g.Edge(idx).W
		if m.Mult != nil {
			t += w * float64(m.Mult[i])
		} else {
			t += w
		}
	}
	return t
}

// Size returns the number of matched edges counting multiplicity.
func (m *Matching) Size() int {
	if m.Mult == nil {
		return len(m.EdgeIdx)
	}
	t := 0
	for _, c := range m.Mult {
		t += c
	}
	return t
}

// Validate checks degree feasibility: the matched degree of every vertex
// is at most b_v. Returns an error describing the first violation.
func (m *Matching) Validate(g *graph.Graph) error {
	deg := make([]int, g.N())
	for i, idx := range m.EdgeIdx {
		if idx < 0 || idx >= g.M() {
			return fmt.Errorf("matching: edge index %d out of range", idx)
		}
		c := 1
		if m.Mult != nil {
			c = m.Mult[i]
			if c < 1 {
				return fmt.Errorf("matching: non-positive multiplicity %d", c)
			}
		}
		e := g.Edge(idx)
		deg[e.U] += c
		deg[e.V] += c
	}
	for v := 0; v < g.N(); v++ {
		if deg[v] > g.B(v) {
			return fmt.Errorf("matching: vertex %d has matched degree %d > b=%d", v, deg[v], g.B(v))
		}
	}
	return nil
}

// ValidateStream checks degree feasibility against any Source in one
// metered pass and O(|M|) memory: matched indices are collected, their
// edges picked up during the sweep, and per-vertex degrees checked
// against the capacities. The streaming twin of Validate for instances
// that are never materialized.
func (m *Matching) ValidateStream(src stream.Source) error {
	mult := make(map[int]int, len(m.EdgeIdx))
	for i, idx := range m.EdgeIdx {
		if idx < 0 || idx >= src.Len() {
			return fmt.Errorf("matching: edge index %d out of range", idx)
		}
		c := 1
		if m.Mult != nil {
			c = m.Mult[i]
			if c < 1 {
				return fmt.Errorf("matching: non-positive multiplicity %d", c)
			}
		}
		mult[idx] += c
	}
	deg := make([]int, src.N())
	found := 0
	src.ForEach(func(idx int, e graph.Edge) bool {
		if c, ok := mult[idx]; ok {
			deg[e.U] += c
			deg[e.V] += c
			found++
		}
		return found < len(mult)
	})
	if found < len(mult) {
		return fmt.Errorf("matching: %d matched indices missing from the stream", len(mult)-found)
	}
	for v := 0; v < src.N(); v++ {
		if b := src.B(v); deg[v] > b {
			return fmt.Errorf("matching: vertex %d has matched degree %d > b=%d", v, deg[v], b)
		}
	}
	return nil
}

// IsMaximal reports whether no edge of g can be added to the matching
// without violating capacities (i.e. the matching is maximal for the
// uncapacitated b-matching problem).
func (m *Matching) IsMaximal(g *graph.Graph) bool {
	deg := make([]int, g.N())
	for i, idx := range m.EdgeIdx {
		c := 1
		if m.Mult != nil {
			c = m.Mult[i]
		}
		e := g.Edge(idx)
		deg[e.U] += c
		deg[e.V] += c
	}
	for _, e := range g.Edges() {
		if deg[e.U] < g.B(int(e.U)) && deg[e.V] < g.B(int(e.V)) {
			return false
		}
	}
	return true
}

// Greedy computes a maximal matching by scanning edges in descending
// weight order, taking an edge whenever both endpoints are free. For
// weighted graphs this is the classic 1/2-approximation.
func Greedy(g *graph.Graph) *Matching {
	order := make([]int, g.M())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := g.Edge(order[a]), g.Edge(order[b])
		if ea.W != eb.W {
			return ea.W > eb.W
		}
		return order[a] < order[b]
	})
	used := make([]bool, g.N())
	var out Matching
	for _, idx := range order {
		e := g.Edge(idx)
		if !used[e.U] && !used[e.V] {
			used[e.U], used[e.V] = true, true
			out.EdgeIdx = append(out.EdgeIdx, idx)
		}
	}
	return &out
}

// GreedyArrival computes a maximal matching scanning edges in arrival
// order (no sorting) — the maximal-matching primitive used on sampled
// subsets in the filtering algorithm.
func GreedyArrival(g *graph.Graph) *Matching {
	used := make([]bool, g.N())
	var out Matching
	for idx, e := range g.Edges() {
		if !used[e.U] && !used[e.V] {
			used[e.U], used[e.V] = true, true
			out.EdgeIdx = append(out.EdgeIdx, idx)
		}
	}
	return &out
}

// GreedyB computes a maximal uncapacitated b-matching: edges are scanned
// in descending weight order and each chosen edge's multiplicity is
// raised to saturate an endpoint (min of the two residual capacities),
// exactly the device of Lemma 20.
func GreedyB(g *graph.Graph) *Matching {
	order := make([]int, g.M())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := g.Edge(order[a]), g.Edge(order[b])
		if ea.W != eb.W {
			return ea.W > eb.W
		}
		return order[a] < order[b]
	})
	resid := make([]int, g.N())
	for v := range resid {
		resid[v] = g.B(v)
	}
	out := Matching{Mult: []int{}}
	for _, idx := range order {
		e := g.Edge(idx)
		c := resid[e.U]
		if resid[e.V] < c {
			c = resid[e.V]
		}
		if c > 0 {
			resid[e.U] -= c
			resid[e.V] -= c
			out.EdgeIdx = append(out.EdgeIdx, idx)
			out.Mult = append(out.Mult, c)
		}
	}
	return &out
}

// MatchedDegrees returns the matched degree per vertex.
func (m *Matching) MatchedDegrees(g *graph.Graph) []int {
	deg := make([]int, g.N())
	for i, idx := range m.EdgeIdx {
		c := 1
		if m.Mult != nil {
			c = m.Mult[i]
		}
		e := g.Edge(idx)
		deg[e.U] += c
		deg[e.V] += c
	}
	return deg
}
