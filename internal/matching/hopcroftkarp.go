package matching

import "repro/internal/graph"

// HKState is Hopcroft–Karp bipartite maximum-cardinality matching in
// phase-stepping form: each Phase runs one BFS layering plus the DFS
// augmentation sweep, so the engine's round-loop driver can own the loop
// (one phase per driver round). HopcroftKarp wraps it for wholesale
// runs; the whole algorithm is O(E sqrt(V)) because O(sqrt(V)) phases
// suffice.
type HKState struct {
	g              *graph.Graph
	side           []int8 // 0 = unvisited, 1 = left, 2 = right
	matchL, matchR []int32
	dist           []int32
	queueBuf       []int32
}

const hkInf = int32(1 << 30)

// NewHopcroftKarp prepares the phase-stepping solver. The bipartition is
// inferred by 2-coloring each connected component; it returns ok=false
// if the graph is not bipartite.
func NewHopcroftKarp(g *graph.Graph) (h *HKState, ok bool) {
	n := g.N()
	side := make([]int8, n)
	var stack []int
	for s := 0; s < n; s++ {
		if side[s] != 0 {
			continue
		}
		side[s] = 1
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			bad := false
			g.Neighbors(v, func(_ int, o int32) {
				if side[o] == 0 {
					side[o] = 3 - side[v]
					stack = append(stack, int(o))
				} else if side[o] == side[v] {
					bad = true
				}
			})
			if bad {
				return nil, false
			}
		}
	}
	h = &HKState{g: g, side: side,
		matchL: make([]int32, n), matchR: make([]int32, n), dist: make([]int32, n)}
	for i := range h.matchL {
		h.matchL[i] = -1
		h.matchR[i] = -1
	}
	return h, true
}

// bfs builds the layered graph from the free left vertices; it reports
// whether any augmenting path exists.
func (h *HKState) bfs() bool {
	n := h.g.N()
	h.queueBuf = h.queueBuf[:0]
	for v := 0; v < n; v++ {
		if h.side[v] == 1 {
			if h.matchL[v] == -1 {
				h.dist[v] = 0
				h.queueBuf = append(h.queueBuf, int32(v))
			} else {
				h.dist[v] = hkInf
			}
		}
	}
	found := false
	for qi := 0; qi < len(h.queueBuf); qi++ {
		v := h.queueBuf[qi]
		h.g.Neighbors(int(v), func(_ int, o int32) {
			w := h.matchR[o]
			if w == -1 {
				found = true
			} else if h.dist[w] == hkInf {
				h.dist[w] = h.dist[v] + 1
				h.queueBuf = append(h.queueBuf, w)
			}
		})
	}
	return found
}

// dfs augments along a shortest alternating path from left vertex v.
func (h *HKState) dfs(v int32) bool {
	res := false
	h.g.Neighbors(int(v), func(_ int, o int32) {
		if res {
			return
		}
		w := h.matchR[o]
		if w == -1 || (h.dist[w] == h.dist[v]+1 && h.dfs(w)) {
			h.matchL[v] = o
			h.matchR[o] = v
			res = true
		}
	})
	if !res {
		h.dist[v] = hkInf
	}
	return res
}

// Phase runs one Hopcroft–Karp phase — one BFS layering plus the DFS
// augmentation sweep over all free left vertices — and reports whether
// any augmenting path was found. Phase returning false means the
// matching is maximum.
func (h *HKState) Phase() bool {
	if !h.bfs() {
		return false
	}
	for v := 0; v < h.g.N(); v++ {
		if h.side[v] == 1 && h.matchL[v] == -1 {
			h.dfs(int32(v))
		}
	}
	return true
}

// Matching emits the current matching as edge indices into g.
func (h *HKState) Matching() *Matching {
	n := h.g.N()
	out := &Matching{}
	usedPair := make(map[uint64]bool)
	for v := 0; v < n; v++ {
		if h.side[v] == 1 && h.matchL[v] != -1 {
			usedPair[graph.KeyOf(int32(v), h.matchL[v])] = true
		}
	}
	taken := make(map[uint64]bool)
	for idx, e := range h.g.Edges() {
		k := e.Key()
		if usedPair[k] && !taken[k] {
			taken[k] = true
			out.EdgeIdx = append(out.EdgeIdx, idx)
		}
	}
	return out
}

// HopcroftKarp computes a maximum-cardinality matching of a bipartite
// graph in O(E sqrt(V)). The bipartition is inferred by 2-coloring each
// connected component; it returns ok=false if the graph is not bipartite.
func HopcroftKarp(g *graph.Graph) (m *Matching, ok bool) {
	h, ok := NewHopcroftKarp(g)
	if !ok {
		return nil, false
	}
	for h.Phase() {
	}
	return h.Matching(), true
}
