package matching

import "repro/internal/graph"

// HopcroftKarp computes a maximum-cardinality matching of a bipartite
// graph in O(E sqrt(V)). The bipartition is inferred by 2-coloring each
// connected component; it returns ok=false if the graph is not bipartite.
func HopcroftKarp(g *graph.Graph) (m *Matching, ok bool) {
	n := g.N()
	side := make([]int8, n) // 0 = unvisited, 1 = left, 2 = right
	var stack []int
	for s := 0; s < n; s++ {
		if side[s] != 0 {
			continue
		}
		side[s] = 1
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			bad := false
			g.Neighbors(v, func(_ int, o int32) {
				if side[o] == 0 {
					side[o] = 3 - side[v]
					stack = append(stack, int(o))
				} else if side[o] == side[v] {
					bad = true
				}
			})
			if bad {
				return nil, false
			}
		}
	}
	// Left vertices and adjacency (edge indices kept for output).
	matchL := make([]int32, n) // partner vertex for left vertices
	matchR := make([]int32, n)
	for i := range matchL {
		matchL[i] = -1
		matchR[i] = -1
	}
	const inf = int32(1 << 30)
	dist := make([]int32, n)
	var queueBuf []int32

	bfs := func() bool {
		queueBuf = queueBuf[:0]
		for v := 0; v < n; v++ {
			if side[v] == 1 {
				if matchL[v] == -1 {
					dist[v] = 0
					queueBuf = append(queueBuf, int32(v))
				} else {
					dist[v] = inf
				}
			}
		}
		found := false
		for qi := 0; qi < len(queueBuf); qi++ {
			v := queueBuf[qi]
			g.Neighbors(int(v), func(_ int, o int32) {
				w := matchR[o]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[v] + 1
					queueBuf = append(queueBuf, w)
				}
			})
		}
		return found
	}

	var dfs func(v int32) bool
	dfs = func(v int32) bool {
		res := false
		g.Neighbors(int(v), func(_ int, o int32) {
			if res {
				return
			}
			w := matchR[o]
			if w == -1 || (dist[w] == dist[v]+1 && dfs(w)) {
				matchL[v] = o
				matchR[o] = v
				res = true
			}
		})
		if !res {
			dist[v] = inf
		}
		return res
	}

	for bfs() {
		for v := 0; v < n; v++ {
			if side[v] == 1 && matchL[v] == -1 {
				dfs(int32(v))
			}
		}
	}
	// Emit edge indices.
	out := &Matching{}
	usedPair := make(map[uint64]bool)
	for v := 0; v < n; v++ {
		if side[v] == 1 && matchL[v] != -1 {
			usedPair[graph.KeyOf(int32(v), matchL[v])] = true
		}
	}
	taken := make(map[uint64]bool)
	for idx, e := range g.Edges() {
		k := e.Key()
		if usedPair[k] && !taken[k] {
			taken[k] = true
			out.EdgeIdx = append(out.EdgeIdx, idx)
		}
	}
	return out, true
}
