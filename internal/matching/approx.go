package matching

import (
	"sort"

	"repro/internal/graph"
)

// Offline approximate solvers. Algorithm 2 step 5 needs "a (1 - a3)
// approximation to Primal restricted to these constraints" — any offline
// matching approximation run on the union of sampled edges. The paper
// cites Duan–Pettie [13] and Ahn–Guha [2]; we substitute exact blossom
// (a3 = 0) below a size threshold and greedy + local augmentation above
// it (see DESIGN.md, substitution 2).

// OfflineConfig tunes the offline solver dispatch.
type OfflineConfig struct {
	// ExactLimit: run exact blossom when n <= ExactLimit (default 600).
	ExactLimit int
	// AugmentPasses: local-improvement passes for the large regime
	// (default 3).
	AugmentPasses int
}

func (c OfflineConfig) withDefaults() OfflineConfig {
	if c.ExactLimit == 0 {
		c.ExactLimit = 600
	}
	if c.AugmentPasses == 0 {
		c.AugmentPasses = 3
	}
	return c
}

// Offline computes a high-quality matching of g (b == 1 assumed; use
// OfflineB for capacities). Returns the matching and its weight.
func Offline(g *graph.Graph, cfg OfflineConfig) (*Matching, float64) {
	cfg = cfg.withDefaults()
	if g.N() <= cfg.ExactLimit {
		return MaxWeightMatchingFloat(g, false)
	}
	m := Greedy(g)
	m = AugmentOnePass(g, m, cfg.AugmentPasses)
	return m, m.Weight(g)
}

// OfflineB computes a high-quality uncapacitated b-matching. Small
// instances are solved exactly by vertex splitting; large ones greedily.
func OfflineB(g *graph.Graph, cfg OfflineConfig) (*Matching, float64) {
	cfg = cfg.withDefaults()
	if allUnitB(g) {
		return Offline(g, cfg)
	}
	if g.TotalB() <= cfg.ExactLimit {
		return exactBBySplitting(g)
	}
	m := GreedyB(g)
	return m, m.Weight(g)
}

func allUnitB(g *graph.Graph) bool {
	for v := 0; v < g.N(); v++ {
		if g.B(v) != 1 {
			return false
		}
	}
	return true
}

// exactBBySplitting solves maximum-weight uncapacitated b-matching
// exactly by replacing each vertex v with b_v copies and each edge {u,v}
// with min(b_u,b_v) highest-multiplicity-capable parallel slots between
// distinct copy pairs. Because the b-matching is uncapacitated, an edge
// may be used up to min(b_u, b_v) times; copy-to-copy slots realize
// exactly that.
func exactBBySplitting(g *graph.Graph) (*Matching, float64) {
	offset := make([]int, g.N()+1)
	for v := 0; v < g.N(); v++ {
		offset[v+1] = offset[v] + g.B(v)
	}
	total := offset[g.N()]
	var edges []WEdge
	type slot struct{ origIdx int }
	var slots []slot
	scale := int64(1 << 20)
	for idx, e := range g.Edges() {
		bu, bv := g.B(int(e.U)), g.B(int(e.V))
		c := bu
		if bv < c {
			c = bv
		}
		// Connect copy i of u to every copy of v (complete bipartite
		// between the copy sets realizes any multiplicity up to c).
		for i := 0; i < bu; i++ {
			for j := 0; j < bv; j++ {
				edges = append(edges, WEdge{
					U: int32(offset[e.U] + i),
					V: int32(offset[e.V] + j),
					W: int64(e.W * float64(scale)),
				})
				slots = append(slots, slot{origIdx: idx})
			}
		}
		_ = c
	}
	mate, _ := MaxWeightMatching(total, edges, false)
	// Map copies back to original vertices and count multiplicities.
	owner := make([]int32, total)
	for v := 0; v < g.N(); v++ {
		for i := offset[v]; i < offset[v+1]; i++ {
			owner[i] = int32(v)
		}
	}
	mult := make(map[uint64]int)
	for c := 0; c < total; c++ {
		d := mate[c]
		if d >= 0 && int32(c) < d {
			mult[graph.KeyOf(owner[c], owner[d])]++
		}
	}
	// Choose, per pair, the heaviest original edge index.
	bestIdx := make(map[uint64]int)
	for i, e := range g.Edges() {
		k := e.Key()
		if j, ok := bestIdx[k]; !ok || g.Edge(j).W < e.W {
			bestIdx[k] = i
		}
	}
	out := Matching{Mult: []int{}}
	w := 0.0
	keys := make([]uint64, 0, len(mult))
	for k := range mult {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		idx := bestIdx[k]
		out.EdgeIdx = append(out.EdgeIdx, idx)
		out.Mult = append(out.Mult, mult[k])
		w += g.Edge(idx).W * float64(mult[k])
	}
	_ = slots
	return &out, w
}

// AugmentOnePass improves a matching by repeated single-edge and
// 2-augmentation moves: for each unmatched or improvable edge (u,v),
// adding it and dropping the (at most two) conflicting matched edges when
// that increases total weight. passes bounds the number of sweeps.
func AugmentOnePass(g *graph.Graph, m *Matching, passes int) *Matching {
	match := make([]int, g.N()) // edge index matched at v, or -1
	for i := range match {
		match[i] = -1
	}
	inM := make(map[int]bool)
	for _, idx := range m.EdgeIdx {
		e := g.Edge(idx)
		match[e.U] = idx
		match[e.V] = idx
		inM[idx] = true
	}
	order := make([]int, g.M())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.Edge(order[a]).W > g.Edge(order[b]).W })
	for pass := 0; pass < passes; pass++ {
		improved := false
		for _, idx := range order {
			if inM[idx] {
				continue
			}
			e := g.Edge(idx)
			mu, mv := match[e.U], match[e.V]
			drop := 0.0
			if mu >= 0 {
				drop += g.Edge(mu).W
			}
			if mv >= 0 && mv != mu {
				drop += g.Edge(mv).W
			}
			if e.W > drop {
				// Perform the swap.
				if mu >= 0 {
					eu := g.Edge(mu)
					match[eu.U], match[eu.V] = -1, -1
					delete(inM, mu)
				}
				if mv >= 0 && mv != mu {
					ev := g.Edge(mv)
					match[ev.U], match[ev.V] = -1, -1
					delete(inM, mv)
				}
				match[e.U], match[e.V] = idx, idx
				inM[idx] = true
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	out := &Matching{}
	for idx := range inM {
		out.EdgeIdx = append(out.EdgeIdx, idx)
	}
	sort.Ints(out.EdgeIdx)
	return out
}
