package matching

import (
	"math"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// Iterative filtering — Lattanzi, Moseley, Suri, Vassilvitskii, "Filtering:
// a method for solving graph problems in MapReduce" (SPAA 2011), the
// paper's baseline [25] and the engine of Lemma 20's maximal b-matching.
//
// Unweighted maximal matching: repeatedly sample ~n^(1+1/p) of the
// surviving edges, compute a maximal matching of the sample greedily, and
// delete all edges with a saturated endpoint; Lemma 19 guarantees the
// survivor count drops by ~n^(1/p) per round, so O(p) rounds suffice.
// Weighted: process powers-of-two weight classes from heaviest to
// lightest, matching free vertices per class — an O(1)-approximation.

// FilterStats reports the resource usage of a filtering run.
type FilterStats struct {
	Rounds        int   // sampling rounds (adaptive accesses to the input)
	PeakSample    int   // largest sample held centrally
	EdgesPerRound []int // surviving edges at the start of each round
	// FinalResidual is the per-vertex residual capacity at termination:
	// b_v minus the matched degree. A zero entry marks a saturated
	// vertex (the quantity Lemma 21's initial assignment needs), exposed
	// here so streaming callers need no random access to recompute
	// degrees from the matching.
	FinalResidual []int
}

// MaximalMatchingFilter computes a maximal matching of the stream using
// memory budget ~ n^(1+1/p) edges. It mirrors the paper's accounting: one
// round per sampling pass. acct may be nil.
func MaximalMatchingFilter(s stream.Source, p float64, seed uint64, acct *stream.SpaceAccountant) (*Matching, FilterStats) {
	return filterCore(s, p, seed, acct, nil)
}

// MaximalBMatchingFilter is the b-matching variant (Lemma 20): choosing
// an edge raises its multiplicity to the residual min{b_u, b_v},
// saturating an endpoint, so the survivor analysis of [25] still applies.
func MaximalBMatchingFilter(s stream.Source, p float64, seed uint64, acct *stream.SpaceAccountant) (*Matching, FilterStats) {
	resid := make([]int, s.N())
	for v := range resid {
		resid[v] = s.B(v)
	}
	return filterCore(s, p, seed, acct, resid)
}

// filterCore runs filtering; resid == nil means all capacities are 1.
func filterCore(s stream.Source, p float64, seed uint64, acct *stream.SpaceAccountant, resid []int) (*Matching, FilterStats) {
	n := float64(s.N())
	budget := int(math.Ceil(math.Pow(n, 1+1/p)))
	if budget < 64 {
		budget = 64
	}
	if resid == nil {
		resid = make([]int, s.N())
		for v := range resid {
			resid[v] = 1
		}
	}
	r := xrand.New(seed)
	out := Matching{Mult: []int{}}
	stats := FilterStats{}
	alive := func(e graph.Edge) bool {
		return resid[e.U] > 0 && resid[e.V] > 0
	}
	for {
		stats.Rounds++
		if acct != nil {
			acct.BeginRound()
		}
		// Count survivors (one pass).
		survivors := 0
		stream.ForEachBlocks(s, func(_ int, edges []graph.Edge) bool {
			for i := range edges {
				if alive(edges[i]) {
					survivors++
				}
			}
			return true
		})
		stats.EdgesPerRound = append(stats.EdgesPerRound, survivors)
		if survivors == 0 {
			break
		}
		// Sample survivors with probability min(1, budget/survivors)
		// (reservoir-free: one pass with Bernoulli, capped).
		prob := 1.0
		if survivors > budget {
			prob = float64(budget) / float64(survivors)
		}
		type sampled struct {
			idx int
			e   graph.Edge
		}
		var sample []sampled
		// Sequential blocks: the Bernoulli draws happen in edge order, so
		// the sample is identical to the per-edge pass.
		stream.ForEachBlocks(s, func(base int, edges []graph.Edge) bool {
			for i := range edges {
				if alive(edges[i]) && r.Bernoulli(prob) {
					sample = append(sample, sampled{base + i, edges[i]})
				}
			}
			return true
		})
		if acct != nil {
			acct.Alloc(len(sample))
		}
		if len(sample) > stats.PeakSample {
			stats.PeakSample = len(sample)
		}
		// Greedy maximal b-matching on the sample, saturating endpoints.
		added := false
		for _, se := range sample {
			c := resid[se.e.U]
			if resid[se.e.V] < c {
				c = resid[se.e.V]
			}
			if c > 0 {
				resid[se.e.U] -= c
				resid[se.e.V] -= c
				out.EdgeIdx = append(out.EdgeIdx, se.idx)
				out.Mult = append(out.Mult, c)
				added = true
			}
		}
		if acct != nil {
			acct.Free(len(sample))
		}
		if prob >= 1 {
			// The whole residual graph fit in memory: after a maximal
			// pass over it nothing remains addable.
			break
		}
		if !added && len(sample) == 0 {
			// Extremely unlikely: resample next round.
			continue
		}
	}
	stats.FinalResidual = resid
	return &out, stats
}

// WeightedFilter computes an O(1)-approximate weighted matching in the
// style of [25]: edges are bucketed into powers-of-two weight classes and
// classes are processed from heaviest to lightest, each with the
// unweighted filtering routine restricted to still-free capacity.
func WeightedFilter(s stream.Source, p float64, seed uint64, acct *stream.SpaceAccountant) (*Matching, FilterStats) {
	maxW := 0.0
	stream.ForEachBlocks(s, func(_ int, edges []graph.Edge) bool {
		for i := range edges {
			if edges[i].W > maxW {
				maxW = edges[i].W
			}
		}
		return true
	})
	stats := FilterStats{Rounds: 1} // the max-weight pass
	out := Matching{Mult: []int{}}
	resid := make([]int, s.N())
	for v := range resid {
		resid[v] = s.B(v)
	}
	if maxW == 0 {
		stats.FinalResidual = resid
		return &out, stats
	}
	n := float64(s.N())
	budget := int(math.Ceil(math.Pow(n, 1+1/p)))
	if budget < 64 {
		budget = 64
	}
	r := xrand.New(seed)
	topClass := int(math.Floor(math.Log2(maxW)))
	// Classes below maxW/n^2 contribute at most maxW/n total per vertex
	// pair; cut off after 2 log2 n + 1 classes.
	minClass := topClass - int(2*math.Log2(n+1)) - 1
	for cl := topClass; cl >= minClass; cl-- {
		lo, hi := math.Exp2(float64(cl)), math.Exp2(float64(cl+1))
		inClass := func(e graph.Edge) bool {
			return e.W >= lo && e.W < hi && resid[e.U] > 0 && resid[e.V] > 0
		}
		for {
			stats.Rounds++
			if acct != nil {
				acct.BeginRound()
			}
			survivors := 0
			stream.ForEachBlocks(s, func(_ int, edges []graph.Edge) bool {
				for i := range edges {
					if inClass(edges[i]) {
						survivors++
					}
				}
				return true
			})
			if survivors == 0 {
				break
			}
			prob := 1.0
			if survivors > budget {
				prob = float64(budget) / float64(survivors)
			}
			type sampled struct {
				idx int
				e   graph.Edge
			}
			var sample []sampled
			stream.ForEachBlocks(s, func(base int, edges []graph.Edge) bool {
				for i := range edges {
					if inClass(edges[i]) && r.Bernoulli(prob) {
						sample = append(sample, sampled{base + i, edges[i]})
					}
				}
				return true
			})
			if len(sample) > stats.PeakSample {
				stats.PeakSample = len(sample)
			}
			if acct != nil {
				acct.Alloc(len(sample))
			}
			for _, se := range sample {
				c := resid[se.e.U]
				if resid[se.e.V] < c {
					c = resid[se.e.V]
				}
				if c > 0 {
					resid[se.e.U] -= c
					resid[se.e.V] -= c
					out.EdgeIdx = append(out.EdgeIdx, se.idx)
					out.Mult = append(out.Mult, c)
				}
			}
			if acct != nil {
				acct.Free(len(sample))
			}
			if prob >= 1 {
				break
			}
		}
	}
	stats.FinalResidual = resid
	return &out, stats
}
