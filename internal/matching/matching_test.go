package matching

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/xrand"
)

func TestGreedyHalfApprox(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 4 + r.Intn(8)
		m := 3 + r.Intn(12)
		g := graph.GNM(n, m, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 30}, seed+3)
		gr := Greedy(g)
		if err := gr.Validate(g); err != nil {
			return false
		}
		if !gr.IsMaximal(g) {
			return false
		}
		opt := bruteForceMWM(g)
		return gr.Weight(g) >= opt/2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyArrivalMaximal(t *testing.T) {
	g := graph.GNM(50, 200, graph.WeightConfig{}, 4)
	m := GreedyArrival(g)
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !m.IsMaximal(g) {
		t.Fatal("arrival greedy not maximal")
	}
}

func TestGreedyBSaturates(t *testing.T) {
	g := graph.New(3)
	g.SetB(0, 3)
	g.SetB(1, 2)
	g.SetB(2, 2)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 4)
	g.MustAddEdge(0, 2, 3)
	m := GreedyB(g)
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !m.IsMaximal(g) {
		t.Fatal("greedy b-matching not maximal")
	}
	// Heaviest edge (0,1) gets multiplicity min(3,2)=2, saturating 1.
	if m.EdgeIdx[0] != 0 || m.Mult[0] != 2 {
		t.Fatalf("first pick: idx=%d mult=%d", m.EdgeIdx[0], m.Mult[0])
	}
}

func TestMatchingValidateCatchesViolations(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	bad := &Matching{EdgeIdx: []int{0, 1}}
	if err := bad.Validate(g); err == nil {
		t.Fatal("overlapping matching validated")
	}
	bad2 := &Matching{EdgeIdx: []int{5}}
	if err := bad2.Validate(g); err == nil {
		t.Fatal("out-of-range edge validated")
	}
	bad3 := &Matching{EdgeIdx: []int{0}, Mult: []int{0}}
	if err := bad3.Validate(g); err == nil {
		t.Fatal("zero multiplicity validated")
	}
}

func TestMatchedDegreesAndSize(t *testing.T) {
	g := graph.New(4)
	g.SetB(0, 2)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	m := &Matching{EdgeIdx: []int{0, 1}, Mult: []int{1, 1}}
	deg := m.MatchedDegrees(g)
	if deg[0] != 2 || deg[1] != 1 || deg[2] != 1 || deg[3] != 0 {
		t.Fatalf("degrees %v", deg)
	}
	if m.Size() != 2 {
		t.Fatalf("size %d", m.Size())
	}
}

func TestHopcroftKarpMatchesBlossom(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		nl, nr := 2+r.Intn(6), 2+r.Intn(6)
		m := 2 + r.Intn(nl*nr-1)
		g := graph.Bipartite(nl, nr, m, graph.WeightConfig{Mode: graph.UnitWeights}, seed+9)
		hk, ok := HopcroftKarp(g)
		if !ok {
			return false
		}
		if err := hk.Validate(g); err != nil {
			return false
		}
		return hk.Size() == bruteForceMaxCard(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestHopcroftKarpRejectsOddCycle(t *testing.T) {
	g := graph.TriangleChain(1)
	if _, ok := HopcroftKarp(g); ok {
		t.Fatal("triangle accepted as bipartite")
	}
}

func TestHopcroftKarpPerfectMatching(t *testing.T) {
	// Complete bipartite K_{5,5} has a perfect matching.
	g := graph.Bipartite(5, 5, 25, graph.WeightConfig{}, 10)
	m, ok := HopcroftKarp(g)
	if !ok || m.Size() != 5 {
		t.Fatalf("K55: ok=%v size=%d", ok, m.Size())
	}
}

func TestFilteringMaximal(t *testing.T) {
	g := graph.GNM(200, 4000, graph.WeightConfig{}, 11)
	s := stream.NewEdgeStream(g)
	m, stats := MaximalMatchingFilter(s, 2, 12, nil)
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !m.IsMaximal(g) {
		t.Fatal("filtering result not maximal")
	}
	if stats.Rounds < 1 {
		t.Fatal("no rounds recorded")
	}
	// Maximal matching is a 1/2-approximation to maximum cardinality.
	edges := make([]WEdge, g.M())
	for i, e := range g.Edges() {
		edges[i] = WEdge{e.U, e.V, 1}
	}
	mate, _ := MaxWeightMatching(g.N(), edges, true)
	card := 0
	for v, u := range mate {
		if u >= 0 && int32(v) < u {
			card++
		}
	}
	if m.Size() < card/2 {
		t.Fatalf("filter size %d below half of maximum %d", m.Size(), card)
	}
}

func TestFilteringRoundsScaleWithP(t *testing.T) {
	g := graph.GNM(300, 20000, graph.WeightConfig{}, 13)
	s1 := stream.NewEdgeStream(g)
	_, st1 := MaximalMatchingFilter(s1, 1.2, 14, nil)
	s2 := stream.NewEdgeStream(g)
	_, st2 := MaximalMatchingFilter(s2, 4, 14, nil)
	// Smaller budget (larger p) cannot use fewer rounds than the big
	// budget run, and the peak sample must respect the budget ordering.
	if st2.PeakSample > st1.PeakSample*2 {
		t.Fatalf("p=4 peak %d should be below p=1.2 peak %d", st2.PeakSample, st1.PeakSample)
	}
	if st1.Rounds > st2.Rounds+1 {
		t.Fatalf("rounds: p=1.2 %d vs p=4 %d", st1.Rounds, st2.Rounds)
	}
}

func TestFilteringSurvivorsDecreaseGeometrically(t *testing.T) {
	g := graph.GNM(150, 10000, graph.WeightConfig{}, 15)
	s := stream.NewEdgeStream(g)
	_, stats := MaximalMatchingFilter(s, 2, 16, nil)
	for i := 1; i < len(stats.EdgesPerRound); i++ {
		if stats.EdgesPerRound[i] > stats.EdgesPerRound[i-1] {
			t.Fatalf("survivors increased: %v", stats.EdgesPerRound)
		}
	}
}

func TestBFilteringRespectsCapacities(t *testing.T) {
	g := graph.GNM(100, 2000, graph.WeightConfig{}, 17)
	graph.WithRandomB(g, 4, false, 18)
	s := stream.NewEdgeStream(g)
	m, _ := MaximalBMatchingFilter(s, 2, 19, nil)
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !m.IsMaximal(g) {
		t.Fatal("b-filtering not maximal")
	}
}

func TestWeightedFilterConstantApprox(t *testing.T) {
	g := graph.GNM(120, 2500, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 100}, 20)
	s := stream.NewEdgeStream(g)
	m, _ := WeightedFilter(s, 2, 21, nil)
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	_, opt := MaxWeightMatchingFloat(g, false)
	if m.Weight(g) < opt/8 {
		t.Fatalf("weighted filter %f below opt/8 (%f)", m.Weight(g), opt/8)
	}
}

func TestOfflineSmallIsExact(t *testing.T) {
	g := graph.GNM(30, 150, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 40}, 22)
	m, w := Offline(g, OfflineConfig{})
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	_, exact := MaxWeightMatchingFloat(g, false)
	if math.Abs(w-exact) > 1e-6 {
		t.Fatalf("offline small %f != exact %f", w, exact)
	}
}

func TestOfflineLargeUsesGreedy(t *testing.T) {
	g := graph.GNM(900, 8000, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 40}, 23)
	m, w := Offline(g, OfflineConfig{ExactLimit: 100})
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	if w <= 0 {
		t.Fatal("empty offline matching")
	}
	// Augmented greedy must beat plain greedy or match it.
	if plain := Greedy(g).Weight(g); w < plain-1e-9 {
		t.Fatalf("augmented %f < greedy %f", w, plain)
	}
}

func TestOfflineBExactSplitting(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 3 + r.Intn(4)
		m := 2 + r.Intn(6)
		g := graph.GNM(n, m, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 10}, seed+31)
		for v := 0; v < n; v++ {
			g.SetB(v, 1+r.Intn(3))
		}
		// Integer weights for exact comparison.
		ig := graph.New(n)
		for _, e := range g.Edges() {
			ig.MustAddEdge(int(e.U), int(e.V), math.Ceil(e.W))
		}
		for v := 0; v < n; v++ {
			ig.SetB(v, g.B(v))
		}
		mm, w := OfflineB(ig, OfflineConfig{})
		if err := mm.Validate(ig); err != nil {
			return false
		}
		want := bruteForceBMatching(ig)
		return math.Abs(w-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAugmentOnePassImproves(t *testing.T) {
	// A path where greedy-by-weight is suboptimal: 0-1 (w 3), 1-2 (w 4),
	// 2-3 (w 3). Greedy takes the 4; augmentation should find 3+3=6.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 3)
	g.MustAddEdge(1, 2, 4)
	g.MustAddEdge(2, 3, 3)
	m := Greedy(g) // takes edge 1 only (weight 4)
	if m.Weight(g) != 4 {
		t.Fatalf("greedy setup wrong: %f", m.Weight(g))
	}
	// Simple one-edge swaps cannot fix this (needs a 2-for-1 move in
	// reverse); but check it never degrades and stays valid.
	am := AugmentOnePass(g, m, 3)
	if err := am.Validate(g); err != nil {
		t.Fatal(err)
	}
	if am.Weight(g) < m.Weight(g) {
		t.Fatalf("augmentation degraded: %f -> %f", m.Weight(g), am.Weight(g))
	}
}

func TestAugmentSwapBeatsBadMatching(t *testing.T) {
	// Matching holds a light edge; a heavy conflicting edge should swap in.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)  // light, in matching
	g.MustAddEdge(1, 2, 10) // heavy, conflicts at 1
	m := &Matching{EdgeIdx: []int{0}}
	am := AugmentOnePass(g, m, 2)
	if am.Weight(g) != 10 {
		t.Fatalf("swap failed: weight %f", am.Weight(g))
	}
}
