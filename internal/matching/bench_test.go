package matching

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/stream"
)

func BenchmarkBlossomExact(b *testing.B) {
	g := graph.GNM(200, 2000, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 100}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxWeightMatchingFloat(g, false)
	}
}

func BenchmarkGreedy(b *testing.B) {
	g := graph.GNM(1000, 20000, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 100}, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(g)
	}
}

func BenchmarkFiltering(b *testing.B) {
	g := graph.GNM(500, 20000, graph.WeightConfig{}, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := stream.NewEdgeStream(g)
		MaximalMatchingFilter(s, 2, uint64(i), nil)
	}
}

func BenchmarkHopcroftKarp(b *testing.B) {
	g := graph.Bipartite(500, 500, 10000, graph.WeightConfig{}, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HopcroftKarp(g)
	}
}
