package matching

import (
	"math"

	"repro/internal/graph"
)

// Exact maximum-weight matching on general (nonbipartite) graphs.
//
// This is Galil's O(n³) primal-dual blossom algorithm in the array-based
// formulation popularized by Van Rantwijk's reference implementation: a
// linear-programming method that maintains vertex duals, blossom duals and
// a laminar family of blossoms (the same odd-set structure as Theorem 22
// of the paper), growing alternating trees and augmenting along tight
// edges. Weights are int64; all arithmetic is exact (weights are doubled
// internally so duals stay integral).
//
// It serves two roles in the reproduction: ground truth for every
// approximation experiment, and the offline solver run on the union of
// deferred-sparsifier samples in Algorithm 2 step 5.

// WEdge is an integer-weighted edge for the exact solver.
type WEdge struct {
	U, V int32
	W    int64
}

type blossomState struct {
	n       int // vertices
	edges   []WEdge
	nedge   int
	endpt   []int32   // endpt[p] = vertex of endpoint p; p = 2k or 2k+1
	nbend   [][]int32 // nbend[v] = endpoint indices p with endpt[p^1] = v
	maxCard bool

	mate   []int32 // mate[v] = endpoint p matched to v, or -1
	label  []int8  // per (possibly blossom) id: 0 free, 1 S, 2 T (+4 marks in scan)
	lblend []int32 // endpoint through which the label was assigned, or -1
	inbl   []int32 // inbl[v] = top-level blossom containing v
	blpar  []int32 // parent blossom, or -1
	blchld [][]int32
	blbase []int32
	blendp [][]int32
	best   []int32   // least-slack edge to an S-blossom, per id, or -1
	blbest [][]int32 // per blossom: list of least-slack edges to other S-blossoms
	unused []int32   // free blossom ids
	dual   []int64
	allow  []bool
	queue  []int32
}

// MaxWeightMatching computes a maximum-weight matching of the given
// edges over vertices 0..n-1. If maxCardinality is true, it computes a
// maximum-weight matching among maximum-cardinality matchings. It returns
// mate (mate[v] = partner vertex or -1) and the total weight.
func MaxWeightMatching(n int, edges []WEdge, maxCardinality bool) ([]int32, int64) {
	mateOut := make([]int32, n)
	for i := range mateOut {
		mateOut[i] = -1
	}
	if len(edges) == 0 || n == 0 {
		return mateOut, 0
	}
	// Double weights so that delta arithmetic stays integral.
	st := &blossomState{n: n, maxCard: maxCardinality}
	st.edges = make([]WEdge, len(edges))
	var maxw int64
	for i, e := range edges {
		if e.U == e.V {
			panic("matching: self loop in MaxWeightMatching")
		}
		st.edges[i] = WEdge{U: e.U, V: e.V, W: 2 * e.W}
		if 2*e.W > maxw {
			maxw = 2 * e.W
		}
	}
	st.nedge = len(st.edges)
	st.endpt = make([]int32, 2*st.nedge)
	st.nbend = make([][]int32, n)
	for k, e := range st.edges {
		st.endpt[2*k] = e.U
		st.endpt[2*k+1] = e.V
		st.nbend[e.U] = append(st.nbend[e.U], int32(2*k+1))
		st.nbend[e.V] = append(st.nbend[e.V], int32(2*k))
	}
	N2 := 2 * n
	st.mate = make([]int32, n)
	for i := range st.mate {
		st.mate[i] = -1
	}
	st.label = make([]int8, N2)
	st.lblend = make([]int32, N2)
	st.inbl = make([]int32, n)
	st.blpar = make([]int32, N2)
	st.blchld = make([][]int32, N2)
	st.blbase = make([]int32, N2)
	st.blendp = make([][]int32, N2)
	st.best = make([]int32, N2)
	st.blbest = make([][]int32, N2)
	st.dual = make([]int64, N2)
	st.allow = make([]bool, st.nedge)
	for v := 0; v < n; v++ {
		st.inbl[v] = int32(v)
		st.blbase[v] = int32(v)
		st.dual[v] = maxw
	}
	for b := n; b < N2; b++ {
		st.blbase[b] = -1
	}
	for i := range st.blpar {
		st.blpar[i] = -1
		st.lblend[i] = -1
		st.best[i] = -1
	}
	for b := N2 - 1; b >= n; b-- {
		st.unused = append(st.unused, int32(b))
	}

	st.run()

	var total int64
	for v := 0; v < n; v++ {
		if st.mate[v] >= 0 {
			mateOut[v] = st.endpt[st.mate[v]]
		}
	}
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		if mateOut[v] >= 0 && !seen[v] {
			seen[v] = true
			seen[mateOut[v]] = true
			// Find the matched edge weight (original, undoubled).
			p := st.mate[v]
			total += st.edges[p/2].W / 2
		}
	}
	return mateOut, total
}

// MaxWeightMatchingFloat solves with float64 weights by scaling to int64.
// scale controls the precision (default 1<<20 per unit when 0); results
// are exact for the scaled instance.
func MaxWeightMatchingFloat(g *graph.Graph, maxCardinality bool) (*Matching, float64) {
	maxW := g.MaxWeight()
	scale := 1.0
	if maxW > 0 {
		// Keep weights comfortably inside int64: 2*W*scale*n < 2^62.
		scale = math.Exp2(math.Floor(math.Log2((1 << 40) / (maxW + 1))))
		if scale < 1 {
			scale = 1
		}
	}
	edges := make([]WEdge, g.M())
	for i, e := range g.Edges() {
		edges[i] = WEdge{U: e.U, V: e.V, W: int64(math.Round(e.W * scale))}
	}
	mate, _ := MaxWeightMatching(g.N(), edges, maxCardinality)
	// Recover the selected edge set: for each matched pair pick the
	// heaviest edge between them (the solver works on the implicit simple
	// graph).
	bestIdx := make(map[uint64]int)
	for i, e := range g.Edges() {
		k := e.Key()
		if j, ok := bestIdx[k]; !ok || g.Edge(j).W < e.W {
			bestIdx[k] = i
		}
	}
	var out Matching
	totalW := 0.0
	for v := 0; v < g.N(); v++ {
		u := mate[v]
		if u >= 0 && int32(v) < u {
			idx := bestIdx[graph.KeyOf(int32(v), u)]
			out.EdgeIdx = append(out.EdgeIdx, idx)
			totalW += g.Edge(idx).W
		}
	}
	return &out, totalW
}

func (st *blossomState) slack(k int32) int64 {
	e := st.edges[k]
	return st.dual[e.U] + st.dual[e.V] - e.W
}

// blossomLeaves appends the vertex leaves of blossom b to out.
func (st *blossomState) blossomLeaves(b int32, out []int32) []int32 {
	if int(b) < st.n {
		return append(out, b)
	}
	for _, c := range st.blchld[b] {
		out = st.blossomLeaves(c, out)
	}
	return out
}

// assignLabel labels the top-level blossom of w with t through endpoint p.
func (st *blossomState) assignLabel(w int32, t int8, p int32) {
	b := st.inbl[w]
	st.label[w] = t
	st.label[b] = t
	st.lblend[w] = p
	st.lblend[b] = p
	st.best[w] = -1
	st.best[b] = -1
	if t == 1 {
		st.queue = st.blossomLeaves(b, st.queue)
	} else if t == 2 {
		base := st.blbase[b]
		st.assignLabel(st.endpt[st.mate[base]], 1, st.mate[base]^1)
	}
}

// scanBlossom traces back from v and w to find a common ancestor base of
// the alternating paths, or -1 if an augmenting path was found instead.
func (st *blossomState) scanBlossom(v, w int32) int32 {
	var path []int32
	base := int32(-1)
	for v != -1 || w != -1 {
		b := st.inbl[v]
		if st.label[b]&4 != 0 {
			base = st.blbase[b]
			break
		}
		path = append(path, b)
		st.label[b] |= 4
		if st.lblend[b] == -1 {
			v = -1
		} else {
			v = st.endpt[st.lblend[b]]
			b = st.inbl[v]
			v = st.endpt[st.lblend[b]]
		}
		if w != -1 {
			v, w = w, v
		}
	}
	for _, b := range path {
		st.label[b] &^= 4
	}
	return base
}

// addBlossom creates a new blossom with the given base through edge k.
func (st *blossomState) addBlossom(base int32, k int32) {
	e := st.edges[k]
	v, w := e.U, e.V
	bb := st.inbl[base]
	bv := st.inbl[v]
	bw := st.inbl[w]
	b := st.unused[len(st.unused)-1]
	st.unused = st.unused[:len(st.unused)-1]
	st.blbase[b] = base
	st.blpar[b] = -1
	st.blpar[bb] = b
	var path, endps []int32
	for bv != bb {
		st.blpar[bv] = b
		path = append(path, bv)
		endps = append(endps, st.lblend[bv])
		v = st.endpt[st.lblend[bv]]
		bv = st.inbl[v]
	}
	path = append(path, bb)
	// reverse
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	for i, j := 0, len(endps)-1; i < j; i, j = i+1, j-1 {
		endps[i], endps[j] = endps[j], endps[i]
	}
	endps = append(endps, 2*k)
	for bw != bb {
		st.blpar[bw] = b
		path = append(path, bw)
		endps = append(endps, st.lblend[bw]^1)
		w = st.endpt[st.lblend[bw]]
		bw = st.inbl[w]
	}
	st.blchld[b] = path
	st.blendp[b] = endps
	st.label[b] = 1
	st.lblend[b] = st.lblend[bb]
	st.dual[b] = 0
	var leaves []int32
	leaves = st.blossomLeaves(b, leaves)
	for _, lv := range leaves {
		if st.label[st.inbl[lv]] == 2 {
			st.queue = append(st.queue, lv)
		}
		st.inbl[lv] = b
	}
	// Recompute least-slack edges to other S-blossoms.
	bestTo := make([]int32, 2*st.n)
	for i := range bestTo {
		bestTo[i] = -1
	}
	for _, pb := range path {
		var lists [][]int32
		if st.blbest[pb] == nil {
			var leafEdges []int32
			var lvs []int32
			lvs = st.blossomLeaves(pb, lvs)
			for _, lv := range lvs {
				for _, p := range st.nbend[lv] {
					leafEdges = append(leafEdges, p/2)
				}
			}
			lists = [][]int32{leafEdges}
		} else {
			lists = [][]int32{st.blbest[pb]}
		}
		for _, list := range lists {
			for _, ek := range list {
				ee := st.edges[ek]
				i, j := ee.U, ee.V
				if st.inbl[j] == b {
					i, j = j, i
				}
				bj := st.inbl[j]
				if bj != b && st.label[bj] == 1 &&
					(bestTo[bj] == -1 || st.slack(ek) < st.slack(bestTo[bj])) {
					bestTo[bj] = ek
				}
			}
		}
		st.blbest[pb] = nil
		st.best[pb] = -1
	}
	var bl []int32
	for _, ek := range bestTo {
		if ek != -1 {
			bl = append(bl, ek)
		}
	}
	st.blbest[b] = bl
	st.best[b] = -1
	for _, ek := range bl {
		if st.best[b] == -1 || st.slack(ek) < st.slack(st.best[b]) {
			st.best[b] = ek
		}
	}
}

// expandBlossom dissolves blossom b, relabeling its children. endstage
// marks the final cleanup (dual = 0 blossoms after the last augmentation).
func (st *blossomState) expandBlossom(b int32, endstage bool) {
	for _, s := range st.blchld[b] {
		st.blpar[s] = -1
		if int(s) < st.n {
			st.inbl[s] = s
		} else if endstage && st.dual[s] == 0 {
			st.expandBlossom(s, endstage)
		} else {
			var lvs []int32
			lvs = st.blossomLeaves(s, lvs)
			for _, lv := range lvs {
				st.inbl[lv] = s
			}
		}
	}
	if !endstage && st.label[b] == 2 {
		entryChild := st.inbl[st.endpt[st.lblend[b]^1]]
		j := 0
		for i, c := range st.blchld[b] {
			if c == entryChild {
				j = i
				break
			}
		}
		var jstep int
		var endptrick int32
		if j&1 != 0 {
			j -= len(st.blchld[b])
			jstep = 1
			endptrick = 0
		} else {
			jstep = -1
			endptrick = 1
		}
		p := st.lblend[b]
		childs := st.blchld[b]
		endps := st.blendp[b]
		idx := func(i int) int { // python-style negative indexing
			if i < 0 {
				return i + len(childs)
			}
			return i
		}
		for j != 0 {
			st.label[st.endpt[p^1]] = 0
			st.label[st.endpt[endps[idx(j-int(endptrick))]^endptrick^1]] = 0
			st.assignLabel(st.endpt[p^1], 2, p)
			st.allow[endps[idx(j-int(endptrick))]/2] = true
			j += jstep
			p = endps[idx(j-int(endptrick))] ^ endptrick
			st.allow[p/2] = true
			j += jstep
		}
		bv := childs[idx(j)]
		st.label[st.endpt[p^1]] = 2
		st.label[bv] = 2
		st.lblend[st.endpt[p^1]] = p
		st.lblend[bv] = p
		st.best[bv] = -1
		j += jstep
		for childs[idx(j)] != entryChild {
			bv = childs[idx(j)]
			if st.label[bv] == 1 {
				j += jstep
				continue
			}
			var lvs []int32
			lvs = st.blossomLeaves(bv, lvs)
			var lab int32 = -1
			for _, lv := range lvs {
				if st.label[lv] != 0 {
					lab = lv
					break
				}
			}
			if lab != -1 {
				st.label[lab] = 0
				st.label[st.endpt[st.mate[st.blbase[bv]]]] = 0
				st.assignLabel(lab, 2, st.lblend[lab])
			}
			j += jstep
		}
	}
	st.label[b] = -1
	st.lblend[b] = -1
	st.blchld[b] = nil
	st.blendp[b] = nil
	st.blbase[b] = -1
	st.blbest[b] = nil
	st.best[b] = -1
	st.unused = append(st.unused, b)
}

// augmentBlossom swaps the matching inside blossom b so that vertex v
// becomes the base.
func (st *blossomState) augmentBlossom(b, v int32) {
	t := v
	for st.blpar[t] != b {
		t = st.blpar[t]
	}
	if int(t) >= st.n {
		st.augmentBlossom(t, v)
	}
	childs := st.blchld[b]
	endps := st.blendp[b]
	i := 0
	for k, c := range childs {
		if c == t {
			i = k
			break
		}
	}
	j := i
	var jstep int
	var endptrick int32
	if i&1 != 0 {
		j -= len(childs)
		jstep = 1
		endptrick = 0
	} else {
		jstep = -1
		endptrick = 1
	}
	idx := func(i int) int {
		if i < 0 {
			return i + len(childs)
		}
		return i
	}
	for j != 0 {
		j += jstep
		t = childs[idx(j)]
		p := endps[idx(j-int(endptrick))] ^ endptrick
		if int(t) >= st.n {
			st.augmentBlossom(t, st.endpt[p])
		}
		j += jstep
		t = childs[idx(j)]
		if int(t) >= st.n {
			st.augmentBlossom(t, st.endpt[p^1])
		}
		st.mate[st.endpt[p]] = p ^ 1
		st.mate[st.endpt[p^1]] = p
	}
	st.blchld[b] = append(childs[i:], childs[:i]...)
	st.blendp[b] = append(endps[i:], endps[:i]...)
	st.blbase[b] = st.blbase[st.blchld[b][0]]
}

// augmentMatching augments along the path through tight edge k.
func (st *blossomState) augmentMatching(k int32) {
	e := st.edges[k]
	for pass := 0; pass < 2; pass++ {
		var s, p int32
		if pass == 0 {
			s, p = e.U, 2*k+1
		} else {
			s, p = e.V, 2*k
		}
		for {
			bs := st.inbl[s]
			if int(bs) >= st.n {
				st.augmentBlossom(bs, s)
			}
			st.mate[s] = p
			if st.lblend[bs] == -1 {
				break
			}
			t := st.endpt[st.lblend[bs]]
			bt := st.inbl[t]
			s = st.endpt[st.lblend[bt]]
			j := st.endpt[st.lblend[bt]^1]
			if int(bt) >= st.n {
				st.augmentBlossom(bt, j)
			}
			st.mate[j] = st.lblend[bt]
			p = st.lblend[bt] ^ 1
		}
	}
}

func (st *blossomState) run() {
	n := st.n
	for iter := 0; iter < n; iter++ {
		for i := range st.label {
			st.label[i] = 0
		}
		for i := range st.best {
			st.best[i] = -1
		}
		for b := n; b < 2*n; b++ {
			st.blbest[b] = nil
		}
		for i := range st.allow {
			st.allow[i] = false
		}
		st.queue = st.queue[:0]
		for v := 0; v < n; v++ {
			if st.mate[v] == -1 && st.label[st.inbl[v]] == 0 {
				st.assignLabel(int32(v), 1, -1)
			}
		}
		augmented := false
		for {
			for len(st.queue) > 0 && !augmented {
				v := st.queue[len(st.queue)-1]
				st.queue = st.queue[:len(st.queue)-1]
				for _, p := range st.nbend[v] {
					k := p / 2
					w := st.endpt[p]
					if st.inbl[v] == st.inbl[w] {
						continue
					}
					var kslack int64
					if !st.allow[k] {
						kslack = st.slack(k)
						if kslack <= 0 {
							st.allow[k] = true
						}
					}
					if st.allow[k] {
						if st.label[st.inbl[w]] == 0 {
							st.assignLabel(w, 2, p^1)
						} else if st.label[st.inbl[w]] == 1 {
							base := st.scanBlossom(v, w)
							if base >= 0 {
								st.addBlossom(base, k)
							} else {
								st.augmentMatching(k)
								augmented = true
								break
							}
						} else if st.label[w] == 0 {
							st.label[w] = 2
							st.lblend[w] = p ^ 1
						}
					} else if st.label[st.inbl[w]] == 1 {
						b := st.inbl[v]
						if st.best[b] == -1 || kslack < st.slack(st.best[b]) {
							st.best[b] = k
						}
					} else if st.label[w] == 0 {
						if st.best[w] == -1 || kslack < st.slack(st.best[w]) {
							st.best[w] = k
						}
					}
				}
			}
			if augmented {
				break
			}
			// Compute the dual adjustment delta.
			deltaType := -1
			var delta int64
			var deltaEdge, deltaBlossom int32 = -1, -1
			if !st.maxCard {
				deltaType = 1
				delta = st.minVertexDual()
				if delta < 0 {
					delta = 0
				}
			}
			for v := 0; v < n; v++ {
				if st.label[st.inbl[v]] == 0 && st.best[v] != -1 {
					d := st.slack(st.best[v])
					if deltaType == -1 || d < delta {
						delta = d
						deltaType = 2
						deltaEdge = st.best[v]
					}
				}
			}
			for b := 0; b < 2*n; b++ {
				if st.blpar[b] == -1 && st.label[b] == 1 && st.best[b] != -1 {
					d := st.slack(st.best[b]) / 2
					if deltaType == -1 || d < delta {
						delta = d
						deltaType = 3
						deltaEdge = st.best[b]
					}
				}
			}
			for b := n; b < 2*n; b++ {
				if st.blbase[b] >= 0 && st.blpar[b] == -1 && st.label[b] == 2 &&
					(deltaType == -1 || st.dual[b] < delta) {
					delta = st.dual[b]
					deltaType = 4
					deltaBlossom = int32(b)
				}
			}
			if deltaType == -1 {
				deltaType = 1
				delta = st.minVertexDual()
				if delta < 0 {
					delta = 0
				}
			}
			// Update duals.
			for v := 0; v < n; v++ {
				switch st.label[st.inbl[v]] {
				case 1:
					st.dual[v] -= delta
				case 2:
					st.dual[v] += delta
				}
			}
			for b := n; b < 2*n; b++ {
				if st.blbase[b] >= 0 && st.blpar[b] == -1 {
					switch st.label[b] {
					case 1:
						st.dual[b] += delta
					case 2:
						st.dual[b] -= delta
					}
				}
			}
			switch deltaType {
			case 1:
				// Optimum reached.
			case 2:
				st.allow[deltaEdge] = true
				e := st.edges[deltaEdge]
				i := e.U
				if st.label[st.inbl[i]] == 0 {
					i = e.V
				}
				st.queue = append(st.queue, i)
			case 3:
				st.allow[deltaEdge] = true
				st.queue = append(st.queue, st.edges[deltaEdge].U)
			case 4:
				st.expandBlossom(deltaBlossom, false)
			}
			if deltaType == 1 {
				break
			}
		}
		if !augmented {
			break
		}
		// Expand all S-blossoms with zero dual.
		for b := n; b < 2*n; b++ {
			if st.blpar[b] == -1 && st.blbase[b] >= 0 && st.label[b] == 1 && st.dual[b] == 0 {
				st.expandBlossom(int32(b), true)
			}
		}
	}
}

func (st *blossomState) minVertexDual() int64 {
	m := st.dual[0]
	for v := 1; v < st.n; v++ {
		if st.dual[v] < m {
			m = st.dual[v]
		}
	}
	return m
}
