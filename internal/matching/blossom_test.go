package matching

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestBlossomTrivial(t *testing.T) {
	mate, w := MaxWeightMatching(2, []WEdge{{0, 1, 5}}, false)
	if w != 5 || mate[0] != 1 || mate[1] != 0 {
		t.Fatalf("trivial: w=%d mate=%v", w, mate)
	}
}

func TestBlossomEmpty(t *testing.T) {
	mate, w := MaxWeightMatching(3, nil, false)
	if w != 0 || mate[0] != -1 {
		t.Fatalf("empty: w=%d mate=%v", w, mate)
	}
}

func TestBlossomPath(t *testing.T) {
	// Path with weights 2-3-2: optimal picks the two 2s (total 4)? No:
	// edges (0,1,2),(1,2,3),(2,3,2): picking (0,1) and (2,3) gives 4 > 3.
	mate, w := MaxWeightMatching(4, []WEdge{{0, 1, 2}, {1, 2, 3}, {2, 3, 2}}, false)
	if w != 4 {
		t.Fatalf("path: w=%d, want 4, mate=%v", w, mate)
	}
}

func TestBlossomPrefersHeavyMiddle(t *testing.T) {
	// Middle edge so heavy the ends stay single.
	_, w := MaxWeightMatching(4, []WEdge{{0, 1, 2}, {1, 2, 10}, {2, 3, 2}}, false)
	if w != 10 {
		t.Fatalf("w=%d, want 10", w)
	}
}

func TestBlossomMaxCardinality(t *testing.T) {
	// Same path; with maxCardinality the two light edges win (cardinality
	// 2 beats cardinality 1).
	mate, w := MaxWeightMatching(4, []WEdge{{0, 1, 2}, {1, 2, 10}, {2, 3, 2}}, true)
	if w != 4 {
		t.Fatalf("maxcard: w=%d mate=%v, want 4", w, mate)
	}
}

func TestBlossomTriangle(t *testing.T) {
	// Odd cycle: only one edge can be used.
	_, w := MaxWeightMatching(3, []WEdge{{0, 1, 3}, {1, 2, 4}, {0, 2, 5}}, false)
	if w != 5 {
		t.Fatalf("triangle: w=%d, want 5", w)
	}
}

func TestBlossomClassicBlossomCases(t *testing.T) {
	// Cases from Van Rantwijk's reference test suite (S-blossom creation
	// and expansion paths).
	cases := []struct {
		n     int
		edges []WEdge
		want  int64
	}{
		// create S-blossom and use it for augmentation
		{5, []WEdge{{1, 2, 8}, {1, 3, 9}, {2, 3, 10}, {3, 4, 7}}, 15},
		{7, []WEdge{{1, 2, 8}, {1, 3, 9}, {2, 3, 10}, {3, 4, 7}, {1, 6, 5}, {4, 5, 6}}, 21},
		// create S-blossom, relabel as T-blossom, use for augmentation
		{7, []WEdge{{1, 2, 9}, {1, 3, 8}, {2, 3, 10}, {1, 4, 5}, {4, 5, 4}, {1, 6, 3}}, 17},
		{7, []WEdge{{1, 2, 9}, {1, 3, 8}, {2, 3, 10}, {1, 4, 5}, {4, 5, 3}, {1, 6, 4}}, 17},
		{7, []WEdge{{1, 2, 9}, {1, 3, 8}, {2, 3, 10}, {1, 4, 5}, {4, 5, 3}, {3, 6, 4}}, 16},
		// create nested S-blossom, use for augmentation (optimum 1-3, 2-4, 5-6)
		{9, []WEdge{{1, 2, 9}, {1, 3, 9}, {2, 3, 10}, {2, 4, 8}, {3, 5, 8}, {4, 5, 10}, {5, 6, 6}}, 23},
		// create S-blossom, relabel as S, include in nested S-blossom
		{9, []WEdge{{1, 2, 10}, {1, 7, 10}, {2, 3, 12}, {3, 4, 20}, {3, 5, 20}, {4, 5, 25}, {5, 6, 10}, {6, 7, 10}, {7, 8, 8}}, 48},
		// again, but slightly different expanding order
		{12, []WEdge{{1, 2, 8}, {1, 3, 8}, {2, 3, 10}, {2, 4, 12}, {3, 5, 12}, {4, 5, 14}, {4, 6, 12}, {5, 7, 12}, {6, 7, 14}, {7, 8, 12}}, 44},
		// create nested S-blossom, relabel as T, expand
		{9, []WEdge{{1, 2, 19}, {1, 3, 20}, {1, 8, 8}, {2, 3, 25}, {2, 4, 18}, {3, 5, 18}, {4, 5, 13}, {4, 7, 7}, {5, 6, 7}}, 47},
		// create nested S-blossom, augment, expand recursively
		{11, []WEdge{{1, 2, 8}, {1, 3, 8}, {2, 3, 10}, {2, 4, 12}, {3, 5, 12}, {4, 5, 14}, {4, 6, 12}, {5, 7, 12}, {6, 7, 14}, {7, 8, 12}, {5, 9, 9}, {6, 10, 7}}, 48},
	}
	for ci, c := range cases {
		mate, w := MaxWeightMatching(c.n, c.edges, false)
		if w != c.want {
			t.Errorf("case %d: weight %d, want %d (mate %v)", ci, w, c.want, mate)
		}
		// Sanity: mate is symmetric.
		for v, u := range mate {
			if u >= 0 && mate[u] != int32(v) {
				t.Errorf("case %d: mate not symmetric at %d", ci, v)
			}
		}
	}
}

func TestBlossomNegativeBehaviour(t *testing.T) {
	// Zero-weight edges are never forced (weights here are >= 0 in the
	// repo, but the solver must not match worthless edges when better
	// options exist).
	_, w := MaxWeightMatching(4, []WEdge{{0, 1, 0}, {1, 2, 6}, {2, 3, 0}}, false)
	if w != 6 {
		t.Fatalf("w=%d, want 6", w)
	}
}

func TestBlossomAgainstBruteForceRandom(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 4 + r.Intn(6) // 4..9 vertices
		maxM := n * (n - 1) / 2
		m := 3 + r.Intn(maxM-2)
		g := graph.GNM(n, m, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 20}, seed+77)
		// Integerize weights for exactness.
		ig := graph.New(n)
		for _, e := range g.Edges() {
			ig.MustAddEdge(int(e.U), int(e.V), math.Ceil(e.W))
		}
		_, got := MaxWeightMatchingFloat(ig, false)
		want := bruteForceMWM(ig)
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestBlossomMaxCardAgainstBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 4 + r.Intn(5)
		m := 3 + r.Intn(8)
		g := graph.GNM(n, m, graph.WeightConfig{Mode: graph.UnitWeights}, seed+177)
		edges := make([]WEdge, g.M())
		for i, e := range g.Edges() {
			edges[i] = WEdge{e.U, e.V, 1}
		}
		mate, _ := MaxWeightMatching(n, edges, true)
		card := 0
		for v, u := range mate {
			if u >= 0 && int32(v) < u {
				card++
			}
		}
		return card == bruteForceMaxCard(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBlossomFloatRecoversPlanted(t *testing.T) {
	g, planted := graph.PlantedMatching(40, 100, 100, 2, 55)
	m, w := MaxWeightMatchingFloat(g, false)
	if w < planted {
		t.Fatalf("exact solver found %f < planted %f", w, planted)
	}
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weight(g)-w) > 1e-6 {
		t.Fatalf("reported weight %f != matching weight %f", w, m.Weight(g))
	}
}

func TestBlossomParallelEdges(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 3)
	g.MustAddEdge(0, 1, 7)
	m, w := MaxWeightMatchingFloat(g, false)
	if w != 7 || len(m.EdgeIdx) != 1 || g.Edge(m.EdgeIdx[0]).W != 7 {
		t.Fatalf("parallel edges: w=%f m=%v", w, m.EdgeIdx)
	}
}

func TestBlossomLargerRandomConsistency(t *testing.T) {
	// On a moderate instance the exact weight must dominate greedy.
	g := graph.GNM(120, 1200, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 50}, 66)
	_, exact := MaxWeightMatchingFloat(g, false)
	greedy := Greedy(g).Weight(g)
	if exact < greedy-1e-6 {
		t.Fatalf("exact %f < greedy %f", exact, greedy)
	}
	if greedy < exact/2-1e-6 {
		t.Fatalf("greedy %f below half of exact %f", greedy, exact)
	}
}
