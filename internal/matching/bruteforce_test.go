package matching

import (
	"repro/internal/graph"
)

// bruteForceMWM computes the exact maximum-weight matching by exhaustive
// search. Only for small test graphs (m <= ~25).
func bruteForceMWM(g *graph.Graph) float64 {
	used := make([]bool, g.N())
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == g.M() {
			return 0
		}
		best := rec(i + 1)
		e := g.Edge(i)
		if !used[e.U] && !used[e.V] {
			used[e.U], used[e.V] = true, true
			if w := e.W + rec(i+1); w > best {
				best = w
			}
			used[e.U], used[e.V] = false, false
		}
		return best
	}
	return rec(0)
}

// bruteForceMaxCard computes the maximum cardinality of a matching.
func bruteForceMaxCard(g *graph.Graph) int {
	used := make([]bool, g.N())
	var rec func(i int) int
	rec = func(i int) int {
		if i == g.M() {
			return 0
		}
		best := rec(i + 1)
		e := g.Edge(i)
		if !used[e.U] && !used[e.V] {
			used[e.U], used[e.V] = true, true
			if c := 1 + rec(i+1); c > best {
				best = c
			}
			used[e.U], used[e.V] = false, false
		}
		return best
	}
	return rec(0)
}

// bruteForceBMatching computes the exact maximum-weight uncapacitated
// b-matching by searching over per-edge multiplicities.
func bruteForceBMatching(g *graph.Graph) float64 {
	resid := make([]int, g.N())
	for v := range resid {
		resid[v] = g.B(v)
	}
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == g.M() {
			return 0
		}
		best := rec(i + 1) // multiplicity 0
		e := g.Edge(i)
		maxC := resid[e.U]
		if resid[e.V] < maxC {
			maxC = resid[e.V]
		}
		for c := 1; c <= maxC; c++ {
			resid[e.U] -= c
			resid[e.V] -= c
			if w := float64(c)*e.W + rec(i+1); w > best {
				best = w
			}
			resid[e.U] += c
			resid[e.V] += c
		}
		return best
	}
	return rec(0)
}
