package stream

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Filtered is a predicate-restricted view of a parent Source: the same
// vertex set, only the edges satisfying keep, with the parent's edge
// indices preserved (so the idx sequence is a strictly increasing
// subsequence of [0, parent.Len())). It is how per-level streams are
// derived without materializing per-level subgraphs — the device behind
// Lemma 20's per-level initial solutions running out-of-core.
//
// A Filtered view meters its own passes and does not advance the
// parent's counter: in the paper's accounting each level's stream runs
// on its own machine, and the driver charges the parent once per
// conceptual round, not once per level.
type Filtered struct {
	meter
	parent Source
	keep   func(idx int, e graph.Edge) bool

	lenOnce sync.Once
	length  int64
}

var _ Source = (*Filtered)(nil)

// NewFilter returns the view of parent restricted to edges with
// keep(idx, e) == true. keep must be pure and safe for concurrent calls.
func NewFilter(parent Source, keep func(idx int, e graph.Edge) bool) *Filtered {
	return &Filtered{parent: parent, keep: keep}
}

// N returns the number of vertices.
func (s *Filtered) N() int { return s.parent.N() }

// B returns the capacity of vertex v.
func (s *Filtered) B(v int) int { return s.parent.B(v) }

// TotalB returns Σ b_i.
func (s *Filtered) TotalB() int { return s.parent.TotalB() }

// Len returns the number of edges passing the filter. The first call
// counts them with one raw sweep of the parent and caches the result.
func (s *Filtered) Len() int {
	s.lenOnce.Do(func() {
		var cnt int64
		s.parent.Sweep(func(idx int, e graph.Edge) bool {
			if s.keep(idx, e) {
				cnt++
			}
			return true
		})
		atomic.StoreInt64(&s.length, cnt)
	})
	return int(atomic.LoadInt64(&s.length))
}

// ForEach performs one pass over the matching edges in parent order.
// Returning false aborts the pass (it still counts as a pass).
func (s *Filtered) ForEach(f func(idx int, e graph.Edge) bool) {
	s.pass()
	s.Sweep(f)
}

// Sweep is ForEach without the pass charge (Source contract).
func (s *Filtered) Sweep(f func(idx int, e graph.Edge) bool) {
	s.parent.Sweep(func(idx int, e graph.Edge) bool {
		if !s.keep(idx, e) {
			return true
		}
		return f(idx, e)
	})
}

// ForEachParallel performs one pass over the matching edges, sharded by
// the parent. Counts one pass for any worker count (Source contract).
func (s *Filtered) ForEachParallel(workers int, f func(idx int, e graph.Edge)) {
	s.pass()
	s.SweepParallel(workers, f)
}

// SweepParallel is ForEachParallel without the pass charge.
func (s *Filtered) SweepParallel(workers int, f func(idx int, e graph.Edge)) {
	s.parent.SweepParallel(workers, func(idx int, e graph.Edge) {
		if s.keep(idx, e) {
			f(idx, e)
		}
	})
}

// ForEachBlocks performs one metered pass over the matching edges in
// dense blocks (BlockSweeper contract): each parent block is split
// into the maximal runs of kept edges and every run is delivered as a
// zero-copy sub-slice, so the sparse-index subsequence still arrives
// as dense blocks.
func (s *Filtered) ForEachBlocks(f func(base int, edges []graph.Edge) bool) {
	s.pass()
	s.SweepBlocks(f)
}

// SweepBlocks is ForEachBlocks without the pass charge.
func (s *Filtered) SweepBlocks(f func(base int, edges []graph.Edge) bool) {
	SweepBlocks(s.parent, func(base int, edges []graph.Edge) bool {
		return filterBlocks(base, edges, s.keep, f)
	})
}

// ForEachBlocksParallel performs one metered pass over the matching
// edges with blocks sharded by the parent (BlockSweeper contract).
func (s *Filtered) ForEachBlocksParallel(workers int, f func(base int, edges []graph.Edge)) {
	s.pass()
	s.SweepBlocksParallel(workers, f)
}

// SweepBlocksParallel is ForEachBlocksParallel without the pass charge.
func (s *Filtered) SweepBlocksParallel(workers int, f func(base int, edges []graph.Edge)) {
	SweepBlocksParallel(s.parent, workers, func(base int, edges []graph.Edge) {
		filterBlocks(base, edges, s.keep, func(b int, blk []graph.Edge) bool {
			f(b, blk)
			return true
		})
	})
}
