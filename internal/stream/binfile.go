package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// Compact binary edge format ("RBG1") for out-of-core instances. The
// layout is a fixed header, an optional capacity table, then fixed-size
// 16-byte edge records, little-endian throughout:
//
//	offset  size  field
//	0       4     magic "RBG1"
//	4       1     version (1)
//	5       1     flags (bit 0: capacity table present)
//	6       2     reserved (0)
//	8       8     n (uint64)
//	16      8     m (uint64)
//	24      4n    capacities (uint32 each), only when flag bit 0 is set
//	…       16m   edge records: u uint32, v uint32, w float64 (IEEE bits)
//
// Fixed-size records are what make the format a good Source backend: a
// pass is a buffered sequential read, a parallel pass maps shard [lo, hi)
// to byte range [off+16·lo, off+16·hi), and a point lookup is one pread —
// the file never needs to be resident.

const (
	binMagic      = "RBG1"
	binVersion    = 1
	binFlagHasB   = 1
	binRecordSize = 16
	// binReadBuffer sizes the per-sweep read buffer: big enough to make
	// passes sequential-I/O bound, small enough that a sweep holds O(1)
	// memory relative to the instance.
	binReadBuffer = 1 << 18
)

// WriteBinary encodes src in the RBG1 format (one metered pass over src).
func WriteBinary(w io.Writer, src Source) error {
	bw := bufio.NewWriterSize(w, binReadBuffer)
	n, m := src.N(), src.Len()
	hasB := false
	for v := 0; v < n; v++ {
		if src.B(v) != 1 {
			hasB = true
			break
		}
	}
	flags := byte(0)
	if hasB {
		flags |= binFlagHasB
	}
	header := make([]byte, 24)
	copy(header, binMagic)
	header[4] = binVersion
	header[5] = flags
	binary.LittleEndian.PutUint64(header[8:], uint64(n))
	binary.LittleEndian.PutUint64(header[16:], uint64(m))
	if _, err := bw.Write(header); err != nil {
		return err
	}
	if hasB {
		var buf [4]byte
		for v := 0; v < n; v++ {
			binary.LittleEndian.PutUint32(buf[:], uint32(src.B(v)))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	var werr error
	var rec [binRecordSize]byte
	src.ForEach(func(_ int, e graph.Edge) bool {
		binary.LittleEndian.PutUint32(rec[0:], uint32(e.U))
		binary.LittleEndian.PutUint32(rec[4:], uint32(e.V))
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(e.W))
		if _, err := bw.Write(rec[:]); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// WriteBinaryFile encodes src into a new file at path.
func WriteBinaryFile(path string, src Source) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, src); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FileSource is the out-of-core Source backend: edges live in an RBG1
// file and every sweep is a buffered chunked read. Only the header and
// the O(n) capacity table are resident. Sweeps and lookups are safe for
// concurrent use (they share the file handle through preads).
type FileSource struct {
	meter
	f       *os.File
	n, m    int
	b       []int // nil = all ones
	totalB  int
	dataOff int64
}

var _ Source = (*FileSource)(nil)
var _ RandomAccess = (*FileSource)(nil)

// OpenBinary opens an RBG1 file as a Source.
func OpenBinary(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	src, err := newFileSource(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return src, nil
}

func newFileSource(f *os.File) (*FileSource, error) {
	header := make([]byte, 24)
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, fmt.Errorf("stream: short binary header: %w", err)
	}
	if string(header[:4]) != binMagic {
		return nil, fmt.Errorf("stream: bad magic %q (want %q)", header[:4], binMagic)
	}
	if header[4] != binVersion {
		return nil, fmt.Errorf("stream: unsupported binary version %d", header[4])
	}
	n := int(binary.LittleEndian.Uint64(header[8:]))
	m := int(binary.LittleEndian.Uint64(header[16:]))
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("stream: implausible header n=%d m=%d", n, m)
	}
	src := &FileSource{f: f, n: n, m: m, totalB: n, dataOff: 24}
	if header[5]&binFlagHasB != 0 {
		raw := make([]byte, 4*n)
		if _, err := io.ReadFull(f, raw); err != nil {
			return nil, fmt.Errorf("stream: short capacity table: %w", err)
		}
		src.b = make([]int, n)
		src.totalB = 0
		for v := 0; v < n; v++ {
			bv := int(binary.LittleEndian.Uint32(raw[4*v:]))
			if bv < 1 {
				return nil, fmt.Errorf("stream: capacity %d of vertex %d out of range", bv, v)
			}
			src.b[v] = bv
			src.totalB += bv
		}
		src.dataOff += int64(4 * n)
	}
	if fi, err := f.Stat(); err == nil {
		if want := src.dataOff + int64(m)*binRecordSize; fi.Size() < want {
			return nil, fmt.Errorf("stream: truncated edge section: %d bytes, want %d", fi.Size(), want)
		}
	}
	return src, nil
}

// Close releases the underlying file.
func (s *FileSource) Close() error { return s.f.Close() }

// N returns the number of vertices.
func (s *FileSource) N() int { return s.n }

// B returns the capacity of vertex v.
func (s *FileSource) B(v int) int {
	if s.b == nil {
		return 1
	}
	return s.b[v]
}

// TotalB returns Σ b_i.
func (s *FileSource) TotalB() int { return s.totalB }

// Len returns the stream length m.
func (s *FileSource) Len() int { return s.m }

// Edge returns the i-th edge with a single positioned read (RandomAccess).
func (s *FileSource) Edge(i int) graph.Edge {
	if i < 0 || i >= s.m {
		panic(fmt.Sprintf("stream: edge index %d out of range [0,%d)", i, s.m))
	}
	var rec [binRecordSize]byte
	if _, err := s.f.ReadAt(rec[:], s.dataOff+int64(i)*binRecordSize); err != nil {
		panic(fmt.Sprintf("stream: read edge %d: %v", i, err))
	}
	return decodeRecord(rec[:])
}

func decodeRecord(rec []byte) graph.Edge {
	return graph.Edge{
		U: int32(binary.LittleEndian.Uint32(rec[0:])),
		V: int32(binary.LittleEndian.Uint32(rec[4:])),
		W: math.Float64frombits(binary.LittleEndian.Uint64(rec[8:])),
	}
}

// sweepRange enumerates edges [lo, hi) through a buffered reader.
func (s *FileSource) sweepRange(lo, hi int, f func(idx int, e graph.Edge) bool) {
	if lo >= hi {
		return
	}
	sec := io.NewSectionReader(s.f, s.dataOff+int64(lo)*binRecordSize, int64(hi-lo)*binRecordSize)
	br := bufio.NewReaderSize(sec, binReadBuffer)
	var rec [binRecordSize]byte
	for i := lo; i < hi; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			panic(fmt.Sprintf("stream: read edge %d: %v", i, err))
		}
		if !f(i, decodeRecord(rec[:])) {
			return
		}
	}
}

// ForEach performs one buffered pass over the file in record order.
// Returning false aborts the pass (it still counts as a pass).
func (s *FileSource) ForEach(f func(idx int, e graph.Edge) bool) {
	s.pass()
	s.Sweep(f)
}

// Sweep is ForEach without the pass charge (Source contract).
func (s *FileSource) Sweep(f func(idx int, e graph.Edge) bool) {
	s.sweepRange(0, s.m, f)
}

// ForEachParallel performs one pass sharded by record range: each worker
// reads its own byte range through its own buffered section reader, so
// the shards together read the file exactly once. Counts one pass for any
// worker count (Source contract).
func (s *FileSource) ForEachParallel(workers int, f func(idx int, e graph.Edge)) {
	s.pass()
	s.SweepParallel(workers, f)
}

// SweepParallel is ForEachParallel without the pass charge.
func (s *FileSource) SweepParallel(workers int, f func(idx int, e graph.Edge)) {
	parallel.ForEachShard(workers, s.m, func(_ int, r parallel.Range) {
		s.sweepRange(r.Lo, r.Hi, func(idx int, e graph.Edge) bool {
			f(idx, e)
			return true
		})
	})
}
