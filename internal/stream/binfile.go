package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// Compact binary edge formats for out-of-core instances, little-endian
// throughout. Two wire versions share the FileSource backend and are
// auto-detected by magic:
//
// RBG1 — fixed-size records. The layout is a fixed header, an optional
// capacity table, then 16-byte edge records:
//
//	offset  size  field
//	0       4     magic "RBG1"
//	4       1     version (1)
//	5       1     flags (bit 0: capacity table present)
//	6       2     reserved (0)
//	8       8     n (uint64)
//	16      8     m (uint64)
//	24      4n    capacities (uint32 each), only when flag bit 0 is set
//	…       16m   edge records: u uint32, v uint32, w float64 (IEEE bits)
//
// Fixed-size records make every access a pure offset computation: a
// pass is a sequential chunked read, a parallel pass maps shard
// [lo, hi) to byte range [off+16·lo, off+16·hi), and a point lookup is
// one pread — the file never needs to be resident.
//
// RBG2 — varint/delta-compressed successor. Edges are framed in blocks
// of `blockLen` records (stream order is preserved exactly — the codec
// never reorders), each frame independently decodable, with a frame
// offset index at the tail so parallel shards and point lookups keep
// working:
//
//	offset  size  field
//	0       4     magic "RBG2"
//	4       1     version (2)
//	5       1     flags (bit 0: capacity table present)
//	6       2     reserved (0)
//	8       8     n (uint64)
//	16      8     m (uint64)
//	24      4     blockLen: edges per frame (uint32)
//	28      4     reserved (0)
//	32      4n    capacities (uint32 each), only when flag bit 0 is set
//	…       …     frames (ceil(m/blockLen) of them, back to back)
//	…       8B    frame index: one uint64 absolute offset per frame
//	end-16  8     index offset (uint64)
//	end-8   8     trailer magic "RBG2IDX1"
//
// Each frame is:
//
//	offset  size  field
//	0       4     payload length in bytes (uint32, excludes this header)
//	4       4     edge count (uint32; blockLen except the last frame)
//	8       1     weight mode: 0 unit, 1 const, 2 dict, 3 raw
//	…       …     mode 1: 8-byte weight; mode 2: dict length byte then
//	              that many 8-byte weights (first-appearance order)
//	…       …     endpoint section, per edge: uvarint(zigzag(u-prevU))
//	              then uvarint(v); prevU starts at 0 per frame
//	…       …     weight section: mode 2: one dict index byte per edge;
//	              mode 3: 8 bytes per edge; modes 0/1: empty
//
// The endpoint delta plus the per-block weight dictionary is where the
// compression comes from: unit-weight graphs spend ~4 bytes/edge
// instead of 16, and any weight law with few distinct values per block
// (unit, powers, constants) skips the 8-byte float entirely.

const (
	binMagic      = "RBG1"
	binVersion    = 1
	binFlagHasB   = 1
	binRecordSize = 16
	// binReadBuffer sizes the writer's buffered output: big enough to
	// make encoding sequential-I/O bound, small enough that a write
	// holds O(1) memory relative to the instance.
	binReadBuffer = 1 << 18

	bin2Magic       = "RBG2"
	bin2Version     = 2
	bin2HeaderSize  = 32
	bin2TrailerSize = 16
	bin2IndexMagic  = "RBG2IDX1"
	// bin2BlockLen is the frame granule the writer uses; readers accept
	// any value in [1, bin2MaxBlockLen]. It matches BlockEdges so
	// decoded frames map one-to-one onto delivered blocks.
	bin2BlockLen = BlockEdges
	// bin2MaxBlockLen bounds the per-sweep decode scratch a hostile
	// header can demand.
	bin2MaxBlockLen = 1 << 18
	// bin2MaxDict is the writer's cap on per-frame weight dictionaries.
	// The wire format allows up to 255; past a few dozen distinct
	// values per block the raw encoding is nearly as small anyway.
	bin2MaxDict = 64

	// binMaxVertices / binMaxEdges reject absurd headers before any
	// size-derived allocation happens (the stat-size checks then bound
	// everything else).
	binMaxVertices = int64(1) << 40
	binMaxEdges    = int64(1) << 48
)

// ReadError is the typed failure of a FileSource access: an I/O error
// or a corrupt frame discovered mid-sweep. The Source sweep contract
// has no error return, so sweeps surface it as a panic payload; the
// engine driver recovers exactly this type and converts it into a
// normal error through its abort path, which is how a bad file fails
// one solve instead of taking down a serving pool.
type ReadError struct {
	// Path is the file the access hit.
	Path string
	// Off is the byte offset of the failed access.
	Off int64
	// Err is the underlying I/O or format error.
	Err error
}

// Error implements error.
func (e *ReadError) Error() string {
	return fmt.Sprintf("stream: read %s @%d: %v", e.Path, e.Off, e.Err)
}

// Unwrap returns the underlying error.
func (e *ReadError) Unwrap() error { return e.Err }

// WriteBinary encodes src in the RBG1 format (one metered pass over src).
func WriteBinary(w io.Writer, src Source) error {
	bw := bufio.NewWriterSize(w, binReadBuffer)
	n, m := src.N(), src.Len()
	flags := byte(0)
	if hasCapacities(src) {
		flags |= binFlagHasB
	}
	header := make([]byte, 24)
	copy(header, binMagic)
	header[4] = binVersion
	header[5] = flags
	binary.LittleEndian.PutUint64(header[8:], uint64(n))
	binary.LittleEndian.PutUint64(header[16:], uint64(m))
	if _, err := bw.Write(header); err != nil {
		return err
	}
	if flags&binFlagHasB != 0 {
		if err := writeCapacities(bw, src); err != nil {
			return err
		}
	}
	var werr error
	var rec [binRecordSize]byte
	src.ForEach(func(_ int, e graph.Edge) bool {
		binary.LittleEndian.PutUint32(rec[0:], uint32(e.U))
		binary.LittleEndian.PutUint32(rec[4:], uint32(e.V))
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(e.W))
		if _, err := bw.Write(rec[:]); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

func hasCapacities(src Source) bool {
	for v := 0; v < src.N(); v++ {
		if src.B(v) != 1 {
			return true
		}
	}
	return false
}

func writeCapacities(bw *bufio.Writer, src Source) error {
	var buf [4]byte
	for v := 0; v < src.N(); v++ {
		binary.LittleEndian.PutUint32(buf[:], uint32(src.B(v)))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBinaryFile encodes src into a new RBG1 file at path.
func WriteBinaryFile(path string, src Source) error {
	return writeFile(path, src, WriteBinary)
}

// WriteBinary2 encodes src in the RBG2 format (one metered pass over
// src). The edge order on the wire is exactly the stream order — the
// codec compresses, it never reorders — so a round trip through RBG2
// is bit-identical to the source.
func WriteBinary2(w io.Writer, src Source) error {
	bw := bufio.NewWriterSize(w, binReadBuffer)
	n, m := src.N(), src.Len()
	flags := byte(0)
	if hasCapacities(src) {
		flags |= binFlagHasB
	}
	header := make([]byte, bin2HeaderSize)
	copy(header, bin2Magic)
	header[4] = bin2Version
	header[5] = flags
	binary.LittleEndian.PutUint64(header[8:], uint64(n))
	binary.LittleEndian.PutUint64(header[16:], uint64(m))
	binary.LittleEndian.PutUint32(header[24:], uint32(bin2BlockLen))
	if _, err := bw.Write(header); err != nil {
		return err
	}
	off := int64(bin2HeaderSize)
	if flags&binFlagHasB != 0 {
		if err := writeCapacities(bw, src); err != nil {
			return err
		}
		off += int64(4 * n)
	}
	numBlocks := (m + bin2BlockLen - 1) / bin2BlockLen
	frameOff := make([]int64, 0, numBlocks)
	staged := make([]graph.Edge, 0, bin2BlockLen)
	var payload []byte
	var werr error
	flush := func() bool {
		if len(staged) == 0 {
			return true
		}
		payload = encodeFrame(payload[:0], staged)
		var fh [8]byte
		binary.LittleEndian.PutUint32(fh[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(fh[4:], uint32(len(staged)))
		if _, err := bw.Write(fh[:]); err != nil {
			werr = err
			return false
		}
		if _, err := bw.Write(payload); err != nil {
			werr = err
			return false
		}
		frameOff = append(frameOff, off)
		off += int64(8 + len(payload))
		staged = staged[:0]
		return true
	}
	src.ForEach(func(_ int, e graph.Edge) bool {
		staged = append(staged, e)
		if len(staged) == bin2BlockLen {
			return flush()
		}
		return true
	})
	if werr == nil {
		flush()
	}
	if werr != nil {
		return werr
	}
	if len(frameOff) != numBlocks {
		return fmt.Errorf("stream: source delivered %d frames of edges, header promised %d", len(frameOff), numBlocks)
	}
	var u64 [8]byte
	indexOff := off
	for _, fo := range frameOff {
		binary.LittleEndian.PutUint64(u64[:], uint64(fo))
		if _, err := bw.Write(u64[:]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint64(u64[:], uint64(indexOff))
	if _, err := bw.Write(u64[:]); err != nil {
		return err
	}
	if _, err := bw.Write([]byte(bin2IndexMagic)); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteBinaryFile2 encodes src into a new RBG2 file at path.
func WriteBinaryFile2(path string, src Source) error {
	return writeFile(path, src, WriteBinary2)
}

func writeFile(path string, src Source, enc func(io.Writer, Source) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := enc(f, src); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// encodeFrame appends one RBG2 frame payload for the staged edges.
func encodeFrame(dst []byte, edges []graph.Edge) []byte {
	// Pick the weight mode: all-unit and all-constant blocks carry no
	// per-edge weight bytes at all; a small distinct set becomes a
	// one-byte dictionary index per edge; anything else is raw floats.
	allUnit, allConst := true, true
	var dict []float64
	for i := range edges {
		w := edges[i].W
		if w != 1 {
			allUnit = false
		}
		if w != edges[0].W {
			allConst = false
		}
		if dict != nil || i == 0 {
			found := false
			for _, dw := range dict {
				if dw == w {
					found = true
					break
				}
			}
			if !found {
				if len(dict) == bin2MaxDict {
					dict = nil
				} else {
					dict = append(dict, w)
				}
			}
		}
	}
	switch {
	case allUnit:
		dst = append(dst, 0)
	case allConst:
		dst = append(dst, 1)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(edges[0].W))
	case dict != nil:
		dst = append(dst, 2, byte(len(dict)))
		for _, dw := range dict {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(dw))
		}
	default:
		dst = append(dst, 3)
	}
	prevU := int64(0)
	for i := range edges {
		u := int64(edges[i].U)
		dst = binary.AppendUvarint(dst, zigzag(u-prevU))
		dst = binary.AppendUvarint(dst, uint64(uint32(edges[i].V)))
		prevU = u
	}
	switch {
	case allUnit || allConst:
	case dict != nil:
		for i := range edges {
			for di, dw := range dict {
				if dw == edges[i].W {
					dst = append(dst, byte(di))
					break
				}
			}
		}
	default:
		for i := range edges {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(edges[i].W))
		}
	}
	return dst
}

func zigzag(x int64) uint64 { return uint64((x << 1) ^ (x >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// FileSource is the out-of-core Source backend: edges live in an RBG1
// or RBG2 file (auto-detected) and every sweep is a chunked block
// decode. Only the header, the O(n) capacity table and the O(m/blockLen)
// frame index are resident — plus, where the platform supports it, a
// read-only mmap of the file, in which case passes are sequential
// page-ins with no read syscalls at all (ReadAt is the fallback).
// Sweeps and lookups are safe for concurrent use.
type FileSource struct {
	meter
	f       *os.File
	path    string
	n, m    int
	b       []int // nil = all ones
	totalB  int
	dataOff int64
	ver     int
	data    []byte // read-only mmap of the whole file; nil = pread path

	// RBG2 only: frame geometry. Frame k occupies bytes
	// [frameOff[k], frameOff[k+1]) and edges [k·blockLen, …).
	blockLen int
	frameOff []int64
	maxFrame int

	// Point-lookup cache: Edge decodes the owning frame once and
	// serves neighbors from it (sequential random access would
	// otherwise decode a frame per edge).
	mu        sync.Mutex
	cacheBase int
	cacheBlk  []graph.Edge
	cacheRaw  []byte
}

var _ Source = (*FileSource)(nil)
var _ RandomAccess = (*FileSource)(nil)
var _ BlockSweeper = (*FileSource)(nil)

// OpenOptions configures OpenBinaryWith.
type OpenOptions struct {
	// NoMmap forces the ReadAt access path even on platforms where the
	// file could be mapped. The mmap and ReadAt paths decode the same
	// bytes through the same frame decoders — this switch exists for
	// measurement (experiment E19) and as an escape hatch.
	NoMmap bool
}

// OpenBinary opens an RBG1 or RBG2 file as a Source, detecting the
// version from the magic. The file is mapped read-only when the
// platform supports it, with a transparent ReadAt fallback.
func OpenBinary(path string) (*FileSource, error) {
	return OpenBinaryWith(path, OpenOptions{})
}

// OpenBinaryWith is OpenBinary with explicit options.
func OpenBinaryWith(path string, opt OpenOptions) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	src, err := newFileSource(f, path, opt)
	if err != nil {
		f.Close()
		return nil, err
	}
	return src, nil
}

func newFileSource(f *os.File, path string, opt OpenOptions) (*FileSource, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	var magic [4]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		return nil, fmt.Errorf("stream: short binary header: %w", err)
	}
	var src *FileSource
	switch string(magic[:]) {
	case binMagic:
		src, err = parseV1(f, size)
	case bin2Magic:
		src, err = parseV2(f, size)
	default:
		return nil, fmt.Errorf("stream: bad magic %q (want %q or %q)", magic[:], binMagic, bin2Magic)
	}
	if err != nil {
		return nil, err
	}
	src.path = path
	if !opt.NoMmap {
		// Best-effort: a failed map (platform without support, weird
		// filesystem, empty file) silently keeps the ReadAt path.
		if data, merr := mmapFile(f, size); merr == nil {
			src.data = data
			adviseSequential(data)
		}
	}
	return src, nil
}

// readHeader validates the shared n/m/flags header fields.
func readHeader(f *os.File, header []byte, size, fixed int64) (n, m int, err error) {
	if size < fixed {
		return 0, 0, fmt.Errorf("stream: short binary header: %d bytes", size)
	}
	if _, err := f.ReadAt(header, 0); err != nil {
		return 0, 0, fmt.Errorf("stream: short binary header: %w", err)
	}
	n64 := int64(binary.LittleEndian.Uint64(header[8:]))
	m64 := int64(binary.LittleEndian.Uint64(header[16:]))
	if n64 < 0 || m64 < 0 || n64 > binMaxVertices || m64 > binMaxEdges {
		return 0, 0, fmt.Errorf("stream: implausible header n=%d m=%d", n64, m64)
	}
	return int(n64), int(m64), nil
}

// readCapacities loads the 4n-byte capacity table when the flag is set.
// The caller has already checked the file is big enough to hold it.
func (s *FileSource) readCapacities(f *os.File) error {
	raw := make([]byte, 4*s.n)
	if _, err := f.ReadAt(raw, s.dataOff); err != nil {
		return fmt.Errorf("stream: short capacity table: %w", err)
	}
	s.b = make([]int, s.n)
	s.totalB = 0
	for v := 0; v < s.n; v++ {
		bv := int(binary.LittleEndian.Uint32(raw[4*v:]))
		if bv < 1 {
			return fmt.Errorf("stream: capacity %d of vertex %d out of range", bv, v)
		}
		s.b[v] = bv
		s.totalB += bv
	}
	s.dataOff += int64(4 * s.n)
	return nil
}

func parseV1(f *os.File, size int64) (*FileSource, error) {
	header := make([]byte, 24)
	n, m, err := readHeader(f, header, size, 24)
	if err != nil {
		return nil, err
	}
	if header[4] != binVersion {
		return nil, fmt.Errorf("stream: unsupported RBG1 version %d", header[4])
	}
	src := &FileSource{f: f, n: n, m: m, totalB: n, dataOff: 24, ver: 1}
	if header[5]&binFlagHasB != 0 {
		if size < 24+int64(4)*int64(n) {
			return nil, fmt.Errorf("stream: short capacity table: %d bytes", size)
		}
		if err := src.readCapacities(f); err != nil {
			return nil, err
		}
	}
	if want := src.dataOff + int64(m)*binRecordSize; size < want {
		return nil, fmt.Errorf("stream: truncated edge section: %d bytes, want %d", size, want)
	}
	return src, nil
}

func parseV2(f *os.File, size int64) (*FileSource, error) {
	header := make([]byte, bin2HeaderSize)
	n, m, err := readHeader(f, header, size, bin2HeaderSize+bin2TrailerSize)
	if err != nil {
		return nil, err
	}
	if header[4] != bin2Version {
		return nil, fmt.Errorf("stream: unsupported RBG2 version %d", header[4])
	}
	blockLen := int(binary.LittleEndian.Uint32(header[24:]))
	if blockLen < 1 || blockLen > bin2MaxBlockLen {
		return nil, fmt.Errorf("stream: RBG2 block length %d out of range [1,%d]", blockLen, bin2MaxBlockLen)
	}
	src := &FileSource{f: f, n: n, m: m, totalB: n, dataOff: bin2HeaderSize, ver: 2, blockLen: blockLen}
	if header[5]&binFlagHasB != 0 {
		if size < bin2HeaderSize+int64(4)*int64(n)+bin2TrailerSize {
			return nil, fmt.Errorf("stream: short capacity table: %d bytes", size)
		}
		if err := src.readCapacities(f); err != nil {
			return nil, err
		}
	}
	numBlocks := (m + blockLen - 1) / blockLen
	var trailer [bin2TrailerSize]byte
	if _, err := f.ReadAt(trailer[:], size-bin2TrailerSize); err != nil {
		return nil, fmt.Errorf("stream: short RBG2 trailer: %w", err)
	}
	if string(trailer[8:]) != bin2IndexMagic {
		return nil, fmt.Errorf("stream: bad RBG2 trailer magic %q", trailer[8:])
	}
	indexOff := int64(binary.LittleEndian.Uint64(trailer[:8]))
	if wantIdx := size - bin2TrailerSize - int64(8)*int64(numBlocks); indexOff != wantIdx || indexOff < src.dataOff {
		return nil, fmt.Errorf("stream: RBG2 index offset %d inconsistent with %d frames in %d bytes", indexOff, numBlocks, size)
	}
	rawIdx := make([]byte, 8*numBlocks)
	if _, err := f.ReadAt(rawIdx, indexOff); err != nil {
		return nil, fmt.Errorf("stream: short RBG2 index: %w", err)
	}
	src.frameOff = make([]int64, numBlocks+1)
	src.frameOff[numBlocks] = indexOff
	prev := src.dataOff
	for k := 0; k < numBlocks; k++ {
		fo := int64(binary.LittleEndian.Uint64(rawIdx[8*k:]))
		if fo != prev {
			return nil, fmt.Errorf("stream: RBG2 frame %d at offset %d, want %d (frames must be contiguous)", k, fo, prev)
		}
		src.frameOff[k] = fo
		prev = fo
		// Advance past this frame using the next index entry (or the
		// index itself for the last frame); lengths are validated here
		// so sweeps can trust the geometry.
		var end int64
		if k+1 < numBlocks {
			end = int64(binary.LittleEndian.Uint64(rawIdx[8*(k+1):]))
		} else {
			end = indexOff
		}
		frameLen := end - fo
		if frameLen < 9 {
			return nil, fmt.Errorf("stream: RBG2 frame %d has %d bytes, want >= 9", k, frameLen)
		}
		if int(frameLen) > src.maxFrame {
			src.maxFrame = int(frameLen)
		}
		prev = end
	}
	return src, nil
}

// Close releases the mapping (when present) and the underlying file.
func (s *FileSource) Close() error {
	if s.data != nil {
		munmapFile(s.data)
		s.data = nil
	}
	return s.f.Close()
}

// N returns the number of vertices.
func (s *FileSource) N() int { return s.n }

// B returns the capacity of vertex v.
func (s *FileSource) B(v int) int {
	if s.b == nil {
		return 1
	}
	return s.b[v]
}

// TotalB returns Σ b_i.
func (s *FileSource) TotalB() int { return s.totalB }

// Len returns the stream length m.
func (s *FileSource) Len() int { return s.m }

// Version returns the wire format version backing the source (1 or 2).
func (s *FileSource) Version() int { return s.ver }

// Mapped reports whether the file is served from a memory mapping
// (false means the ReadAt fallback is in use).
func (s *FileSource) Mapped() bool { return s.data != nil }

// readAt fills buf from the mapping or the file, panicking with a
// typed *ReadError on failure (the sweep contract has no error return;
// the engine converts the panic into an abort).
func (s *FileSource) readAt(buf []byte, off int64) []byte {
	if s.data != nil {
		return s.data[off : off+int64(len(buf))]
	}
	if _, err := s.f.ReadAt(buf, off); err != nil {
		panic(&ReadError{Path: s.path, Off: off, Err: err})
	}
	return buf
}

// Edge returns the i-th edge (RandomAccess): a single 16-byte pread on
// RBG1, a cached frame decode on RBG2.
func (s *FileSource) Edge(i int) graph.Edge {
	if i < 0 || i >= s.m {
		panic(fmt.Sprintf("stream: edge index %d out of range [0,%d)", i, s.m))
	}
	if s.ver == 1 {
		var rec [binRecordSize]byte
		off := s.dataOff + int64(i)*binRecordSize
		e := decodeRecord(s.readAt(rec[:], off))
		if err := s.checkEdge(e); err != nil {
			panic(&ReadError{Path: s.path, Off: off, Err: err})
		}
		return e
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := i / s.blockLen
	base := k * s.blockLen
	if s.cacheBlk == nil || s.cacheBase != base || len(s.cacheBlk) == 0 {
		if cap(s.cacheBlk) < s.blockLen {
			s.cacheBlk = make([]graph.Edge, s.blockLen)
		}
		if s.data == nil && cap(s.cacheRaw) < s.maxFrame {
			s.cacheRaw = make([]byte, s.maxFrame)
		}
		blk, err := s.decodeFrameInto(k, s.cacheRaw, s.cacheBlk[:cap(s.cacheBlk)])
		if err != nil {
			s.cacheBlk = s.cacheBlk[:0]
			panic(&ReadError{Path: s.path, Off: s.frameOff[k], Err: err})
		}
		s.cacheBase = base
		s.cacheBlk = blk
	}
	return s.cacheBlk[i-base]
}

func decodeRecord(rec []byte) graph.Edge {
	return graph.Edge{
		U: int32(binary.LittleEndian.Uint32(rec[0:])),
		V: int32(binary.LittleEndian.Uint32(rec[4:])),
		W: math.Float64frombits(binary.LittleEndian.Uint64(rec[8:])),
	}
}

// checkEdge validates a decoded RBG1 record's endpoints — a hostile or
// corrupt file must fail the sweep cleanly, not hand consumers vertex
// IDs that index out of range.
func (s *FileSource) checkEdge(e graph.Edge) error {
	if e.U < 0 || e.V < 0 || int(e.U) >= s.n || int(e.V) >= s.n || e.U == e.V {
		return fmt.Errorf("edge endpoints (%d, %d) invalid for n=%d", e.U, e.V, s.n)
	}
	return nil
}

// decodeFrameInto reads and decodes RBG2 frame k into out (which must
// have capacity for blockLen edges), returning the decoded edges.
func (s *FileSource) decodeFrameInto(k int, raw []byte, out []graph.Edge) ([]graph.Edge, error) {
	frameLen := int(s.frameOff[k+1] - s.frameOff[k])
	var buf []byte
	if s.data != nil {
		buf = s.data[s.frameOff[k] : s.frameOff[k]+int64(frameLen)]
	} else {
		buf = raw[:frameLen]
		if _, err := s.f.ReadAt(buf, s.frameOff[k]); err != nil {
			return nil, err
		}
	}
	payloadLen := int(binary.LittleEndian.Uint32(buf[0:]))
	count := int(binary.LittleEndian.Uint32(buf[4:]))
	if payloadLen != frameLen-8 {
		return nil, fmt.Errorf("frame %d: payload %d bytes, frame holds %d", k, payloadLen, frameLen-8)
	}
	want := s.blockLen
	if rest := s.m - k*s.blockLen; rest < want {
		want = rest
	}
	if count != want {
		return nil, fmt.Errorf("frame %d: %d edges, want %d", k, count, want)
	}
	return decodeFramePayload(buf[8:], count, s.n, out)
}

// decodeFramePayload decodes one frame payload. Every read is bounds-
// checked and endpoints are validated against n — frames from
// untrusted files must fail cleanly, not index out of range.
func decodeFramePayload(p []byte, count, n int, out []graph.Edge) ([]graph.Edge, error) {
	if len(p) < 1 {
		return nil, fmt.Errorf("empty frame payload")
	}
	mode := p[0]
	p = p[1:]
	var constW float64
	var dict []float64
	switch mode {
	case 0:
		constW = 1
	case 1:
		if len(p) < 8 {
			return nil, fmt.Errorf("short const-weight header")
		}
		constW = math.Float64frombits(binary.LittleEndian.Uint64(p))
		p = p[8:]
	case 2:
		if len(p) < 1 {
			return nil, fmt.Errorf("short dict header")
		}
		dictLen := int(p[0])
		p = p[1:]
		if dictLen < 1 || len(p) < 8*dictLen {
			return nil, fmt.Errorf("short weight dict (%d entries, %d bytes left)", dictLen, len(p))
		}
		dict = make([]float64, dictLen)
		for i := range dict {
			dict[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
		}
		p = p[8*dictLen:]
	case 3:
	default:
		return nil, fmt.Errorf("unknown weight mode %d", mode)
	}
	out = out[:count]
	prevU := int64(0)
	for i := 0; i < count; i++ {
		du, sz := binary.Uvarint(p)
		if sz <= 0 {
			return nil, fmt.Errorf("truncated endpoint varint at edge %d", i)
		}
		p = p[sz:]
		v64, sz := binary.Uvarint(p)
		if sz <= 0 {
			return nil, fmt.Errorf("truncated endpoint varint at edge %d", i)
		}
		p = p[sz:]
		u := prevU + unzigzag(du)
		prevU = u
		if u < 0 || u >= int64(n) || v64 >= uint64(n) || u == int64(v64) {
			return nil, fmt.Errorf("edge %d endpoints (%d, %d) invalid for n=%d", i, u, v64, n)
		}
		out[i].U = int32(u)
		out[i].V = int32(v64)
	}
	switch mode {
	case 0, 1:
		for i := range out {
			out[i].W = constW
		}
	case 2:
		if len(p) < count {
			return nil, fmt.Errorf("short dict-index section: %d bytes for %d edges", len(p), count)
		}
		for i := range out {
			di := int(p[i])
			if di >= len(dict) {
				return nil, fmt.Errorf("edge %d dict index %d out of range [0,%d)", i, di, len(dict))
			}
			out[i].W = dict[di]
		}
		p = p[count:]
	case 3:
		if len(p) < 8*count {
			return nil, fmt.Errorf("short raw-weight section: %d bytes for %d edges", len(p), count)
		}
		for i := range out {
			out[i].W = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
		}
		p = p[8*count:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after frame payload", len(p))
	}
	return out, nil
}

// sweepBlocksRange enumerates edges [lo, hi) in dense blocks decoded
// into per-call scratch (safe for concurrent sweeps; callbacks must
// not retain the slice). On the mmap path the next block's pages are
// advised ahead of the decode, so a pass overlaps page-in with
// decoding.
func (s *FileSource) sweepBlocksRange(lo, hi int, f func(base int, edges []graph.Edge) bool) {
	if lo >= hi {
		return
	}
	if s.ver == 2 {
		s.sweepBlocksRange2(lo, hi, f)
		return
	}
	scratch := make([]graph.Edge, BlockEdges)
	var raw []byte
	if s.data == nil {
		raw = make([]byte, BlockEdges*binRecordSize)
	}
	for b := lo; b < hi; b += BlockEdges {
		e := b + BlockEdges
		if e > hi {
			e = hi
		}
		cnt := e - b
		off := s.dataOff + int64(b)*binRecordSize
		if s.data != nil && e < hi {
			s.adviseNext(off+int64(cnt)*binRecordSize, int64(BlockEdges)*binRecordSize)
		}
		var rec []byte
		if s.data != nil {
			rec = s.data[off : off+int64(cnt)*binRecordSize]
		} else {
			rec = s.readAt(raw[:cnt*binRecordSize], off)
		}
		blk := scratch[:cnt]
		for i := range blk {
			blk[i] = decodeRecord(rec[i*binRecordSize:])
			if err := s.checkEdge(blk[i]); err != nil {
				panic(&ReadError{Path: s.path, Off: off + int64(i)*binRecordSize, Err: err})
			}
		}
		if !f(b, blk) {
			return
		}
	}
}

func (s *FileSource) sweepBlocksRange2(lo, hi int, f func(base int, edges []graph.Edge) bool) {
	scratch := make([]graph.Edge, s.blockLen)
	var raw []byte
	if s.data == nil {
		raw = make([]byte, s.maxFrame)
	}
	for k := lo / s.blockLen; k*s.blockLen < hi; k++ {
		base := k * s.blockLen
		if s.data != nil && k+1 < len(s.frameOff)-1 && base+s.blockLen < hi {
			s.adviseNext(s.frameOff[k+1], s.frameOff[k+2]-s.frameOff[k+1])
		}
		blk, err := s.decodeFrameInto(k, raw, scratch)
		if err != nil {
			panic(&ReadError{Path: s.path, Off: s.frameOff[k], Err: err})
		}
		emitLo, emitHi := base, base+len(blk)
		if emitLo < lo {
			emitLo = lo
		}
		if emitHi > hi {
			emitHi = hi
		}
		if emitLo >= emitHi {
			continue
		}
		if !f(emitLo, blk[emitLo-base:emitHi-base]) {
			return
		}
	}
}

// adviseNext hints the kernel to page in the next block's byte range
// while the current one decodes (no-op off the mmap path or on
// platforms without madvise).
func (s *FileSource) adviseNext(off, length int64) {
	end := off + length
	if max := int64(len(s.data)); end > max {
		end = max
	}
	if off >= end {
		return
	}
	adviseWillNeed(s.data[off:end])
}

// sweepRange enumerates edges [lo, hi) one at a time on top of the
// block decoder.
func (s *FileSource) sweepRange(lo, hi int, f func(idx int, e graph.Edge) bool) {
	s.sweepBlocksRange(lo, hi, func(base int, edges []graph.Edge) bool {
		for i := range edges {
			if !f(base+i, edges[i]) {
				return false
			}
		}
		return true
	})
}

// ForEach performs one pass over the file in record order. Returning
// false aborts the pass (it still counts as a pass).
func (s *FileSource) ForEach(f func(idx int, e graph.Edge) bool) {
	s.pass()
	s.Sweep(f)
}

// Sweep is ForEach without the pass charge (Source contract).
func (s *FileSource) Sweep(f func(idx int, e graph.Edge) bool) {
	s.sweepRange(0, s.m, f)
}

// ForEachParallel performs one pass sharded by record range: each
// worker decodes its own blocks, so the shards together read the file
// exactly once. Counts one pass for any worker count (Source contract).
func (s *FileSource) ForEachParallel(workers int, f func(idx int, e graph.Edge)) {
	s.pass()
	s.SweepParallel(workers, f)
}

// SweepParallel is ForEachParallel without the pass charge.
func (s *FileSource) SweepParallel(workers int, f func(idx int, e graph.Edge)) {
	parallel.ForEachShard(workers, s.m, func(_ int, r parallel.Range) {
		s.sweepRange(r.Lo, r.Hi, func(idx int, e graph.Edge) bool {
			f(idx, e)
			return true
		})
	})
}

// ForEachBlocks performs one metered pass in dense blocks (BlockSweeper
// contract). RBG2 frames map one-to-one onto delivered blocks.
func (s *FileSource) ForEachBlocks(f func(base int, edges []graph.Edge) bool) {
	s.pass()
	s.SweepBlocks(f)
}

// SweepBlocks is ForEachBlocks without the pass charge.
func (s *FileSource) SweepBlocks(f func(base int, edges []graph.Edge) bool) {
	s.sweepBlocksRange(0, s.m, f)
}

// ForEachBlocksParallel performs one metered pass with blocks sharded
// by edge range across workers (BlockSweeper contract).
func (s *FileSource) ForEachBlocksParallel(workers int, f func(base int, edges []graph.Edge)) {
	s.pass()
	s.SweepBlocksParallel(workers, f)
}

// SweepBlocksParallel is ForEachBlocksParallel without the pass charge.
func (s *FileSource) SweepBlocksParallel(workers int, f func(base int, edges []graph.Edge)) {
	parallel.ForEachShard(workers, s.m, func(_ int, r parallel.Range) {
		s.sweepBlocksRange(r.Lo, r.Hi, func(base int, edges []graph.Edge) bool {
			f(base, edges)
			return true
		})
	})
}
