package stream

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

// These tests exist to be run under the race detector (the tier-1 gate
// runs `go test -race ./...`): the parallel pipeline drives the pass and
// space accountants from many goroutines at once, and the accountants
// must both stay data-race-free and land on exact totals.

func lineGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, 1)
	}
	return g
}

func TestEdgeStreamConcurrentForEach(t *testing.T) {
	g := lineGraph(256)
	s := NewEdgeStream(g)
	const goroutines = 16
	var visited atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.ForEach(func(_ int, _ graph.Edge) bool {
				visited.Add(1)
				return true
			})
		}()
	}
	wg.Wait()
	if s.Passes() != goroutines {
		t.Fatalf("passes = %d, want %d", s.Passes(), goroutines)
	}
	if want := int64(goroutines * g.M()); visited.Load() != want {
		t.Fatalf("visited %d edges, want %d", visited.Load(), want)
	}
}

func TestEdgeStreamForEachParallelCountsOnePass(t *testing.T) {
	g := lineGraph(1024)
	s := NewEdgeStream(g)
	for _, workers := range []int{1, 4, 0} {
		before := s.Passes()
		var hits = make([]atomic.Int64, g.M())
		s.ForEachParallel(workers, func(idx int, _ graph.Edge) {
			hits[idx].Add(1)
		})
		if s.Passes() != before+1 {
			t.Fatalf("workers=%d: pass count went %d -> %d, want +1", workers, before, s.Passes())
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: edge %d visited %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestEdgeStreamConcurrentMixedPasses(t *testing.T) {
	// Sequential and sharded passes racing on one stream: the pass
	// counter must come out exact.
	g := lineGraph(512)
	s := NewEdgeStream(g)
	const each = 8
	var wg sync.WaitGroup
	for i := 0; i < each; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			s.ForEach(func(_ int, _ graph.Edge) bool { return true })
		}()
		go func() {
			defer wg.Done()
			s.ForEachParallel(4, func(_ int, _ graph.Edge) {})
		}()
	}
	wg.Wait()
	if s.Passes() != 2*each {
		t.Fatalf("passes = %d, want %d", s.Passes(), 2*each)
	}
}

func TestSpaceAccountantConcurrent(t *testing.T) {
	a := NewSpaceAccountant()
	const goroutines = 32
	const iters = 500
	const words = 7
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				a.Alloc(words)
				a.BeginRound()
				a.Free(words)
			}
		}()
	}
	wg.Wait()
	if a.Current() != 0 {
		t.Fatalf("current = %d after balanced alloc/free", a.Current())
	}
	if a.Rounds() != goroutines*iters {
		t.Fatalf("rounds = %d, want %d", a.Rounds(), goroutines*iters)
	}
	// Peak is at least one holder's allocation and at most everyone's.
	if p := a.Peak(); p < words || p > goroutines*words {
		t.Fatalf("peak = %d outside [%d, %d]", p, words, goroutines*words)
	}
}

func TestSpaceAccountantPeakMonotone(t *testing.T) {
	// Concurrent allocators with different sizes: peak must end >= the
	// largest single allocation and must never be lost to a CAS race.
	a := NewSpaceAccountant()
	var wg sync.WaitGroup
	sizes := []int{1, 10, 100, 1000}
	for _, sz := range sizes {
		wg.Add(1)
		go func(sz int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				a.Alloc(sz)
				a.Free(sz)
			}
		}(sz)
	}
	wg.Wait()
	if a.Peak() < 1000 {
		t.Fatalf("peak = %d, lost the largest allocation", a.Peak())
	}
	if a.Current() != 0 {
		t.Fatalf("current = %d", a.Current())
	}
}
