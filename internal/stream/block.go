package stream

import "repro/internal/graph"

// Block sweeps: the batched form of the Source sweep contract. A block
// sweep delivers the same (idx, edge) sequence as the per-edge sweep,
// but in dense runs — the callback receives a base index and a slice of
// edges where edges[i] is the edge at stream index base+i — so the hot
// consumers (the solver's sampling pass, the sketch bank builds, the
// greedy baselines) pay one callback per few thousand edges instead of
// one interface call plus one closure call per edge.
//
// The contract, relative to the per-edge sweeps:
//
//   - Concatenating the delivered (base+i, edges[i]) pairs yields
//     exactly the per-edge sweep's sequence: same indices, same order.
//   - ForEachBlocks meters one pass, aborted or not, exactly like
//     ForEach; SweepBlocks is un-metered, exactly like Sweep.
//   - Returning false aborts the sweep at block granularity (the
//     coarser abort is the price of batching; pass accounting is
//     unchanged).
//   - The edge slice is only valid during the callback: backends are
//     free to reuse the underlying buffer for the next block (the
//     file and generator backends do), so callbacks must copy what
//     they keep.
//   - Parallel block sweeps shard like their per-edge counterparts:
//     each index is delivered exactly once, blocks may arrive
//     concurrently from multiple goroutines, one pass total.
//
// Backends implement BlockSweeper natively; every other Source still
// conforms through the package-level helpers, which fall back to
// batching the per-edge sweep. Wrapper types that intercept ForEach /
// ForEachParallel by embedding a backend must intercept the block
// methods too — the helpers type-assert the whole value, so an
// embedded backend's native block methods would otherwise bypass the
// wrapper.

// BlockEdges is the default block granule: big enough to amortize the
// callback, small enough that a sweep's working set stays cache-sized
// (it matches the generator's replay granule, so generated blocks map
// one-to-one onto delivered blocks).
const BlockEdges = 1 << 12

// BlockSweeper is the optional batched-sweep extension of a Source.
// All backends in this package implement it; consumers reach it
// through ForEachBlocks / SweepBlocks and friends, never by asserting
// it themselves, so sources without a native implementation conform
// through the fallback.
type BlockSweeper interface {
	// ForEachBlocks performs one metered pass in dense blocks.
	ForEachBlocks(f func(base int, edges []graph.Edge) bool)
	// SweepBlocks is ForEachBlocks without the pass charge.
	SweepBlocks(f func(base int, edges []graph.Edge) bool)
	// ForEachBlocksParallel performs one metered pass with blocks
	// sharded by edge range across workers; no early abort.
	ForEachBlocksParallel(workers int, f func(base int, edges []graph.Edge))
	// SweepBlocksParallel is ForEachBlocksParallel without the pass
	// charge.
	SweepBlocksParallel(workers int, f func(base int, edges []graph.Edge))
}

// ForEachBlocks performs one metered pass over src in dense blocks,
// using the backend's native block sweep when it has one and batching
// src.ForEach otherwise. Pass metering and early-abort accounting are
// the backend's own either way.
func ForEachBlocks(src Source, f func(base int, edges []graph.Edge) bool) {
	if b, ok := src.(BlockSweeper); ok {
		b.ForEachBlocks(f)
		return
	}
	sweepToBlocks(src.ForEach, f)
}

// SweepBlocks is ForEachBlocks without the pass charge.
func SweepBlocks(src Source, f func(base int, edges []graph.Edge) bool) {
	if b, ok := src.(BlockSweeper); ok {
		b.SweepBlocks(f)
		return
	}
	sweepToBlocks(src.Sweep, f)
}

// ForEachBlocksParallel performs one metered pass with blocks sharded
// across workers. Without a native implementation the fallback
// delivers blocks sequentially from one goroutine — still exactly
// once per index, still one pass — since per-edge parallel callbacks
// arrive unordered and cannot be rebatched into dense runs.
func ForEachBlocksParallel(src Source, workers int, f func(base int, edges []graph.Edge)) {
	if b, ok := src.(BlockSweeper); ok {
		b.ForEachBlocksParallel(workers, f)
		return
	}
	sweepToBlocks(src.ForEach, func(base int, edges []graph.Edge) bool {
		f(base, edges)
		return true
	})
}

// SweepBlocksParallel is ForEachBlocksParallel without the pass charge.
func SweepBlocksParallel(src Source, workers int, f func(base int, edges []graph.Edge)) {
	if b, ok := src.(BlockSweeper); ok {
		b.SweepBlocksParallel(workers, f)
		return
	}
	sweepToBlocks(src.Sweep, func(base int, edges []graph.Edge) bool {
		f(base, edges)
		return true
	})
}

// sweepToBlocks batches a per-edge sweep into maximal dense runs of up
// to BlockEdges edges. Non-contiguous indices (a Filtered view without
// a native implementation) flush the pending run, so every delivered
// block is dense by construction.
func sweepToBlocks(sweep func(f func(idx int, e graph.Edge) bool), f func(base int, edges []graph.Edge) bool) {
	buf := make([]graph.Edge, 0, BlockEdges)
	base := 0
	stopped := false
	sweep(func(idx int, e graph.Edge) bool {
		if len(buf) == BlockEdges || (len(buf) > 0 && idx != base+len(buf)) {
			if !f(base, buf) {
				stopped = true
				return false
			}
			buf = buf[:0]
		}
		if len(buf) == 0 {
			base = idx
		}
		buf = append(buf, e)
		return true
	})
	if !stopped && len(buf) > 0 {
		f(base, buf)
	}
}

// sliceBlocks emits edges[lo:hi] of a fully materialized edge slice
// (stream index == slice index) as zero-copy sub-slices of at most
// BlockEdges edges. Reports false when the callback aborted.
func sliceBlocks(edges []graph.Edge, lo, hi int, f func(base int, edges []graph.Edge) bool) bool {
	for b := lo; b < hi; b += BlockEdges {
		e := b + BlockEdges
		if e > hi {
			e = hi
		}
		if !f(b, edges[b:e:e]) {
			return false
		}
	}
	return true
}

// filterBlocks splits one delivered block into the maximal dense runs
// that satisfy keep, emitting each run as a zero-copy sub-slice.
// Reports false when the callback aborted.
func filterBlocks(base int, edges []graph.Edge, keep func(idx int, e graph.Edge) bool, f func(base int, edges []graph.Edge) bool) bool {
	run := -1
	for i := range edges {
		if keep(base+i, edges[i]) {
			if run < 0 {
				run = i
			}
			continue
		}
		if run >= 0 {
			if !f(base+run, edges[run:i:i]) {
				return false
			}
			run = -1
		}
	}
	if run >= 0 {
		return f(base+run, edges[run:len(edges):len(edges)])
	}
	return true
}
