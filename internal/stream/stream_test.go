package stream

import (
	"sync"
	"testing"

	"repro/internal/graph"
)

func TestPassCounting(t *testing.T) {
	g := graph.GNM(10, 20, graph.WeightConfig{}, 1)
	s := NewEdgeStream(g)
	if s.Passes() != 0 {
		t.Fatal("fresh stream has passes")
	}
	count := 0
	s.ForEach(func(int, graph.Edge) bool { count++; return true })
	if count != 20 || s.Passes() != 1 {
		t.Fatalf("count=%d passes=%d", count, s.Passes())
	}
	s.ForEach(func(int, graph.Edge) bool { return false }) // aborted pass still counts
	if s.Passes() != 2 {
		t.Fatalf("aborted pass not counted: %d", s.Passes())
	}
}

func TestStreamMetadata(t *testing.T) {
	g := graph.New(5)
	g.MustAddEdge(0, 1, 2)
	g.SetB(3, 4)
	s := NewEdgeStream(g)
	if s.N() != 5 || s.Len() != 1 || s.B(3) != 4 || s.TotalB() != 8 {
		t.Fatalf("metadata wrong: n=%d len=%d b3=%d B=%d", s.N(), s.Len(), s.B(3), s.TotalB())
	}
}

func TestStreamOrderStable(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 3, 3)
	s := NewEdgeStream(g)
	var a, b []float64
	s.ForEach(func(_ int, e graph.Edge) bool { a = append(a, e.W); return true })
	s.ForEach(func(_ int, e graph.Edge) bool { b = append(b, e.W); return true })
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("stream replay differs")
		}
	}
}

func TestSpaceAccountant(t *testing.T) {
	a := NewSpaceAccountant()
	a.Alloc(100)
	a.Alloc(50)
	if a.Current() != 150 || a.Peak() != 150 {
		t.Fatalf("current=%d peak=%d", a.Current(), a.Peak())
	}
	a.Free(120)
	if a.Current() != 30 || a.Peak() != 150 {
		t.Fatalf("after free: current=%d peak=%d", a.Current(), a.Peak())
	}
	a.Alloc(10)
	if a.Peak() != 150 {
		t.Fatal("peak moved down")
	}
}

func TestSpaceAccountantUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("underflow did not panic")
		}
	}()
	NewSpaceAccountant().Free(1)
}

func TestRounds(t *testing.T) {
	a := NewSpaceAccountant()
	for i := 0; i < 7; i++ {
		a.BeginRound()
	}
	if a.Rounds() != 7 {
		t.Fatalf("rounds = %d", a.Rounds())
	}
}

func TestAccountantConcurrency(t *testing.T) {
	a := NewSpaceAccountant()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				a.Alloc(3)
				a.Free(3)
				a.BeginRound()
			}
		}()
	}
	wg.Wait()
	if a.Current() != 0 {
		t.Fatalf("leaked %d words", a.Current())
	}
	if a.Rounds() != 8000 {
		t.Fatalf("rounds = %d, want 8000", a.Rounds())
	}
	if a.Peak() < 3 || a.Peak() > 24 {
		t.Fatalf("peak %d outside [3,24]", a.Peak())
	}
}
