package stream

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// ConcatSource composes sub-sources over the same vertex set into one
// stream — the sharded input of the parallel pipeline (file shards,
// generator shards, or a mix). Edge indices are globally contiguous:
// sub-source i's edges occupy [offset_i, offset_i + len_i). A parallel
// sweep runs the sub-sources concurrently, each through its own sharded
// sweep, so the exactly-once index contract (and therefore the
// worker-count bit-identity of index-keyed consumers) is preserved.
//
// ConcatSource meters its own passes; the sub-sources' counters are not
// advanced (the composition is the stream, its parts are storage shards).
type ConcatSource struct {
	meter
	subs    []Source
	offsets []int
	total   int
}

var _ Source = (*ConcatSource)(nil)
var _ RandomAccess = (*ConcatSource)(nil)

// Concat composes the sub-sources. They must agree on the vertex set:
// same N and the same per-vertex capacities.
func Concat(subs ...Source) (*ConcatSource, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("stream: concat of zero sources")
	}
	n := subs[0].N()
	for si, sub := range subs[1:] {
		if sub.N() != n {
			return nil, fmt.Errorf("stream: concat sub %d has n=%d, want %d", si+1, sub.N(), n)
		}
		if sub.TotalB() != subs[0].TotalB() {
			return nil, fmt.Errorf("stream: concat sub %d capacity sum %d differs from %d", si+1, sub.TotalB(), subs[0].TotalB())
		}
		for v := 0; v < n; v++ {
			if sub.B(v) != subs[0].B(v) {
				return nil, fmt.Errorf("stream: concat sub %d disagrees on b(%d)", si+1, v)
			}
		}
	}
	c := &ConcatSource{subs: subs, offsets: make([]int, len(subs))}
	for si, sub := range subs {
		c.offsets[si] = c.total
		c.total += sub.Len()
	}
	return c, nil
}

// N returns the number of vertices.
func (c *ConcatSource) N() int { return c.subs[0].N() }

// B returns the capacity of vertex v.
func (c *ConcatSource) B(v int) int { return c.subs[0].B(v) }

// TotalB returns Σ b_i.
func (c *ConcatSource) TotalB() int { return c.subs[0].TotalB() }

// Len returns the total stream length.
func (c *ConcatSource) Len() int { return c.total }

// Edge returns the i-th edge by dispatching into the owning sub-source,
// which must itself support RandomAccess.
func (c *ConcatSource) Edge(i int) graph.Edge {
	if i < 0 || i >= c.total {
		panic(fmt.Sprintf("stream: edge index %d out of range [0,%d)", i, c.total))
	}
	si := 0
	for si+1 < len(c.offsets) && c.offsets[si+1] <= i {
		si++
	}
	ra, ok := c.subs[si].(RandomAccess)
	if !ok {
		panic(fmt.Sprintf("stream: concat sub %d does not support random access", si))
	}
	return ra.Edge(i - c.offsets[si])
}

// ForEach performs one pass over the sub-sources in order. Returning
// false aborts the pass (it still counts as a pass).
func (c *ConcatSource) ForEach(f func(idx int, e graph.Edge) bool) {
	c.pass()
	c.Sweep(f)
}

// Sweep is ForEach without the pass charge (Source contract).
func (c *ConcatSource) Sweep(f func(idx int, e graph.Edge) bool) {
	for si, sub := range c.subs {
		off := c.offsets[si]
		aborted := false
		sub.Sweep(func(i int, e graph.Edge) bool {
			if !f(off+i, e) {
				aborted = true
				return false
			}
			return true
		})
		if aborted {
			return
		}
	}
}

// ForEachParallel performs one pass with the sub-sources swept
// concurrently, each sharded internally across its slice of the worker
// budget. Counts one pass for any worker count (Source contract).
func (c *ConcatSource) ForEachParallel(workers int, f func(idx int, e graph.Edge)) {
	c.pass()
	c.SweepParallel(workers, f)
}

// ForEachBlocks performs one metered pass over the sub-sources in
// order, in dense blocks (BlockSweeper contract). Each sub-source's
// blocks are shifted by its offset, so dense runs stay dense.
func (c *ConcatSource) ForEachBlocks(f func(base int, edges []graph.Edge) bool) {
	c.pass()
	c.SweepBlocks(f)
}

// SweepBlocks is ForEachBlocks without the pass charge.
func (c *ConcatSource) SweepBlocks(f func(base int, edges []graph.Edge) bool) {
	for si, sub := range c.subs {
		off := c.offsets[si]
		aborted := false
		SweepBlocks(sub, func(base int, edges []graph.Edge) bool {
			if !f(off+base, edges) {
				aborted = true
				return false
			}
			return true
		})
		if aborted {
			return
		}
	}
}

// ForEachBlocksParallel performs one metered pass with the sub-sources
// swept concurrently, each delivering blocks through its own sharded
// block sweep (BlockSweeper contract).
func (c *ConcatSource) ForEachBlocksParallel(workers int, f func(base int, edges []graph.Edge)) {
	c.pass()
	c.SweepBlocksParallel(workers, f)
}

// SweepBlocksParallel is ForEachBlocksParallel without the pass charge.
func (c *ConcatSource) SweepBlocksParallel(workers int, f func(base int, edges []graph.Edge)) {
	inner := parallel.Workers(workers) / len(c.subs)
	if inner < 1 {
		inner = 1
	}
	parallel.Run(workers, len(c.subs), func(si int) {
		off := c.offsets[si]
		SweepBlocksParallel(c.subs[si], inner, func(base int, edges []graph.Edge) {
			f(off+base, edges)
		})
	})
}

// SweepParallel is ForEachParallel without the pass charge.
func (c *ConcatSource) SweepParallel(workers int, f func(idx int, e graph.Edge)) {
	inner := parallel.Workers(workers) / len(c.subs)
	if inner < 1 {
		inner = 1
	}
	parallel.Run(workers, len(c.subs), func(si int) {
		off := c.offsets[si]
		c.subs[si].SweepParallel(inner, func(i int, e graph.Edge) {
			f(off+i, e)
		})
	})
}
