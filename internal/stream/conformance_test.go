package stream

// Conformance suite every Source backend must pass: pass counting
// (including the early-abort rule: an aborted sweep still counts one
// pass), replayability (every sweep enumerates the same (idx, edge)
// sequence), parallel/sequential equivalence for every worker count,
// static metadata consistency, the un-metered Sweep contract, and
// RandomAccess agreement where implemented.

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/graph"
)

type idxEdge struct {
	idx int
	e   graph.Edge
}

func collect(sweep func(f func(idx int, e graph.Edge) bool)) []idxEdge {
	var out []idxEdge
	sweep(func(idx int, e graph.Edge) bool {
		out = append(out, idxEdge{idx, e})
		return true
	})
	return out
}

// runConformance exercises the full Source contract. mk must return a
// fresh source (zero passes consumed) on every call. dense reports
// whether indices must be exactly 0..Len-1 (all primary backends; a
// Filtered view keeps parent indices instead).
func runConformance(t *testing.T, mk func(t *testing.T) Source, dense bool) {
	t.Helper()

	t.Run("fresh", func(t *testing.T) {
		s := mk(t)
		if s.Passes() != 0 {
			t.Fatalf("fresh source has %d passes", s.Passes())
		}
		if s.N() < 0 || s.Len() < 0 {
			t.Fatalf("negative size: n=%d m=%d", s.N(), s.Len())
		}
		sum := 0
		for v := 0; v < s.N(); v++ {
			if s.B(v) < 1 {
				t.Fatalf("b(%d) = %d < 1", v, s.B(v))
			}
			sum += s.B(v)
		}
		if sum != s.TotalB() {
			t.Fatalf("TotalB %d != Σ b = %d", s.TotalB(), sum)
		}
	})

	t.Run("enumeration", func(t *testing.T) {
		s := mk(t)
		ref := collect(s.ForEach)
		if s.Passes() != 1 {
			t.Fatalf("one ForEach consumed %d passes", s.Passes())
		}
		if len(ref) != s.Len() {
			t.Fatalf("ForEach yielded %d edges, Len says %d", len(ref), s.Len())
		}
		for i, ie := range ref {
			if dense && ie.idx != i {
				t.Fatalf("position %d has idx %d (want dense indices)", i, ie.idx)
			}
			if i > 0 && ie.idx <= ref[i-1].idx {
				t.Fatalf("indices not strictly increasing at position %d", i)
			}
			if ie.e.U == ie.e.V || ie.e.U < 0 || int(ie.e.U) >= s.N() || ie.e.V < 0 || int(ie.e.V) >= s.N() {
				t.Fatalf("edge %d = %+v invalid for n=%d", ie.idx, ie.e, s.N())
			}
		}
	})

	t.Run("replayable", func(t *testing.T) {
		s := mk(t)
		a := collect(s.ForEach)
		b := collect(s.ForEach)
		if !reflect.DeepEqual(a, b) {
			t.Fatal("two passes enumerated different sequences")
		}
		if s.Passes() != 2 {
			t.Fatalf("two passes counted as %d", s.Passes())
		}
	})

	t.Run("early-abort-counts-pass", func(t *testing.T) {
		s := mk(t)
		seen := 0
		s.ForEach(func(int, graph.Edge) bool {
			seen++
			return false
		})
		if s.Len() > 0 && seen != 1 {
			t.Fatalf("aborted pass visited %d edges, want 1", seen)
		}
		if s.Passes() != 1 {
			t.Fatalf("aborted sweep counted %d passes, want exactly 1", s.Passes())
		}
		// The abort must not poison the stream: the next pass replays all.
		if got := collect(s.ForEach); len(got) != s.Len() {
			t.Fatalf("pass after abort yielded %d of %d edges", len(got), s.Len())
		}
	})

	t.Run("sweep-unmetered", func(t *testing.T) {
		s := mk(t)
		a := collect(s.Sweep)
		if s.Passes() != 0 {
			t.Fatalf("raw Sweep advanced the pass counter to %d", s.Passes())
		}
		if b := collect(s.ForEach); !reflect.DeepEqual(a, b) {
			t.Fatal("Sweep and ForEach enumerate different sequences")
		}
	})

	t.Run("parallel-equivalence", func(t *testing.T) {
		s := mk(t)
		ref := collect(s.ForEach)
		byIdx := make(map[int]graph.Edge, len(ref))
		for _, ie := range ref {
			byIdx[ie.idx] = ie.e
		}
		for _, workers := range []int{1, 2, 3, 7, 0} {
			fresh := mk(t)
			var mu chan idxEdge = make(chan idxEdge, len(ref)+1)
			fresh.ForEachParallel(workers, func(idx int, e graph.Edge) {
				mu <- idxEdge{idx, e}
			})
			close(mu)
			if fresh.Passes() != 1 {
				t.Fatalf("workers=%d: parallel sweep counted %d passes", workers, fresh.Passes())
			}
			var got []idxEdge
			for ie := range mu {
				got = append(got, ie)
			}
			if len(got) != len(ref) {
				t.Fatalf("workers=%d: visited %d edges, want %d", workers, len(got), len(ref))
			}
			sort.Slice(got, func(i, j int) bool { return got[i].idx < got[j].idx })
			for i, ie := range got {
				if i > 0 && got[i-1].idx == ie.idx {
					t.Fatalf("workers=%d: idx %d visited twice", workers, ie.idx)
				}
				if want, ok := byIdx[ie.idx]; !ok || want != ie.e {
					t.Fatalf("workers=%d: idx %d has edge %+v, sequential %+v", workers, ie.idx, ie.e, want)
				}
			}
		}
	})

	t.Run("random-access", func(t *testing.T) {
		s := mk(t)
		ra, ok := s.(RandomAccess)
		if !ok {
			t.Skip("backend does not implement RandomAccess")
		}
		ref := collect(s.Sweep)
		for _, ie := range ref {
			if got := ra.Edge(ie.idx); got != ie.e {
				t.Fatalf("Edge(%d) = %+v, sweep saw %+v", ie.idx, got, ie.e)
			}
		}
		if s.Passes() != 0 {
			t.Fatalf("random access advanced the pass counter to %d", s.Passes())
		}
	})
}

// conformanceGraph is a small instance with parallel edges, varied
// weights and non-unit capacities.
func conformanceGraph() *graph.Graph {
	g := graph.GNM(23, 57, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 12}, 99)
	g.MustAddEdge(3, 4, 2.5)
	g.MustAddEdge(3, 4, 7.25) // parallel copy
	graph.WithRandomB(g, 3, false, 100)
	return g
}

func binFixture(t *testing.T, src Source) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "edges.rbg")
	if err := WriteBinaryFile(path, src); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConformanceEdgeStream(t *testing.T) {
	g := conformanceGraph()
	runConformance(t, func(t *testing.T) Source { return NewEdgeStream(g) }, true)
}

func TestConformanceFileSource(t *testing.T) {
	path := binFixture(t, NewEdgeStream(conformanceGraph()))
	runConformance(t, func(t *testing.T) Source {
		src, err := OpenBinary(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { src.Close() })
		return src
	}, true)
}

func TestConformanceGenSource(t *testing.T) {
	spec := GenSpec{N: 40, M: 3*genBlockEdges/2 + 17, // straddle a block boundary
		Weights: graph.WeightConfig{Mode: graph.UniformWeights, WMax: 9}, Seed: 5, BMax: 3}
	runConformance(t, func(t *testing.T) Source {
		src, err := NewGen(spec)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}, true)
}

func TestConformanceConcatSource(t *testing.T) {
	g := conformanceGraph()
	mkParts := func(t *testing.T) []Source {
		// Split g's edge list into two EdgeStream shards plus one
		// generator shard on the same vertex set and capacities.
		half := g.M() / 2
		a, b := graph.New(g.N()), graph.New(g.N())
		for v := 0; v < g.N(); v++ {
			a.SetB(v, g.B(v))
			b.SetB(v, g.B(v))
		}
		for i, e := range g.Edges() {
			dst := a
			if i >= half {
				dst = b
			}
			dst.MustAddEdge(int(e.U), int(e.V), e.W)
		}
		gen, err := NewGen(GenSpec{N: g.N(), M: 64, Weights: graph.WeightConfig{Mode: graph.UnitWeights}, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		// Concat requires matching capacities; wrap the generator's unit
		// capacities with g's via an in-memory copy.
		genG := Materialize(gen)
		for v := 0; v < g.N(); v++ {
			genG.SetB(v, g.B(v))
		}
		return []Source{NewEdgeStream(a), NewEdgeStream(b), NewEdgeStream(genG)}
	}
	runConformance(t, func(t *testing.T) Source {
		c, err := Concat(mkParts(t)...)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}, true)
}

func TestConformanceFiltered(t *testing.T) {
	g := conformanceGraph()
	runConformance(t, func(t *testing.T) Source {
		return NewFilter(NewEdgeStream(g), func(_ int, e graph.Edge) bool { return e.W >= 4 })
	}, false)
}

func TestConcatRejectsMismatches(t *testing.T) {
	a := graph.New(4)
	b := graph.New(5)
	if _, err := Concat(NewEdgeStream(a), NewEdgeStream(b)); err == nil {
		t.Fatal("vertex-count mismatch accepted")
	}
	c := graph.New(4)
	c.SetB(1, 3)
	if _, err := Concat(NewEdgeStream(a), NewEdgeStream(c)); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
	if _, err := Concat(); err == nil {
		t.Fatal("empty concat accepted")
	}
}

func TestFilteredSubsetSemantics(t *testing.T) {
	g := conformanceGraph()
	parent := NewEdgeStream(g)
	fil := NewFilter(parent, func(_ int, e graph.Edge) bool { return e.W >= 4 })
	want := 0
	for _, e := range g.Edges() {
		if e.W >= 4 {
			want++
		}
	}
	if fil.Len() != want {
		t.Fatalf("filtered Len %d, want %d", fil.Len(), want)
	}
	fil.ForEach(func(idx int, e graph.Edge) bool {
		if g.Edge(idx) != e {
			t.Fatalf("filtered idx %d does not match parent edge", idx)
		}
		if e.W < 4 {
			t.Fatalf("predicate violated at idx %d", idx)
		}
		return true
	})
	// The view meters itself; the parent is not charged.
	if parent.Passes() != 0 {
		t.Fatalf("parent charged %d passes by filtered view", parent.Passes())
	}
	if fil.Passes() != 1 {
		t.Fatalf("view has %d passes, want 1", fil.Passes())
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	g := conformanceGraph()
	src := NewEdgeStream(g)
	got := Materialize(src)
	if !reflect.DeepEqual(got.Edges(), g.Edges()) {
		t.Fatal("materialized edges differ")
	}
	for v := 0; v < g.N(); v++ {
		if got.B(v) != g.B(v) {
			t.Fatalf("capacity of %d differs", v)
		}
	}
	if src.Passes() != 1 {
		t.Fatalf("materialize consumed %d passes, want 1", src.Passes())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := conformanceGraph()
	path := binFixture(t, NewEdgeStream(g))
	src, err := OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.N() != g.N() || src.Len() != g.M() || src.TotalB() != g.TotalB() {
		t.Fatalf("header mismatch: n=%d m=%d B=%d", src.N(), src.Len(), src.TotalB())
	}
	got := Materialize(src)
	if !reflect.DeepEqual(got.Edges(), g.Edges()) {
		t.Fatal("binary round trip changed the edge list")
	}
	for v := 0; v < g.N(); v++ {
		if got.B(v) != g.B(v) {
			t.Fatalf("capacity of %d differs after round trip", v)
		}
	}
}

func TestBinaryUnitCapacitiesOmitTable(t *testing.T) {
	g := graph.GNM(10, 20, graph.WeightConfig{}, 3)
	path := binFixture(t, NewEdgeStream(g))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(24 + 16*g.M()); fi.Size() != want {
		t.Fatalf("unit-capacity file is %d bytes, want %d (no capacity table)", fi.Size(), want)
	}
	src, err := OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.TotalB() != g.N() {
		t.Fatalf("TotalB %d, want %d", src.TotalB(), g.N())
	}
}

func TestOpenBinaryRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.rbg")
	if err := os.WriteFile(path, []byte("not a graph at all, sorry"), 0o644); err != nil {
		t.Fatal(err)
	}
	if src, err := OpenBinary(path); err == nil {
		src.Close()
		t.Fatal("garbage accepted as RBG1")
	}
}
