package stream

// Conformance suite every Source backend must pass: pass counting
// (including the early-abort rule: an aborted sweep still counts one
// pass), replayability (every sweep enumerates the same (idx, edge)
// sequence), parallel/sequential equivalence for every worker count,
// static metadata consistency, the un-metered Sweep contract, and
// RandomAccess agreement where implemented.

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/graph"
)

type idxEdge struct {
	idx int
	e   graph.Edge
}

func collect(sweep func(f func(idx int, e graph.Edge) bool)) []idxEdge {
	var out []idxEdge
	sweep(func(idx int, e graph.Edge) bool {
		out = append(out, idxEdge{idx, e})
		return true
	})
	return out
}

// runConformance exercises the full Source contract. mk must return a
// fresh source (zero passes consumed) on every call. dense reports
// whether indices must be exactly 0..Len-1 (all primary backends; a
// Filtered view keeps parent indices instead).
func runConformance(t *testing.T, mk func(t *testing.T) Source, dense bool) {
	t.Helper()

	t.Run("fresh", func(t *testing.T) {
		s := mk(t)
		if s.Passes() != 0 {
			t.Fatalf("fresh source has %d passes", s.Passes())
		}
		if s.N() < 0 || s.Len() < 0 {
			t.Fatalf("negative size: n=%d m=%d", s.N(), s.Len())
		}
		sum := 0
		for v := 0; v < s.N(); v++ {
			if s.B(v) < 1 {
				t.Fatalf("b(%d) = %d < 1", v, s.B(v))
			}
			sum += s.B(v)
		}
		if sum != s.TotalB() {
			t.Fatalf("TotalB %d != Σ b = %d", s.TotalB(), sum)
		}
	})

	t.Run("enumeration", func(t *testing.T) {
		s := mk(t)
		ref := collect(s.ForEach)
		if s.Passes() != 1 {
			t.Fatalf("one ForEach consumed %d passes", s.Passes())
		}
		if len(ref) != s.Len() {
			t.Fatalf("ForEach yielded %d edges, Len says %d", len(ref), s.Len())
		}
		for i, ie := range ref {
			if dense && ie.idx != i {
				t.Fatalf("position %d has idx %d (want dense indices)", i, ie.idx)
			}
			if i > 0 && ie.idx <= ref[i-1].idx {
				t.Fatalf("indices not strictly increasing at position %d", i)
			}
			if ie.e.U == ie.e.V || ie.e.U < 0 || int(ie.e.U) >= s.N() || ie.e.V < 0 || int(ie.e.V) >= s.N() {
				t.Fatalf("edge %d = %+v invalid for n=%d", ie.idx, ie.e, s.N())
			}
		}
	})

	t.Run("replayable", func(t *testing.T) {
		s := mk(t)
		a := collect(s.ForEach)
		b := collect(s.ForEach)
		if !reflect.DeepEqual(a, b) {
			t.Fatal("two passes enumerated different sequences")
		}
		if s.Passes() != 2 {
			t.Fatalf("two passes counted as %d", s.Passes())
		}
	})

	t.Run("early-abort-counts-pass", func(t *testing.T) {
		s := mk(t)
		seen := 0
		s.ForEach(func(int, graph.Edge) bool {
			seen++
			return false
		})
		if s.Len() > 0 && seen != 1 {
			t.Fatalf("aborted pass visited %d edges, want 1", seen)
		}
		if s.Passes() != 1 {
			t.Fatalf("aborted sweep counted %d passes, want exactly 1", s.Passes())
		}
		// The abort must not poison the stream: the next pass replays all.
		if got := collect(s.ForEach); len(got) != s.Len() {
			t.Fatalf("pass after abort yielded %d of %d edges", len(got), s.Len())
		}
	})

	t.Run("sweep-unmetered", func(t *testing.T) {
		s := mk(t)
		a := collect(s.Sweep)
		if s.Passes() != 0 {
			t.Fatalf("raw Sweep advanced the pass counter to %d", s.Passes())
		}
		if b := collect(s.ForEach); !reflect.DeepEqual(a, b) {
			t.Fatal("Sweep and ForEach enumerate different sequences")
		}
	})

	t.Run("parallel-equivalence", func(t *testing.T) {
		s := mk(t)
		ref := collect(s.ForEach)
		byIdx := make(map[int]graph.Edge, len(ref))
		for _, ie := range ref {
			byIdx[ie.idx] = ie.e
		}
		for _, workers := range []int{1, 2, 3, 7, 0} {
			fresh := mk(t)
			var mu chan idxEdge = make(chan idxEdge, len(ref)+1)
			fresh.ForEachParallel(workers, func(idx int, e graph.Edge) {
				mu <- idxEdge{idx, e}
			})
			close(mu)
			if fresh.Passes() != 1 {
				t.Fatalf("workers=%d: parallel sweep counted %d passes", workers, fresh.Passes())
			}
			var got []idxEdge
			for ie := range mu {
				got = append(got, ie)
			}
			if len(got) != len(ref) {
				t.Fatalf("workers=%d: visited %d edges, want %d", workers, len(got), len(ref))
			}
			sort.Slice(got, func(i, j int) bool { return got[i].idx < got[j].idx })
			for i, ie := range got {
				if i > 0 && got[i-1].idx == ie.idx {
					t.Fatalf("workers=%d: idx %d visited twice", workers, ie.idx)
				}
				if want, ok := byIdx[ie.idx]; !ok || want != ie.e {
					t.Fatalf("workers=%d: idx %d has edge %+v, sequential %+v", workers, ie.idx, ie.e, want)
				}
			}
		}
	})

	t.Run("blocks-concatenate", func(t *testing.T) {
		s := mk(t)
		ref := collect(s.Sweep)
		var got []idxEdge
		ForEachBlocks(s, func(base int, edges []graph.Edge) bool {
			if len(edges) == 0 {
				t.Fatal("empty block delivered")
			}
			if len(edges) > BlockEdges {
				t.Fatalf("block of %d edges exceeds BlockEdges", len(edges))
			}
			for i := range edges {
				got = append(got, idxEdge{base + i, edges[i]})
			}
			return true
		})
		if s.Passes() != 1 {
			t.Fatalf("one block pass counted %d passes", s.Passes())
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatal("block pass does not concatenate to the per-edge sweep")
		}
		var raw []idxEdge
		SweepBlocks(s, func(base int, edges []graph.Edge) bool {
			for i := range edges {
				raw = append(raw, idxEdge{base + i, edges[i]})
			}
			return true
		})
		if s.Passes() != 1 {
			t.Fatalf("raw SweepBlocks advanced the pass counter to %d", s.Passes())
		}
		if !reflect.DeepEqual(raw, ref) {
			t.Fatal("SweepBlocks and Sweep enumerate different sequences")
		}
	})

	t.Run("blocks-early-abort", func(t *testing.T) {
		s := mk(t)
		blocks := 0
		ForEachBlocks(s, func(int, []graph.Edge) bool {
			blocks++
			return false
		})
		if s.Len() > 0 && blocks != 1 {
			t.Fatalf("aborted block pass delivered %d blocks, want 1", blocks)
		}
		if s.Passes() != 1 {
			t.Fatalf("aborted block pass counted %d passes, want exactly 1", s.Passes())
		}
		total := 0
		ForEachBlocks(s, func(_ int, edges []graph.Edge) bool {
			total += len(edges)
			return true
		})
		if total != s.Len() {
			t.Fatalf("block pass after abort yielded %d of %d edges", total, s.Len())
		}
	})

	t.Run("blocks-parallel-equivalence", func(t *testing.T) {
		s := mk(t)
		ref := collect(s.Sweep)
		byIdx := make(map[int]graph.Edge, len(ref))
		for _, ie := range ref {
			byIdx[ie.idx] = ie.e
		}
		for _, workers := range []int{1, 2, 3, 7, 0} {
			fresh := mk(t)
			ch := make(chan idxEdge, len(ref)+1)
			ForEachBlocksParallel(fresh, workers, func(base int, edges []graph.Edge) {
				for i := range edges {
					ch <- idxEdge{base + i, edges[i]}
				}
			})
			close(ch)
			if fresh.Passes() != 1 {
				t.Fatalf("workers=%d: parallel block pass counted %d passes", workers, fresh.Passes())
			}
			var got []idxEdge
			for ie := range ch {
				got = append(got, ie)
			}
			if len(got) != len(ref) {
				t.Fatalf("workers=%d: block pass visited %d edges, want %d", workers, len(got), len(ref))
			}
			sort.Slice(got, func(i, j int) bool { return got[i].idx < got[j].idx })
			for i, ie := range got {
				if i > 0 && got[i-1].idx == ie.idx {
					t.Fatalf("workers=%d: idx %d visited twice", workers, ie.idx)
				}
				if want, ok := byIdx[ie.idx]; !ok || want != ie.e {
					t.Fatalf("workers=%d: idx %d has edge %+v, sequential %+v", workers, ie.idx, ie.e, want)
				}
			}
		}
	})

	t.Run("random-access", func(t *testing.T) {
		s := mk(t)
		ra, ok := s.(RandomAccess)
		if !ok {
			t.Skip("backend does not implement RandomAccess")
		}
		ref := collect(s.Sweep)
		for _, ie := range ref {
			if got := ra.Edge(ie.idx); got != ie.e {
				t.Fatalf("Edge(%d) = %+v, sweep saw %+v", ie.idx, got, ie.e)
			}
		}
		if s.Passes() != 0 {
			t.Fatalf("random access advanced the pass counter to %d", s.Passes())
		}
	})
}

// conformanceGraph is a small instance with parallel edges, varied
// weights and non-unit capacities.
func conformanceGraph() *graph.Graph {
	g := graph.GNM(23, 57, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 12}, 99)
	g.MustAddEdge(3, 4, 2.5)
	g.MustAddEdge(3, 4, 7.25) // parallel copy
	graph.WithRandomB(g, 3, false, 100)
	return g
}

func binFixture(t *testing.T, src Source) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "edges.rbg")
	if err := WriteBinaryFile(path, src); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConformanceEdgeStream(t *testing.T) {
	g := conformanceGraph()
	runConformance(t, func(t *testing.T) Source { return NewEdgeStream(g) }, true)
}

func TestConformanceFileSource(t *testing.T) {
	path := binFixture(t, NewEdgeStream(conformanceGraph()))
	runConformance(t, func(t *testing.T) Source {
		src, err := OpenBinary(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { src.Close() })
		return src
	}, true)
}

// multiFrameGraph is big enough that an RBG2 encoding spans several
// frames (and a block sweep spans several blocks).
func multiFrameGraph() *graph.Graph {
	g := graph.GNM(50, 2*bin2BlockLen+bin2BlockLen/2+17,
		graph.WeightConfig{Mode: graph.UniformWeights, WMax: 12}, 99)
	graph.WithRandomB(g, 3, false, 100)
	return g
}

func bin2Fixture(t *testing.T, src Source) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "edges.rbg2")
	if err := WriteBinaryFile2(path, src); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConformanceFileSourceRBG2(t *testing.T) {
	path := bin2Fixture(t, NewEdgeStream(multiFrameGraph()))
	runConformance(t, func(t *testing.T) Source {
		src, err := OpenBinary(path)
		if err != nil {
			t.Fatal(err)
		}
		if src.Version() != 2 {
			t.Fatalf("auto-detected version %d, want 2", src.Version())
		}
		t.Cleanup(func() { src.Close() })
		return src
	}, true)
}

func TestConformanceFileSourceNoMmap(t *testing.T) {
	for _, tc := range []struct {
		name  string
		write func(string, Source) error
	}{
		{"rbg1", WriteBinaryFile},
		{"rbg2", WriteBinaryFile2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "edges.bin")
			if err := tc.write(path, NewEdgeStream(multiFrameGraph())); err != nil {
				t.Fatal(err)
			}
			runConformance(t, func(t *testing.T) Source {
				src, err := OpenBinaryWith(path, OpenOptions{NoMmap: true})
				if err != nil {
					t.Fatal(err)
				}
				if src.Mapped() {
					t.Fatal("NoMmap source is mapped")
				}
				t.Cleanup(func() { src.Close() })
				return src
			}, true)
		})
	}
}

func TestConformanceGenSource(t *testing.T) {
	spec := GenSpec{N: 40, M: 3*genBlockEdges/2 + 17, // straddle a block boundary
		Weights: graph.WeightConfig{Mode: graph.UniformWeights, WMax: 9}, Seed: 5, BMax: 3}
	runConformance(t, func(t *testing.T) Source {
		src, err := NewGen(spec)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}, true)
}

func TestConformanceConcatSource(t *testing.T) {
	g := conformanceGraph()
	mkParts := func(t *testing.T) []Source {
		// Split g's edge list into two EdgeStream shards plus one
		// generator shard on the same vertex set and capacities.
		half := g.M() / 2
		a, b := graph.New(g.N()), graph.New(g.N())
		for v := 0; v < g.N(); v++ {
			a.SetB(v, g.B(v))
			b.SetB(v, g.B(v))
		}
		for i, e := range g.Edges() {
			dst := a
			if i >= half {
				dst = b
			}
			dst.MustAddEdge(int(e.U), int(e.V), e.W)
		}
		gen, err := NewGen(GenSpec{N: g.N(), M: 64, Weights: graph.WeightConfig{Mode: graph.UnitWeights}, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		// Concat requires matching capacities; wrap the generator's unit
		// capacities with g's via an in-memory copy.
		genG := Materialize(gen)
		for v := 0; v < g.N(); v++ {
			genG.SetB(v, g.B(v))
		}
		return []Source{NewEdgeStream(a), NewEdgeStream(b), NewEdgeStream(genG)}
	}
	runConformance(t, func(t *testing.T) Source {
		c, err := Concat(mkParts(t)...)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}, true)
}

func TestConformanceFiltered(t *testing.T) {
	g := conformanceGraph()
	runConformance(t, func(t *testing.T) Source {
		return NewFilter(NewEdgeStream(g), func(_ int, e graph.Edge) bool { return e.W >= 4 })
	}, false)
}

func TestConcatRejectsMismatches(t *testing.T) {
	a := graph.New(4)
	b := graph.New(5)
	if _, err := Concat(NewEdgeStream(a), NewEdgeStream(b)); err == nil {
		t.Fatal("vertex-count mismatch accepted")
	}
	c := graph.New(4)
	c.SetB(1, 3)
	if _, err := Concat(NewEdgeStream(a), NewEdgeStream(c)); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
	if _, err := Concat(); err == nil {
		t.Fatal("empty concat accepted")
	}
}

func TestFilteredSubsetSemantics(t *testing.T) {
	g := conformanceGraph()
	parent := NewEdgeStream(g)
	fil := NewFilter(parent, func(_ int, e graph.Edge) bool { return e.W >= 4 })
	want := 0
	for _, e := range g.Edges() {
		if e.W >= 4 {
			want++
		}
	}
	if fil.Len() != want {
		t.Fatalf("filtered Len %d, want %d", fil.Len(), want)
	}
	fil.ForEach(func(idx int, e graph.Edge) bool {
		if g.Edge(idx) != e {
			t.Fatalf("filtered idx %d does not match parent edge", idx)
		}
		if e.W < 4 {
			t.Fatalf("predicate violated at idx %d", idx)
		}
		return true
	})
	// The view meters itself; the parent is not charged.
	if parent.Passes() != 0 {
		t.Fatalf("parent charged %d passes by filtered view", parent.Passes())
	}
	if fil.Passes() != 1 {
		t.Fatalf("view has %d passes, want 1", fil.Passes())
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	g := conformanceGraph()
	src := NewEdgeStream(g)
	got := Materialize(src)
	if !reflect.DeepEqual(got.Edges(), g.Edges()) {
		t.Fatal("materialized edges differ")
	}
	for v := 0; v < g.N(); v++ {
		if got.B(v) != g.B(v) {
			t.Fatalf("capacity of %d differs", v)
		}
	}
	if src.Passes() != 1 {
		t.Fatalf("materialize consumed %d passes, want 1", src.Passes())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := conformanceGraph()
	path := binFixture(t, NewEdgeStream(g))
	src, err := OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.N() != g.N() || src.Len() != g.M() || src.TotalB() != g.TotalB() {
		t.Fatalf("header mismatch: n=%d m=%d B=%d", src.N(), src.Len(), src.TotalB())
	}
	got := Materialize(src)
	if !reflect.DeepEqual(got.Edges(), g.Edges()) {
		t.Fatal("binary round trip changed the edge list")
	}
	for v := 0; v < g.N(); v++ {
		if got.B(v) != g.B(v) {
			t.Fatalf("capacity of %d differs after round trip", v)
		}
	}
}

func TestBinaryUnitCapacitiesOmitTable(t *testing.T) {
	g := graph.GNM(10, 20, graph.WeightConfig{}, 3)
	path := binFixture(t, NewEdgeStream(g))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(24 + 16*g.M()); fi.Size() != want {
		t.Fatalf("unit-capacity file is %d bytes, want %d (no capacity table)", fi.Size(), want)
	}
	src, err := OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.TotalB() != g.N() {
		t.Fatalf("TotalB %d, want %d", src.TotalB(), g.N())
	}
}

func TestBinary2RoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"small-caps", conformanceGraph()},
		{"multi-frame", multiFrameGraph()},
		{"unit-weights", graph.GNM(40, bin2BlockLen+100, graph.WeightConfig{}, 7)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := bin2Fixture(t, NewEdgeStream(tc.g))
			src, err := OpenBinary(path)
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			if src.N() != tc.g.N() || src.Len() != tc.g.M() || src.TotalB() != tc.g.TotalB() {
				t.Fatalf("header mismatch: n=%d m=%d B=%d", src.N(), src.Len(), src.TotalB())
			}
			got := Materialize(src)
			if !reflect.DeepEqual(got.Edges(), tc.g.Edges()) {
				t.Fatal("RBG2 round trip changed the edge list")
			}
			for v := 0; v < tc.g.N(); v++ {
				if got.B(v) != tc.g.B(v) {
					t.Fatalf("capacity of %d differs after round trip", v)
				}
			}
		})
	}
}

func TestBinary2CompressionRatio(t *testing.T) {
	// Unit weights are the common out-of-core case (E13/E15 regime):
	// the frame spends ~2 varint endpoints and zero weight bytes per
	// edge, which must come in well under RBG1's flat 16 bytes.
	g := graph.GNM(5000, 3*bin2BlockLen, graph.WeightConfig{}, 11)
	dir := t.TempDir()
	p1 := filepath.Join(dir, "g.rbg")
	p2 := filepath.Join(dir, "g.rbg2")
	if err := WriteBinaryFile(p1, NewEdgeStream(g)); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryFile2(p2, NewEdgeStream(g)); err != nil {
		t.Fatal(err)
	}
	fi1, err := os.Stat(p1)
	if err != nil {
		t.Fatal(err)
	}
	fi2, err := os.Stat(p2)
	if err != nil {
		t.Fatal(err)
	}
	if fi2.Size() > fi1.Size()*7/10 {
		t.Fatalf("RBG2 is %d bytes vs RBG1 %d — want >= 30%% smaller", fi2.Size(), fi1.Size())
	}
}

func TestOpenBinary2RejectsCorruption(t *testing.T) {
	path := bin2Fixture(t, NewEdgeStream(multiFrameGraph()))
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mangle := func(name string, f func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			bad := f(append([]byte(nil), valid...))
			p := filepath.Join(t.TempDir(), "bad.rbg2")
			if err := os.WriteFile(p, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			src, err := OpenBinaryWith(p, OpenOptions{NoMmap: true})
			if err != nil {
				return // rejected at open: fine
			}
			defer src.Close()
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("corrupt frame swept without a typed panic")
				}
				if _, ok := r.(*ReadError); !ok {
					t.Fatalf("sweep panicked with %T, want *ReadError", r)
				}
			}()
			src.Sweep(func(int, graph.Edge) bool { return true })
		})
	}
	mangle("truncated-half", func(b []byte) []byte { return b[:len(b)/2] })
	mangle("truncated-trailer", func(b []byte) []byte { return b[:len(b)-4] })
	mangle("bad-trailer-magic", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b })
	mangle("bad-block-len", func(b []byte) []byte {
		// blockLen is a u32 at offset 24; zero it entirely.
		for i := 24; i < 28; i++ {
			b[i] = 0
		}
		return b
	})
	mangle("frame-corrupt", func(b []byte) []byte {
		// Flip a byte in the middle of the first frame's payload.
		b[bin2HeaderSize+4*50+20] ^= 0xff
		return b
	})
	mangle("huge-m", func(b []byte) []byte {
		for i := 16; i < 24; i++ {
			b[i] = 0xff
		}
		return b
	})
}

// TestFileSourceReadErrorTyped checks satellite behavior: an I/O
// failure mid-solve surfaces as a typed *ReadError panic, not a bare
// fmt panic (the engine converts it to an error; see the engine tests).
func TestFileSourceReadErrorTyped(t *testing.T) {
	path := binFixture(t, NewEdgeStream(conformanceGraph()))
	src, err := OpenBinaryWith(path, OpenOptions{NoMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	// Truncate the file underneath the open handle: the next sweep's
	// ReadAt fails with io.EOF territory errors.
	if err := os.Truncate(path, 30); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		re, ok := r.(*ReadError)
		if !ok {
			t.Fatalf("sweep panicked with %T (%v), want *ReadError", r, r)
		}
		if re.Path != path || re.Err == nil {
			t.Fatalf("ReadError missing context: %+v", re)
		}
	}()
	src.Sweep(func(int, graph.Edge) bool { return true })
}

func TestOpenBinaryRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.rbg")
	if err := os.WriteFile(path, []byte("not a graph at all, sorry"), 0o644); err != nil {
		t.Fatal(err)
	}
	if src, err := OpenBinary(path); err == nil {
		src.Close()
		t.Fatal("garbage accepted as RBG1")
	}
}
