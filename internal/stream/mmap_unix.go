//go:build linux || darwin

package stream

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// mmapFile maps the whole file read-only. Empty files are rejected
// (mmap of length 0 is an error; callers fall back to ReadAt).
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("stream: cannot map %d bytes", size)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("stream: file of %d bytes exceeds address space", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping from mmapFile (best effort).
func munmapFile(data []byte) {
	_ = syscall.Munmap(data)
}

// adviseSequential hints that the mapping will be read front to back.
func adviseSequential(data []byte) {
	_ = madvise(data, madvSequential)
}

// adviseWillNeed hints that the range is about to be read, so the
// kernel can page it in while the current block decodes.
func adviseWillNeed(data []byte) {
	_ = madvise(data, madvWillNeed)
}

const (
	madvSequential = 2
	madvWillNeed   = 3
)

func madvise(b []byte, advice int) error {
	if len(b) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MADVISE,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(advice))
	if errno != 0 {
		return errno
	}
	return nil
}
