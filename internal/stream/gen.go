package stream

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/xrand"
)

// GenSource is the generator-backed Source: instead of storing edges
// anywhere, every pass replays a seeded synthetic generator. The edge
// sequence is a pure function of the spec — edges are drawn in fixed-size
// blocks, each block from its own pre-split RNG — so passes are
// bit-identical to each other, parallel sweeps shard on block boundaries
// without coordination, and point lookups replay one block. A GenSource
// holds O(1) state per sweep: it is the backend for scaling runs at sizes
// that cannot be materialized (experiment E13/E15 regime m >> RAM).
//
// The generator is a uniform multigraph sampler: each edge picks two
// distinct uniform endpoints and a weight from the configured law.
// Duplicate pairs are possible (the paper's algorithms accept parallel
// edges); deduplication would require Ω(m) memory and is exactly what
// this backend exists to avoid.
type GenSource struct {
	meter
	spec   GenSpec
	capSd  uint64
	totalB int
}

// GenSpec parameterizes a GenSource.
type GenSpec struct {
	// N is the vertex count (>= 2 when M > 0).
	N int
	// M is the edge count.
	M int
	// Weights selects the edge-weight law.
	Weights graph.WeightConfig
	// Seed drives all randomness.
	Seed uint64
	// BMax > 1 assigns deterministic pseudo-random capacities in
	// [1, BMax]; otherwise all capacities are 1.
	BMax int
}

// genBlockEdges is the replay granule: every block of this many edges is
// drawn from its own seed-derived RNG. It is a constant so the edge
// sequence never depends on worker count or sweep shape.
const genBlockEdges = 1 << 12

var _ Source = (*GenSource)(nil)
var _ RandomAccess = (*GenSource)(nil)

// NewGen returns a generator-backed source for the spec.
func NewGen(spec GenSpec) (*GenSource, error) {
	if spec.M < 0 || spec.N < 0 {
		return nil, fmt.Errorf("stream: negative generator size n=%d m=%d", spec.N, spec.M)
	}
	if spec.M > 0 && spec.N < 2 {
		return nil, fmt.Errorf("stream: need n >= 2 for m=%d generated edges", spec.M)
	}
	s := &GenSource{spec: spec, capSd: xrand.Mix64(spec.Seed ^ 0xcab0cab0cab0cab0)}
	s.totalB = 0
	for v := 0; v < spec.N; v++ {
		s.totalB += s.B(v)
	}
	return s, nil
}

// N returns the number of vertices.
func (s *GenSource) N() int { return s.spec.N }

// B returns the capacity of vertex v (a pure function of the seed).
func (s *GenSource) B(v int) int {
	if s.spec.BMax <= 1 {
		return 1
	}
	return 1 + int(xrand.Mix64(s.capSd+uint64(v))%uint64(s.spec.BMax))
}

// TotalB returns Σ b_i.
func (s *GenSource) TotalB() int { return s.totalB }

// Len returns the stream length m.
func (s *GenSource) Len() int { return s.spec.M }

// blockRNG returns the generator for block b.
func (s *GenSource) blockRNG(b int) *xrand.RNG {
	return xrand.New(xrand.Mix64(s.spec.Seed ^ (uint64(b)+1)*0x9e3779b97f4a7c15))
}

// drawEdge draws the next edge of a block's stream.
func (s *GenSource) drawEdge(r *xrand.RNG) graph.Edge {
	n := s.spec.N
	for {
		u := r.Intn(n)
		v := r.Intn(n)
		if u == v {
			continue
		}
		return graph.Edge{U: int32(u), V: int32(v), W: s.spec.Weights.Draw(r)}
	}
}

// sweepRange replays edges [lo, hi), regenerating the first touched
// block's prefix (at most genBlockEdges wasted draws per call).
func (s *GenSource) sweepRange(lo, hi int, f func(idx int, e graph.Edge) bool) {
	for b := lo / genBlockEdges; b*genBlockEdges < hi; b++ {
		r := s.blockRNG(b)
		blockLo := b * genBlockEdges
		blockHi := blockLo + genBlockEdges
		if blockHi > s.spec.M {
			blockHi = s.spec.M
		}
		for i := blockLo; i < blockHi; i++ {
			e := s.drawEdge(r)
			if i < lo {
				continue
			}
			if i >= hi {
				return
			}
			if !f(i, e) {
				return
			}
		}
	}
}

// Edge replays the i-th edge (RandomAccess; costs one block prefix).
func (s *GenSource) Edge(i int) graph.Edge {
	if i < 0 || i >= s.spec.M {
		panic(fmt.Sprintf("stream: edge index %d out of range [0,%d)", i, s.spec.M))
	}
	var out graph.Edge
	s.sweepRange(i, i+1, func(_ int, e graph.Edge) bool {
		out = e
		return true
	})
	return out
}

// ForEach performs one replayed pass in index order. Returning false
// aborts the pass (it still counts as a pass).
func (s *GenSource) ForEach(f func(idx int, e graph.Edge) bool) {
	s.pass()
	s.Sweep(f)
}

// Sweep is ForEach without the pass charge (Source contract).
func (s *GenSource) Sweep(f func(idx int, e graph.Edge) bool) {
	s.sweepRange(0, s.spec.M, f)
}

// ForEachParallel performs one replayed pass sharded by edge range; each
// worker regenerates its own blocks independently. Counts one pass for
// any worker count (Source contract).
func (s *GenSource) ForEachParallel(workers int, f func(idx int, e graph.Edge)) {
	s.pass()
	s.SweepParallel(workers, f)
}

// SweepParallel is ForEachParallel without the pass charge.
func (s *GenSource) SweepParallel(workers int, f func(idx int, e graph.Edge)) {
	parallel.ForEachShard(workers, s.spec.M, func(_ int, r parallel.Range) {
		s.sweepRange(r.Lo, r.Hi, func(idx int, e graph.Edge) bool {
			f(idx, e)
			return true
		})
	})
}

// sweepRangeBlocks replays edges [lo, hi) in dense blocks. Replay
// blocks map one-to-one onto delivered blocks (BlockEdges equals the
// replay granule), regenerated into scratch, which the callback must
// not retain. The first touched block's prefix is regenerated and
// discarded, exactly like sweepRange.
func (s *GenSource) sweepRangeBlocks(lo, hi int, scratch []graph.Edge, f func(base int, edges []graph.Edge) bool) {
	for b := lo / genBlockEdges; b*genBlockEdges < hi; b++ {
		blockLo := b * genBlockEdges
		blockHi := blockLo + genBlockEdges
		if blockHi > s.spec.M {
			blockHi = s.spec.M
		}
		emitLo, emitHi := blockLo, blockHi
		if emitLo < lo {
			emitLo = lo
		}
		if emitHi > hi {
			emitHi = hi
		}
		if emitLo >= emitHi {
			continue
		}
		r := s.blockRNG(b)
		for i := blockLo; i < emitLo; i++ {
			s.drawEdge(r) // burn the block prefix to stay aligned
		}
		blk := scratch[:emitHi-emitLo]
		for i := range blk {
			blk[i] = s.drawEdge(r)
		}
		if !f(emitLo, blk) {
			return
		}
	}
}

// ForEachBlocks performs one metered replayed pass in dense blocks
// (BlockSweeper contract).
func (s *GenSource) ForEachBlocks(f func(base int, edges []graph.Edge) bool) {
	s.pass()
	s.SweepBlocks(f)
}

// SweepBlocks is ForEachBlocks without the pass charge.
func (s *GenSource) SweepBlocks(f func(base int, edges []graph.Edge) bool) {
	s.sweepRangeBlocks(0, s.spec.M, make([]graph.Edge, genBlockEdges), f)
}

// ForEachBlocksParallel performs one metered pass with blocks sharded
// by edge range; each worker regenerates its own blocks into its own
// scratch (BlockSweeper contract).
func (s *GenSource) ForEachBlocksParallel(workers int, f func(base int, edges []graph.Edge)) {
	s.pass()
	s.SweepBlocksParallel(workers, f)
}

// SweepBlocksParallel is ForEachBlocksParallel without the pass charge.
func (s *GenSource) SweepBlocksParallel(workers int, f func(base int, edges []graph.Edge)) {
	parallel.ForEachShard(workers, s.spec.M, func(_ int, r parallel.Range) {
		s.sweepRangeBlocks(r.Lo, r.Hi, make([]graph.Edge, genBlockEdges), func(base int, edges []graph.Edge) bool {
			f(base, edges)
			return true
		})
	})
}
