package stream

// Fuzzing for the binary codecs: any byte string, opened as an RBG
// file, must either be rejected at open, or produce a source whose
// sweeps and lookups deliver only valid edges — with every failure a
// typed *ReadError, never an index-out-of-range or an allocation blowup
// driven by a hostile header. Seeds cover the malformed-spec corpus the
// serving layer rejects (garbage, bad magic, empty), valid files of
// both versions, and structured corruptions of each section (header,
// capacity table, frames, index, trailer).

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// fuzzEnumerate sweeps src, validating every delivered edge, and
// reports the edges seen plus whether the sweep completed (false: a
// typed ReadError cut it short — acceptable for corrupt input).
func fuzzEnumerate(t *testing.T, src *FileSource) (edges []graph.Edge, complete bool) {
	t.Helper()
	complete = true
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(*ReadError); !ok {
					panic(r) // anything untyped is the bug we're hunting
				}
				complete = false
			}
		}()
		next := 0
		src.Sweep(func(idx int, e graph.Edge) bool {
			if idx != next {
				t.Fatalf("sweep index %d, want %d", idx, next)
			}
			if e.U < 0 || e.V < 0 || int(e.U) >= src.N() || int(e.V) >= src.N() || e.U == e.V {
				t.Fatalf("sweep delivered invalid edge %+v for n=%d", e, src.N())
			}
			next++
			edges = append(edges, e)
			return true
		})
		if next != src.Len() {
			t.Fatalf("complete sweep delivered %d of %d edges", next, src.Len())
		}
	}()
	return edges, complete
}

func FuzzOpenBinary(f *testing.F) {
	// The serving layer's byte-level malformed cases.
	f.Add([]byte{})
	f.Add([]byte("!!!"))
	f.Add([]byte("not an rbg1 file at all......"))
	f.Add([]byte("not a graph at all, sorry"))
	// Valid files of both versions, with and without capacities.
	g := graph.GNM(23, 57, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 12}, 99)
	graph.WithRandomB(g, 3, false, 100)
	unit := graph.GNM(16, 40, graph.WeightConfig{}, 7)
	for _, src := range []Source{NewEdgeStream(g), NewEdgeStream(unit)} {
		var b1, b2 bytes.Buffer
		if err := WriteBinary(&b1, src); err != nil {
			f.Fatal(err)
		}
		if err := WriteBinary2(&b2, src); err != nil {
			f.Fatal(err)
		}
		for _, valid := range [][]byte{b1.Bytes(), b2.Bytes()} {
			f.Add(valid)
			f.Add(valid[:len(valid)/2]) // truncated
			f.Add(valid[:len(valid)-3])
			for _, off := range []int{4, 8, 16, 24, len(valid) / 2, len(valid) - 9} {
				mut := append([]byte(nil), valid...)
				mut[off] ^= 0xff
				f.Add(mut)
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.rbg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		pread, err := OpenBinaryWith(path, OpenOptions{NoMmap: true})
		if err != nil {
			// Rejected at open: the mmap path must agree.
			if m, merr := OpenBinary(path); merr == nil {
				m.Close()
				t.Fatal("mmap open accepted what pread open rejected")
			}
			return
		}
		defer pread.Close()
		got, complete := fuzzEnumerate(t, pread)
		// The two access paths decode the same bytes: same edges, same
		// completion status.
		mapped, err := OpenBinary(path)
		if err != nil {
			t.Fatalf("pread open accepted what default open rejected: %v", err)
		}
		defer mapped.Close()
		got2, complete2 := fuzzEnumerate(t, mapped)
		if complete != complete2 || len(got) != len(got2) {
			t.Fatalf("access paths disagree: pread (%d edges, complete=%v) vs mapped (%d, %v)",
				len(got), complete, len(got2), complete2)
		}
		for i := range got {
			if got[i] != got2[i] {
				t.Fatalf("edge %d differs between access paths: %+v vs %+v", i, got[i], got2[i])
			}
		}
		// Random access must agree with the sweep wherever the sweep got.
		for i := 0; i < len(got) && i < 8; i++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(*ReadError); !ok {
							panic(r)
						}
					}
				}()
				if e := pread.Edge(i); e != got[i] {
					t.Fatalf("Edge(%d) = %+v, sweep saw %+v", i, e, got[i])
				}
			}()
		}
	})
}
