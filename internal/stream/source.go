package stream

import (
	"sync/atomic"

	"repro/internal/graph"
)

// Source is the "access to data" abstraction of the paper, separated from
// the iteration machinery that consumes it: a replayable, read-only edge
// sequence over a fixed vertex set with known capacities, plus explicit
// pass accounting. The solver, the semi-streaming baselines, the
// filtering algorithms and the sketch builders all consume this interface
// rather than a materialized *graph.Graph, so the same algorithm runs
// against an in-memory edge list (EdgeStream), an on-disk binary file
// (FileSource), a replayed synthetic generator (GenSource) or a
// composition of shards (ConcatSource) without change.
//
// Edge indices are stable across passes: every sweep enumerates the same
// (idx, edge) pairs in the same order, and idx ranges over [0, Len()) for
// the primary backends (a Filtered view reuses its parent's indices, so
// there the idx sequence is a strictly increasing subsequence). That
// stability is what lets downstream samples refer back to edges by index.
//
// ForEach and ForEachParallel are the metered sweeps algorithm code must
// use: each call counts one pass, aborted or not. Sweep and SweepParallel
// are the raw, un-metered primitives beneath them; they exist so derived
// views (Filtered, ConcatSource) can enumerate their parent without
// charging the parent a pass — the view meters its own passes, matching
// the paper's accounting where each per-level stream runs on its own
// machine. Algorithm code should never call Sweep directly.
type Source interface {
	// N returns the number of vertices (known a priori, as is standard in
	// semi-streaming).
	N() int
	// B returns the capacity of vertex v (also known a priori).
	B(v int) int
	// TotalB returns Σ b_i.
	TotalB() int
	// Len returns the stream length m. Knowing m (or an upper bound) is
	// standard for choosing subsampling depths.
	Len() int
	// Passes returns how many metered passes have been consumed.
	Passes() int
	// ForEach performs one pass over the edges in arrival order. The
	// callback receives the edge index and the edge. Returning false
	// aborts the pass (it still counts as a pass).
	ForEach(f func(idx int, e graph.Edge) bool)
	// ForEachParallel performs one pass with the work sharded by edge
	// range across workers (0 = GOMAXPROCS, 1 = sequential). The callback
	// may run concurrently from multiple goroutines and there is no early
	// abort; each edge index is visited exactly once, so callbacks that
	// only write index-keyed slots need no synchronization. The whole
	// sweep counts as a single pass regardless of worker count — the
	// shards together read the input once, exactly as the distributed
	// mappers of Section 4.2 share one round.
	ForEachParallel(workers int, f func(idx int, e graph.Edge))
	// Sweep is ForEach without the pass charge (see the interface doc).
	Sweep(f func(idx int, e graph.Edge) bool)
	// SweepParallel is ForEachParallel without the pass charge.
	SweepParallel(workers int, f func(idx int, e graph.Edge))
}

// RandomAccess is the optional point-lookup extension of a Source. All
// backends in this package implement it (an index into an in-memory
// slice, a 16-byte pread on a FileSource, a block replay on a GenSource),
// but the solver does not require it — it is used by tooling that needs a
// handful of edges by index, e.g. validating a matching against a file
// too large to materialize.
type RandomAccess interface {
	// Edge returns the i-th edge of the stream.
	Edge(i int) graph.Edge
}

// meter is the shared pass counter backends embed. It is safe for
// concurrent use.
type meter struct {
	passes int64
}

// Passes returns how many metered passes have been consumed.
func (m *meter) Passes() int { return int(atomic.LoadInt64(&m.passes)) }

// pass records one consumed pass.
func (m *meter) pass() { atomic.AddInt64(&m.passes, 1) }

// Materialize reads the whole source into an in-memory graph (one metered
// pass). It is the bridge back from the streaming world for consumers
// that genuinely need random access to everything — exact reference
// solvers, importers — and is obviously only usable when the instance
// fits in memory.
func Materialize(src Source) *graph.Graph {
	g := graph.New(src.N())
	for v := 0; v < src.N(); v++ {
		if b := src.B(v); b != 1 {
			g.SetB(v, b)
		}
	}
	ForEachBlocks(src, func(_ int, edges []graph.Edge) bool {
		for i := range edges {
			g.MustAddEdge(int(edges[i].U), int(edges[i].V), edges[i].W)
		}
		return true
	})
	return g
}

// MaxWeight scans for W* = max edge weight (one metered pass; 0 for an
// edgeless source). The weight-discretization scheme needs W* before any
// other pass can classify edges by level.
func MaxWeight(src Source) float64 {
	w := 0.0
	ForEachBlocks(src, func(_ int, edges []graph.Edge) bool {
		for i := range edges {
			if edges[i].W > w {
				w = edges[i].W
			}
		}
		return true
	})
	return w
}
