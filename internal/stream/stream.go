// Package stream models the constrained data-access regimes of the paper:
// a read-only edge stream (semi-streaming) with explicit pass accounting,
// and a space accountant that tracks the peak number of words of random
// accessible storage the algorithm holds at any time.
//
// The access side is pluggable (see Source): the same metered-sweep
// contract is served by an in-memory edge list, an on-disk binary file, a
// replayed synthetic generator, or a sharded composition, so algorithms
// written against Source run out-of-core unchanged.
//
// Nothing in this package enforces the constraints by construction (the
// process obviously has RAM); instead the resources are *measured* so that
// experiments E2/E9/E15 can report rounds/passes and peak space and compare
// them to the paper's O(p/ε) and O(n^(1+1/p)) bounds.
package stream

import (
	"fmt"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// EdgeStream is the in-memory Source: a materialized graph presented as a
// replayable, read-only sequence of edges.
type EdgeStream struct {
	meter
	g *graph.Graph
}

var _ Source = (*EdgeStream)(nil)
var _ RandomAccess = (*EdgeStream)(nil)

// NewEdgeStream wraps a graph as a stream. The graph must not be mutated
// afterwards.
func NewEdgeStream(g *graph.Graph) *EdgeStream {
	return &EdgeStream{g: g}
}

// N returns the number of vertices.
func (s *EdgeStream) N() int { return s.g.N() }

// B returns the capacity of vertex v.
func (s *EdgeStream) B(v int) int { return s.g.B(v) }

// TotalB returns Σ b_i.
func (s *EdgeStream) TotalB() int { return s.g.TotalB() }

// Len returns the stream length m.
func (s *EdgeStream) Len() int { return s.g.M() }

// Edge returns the i-th edge (RandomAccess).
func (s *EdgeStream) Edge(i int) graph.Edge { return s.g.Edge(i) }

// ForEach performs one pass over the edges in arrival order. The callback
// receives the edge index and the edge. Returning false aborts the pass
// (it still counts as a pass).
func (s *EdgeStream) ForEach(f func(idx int, e graph.Edge) bool) {
	s.pass()
	s.Sweep(f)
}

// Sweep is ForEach without the pass charge (Source contract).
func (s *EdgeStream) Sweep(f func(idx int, e graph.Edge) bool) {
	for i, e := range s.g.Edges() {
		if !f(i, e) {
			return
		}
	}
}

// ForEachParallel performs one pass over the edges with the work sharded
// by edge range across workers (0 = GOMAXPROCS, 1 = sequential). The
// callback may run concurrently from multiple goroutines and there is no
// early abort; each edge index is visited exactly once, so callbacks that
// only write index-keyed slots need no synchronization. The whole sweep
// counts as a single pass regardless of worker count — the shards
// together read the input once, exactly as the distributed mappers of
// Section 4.2 share one round.
func (s *EdgeStream) ForEachParallel(workers int, f func(idx int, e graph.Edge)) {
	s.pass()
	s.SweepParallel(workers, f)
}

// SweepParallel is ForEachParallel without the pass charge.
func (s *EdgeStream) SweepParallel(workers int, f func(idx int, e graph.Edge)) {
	edges := s.g.Edges()
	parallel.ForEachShard(workers, len(edges), func(_ int, r parallel.Range) {
		for i := r.Lo; i < r.Hi; i++ {
			f(i, edges[i])
		}
	})
}

// ForEachBlocks performs one metered pass in dense blocks
// (BlockSweeper contract). Blocks are zero-copy sub-slices of the
// materialized edge list.
func (s *EdgeStream) ForEachBlocks(f func(base int, edges []graph.Edge) bool) {
	s.pass()
	s.SweepBlocks(f)
}

// SweepBlocks is ForEachBlocks without the pass charge.
func (s *EdgeStream) SweepBlocks(f func(base int, edges []graph.Edge) bool) {
	edges := s.g.Edges()
	sliceBlocks(edges, 0, len(edges), f)
}

// ForEachBlocksParallel performs one metered pass with blocks sharded
// by edge range across workers (BlockSweeper contract).
func (s *EdgeStream) ForEachBlocksParallel(workers int, f func(base int, edges []graph.Edge)) {
	s.pass()
	s.SweepBlocksParallel(workers, f)
}

// SweepBlocksParallel is ForEachBlocksParallel without the pass charge.
func (s *EdgeStream) SweepBlocksParallel(workers int, f func(base int, edges []graph.Edge)) {
	edges := s.g.Edges()
	parallel.ForEachShard(workers, len(edges), func(_ int, r parallel.Range) {
		sliceBlocks(edges, r.Lo, r.Hi, func(base int, blk []graph.Edge) bool {
			f(base, blk)
			return true
		})
	})
}

// SpaceAccountant tracks words of central storage in use, its peak, and
// the number of adaptive access rounds. All methods are safe for
// concurrent use.
type SpaceAccountant struct {
	current int64
	peak    int64
	rounds  int64
}

// NewSpaceAccountant returns a zeroed accountant.
func NewSpaceAccountant() *SpaceAccountant { return &SpaceAccountant{} }

// Alloc records the acquisition of words of storage.
func (a *SpaceAccountant) Alloc(words int) {
	cur := atomic.AddInt64(&a.current, int64(words))
	for {
		p := atomic.LoadInt64(&a.peak)
		if cur <= p || atomic.CompareAndSwapInt64(&a.peak, p, cur) {
			return
		}
	}
}

// Free records the release of words of storage. Freeing more than is held
// panics: that is always an accounting bug.
func (a *SpaceAccountant) Free(words int) {
	if atomic.AddInt64(&a.current, -int64(words)) < 0 {
		panic(fmt.Sprintf("stream: freed %d words below zero", words))
	}
}

// Current returns the words currently held.
func (a *SpaceAccountant) Current() int { return int(atomic.LoadInt64(&a.current)) }

// Peak returns the maximum words ever held simultaneously.
func (a *SpaceAccountant) Peak() int { return int(atomic.LoadInt64(&a.peak)) }

// BeginRound records one adaptive access round (a round of sketching, a
// MapReduce round, or a streaming pass, depending on the model in play).
func (a *SpaceAccountant) BeginRound() { atomic.AddInt64(&a.rounds, 1) }

// Rounds returns the number of adaptive rounds recorded.
func (a *SpaceAccountant) Rounds() int { return int(atomic.LoadInt64(&a.rounds)) }
