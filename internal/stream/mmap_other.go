//go:build !linux && !darwin

package stream

import (
	"fmt"
	"os"
)

// mmapFile is unavailable on this platform; FileSource keeps the
// ReadAt path.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, fmt.Errorf("stream: mmap unsupported on this platform")
}

func munmapFile(data []byte) {}

func adviseSequential(data []byte) {}

func adviseWillNeed(data []byte) {}
