// Package semistream implements the one-pass and few-pass matching
// algorithms the paper positions itself against in the semi-streaming
// model (Related Work: Feigenbaum et al. [16], McGregor [29], Zelke [39]):
//
//   - OnePassGreedy: maximal matching in a single pass, the classic
//     1/2-approximation for cardinality ([16]);
//   - OnePassReplace: McGregor's one-pass weighted algorithm — a new edge
//     evicts its (at most two) conflicting matched edges when it is
//     (1+γ) times heavier than their sum; 1/(3+2√2)-approximation at the
//     optimal γ = √2, 1/6 at γ = 1 ([29], improving [16]);
//   - ShortAugmentPasses: repeated passes that resolve length-3
//     augmenting paths, lifting a maximal matching toward 2/3 of maximum
//     cardinality (the engine inside McGregor's (1-ε) multi-pass scheme,
//     truncated to length-3 augmentations).
//
// All functions consume a stream.Source so pass counts are measured and
// any backend (in-memory, file, generator) can serve the stream,
// and hold only O(n) matching state — the semi-streaming budget.
package semistream

import (
	"slices"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/stream"
)

// GreedyState is the O(n) incremental state of one-pass greedy maximal
// matching: Offer every edge in stream order and the matched set is
// maximal when the stream ends. It exists so both OnePassGreedy and the
// engine-driven greedy algorithm consume the identical decision rule —
// the round-loop driver feeds it edge by edge and reads the running
// weight without a second pass.
type GreedyState struct {
	used   []bool
	m      *matching.Matching
	weight float64
}

// NewGreedyState returns empty greedy state over n vertices.
func NewGreedyState(n int) *GreedyState {
	return &GreedyState{used: make([]bool, n), m: &matching.Matching{}}
}

// NewGreedyStateIn is NewGreedyState reusing buf for the matched-vertex
// bits when it is large enough (it is zeroed either way). The matched
// edge list is always fresh — callers hand it out as a result, so it
// must never be recycled — which makes this the allocation-shy
// constructor for sessions that run many greedy passes: the O(n) bit
// table is the state's dominant allocation and the only reusable one.
// Returns the state and the (possibly grown) buffer for the caller to
// retain.
func NewGreedyStateIn(n int, buf []bool) (*GreedyState, []bool) {
	if cap(buf) >= n {
		buf = buf[:n]
		clear(buf)
	} else {
		buf = make([]bool, n)
	}
	return &GreedyState{used: buf, m: &matching.Matching{}}, buf
}

// Offer considers one stream edge and reports whether it was taken
// (both endpoints free).
func (g *GreedyState) Offer(idx int, e graph.Edge) bool {
	if g.used[e.U] || g.used[e.V] {
		return false
	}
	g.used[e.U], g.used[e.V] = true, true
	g.m.EdgeIdx = append(g.m.EdgeIdx, idx)
	g.weight += e.W
	return true
}

// Matching returns the matched set built so far (live, not a copy).
func (g *GreedyState) Matching() *matching.Matching { return g.m }

// Weight returns the total weight of the matched set so far.
func (g *GreedyState) Weight() float64 { return g.weight }

// OnePassGreedy returns a maximal matching built in a single pass: an
// edge is taken iff both endpoints are currently free.
func OnePassGreedy(s stream.Source) *matching.Matching {
	st := NewGreedyState(s.N())
	stream.ForEachBlocks(s, func(base int, edges []graph.Edge) bool {
		for i := range edges {
			st.Offer(base+i, edges[i])
		}
		return true
	})
	return st.Matching()
}

// OnePassReplace runs McGregor's replacement algorithm with parameter
// gamma > 0: edge e replaces its conflicting matched edges C(e) when
// w(e) >= (1+gamma)·w(C(e)).
func OnePassReplace(s stream.Source, gamma float64) *matching.Matching {
	n := s.N()
	matchEdge := make([]int, n) // edge index matched at v, or -1
	weightAt := make([]float64, n)
	for i := range matchEdge {
		matchEdge[i] = -1
	}
	inM := make(map[int]graph.Edge)
	stream.ForEachBlocks(s, func(base int, edges []graph.Edge) bool {
		for i := range edges {
			idx, e := base+i, edges[i]
			offerReplace(idx, e, matchEdge, weightAt, inM, gamma)
		}
		return true
	})
	out := &matching.Matching{}
	//lint:ordered key collection, sorted immediately below
	for idx := range inM {
		out.EdgeIdx = append(out.EdgeIdx, idx)
	}
	slices.Sort(out.EdgeIdx)
	return out
}

// offerReplace applies one edge of McGregor's replacement rule.
func offerReplace(idx int, e graph.Edge, matchEdge []int, weightAt []float64, inM map[int]graph.Edge, gamma float64) {
	cu, cv := matchEdge[e.U], matchEdge[e.V]
	conflict := 0.0
	if cu >= 0 {
		conflict += weightAt[e.U]
	}
	if cv >= 0 && cv != cu {
		conflict += weightAt[e.V]
	}
	if e.W >= (1+gamma)*conflict {
		if cu >= 0 {
			old := inM[cu]
			matchEdge[old.U], matchEdge[old.V] = -1, -1
			delete(inM, cu)
		}
		if cv >= 0 && cv != cu {
			old := inM[cv]
			matchEdge[old.U], matchEdge[old.V] = -1, -1
			delete(inM, cv)
		}
		matchEdge[e.U], matchEdge[e.V] = idx, idx
		weightAt[e.U], weightAt[e.V] = e.W, e.W
		inM[idx] = e
	}
}

// ShortAugmentPasses improves a matching by resolving vertex-disjoint
// length-3 augmenting paths (free–matched–free), one extra pass per
// round, up to maxPasses rounds or until no augmentation is found.
// Starting from a maximal matching this converges toward a 2/3
// approximation of maximum cardinality.
func ShortAugmentPasses(s stream.Source, m *matching.Matching, maxPasses int) *matching.Matching {
	cur := map[int]bool{}
	for _, idx := range m.EdgeIdx {
		cur[idx] = true
	}
	for pass := 0; pass < maxPasses; pass++ {
		if augmented, _ := AugmentRound(s, cur); !augmented {
			break
		}
	}
	return SortedMatching(cur)
}

// SortedMatching converts a matched edge-index set into a Matching with
// deterministically ordered indices.
func SortedMatching(cur map[int]bool) *matching.Matching {
	out := &matching.Matching{}
	//lint:ordered key collection, sorted immediately below
	for idx := range cur {
		out.EdgeIdx = append(out.EdgeIdx, idx)
	}
	slices.Sort(out.EdgeIdx)
	return out
}

// AugmentRound performs one round of length-3 augmentation over the
// matched edge-index set cur, mutating it in place: two metered passes
// (one to locate the matched edges, one to collect candidate wings),
// then a deterministic vertex-disjoint resolution. It reports whether
// any augmenting path was applied and the total matching-weight delta of
// the applied augmentations. ShortAugmentPasses and the engine-driven
// greedy-augment algorithm share this exact round.
func AugmentRound(s stream.Source, cur map[int]bool) (bool, float64) {
	n := s.N()
	matchAt := make([]int, n)
	for i := range matchAt {
		matchAt[i] = -1
	}
	edgeOf := make(map[int]graph.Edge, len(cur))
	stream.ForEachBlocks(s, func(base int, edges []graph.Edge) bool {
		for i := range edges {
			if idx := base + i; cur[idx] {
				matchAt[edges[i].U] = idx
				matchAt[edges[i].V] = idx
				edgeOf[idx] = edges[i]
			}
		}
		return true
	})
	// Collect, per matched edge, one candidate wing at each endpoint:
	// wing edges go from a free vertex to a matched endpoint.
	type wings struct {
		uWing, vWing int // edge indices, -1 if none
		uFree, vFree int32
		uW, vW       float64
		matched      graph.Edge
		matchedIdx   int
	}
	byMatched := map[int]*wings{}
	freeTaken := make([]bool, n)
	stream.ForEachBlocks(s, func(base int, edges []graph.Edge) bool {
		for i := range edges {
			idx, e := base+i, edges[i]
			if cur[idx] {
				continue
			}
			fu, fv := matchAt[e.U] == -1, matchAt[e.V] == -1
			if fu == fv {
				continue // both free (matching not maximal) or both matched
			}
			free, anchored := e.U, e.V
			if fv {
				free, anchored = e.V, e.U
			}
			mi := matchAt[anchored]
			w := byMatched[mi]
			if w == nil {
				me := edgeOf[mi]
				w = &wings{uWing: -1, vWing: -1, matched: me, matchedIdx: mi}
				byMatched[mi] = w
			}
			if anchored == w.matched.U && w.uWing == -1 {
				w.uWing, w.uFree, w.uW = idx, free, e.W
			} else if anchored == w.matched.V && w.vWing == -1 {
				w.vWing, w.vFree, w.vW = idx, free, e.W
			}
		}
		return true
	})
	// Resolve: an augmenting path needs wings at both endpoints with
	// distinct free vertices not already used this round. Matched
	// edges are visited in sorted index order — map iteration order
	// would make the conflict resolution (and thus the result)
	// nondeterministic run to run.
	matchedIdxs := make([]int, 0, len(byMatched))
	//lint:ordered key collection, sorted immediately below
	for mi := range byMatched {
		matchedIdxs = append(matchedIdxs, mi)
	}
	slices.Sort(matchedIdxs)
	augmented := false
	delta := 0.0
	for _, mi := range matchedIdxs {
		w := byMatched[mi]
		if w.uWing == -1 || w.vWing == -1 || w.uFree == w.vFree {
			continue
		}
		if freeTaken[w.uFree] || freeTaken[w.vFree] {
			continue
		}
		freeTaken[w.uFree] = true
		freeTaken[w.vFree] = true
		delete(cur, w.matchedIdx)
		cur[w.uWing] = true
		cur[w.vWing] = true
		delta += w.uW + w.vW - w.matched.W
		augmented = true
	}
	return augmented, delta
}
