package semistream

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/stream"
	"repro/internal/xrand"
)

func TestOnePassGreedyMaximalOnePass(t *testing.T) {
	g := graph.GNM(80, 600, graph.WeightConfig{}, 1)
	s := stream.NewEdgeStream(g)
	m := OnePassGreedy(s)
	if s.Passes() != 1 {
		t.Fatalf("passes = %d, want 1", s.Passes())
	}
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !m.IsMaximal(g) {
		t.Fatal("not maximal")
	}
}

func TestOnePassGreedyHalfApprox(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 4 + r.Intn(8)
		m := 3 + r.Intn(12)
		g := graph.GNM(n, m, graph.WeightConfig{}, seed+5)
		mm := OnePassGreedy(stream.NewEdgeStream(g))
		edges := make([]matching.WEdge, g.M())
		for i, e := range g.Edges() {
			edges[i] = matching.WEdge{U: e.U, V: e.V, W: 1}
		}
		mate, _ := matching.MaxWeightMatching(g.N(), edges, true)
		maxCard := 0
		for v, u := range mate {
			if u >= 0 && int32(v) < u {
				maxCard++
			}
		}
		return 2*mm.Size() >= maxCard
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOnePassReplaceValidAndOnePass(t *testing.T) {
	g := graph.GNM(80, 600, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 40}, 2)
	s := stream.NewEdgeStream(g)
	m := OnePassReplace(s, 1)
	if s.Passes() != 1 {
		t.Fatalf("passes = %d", s.Passes())
	}
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestOnePassReplaceBeatsSixth(t *testing.T) {
	// Guarantee at gamma=1 is 1/6 of the optimum; check across random
	// weighted instances.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 6 + r.Intn(20)
		m := 5 + r.Intn(60)
		g := graph.GNM(n, m, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 100}, seed+7)
		mm := OnePassReplace(stream.NewEdgeStream(g), 1)
		_, opt := matching.MaxWeightMatchingFloat(g, false)
		return mm.Weight(g) >= opt/6-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOnePassReplaceEvictsLighter(t *testing.T) {
	// Stream order forces an eviction: light edge first, heavy conflict
	// later.
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 10)
	m := OnePassReplace(stream.NewEdgeStream(g), 1)
	if m.Weight(g) != 10 {
		t.Fatalf("weight %f, want 10 (eviction failed)", m.Weight(g))
	}
}

func TestOnePassReplaceKeepsWhenBelowThreshold(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 2, 15) // 15 < (1+1)*10: no eviction at gamma=1
	m := OnePassReplace(stream.NewEdgeStream(g), 1)
	if m.Weight(g) != 10 {
		t.Fatalf("weight %f, want 10 (should not evict)", m.Weight(g))
	}
}

func TestShortAugmentPassesImproves(t *testing.T) {
	// A path of 5 edges: a bad maximal matching picks edges 1 and 3
	// (middle), missing the 3-matching; 3-augmentation cannot fix a
	// 5-path picked badly... use the classic: path of 3 edges with the
	// middle matched: free-matched-free resolves to 2 edges.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1) // wing
	g.MustAddEdge(1, 2, 1) // matched
	g.MustAddEdge(2, 3, 1) // wing
	m := &matching.Matching{EdgeIdx: []int{1}}
	s := stream.NewEdgeStream(g)
	am := ShortAugmentPasses(s, m, 3)
	if am.Size() != 2 {
		t.Fatalf("size %d after augmentation, want 2", am.Size())
	}
	if err := am.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestShortAugmentPassesNeverDegrades(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 6 + r.Intn(30)
		m := 5 + r.Intn(80)
		g := graph.GNM(n, m, graph.WeightConfig{}, seed+11)
		s := stream.NewEdgeStream(g)
		base := OnePassGreedy(s)
		aug := ShortAugmentPasses(s, base, 4)
		if err := aug.Validate(g); err != nil {
			return false
		}
		return aug.Size() >= base.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShortAugmentApproachesTwoThirds(t *testing.T) {
	total, totalOpt := 0, 0
	for seed := uint64(0); seed < 10; seed++ {
		g := graph.GNM(60, 180, graph.WeightConfig{}, seed+13)
		s := stream.NewEdgeStream(g)
		aug := ShortAugmentPasses(s, OnePassGreedy(s), 8)
		edges := make([]matching.WEdge, g.M())
		for i, e := range g.Edges() {
			edges[i] = matching.WEdge{U: e.U, V: e.V, W: 1}
		}
		mate, _ := matching.MaxWeightMatching(g.N(), edges, true)
		maxCard := 0
		for v, u := range mate {
			if u >= 0 && int32(v) < u {
				maxCard++
			}
		}
		total += aug.Size()
		totalOpt += maxCard
	}
	if 3*total < 2*totalOpt {
		t.Fatalf("aggregate ratio %.3f below 2/3", float64(total)/float64(totalOpt))
	}
}

func TestPassBudgets(t *testing.T) {
	g := graph.GNM(40, 200, graph.WeightConfig{}, 17)
	s := stream.NewEdgeStream(g)
	base := OnePassGreedy(s)
	_ = ShortAugmentPasses(s, base, 3)
	// 1 (greedy) + up to 2 per augment round (snapshot + wings).
	if s.Passes() > 1+2*3 {
		t.Fatalf("passes = %d exceeds budget", s.Passes())
	}
}
