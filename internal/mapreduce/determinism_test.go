package mapreduce

import (
	"testing"

	"repro/internal/graph"
)

// TestConnectedComponentsMRDeterministic pins the sorted-representative
// walk in the post-processing Boruvka: unions used to apply in uf.Sets()
// map order, so the union-find shape (and with it which vertex
// represents each component) could differ run to run.
func TestConnectedComponentsMRDeterministic(t *testing.T) {
	g := graph.GNM(40, 90, graph.WeightConfig{}, 41)
	var ref []int
	for trial := 0; trial < 10; trial++ {
		c := NewCluster(4)
		uf, _ := ConnectedComponentsMR(c, g, 17)
		roots := make([]int, g.N())
		for v := 0; v < g.N(); v++ {
			roots[v] = uf.Find(v)
		}
		if trial == 0 {
			ref = roots
			continue
		}
		for v := range roots {
			if roots[v] != ref[v] {
				t.Fatalf("trial %d: vertex %d has root %d, first run had %d", trial, v, roots[v], ref[v])
			}
		}
	}
}
