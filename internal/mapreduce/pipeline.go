package mapreduce

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/sketch"
	"repro/internal/unionfind"
	"repro/internal/xrand"
)

// The Section 4.2 pipeline: per-vertex ℓ0 sketches in one MapReduce
// round, central post-processing in a second.
//
//	1st round mapper : edge (u,v) -> (u, edge), (v, edge)
//	1st round reducer: vertex u's incident edges -> incidence sketches
//	2nd round mapper : (u, S_u) -> (1, S_u)
//	2nd round reducer: all sketches on one machine -> spanning forest
//
// The sketch randomness R is the shared IncidenceSpec (generated once
// from the seed, as the paper's mappers generate shared randomness per
// edge; a spec-level seed is the standard equivalent).

// ccEdge carries one edge through the shuffle.
type ccEdge struct{ u, v int32 }

// ccSketch carries one vertex's sketch bank row through the shuffle.
type ccSketch struct {
	vertex int32
	rows   []*sketch.L0
}

// ConnectedComponentsMR computes connected components with 2 MapReduce
// rounds of sketching plus central post-processing, returning the
// union-find over vertices and the cluster stats.
func ConnectedComponentsMR(c *Cluster, g *graph.Graph, seed uint64) (*unionfind.UF, Stats) {
	n := g.N()
	reps := log2ceil(n) + 3
	spec := sketch.NewIncidenceSpec(xrand.New(seed), n, reps, 12, 8)

	// Round 1: vertex-keyed edges -> per-vertex sketches.
	input := make([]KV, 0, 2*g.M())
	for _, e := range g.Edges() {
		input = append(input, KV{Key: uint64(e.U), Value: ccEdge{e.U, e.V}})
		input = append(input, KV{Key: uint64(e.V), Value: ccEdge{e.U, e.V}})
	}
	mapper := func(in KV, emit func(KV)) { emit(in) }
	reducer := func(key uint64, values []any, emit func(KV)) {
		v := int32(key)
		rows := make([]*sketch.L0, reps)
		for r := 0; r < reps; r++ {
			rows[r] = spec.SpecAt(r).NewL0()
		}
		for _, val := range values {
			e := val.(ccEdge)
			keyID := graph.KeyOf(e.u, e.v)
			sign := int64(1)
			lo := e.u
			if e.v < e.u {
				lo = e.v
			}
			if v != lo {
				sign = -1
			}
			sketch.UpdateRows(rows, keyID, sign)
		}
		emit(KV{Key: uint64(v), Value: ccSketch{vertex: v, rows: rows}})
	}
	sketches := c.Run(input, mapper, reducer)

	// Round 2: all sketches to a single machine.
	collectMapper := func(in KV, emit func(KV)) { emit(KV{Key: 1, Value: in.Value}) }
	var uf *unionfind.UF
	collectReducer := func(_ uint64, values []any, _ func(KV)) {
		rows := make([][]*sketch.L0, reps)
		for r := range rows {
			rows[r] = make([]*sketch.L0, n)
			for v := 0; v < n; v++ {
				rows[r][v] = spec.SpecAt(r).NewL0()
			}
		}
		for _, val := range values {
			cs := val.(ccSketch)
			for r := 0; r < reps; r++ {
				rows[r][cs.vertex] = cs.rows[r]
			}
		}
		// Boruvka over merged component sketches, one repetition per
		// round (identical to sketch.Bank.SpanningForest).
		uf = unionfind.New(n)
		for r := 0; r < reps; r++ {
			if uf.Components() == 1 {
				break
			}
			merged := false
			// Union in sorted-representative order: when two components'
			// samples conflict, which union wins depends on this order,
			// and the forest must match run to run (and match the
			// sketch.Bank.SpanningForest it mirrors).
			comps := uf.Sets()
			reps := make([]int, 0, len(comps))
			//lint:ordered key collection, sorted immediately below
			for rep := range comps {
				reps = append(reps, rep)
			}
			sort.Ints(reps)
			for _, rep := range reps {
				members := comps[rep]
				acc := rows[r][members[0]].Clone()
				for _, m := range members[1:] {
					acc.Merge(rows[r][m])
				}
				if key, _, ok := acc.Sample(); ok {
					u, v := graph.UnKey(key)
					if uf.Union(int(u), int(v)) {
						merged = true
					}
				}
			}
			if !merged {
				break
			}
		}
	}
	c.Run(sketches, collectMapper, collectReducer)
	return uf, c.Stats()
}

func log2ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}
