// Package mapreduce provides an in-process MapReduce simulator with the
// resource accounting the paper's model cares about: the number of
// rounds, the peak memory of any single machine (reducer input size),
// and the total shuffle volume. Mappers and reducers run on goroutines;
// the shuffle is deterministic (keys are routed by hash and processed in
// sorted order) so experiments are reproducible.
//
// Section 4.2 of the paper implements the sparsifier sketches in this
// model: round 1 builds per-vertex ℓ0 sketches from the edge list, round
// 2 collects the (small) sketches on one machine for post-processing.
// ConnectedComponentsMR reproduces that pipeline end to end.
package mapreduce

import (
	"sort"
	"sync"
)

// KV is one key-value pair.
type KV struct {
	Key   uint64
	Value any
}

// Mapper transforms one input pair into any number of output pairs.
type Mapper func(in KV, emit func(KV))

// Reducer receives all values for one key and emits output pairs.
type Reducer func(key uint64, values []any, emit func(KV))

// Stats accumulates resource usage across rounds.
type Stats struct {
	Rounds        int
	MaxMachineKVs int   // peak reducer input size (central-memory proxy)
	ShuffleKVs    int   // total pairs shuffled
	RoundMaxKVs   []int // per-round peak machine load
}

// Cluster is a simulated MapReduce cluster.
type Cluster struct {
	Machines int
	stats    Stats
}

// NewCluster creates a cluster with the given number of machines
// (minimum 1).
func NewCluster(machines int) *Cluster {
	if machines < 1 {
		machines = 1
	}
	return &Cluster{Machines: machines}
}

// Stats returns a copy of the accumulated statistics.
func (c *Cluster) Stats() Stats { return c.stats }

// Run executes one MapReduce round and returns the reducer output.
func (c *Cluster) Run(input []KV, mapper Mapper, reducer Reducer) []KV {
	c.stats.Rounds++
	// ---- map phase (parallel over machine-sized shards) ----
	shards := c.Machines
	perShard := (len(input) + shards - 1) / shards
	if perShard == 0 {
		perShard = 1
	}
	outs := make([][]KV, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo := s * perShard
		if lo >= len(input) {
			break
		}
		hi := lo + perShard
		if hi > len(input) {
			hi = len(input)
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			var local []KV
			for _, kv := range input[lo:hi] {
				mapper(kv, func(out KV) { local = append(local, out) })
			}
			outs[s] = local
		}(s, lo, hi)
	}
	wg.Wait()
	// ---- shuffle ----
	groups := make(map[uint64][]any)
	shuffled := 0
	for _, local := range outs {
		for _, kv := range local {
			groups[kv.Key] = append(groups[kv.Key], kv.Value)
			shuffled++
		}
	}
	c.stats.ShuffleKVs += shuffled
	// Machine load: keys are routed to machines by key % Machines.
	load := make([]int, c.Machines)
	//lint:ordered integer load tally, commutative across keys
	for k, vs := range groups {
		load[int(k%uint64(c.Machines))] += len(vs)
	}
	roundMax := 0
	for _, l := range load {
		if l > roundMax {
			roundMax = l
		}
	}
	c.stats.RoundMaxKVs = append(c.stats.RoundMaxKVs, roundMax)
	if roundMax > c.stats.MaxMachineKVs {
		c.stats.MaxMachineKVs = roundMax
	}
	// ---- reduce phase (parallel per machine, deterministic key order) ----
	keysByMachine := make([][]uint64, c.Machines)
	//lint:ordered key routing, per-machine lists sorted before reduce
	for k := range groups {
		m := int(k % uint64(c.Machines))
		keysByMachine[m] = append(keysByMachine[m], k)
	}
	outKVs := make([][]KV, c.Machines)
	for m := 0; m < c.Machines; m++ {
		sort.Slice(keysByMachine[m], func(i, j int) bool { return keysByMachine[m][i] < keysByMachine[m][j] })
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			var local []KV
			for _, k := range keysByMachine[m] {
				reducer(k, groups[k], func(out KV) { local = append(local, out) })
			}
			outKVs[m] = local
		}(m)
	}
	wg.Wait()
	var result []KV
	for m := 0; m < c.Machines; m++ {
		result = append(result, outKVs[m]...)
	}
	return result
}
