package mapreduce

import (
	"testing"

	"repro/internal/graph"
)

func TestWordCountStyleRound(t *testing.T) {
	c := NewCluster(4)
	input := []KV{
		{Key: 1, Value: 1}, {Key: 2, Value: 1}, {Key: 1, Value: 1},
		{Key: 3, Value: 1}, {Key: 2, Value: 1}, {Key: 1, Value: 1},
	}
	out := c.Run(input,
		func(in KV, emit func(KV)) { emit(in) },
		func(key uint64, values []any, emit func(KV)) {
			emit(KV{Key: key, Value: len(values)})
		})
	counts := map[uint64]int{}
	for _, kv := range out {
		counts[kv.Key] = kv.Value.(int)
	}
	if counts[1] != 3 || counts[2] != 2 || counts[3] != 1 {
		t.Fatalf("counts %v", counts)
	}
	st := c.Stats()
	if st.Rounds != 1 || st.ShuffleKVs != 6 {
		t.Fatalf("stats %+v", st)
	}
	if st.MaxMachineKVs < 3 {
		t.Fatalf("max machine KVs %d", st.MaxMachineKVs)
	}
}

func TestMultiRoundAccounting(t *testing.T) {
	c := NewCluster(2)
	id := func(in KV, emit func(KV)) { emit(in) }
	first := func(key uint64, values []any, emit func(KV)) { emit(KV{Key: key, Value: values[0]}) }
	input := []KV{{Key: 7, Value: "x"}}
	out := c.Run(input, id, first)
	out = c.Run(out, id, first)
	if c.Stats().Rounds != 2 {
		t.Fatalf("rounds %d", c.Stats().Rounds)
	}
	if len(out) != 1 || out[0].Key != 7 {
		t.Fatalf("pipeline broken: %v", out)
	}
	if len(c.Stats().RoundMaxKVs) != 2 {
		t.Fatalf("per-round stats missing")
	}
}

func TestDeterministicOutputOrderPerKey(t *testing.T) {
	// Values within a key keep mapper-shard order only within a shard;
	// across runs with one machine the full order is deterministic.
	c1 := NewCluster(1)
	c2 := NewCluster(1)
	input := []KV{{Key: 5, Value: 1}, {Key: 5, Value: 2}, {Key: 5, Value: 3}}
	red := func(key uint64, values []any, emit func(KV)) {
		s := 0
		for i, v := range values {
			s += v.(int) * (i + 1)
		}
		emit(KV{Key: key, Value: s})
	}
	id := func(in KV, emit func(KV)) { emit(in) }
	a := c1.Run(input, id, red)
	b := c2.Run(input, id, red)
	if a[0].Value.(int) != b[0].Value.(int) {
		t.Fatal("nondeterministic reduce input order on single machine")
	}
}

func TestConnectedComponentsMR(t *testing.T) {
	g := graph.GNM(50, 120, graph.WeightConfig{}, 91)
	_, trueComps := g.ConnectedComponents()
	c := NewCluster(8)
	uf, stats := ConnectedComponentsMR(c, g, 17)
	if uf.Components() != trueComps {
		t.Fatalf("MR components %d, true %d", uf.Components(), trueComps)
	}
	if stats.Rounds != 2 {
		t.Fatalf("rounds %d, want 2 (Section 4.2: sketches in one round, collect in one)", stats.Rounds)
	}
}

func TestConnectedComponentsMRDisconnected(t *testing.T) {
	g := graph.New(12)
	for i := 0; i < 4; i++ {
		a := 3 * i
		g.MustAddEdge(a, a+1, 1)
		g.MustAddEdge(a+1, a+2, 1)
	}
	c := NewCluster(3)
	uf, _ := ConnectedComponentsMR(c, g, 23)
	if uf.Components() != 4 {
		t.Fatalf("components %d, want 4", uf.Components())
	}
}

func TestMRSketchMemorySublinear(t *testing.T) {
	// Round 2's single machine holds n sketches, not m edges: for a
	// dense graph the peak per-machine load of round 2 must be far below
	// the edge count.
	g := graph.GNP(120, 0.5, graph.WeightConfig{}, 29)
	c := NewCluster(16)
	_, stats := ConnectedComponentsMR(c, g, 31)
	if len(stats.RoundMaxKVs) != 2 {
		t.Fatalf("rounds %d", len(stats.RoundMaxKVs))
	}
	if stats.RoundMaxKVs[1] > g.N() {
		t.Fatalf("round-2 machine holds %d values for n=%d", stats.RoundMaxKVs[1], g.N())
	}
}
