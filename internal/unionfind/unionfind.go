// Package unionfind implements a disjoint-set forest with union by rank
// and path halving. It is the workhorse of the spanning-forest layers in
// the streaming sparsifier (Algorithm 6 of Ahn–Guha) and of connectivity
// checks in tests.
package unionfind

// UF is a disjoint-set forest over elements 0..n-1.
type UF struct {
	parent []int32
	rank   []int8
	comps  int
}

// New returns a union-find structure with n singleton sets.
func New(n int) *UF {
	u := &UF{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		comps:  n,
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Len returns the number of elements.
func (u *UF) Len() int { return len(u.parent) }

// Components returns the current number of disjoint sets.
func (u *UF) Components() int { return u.comps }

// Find returns the canonical representative of x's set.
func (u *UF) Find(x int) int {
	p := int32(x)
	for u.parent[p] != p {
		u.parent[p] = u.parent[u.parent[p]] // path halving
		p = u.parent[p]
	}
	return int(p)
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false if they were already in the same set).
func (u *UF) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = int32(rx)
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.comps--
	return true
}

// Same reports whether x and y are in the same set.
func (u *UF) Same(x, y int) bool { return u.Find(x) == u.Find(y) }

// Words returns the storage footprint in 64-bit words (4 bytes of
// parent plus 1 byte of rank per element, rounded up).
func (u *UF) Words() int { return (5*len(u.parent) + 7) / 8 }

// Reset restores the structure to n singleton sets without reallocating.
func (u *UF) Reset() {
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.rank[i] = 0
	}
	u.comps = len(u.parent)
}

// Sets returns the current partition as a map from representative to
// members. Intended for tests and small-instance verification.
func (u *UF) Sets() map[int][]int {
	out := make(map[int][]int)
	for i := range u.parent {
		r := u.Find(i)
		out[r] = append(out[r], i)
	}
	return out
}
