package unionfind

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestBasic(t *testing.T) {
	u := New(5)
	if u.Components() != 5 {
		t.Fatalf("expected 5 components, got %d", u.Components())
	}
	if !u.Union(0, 1) {
		t.Fatal("first union returned false")
	}
	if u.Union(0, 1) {
		t.Fatal("repeated union returned true")
	}
	if !u.Same(0, 1) {
		t.Fatal("0 and 1 should be joined")
	}
	if u.Same(0, 2) {
		t.Fatal("0 and 2 should be separate")
	}
	if u.Components() != 4 {
		t.Fatalf("expected 4 components, got %d", u.Components())
	}
}

func TestTransitivity(t *testing.T) {
	u := New(10)
	u.Union(1, 2)
	u.Union(2, 3)
	u.Union(7, 8)
	if !u.Same(1, 3) {
		t.Fatal("transitivity failed")
	}
	if u.Same(1, 7) {
		t.Fatal("disjoint sets reported same")
	}
}

func TestChainComponents(t *testing.T) {
	const n = 1000
	u := New(n)
	for i := 0; i+1 < n; i++ {
		u.Union(i, i+1)
	}
	if u.Components() != 1 {
		t.Fatalf("chain should form one component, got %d", u.Components())
	}
	for i := 0; i < n; i++ {
		if !u.Same(0, i) {
			t.Fatalf("element %d not connected", i)
		}
	}
}

func TestReset(t *testing.T) {
	u := New(6)
	u.Union(0, 1)
	u.Union(2, 3)
	u.Reset()
	if u.Components() != 6 {
		t.Fatalf("reset did not restore components: %d", u.Components())
	}
	if u.Same(0, 1) {
		t.Fatal("reset did not split sets")
	}
}

func TestSetsPartition(t *testing.T) {
	u := New(7)
	u.Union(0, 1)
	u.Union(1, 2)
	u.Union(4, 5)
	sets := u.Sets()
	total := 0
	for _, members := range sets {
		total += len(members)
	}
	if total != 7 {
		t.Fatalf("partition covers %d elements, want 7", total)
	}
	if len(sets) != u.Components() {
		t.Fatalf("Sets() has %d groups, Components()=%d", len(sets), u.Components())
	}
}

// Property: components = n - (number of successful unions), regardless of
// the union sequence.
func TestComponentInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(200)
		u := New(n)
		merges := 0
		for i := 0; i < 3*n; i++ {
			if u.Union(r.Intn(n), r.Intn(n)) {
				merges++
			}
		}
		return u.Components() == n-merges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Find is idempotent and consistent with Same.
func TestFindConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(100)
		u := New(n)
		for i := 0; i < n; i++ {
			u.Union(r.Intn(n), r.Intn(n))
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if (u.Find(i) == u.Find(j)) != u.Same(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Cross-check against a naive quadratic connectivity oracle.
func TestAgainstNaive(t *testing.T) {
	r := xrand.New(99)
	const n = 60
	u := New(n)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	reach := func(a, b int) bool {
		seen := make([]bool, n)
		stack := []int{a}
		seen[a] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v == b {
				return true
			}
			for w := 0; w < n; w++ {
				if adj[v][w] && !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		return false
	}
	for step := 0; step < 150; step++ {
		a, b := r.Intn(n), r.Intn(n)
		u.Union(a, b)
		adj[a][b], adj[b][a] = true, true
		x, y := r.Intn(n), r.Intn(n)
		if u.Same(x, y) != reach(x, y) {
			t.Fatalf("step %d: Same(%d,%d)=%v, naive=%v", step, x, y, u.Same(x, y), reach(x, y))
		}
	}
}

func BenchmarkUnionFind(b *testing.B) {
	r := xrand.New(1)
	const n = 1 << 16
	pairs := make([][2]int, 1<<18)
	for i := range pairs {
		pairs[i] = [2]int{r.Intn(n), r.Intn(n)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := New(n)
		for _, p := range pairs {
			u.Union(p[0], p[1])
		}
	}
}
