package algos

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/stream"
)

// hkAlg is the exact Hopcroft–Karp baseline on the engine driver:
// bipartite unit-capacity inputs only, one driver round per BFS+DFS
// phase, space = full materialization of the instance, honestly metered
// against the accountant. It is the "unlimited resources" corner of the
// cross-algorithm comparison: exact cardinality for the price of holding
// every edge centrally.
type hkAlg struct {
	g    *graph.Graph
	h    *matching.HKState
	done bool
}

// Init validates the model's preconditions (unit capacities, bipartite),
// materializes the stream in one metered pass, and 2-colors it.
func (a *hkAlg) Init(_ context.Context, run *engine.Run, src stream.Source) error {
	for v := 0; v < src.N(); v++ {
		if src.B(v) != 1 {
			return fmt.Errorf("%w: hopcroft-karp requires unit capacities (vertex %d has b=%d)",
				engine.ErrUnsupported, v, src.B(v))
		}
	}
	g := materialize(run, src)
	h, ok := matching.NewHopcroftKarp(g)
	if !ok {
		return fmt.Errorf("%w: hopcroft-karp requires a bipartite graph", engine.ErrUnsupported)
	}
	a.g = g
	a.h = h
	return nil
}

// Reset drops the per-run graph and phase state for session reuse; the
// exact baseline's state is the materialized instance, rebuilt per run.
func (a *hkAlg) Reset(engine.Params) {
	a.g = nil
	a.h = nil
	a.done = false
}

// Round runs one Hopcroft–Karp phase; the phase that finds no augmenting
// path proves the matching maximum and ends the loop (it still counts —
// it did a full BFS over the adjacency).
func (a *hkAlg) Round(_ context.Context, run *engine.Run) (bool, error) {
	if err := run.BeginRound(); err != nil {
		return false, err
	}
	found := a.h.Phase()
	if err := run.Check(); err != nil {
		return false, err
	}
	if !found {
		a.done = true
		return true, nil
	}
	return false, nil
}

// Finish emits the current matching — after round k it is a maximal set
// of shortest augmenting paths' worth of progress, feasible at every
// point, so budget trips return a valid partial matching.
func (a *hkAlg) Finish(_ *engine.Run) (*matching.Matching, engine.Extras) {
	if a.h == nil {
		return nil, engine.Extras{}
	}
	m := a.h.Matching()
	return m, engine.Extras{Weight: m.Weight(a.g), EarlyStopped: a.done}
}

func init() {
	engine.Register(engine.Info{
		Name:      "hopcroft-karp",
		Model:     "offline (exact baseline)",
		Guarantee: "maximum cardinality, bipartite unit capacities",
		Resources: "1 pass, O(sqrt(n)) phases, full graph in memory",
	}, func(engine.Params) (engine.Algorithm, error) {
		return &hkAlg{}, nil
	})
}
