package algos

import (
	"context"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/semistream"
	"repro/internal/stream"
)

// defaultAugmentRounds is how many length-3 augmentation rounds the
// greedy-augment algorithm runs when Params.MaxRounds is 0: enough for
// the 2/3-cardinality convergence to flatten on every test family while
// staying a few-pass algorithm.
const defaultAugmentRounds = 8

// greedyAlg is the semi-streaming greedy baseline on the engine driver:
// round 1 is the classic one-pass maximal matching (1/2-approximation
// for cardinality), and with augmentRounds > 0 each further round is one
// semistream.AugmentRound — two metered passes resolving vertex-disjoint
// length-3 augmenting paths, converging toward 2/3 of maximum
// cardinality. State is the semi-streaming budget: O(n) words, charged
// to the accountant.
type greedyAlg struct {
	augmentRounds int // 0 = plain one-pass greedy
	src           stream.Source
	n             int
	st            *semistream.GreedyState
	cur           map[int]bool // matched edge-index set once augmenting
	bits          []bool       // session-retained matched-vertex buffer
	weight        float64
	earlyStopped  bool
}

// Init charges the O(n) matched-vertex state; the stream is read only
// inside rounds.
func (a *greedyAlg) Init(_ context.Context, run *engine.Run, src stream.Source) error {
	a.src = src
	a.n = src.N()
	run.Acct.Alloc(a.n)
	return nil
}

// Reset clears the per-run state for session reuse. The matched-vertex
// bit buffer is retained (it is scratch), and so is augmentRounds (the
// factory resolved it from the same Params the session hands back);
// the greedy state, its edge list and the augmenting edge-index set
// are not — the previous run's Outcome owns the matching, and a
// non-nil cur doubles as the "already augmenting" signal Finish keys
// on.
func (a *greedyAlg) Reset(engine.Params) {
	a.src = nil
	a.n = 0
	a.st = nil
	a.cur = nil
	a.weight = 0
	a.earlyStopped = false
}

// Round runs the greedy pass first, then one augmentation round per
// driver round until no augmenting path is found or the cap is reached.
func (a *greedyAlg) Round(_ context.Context, run *engine.Run) (bool, error) {
	round := run.Rounds()
	if round == 0 {
		if err := run.BeginRound(); err != nil {
			return false, err
		}
		a.st, a.bits = semistream.NewGreedyStateIn(a.n, a.bits)
		stream.ForEachBlocks(a.src, func(base int, edges []graph.Edge) bool {
			for i := range edges {
				a.st.Offer(base+i, edges[i])
			}
			return true
		})
		a.weight = a.st.Weight()
		if err := run.Check(); err != nil {
			return false, err
		}
		if a.augmentRounds == 0 {
			a.earlyStopped = true
			return true, nil
		}
		a.cur = make(map[int]bool, len(a.st.Matching().EdgeIdx))
		for _, idx := range a.st.Matching().EdgeIdx {
			a.cur[idx] = true
		}
		return false, nil
	}
	if round > a.augmentRounds {
		return true, nil
	}
	if err := run.BeginRound(); err != nil {
		return false, err
	}
	// The round's transient index structures (matchAt, freeTaken) are
	// O(n) central words on top of the live matching state.
	run.Acct.Alloc(2 * a.n)
	augmented, delta := semistream.AugmentRound(a.src, a.cur)
	run.Acct.Free(2 * a.n)
	a.weight += delta
	if err := run.Check(); err != nil {
		return false, err
	}
	if !augmented {
		a.earlyStopped = true
		return true, nil
	}
	return false, nil
}

// Finish reports the current matched set — feasible at every point, so
// budget trips and cancellations hand back whatever the rounds so far
// built.
func (a *greedyAlg) Finish(_ *engine.Run) (*matching.Matching, engine.Extras) {
	var m *matching.Matching
	switch {
	case a.cur != nil:
		m = semistream.SortedMatching(a.cur)
	case a.st != nil:
		m = a.st.Matching()
	}
	return m, engine.Extras{Weight: a.weight, EarlyStopped: a.earlyStopped}
}

func init() {
	engine.Register(engine.Info{
		Name:      "greedy",
		Model:     "semi-streaming",
		Guarantee: "maximal (1/2 of maximum cardinality)",
		Resources: "1 pass, 1 round, O(n) words",
	}, func(engine.Params) (engine.Algorithm, error) {
		return &greedyAlg{}, nil
	})
	engine.Register(engine.Info{
		Name:      "greedy-augment",
		Model:     "semi-streaming",
		Guarantee: "toward 2/3 of maximum cardinality (length-3 augmentation)",
		Resources: "1+2·rounds passes, O(n) words",
	}, func(p engine.Params) (engine.Algorithm, error) {
		rounds := p.MaxRounds
		if rounds == 0 {
			rounds = defaultAugmentRounds
		}
		return &greedyAlg{augmentRounds: rounds}, nil
	})
}
