// Package algos ports the module's non-dual-primal matching substrates
// onto the engine.Algorithm contract and registers them: the
// semi-streaming one-pass greedy (with and without short-augmentation
// passes), the congested-clique maximal matching protocol, and the exact
// Hopcroft–Karp bipartite baseline. Each adapter pays for its matching
// in the paper's currency — metered passes, driver rounds, accountant
// words — so every algorithm answers a solve with comparable resource
// stats, honors budgets with best-so-far semantics, and aborts within a
// pass on cancellation, exactly like the dual-primal solver. The
// dual-primal registration itself lives in internal/core (the solver is
// the engine's first Algorithm); this package holds everything ported
// after it.
package algos

import (
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/stream"
)

// graphWords estimates the central storage of a fully materialized
// graph: one edge record plus two adjacency entries per edge, one
// capacity word per vertex. Algorithms that must hold the whole input
// (the clique coordinator's snapshot, the exact baseline) charge this to
// the accountant so their space axis honestly dwarfs the streaming
// algorithms' — that gap is the paper's point, not an accounting leak.
func graphWords(g *graph.Graph) int { return 4*g.M() + g.N() }

// materialize reads the whole source into memory as one metered pass
// and charges the materialization to the run's accountant.
func materialize(run *engine.Run, src stream.Source) *graph.Graph {
	g := stream.Materialize(src)
	run.Acct.Alloc(graphWords(g))
	return g
}
