package algos

import (
	"context"

	"repro/internal/congest"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/stream"
)

// cliqueAlg runs the congested-clique maximal b-matching protocol under
// the engine driver: one driver round per simulated clique round, so a
// rounds budget bounds the protocol's synchronous rounds directly and a
// trip hands back the (feasible) pairs matched so far. The clique's
// per-node adjacency snapshots require the whole graph, so Init
// materializes the source in one metered pass and charges the
// accountant — the space cost of the model, stated honestly.
type cliqueAlg struct {
	p         float64
	seed      uint64
	maxRounds int

	g     *graph.Graph
	proto *congest.Protocol
}

// Init materializes the instance and prepares the protocol.
func (a *cliqueAlg) Init(_ context.Context, run *engine.Run, src stream.Source) error {
	a.g = materialize(run, src)
	a.proto = congest.NewProtocol(a.g, a.p, a.seed, a.maxRounds)
	return nil
}

// Reset drops the per-run snapshot and protocol for session reuse. The
// clique model's state is the materialized instance itself, which a new
// run must rebuild from its own source, so nothing is retained beyond
// the configuration.
func (a *cliqueAlg) Reset(p engine.Params) {
	a.p, a.seed, a.maxRounds = p.P, p.Seed, p.MaxRounds
	a.g = nil
	a.proto = nil
}

// Round steps the protocol one simulated clique round.
func (a *cliqueAlg) Round(_ context.Context, run *engine.Run) (bool, error) {
	if err := run.BeginRound(); err != nil {
		return false, err
	}
	done := a.proto.Step()
	if err := run.Check(); err != nil {
		return false, err
	}
	return done, nil
}

// Finish maps the matched (u, v) pairs back to edge indices of the
// stream (first index per endpoint pair; multiplicities preserved).
func (a *cliqueAlg) Finish(_ *engine.Run) (*matching.Matching, engine.Extras) {
	if a.proto == nil {
		return nil, engine.Extras{}
	}
	res := a.proto.Result()
	idxOf := make(map[uint64]int, a.g.M())
	weightOf := make(map[uint64]float64, a.g.M())
	for i, e := range a.g.Edges() {
		k := e.Key()
		if _, ok := idxOf[k]; !ok {
			idxOf[k] = i
			weightOf[k] = e.W
		}
	}
	m := &matching.Matching{Mult: []int{}}
	weight := 0.0
	for i, pr := range res.Pairs {
		k := graph.KeyOf(pr[0], pr[1])
		m.EdgeIdx = append(m.EdgeIdx, idxOf[k])
		m.Mult = append(m.Mult, res.Mults[i])
		weight += weightOf[k] * float64(res.Mults[i])
	}
	// EarlyStopped means genuine quiescence (every node halted before
	// the cap) — a run cut off by its own round cap is not "converged".
	return m, engine.Extras{Weight: weight, EarlyStopped: a.proto.Quiesced()}
}

func init() {
	engine.Register(engine.Info{
		Name:      "clique-maximal",
		Model:     "congested clique (simulated)",
		Guarantee: "maximal b-matching (1/2 of maximum cardinality)",
		Resources: "O(p) clique rounds, O(n^(1/p)) words/message, full graph at the nodes",
	}, func(p engine.Params) (engine.Algorithm, error) {
		return &cliqueAlg{p: p.P, seed: p.Seed, maxRounds: p.MaxRounds}, nil
	})
}
