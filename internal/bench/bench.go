// Package bench implements the experiment harness: one runner per
// experiment in the index of DESIGN.md section 4 (E1–E19, EA, ES), each
// regenerating a quantitative claim or figure of the paper as a
// printable table. The cmd/matchbench binary and the repository-root
// testing.B benchmarks are thin wrappers around these runners.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/parallel"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Print renders the table.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.4g", v) }

// fr formats a ratio.
func fr(v float64) string { return fmt.Sprintf("%.3f", v) }

// d formats an int.
func d(v int) string { return fmt.Sprintf("%d", v) }

// Config controls experiment scale.
type Config struct {
	// Quick shrinks sizes for CI / testing.B use.
	Quick bool
	// Seed is the base seed.
	Seed uint64
	// Workers is passed to every solver/substrate invocation that
	// supports the sharded pipeline (0 = GOMAXPROCS, 1 = sequential).
	// Results are bit-identical across worker counts; tables record the
	// setting so rows stay attributable.
	Workers int
}

// noteWorkers appends the standard workers attribution to a table whose
// rows were produced through the parallel pipeline, recording both the
// requested setting and the count it resolved to on this machine.
func noteWorkers(t *Table, cfg Config) {
	resolved := parallel.Workers(cfg.Workers)
	if resolved == 1 {
		t.Note("workers=%d resolved to 1 (sequential)", cfg.Workers)
		return
	}
	t.Note("workers=%d resolved to %d (results are bit-identical across worker counts)", cfg.Workers, resolved)
}

// IDs returns every experiment id in canonical run order.
func IDs() []string {
	return []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9",
		"e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18", "e19", "ea", "es"}
}

// All runs every experiment and returns the tables in order.
func All(cfg Config) []Table {
	out := make([]Table, 0, len(IDs()))
	for _, id := range IDs() {
		fn, _ := ByID(id)
		out = append(out, fn(cfg))
	}
	return out
}

// ByID returns the experiment runner for an id like "e7".
func ByID(id string) (func(Config) Table, bool) {
	m := map[string]func(Config) Table{
		"e1": E1Approximation, "e2": E2RoundsSpace, "e3": E3Baselines,
		"e4": E4Adaptivity, "e5": E5TriangleGap, "e6": E6Width,
		"e7": E7Sparsifier, "e8": E8Filtering, "e9": E9MapReduce,
		"e10": E10BMatching, "e11": E11Congest, "e12": E12Relaxations,
		"e13": E13Scaling, "e14": E14Workers, "e15": E15Backends,
		"e16": E16Algorithms, "e17": E17Throughput, "e18": E18Serving,
		"e19": E19FileCodecs,
		"ea":  EAblations, "es": ESemiStream,
	}
	fn, ok := m[strings.ToLower(id)]
	return fn, ok
}

// timeIt measures the wall time of fn.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
