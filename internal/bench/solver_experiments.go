package bench

import (
	"math"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/stream"
	"repro/match"
)

// E1Approximation — Theorem 15's headline: (1-O(ε)) approximation for
// weighted nonbipartite matching. Ratio against the exact blossom
// optimum across ε and instance families.
func E1Approximation(cfg Config) Table {
	t := Table{
		ID:      "E1",
		Title:   "(1-eps)-approximation vs exact optimum (Theorem 15)",
		Columns: []string{"family", "n", "m", "eps", "ratio", "1-eps", "rounds", "earlystop"},
	}
	type inst struct {
		name string
		g    *graph.Graph
	}
	sizes := []int{64, 128}
	epss := []float64{0.25, 0.125}
	if cfg.Quick {
		sizes = []int{48}
		epss = []float64{0.25}
	}
	for _, n := range sizes {
		m := 8 * n
		fams := []inst{
			{"uniform-w", graph.GNM(n, m, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 50}, cfg.Seed+uint64(n))},
			{"powerlaw", graph.PowerLaw(n, 12, 2.5, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 50}, cfg.Seed+uint64(n)+1)},
			{"triangles", graph.TriangleChain(n / 3)},
		}
		for _, fam := range fams {
			_, opt := matching.MaxWeightMatchingFloat(fam.g, false)
			if opt == 0 {
				continue
			}
			for _, eps := range epss {
				res, err := solveGraph(fam.g, eps, 2, cfg.Seed+7, cfg.Workers)
				if err != nil {
					t.Note("%s n=%d eps=%g: %v", fam.name, n, eps, err)
					continue
				}
				t.AddRow(fam.name, d(fam.g.N()), d(fam.g.M()), f(eps),
					fr(res.Weight/opt), fr(1-eps), d(res.Stats.SamplingRounds),
					yn(res.Stats.EarlyStopped))
			}
		}
	}
	t.Note("expected shape: ratio >= 1-eps (within noise), improving as eps shrinks")
	noteWorkers(&t, cfg)
	return t
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// E2RoundsSpace — Theorem 15: O(p/ε) sampling rounds and O(n^(1+1/p))
// central space.
func E2RoundsSpace(cfg Config) Table {
	t := Table{
		ID:      "E2",
		Title:   "rounds O(p/eps) and space O(n^(1+1/p)) (Theorem 15)",
		Columns: []string{"n", "m", "p", "eps", "rounds", "primal-conv", "p/eps", "peak-space", "n^(1+1/p)", "space-ratio"},
	}
	sizes := []int{64, 128, 256}
	ps := []float64{2, 3}
	if cfg.Quick {
		sizes = []int{64}
		ps = []float64{2}
	}
	eps := 0.25
	for _, n := range sizes {
		m := 10 * n
		g := graph.GNM(n, m, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 20}, cfg.Seed+uint64(n))
		for _, p := range ps {
			res, err := solveGraph(g, eps, p, cfg.Seed+11, cfg.Workers)
			if err != nil {
				t.Note("n=%d p=%g: %v", n, p, err)
				continue
			}
			ref := math.Pow(float64(n), 1+1/p)
			t.AddRow(d(n), d(m), f(p), f(eps),
				d(res.Stats.InitRounds+res.Stats.SamplingRounds),
				d(res.Stats.RoundOfBestMatching), f(p/eps),
				d(res.Stats.PeakSampleEdges), f(ref),
				fr(float64(res.Stats.PeakSampleEdges)/ref))
		}
	}
	t.Note("expected shape: rounds flat in n and ~linear in p/eps; space-ratio bounded by a constant (polylog factors)")
	noteWorkers(&t, cfg)
	return t
}

// E3Baselines — dual-primal (1-ε) vs the Lattanzi et al. [25] filtering
// O(1)-approximation and plain greedy.
func E3Baselines(cfg Config) Table {
	t := Table{
		ID:      "E3",
		Title:   "dual-primal vs filtering [25] and greedy baselines",
		Columns: []string{"n", "m", "algo", "ratio", "rounds"},
	}
	sizes := []int{96, 192}
	if cfg.Quick {
		sizes = []int{64}
	}
	for _, n := range sizes {
		m := 10 * n
		g := graph.GNM(n, m, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 60}, cfg.Seed+uint64(n)+3)
		_, opt := matching.MaxWeightMatchingFloat(g, false)
		if opt == 0 {
			continue
		}
		gr := matching.Greedy(g)
		t.AddRow(d(n), d(m), "greedy-1/2", fr(gr.Weight(g)/opt), "1")
		s := stream.NewEdgeStream(g)
		fm, fs := matching.WeightedFilter(s, 2, cfg.Seed+13, nil)
		t.AddRow(d(n), d(m), "filtering[25]", fr(fm.Weight(g)/opt), d(fs.Rounds))
		res, err := solveGraph(g, 0.25, 2, cfg.Seed+17, cfg.Workers)
		if err == nil {
			t.AddRow(d(n), d(m), "dual-primal(eps=1/4)", fr(res.Weight/opt),
				d(res.Stats.InitRounds+res.Stats.SamplingRounds))
		}
		if !cfg.Quick {
			res8, err := solveGraph(g, 0.125, 2, cfg.Seed+17, cfg.Workers)
			if err == nil {
				t.AddRow(d(n), d(m), "dual-primal(eps=1/8)", fr(res8.Weight/opt),
					d(res8.Stats.InitRounds+res8.Stats.SamplingRounds))
			}
		}
	}
	t.Note("expected shape: greedy ~0.5-0.9, filtering constant-factor, dual-primal tracks 1-eps using more rounds")
	noteWorkers(&t, cfg)
	return t
}

// E4Adaptivity — Figure 1: one round of sampling supports many
// sequential oracle uses ("access to data" vs "number of iterations").
func E4Adaptivity(cfg Config) Table {
	t := Table{
		ID:      "E4",
		Title:   "adaptivity split: sampling rounds vs sequential uses (Figure 1)",
		Columns: []string{"n", "eps", "sampling-rounds", "oracle-uses", "uses/round", "micro-calls", "pack-iters"},
	}
	n := 128
	if cfg.Quick {
		n = 64
	}
	g := graph.GNM(n, 8*n, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 25}, cfg.Seed+29)
	for _, eps := range []float64{0.25, 0.125} {
		if cfg.Quick && eps != 0.25 {
			continue
		}
		res, err := solveGraph(g, eps, 2, cfg.Seed+31, cfg.Workers)
		if err != nil {
			t.Note("eps=%g: %v", eps, err)
			continue
		}
		uses := res.Stats.OracleUses
		rounds := res.Stats.SamplingRounds
		ratio := 0.0
		if rounds > 0 {
			ratio = float64(uses) / float64(rounds)
		}
		t.AddRow(d(n), f(eps), d(rounds), d(uses), fr(ratio),
			d(res.Stats.MicroCalls), d(res.Stats.PackIters))
	}
	t.Note("expected shape: uses/round ~ (1/eps)ln(gamma) >> 1 — iterations exceed data accesses")
	noteWorkers(&t, cfg)
	return t
}

// E13Scaling — running time O(m poly(1/eps, log n)): near-linear in m.
func E13Scaling(cfg Config) Table {
	t := Table{
		ID:      "E13",
		Title:   "near-linear scaling in m (Theorem 15 running time)",
		Columns: []string{"n", "m", "ns/edge", "slope-vs-prev"},
	}
	n := 128
	ms := []int{1000, 2000, 4000, 8000}
	if cfg.Quick {
		n = 64
		ms = []int{500, 1000}
	}
	prevPerEdge := 0.0
	prevM := 0
	for _, m := range ms {
		g := graph.GNM(n, m, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 20}, cfg.Seed+uint64(m))
		elapsed := timeIt(func() {
			_, _ = solveGraph(g, 0.25, 2, cfg.Seed+37, cfg.Workers)
		})
		perEdge := float64(elapsed.Nanoseconds()) / float64(m)
		slope := ""
		if prevM > 0 {
			// Effective exponent between consecutive sizes.
			slope = fr(math.Log(perEdge*float64(m)/(prevPerEdge*float64(prevM))) / math.Log(float64(m)/float64(prevM)))
		}
		t.AddRow(d(n), d(m), f(perEdge), slope)
		prevPerEdge, prevM = perEdge, m
	}
	t.Note("expected shape: slope <= 1 (the bound is an upper bound; at this scale per-round\n        n-dependent work dominates, so per-edge cost falls with m)")
	noteWorkers(&t, cfg)
	return t
}

// solveB runs the dual-primal solver with defaults for E10.
func solveB(g *graph.Graph, seed uint64, workers int) (*match.Result, error) {
	return solveGraph(g, 0.25, 2, seed, workers)
}
