package bench

import (
	"context"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/match"
)

// solveGraph runs the public match solver over an in-memory graph: the
// harness consumes the same facade production callers do, and the engine
// is reached only through it.
func solveGraph(g *graph.Graph, eps, p float64, seed uint64, workers int, extra ...match.Option) (*match.Result, error) {
	opts := append([]match.Option{
		match.WithEps(eps),
		match.WithSpaceExponent(p),
		match.WithSeed(seed),
		match.WithWorkers(workers),
	}, extra...)
	s, err := match.New(opts...)
	if err != nil {
		return nil, err
	}
	return s.Solve(context.Background(), stream.NewEdgeStream(g))
}
