package bench

import (
	"context"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/match"
)

// solveGraph runs the public match solver over an in-memory graph
// through the one-shot match.Solve helper — the same graph→source→solve
// glue the examples use, so the harness consumes the facade exactly as
// production callers do and the engine is reached only through it.
// Extra options (an algorithm selection, a budget, a profile) append
// after the shared base.
func solveGraph(g *graph.Graph, eps, p float64, seed uint64, workers int, extra ...match.Option) (*match.Result, error) {
	opts := append([]match.Option{
		match.WithEps(eps),
		match.WithSpaceExponent(p),
		match.WithSeed(seed),
		match.WithWorkers(workers),
	}, extra...)
	return match.Solve(context.Background(), stream.NewEdgeStream(g), opts...)
}
