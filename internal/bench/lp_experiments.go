package bench

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/oddset"
	"repro/internal/xrand"
)

// E5TriangleGap — the Section 1 figure: bipartite relaxation value 1+5ε
// vs integral optimum 1 on the triangle gadget; the odd-set constraint
// recovers integrality.
func E5TriangleGap(cfg Config) Table {
	t := Table{
		ID:      "E5",
		Title:   "triangle gadget: bipartite LP gap 1+5eps (Section 1 figure)",
		Columns: []string{"eps", "integral-LP1", "bipartite-LP", "predicted", "gap-err"},
	}
	epss := []float64{0.02, 0.04, 0.06, 0.08, 0.1}
	if cfg.Quick {
		epss = []float64{0.05, 0.1}
	}
	for _, eps := range epss {
		g := graph.TriangleGap(eps)
		exact, st1 := lp.MatchingLP1(g)
		frac, st2 := lp.BipartiteRelaxation(g)
		if st1 != lp.Optimal || st2 != lp.Optimal {
			t.Note("eps=%g: LP status %v/%v", eps, st1, st2)
			continue
		}
		pred := 1 + 5*eps
		t.AddRow(f(eps), fr(exact), fr(frac), fr(pred), f(math.Abs(frac-pred)))
	}
	t.Note("expected shape: bipartite-LP = 1+5eps exactly, integral-LP1 = 1")
	return t
}

// E6Width — width of the standard dual LP2 grows with β* (≈ n/2) while
// the penalty dual LP4's width is bounded by the absolute constant 6.
func E6Width(cfg Config) Table {
	t := Table{
		ID:      "E6",
		Title:   "width: LP2 grows with n, LP4 <= 6 (penalty relaxation)",
		Columns: []string{"n", "beta*", "width-LP2", "width-LP4", "LP4<=6"},
	}
	sizes := []int{6, 10, 14, 18}
	if cfg.Quick {
		sizes = []int{6, 10}
	}
	for _, n := range sizes {
		g := graph.GNM(n, n*(n-1)/2, graph.WeightConfig{Mode: graph.UnitWeights}, uint64(n))
		beta := float64(n / 2)
		w2 := lp.WidthLP2(g, beta, 3)
		w4 := lp.WidthLP4(g, 3)
		t.AddRow(d(n), f(beta), fr(w2), fr(w4), yn(w4 <= 6+1e-9))
	}
	t.Note("expected shape: width-LP2 = beta* (linear in n); width-LP4 constant <= 6")
	return t
}

// E12Relaxations — Theorem 22 (laminar optimal duals via uncrossing) and
// Theorem 23 (layered LP10 within (1+eps) of LP11).
func E12Relaxations(cfg Config) Table {
	t := Table{
		ID:      "E12",
		Title:   "relaxation structure: uncrossing (Thm 22) and LP10<=(1+eps)LP11 (Thm 23)",
		Columns: []string{"check", "instances", "pass", "max-dev"},
	}
	r := xrand.New(cfg.Seed + 101)
	// Uncrossing: random weighted families become laminar with objective
	// and coverage preserved.
	trials := 60
	if cfg.Quick {
		trials = 20
	}
	pass := 0
	maxDev := 0.0
	for trial := 0; trial < trials; trial++ {
		n := 6 + r.Intn(5)
		fam := &oddset.WeightedFamily{X: make([]float64, n)}
		for v := range fam.X {
			fam.X[v] = r.Float64()
		}
		for s := 0; s < 4; s++ {
			size := 3 + 2*r.Intn(2)
			if size > n {
				size = 3
			}
			perm := r.Perm(n)[:size]
			set := append([]int(nil), perm...)
			sort.Ints(set)
			fam.Sets = append(fam.Sets, set)
			fam.Z = append(fam.Z, 0.1+r.Float64())
		}
		before := fam.Objective()
		if fam.Uncross(2000) && oddset.IsLaminar(fam.ActiveSets()) {
			dev := math.Abs(fam.Objective() - before)
			if dev > maxDev {
				maxDev = dev
			}
			if dev < 1e-9 {
				pass++
			}
		}
	}
	t.AddRow("uncross-laminar", d(trials), d(pass), f(maxDev))
	// Theorem 23 on random discretized instances.
	epsilon := 1.0 / 16
	lpTrials := 6
	if cfg.Quick {
		lpTrials = 2
	}
	pass23 := 0
	maxRatio := 0.0
	for trial := 0; trial < lpTrials; trial++ {
		g := graph.GNM(4+trial%2, 5+trial, graph.WeightConfig{Mode: graph.PowersOf, Eps: epsilon, Levels: 5}, cfg.Seed+uint64(trial))
		bHat, st1 := lp.DiscretizedDualLP11(g)
		bTilde, st2 := lp.LayeredDualLP10(g, epsilon, g.N())
		if st1 != lp.Optimal || st2 != lp.Optimal || bHat <= 0 {
			continue
		}
		ratio := bTilde / bHat
		if ratio > maxRatio {
			maxRatio = ratio
		}
		if ratio >= 1-1e-9 && ratio <= 1+epsilon+1e-9 {
			pass23++
		}
	}
	t.AddRow("LP10-vs-LP11", d(lpTrials), d(pass23), fr(maxRatio))
	t.Note("expected shape: all uncrossings laminar at zero deviation; LP10/LP11 in [1, 1+eps]")
	return t
}
