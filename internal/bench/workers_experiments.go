package bench

import (
	"math"
	"reflect"
	"runtime"
	"time"

	"repro/internal/graph"
	"repro/internal/sketch"
	"repro/internal/sparsify"
	"repro/internal/xrand"
)

// E14Workers — the parallel sharded pipeline (DESIGN.md, "Parallel
// pipeline"): wall-clock scaling of the three sharded layers and the
// full solver as the worker count grows, with a bit-identity check of
// every parallel result against its Workers:1 baseline. This is the
// workers-scaling table of EXPERIMENTS.md.
func E14Workers(cfg Config) Table {
	t := Table{
		ID:      "E14",
		Title:   "parallel sharded pipeline: workers scaling (bit-identical results)",
		Columns: []string{"component", "n", "m", "workers", "ms", "speedup", "identical"},
	}
	workerSet := []int{1, 2, 4}
	if cfg.Quick {
		workerSet = []int{1, 2}
	}

	// Instance sizes: the full-scale run targets the largest seed
	// instances; quick mode keeps CI fast.
	genN, genM := 20000, 400000
	bankN, bankReps := 1200, 10
	spN := 480
	solveN, solveM := 192, 1920
	if cfg.Quick {
		genN, genM = 2000, 20000
		bankN, bankReps = 200, 6
		spN = 140
		solveN, solveM = 64, 512
	}

	// Best-of-5 wall time with a forced collection before each trial: a
	// single sample is too noisy to read a speedup from, and stray GC
	// cycles otherwise land on arbitrary configurations.
	trials := 5
	if cfg.Quick {
		trials = 3
	}
	timeBest := func(fn func()) time.Duration {
		best := time.Duration(math.MaxInt64)
		for trial := 0; trial < trials; trial++ {
			runtime.GC()
			if d := timeIt(fn); d < best {
				best = d
			}
		}
		return best
	}
	ms := func(d time.Duration) string { return fr(float64(d.Microseconds()) / 1000) }

	addRows := func(component string, n, m int, run func(workers int) any) {
		run(1) // warm-up: grow the heap before timing so the first
		// measured configuration doesn't pay the GC ramp alone
		var baseline any
		var baseMS time.Duration
		for _, w := range workerSet {
			var out any
			elapsed := timeBest(func() { out = run(w) })
			identical := "-"
			speedup := "1.000"
			switch {
			case out == nil:
				// The component errored: a nil-vs-nil DeepEqual must not
				// read as a passing bit-identity check.
				identical = "ERR"
				speedup = "-"
			case w == 1:
				baseline, baseMS = out, elapsed
			case baseline == nil:
				identical = "ERR"
				speedup = "-"
			default:
				if reflect.DeepEqual(baseline, out) {
					identical = "yes"
				} else {
					identical = "NO"
				}
				speedup = fr(float64(baseMS) / float64(elapsed))
			}
			t.AddRow(component, d(n), d(m), d(w), ms(elapsed), speedup, identical)
		}
	}

	// Layer 1: parallel synthetic generation (internal/graph).
	wc := graph.WeightConfig{Mode: graph.UniformWeights, WMax: 50}
	addRows("generate-gnm", genN, genM, func(w int) any {
		return graph.GNMParallel(genN, genM, wc, cfg.Seed+401, w).Edges()
	})

	// Layer 2: incidence-sketch bank construction (internal/sketch). The
	// builds draw their columns from one arena, recycling each trial's
	// bank before the next build — the allocation-flat steady state a
	// session reaches — while keeping two banks live: the current output
	// and the last workers=1 one, which addRows retains as the DeepEqual
	// baseline of the bit-identity column (releasing it would let the
	// next build mutate the memory under the comparison).
	bankEdges := graph.GNMParallel(bankN, 8*bankN, graph.WeightConfig{}, cfg.Seed+403, 0).Edges()
	spec := sketch.NewIncidenceSpec(xrand.New(cfg.Seed+405), bankN, bankReps, 12, 8)
	bankArena := sketch.NewArena()
	var bankBase, bankPrev *sketch.Bank
	addRows("sketch-bank", bankN, len(bankEdges), func(w int) any {
		if bankPrev != nil {
			bankPrev.ReleaseTo(bankArena)
			bankPrev = nil
		}
		if w == 1 && bankBase != nil {
			bankBase.ReleaseTo(bankArena)
			bankBase = nil
		}
		b := spec.BuildBankArena(bankEdges, w, bankArena)
		if w == 1 {
			bankBase = b
		} else {
			bankPrev = b
		}
		return b
	})

	// Layer 3: weighted sparsification across weight classes
	// (internal/sparsify). ExpWeights spans many powers-of-two classes,
	// the per-class fan-out's parallelism source.
	spG := graph.GNP(spN, 0.5, graph.WeightConfig{Mode: graph.ExpWeights, Scale: 2}, cfg.Seed+407)
	addRows("sparsify-weighted", spN, spG.M(), func(w int) any {
		return sparsify.Weighted(spG, sparsify.Config{Xi: 0.25, Seed: cfg.Seed + 409, Workers: w}).Items
	})

	// Full solver: every sampling round runs the sharded pipeline.
	solveG := graph.GNMParallel(solveN, solveM, wc, cfg.Seed+411, 0)
	solveErrNoted := false
	addRows("match-solve", solveN, solveM, func(w int) any {
		res, err := solveGraph(solveG, 0.25, 2, cfg.Seed+413, w)
		if err != nil {
			if !solveErrNoted {
				t.Note("match-solve: %v", err)
				solveErrNoted = true
			}
			return nil
		}
		return res
	})

	t.Note("expected shape: identical=yes everywhere; speedup > 1 at workers=4 on the sharded layers when GOMAXPROCS > 1")
	t.Note("speedup is best-of-%d wall time vs the workers=1 baseline on the same instance (warmed heap, GC between trials)", trials)
	t.Note("GOMAXPROCS=%d on this run — with a single scheduler thread speedups hover near 1 by construction", runtime.GOMAXPROCS(0))
	return t
}
