package bench

import (
	"context"
	"os"
	"reflect"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/match"
)

// E15Backends — the access-layer contract behind "access to data": the
// solver consumes a pluggable stream.Source, and the in-memory,
// file-backed, generator-backed and sharded backends must produce
// bit-identical Results on the same edge sequence. A final out-of-core
// row solves a larger file-backed instance and reports the measured
// central-storage peak against m — the edge set never becomes resident.
func E15Backends(cfg Config) Table {
	t := Table{
		ID:      "E15",
		Title:   "pluggable edge sources: backend equivalence and out-of-core peak",
		Columns: []string{"n", "m", "backend", "weight", "lambda", "rounds", "passes", "peak-words", "peak/m", "identical"},
	}
	spec := stream.GenSpec{N: 128, M: 1600,
		Weights: graph.WeightConfig{Mode: graph.UniformWeights, WMax: 40}, Seed: cfg.Seed + 501}
	if cfg.Quick {
		spec.N, spec.M = 64, 600
	}
	solver, err := match.New(match.WithEps(0.25), match.WithSpaceExponent(2),
		match.WithSeed(cfg.Seed+503), match.WithWorkers(cfg.Workers))
	if err != nil {
		t.Note("configure: %v", err)
		return t
	}

	gen, err := stream.NewGen(spec)
	if err != nil {
		t.Note("generator: %v", err)
		return t
	}
	g := stream.Materialize(gen)
	tmp, err := os.CreateTemp("", "e15-*.rbg")
	if err != nil {
		t.Note("temp file: %v", err)
		return t
	}
	tmpPath := tmp.Name()
	tmp.Close()
	defer os.Remove(tmpPath)
	if err := stream.WriteBinaryFile(tmpPath, stream.NewEdgeStream(g)); err != nil {
		t.Note("encode: %v", err)
		return t
	}
	file, err := stream.OpenBinary(tmpPath)
	if err != nil {
		t.Note("open: %v", err)
		return t
	}
	defer file.Close()
	genFresh, _ := stream.NewGen(spec)
	half := g.M() / 2
	a, b := graph.New(g.N()), graph.New(g.N())
	for v := 0; v < g.N(); v++ {
		a.SetB(v, g.B(v))
		b.SetB(v, g.B(v))
	}
	for i, e := range g.Edges() {
		dst := a
		if i >= half {
			dst = b
		}
		dst.MustAddEdge(int(e.U), int(e.V), e.W)
	}
	sharded, err := stream.Concat(stream.NewEdgeStream(a), stream.NewEdgeStream(b))
	if err != nil {
		t.Note("concat: %v", err)
		return t
	}

	backends := []struct {
		name string
		src  stream.Source
	}{
		{"memory", stream.NewEdgeStream(g)},
		{"file", file},
		{"generator", genFresh},
		{"sharded", sharded},
	}
	var base *match.Result
	for _, be := range backends {
		res, err := solver.Solve(context.Background(), be.src)
		if err != nil {
			t.Note("%s: %v", be.name, err)
			continue
		}
		identical := "-"
		if be.name == "memory" {
			base = res
		} else if base != nil {
			if reflect.DeepEqual(base, res) {
				identical = "yes"
			} else {
				identical = "NO"
			}
		}
		t.AddRow(d(spec.N), d(spec.M), be.name, f(res.Weight), fr(res.Lambda),
			d(res.Stats.SamplingRounds), d(res.Stats.Passes), d(res.Stats.PeakWords),
			fr(float64(res.Stats.PeakWords)/float64(spec.M)), identical)
	}

	// Out-of-core scale row: a file-backed instance an order of magnitude
	// past the equivalence rows, solved with a lean sparsifier profile so
	// the sample is genuinely sublinear; peak/m << 1 is the claim.
	oocSpec := stream.GenSpec{N: 256, M: 60000,
		Weights: graph.WeightConfig{Mode: graph.UniformWeights, WMax: 25}, Seed: cfg.Seed + 505}
	if cfg.Quick {
		oocSpec.N, oocSpec.M = 160, 16000
	}
	oocGen, _ := stream.NewGen(oocSpec)
	oocPath := tmpPath + ".ooc"
	if err := stream.WriteBinaryFile(oocPath, oocGen); err != nil {
		t.Note("ooc encode: %v", err)
		return t
	}
	defer os.Remove(oocPath)
	oocFile, err := stream.OpenBinary(oocPath)
	if err != nil {
		t.Note("ooc open: %v", err)
		return t
	}
	defer oocFile.Close()
	prof := match.Practical(0.3)
	prof.SparsifierK = 6
	prof.ChiOverride = 1
	oocSolver, err := match.New(match.WithEps(0.3), match.WithSpaceExponent(2),
		match.WithSeed(cfg.Seed+507), match.WithWorkers(cfg.Workers),
		match.WithMaxRounds(2), match.WithProfile(prof))
	if err != nil {
		t.Note("ooc configure: %v", err)
		return t
	}
	oocRes, err := oocSolver.Solve(context.Background(), oocFile)
	if err != nil {
		t.Note("ooc solve: %v", err)
		return t
	}
	t.AddRow(d(oocSpec.N), d(oocSpec.M), "file-ooc", f(oocRes.Weight), fr(oocRes.Lambda),
		d(oocRes.Stats.SamplingRounds), d(oocRes.Stats.Passes), d(oocRes.Stats.PeakWords),
		fr(float64(oocRes.Stats.PeakWords)/float64(oocSpec.M)), "-")

	t.Note("expected shape: identical=yes on every backend; file-ooc peak/m << 1 (the edge set never becomes resident)")
	t.Note("file-ooc runs 2 rounds under a lean sparsifier profile (K=6, chi=1) so the sample is sublinear at this n")
	noteWorkers(&t, cfg)
	return t
}
