package bench

import (
	"errors"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/match"
)

// E16Algorithms — one engine, many algorithms: every substrate in the
// match registry solves the same shared graph families under the same
// round-loop driver, and the table shows what each model of computation
// pays (passes, rounds, peak central words) for the quality it gets —
// the cross-model trade-off the paper's Theorems 15/20 price out,
// finally comparable like for like because the meters are the driver's,
// not each substrate's own bookkeeping.
func E16Algorithms(cfg Config) Table {
	t := Table{
		ID:      "E16",
		Title:   "cross-algorithm: quality vs passes vs peak words on the shared engine driver",
		Columns: []string{"family", "algo", "weight", "ratio", "rounds", "passes", "peak-words", "ms"},
	}
	n, m := 96, 900
	if cfg.Quick {
		n, m = 48, 360
	}
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnm-uniform", graph.GNM(n, m, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 40}, cfg.Seed+501)},
		{"bipartite", graph.Bipartite(n/2, n/2, m/2, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 20}, cfg.Seed+503)},
		{"gnm-unit", graph.GNM(n, m, graph.WeightConfig{}, cfg.Seed+505)},
	}
	for _, fam := range families {
		_, opt := matching.OfflineB(fam.g, matching.OfflineConfig{ExactLimit: 1200})
		for _, info := range match.Algorithms() {
			var res *match.Result
			var err error
			ms := timeIt(func() {
				res, err = solveGraph(fam.g, 0.25, 2, cfg.Seed+507, cfg.Workers,
					match.WithAlgorithm(info.Name))
			})
			if errors.Is(err, match.ErrUnsupported) {
				t.AddRow(fam.name, info.Name, "unsupported", "-", "-", "-", "-", "-")
				continue
			}
			if err != nil {
				t.AddRow(fam.name, info.Name, "ERR "+err.Error(), "-", "-", "-", "-", "-")
				continue
			}
			ratio := 0.0
			if opt > 0 {
				ratio = res.Weight / opt
			}
			t.AddRow(fam.name, info.Name, f(res.Weight), fr(ratio),
				d(res.Stats.SamplingRounds), d(res.Stats.Passes), d(res.Stats.PeakWords),
				f(float64(ms.Microseconds())/1000))
		}
	}
	t.Note("ratio is against the exact max-WEIGHT b-matching: cardinality algorithms (greedy, clique, hopcroft-karp) trade weight for fewer passes/rounds")
	t.Note("hopcroft-karp is bipartite-only: 'unsupported' rows are the model's honest answer, not a failure")
	noteWorkers(&t, cfg)
	return t
}
