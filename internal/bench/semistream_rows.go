package bench

import (
	"repro/internal/graph"
	"repro/internal/semistream"
	"repro/internal/stream"
)

// semiStreamRows runs each streaming baseline on g and formats rows.
func semiStreamRows(g *graph.Graph, opt float64, cfg Config) [][]string {
	var rows [][]string
	add := func(algo string, w float64, passes int) {
		rows = append(rows, []string{d(g.N()), d(g.M()), algo, fr(w / opt), d(passes)})
	}
	s1 := stream.NewEdgeStream(g)
	m1 := semistream.OnePassGreedy(s1)
	add("one-pass-greedy", m1.Weight(g), s1.Passes())

	s2 := stream.NewEdgeStream(g)
	m2 := semistream.OnePassReplace(s2, 1)
	add("one-pass-replace(g=1)", m2.Weight(g), s2.Passes())

	s3 := stream.NewEdgeStream(g)
	m3 := semistream.ShortAugmentPasses(s3, semistream.OnePassGreedy(s3), 6)
	add("3-augment-passes", m3.Weight(g), s3.Passes())

	res, err := solveGraph(g, 0.25, 2, cfg.Seed+311, cfg.Workers)
	if err == nil {
		add("dual-primal(eps=1/4)", res.Weight, res.Stats.Passes)
	}
	return rows
}
