package bench

import (
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/match"
)

// EAblations — design-choice ablations called out in DESIGN.md: remove
// one mechanism at a time and measure what breaks.
//
//   - no-oddsets: Algorithm 5 never prices z_{U,ℓ}; the dual degenerates
//     to the bipartite relaxation, so on odd-structured graphs λ cannot
//     certify (1-3ε) (witness events fire instead) while the primal
//     matching survives via the offline step.
//   - stale-refine: Definition 4's refinement is skipped (sparsifiers are
//     consumed with sampling-time promise weights); the dual inner steps
//     optimize against drifted data.
//   - chi=1: no χ² oversampling although multipliers drift within the
//     round; the refined support under-covers high-drift edges.
func EAblations(cfg Config) Table {
	t := Table{
		ID:      "EA",
		Title:   "ablations: odd-set pricing, deferred refinement, chi^2 oversampling",
		Columns: []string{"graph", "variant", "ratio", "lambda", "early-stop", "witness-events", "bound/opt"},
	}
	n := 42
	maxRounds := 700
	if cfg.Quick {
		n = 30
		maxRounds = 350
	}
	type variant struct {
		name string
		mod  func(p *match.Profile)
	}
	variants := []variant{
		{"full", func(p *match.Profile) {}},
		{"no-oddsets", func(p *match.Profile) { p.DisableOddSets = true }},
		{"stale-refine", func(p *match.Profile) { p.StaleRefinement = true }},
		{"chi=1", func(p *match.Profile) { p.ChiOverride = 1 }},
	}
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"triangles", graph.TriangleChain(n / 3)},
		{"uniform-w", graph.GNM(n, 8*n, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 30}, cfg.Seed+211)},
	}
	eps := 0.125
	for _, gg := range graphs {
		_, opt := matching.MaxWeightMatchingFloat(gg.g, false)
		if opt == 0 {
			continue
		}
		for _, v := range variants {
			prof := match.Practical(eps)
			v.mod(&prof)
			res, err := solveGraph(gg.g, eps, 2, cfg.Seed+223, cfg.Workers,
				match.WithProfile(prof),
				match.WithMaxRounds(maxRounds), // dual-certificate budget (τo-scale)
			)
			if err != nil {
				t.Note("%s/%s: %v", gg.name, v.name, err)
				continue
			}
			// The certified upper bound over kept edges, with the (1+eps)
			// discretization slack folded in at solve time.
			bound := 0.0
			if res.Lambda > 0 {
				bound = res.CertifiedUpperBound()
			}
			t.AddRow(gg.name, v.name, fr(res.Weight/opt), fr(res.Lambda),
				yn(res.Stats.EarlyStopped), d(res.Stats.WitnessEvents), fr(bound/opt))
		}
	}
	t.Note("expected shape: primal ratio robust everywhere (offline step); removing a mechanism")
	t.Note("degrades the dual certificate (lower lambda / inflated bound / witness storms), not the matching")
	noteWorkers(&t, cfg)
	return t
}

// ESemiStream — the one-pass semi-streaming baselines of the related-work
// section ([16], [29]) against the dual-primal result, with pass counts.
func ESemiStream(cfg Config) Table {
	t := Table{
		ID:      "ES",
		Title:   "semi-streaming baselines: one-pass greedy / McGregor replace / 3-augmentations",
		Columns: []string{"n", "m", "algo", "ratio", "passes"},
	}
	n := 96
	if cfg.Quick {
		n = 64
	}
	g := graph.GNM(n, 10*n, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 60}, cfg.Seed+307)
	_, opt := matching.MaxWeightMatchingFloat(g, false)
	if opt == 0 {
		return t
	}
	rows := semiStreamRows(g, opt, cfg)
	t.Rows = append(t.Rows, rows...)
	t.Note("expected shape: one-pass algorithms plateau at their constants; dual-primal reaches ~1 with more passes")
	noteWorkers(&t, cfg)
	return t
}
