package bench

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/match"
)

// E18Serving measures the HTTP serving layer end to end: concurrent
// clients driving matchd's synchronous solve endpoint through a real
// socket, one row per job mix — the three wire kinds, a warm-repeat
// stream that converges onto cached duals, and a budget-capped stream.
// Throughput and latency are measured by the load driver
// (serve.RunLoad); warm hits and budget trips are read back off the
// server's own /metrics surface, so the row cross-checks the serving
// pipeline's accounting against the client's view.
func E18Serving(cfg Config) Table {
	t := Table{
		ID:    "E18",
		Title: "HTTP serving: throughput, latency and warm reuse over a socket",
		Columns: []string{"mix", "clients", "jobs", "failed", "retries429",
			"solves/s", "p50 ms", "p99 ms", "warm hits", "budget trips"},
	}
	n, m := 64, 512
	clients, jobsPer := 6, 8
	if cfg.Quick {
		n, m = 40, 240
		clients, jobsPer = 4, 4
	}
	g := graph.GNM(n, m, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 25}, cfg.Seed+200)
	edges := serve.SourceSpec{Kind: "edges", N: g.N()}
	for _, e := range g.Edges() {
		edges.Edges = append(edges.Edges, []float64{float64(e.U), float64(e.V), e.W})
	}
	var rbg bytes.Buffer
	if err := stream.WriteBinary(&rbg, stream.NewEdgeStream(
		graph.GNM(n, m, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 25}, cfg.Seed+201))); err != nil {
		panic(err)
	}
	gen := serve.SourceSpec{Kind: "gen", N: n, M: m, Weights: "uniform", WMax: 25, Seed: cfg.Seed + 202}

	mixes := []struct {
		name  string
		specs []serve.JobSpec
	}{
		{"edges-inline", []serve.JobSpec{{Source: edges}}},
		{"gen-spec", []serve.JobSpec{{Source: gen}}},
		{"rbg1-upload", []serve.JobSpec{{Source: serve.SourceSpec{
			Kind: "rbg1", DataBase64: base64.StdEncoding.EncodeToString(rbg.Bytes())}}}},
		// Every client re-solves the identical instance: after the cold
		// solve the fingerprint cache serves sharpened duals to the rest.
		{"warm-repeat", []serve.JobSpec{{Source: edges}}},
		// A 2-round cap on an instance that needs ~21: every solve trips
		// and still answers with its best-so-far matching.
		{"budget-trip", []serve.JobSpec{{Source: edges, Budget: match.Budget{Rounds: 2}}}},
	}
	for _, mix := range mixes {
		warmSize := 0
		if mix.name == "warm-repeat" {
			warmSize = 64
		}
		s, err := serve.New(serve.Config{
			PoolSize:   2,
			QueueLimit: 4 * clients,
			Options: []match.Option{match.WithEps(0.3), match.WithSeed(cfg.Seed + 7),
				match.WithWorkers(cfg.Workers)},
			WarmCacheSize: warmOrDisabled(warmSize),
		})
		if err != nil {
			panic(err)
		}
		ts := httptest.NewServer(s.Handler())
		stats, err := serve.RunLoad(context.Background(), serve.LoadConfig{
			BaseURL:       ts.URL,
			Clients:       clients,
			JobsPerClient: jobsPer,
			Specs:         mix.specs,
			Client:        &http.Client{Timeout: 5 * time.Minute},
		})
		if err != nil {
			panic(fmt.Sprintf("E18 %s: %v", mix.name, err))
		}
		warmHits := scrapeMetric(ts.URL, "matchd_warm_hits_total")
		trips := scrapeMetric(ts.URL, `matchd_budget_trips_total{axis="rounds"}`)
		ts.Close()
		s.Close()
		t.AddRow(mix.name,
			strconv.Itoa(clients), strconv.Itoa(stats.Jobs), strconv.Itoa(stats.Failed),
			strconv.Itoa(stats.Retries429),
			fmt.Sprintf("%.1f", stats.SolvesPerSec),
			fmt.Sprintf("%.2f", float64(stats.P50.Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(stats.P99.Microseconds())/1000),
			strconv.Itoa(warmHits), strconv.Itoa(trips))
	}
	t.Note("n=%d m=%d, eps=0.3, pool of 2 sessions; latency is end-to-end over a real TCP socket", n, m)
	t.Note("warm-repeat serves one fingerprint: every post-cold job is seeded from cached duals")
	t.Note("budget-trip caps rounds at 2 (the cold trajectory needs ~21): trips still answer best-so-far")
	return t
}

// warmOrDisabled maps "0 entries wanted" onto the config's explicit
// disable value (negative), since 0 means "default".
func warmOrDisabled(size int) int {
	if size == 0 {
		return -1
	}
	return size
}

// scrapeMetric reads one counter off the server's Prometheus surface.
func scrapeMetric(baseURL, name string) int {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 1<<20))
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				panic(fmt.Sprintf("parsing metric %s: %v", name, err))
			}
			return int(v)
		}
	}
	panic(fmt.Sprintf("metric %s not found", name))
}
