package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestTablePrint(t *testing.T) {
	tab := Table{ID: "EX", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Note("hello %d", 7)
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"EX", "demo", "a", "bb", "1", "2", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"e1", "E5", "e13"} {
		if _, ok := ByID(id); !ok {
			t.Fatalf("missing experiment %s", id)
		}
	}
	if _, ok := ByID("e99"); ok {
		t.Fatal("bogus id accepted")
	}
}

// Each experiment must run in quick mode and produce at least one row.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{Quick: true, Seed: 5}
	for _, tab := range All(cfg) {
		if len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", tab.ID)
		}
		if tab.ID == "" || tab.Title == "" || len(tab.Columns) == 0 {
			t.Errorf("%s metadata incomplete", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("%s row width %d vs %d columns", tab.ID, len(row), len(tab.Columns))
			}
		}
	}
}

// Fast experiments must run even in -short mode to keep the harness
// covered by the default CI loop.
func TestFastExperimentsShort(t *testing.T) {
	for _, id := range []string{"e5", "e6", "e8", "es"} {
		fn, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tab := fn(Config{Quick: true, Seed: 3})
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
	}
}
