package bench

import (
	"context"
	"runtime"
	"time"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/match"
)

// allocsPerRun measures heap allocations per call of fn, in the style
// of testing.AllocsPerRun: pinned to one OS thread's worth of
// parallelism so background worker allocation does not pollute the
// count, with a warm-up call before the measured window. fn receives
// the 1-based iteration index.
func allocsPerRun(runs int, warmup int, fn func(i int)) float64 {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	for i := 0; i < warmup; i++ {
		fn(i)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn(warmup + i)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// E17Throughput measures the session/pool serving layer: repeat-solve
// allocations through one reused (and, for the dual-primal solver,
// warm-started) session versus the construct-per-call cold baseline,
// and fleet throughput through match.Pool with J concurrent jobs × R
// repeat-solves per configuration. The alloc ratio is the headline: a
// session that retains its scratch arena, dual-state table, forest
// pool and construction grids — and that warm starts into a 1-round
// trajectory — should allocate an order of magnitude less per solve
// than rebuilding everything from zero.
func E17Throughput(cfg Config) Table {
	t := Table{
		ID:    "E17",
		Title: "serving throughput: session reuse, warm-started duals, match.Pool",
		Columns: []string{"algo", "family", "n", "m", "allocs/solve cold", "allocs/solve reused",
			"alloc ratio", "retained kwords", "pool jobs", "pool solves", "solves/s"},
	}
	n, m, repeats := 64, 512, 6
	poolJobs, poolRepeats := 3, 4
	if cfg.Quick {
		n, m, repeats = 40, 240, 4
		poolRepeats = 2
	}
	type family struct {
		name string
		g    *graph.Graph
	}
	families := []family{
		{"gnm-uniform", graph.GNM(n, m, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 25}, cfg.Seed+100)},
		{"gnm-unit", graph.GNM(n, m, graph.WeightConfig{Mode: graph.UnitWeights}, cfg.Seed+101)},
	}
	ctx := context.Background()
	for _, algo := range []string{"dual-primal", "greedy-augment"} {
		for _, fam := range families {
			src := stream.NewEdgeStream(fam.g)
			// ε = 0.3 keeps the dual-primal certificate target reachable,
			// so warm repeats converge in one round — the regime the
			// serving layer is built for.
			opts := []match.Option{match.WithSeed(cfg.Seed + 7), match.WithWorkers(1),
				match.WithEps(0.3), match.WithAlgorithm(algo)}

			// Cold baseline: construct-per-call, the pre-session shape.
			cold := allocsPerRun(repeats, 1, func(int) {
				solver, err := match.New(opts...)
				if err != nil {
					panic(err)
				}
				if _, err := solver.Solve(ctx, src); err != nil {
					panic(err)
				}
			})

			// Reused session; the dual-primal solver additionally chains
			// warm duals from solve to solve.
			solver, err := match.New(opts...)
			if err != nil {
				panic(err)
			}
			var prev *match.Result
			reused := allocsPerRun(repeats, 2, func(int) {
				var extra []match.Option
				if algo == match.DefaultAlgorithm && prev != nil {
					extra = append(extra, match.WithInitialDuals(prev))
				}
				res, err := solver.Solve(ctx, src, extra...)
				if err != nil {
					panic(err)
				}
				prev = res
			})
			ratio := cold / reused
			// What the warm session keeps pooled between the solves above:
			// sketch banks, forests, oracle scratch — capacity, not live
			// space (a SpaceWords budget trips identically warm or cold).
			retainedKW := solver.RetainedWords() / 1024

			// Fleet throughput: J sessions, J×R jobs through the queue.
			pool, err := match.NewPool(poolJobs, opts...)
			if err != nil {
				panic(err)
			}
			solves := poolJobs * poolRepeats
			start := time.Now()
			chans := make([]<-chan match.JobResult, 0, solves)
			for j := 0; j < solves; j++ {
				chans = append(chans, pool.Submit(ctx, src))
			}
			for _, ch := range chans {
				if r := <-ch; r.Err != nil {
					panic(r.Err)
				}
			}
			wall := time.Since(start)
			pool.Close()
			perSec := float64(solves) / wall.Seconds()

			t.AddRow(algo, fam.name, d(fam.g.N()), d(fam.g.M()),
				f(cold), f(reused), fr(ratio), d(retainedKW), d(poolJobs), d(solves), f(perSec))
		}
	}
	t.Note("cold = match.New + Solve per call; reused = one Solver (cached session), dual-primal chained through WithInitialDuals")
	t.Note("retained kwords = Solver.RetainedWords()/1024 after the reused solves: pooled capacity kept warm, never metered as live space")
	t.Note("allocs measured AllocsPerRun-style at GOMAXPROCS(1); pool rows share the configured worker budget across %d sessions", poolJobs)
	noteWorkers(&t, cfg)
	return t
}
