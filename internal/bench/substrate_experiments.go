package bench

import (
	"math"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/matching"
	"repro/internal/sparsify"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// E7Sparsifier — Lemma 17: the deferred sparsifier preserves cuts within
// (1±ξ) after χ-bounded weight drift, with size scaling ~χ².
func E7Sparsifier(cfg Config) Table {
	t := Table{
		ID:      "E7",
		Title:   "deferred cut-sparsifier quality and size (Lemma 17)",
		Columns: []string{"n", "m", "chi", "stored", "stored/m", "max-cut-err", "target-xi"},
	}
	// A complete graph (edge connectivity n-1) with a small base forest
	// count: sampling only bites when connectivity >> K·chi², so this is
	// the regime where the size/accuracy trade-off stays visible across
	// the whole chi sweep.
	n := 300
	if cfg.Quick {
		n = 140
	}
	g := graph.GNP(n, 1.0, graph.WeightConfig{}, cfg.Seed+41)
	xi := 0.25
	chis := []float64{1, 2, 4}
	if cfg.Quick {
		chis = []float64{1, 2}
	}
	r := xrand.New(cfg.Seed + 43)
	for _, chi := range chis {
		sigma := make([]float64, g.M())
		u := make([]float64, g.M())
		for i := range sigma {
			sigma[i] = 1 + 3*r.Float64()
			u[i] = sigma[i] * math.Pow(chi, 2*r.Float64()-1)
		}
		dg, err := sparsify.NewDeferred(g.N(), func(i int) (int32, int32) {
			e := g.Edge(i)
			return e.U, e.V
		}, g.M(), sigma, chi, sparsify.Config{Xi: xi, K: 8, Seed: cfg.Seed + 47, Workers: cfg.Workers})
		if err != nil {
			t.Note("chi=%g: %v", chi, err)
			continue
		}
		sp := dg.Refine(func(i int) float64 { return u[i] })
		// Truth graph under u.
		tg := graph.New(g.N())
		for i, e := range g.Edges() {
			tg.MustAddEdge(int(e.U), int(e.V), u[i])
		}
		worst := 0.0
		rr := xrand.New(cfg.Seed + 53)
		for trial := 0; trial < 40; trial++ {
			mask := make([]bool, g.N())
			for i := range mask {
				mask[i] = rr.Bernoulli(0.5)
			}
			truth := tg.CutWeight(mask)
			if truth <= 0 {
				continue
			}
			if rel := math.Abs(sp.CutWeight(mask)-truth) / truth; rel > worst {
				worst = rel
			}
		}
		t.AddRow(d(n), d(g.M()), f(chi), d(dg.Size()),
			fr(float64(dg.Size())/float64(g.M())), fr(worst), f(xi))
	}
	t.Note("expected shape: max-cut-err stays bounded for all chi; stored grows ~chi^2, < m for small chi")
	t.Note("base K fixed at 8 (deferred scales it by chi^2) to expose the sampling regime; the theory's K = O(log^2 n / xi^2) stores everything at this scale")
	noteWorkers(&t, cfg)
	return t
}

// E8Filtering — Lemma 20 / [25]: per-round survivor counts fall by a
// factor ~n^(1/p), giving O(p) rounds.
func E8Filtering(cfg Config) Table {
	t := Table{
		ID:      "E8",
		Title:   "filtering: survivors per round shrink by ~n^(1/p) (Lemma 20)",
		Columns: []string{"n", "m", "p", "rounds", "survivors-per-round", "n^(1/p)"},
	}
	n := 300
	m := 20000
	if cfg.Quick {
		n, m = 120, 4000
	}
	g := graph.GNM(n, m, graph.WeightConfig{}, cfg.Seed+59)
	for _, p := range []float64{1.5, 2, 3} {
		s := stream.NewEdgeStream(g)
		_, stats := matching.MaximalMatchingFilter(s, p, cfg.Seed+61, nil)
		t.AddRow(d(n), d(m), f(p), d(stats.Rounds),
			intsToString(stats.EdgesPerRound), f(math.Pow(float64(n), 1/p)))
	}
	t.Note("expected shape: rounds <= O(p); random instances collapse even faster than the worst-case")
	t.Note("n^(1/p) decay — the paper's own observation that these iterative algorithms beat their bounds")
	return t
}

func intsToString(xs []int) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ">"
		}
		out += d(x)
	}
	return out
}

// E9MapReduce — Section 4.2 / Corollary 2: sketches are built in one MR
// round and collected in a second; the collecting machine holds Õ(n)
// sketches, not m edges.
func E9MapReduce(cfg Config) Table {
	t := Table{
		ID:      "E9",
		Title:   "MapReduce pipeline: 2 rounds, sublinear central memory (Sec 4.2)",
		Columns: []string{"n", "m", "machines", "rounds", "round1-max-kvs", "round2-max-kvs", "components-ok"},
	}
	sizes := []int{80, 160}
	if cfg.Quick {
		sizes = []int{60}
	}
	for _, n := range sizes {
		g := graph.GNP(n, 0.4, graph.WeightConfig{}, cfg.Seed+uint64(n)+67)
		_, want := g.ConnectedComponents()
		c := mapreduce.NewCluster(8)
		uf, stats := mapreduce.ConnectedComponentsMR(c, g, cfg.Seed+71)
		ok := uf.Components() == want
		t.AddRow(d(n), d(g.M()), d(8), d(stats.Rounds),
			d(stats.RoundMaxKVs[0]), d(stats.RoundMaxKVs[1]), yn(ok))
	}
	t.Note("expected shape: rounds = 2; round-2 machine load ~n (sketches), decoupled from m")
	return t
}

// E10BMatching — Theorem 15's b-matching extension: quality holds with
// capacities; space/levels scale with log B.
func E10BMatching(cfg Config) Table {
	t := Table{
		ID:      "E10",
		Title:   "b-matching: quality under capacities, levels ~ log B",
		Columns: []string{"n", "m", "b-regime", "B", "ratio", "rounds"},
	}
	n := 48
	m := 300
	if cfg.Quick {
		n, m = 32, 160
	}
	regimes := []struct {
		name string
		bmax int
		zipf bool
	}{
		{"unit", 1, false}, {"b<=3", 3, false}, {"zipf<=8", 8, true},
	}
	for _, reg := range regimes {
		g := graph.GNM(n, m, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 20}, cfg.Seed+79)
		if reg.bmax > 1 {
			graph.WithRandomB(g, reg.bmax, reg.zipf, cfg.Seed+83)
		}
		_, opt := matching.OfflineB(g, matching.OfflineConfig{ExactLimit: 700})
		if opt == 0 {
			continue
		}
		res, err := solveB(g, cfg.Seed+89, cfg.Workers)
		if err != nil {
			t.Note("%s: %v", reg.name, err)
			continue
		}
		t.AddRow(d(n), d(m), reg.name, d(g.TotalB()), fr(res.Weight/opt),
			d(res.Stats.SamplingRounds))
	}
	t.Note("expected shape: ratio ~1-eps across capacity regimes")
	noteWorkers(&t, cfg)
	return t
}

// E11Congest — congested clique: O(n^(1/p)) words per vertex message,
// O(p)-ish rounds for the maximal-matching layer.
func E11Congest(cfg Config) Table {
	t := Table{
		ID:      "E11",
		Title:   "congested clique: per-vertex message size O(n^(1/p))",
		Columns: []string{"n", "m", "p", "budget=n^(1/p)", "max-sample-msg", "rounds", "maximal"},
	}
	n := 100
	m := 3000
	if cfg.Quick {
		n, m = 60, 800
	}
	g := graph.GNM(n, m, graph.WeightConfig{}, cfg.Seed+97)
	for _, p := range []float64{2, 3} {
		res := congest.MaximalMatchingClique(g, p, cfg.Seed+101, 0)
		mm := pairsToMatching(g, res)
		maximal := mm.IsMaximal(g) && mm.Validate(g) == nil
		t.AddRow(d(n), d(m), f(p), d(int(math.Ceil(math.Pow(float64(n), 1/p)))),
			d(res.MaxSampleMsgWords), d(res.Stats.Rounds), yn(maximal))
	}
	t.Note("expected shape: max-sample-msg <= n^(1/p); a few rounds per p")
	return t
}

func pairsToMatching(g *graph.Graph, res congest.MatchingResult) *matching.Matching {
	bestIdx := map[uint64]int{}
	for i, e := range g.Edges() {
		bestIdx[e.Key()] = i
	}
	m := &matching.Matching{Mult: []int{}}
	for i, pr := range res.Pairs {
		m.EdgeIdx = append(m.EdgeIdx, bestIdx[graph.KeyOf(pr[0], pr[1])])
		m.Mult = append(m.Mult, res.Mults[i])
	}
	return m
}
