package bench

import (
	"context"
	"os"
	"reflect"
	"time"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/match"
)

// E19FileCodecs — the out-of-core access path priced out: one instance
// written under both binary codecs (RBG1 fixed 16-byte records, RBG2
// delta/varint block frames), each opened through both access paths
// (mmap and pread), with file size, bytes streamed per pass, sweep and
// solve wall time, and a bit-identity check of every file-backed Result
// against the in-memory baseline. The claim under test: RBG2 cuts the
// bytes a pass must move by well over 30% and that shows up as wall
// time on the file-backed solve path.
func E19FileCodecs(cfg Config) Table {
	t := Table{
		ID:    "E19",
		Title: "file backends: RBG1 vs RBG2 codec under mmap and pread access",
		Columns: []string{"codec", "access", "file-bytes", "bytes/edge", "vs-rbg1",
			"sweep-ms", "solve-ms", "solves/s", "identical"},
	}
	spec := stream.GenSpec{N: 512, M: 40000,
		Weights: graph.WeightConfig{Mode: graph.PowersOf, Eps: 0.25, Levels: 12}, Seed: cfg.Seed + 701}
	if cfg.Quick {
		spec.N, spec.M = 256, 12000
	}
	solver, err := match.New(match.WithEps(0.25), match.WithSpaceExponent(2),
		match.WithSeed(cfg.Seed+703), match.WithWorkers(cfg.Workers))
	if err != nil {
		t.Note("configure: %v", err)
		return t
	}

	gen, err := stream.NewGen(spec)
	if err != nil {
		t.Note("generator: %v", err)
		return t
	}
	g := stream.Materialize(gen)
	base, err := solver.Solve(context.Background(), stream.NewEdgeStream(g))
	if err != nil {
		t.Note("memory baseline: %v", err)
		return t
	}

	tmp, err := os.CreateTemp("", "e19-*.rbg")
	if err != nil {
		t.Note("temp file: %v", err)
		return t
	}
	tmpPath := tmp.Name()
	tmp.Close()
	defer os.Remove(tmpPath)
	paths := map[string]string{"rbg1": tmpPath, "rbg2": tmpPath + "2"}
	defer os.Remove(paths["rbg2"])
	if err := stream.WriteBinaryFile(paths["rbg1"], stream.NewEdgeStream(g)); err != nil {
		t.Note("rbg1 encode: %v", err)
		return t
	}
	if err := stream.WriteBinaryFile2(paths["rbg2"], stream.NewEdgeStream(g)); err != nil {
		t.Note("rbg2 encode: %v", err)
		return t
	}
	sizes := map[string]int64{}
	for codec, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			t.Note("stat %s: %v", codec, err)
			return t
		}
		sizes[codec] = fi.Size()
	}

	msf := func(dur time.Duration) string { return fr(float64(dur.Microseconds()) / 1000) }
	for _, codec := range []string{"rbg1", "rbg2"} {
		for _, access := range []string{"mmap", "pread"} {
			src, err := stream.OpenBinaryWith(paths[codec], stream.OpenOptions{NoMmap: access == "pread"})
			if err != nil {
				t.Note("open %s/%s: %v", codec, access, err)
				continue
			}
			label := access
			if access == "mmap" && !src.Mapped() {
				label = "pread(fallback)" // platform without mmap support
			}
			sweep := 3 * time.Hour
			for rep := 0; rep < 3; rep++ {
				dur := timeIt(func() {
					//lint:unmetered raw I/O throughput benchmark, accounting would distort it
					src.Sweep(func(int, graph.Edge) bool { return true })
				})
				if dur < sweep {
					sweep = dur
				}
			}
			var res *match.Result
			solve := timeIt(func() { res, err = solver.Solve(context.Background(), src) })
			src.Close()
			if err != nil {
				t.Note("solve %s/%s: %v", codec, access, err)
				continue
			}
			identical := "NO"
			if reflect.DeepEqual(base, res) {
				identical = "yes"
			}
			t.AddRow(codec, label, d(int(sizes[codec])),
				fr(float64(sizes[codec])/float64(spec.M)),
				fr(float64(sizes[codec])/float64(sizes["rbg1"])),
				msf(sweep), msf(solve), f(float64(time.Second)/float64(solve)), identical)
		}
	}

	t.Note("n=%d m=%d, weights are (1+eps)^i geometric classes — the paper's own discretization, and RBG2's dict mode prices each at one byte", spec.N, spec.M)
	t.Note("vs-rbg1 is file size relative to the RBG1 encoding of the same instance")
	t.Note("bytes/edge is also bytes-per-pass over m: every sweep streams the whole file once")
	t.Note("expected shape: rbg2 vs-rbg1 <= 0.70 (acceptance: >= 30%% smaller), identical=yes on all four rows, sweep-ms best of 3")
	noteWorkers(&t, cfg)
	return t
}
