package graph

import (
	"math"
	"testing"
)

func TestGNMBasic(t *testing.T) {
	g := GNM(50, 200, WeightConfig{Mode: UnitWeights}, 1)
	if g.N() != 50 || g.M() != 200 {
		t.Fatalf("GNM dims: n=%d m=%d", g.N(), g.M())
	}
	seen := map[uint64]bool{}
	for _, e := range g.Edges() {
		if e.U == e.V {
			t.Fatal("self loop in GNM")
		}
		if seen[e.Key()] {
			t.Fatal("duplicate edge in GNM")
		}
		seen[e.Key()] = true
		if e.W != 1 {
			t.Fatalf("unit weight violated: %f", e.W)
		}
	}
}

func TestGNMCapsAtComplete(t *testing.T) {
	g := GNM(5, 100, WeightConfig{}, 2)
	if g.M() != 10 {
		t.Fatalf("GNM should cap at C(5,2)=10, got %d", g.M())
	}
}

func TestGNMDeterministic(t *testing.T) {
	a := GNM(30, 100, WeightConfig{Mode: UniformWeights, WMax: 9}, 7)
	b := GNM(30, 100, WeightConfig{Mode: UniformWeights, WMax: 9}, 7)
	if a.M() != b.M() {
		t.Fatal("same seed, different edge count")
	}
	for i := range a.Edges() {
		if a.Edge(i) != b.Edge(i) {
			t.Fatalf("same seed, edge %d differs", i)
		}
	}
}

func TestGNPDensity(t *testing.T) {
	n, p := 200, 0.1
	g := GNP(n, p, WeightConfig{}, 3)
	want := p * float64(n*(n-1)/2)
	got := float64(g.M())
	if math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Fatalf("GNP edge count %f deviates from %f", got, want)
	}
	seen := map[uint64]bool{}
	for _, e := range g.Edges() {
		if seen[e.Key()] {
			t.Fatal("duplicate edge in GNP")
		}
		seen[e.Key()] = true
	}
}

func TestGNPExtremes(t *testing.T) {
	if g := GNP(10, 0, WeightConfig{}, 1); g.M() != 0 {
		t.Fatal("GNP(p=0) has edges")
	}
	if g := GNP(10, 1, WeightConfig{}, 1); g.M() != 45 {
		t.Fatalf("GNP(p=1) m=%d, want 45", g.M())
	}
}

func TestBipartiteSides(t *testing.T) {
	g := Bipartite(10, 15, 60, WeightConfig{Mode: PowersOf, Eps: 0.5, Levels: 5}, 4)
	if g.N() != 25 || g.M() != 60 {
		t.Fatalf("dims: n=%d m=%d", g.N(), g.M())
	}
	for _, e := range g.Edges() {
		l, r := e.U, e.V
		if l > r {
			l, r = r, l
		}
		if l >= 10 || r < 10 {
			t.Fatalf("edge (%d,%d) not across the bipartition", e.U, e.V)
		}
	}
}

func TestPowersOfWeightsAreDiscrete(t *testing.T) {
	g := GNM(40, 150, WeightConfig{Mode: PowersOf, Eps: 0.25, Levels: 8}, 5)
	for _, e := range g.Edges() {
		k := math.Log(e.W) / math.Log(1.25)
		if math.Abs(k-math.Round(k)) > 1e-9 {
			t.Fatalf("weight %f is not a power of 1.25", e.W)
		}
		if k < -1e-9 || k > 7+1e-9 {
			t.Fatalf("level %f out of range", k)
		}
	}
}

func TestPowerLawDegrees(t *testing.T) {
	g := PowerLaw(300, 6, 2.5, WeightConfig{}, 6)
	if g.M() == 0 {
		t.Fatal("power-law graph empty")
	}
	maxDeg, sumDeg := 0, 0
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		sumDeg += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sumDeg) / float64(g.N())
	if maxDeg < int(3*avg) {
		t.Fatalf("power law lacks hubs: max=%d avg=%f", maxDeg, avg)
	}
}

func TestGeometricLocality(t *testing.T) {
	g := Geometric(100, 0.2, WeightConfig{}, 7)
	if g.M() == 0 {
		t.Fatal("geometric graph empty")
	}
}

func TestPlantedMatching(t *testing.T) {
	g, planted := PlantedMatching(100, 400, 50, 5, 8)
	if planted != 50*50 {
		t.Fatalf("planted weight %f, want 2500", planted)
	}
	if g.M() != 50+400 {
		t.Fatalf("m = %d, want 450", g.M())
	}
	// The planted matching is realizable: the 50 heavy edges are disjoint.
	used := map[int32]bool{}
	heavy := 0
	for _, e := range g.Edges() {
		if e.W == 50 {
			heavy++
			if used[e.U] || used[e.V] {
				t.Fatal("planted edges overlap")
			}
			used[e.U], used[e.V] = true, true
		}
	}
	if heavy != 50 {
		t.Fatalf("found %d planted edges, want 50", heavy)
	}
}

func TestTriangleGap(t *testing.T) {
	g := TriangleGap(0.1)
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("gadget dims n=%d m=%d", g.N(), g.M())
	}
	if g.MaxWeight() != 1 {
		t.Fatalf("max weight %f, want 1", g.MaxWeight())
	}
	if w := g.TotalWeight(); math.Abs(w-(2+10*0.1)) > 1e-12 {
		t.Fatalf("total weight %f", w)
	}
}

func TestTriangleChain(t *testing.T) {
	g := TriangleChain(4)
	if g.N() != 12 || g.M() != 12 {
		t.Fatalf("chain dims n=%d m=%d", g.N(), g.M())
	}
	_, comps := g.ConnectedComponents()
	if comps != 4 {
		t.Fatalf("chain components = %d, want 4", comps)
	}
}

func TestWithRandomB(t *testing.T) {
	g := GNM(30, 60, WeightConfig{}, 9)
	WithRandomB(g, 5, false, 10)
	for v := 0; v < g.N(); v++ {
		if g.B(v) < 1 || g.B(v) > 5 {
			t.Fatalf("b(%d) = %d out of [1,5]", v, g.B(v))
		}
	}
	g2 := GNM(30, 60, WeightConfig{}, 9)
	WithRandomB(g2, 5, true, 10)
	ones := 0
	for v := 0; v < g2.N(); v++ {
		if g2.B(v) == 1 {
			ones++
		}
	}
	if ones < g2.N()/2 {
		t.Fatalf("zipf capacities should favor 1: only %d ones", ones)
	}
}
