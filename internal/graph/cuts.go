package graph

// Cut and set-weight evaluation helpers. These are the ground truth the
// sparsifier tests and the odd-set constraints are checked against.
//
// The paper decomposes the odd-set constraint
//   sum_{(i,j): i,j in U} y_ij <= floor(||U||_b / 2)
// into "sum and difference of cuts" (Section 1); InternalWeight and
// CutWeight are exactly those two primitives.

// CutWeight returns the total weight of edges with exactly one endpoint in
// the set (the cut weight of U). inSet must have length N.
func (g *Graph) CutWeight(inSet []bool) float64 {
	s := 0.0
	for _, e := range g.edges {
		if inSet[e.U] != inSet[e.V] {
			s += e.W
		}
	}
	return s
}

// InternalWeight returns the total weight of edges with both endpoints in
// the set.
func (g *Graph) InternalWeight(inSet []bool) float64 {
	s := 0.0
	for _, e := range g.edges {
		if inSet[e.U] && inSet[e.V] {
			s += e.W
		}
	}
	return s
}

// IncidentWeight returns the total weight of edges with at least one
// endpoint in the set. Identity: Incident = Internal + Cut.
func (g *Graph) IncidentWeight(inSet []bool) float64 {
	s := 0.0
	for _, e := range g.edges {
		if inSet[e.U] || inSet[e.V] {
			s += e.W
		}
	}
	return s
}

// VertexCut returns the weighted degree of a single vertex (the cut of the
// singleton set {v}).
func (g *Graph) VertexCut(v int) float64 {
	s := 0.0
	g.Neighbors(v, func(idx int, _ int32) { s += g.edges[idx].W })
	return s
}

// SetMask converts a vertex list into a membership mask of length N.
func (g *Graph) SetMask(set []int) []bool {
	m := make([]bool, g.n)
	for _, v := range set {
		m[v] = true
	}
	return m
}

// EnumerateOddSets calls f for every subset U of the vertices with
// 3 <= |U| <= maxSize and ||U||_b odd. Exponential; intended only for
// small verification instances (N <= ~20). f receives a reused slice; it
// must copy if it retains the set. If f returns false enumeration stops.
func (g *Graph) EnumerateOddSets(maxSize int, f func(set []int) bool) {
	if maxSize > g.n {
		maxSize = g.n
	}
	set := make([]int, 0, maxSize)
	var rec func(start int)
	stopped := false
	rec = func(start int) {
		if stopped {
			return
		}
		if len(set) >= 3 && g.SetBOdd(set) {
			if !f(set) {
				stopped = true
				return
			}
		}
		if len(set) == maxSize {
			return
		}
		for v := start; v < g.n; v++ {
			set = append(set, v)
			rec(v + 1)
			set = set[:len(set)-1]
			if stopped {
				return
			}
		}
	}
	rec(0)
}
