// Package graph provides the weighted undirected graph representation and
// synthetic workload generators used by every layer of the reproduction:
// the dual-primal solver, the sparsifiers, the sketching substrate and the
// benchmark harness.
//
// Graphs are node-indexed 0..N-1 with float64 edge weights and integer
// per-vertex capacities b (all 1 for standard matching). Parallel edges are
// permitted (the sparsifier sums them); self loops are rejected because no
// matching LP in the paper admits them.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Edge is an undirected weighted edge between vertices U and V.
type Edge struct {
	U, V int32
	W    float64
}

// Key returns a canonical uint64 identifier for the unordered pair {U,V}.
// Parallel edges share a key; callers needing per-copy identity should
// combine Key with the edge index.
func (e Edge) Key() uint64 {
	a, b := e.U, e.V
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// KeyOf returns the canonical pair key for vertices u, v.
func KeyOf(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// UnKey splits a pair key back into its two endpoints (u <= v).
func UnKey(k uint64) (u, v int32) {
	return int32(k >> 32), int32(k & 0xffffffff)
}

// Graph is a weighted undirected multigraph with vertex capacities.
type Graph struct {
	n     int
	edges []Edge
	b     []int // vertex capacities; nil means all ones

	adjOnce bool
	adjHead []int32 // head of per-vertex linked list into adjNext
	adjNext []int32 // next edge-slot in the list; two slots per edge
}

// New returns an empty graph on n vertices with unit capacities.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges (counting parallel copies).
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the internal edge slice. Callers must not mutate it.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the i-th edge.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// AddEdge appends an undirected edge {u,v} with weight w. Self loops and
// non-positive weights are rejected with an error, matching the paper's
// assumption w_ij >= 1 after normalization (any positive weight is fine
// before normalization).
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u == v {
		return fmt.Errorf("graph: self loop on vertex %d", u)
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if !(w > 0) || math.IsInf(w, 0) || math.IsNaN(w) {
		return fmt.Errorf("graph: edge (%d,%d) has invalid weight %v", u, v, w)
	}
	g.edges = append(g.edges, Edge{U: int32(u), V: int32(v), W: w})
	g.adjOnce = false
	return nil
}

// MustAddEdge is AddEdge that panics on error; for generators and tests.
func (g *Graph) MustAddEdge(u, v int, w float64) {
	if err := g.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// Clear empties the graph in place, keeping the vertex count and every
// backing allocation: the edge list truncates, capacities return to all
// ones, and the lazy adjacency is invalidated. A cleared graph is
// indistinguishable from New(g.N()); callers that rebuild a transient
// subgraph every round reuse one Graph instead of allocating one.
func (g *Graph) Clear() {
	g.edges = g.edges[:0]
	if g.b != nil {
		for i := range g.b {
			g.b[i] = 1
		}
	}
	g.adjOnce = false
}

// SetB sets the capacity of vertex v to b (b >= 1).
func (g *Graph) SetB(v, b int) {
	if b < 1 {
		panic("graph: capacity must be >= 1")
	}
	if g.b == nil {
		g.b = make([]int, g.n)
		for i := range g.b {
			g.b[i] = 1
		}
	}
	g.b[v] = b
}

// B returns the capacity of vertex v.
func (g *Graph) B(v int) int {
	if g.b == nil {
		return 1
	}
	return g.b[v]
}

// TotalB returns B = sum of all capacities.
func (g *Graph) TotalB() int {
	if g.b == nil {
		return g.n
	}
	t := 0
	for _, b := range g.b {
		t += b
	}
	return t
}

// SetBOdd returns ||U||_b mod 2 == 1 for the vertex set U.
func (g *Graph) SetBOdd(set []int) bool {
	s := 0
	for _, v := range set {
		s += g.B(v)
	}
	return s%2 == 1
}

// SetBNorm returns ||U||_b for the vertex set U.
func (g *Graph) SetBNorm(set []int) int {
	s := 0
	for _, v := range set {
		s += g.B(v)
	}
	return s
}

// MaxWeight returns W* = max edge weight (0 for an edgeless graph).
func (g *Graph) MaxWeight() float64 {
	w := 0.0
	for _, e := range g.edges {
		if e.W > w {
			w = e.W
		}
	}
	return w
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	s := 0.0
	for _, e := range g.edges {
		s += e.W
	}
	return s
}

// buildAdj constructs the adjacency structure lazily.
func (g *Graph) buildAdj() {
	if g.adjOnce {
		return
	}
	if cap(g.adjHead) >= g.n {
		g.adjHead = g.adjHead[:g.n]
	} else {
		g.adjHead = make([]int32, g.n)
	}
	for i := range g.adjHead {
		g.adjHead[i] = -1
	}
	if cap(g.adjNext) >= 2*len(g.edges) {
		g.adjNext = g.adjNext[:2*len(g.edges)]
	} else {
		g.adjNext = make([]int32, 2*len(g.edges))
	}
	for i, e := range g.edges {
		s0, s1 := int32(2*i), int32(2*i+1)
		g.adjNext[s0] = g.adjHead[e.U]
		g.adjHead[e.U] = s0
		g.adjNext[s1] = g.adjHead[e.V]
		g.adjHead[e.V] = s1
	}
	g.adjOnce = true
}

// Neighbors calls f for every incident edge of v with the edge index and
// the opposite endpoint. Iteration order is reverse insertion order.
func (g *Graph) Neighbors(v int, f func(edgeIdx int, other int32)) {
	g.buildAdj()
	for s := g.adjHead[v]; s >= 0; s = g.adjNext[s] {
		idx := int(s) / 2
		e := g.edges[idx]
		if e.U == int32(v) {
			f(idx, e.V)
		} else {
			f(idx, e.U)
		}
	}
}

// Degree returns the number of incident edges (with multiplicity).
func (g *Graph) Degree(v int) int {
	d := 0
	g.Neighbors(v, func(int, int32) { d++ })
	return d
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	ng := New(g.n)
	ng.edges = append([]Edge(nil), g.edges...)
	if g.b != nil {
		ng.b = append([]int(nil), g.b...)
	}
	return ng
}

// Subgraph returns a new graph on the same vertex set restricted to the
// given edge indices (capacities preserved).
func (g *Graph) Subgraph(edgeIdx []int) *Graph {
	ng := New(g.n)
	if g.b != nil {
		ng.b = append([]int(nil), g.b...)
	}
	ng.edges = make([]Edge, 0, len(edgeIdx))
	for _, i := range edgeIdx {
		ng.edges = append(ng.edges, g.edges[i])
	}
	return ng
}

// FromEdges builds a graph on n vertices from an explicit edge list.
func FromEdges(n int, edges []Edge) *Graph {
	g := New(n)
	for _, e := range edges {
		g.MustAddEdge(int(e.U), int(e.V), e.W)
	}
	return g
}

// DedupMax collapses parallel edges, keeping the maximum weight per pair.
// Useful before exact solvers that assume simple graphs.
func (g *Graph) DedupMax() *Graph {
	best := make(map[uint64]float64, len(g.edges))
	for _, e := range g.edges {
		k := e.Key()
		if w, ok := best[k]; !ok || e.W > w {
			best[k] = e.W
		}
	}
	keys := make([]uint64, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	ng := New(g.n)
	if g.b != nil {
		ng.b = append([]int(nil), g.b...)
	}
	for _, k := range keys {
		u, v := UnKey(k)
		ng.edges = append(ng.edges, Edge{U: u, V: v, W: best[k]})
	}
	return ng
}

// ConnectedComponents returns a label per vertex (labels in [0, k)).
func (g *Graph) ConnectedComponents() (labels []int, count int) {
	labels = make([]int, g.n)
	for i := range labels {
		labels[i] = -1
	}
	count = 0
	var stack []int
	for s := 0; s < g.n; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = count
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g.Neighbors(v, func(_ int, o int32) {
				if labels[o] < 0 {
					labels[o] = count
					stack = append(stack, int(o))
				}
			})
		}
		count++
	}
	return labels, count
}
