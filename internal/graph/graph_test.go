package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if err := g.AddEdge(0, 1, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := g.AddEdge(0, 1, -2); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := g.AddEdge(0, 1, 3.5); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
}

func TestKeyRoundTrip(t *testing.T) {
	f := func(a, b uint16) bool {
		u, v := int32(a), int32(b)
		k := KeyOf(u, v)
		x, y := UnKey(k)
		if u > v {
			u, v = v, u
		}
		return x == u && y == v && KeyOf(v, u) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 2)
	g.MustAddEdge(0, 3, 3)
	g.MustAddEdge(1, 2, 4)
	if d := g.Degree(0); d != 3 {
		t.Fatalf("deg(0) = %d, want 3", d)
	}
	if d := g.Degree(3); d != 1 {
		t.Fatalf("deg(3) = %d, want 1", d)
	}
	sum := 0.0
	g.Neighbors(0, func(idx int, other int32) {
		sum += g.Edge(idx).W
		if other == 0 {
			t.Fatal("neighbor equals self")
		}
	})
	if sum != 6 {
		t.Fatalf("incident weight of 0 = %f, want 6", sum)
	}
}

func TestNeighborsParallelEdges(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 1, 2)
	if d := g.Degree(0); d != 2 {
		t.Fatalf("parallel edges not counted: deg=%d", d)
	}
}

func TestCapacities(t *testing.T) {
	g := New(3)
	if g.B(0) != 1 || g.TotalB() != 3 {
		t.Fatal("default capacities wrong")
	}
	g.SetB(1, 4)
	if g.B(1) != 4 || g.B(0) != 1 {
		t.Fatal("SetB wrong")
	}
	if g.TotalB() != 6 {
		t.Fatalf("TotalB = %d, want 6", g.TotalB())
	}
	if !g.SetBOdd([]int{0, 1}) { // 1+4 = 5 odd
		t.Fatal("SetBOdd wrong for odd set")
	}
	if g.SetBOdd([]int{0, 2}) { // 1+1 = 2 even
		t.Fatal("SetBOdd wrong for even set")
	}
}

func TestCutIdentities(t *testing.T) {
	r := xrand.New(21)
	g := GNM(20, 60, WeightConfig{Mode: UniformWeights, WMax: 10}, 4)
	for trial := 0; trial < 50; trial++ {
		mask := make([]bool, g.N())
		for i := range mask {
			mask[i] = r.Bernoulli(0.5)
		}
		in := g.InternalWeight(mask)
		cut := g.CutWeight(mask)
		inc := g.IncidentWeight(mask)
		if diff := inc - in - cut; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("Incident != Internal + Cut: %f vs %f + %f", inc, in, cut)
		}
	}
	// Complement has the same cut.
	mask := make([]bool, g.N())
	for i := 0; i < 7; i++ {
		mask[i] = true
	}
	comp := make([]bool, g.N())
	for i := range comp {
		comp[i] = !mask[i]
	}
	if a, b := g.CutWeight(mask), g.CutWeight(comp); a != b {
		t.Fatalf("cut not symmetric: %f vs %f", a, b)
	}
}

func TestVertexCutMatchesSingletonCut(t *testing.T) {
	g := GNM(15, 40, WeightConfig{Mode: UniformWeights, WMax: 5}, 9)
	for v := 0; v < g.N(); v++ {
		mask := make([]bool, g.N())
		mask[v] = true
		if a, b := g.VertexCut(v), g.CutWeight(mask); a-b > 1e-9 || b-a > 1e-9 {
			t.Fatalf("vertex %d: VertexCut %f != singleton CutWeight %f", v, a, b)
		}
	}
}

func TestSubgraphAndClone(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 3, 3)
	g.SetB(4, 7)
	sub := g.Subgraph([]int{0, 2})
	if sub.M() != 2 || sub.Edge(1).W != 3 {
		t.Fatalf("subgraph wrong: M=%d", sub.M())
	}
	if sub.B(4) != 7 {
		t.Fatal("subgraph lost capacities")
	}
	cl := g.Clone()
	cl.MustAddEdge(3, 4, 9)
	if g.M() != 3 {
		t.Fatal("clone shares edge storage")
	}
}

func TestDedupMax(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 0, 5)
	g.MustAddEdge(0, 1, 3)
	g.MustAddEdge(1, 2, 1)
	d := g.DedupMax()
	if d.M() != 2 {
		t.Fatalf("dedup M = %d, want 2", d.M())
	}
	for _, e := range d.Edges() {
		if e.Key() == KeyOf(0, 1) && e.W != 5 {
			t.Fatalf("dedup kept weight %f, want max 5", e.W)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(3, 4, 1)
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if labels[0] != labels[2] || labels[3] != labels[4] || labels[0] == labels[3] || labels[5] == labels[0] || labels[5] == labels[3] {
		t.Fatalf("bad labels: %v", labels)
	}
}

func TestEnumerateOddSets(t *testing.T) {
	g := New(5) // all b=1: odd sets are subsets of odd size >= 3
	count := 0
	g.EnumerateOddSets(5, func(set []int) bool {
		if len(set)%2 == 0 {
			t.Fatalf("even set enumerated: %v", set)
		}
		count++
		return true
	})
	// C(5,3) + C(5,5) = 10 + 1 = 11
	if count != 11 {
		t.Fatalf("enumerated %d odd sets, want 11", count)
	}
}

func TestEnumerateOddSetsWithB(t *testing.T) {
	g := New(4)
	g.SetB(0, 2) // sets containing 0 have ||U||_b = |U|+1
	count := 0
	g.EnumerateOddSets(4, func(set []int) bool {
		if !g.SetBOdd(set) {
			t.Fatalf("even-b set enumerated: %v", set)
		}
		count++
		return true
	})
	// Size-3 sets: {0,a,b} has norm 4 (even); {1,2,3} has norm 3 (odd) -> 1.
	// Size-4 set {0,1,2,3} has norm 5 (odd) -> 1. Total 2.
	if count != 2 {
		t.Fatalf("enumerated %d, want 2", count)
	}
}

func TestEnumerateStops(t *testing.T) {
	g := New(8)
	count := 0
	g.EnumerateOddSets(5, func(set []int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop failed: %d calls", count)
	}
}
