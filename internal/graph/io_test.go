package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment
0 1 2.5
1 2
b 2 4

3 0 7`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("dims n=%d m=%d", g.N(), g.M())
	}
	if g.Edge(0).W != 2.5 || g.Edge(1).W != 1 || g.Edge(2).W != 7 {
		t.Fatalf("weights wrong: %+v", g.Edges())
	}
	if g.B(2) != 4 || g.B(0) != 1 {
		t.Fatal("capacities wrong")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0",            // too few fields
		"0 x",          // bad vertex
		"0 1 abc",      // bad weight
		"-1 2",         // negative id
		"0 0 1",        // self loop (rejected by AddEdge)
		"0 1 -3",       // negative weight
		"b 0",          // short capacity line
		"b 0 0",        // zero capacity
		"b zero 2",     // bad capacity vertex
		"0 1 1\nb 0 x", // bad capacity value
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(20)
		m := r.Intn(3 * n)
		g := GNM(n, m, WeightConfig{Mode: UniformWeights, WMax: 50}, seed)
		for v := 0; v < n; v++ {
			if r.Bernoulli(0.2) {
				g.SetB(v, 1+r.Intn(4))
			}
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		if g2.M() != g.M() {
			return false
		}
		for i := range g.Edges() {
			a, b := g.Edge(i), g2.Edge(i)
			if a.U != b.U || a.V != b.V || a.W != b.W {
				return false
			}
		}
		for v := 0; v < g.N(); v++ {
			if v < g2.N() && g.B(v) != g2.B(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCutSubmodularity(t *testing.T) {
	// Cut functions are submodular: f(A) + f(B) >= f(A∪B) + f(A∩B).
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 4 + r.Intn(12)
		g := GNM(n, 2*n, WeightConfig{Mode: UniformWeights, WMax: 9}, seed+3)
		A := make([]bool, n)
		B := make([]bool, n)
		for i := 0; i < n; i++ {
			A[i] = r.Bernoulli(0.5)
			B[i] = r.Bernoulli(0.5)
		}
		un := make([]bool, n)
		in := make([]bool, n)
		for i := 0; i < n; i++ {
			un[i] = A[i] || B[i]
			in[i] = A[i] && B[i]
		}
		lhs := g.CutWeight(A) + g.CutWeight(B)
		rhs := g.CutWeight(un) + g.CutWeight(in)
		return lhs >= rhs-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
