package graph

import (
	"math"

	"repro/internal/xrand"
)

// Synthetic workload generators. The paper's regime of interest is
// m >> n^(1+1/p): dense-ish graphs whose edge set does not fit in the
// central space budget. WeightMode controls the edge-weight law; the
// paper assumes weights >= 1 rounded to powers of (1+eps), which
// PowersOf implements directly.

// WeightMode selects the distribution of edge weights.
type WeightMode int

const (
	// UnitWeights assigns weight 1 to every edge (cardinality matching).
	UnitWeights WeightMode = iota
	// UniformWeights draws uniform weights in [1, wmax].
	UniformWeights
	// PowersOf draws weights (1+eps)^k with k geometric-ish uniform in
	// [0, levels), the paper's discretized regime.
	PowersOf
	// ExpWeights draws weights exp(Exp(1)*scale), a heavy-ish tail.
	ExpWeights
)

// WeightConfig parameterizes weight generation.
type WeightConfig struct {
	Mode   WeightMode
	WMax   float64 // UniformWeights: maximum weight (default 100)
	Eps    float64 // PowersOf: base eps (default 0.25)
	Levels int     // PowersOf: number of levels (default 12)
	Scale  float64 // ExpWeights: exponent scale (default 2)
}

// Draw samples one edge weight from the configured law.
func (wc WeightConfig) Draw(r *xrand.RNG) float64 {
	switch wc.Mode {
	case UnitWeights:
		return 1
	case UniformWeights:
		wmax := wc.WMax
		if wmax <= 1 {
			wmax = 100
		}
		return 1 + r.Float64()*(wmax-1)
	case PowersOf:
		eps := wc.Eps
		if eps <= 0 {
			eps = 0.25
		}
		levels := wc.Levels
		if levels <= 0 {
			levels = 12
		}
		return math.Pow(1+eps, float64(r.Intn(levels)))
	case ExpWeights:
		scale := wc.Scale
		if scale <= 0 {
			scale = 2
		}
		return math.Exp(r.Exp() * scale)
	default:
		return 1
	}
}

// GNM returns a uniform random simple graph with n vertices and m distinct
// edges (m is capped at n*(n-1)/2).
func GNM(n, m int, wc WeightConfig, seed uint64) *Graph {
	g := New(n)
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	r := xrand.New(seed)
	seen := make(map[uint64]bool, m)
	for len(g.edges) < m {
		u := r.Intn(n)
		v := r.Intn(n)
		if u == v {
			continue
		}
		k := KeyOf(int32(u), int32(v))
		if seen[k] {
			continue
		}
		seen[k] = true
		g.MustAddEdge(u, v, wc.Draw(r))
	}
	return g
}

// GNP returns an Erdos-Renyi G(n,p) graph using geometric edge skipping,
// O(n + m) time.
func GNP(n int, p float64, wc WeightConfig, seed uint64) *Graph {
	g := New(n)
	if p <= 0 {
		return g
	}
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				g.MustAddEdge(u, v, wc.Draw(xrand.New(seed+uint64(u*n+v))))
			}
		}
		return g
	}
	r := xrand.New(seed)
	logq := math.Log(1 - p)
	// Iterate over pair index space with geometric skips.
	total := int64(n) * int64(n-1) / 2
	idx := int64(-1)
	for {
		u := r.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		skip := int64(math.Floor(math.Log(u) / logq))
		idx += 1 + skip
		if idx >= total {
			break
		}
		// Decode pair index into (a, b), a < b, row-major over rows a.
		a := int64(0)
		rem := idx
		rowLen := int64(n - 1)
		for rem >= rowLen {
			rem -= rowLen
			a++
			rowLen--
		}
		b := a + 1 + rem
		g.MustAddEdge(int(a), int(b), wc.Draw(r))
	}
	return g
}

// Bipartite returns a random bipartite graph with sides of size nl and nr
// (vertices 0..nl-1 on the left) and m distinct edges.
func Bipartite(nl, nr, m int, wc WeightConfig, seed uint64) *Graph {
	g := New(nl + nr)
	maxM := nl * nr
	if m > maxM {
		m = maxM
	}
	r := xrand.New(seed)
	seen := make(map[uint64]bool, m)
	for len(g.edges) < m {
		u := r.Intn(nl)
		v := nl + r.Intn(nr)
		k := KeyOf(int32(u), int32(v))
		if seen[k] {
			continue
		}
		seen[k] = true
		g.MustAddEdge(u, v, wc.Draw(r))
	}
	return g
}

// PowerLaw returns a Chung–Lu style graph whose expected degree sequence
// follows a power law with the given exponent (typically 2..3). Simple
// graph; the number of edges concentrates near the target avgDeg*n/2.
func PowerLaw(n int, avgDeg float64, exponent float64, wc WeightConfig, seed uint64) *Graph {
	r := xrand.New(seed)
	wts := make([]float64, n)
	sum := 0.0
	for i := range wts {
		// w_i ~ i^{-1/(exponent-1)} scaled to the average degree.
		wts[i] = math.Pow(float64(i+1), -1/(exponent-1))
		sum += wts[i]
	}
	scale := avgDeg * float64(n) / sum
	for i := range wts {
		wts[i] *= scale
	}
	g := New(n)
	seen := make(map[uint64]bool)
	// Sample edges proportional to w_i w_j / sum via weighted sampling of
	// endpoints; repeat until target edge count is reached or attempts
	// are exhausted.
	target := int(avgDeg * float64(n) / 2)
	cdf := make([]float64, n)
	acc := 0.0
	for i, w := range wts {
		acc += w
		cdf[i] = acc
	}
	pick := func() int {
		u := r.Float64() * acc
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	for attempts := 0; len(g.edges) < target && attempts < 20*target+100; attempts++ {
		u, v := pick(), pick()
		if u == v {
			continue
		}
		k := KeyOf(int32(u), int32(v))
		if seen[k] {
			continue
		}
		seen[k] = true
		g.MustAddEdge(u, v, wc.Draw(r))
	}
	return g
}

// Geometric returns a random geometric graph: n points uniform in the unit
// square, edges between pairs within the given radius, weight scaled by
// inverse distance when wc.Mode == UniformWeights semantics do not apply.
func Geometric(n int, radius float64, wc WeightConfig, seed uint64) *Graph {
	r := xrand.New(seed)
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{r.Float64(), r.Float64()}
	}
	g := New(n)
	r2 := radius * radius
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := pts[i].x-pts[j].x, pts[i].y-pts[j].y
			if dx*dx+dy*dy <= r2 {
				g.MustAddEdge(i, j, wc.Draw(r))
			}
		}
	}
	return g
}

// PlantedMatching returns a graph containing a planted perfect matching of
// high weight plus m random low-weight noise edges. The planted matching
// weight is known exactly, giving a certified lower bound on the optimum
// for large instances where exact solvers are too slow.
func PlantedMatching(n, m int, plantW, noiseWMax float64, seed uint64) (*Graph, float64) {
	if n%2 == 1 {
		n++
	}
	r := xrand.New(seed)
	g := New(n)
	perm := r.Perm(n)
	total := 0.0
	for i := 0; i < n; i += 2 {
		g.MustAddEdge(perm[i], perm[i+1], plantW)
		total += plantW
	}
	seen := make(map[uint64]bool)
	for _, e := range g.edges {
		seen[e.Key()] = true
	}
	for added := 0; added < m; {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		k := KeyOf(int32(u), int32(v))
		if seen[k] {
			continue
		}
		seen[k] = true
		g.MustAddEdge(u, v, 1+r.Float64()*(noiseWMax-1))
		added++
	}
	return g, total
}

// TriangleGap builds the paper's Section 1 gadget: a triangle whose apex
// vertex (vertex 0) is incident to two edges of weight 1 while the
// opposite edge has weight 10ε. The integral optimum is 1 (one heavy
// edge), but the bipartite relaxation assigns 1/2 to all three edges for
// value (1 + 1 + 10ε)/2 = 1 + 5ε — the odd-set constraint on the whole
// triangle is required for a (1-ε) approximation.
func TriangleGap(eps float64) *Graph {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(1, 2, 10*eps)
	return g
}

// TriangleChain builds a chain of k disjoint triangles (3k vertices) with
// unit weights: the fractional bipartite LP assigns 1/2 to every triangle
// edge (value 3k/2) while the integral optimum is k. A standard stress
// test for odd-set handling.
func TriangleChain(k int) *Graph {
	g := New(3 * k)
	for t := 0; t < k; t++ {
		a, b, c := 3*t, 3*t+1, 3*t+2
		g.MustAddEdge(a, b, 1)
		g.MustAddEdge(b, c, 1)
		g.MustAddEdge(a, c, 1)
	}
	return g
}

// WithRandomB assigns random capacities b_i in [1, bmax] (Zipf-weighted
// toward 1 when zipf is true) and returns the same graph for chaining.
func WithRandomB(g *Graph, bmax int, zipf bool, seed uint64) *Graph {
	r := xrand.New(seed)
	var z *xrand.Zipfian
	if zipf {
		z = xrand.NewZipf(bmax, 1.5)
	}
	for v := 0; v < g.N(); v++ {
		if zipf {
			g.SetB(v, z.Draw(r))
		} else {
			g.SetB(v, 1+r.Intn(bmax))
		}
	}
	return g
}
