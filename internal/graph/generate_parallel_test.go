package graph

import (
	"reflect"
	"testing"
)

func graphsEqual(a, b *Graph) bool {
	return a.N() == b.N() && reflect.DeepEqual(a.Edges(), b.Edges())
}

func assertSimple(t *testing.T, g *Graph) {
	t.Helper()
	seen := map[uint64]bool{}
	for _, e := range g.Edges() {
		if e.U == e.V {
			t.Fatalf("self loop on %d", e.U)
		}
		k := e.Key()
		if seen[k] {
			t.Fatalf("duplicate edge {%d,%d}", e.U, e.V)
		}
		seen[k] = true
		if !(e.W > 0) {
			t.Fatalf("non-positive weight %v", e.W)
		}
	}
}

func TestGNMParallelWorkerInvariant(t *testing.T) {
	wc := WeightConfig{Mode: UniformWeights, WMax: 40}
	base := GNMParallel(500, 20000, wc, 77, 1)
	for _, workers := range []int{2, 4, 0} {
		g := GNMParallel(500, 20000, wc, 77, workers)
		if !graphsEqual(base, g) {
			t.Fatalf("workers=%d produced a different graph", workers)
		}
	}
	if base.M() != 20000 {
		t.Fatalf("m = %d, want 20000", base.M())
	}
	assertSimple(t, base)
}

func TestGNMParallelSeedsDiffer(t *testing.T) {
	wc := WeightConfig{}
	a := GNMParallel(200, 3000, wc, 1, 4)
	b := GNMParallel(200, 3000, wc, 2, 4)
	if graphsEqual(a, b) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGNMParallelCapsAtCompleteGraph(t *testing.T) {
	g := GNMParallel(12, 10000, WeightConfig{}, 5, 4)
	if want := 12 * 11 / 2; g.M() != want {
		t.Fatalf("m = %d, want complete %d", g.M(), want)
	}
	assertSimple(t, g)
}

func TestGNMParallelEmpty(t *testing.T) {
	if g := GNMParallel(10, 0, WeightConfig{}, 1, 4); g.M() != 0 {
		t.Fatalf("m = %d, want 0", g.M())
	}
}

func TestBipartiteParallelWorkerInvariant(t *testing.T) {
	wc := WeightConfig{Mode: UniformWeights, WMax: 10}
	base := BipartiteParallel(150, 250, 9000, wc, 13, 1)
	for _, workers := range []int{3, 0} {
		g := BipartiteParallel(150, 250, 9000, wc, 13, workers)
		if !graphsEqual(base, g) {
			t.Fatalf("workers=%d produced a different graph", workers)
		}
	}
	if base.M() != 9000 {
		t.Fatalf("m = %d", base.M())
	}
	assertSimple(t, base)
	for _, e := range base.Edges() {
		lo, hi := e.U, e.V
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo >= 150 || hi < 150 {
			t.Fatalf("edge {%d,%d} not bipartite", e.U, e.V)
		}
	}
}

func TestGeometricParallelWorkerInvariant(t *testing.T) {
	wc := WeightConfig{Mode: UniformWeights, WMax: 5}
	base := GeometricParallel(300, 0.08, wc, 21, 1)
	for _, workers := range []int{4, 0} {
		g := GeometricParallel(300, 0.08, wc, 21, workers)
		if !graphsEqual(base, g) {
			t.Fatalf("workers=%d produced a different graph", workers)
		}
	}
	if base.M() == 0 {
		t.Fatal("no edges at this radius/size")
	}
	assertSimple(t, base)
	// Same point set as the sequential generator: edge *topology* matches
	// Geometric with the same seed (weights draw from different streams).
	seq := Geometric(300, 0.08, wc, 21)
	if seq.M() != base.M() {
		t.Fatalf("topology differs from sequential: %d vs %d edges", base.M(), seq.M())
	}
	for i := range seq.Edges() {
		if seq.Edge(i).U != base.Edge(i).U || seq.Edge(i).V != base.Edge(i).V {
			t.Fatalf("edge %d endpoints differ", i)
		}
	}
}
