package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Edge-list text I/O. Lines are "u v [w]" (weight defaults to 1); blank
// lines and lines starting with '#' are ignored. Vertex ids are
// non-negative integers; the graph size is 1 + the largest id seen.
// An optional "b v capacity" line sets a vertex capacity.

// ReadEdgeList parses a graph from r.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	type edge struct {
		u, v int
		w    float64
	}
	type cap struct{ v, b int }
	var edges []edge
	var caps []cap
	maxV := -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Fields(line)
		if parts[0] == "b" {
			if len(parts) != 3 {
				return nil, fmt.Errorf("graph: line %d: capacity line needs 'b v cap'", lineNo)
			}
			v, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			b, err := strconv.Atoi(parts[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			caps = append(caps, cap{v, b})
			if v > maxV {
				maxV = v
			}
			continue
		}
		if len(parts) < 2 {
			return nil, fmt.Errorf("graph: line %d: need 'u v [w]'", lineNo)
		}
		u, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		v, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		w := 1.0
		if len(parts) >= 3 {
			if w, err = strconv.ParseFloat(parts[2], 64); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		edges = append(edges, edge{u, v, w})
		if u > maxV {
			maxV = u
		}
		if v > maxV {
			maxV = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := New(maxV + 1)
	for _, e := range edges {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			return nil, err
		}
	}
	for _, c := range caps {
		if c.b < 1 {
			return nil, fmt.Errorf("graph: capacity of %d must be >= 1", c.v)
		}
		g.SetB(c.v, c.b)
	}
	return g, nil
}

// ReadDIMACS parses a graph in DIMACS edge format: comment lines start
// with 'c', one problem line "p edge <n> <m>" precedes the edges, and
// each edge line is "e <u> <v> [w]" with 1-indexed vertices (weight
// defaults to 1). The declared edge count is checked against the lines
// actually read.
func ReadDIMACS(r io.Reader) (*Graph, error) {
	var g *Graph
	declared := -1
	read := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		parts := strings.Fields(line)
		switch parts[0] {
		case "p":
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate problem line", lineNo)
			}
			if len(parts) != 4 {
				return nil, fmt.Errorf("graph: line %d: problem line needs 'p edge n m'", lineNo)
			}
			n, err := strconv.Atoi(parts[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count %q", lineNo, parts[2])
			}
			m, err := strconv.Atoi(parts[3])
			if err != nil || m < 0 {
				return nil, fmt.Errorf("graph: line %d: bad edge count %q", lineNo, parts[3])
			}
			g = New(n)
			declared = m
		case "e":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before problem line", lineNo)
			}
			if len(parts) < 3 {
				return nil, fmt.Errorf("graph: line %d: need 'e u v [w]'", lineNo)
			}
			u, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			v, err := strconv.Atoi(parts[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			w := 1.0
			if len(parts) >= 4 {
				if w, err = strconv.ParseFloat(parts[3], 64); err != nil {
					return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
				}
			}
			if err := g.AddEdge(u-1, v-1, w); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			read++
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, parts[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing DIMACS problem line")
	}
	if read != declared {
		return nil, fmt.Errorf("graph: DIMACS declares %d edges, found %d", declared, read)
	}
	return g, nil
}

// WriteEdgeList writes g in the format ReadEdgeList accepts.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# n=%d m=%d\n", g.N(), g.M())
	for v := 0; v < g.N(); v++ {
		if g.B(v) != 1 {
			fmt.Fprintf(bw, "b %d %d\n", v, g.B(v))
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d %d %g\n", e.U, e.V, e.W)
	}
	return bw.Flush()
}
