package graph

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

// Parse failures must wrap the underlying error with %w (the
// errwrapbudget analyzer's contract) so callers can errors.As into
// *strconv.NumError and see which literal failed to parse.
func TestReadErrorsWrapStrconv(t *testing.T) {
	cases := []struct {
		name string
		read func(string) error
		in   string
		want string
	}{
		{"edgelist vertex", readEL, "0 zzz", "zzz"},
		{"edgelist weight", readEL, "0 1 bad", "bad"},
		{"edgelist capacity", readEL, "b 0 huge!", "huge!"},
		{"dimacs vertex", readDIMACS, "p edge 3 1\ne 1 oops", "oops"},
		{"dimacs weight", readDIMACS, "p edge 3 1\ne 1 2 nan!", "nan!"},
	}
	for _, tc := range cases {
		err := tc.read(tc.in)
		if err == nil {
			t.Fatalf("%s: no error for %q", tc.name, tc.in)
		}
		var ne *strconv.NumError
		if !errors.As(err, &ne) {
			t.Fatalf("%s: error %v does not wrap *strconv.NumError", tc.name, err)
		}
		if ne.Num != tc.want {
			t.Fatalf("%s: wrapped NumError is about %q, want %q", tc.name, ne.Num, tc.want)
		}
	}
}

func readEL(s string) error {
	_, err := ReadEdgeList(strings.NewReader(s))
	return err
}

func readDIMACS(s string) error {
	_, err := ReadDIMACS(strings.NewReader(s))
	return err
}
