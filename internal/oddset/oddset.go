// Package oddset implements the odd-set machinery of the paper:
//
//   - collections of mutually disjoint *dense small odd sets* in the sense
//     of Lemma 24 / Lemma 16 (the separation routine the MicroOracle uses
//     to price the z_{U,ℓ} duals), and
//   - laminar-family utilities including the uncrossing argument of
//     Theorem 22 (used in tests to certify the structure of optimal duals).
//
// The paper separates dense odd sets with approximate Gomory–Hu trees
// ([2, Lemma 12]); per DESIGN.md substitution 3 we provide an exact
// enumerator for small supports (the deferred-sparsifier supports the
// solver actually feeds it) and a contraction heuristic for larger ones,
// cross-checked against the enumerator in tests.
package oddset

import (
	"sort"

	"repro/internal/graph"
)

// QEdge is a support edge with a non-negative charge q_ij.
type QEdge struct {
	U, V int32
	Q    float64
}

// Instance is one separation problem (Lemma 24): vertex budgets qhat,
// edge charges q, vertex norms b. A set U (with ||U||_b odd,
// 3 <= ||U||_b <= MaxNorm) is *dense* if
//
//	internal(U) > (qhat(U) - (1-Eps)) / 2
//
// and the collection must contain only sets satisfying the weaker
// condition internal(U) >= (qhat(U) - 1) / 2 while intersecting every
// dense set.
type Instance struct {
	N       int
	BNorm   []int // per-vertex b_i (nil = all ones)
	QHat    []float64
	Edges   []QEdge
	MaxNorm int // the 4/ε bound on ||U||_b
	Eps     float64
}

func (in *Instance) bnorm(v int) int {
	if in.BNorm == nil {
		return 1
	}
	return in.BNorm[v]
}

// SetNorm returns ||U||_b.
func (in *Instance) SetNorm(set []int) int {
	s := 0
	for _, v := range set {
		s += in.bnorm(v)
	}
	return s
}

// Internal returns the total edge charge inside the set.
func (in *Instance) Internal(set []int) float64 {
	mask := make(map[int32]bool, len(set))
	for _, v := range set {
		mask[int32(v)] = true
	}
	t := 0.0
	for _, e := range in.Edges {
		if mask[e.U] && mask[e.V] {
			t += e.Q
		}
	}
	return t
}

// QHatSum returns Σ_{i∈U} qhat_i.
func (in *Instance) QHatSum(set []int) float64 {
	t := 0.0
	for _, v := range set {
		t += in.QHat[v]
	}
	return t
}

// IsDense reports the strict density condition (the negation of Lemma
// 24's condition (ii)): internal(U) > (qhat(U) - (1-Eps))/2.
func (in *Instance) IsDense(set []int) bool {
	return in.Internal(set) > (in.QHatSum(set)-(1-in.Eps))/2
}

// MeetsConditionI reports Lemma 24's condition (i):
// internal(U) >= (qhat(U) - 1)/2.
func (in *Instance) MeetsConditionI(set []int) bool {
	return in.Internal(set) >= (in.QHatSum(set)-1)/2-1e-12
}

// Set is a selected odd set with its charge statistics.
type Set struct {
	Members  []int
	Internal float64
	QHatSum  float64
}

// Collect returns a collection of mutually disjoint odd sets satisfying
// Lemma 24's conditions: every returned set meets condition (i), and —
// exactly for small supports, heuristically for large ones — every dense
// odd set intersects the returned collection.
func (in *Instance) Collect() []Set {
	// Count support vertices; exact enumeration if small enough.
	support := in.supportVertices()
	if enumFeasible(len(support), in.MaxNorm) {
		return in.collectExact(support)
	}
	return in.collectHeuristic(support)
}

// supportVertices lists vertices incident to a positive-charge edge.
func (in *Instance) supportVertices() []int {
	seen := make(map[int32]bool)
	for _, e := range in.Edges {
		if e.Q > 0 {
			seen[e.U] = true
			seen[e.V] = true
		}
	}
	out := make([]int, 0, len(seen))
	//lint:ordered key collection, sorted immediately below
	for v := range seen {
		out = append(out, int(v))
	}
	sort.Ints(out)
	return out
}

// enumFeasible gates exact enumeration: C(s, maxNorm) within budget.
func enumFeasible(s, maxNorm int) bool {
	if s <= 3 {
		return true
	}
	if maxNorm > s {
		maxNorm = s
	}
	total := 0.0
	choose := 1.0
	for k := 1; k <= maxNorm; k++ {
		choose *= float64(s-k+1) / float64(k)
		total += choose
		if total > 2e6 {
			return false
		}
	}
	return true
}

// collectExact enumerates every odd candidate set over the support and
// greedily selects disjoint dense sets in decreasing surplus order.
func (in *Instance) collectExact(support []int) []Set {
	type cand struct {
		set     []int
		surplus float64 // internal - (qhat - (1-eps))/2
		in, qh  float64
	}
	var cands []cand
	cur := make([]int, 0, in.MaxNorm)
	// Incremental internal charge tracking via adjacency on support.
	adj := make(map[int64]float64)
	for _, e := range in.Edges {
		k := int64(e.U)<<32 | int64(e.V)
		adj[k] += e.Q
		k2 := int64(e.V)<<32 | int64(e.U)
		adj[k2] += e.Q
	}
	var rec func(start int, norm int, internal, qhat float64)
	rec = func(start int, norm int, internal, qhat float64) {
		if len(cur) >= 3 && norm%2 == 1 {
			surplus := internal - (qhat-(1-in.Eps))/2
			if surplus > 0 {
				cands = append(cands, cand{
					set:     append([]int(nil), cur...),
					surplus: surplus,
					in:      internal,
					qh:      qhat,
				})
			}
		}
		for si := start; si < len(support); si++ {
			v := support[si]
			nb := in.bnorm(v)
			if norm+nb > in.MaxNorm {
				continue
			}
			add := 0.0
			for _, u := range cur {
				add += adj[int64(v)<<32|int64(u)]
			}
			cur = append(cur, v)
			rec(si+1, norm+nb, internal+add, qhat+in.QHat[v])
			cur = cur[:len(cur)-1]
		}
	}
	rec(0, 0, 0, 0)
	sort.Slice(cands, func(i, j int) bool { return cands[i].surplus > cands[j].surplus })
	used := make(map[int]bool)
	var out []Set
	for _, c := range cands {
		ok := true
		for _, v := range c.set {
			if used[v] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, v := range c.set {
			used[v] = true
		}
		out = append(out, Set{Members: c.set, Internal: c.in, QHatSum: c.qh})
	}
	return out
}

// collectHeuristic grows clusters by heaviest-incident-edge contraction
// and keeps odd prefixes that pass the density test.
func (in *Instance) collectHeuristic(support []int) []Set {
	// Adjacency lists over the support.
	adj := make(map[int][]QEdge)
	for _, e := range in.Edges {
		if e.Q <= 0 {
			continue
		}
		adj[int(e.U)] = append(adj[int(e.U)], e)
		adj[int(e.V)] = append(adj[int(e.V)], e)
	}
	used := make(map[int]bool)
	var out []Set
	// Seed clusters from vertices in decreasing weighted degree.
	deg := make(map[int]float64)
	//lint:ordered per-key accumulation over each v's own slice, no cross-key sums
	for v, es := range adj {
		for _, e := range es {
			deg[v] += e.Q
		}
	}
	order := append([]int(nil), support...)
	sort.Slice(order, func(i, j int) bool { return deg[order[i]] > deg[order[j]] })
	for _, seed := range order {
		if used[seed] {
			continue
		}
		cluster := []int{seed}
		inCluster := map[int]bool{seed: true}
		norm := in.bnorm(seed)
		internal := 0.0
		qhat := in.QHat[seed]
		var best *Set
		for norm < in.MaxNorm {
			// Pick the outside neighbor with maximum connection charge.
			gain := make(map[int]float64)
			for _, v := range cluster {
				for _, e := range adj[v] {
					o := int(e.U)
					if o == v {
						o = int(e.V)
					}
					if !inCluster[o] && !used[o] {
						gain[o] += e.Q
					}
				}
			}
			bestV, bestG := -1, 0.0
			//lint:ordered argmax with (max gain, min vertex) tie-break, order-independent
			for o, gn := range gain {
				if gn > bestG || (gn == bestG && bestV != -1 && o < bestV) {
					bestV, bestG = o, gn
				}
			}
			if bestV == -1 {
				break
			}
			cluster = append(cluster, bestV)
			inCluster[bestV] = true
			norm += in.bnorm(bestV)
			internal += bestG
			qhat += in.QHat[bestV]
			if len(cluster) >= 3 && norm%2 == 1 && norm <= in.MaxNorm {
				if internal > (qhat-(1-in.Eps))/2 {
					cp := append([]int(nil), cluster...)
					sort.Ints(cp)
					best = &Set{Members: cp, Internal: internal, QHatSum: qhat}
				}
			}
		}
		if best != nil {
			conflict := false
			for _, v := range best.Members {
				if used[v] {
					conflict = true
					break
				}
			}
			if !conflict {
				for _, v := range best.Members {
					used[v] = true
				}
				out = append(out, *best)
			}
		}
	}
	return out
}

// Disjoint reports whether the sets in the collection are pairwise
// disjoint.
func Disjoint(sets []Set) bool {
	seen := make(map[int]bool)
	for _, s := range sets {
		for _, v := range s.Members {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
	}
	return true
}

// FromGraphCharges builds an Instance from a graph whose edge weights are
// the charges, with uniform vertex budget qhat.
func FromGraphCharges(g *graph.Graph, qhat []float64, maxNorm int, eps float64) *Instance {
	in := &Instance{N: g.N(), QHat: qhat, MaxNorm: maxNorm, Eps: eps}
	bs := make([]int, g.N())
	unit := true
	for v := 0; v < g.N(); v++ {
		bs[v] = g.B(v)
		if bs[v] != 1 {
			unit = false
		}
	}
	if !unit {
		in.BNorm = bs
	}
	for _, e := range g.Edges() {
		in.Edges = append(in.Edges, QEdge{U: e.U, V: e.V, Q: e.W})
	}
	return in
}
