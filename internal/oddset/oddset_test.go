package oddset

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// randomInstance builds a small random separation instance.
func randomInstance(seed uint64, n int) *Instance {
	r := xrand.New(seed)
	in := &Instance{N: n, MaxNorm: 7, Eps: 0.25}
	in.QHat = make([]float64, n)
	for v := 0; v < n; v++ {
		in.QHat[v] = r.Float64() * 3
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bernoulli(0.4) {
				in.Edges = append(in.Edges, QEdge{int32(i), int32(j), r.Float64() * 2})
			}
		}
	}
	return in
}

func TestCollectDisjointAndConditionI(t *testing.T) {
	f := func(seed uint64) bool {
		in := randomInstance(seed, 8)
		sets := in.Collect()
		if !Disjoint(sets) {
			return false
		}
		for _, s := range sets {
			if in.SetNorm(s.Members)%2 == 0 || in.SetNorm(s.Members) > in.MaxNorm {
				return false
			}
			if !in.MeetsConditionI(s.Members) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectExactCoversAllDenseSets(t *testing.T) {
	// Condition (ii): every dense odd set must intersect the collection.
	f := func(seed uint64) bool {
		in := randomInstance(seed, 8)
		sets := in.Collect()
		used := map[int]bool{}
		for _, s := range sets {
			for _, v := range s.Members {
				used[v] = true
			}
		}
		// Enumerate all odd sets up to MaxNorm and check.
		g := graph.New(in.N)
		ok := true
		g.EnumerateOddSets(in.MaxNorm, func(set []int) bool {
			if !in.IsDense(set) {
				return true
			}
			hit := false
			for _, v := range set {
				if used[v] {
					hit = true
					break
				}
			}
			if !hit {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectFindsObviousTriangle(t *testing.T) {
	// A heavy triangle with tiny vertex budgets must be collected.
	in := &Instance{
		N:       5,
		QHat:    []float64{0.1, 0.1, 0.1, 5, 5},
		MaxNorm: 5,
		Eps:     0.25,
		Edges: []QEdge{
			{0, 1, 2}, {1, 2, 2}, {0, 2, 2}, // dense triangle
			{3, 4, 0.1}, // light edge elsewhere
		},
	}
	sets := in.Collect()
	if len(sets) == 0 {
		t.Fatal("no sets collected")
	}
	found := false
	for _, s := range sets {
		sort.Ints(s.Members)
		if len(s.Members) == 3 && s.Members[0] == 0 && s.Members[1] == 1 && s.Members[2] == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("triangle not collected: %v", sets)
	}
}

func TestCollectEmptyWhenSparse(t *testing.T) {
	// Huge vertex budgets: nothing is dense.
	in := &Instance{
		N:       6,
		QHat:    []float64{100, 100, 100, 100, 100, 100},
		MaxNorm: 5,
		Eps:     0.25,
		Edges:   []QEdge{{0, 1, 1}, {1, 2, 1}, {0, 2, 1}},
	}
	if sets := in.Collect(); len(sets) != 0 {
		t.Fatalf("collected %v from sparse instance", sets)
	}
}

func TestCollectHeuristicOnLargerGraph(t *testing.T) {
	// Plant k dense triangles in a big sparse graph; the heuristic must
	// find most of them (all, in this deterministic construction).
	const k = 20
	n := 3*k + 200
	in := &Instance{N: n, MaxNorm: 5, Eps: 0.25}
	in.QHat = make([]float64, n)
	for v := range in.QHat {
		in.QHat[v] = 0.5
	}
	for t3 := 0; t3 < k; t3++ {
		a := 3 * t3
		in.Edges = append(in.Edges,
			QEdge{int32(a), int32(a + 1), 3},
			QEdge{int32(a + 1), int32(a + 2), 3},
			QEdge{int32(a), int32(a + 2), 3})
	}
	// Sparse noise among the remaining vertices.
	r := xrand.New(9)
	for i := 0; i < 400; i++ {
		u := 3*k + r.Intn(200)
		v := 3*k + r.Intn(200)
		if u != v {
			in.Edges = append(in.Edges, QEdge{int32(u), int32(v), 0.01})
		}
	}
	sets := in.collectHeuristic(in.supportVertices())
	if !Disjoint(sets) {
		t.Fatal("heuristic sets not disjoint")
	}
	dense := 0
	for _, s := range sets {
		if !in.MeetsConditionI(s.Members) {
			t.Fatalf("heuristic returned non-(i) set %v", s.Members)
		}
		if len(s.Members) == 3 && s.Members[0] < 3*k {
			dense++
		}
	}
	if dense < k*3/4 {
		t.Fatalf("heuristic found only %d of %d planted triangles", dense, k)
	}
}

func TestHeuristicAgreesWithExactOnDensity(t *testing.T) {
	// On small instances, every dense set found by the heuristic must be
	// found (or intersected) by the exact collection and vice versa.
	for seed := uint64(0); seed < 20; seed++ {
		in := randomInstance(seed, 9)
		exact := in.collectExact(in.supportVertices())
		heur := in.collectHeuristic(in.supportVertices())
		if !Disjoint(heur) {
			t.Fatal("heuristic not disjoint")
		}
		for _, s := range heur {
			if !in.MeetsConditionI(s.Members) {
				t.Fatalf("seed %d: heuristic set fails (i)", seed)
			}
		}
		_ = exact
	}
}

func TestBNormHandling(t *testing.T) {
	in := &Instance{
		N:       4,
		BNorm:   []int{2, 1, 1, 1}, // set {0,1} has norm 3 (odd, size 2 — too small by membership rule)
		QHat:    []float64{0, 0, 0, 0},
		MaxNorm: 5,
		Eps:     0.25,
		Edges:   []QEdge{{0, 1, 5}, {1, 2, 5}, {0, 2, 5}},
	}
	// {0,1,2} has norm 4 (even) — not eligible; {1,2,3} has no edges to 3...
	// {0,1,2,3} has norm 5 (odd) and internal 15.
	sets := in.Collect()
	for _, s := range sets {
		if in.SetNorm(s.Members)%2 == 0 {
			t.Fatalf("even-norm set collected: %v", s.Members)
		}
	}
}

func TestSetOps(t *testing.T) {
	a := []int{1, 2, 3, 5}
	b := []int{3, 4, 5, 7}
	inter, union, ab, ba := setOps(a, b)
	if !equalInts(inter, []int{3, 5}) || !equalInts(union, []int{1, 2, 3, 4, 5, 7}) ||
		!equalInts(ab, []int{1, 2}) || !equalInts(ba, []int{4, 7}) {
		t.Fatalf("setOps wrong: %v %v %v %v", inter, union, ab, ba)
	}
}

func TestCrossingAndLaminar(t *testing.T) {
	if Crossing([]int{1, 2}, []int{3, 4}) {
		t.Fatal("disjoint sets reported crossing")
	}
	if Crossing([]int{1, 2, 3}, []int{2, 3}) {
		t.Fatal("nested sets reported crossing")
	}
	if !Crossing([]int{1, 2}, []int{2, 3}) {
		t.Fatal("crossing sets not detected")
	}
	if !IsLaminar([][]int{{1, 2, 3}, {1, 2}, {4, 5}}) {
		t.Fatal("laminar family rejected")
	}
	if IsLaminar([][]int{{1, 2}, {2, 3}}) {
		t.Fatal("crossing family accepted")
	}
}

func TestUncrossPreservesObjectiveAndCoverage(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 6 + r.Intn(4)
		fam := &WeightedFamily{X: make([]float64, n)}
		for v := range fam.X {
			fam.X[v] = r.Float64()
		}
		// Random odd sets (size 3 or 5) with positive z.
		for s := 0; s < 4; s++ {
			size := 3
			if r.Bernoulli(0.4) {
				size = 5
			}
			perm := r.Perm(n)[:size]
			sort.Ints(perm)
			fam.Sets = append(fam.Sets, perm)
			fam.Z = append(fam.Z, 0.2+r.Float64())
		}
		objBefore := fam.Objective()
		type pair struct{ i, j int }
		var pairs []pair
		var covBefore []float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pairs = append(pairs, pair{i, j})
				covBefore = append(covBefore, fam.Coverage(i, j))
			}
		}
		if !fam.Uncross(1000) {
			return false
		}
		if !IsLaminar(fam.ActiveSets()) {
			return false
		}
		if math.Abs(fam.Objective()-objBefore) > 1e-9 {
			return false
		}
		for k, pr := range pairs {
			if fam.Coverage(pr.i, pr.j) < covBefore[k]-1e-9 {
				return false // coverage must not decrease (feasibility)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFromGraphCharges(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 2.5)
	g.SetB(2, 3)
	in := FromGraphCharges(g, []float64{1, 1, 1, 1}, 5, 0.25)
	if in.N != 4 || len(in.Edges) != 1 || in.Edges[0].Q != 2.5 {
		t.Fatalf("instance wrong: %+v", in)
	}
	if in.bnorm(2) != 3 || in.bnorm(0) != 1 {
		t.Fatal("bnorm wrong")
	}
}
