package oddset

import "sort"

// Laminar-family utilities (Theorem 22). A family of vertex sets is
// laminar if every two members are either disjoint or nested. Theorem 22
// shows optimal duals of LP2 can be uncrossed into a laminar family by
// repeatedly replacing a crossing pair {A, B} with {A-B, B-A} (when
// ||A∩B||_b is even) or {A∪B, A∩B} (odd), preserving objective and
// feasibility.

// setOps computes intersection, union and differences of two sorted
// int slices.
func setOps(a, b []int) (inter, union, aMinusB, bMinusA []int) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			aMinusB = append(aMinusB, a[i])
			union = append(union, a[i])
			i++
		case a[i] > b[j]:
			bMinusA = append(bMinusA, b[j])
			union = append(union, b[j])
			j++
		default:
			inter = append(inter, a[i])
			union = append(union, a[i])
			i++
			j++
		}
	}
	aMinusB = append(aMinusB, a[i:]...)
	union = append(union, a[i:]...)
	bMinusA = append(bMinusA, b[j:]...)
	union = append(union, b[j:]...)
	return
}

// Crossing reports whether sorted sets a and b cross (intersect without
// nesting).
func Crossing(a, b []int) bool {
	inter, _, aMinusB, bMinusA := setOps(a, b)
	return len(inter) > 0 && len(aMinusB) > 0 && len(bMinusA) > 0
}

// IsLaminar reports whether the family (of sorted sets) is laminar.
func IsLaminar(sets [][]int) bool {
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			if Crossing(sets[i], sets[j]) {
				return false
			}
		}
	}
	return true
}

// WeightedFamily is a family of sets with dual multipliers z_U > 0 and
// vertex multipliers x (Theorem 22's objects).
type WeightedFamily struct {
	Sets []([]int) // sorted member lists
	Z    []float64
	X    []float64 // per-vertex duals
	B    []int     // per-vertex norms (nil = ones)
}

func (f *WeightedFamily) bnorm(v int) int {
	if f.B == nil {
		return 1
	}
	return f.B[v]
}

func (f *WeightedFamily) norm(set []int) int {
	s := 0
	for _, v := range set {
		s += f.bnorm(v)
	}
	return s
}

// UncrossOnce finds one crossing pair with positive multipliers and
// applies the Theorem 22 exchange, preserving
//
//	Σ_i b_i x_i + Σ_U floor(||U||_b/2) z_U   (the objective) and
//	x_i + x_j + Σ_{U∋i,j} z_U                (every edge's coverage).
//
// It returns false if the family is already laminar.
func (f *WeightedFamily) UncrossOnce() bool {
	for i := 0; i < len(f.Sets); i++ {
		if f.Z[i] <= 0 {
			continue
		}
		for j := i + 1; j < len(f.Sets); j++ {
			if f.Z[j] <= 0 || !Crossing(f.Sets[i], f.Sets[j]) {
				continue
			}
			z := f.Z[i]
			if f.Z[j] < z {
				z = f.Z[j]
			}
			inter, union, aMinusB, bMinusA := setOps(f.Sets[i], f.Sets[j])
			f.Z[i] -= z
			f.Z[j] -= z
			if f.norm(inter)%2 == 0 {
				// A-B and B-A are odd; raise x on the even intersection.
				f.addSet(aMinusB, z)
				f.addSet(bMinusA, z)
				for _, v := range inter {
					f.X[v] += z
				}
			} else {
				// A∪B and A∩B are odd.
				f.addSet(union, z)
				f.addSet(inter, z)
			}
			f.compact()
			return true
		}
	}
	return false
}

// addSet adds multiplier z to the (sorted) set, merging with an existing
// identical set if present. Sets that are empty or singletons fold into
// nothing (their floor(||U||_b/2) z contribution is handled by the
// caller semantics: a singleton odd set has floor(b/2) possibly > 0 for
// b > 1, so we keep sets of size >= 2; size-1 sets with b=1 contribute 0
// and cover no edges, so they are dropped).
func (f *WeightedFamily) addSet(set []int, z float64) {
	if len(set) < 2 {
		if len(set) == 1 && f.bnorm(set[0]) > 1 {
			// keep: it still contributes floor(b/2) and covers no edge
		} else {
			return
		}
	}
	for k := range f.Sets {
		if equalInts(f.Sets[k], set) {
			f.Z[k] += z
			return
		}
	}
	f.Sets = append(f.Sets, append([]int(nil), set...))
	f.Z = append(f.Z, z)
}

func (f *WeightedFamily) compact() {
	var sets [][]int
	var zs []float64
	for k := range f.Sets {
		if f.Z[k] > 1e-15 {
			sets = append(sets, f.Sets[k])
			zs = append(zs, f.Z[k])
		}
	}
	f.Sets, f.Z = sets, zs
}

// Uncross applies UncrossOnce until laminar (or the iteration bound
// trips, which would indicate a bug — each exchange strictly decreases
// Σ z_U ||U||_b or lexicographic successors per Theorem 22).
func (f *WeightedFamily) Uncross(maxIters int) bool {
	for it := 0; it < maxIters; it++ {
		if !f.UncrossOnce() {
			return true
		}
	}
	return false
}

// ActiveSets returns the sets with positive multiplier, sorted for
// deterministic comparison.
func (f *WeightedFamily) ActiveSets() [][]int {
	var out [][]int
	for k := range f.Sets {
		if f.Z[k] > 1e-15 {
			out = append(out, f.Sets[k])
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessInts(out[i], out[j]) })
	return out
}

// Coverage returns x_i + x_j + Σ_{U∋i,j} z_U for an edge (i, j).
func (f *WeightedFamily) Coverage(i, j int) float64 {
	c := f.X[i] + f.X[j]
	for k, set := range f.Sets {
		if f.Z[k] <= 0 {
			continue
		}
		hasI, hasJ := false, false
		for _, v := range set {
			if v == i {
				hasI = true
			}
			if v == j {
				hasJ = true
			}
		}
		if hasI && hasJ {
			c += f.Z[k]
		}
	}
	return c
}

// Objective returns Σ b_i x_i + Σ floor(||U||_b/2) z_U.
func (f *WeightedFamily) Objective() float64 {
	t := 0.0
	for v, x := range f.X {
		t += float64(f.bnorm(v)) * x
	}
	for k, set := range f.Sets {
		t += f.Z[k] * float64(f.norm(set)/2)
	}
	return t
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessInts(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
