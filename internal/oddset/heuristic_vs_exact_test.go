package oddset

import (
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Cross-checks of the contraction heuristic against the exact enumerator
// on larger randomized supports than the basic tests exercise (DESIGN.md
// substitution 3 promises exactly this validation). Seeds are pinned, so
// the aggregate thresholds are deterministic regression gates, not
// statistical assertions.

// denseInstance builds a random instance over n support vertices whose
// budgets are low enough that dense odd sets actually occur.
func denseInstance(seed uint64, n int, edgeP float64) *Instance {
	r := xrand.New(seed)
	in := &Instance{N: n, MaxNorm: 7, Eps: 0.25}
	in.QHat = make([]float64, n)
	for v := 0; v < n; v++ {
		in.QHat[v] = r.Float64() * 1.5
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bernoulli(edgeP) {
				in.Edges = append(in.Edges, QEdge{int32(i), int32(j), r.Float64() * 2})
			}
		}
	}
	return in
}

// denseSets enumerates every odd set up to MaxNorm and returns the dense
// ones.
func denseSets(in *Instance) [][]int {
	g := graph.New(in.N)
	var out [][]int
	g.EnumerateOddSets(in.MaxNorm, func(set []int) bool {
		if in.IsDense(set) {
			out = append(out, append([]int(nil), set...))
		}
		return true
	})
	return out
}

func intersectsUsed(used map[int]bool, set []int) bool {
	for _, v := range set {
		if used[v] {
			return true
		}
	}
	return false
}

func TestHeuristicVsExactLargerSupports(t *testing.T) {
	const n = 12
	totalDense, heurHit, exactHit := 0, 0, 0
	nonemptyAgreements, exactNonempty := 0, 0
	for seed := uint64(0); seed < 24; seed++ {
		in := denseInstance(seed, n, 0.35)
		support := in.supportVertices()
		heur := in.collectHeuristic(support)
		exact := in.collectExact(support)

		// Structural contract, per seed: disjointness and condition (i)
		// hold unconditionally for both collectors.
		for name, sets := range map[string][]Set{"heuristic": heur, "exact": exact} {
			if !Disjoint(sets) {
				t.Fatalf("seed %d: %s sets not disjoint", seed, name)
			}
			for _, s := range sets {
				if in.SetNorm(s.Members)%2 == 0 || in.SetNorm(s.Members) > in.MaxNorm {
					t.Fatalf("seed %d: %s returned ineligible set %v", seed, name, s.Members)
				}
				if !in.MeetsConditionI(s.Members) {
					t.Fatalf("seed %d: %s set %v fails condition (i)", seed, name, s.Members)
				}
			}
		}

		dense := denseSets(in)
		totalDense += len(dense)
		usedHeur, usedExact := map[int]bool{}, map[int]bool{}
		for _, s := range heur {
			for _, v := range s.Members {
				usedHeur[v] = true
			}
		}
		for _, s := range exact {
			for _, v := range s.Members {
				usedExact[v] = true
			}
		}
		for _, ds := range dense {
			if intersectsUsed(usedHeur, ds) {
				heurHit++
			}
			if intersectsUsed(usedExact, ds) {
				exactHit++
			}
		}
		if len(exact) > 0 {
			exactNonempty++
			if len(heur) > 0 {
				nonemptyAgreements++
			}
		}
	}
	if totalDense == 0 {
		t.Fatal("corpus produced no dense sets; thresholds are vacuous")
	}
	// The exact collector satisfies condition (ii) by construction.
	if exactHit != totalDense {
		t.Fatalf("exact collector missed %d of %d dense sets: condition (ii) broken", totalDense-exactHit, totalDense)
	}
	// The heuristic has no worst-case (ii) guarantee; pin its measured
	// coverage on this corpus so regressions in the contraction logic are
	// caught. Measured at introduction: 99.96% (37486/37501).
	if ratio := float64(heurHit) / float64(totalDense); ratio < 0.99 {
		t.Fatalf("heuristic intersects only %.2f%% of dense sets (%d/%d), was 99.96%% when pinned",
			100*ratio, heurHit, totalDense)
	}
	// Whenever the exact collector finds something, the heuristic must
	// not come back empty-handed on this corpus.
	if exactNonempty == 0 {
		t.Fatal("exact collector never fired; corpus too sparse")
	}
	if nonemptyAgreements != exactNonempty {
		t.Fatalf("heuristic returned nothing on %d of %d seeds where the exact collector found dense sets",
			exactNonempty-nonemptyAgreements, exactNonempty)
	}
}

func TestHeuristicVsExactSurplusQuality(t *testing.T) {
	// The heuristic's captured surplus (Σ internal - (qhat-1)/2 over its
	// sets) must stay within a constant factor of the exact collection's
	// on pinned seeds — it is the quantity the MicroOracle prices.
	const n = 13
	surplus := func(in *Instance, sets []Set) float64 {
		tot := 0.0
		for _, s := range sets {
			tot += s.Internal - (s.QHatSum-1)/2
		}
		return tot
	}
	sumHeur, sumExact := 0.0, 0.0
	for seed := uint64(100); seed < 116; seed++ {
		in := denseInstance(seed, n, 0.3)
		support := in.supportVertices()
		sumHeur += surplus(in, in.collectHeuristic(support))
		sumExact += surplus(in, in.collectExact(support))
	}
	if sumExact <= 0 {
		t.Fatal("exact collections captured no surplus; corpus too sparse")
	}
	if sumHeur < 0.5*sumExact {
		t.Fatalf("heuristic surplus %.3f below half of exact %.3f", sumHeur, sumExact)
	}
}

func TestHeuristicMembersSorted(t *testing.T) {
	// Downstream fingerprinting assumes sorted member lists.
	for seed := uint64(0); seed < 8; seed++ {
		in := denseInstance(seed, 11, 0.4)
		for _, s := range in.collectHeuristic(in.supportVertices()) {
			if !sort.IntsAreSorted(s.Members) {
				t.Fatalf("seed %d: unsorted members %v", seed, s.Members)
			}
		}
	}
}
