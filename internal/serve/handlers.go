// The HTTP surface: thin handlers over the codec (job.go) and the
// queueing machinery (serve.go). Nothing here knows how a solve runs;
// everything speaks JobSpec/JobStatus/ErrorDoc.

package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/match"
)

// maxJobBody bounds a job submission body (the RBG1 upload kind can
// carry whole instances inline).
const maxJobBody = 256 << 20

// routes mounts the endpoint table:
//
//	POST /v1/jobs             submit a job, 202 + {id, status}
//	POST /v1/solve            submit and wait, 200 + full status document
//	GET  /v1/jobs/{id}        status document (any state)
//	GET  /v1/jobs/{id}/result status document once terminal (409 before)
//	GET  /v1/jobs/{id}/events SSE stream of per-round Observer events
//	GET  /v1/algorithms       the algorithm registry
//	GET  /metrics             Prometheus text format
//	GET  /healthz             liveness
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/solve", s.handleSolveSync)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// writeJSON writes one JSON document with the given status.
func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// writeError writes the structured error envelope.
func writeError(w http.ResponseWriter, status int, doc *ErrorDoc) {
	writeJSON(w, status, struct {
		Error *ErrorDoc `json:"error"`
	}{doc})
}

// decodeSpec reads and validates the JSON job envelope; a non-nil
// ErrorDoc means the request was already answered-worthy with 400.
func decodeSpec(r *http.Request) (*JobSpec, *ErrorDoc) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxJobBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, &ErrorDoc{Code: "invalid_json", Message: fmt.Sprintf("decoding job: %v", err)}
	}
	return &spec, nil
}

// submit runs the shared admission path: decode, build, admit. The
// job context is ctx (Background for async submissions, the request
// context for synchronous ones).
func (s *Server) submit(w http.ResponseWriter, r *http.Request, async bool) *job {
	spec, errDoc := decodeSpec(r)
	if errDoc != nil {
		writeError(w, http.StatusBadRequest, errDoc)
		return nil
	}
	ctx := r.Context()
	if async {
		ctx = context.Background()
	}
	j, errDoc := s.buildJob(ctx, spec)
	if errDoc != nil {
		writeError(w, http.StatusBadRequest, errDoc)
		return nil
	}
	status, errDoc := s.admit(j)
	if errDoc != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
		}
		writeError(w, status, errDoc)
		return nil
	}
	return j
}

// handleSubmit is POST /v1/jobs: admit and answer 202 immediately.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if j := s.submit(w, r, true); j != nil {
		writeJSON(w, http.StatusAccepted, j.snapshot())
	}
}

// handleSolveSync is POST /v1/solve: admit, wait for the terminal
// state, and answer with the full status document. The job is tied to
// the request context, so a disconnected client cancels its solve.
func (s *Server) handleSolveSync(w http.ResponseWriter, r *http.Request) {
	j := s.submit(w, r, false)
	if j == nil {
		return
	}
	st, err := j.wait(r.Context())
	if err != nil {
		// The client is gone; the response is a formality.
		writeError(w, http.StatusRequestTimeout, &ErrorDoc{Code: "canceled", Message: err.Error()})
		return
	}
	code := http.StatusOK
	if st.Status == stateFailed {
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, st)
}

// handleStatus is GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, &ErrorDoc{Code: "not_found", Message: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleResult is GET /v1/jobs/{id}/result: the status document once
// the job is terminal, 409 while it is still queued or running.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, &ErrorDoc{Code: "not_found", Message: "no such job"})
		return
	}
	st := j.snapshot()
	if st.Status != stateDone && st.Status != stateFailed {
		writeError(w, http.StatusConflict, &ErrorDoc{Code: "not_done",
			Message: fmt.Sprintf("job %s is %s; poll status or stream events", st.ID, st.Status)})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents is GET /v1/jobs/{id}/events: a server-sent-events stream
// of the job's per-round Observer events. Events already delivered are
// replayed first (the job retains them all), then the stream follows
// live rounds and closes with a terminal "done" event carrying the full
// status document — so the sequence a subscriber sees is bit-identical
// to the in-process Observer callback sequence, no matter when it
// subscribed.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, &ErrorDoc{Code: "not_found", Message: "no such job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, &ErrorDoc{Code: "unsupported", Message: "response writer cannot stream"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ctx := r.Context()
	stop := context.AfterFunc(ctx, func() { j.cond.Broadcast() })
	defer stop()

	next := 0
	for {
		j.mu.Lock()
		for next >= len(j.events) && j.state != stateDone && j.state != stateFailed && ctx.Err() == nil {
			j.cond.Wait()
		}
		pending := append([]match.RoundEvent(nil), j.events[next:]...)
		terminal := j.state == stateDone || j.state == stateFailed
		j.mu.Unlock()
		if ctx.Err() != nil {
			return
		}
		for _, ev := range pending {
			raw, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: round\ndata: %s\n\n", raw)
		}
		next += len(pending)
		flusher.Flush()
		if terminal && next == j.eventCount() {
			raw, err := json.Marshal(j.snapshot())
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", raw)
			flusher.Flush()
			return
		}
	}
}

// handleAlgorithms is GET /v1/algorithms: the registry, so clients can
// discover valid JobSpec.Algorithm values.
func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Default    string                `json:"default"`
		Algorithms []match.AlgorithmInfo `json:"algorithms"`
	}{s.defaultAlgo, match.Algorithms()})
}

// handleMetrics is GET /metrics: Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	warmEntries := 0
	if s.warm != nil {
		warmEntries = s.warm.size()
	}
	ps := s.pool.Stats()
	s.metrics.render(w, gauges{
		queueDepth:   len(s.queue),
		poolSessions: ps.Sessions,
		poolQueued:   ps.Queued,
		poolInFlight: ps.InFlight,
		warmEntries:  warmEntries,
	})
}

// handleHealth is GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}
