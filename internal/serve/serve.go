// Package serve is the network serving layer over match.Pool: the
// HTTP/JSON front end command matchd mounts. It turns the in-process
// serving fleet of PR 5 into something callers reach over a socket —
// the paper's "heavy traffic" posture — while keeping the protocol
// layer deliberately thin: the wire codec (job.go) is separated from
// the handlers (handlers.go), which are separated from the queueing and
// solving machinery (this file), so a second protocol (gRPC) can reuse
// everything below the handlers.
//
// The serving pipeline is:
//
//	handler → admit (bounded FIFO queue, 429 + Retry-After when deep)
//	        → dispatcher (single goroutine: strict FIFO into the pool,
//	          per-tenant budget clamping, warm-dual fingerprint lookup)
//	        → match.Pool (fixed fleet of reusable solve sessions)
//	        → awaiter (result classification, warm-dual store, metrics)
//
// Every job's per-round Observer events are retained on the job and
// replayable, so the SSE stream (GET /v1/jobs/{id}/events) delivers the
// exact event sequence an in-process Observer would have seen — late
// subscribers included. Warm-dual reuse is keyed by an instance
// fingerprint (n, ΣB, m, ε, W*, content hash): a job whose fingerprint
// matches a completed solve starts from that solve's dual snapshot
// (WithInitialDuals) and converges in a round; any perturbation changes
// the fingerprint and falls back to the certified cold start.
package serve

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/match"
)

// ErrServerClosed is the error jobs still queued in the admission queue
// are answered with when the server drains: their solve never started
// and never will. Jobs already handed to the pool finish normally.
var ErrServerClosed = errors.New("serve: server closed before the job ran")

// Config parameterizes a Server. The zero value is runnable: two
// sessions, a 64-deep admission queue, default solver options, warm
// cache on.
type Config struct {
	// PoolSize is the number of solve sessions in the fleet (default 2).
	PoolSize int
	// QueueLimit bounds the admission queue: jobs beyond it are rejected
	// with 429 + Retry-After instead of queued (default 64).
	QueueLimit int
	// Options is the base solver configuration every session is built
	// with (match.New options). Per-job spec fields override per job.
	Options []match.Option
	// DefaultBudget caps every job's resource budget when its tenant has
	// no entry in TenantBudgets; zero axes are uncapped.
	DefaultBudget match.Budget
	// TenantBudgets caps budgets per tenant name: a job may only tighten
	// its tenant's cap, never exceed it.
	TenantBudgets map[string]match.Budget
	// WarmCacheSize bounds the warm-dual fingerprint cache (default 256;
	// negative disables warm reuse entirely).
	WarmCacheSize int
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// JobHistory bounds how many finished jobs remain queryable before
	// the oldest are evicted (default 1024).
	JobHistory int
}

// Server is one serving instance: an admission queue, a dispatcher, a
// match.Pool fleet, a warm-dual cache and a metrics registry behind an
// http.Handler. Create with New, mount Handler, stop with Close.
type Server struct {
	cfg         Config
	defaultEps  float64
	defaultAlgo string
	pool        *match.Pool
	mux         *http.ServeMux
	queue       chan *job
	metrics     *metrics
	warm        *warmCache

	mu      sync.Mutex
	closed  bool
	pending sync.WaitGroup // admits between the closed-check and their enqueue
	jobs    map[string]*job
	done    []string // finished job ids in completion order, for history eviction
	seq     int64

	draining       atomic.Bool
	dispatcherDone chan struct{}
	awaitWG        sync.WaitGroup
}

// New builds and starts a Server (its dispatcher goroutine runs until
// Close). The configuration is validated the same way match.New
// validates solver options.
func New(cfg Config) (*Server, error) {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 2
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 64
	}
	if cfg.WarmCacheSize == 0 {
		cfg.WarmCacheSize = 256
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.JobHistory <= 0 {
		cfg.JobHistory = 1024
	}
	probe, err := match.New(cfg.Options...)
	if err != nil {
		return nil, err
	}
	pool, err := match.NewPool(cfg.PoolSize, cfg.Options...)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:            cfg,
		defaultEps:     probe.Eps(),
		defaultAlgo:    probe.Algorithm(),
		pool:           pool,
		queue:          make(chan *job, cfg.QueueLimit),
		metrics:        newMetrics(),
		jobs:           make(map[string]*job),
		dispatcherDone: make(chan struct{}),
	}
	if cfg.WarmCacheSize > 0 {
		s.warm = newWarmCache(cfg.WarmCacheSize)
	}
	s.mux = s.routes()
	go s.dispatch()
	return s, nil
}

// Handler returns the server's HTTP surface (see routes in handlers.go
// for the endpoint list).
func (s *Server) Handler() http.Handler { return s.mux }

// QueueDepth returns how many admitted jobs wait in the admission queue
// (before the pool's own queue).
func (s *Server) QueueDepth() int { return len(s.queue) }

// Close drains the server: no further job is admitted (submissions get
// 503), jobs already handed to the pool — in flight or in the pool's
// own queue — finish and keep their results queryable, and jobs still
// in the admission queue are failed with ErrServerClosed. Close returns
// once the fleet has drained; it is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		s.draining.Store(true)
		s.pending.Wait()
		close(s.queue)
	}
	<-s.dispatcherDone
	s.pool.Close()
	s.awaitWG.Wait()
}

// admit registers the job and enqueues it, applying admission control:
// a full queue answers 429 (the caller adds Retry-After), a closed
// server 503. On success the job is queryable immediately.
func (s *Server) admit(j *job) (int, *ErrorDoc) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		j.discard()
		return http.StatusServiceUnavailable, &ErrorDoc{Code: "server_closed", Message: "server is shutting down"}
	}
	s.pending.Add(1)
	s.seq++
	j.id = fmt.Sprintf("j-%06d", s.seq)
	s.jobs[j.id] = j
	s.mu.Unlock()
	defer s.pending.Done()
	select {
	case s.queue <- j:
		s.metrics.admitted()
		return http.StatusAccepted, nil
	default:
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		s.metrics.rejected()
		j.discard()
		return http.StatusTooManyRequests, &ErrorDoc{
			Code:    "queue_full",
			Message: fmt.Sprintf("admission queue is full (%d jobs deep); retry later", s.cfg.QueueLimit),
		}
	}
}

// lookup returns a queryable job by id.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// dispatch is the single dispatcher goroutine: strict FIFO from the
// admission queue into the pool (one serialized Submit preserves
// arrival order even when the pool's own queue is saturated — blocking
// here IS the backpressure that keeps the admission queue deep enough
// for 429s to fire). During a drain it fails the remaining queued jobs
// instead of submitting them.
func (s *Server) dispatch() {
	defer close(s.dispatcherDone)
	for j := range s.queue {
		if s.draining.Load() {
			j.finish(nil, ErrServerClosed)
			s.retire(j.id)
			continue
		}
		j.markRunning()
		ch := s.pool.Submit(j.ctx, j.src, s.jobExtras(j)...)
		s.awaitWG.Add(1)
		go s.await(j, ch)
	}
}

// jobExtras assembles the per-job options handed to Pool.Submit: the
// clamped budget, the job itself as the Observer (it retains every
// RoundEvent for the SSE stream), and — when the fingerprint cache
// holds a completed solve of the identical instance — the warm-dual
// seed.
func (s *Server) jobExtras(j *job) []match.Option {
	extra := append([]match.Option{}, j.opts...)
	if !j.budget.IsZero() {
		extra = append(extra, match.WithBudget(j.budget))
	}
	extra = append(extra, match.WithObserver(j))
	if j.warmEligible && s.warm != nil {
		if prev := s.warm.get(j.fp); prev != nil {
			extra = append(extra, match.WithInitialDuals(prev))
			j.setWarmHit()
			s.metrics.warm(true)
		} else {
			s.metrics.warm(false)
		}
	}
	return extra
}

// await consumes one pool result: classifies it onto the job, feeds the
// warm cache and the metrics, and evicts old history.
func (s *Server) await(j *job, ch <-chan match.JobResult) {
	defer s.awaitWG.Done()
	r := <-ch
	if j.warmEligible && s.warm != nil && r.Err == nil && r.Result != nil {
		s.warm.put(j.fp, r.Result)
	}
	j.finish(r.Result, r.Err)
	j.mu.Lock()
	status, wall := j.solveStatus, j.doneAt.Sub(j.startedAt).Seconds()
	if j.budgetErr != nil {
		s.metrics.tripped(string(j.budgetErr.Axis))
	}
	j.mu.Unlock()
	s.metrics.solved(status, wall)
	s.retire(j.id)
}

// retire records a finished job for history eviction and drops the
// oldest finished jobs beyond the configured bound.
func (s *Server) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done = append(s.done, id)
	for len(s.done) > s.cfg.JobHistory {
		delete(s.jobs, s.done[0])
		s.done = s.done[1:]
	}
}
