// Warm-dual serving: repeated solves of a fingerprint-identical
// instance are seeded from the previous solve's duals and converge to
// a single round, while any perturbation of the instance changes the
// fingerprint and gets the certified cold start. The chain mirrors the
// arXiv:2107.09770 learned-duals recipe, served from a cache instead
// of a predictor.

package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/stream"
	"repro/match"
)

// solveSync posts one synchronous solve and decodes the document.
func solveSync(t *testing.T, base string, spec JobSpec) JobStatus {
	t.Helper()
	code, body := postJSON(t, base+"/v1/solve", spec)
	if code != http.StatusOK {
		t.Fatalf("solve: HTTP %d, body %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestWarmChainConvergesToOneRound pins the headline serving win: the
// cold solve takes its full trajectory, the first warm solve is seeded
// and strictly cheaper, and the chain reaches the one-round fixed
// point — certified through the SSE stream, not just the counters.
func TestWarmChainConvergesToOneRound(t *testing.T) {
	_, ts := startServer(t, Config{})
	spec := JobSpec{Source: edgesSpec(testGraph(3))}

	cold := solveSync(t, ts.URL, spec)
	if cold.WarmHit {
		t.Fatal("first solve claims a warm hit on an empty cache")
	}
	if cold.Rounds < 2 {
		t.Fatalf("cold solve took %d rounds; the chain needs a trajectory", cold.Rounds)
	}

	warm := solveSync(t, ts.URL, spec)
	if !warm.WarmHit {
		t.Fatal("second solve of the identical instance missed the warm cache")
	}
	if warm.Rounds >= cold.Rounds {
		t.Fatalf("warm solve took %d rounds, cold took %d; seeding bought nothing", warm.Rounds, cold.Rounds)
	}
	if warm.Result == nil || warm.Result.Weight != cold.Result.Weight {
		t.Fatalf("warm result %v, cold result %v: seeding changed the answer", warm.Result, cold.Result)
	}

	// Each solve refreshes the cache with sharper duals; the chain must
	// hit the one-round fixed point and stay there.
	last, fixedAt := warm, -1
	for i := 0; i < 6; i++ {
		last = solveSync(t, ts.URL, spec)
		if !last.WarmHit {
			t.Fatalf("chain solve %d missed the warm cache", i+3)
		}
		if last.Rounds == 1 {
			fixedAt = i + 3
			break
		}
	}
	if fixedAt < 0 {
		t.Fatalf("chain never reached the one-round fixed point (last solve: %d rounds)", last.Rounds)
	}
	again := solveSync(t, ts.URL, spec)
	if again.Rounds != 1 {
		t.Fatalf("fixed point is not fixed: solve after convergence took %d rounds", again.Rounds)
	}

	// Certify the one-round claim through the event stream: the job's
	// SSE replay must hold exactly one round event.
	id := submitJob(t, ts.URL, spec)
	st := waitDone(t, ts.URL, id)
	if st.Rounds != 1 {
		t.Fatalf("async converged solve took %d rounds", st.Rounds)
	}
	events := decodeRounds(t, readSSE(t, ts.URL+"/v1/jobs/"+id+"/events").rounds)
	if len(events) != 1 || events[0].Round != 1 {
		t.Fatalf("streamed %d events (first %+v), want exactly one round", len(events), events)
	}
	if st.Result.Weight != cold.Result.Weight {
		t.Errorf("converged weight %v differs from cold %v", st.Result.Weight, cold.Result.Weight)
	}
}

// TestWarmPerturbationColdStarts pins the fingerprint boundary: one
// reweighted edge changes the content hash, so the solve must miss the
// cache and run the full certified cold trajectory.
func TestWarmPerturbationColdStarts(t *testing.T) {
	g := testGraph(3)
	_, ts := startServer(t, Config{})

	solveSync(t, ts.URL, JobSpec{Source: edgesSpec(g)})
	warm := solveSync(t, ts.URL, JobSpec{Source: edgesSpec(g)})
	if !warm.WarmHit {
		t.Fatal("identical re-solve missed the cache; perturbation test has no baseline")
	}

	perturbed := edgesSpec(g)
	perturbed.Edges[7][2] += 0.25
	got := solveSync(t, ts.URL, JobSpec{Source: perturbed})
	if got.WarmHit {
		t.Fatal("perturbed instance claims a warm hit")
	}
	// The certified cold start runs the same trajectory length a fresh
	// in-process solve of the perturbed instance does.
	pg := testGraph(3)
	e := pg.Edges()
	e[7].W += 0.25
	want, err := match.Solve(t.Context(), stream.NewEdgeStream(pg), testOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != want.Stats.SamplingRounds {
		t.Errorf("perturbed solve took %d rounds, in-process cold solve took %d",
			got.Rounds, want.Stats.SamplingRounds)
	}
	if got.Result.Weight != want.Weight {
		t.Errorf("perturbed weight %v, in-process %v", got.Result.Weight, want.Weight)
	}
}

// TestWarmOptOut pins the per-job switch: warmStart=false skips the
// cache both ways (no seed consumed, no entry fed), and a disabled
// cache (WarmCacheSize < 0) never warms anything.
func TestWarmOptOut(t *testing.T) {
	spec := JobSpec{Source: edgesSpec(testGraph(3))}
	f := false
	optOut := spec
	optOut.WarmStart = &f

	_, ts := startServer(t, Config{})
	cold := solveSync(t, ts.URL, spec)
	got := solveSync(t, ts.URL, optOut)
	if got.WarmHit {
		t.Fatal("opted-out solve claims a warm hit")
	}
	if got.Rounds != cold.Rounds {
		t.Errorf("opted-out solve took %d rounds, cold %d", got.Rounds, cold.Rounds)
	}

	_, ts2 := startServer(t, Config{WarmCacheSize: -1})
	solveSync(t, ts2.URL, spec)
	if again := solveSync(t, ts2.URL, spec); again.WarmHit {
		t.Fatal("warm hit with the cache disabled")
	}
}

// TestWarmMetrics pins the observable counters: one miss then one hit,
// and a populated cache gauge.
func TestWarmMetrics(t *testing.T) {
	_, ts := startServer(t, Config{})
	spec := JobSpec{Source: edgesSpec(testGraph(3))}
	solveSync(t, ts.URL, spec)
	solveSync(t, ts.URL, spec)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"matchd_warm_hits_total 1",
		"matchd_warm_misses_total 1",
		"matchd_warm_cache_entries 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

// TestWarmCacheEviction unit-tests the FIFO fingerprint cache: the
// oldest distinct key falls out at capacity, refreshing an existing
// key keeps its position, and get answers nil past eviction.
func TestWarmCacheEviction(t *testing.T) {
	c := newWarmCache(2)
	k := func(n int) fpKey { return fpKey{n: n} }
	r1, r2, r3 := &match.Result{}, &match.Result{}, &match.Result{}

	c.put(k(1), r1)
	c.put(k(2), r2)
	if c.size() != 2 {
		t.Fatalf("size = %d, want 2", c.size())
	}
	// Refreshing key 1 must not evict anything or reorder the queue.
	c.put(k(1), r3)
	if got := c.get(k(1)); got != r3 {
		t.Fatal("refresh did not replace the entry")
	}
	if c.size() != 2 {
		t.Fatalf("size after refresh = %d, want 2", c.size())
	}
	// A third distinct key evicts the oldest (key 1, inserted first).
	c.put(k(3), r3)
	if c.get(k(1)) != nil {
		t.Error("oldest key survived eviction")
	}
	if c.get(k(2)) == nil || c.get(k(3)) == nil {
		t.Error("younger keys were evicted")
	}
	if c.size() != 2 {
		t.Errorf("size = %d, want 2", c.size())
	}
}
