// The wire codec: the JSON job envelope callers POST, the status
// document they read back, and the translation of both into the match
// package's types. Handlers never touch match options directly and the
// queueing machinery never touches JSON — this file is the seam a
// second protocol (gRPC) would reimplement.

package serve

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/match"
)

// JobSpec is the wire form of one solve job (the body of POST /v1/jobs
// and POST /v1/solve). Zero-valued fields inherit the server's base
// solver configuration.
type JobSpec struct {
	// Tenant names the submitting tenant; it selects the budget cap the
	// server clamps this job's budget to.
	Tenant string `json:"tenant,omitempty"`
	// Algorithm selects a registry algorithm ("" = server default).
	Algorithm string `json:"algorithm,omitempty"`
	// Eps overrides the accuracy target ε (0 = server default).
	Eps float64 `json:"eps,omitempty"`
	// SpaceExponent overrides the space exponent p (0 = server default).
	SpaceExponent float64 `json:"spaceExponent,omitempty"`
	// Seed overrides the solve seed (nil = server default).
	Seed *uint64 `json:"seed,omitempty"`
	// Budget bounds the solve's resources; it is clamped against the
	// tenant's cap. Zero axes are unlimited (up to the cap).
	Budget match.Budget `json:"budget,omitempty"`
	// WarmStart opts in/out of warm-dual reuse via the server's
	// fingerprint cache (nil = on, for the dual-primal algorithm).
	WarmStart *bool `json:"warmStart,omitempty"`
	// Source describes the instance.
	Source SourceSpec `json:"source"`
}

// SourceSpec is the wire form of an instance: exactly one of the three
// kinds the serving layer accepts.
type SourceSpec struct {
	// Kind is "edges" (inline edge list), "gen" (named generator spec)
	// or "rbg1" (uploaded RBG1 binary).
	Kind string `json:"kind"`

	// N is the vertex count (kinds "edges" and "gen").
	N int `json:"n,omitempty"`
	// Edges holds [u, v, w] triples (kind "edges"); u and v are
	// 0-based vertex indices.
	Edges [][]float64 `json:"edges,omitempty"`
	// B holds optional per-vertex capacities, length N (kind "edges").
	B []int `json:"b,omitempty"`

	// M is the edge count (kind "gen").
	M int `json:"m,omitempty"`
	// Weights selects the edge-weight law: unit|uniform|powers|exp
	// (kind "gen"; default uniform).
	Weights string `json:"weights,omitempty"`
	// WMax is the maximum weight for the uniform law (kind "gen").
	WMax float64 `json:"wmax,omitempty"`
	// Seed drives the generator (kind "gen").
	Seed uint64 `json:"seed,omitempty"`
	// BMax > 1 assigns pseudo-random capacities in [1, BMax] (kind "gen").
	BMax int `json:"bmax,omitempty"`

	// DataBase64 is the base64-encoded RBG1 file content (kind "rbg1").
	// The server spools it to a temp file and solves it out-of-core.
	DataBase64 string `json:"dataBase64,omitempty"`
}

// ErrorDoc is the structured error body every non-2xx response carries
// (wrapped as {"error": {...}}).
type ErrorDoc struct {
	// Code is a stable machine-readable cause: invalid_json, invalid_job,
	// queue_full, server_closed, not_found, not_done, unsupported,
	// canceled, solve_failed.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// Instance summarizes the decoded instance in job status documents.
type Instance struct {
	N      int `json:"n"`
	M      int `json:"m"`
	TotalB int `json:"totalB"`
}

// JobStatus is the wire form of a job's state (GET /v1/jobs/{id}, the
// body of a finished POST /v1/solve, and the SSE terminal event).
type JobStatus struct {
	ID        string   `json:"id"`
	Tenant    string   `json:"tenant,omitempty"`
	Status    string   `json:"status"` // queued | running | done | failed
	Algorithm string   `json:"algorithm"`
	Instance  Instance `json:"instance"`
	// Rounds counts the Observer events delivered so far (it grows while
	// the job runs).
	Rounds int `json:"rounds"`
	// WarmHit reports that the solve was seeded from the warm-dual
	// fingerprint cache.
	WarmHit bool `json:"warmHit,omitempty"`
	// QueueMS and SolveMS are the measured queue wait and solve wall
	// time (SolveMS only once the job finished).
	QueueMS float64 `json:"queueMs,omitempty"`
	SolveMS float64 `json:"solveMs,omitempty"`
	// Result is the solve's outcome (done jobs; also present on failed
	// jobs that aborted with a best-so-far matching).
	Result *match.Result `json:"result,omitempty"`
	// BudgetExceeded names the tripped axis when the job ran out of
	// budget — the Result then holds the best-so-far matching and the
	// job still counts as done.
	BudgetExceeded *match.BudgetError `json:"budgetExceeded,omitempty"`
	// Error is set on failed jobs.
	Error *ErrorDoc `json:"error,omitempty"`
}

// Job states and solve-outcome metric labels.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"

	solveOK       = "ok"
	solveBudget   = "budget"
	solveCanceled = "canceled"
	solveFailed   = "failed"
)

// job is one admitted solve: the decoded spec, the built Source, the
// per-job options, and the observable state machine (queued → running →
// done|failed) the status/result/SSE handlers read. The job itself is
// the solve's Observer: events append under mu and cond broadcasts to
// SSE followers and synchronous waiters.
type job struct {
	id           string
	tenant       string
	algo         string
	src          match.Source
	cleanup      func()
	inst         Instance
	opts         []match.Option // spec-derived extras (eps, seed, algorithm, ...)
	budget       match.Budget   // clamped against the tenant cap
	fp           fpKey
	warmEligible bool
	ctx          context.Context

	mu          sync.Mutex
	cond        *sync.Cond
	state       string
	solveStatus string // metric label, set with state done/failed
	events      []match.RoundEvent
	result      *match.Result
	budgetErr   *match.BudgetError
	errDoc      *ErrorDoc
	warmHit     bool
	queuedAt    time.Time
	startedAt   time.Time
	doneAt      time.Time
}

// buildJob decodes a spec into a runnable job: source construction,
// option mapping, validation (via match.New on the combined options, so
// a job that admits never fails for configuration reasons), tenant
// budget clamping and — when warm-eligible — the instance fingerprint.
// ctx bounds the job's whole lifetime (Background for async jobs, the
// request context for synchronous ones). The returned *ErrorDoc is nil
// exactly when the job is runnable.
func (s *Server) buildJob(ctx context.Context, spec *JobSpec) (*job, *ErrorDoc) {
	src, cleanup, errDoc := s.buildSource(&spec.Source)
	if errDoc != nil {
		return nil, errDoc
	}
	j := &job{
		tenant:   spec.Tenant,
		algo:     spec.Algorithm,
		src:      src,
		cleanup:  cleanup,
		inst:     Instance{N: src.N(), M: src.Len(), TotalB: src.TotalB()},
		ctx:      ctx,
		state:    stateQueued,
		queuedAt: time.Now(),
	}
	j.cond = sync.NewCond(&j.mu)
	if j.algo == "" {
		j.algo = s.defaultAlgo
	}
	eps := s.defaultEps
	if spec.Eps != 0 {
		eps = spec.Eps
		j.opts = append(j.opts, match.WithEps(spec.Eps))
	}
	if spec.SpaceExponent != 0 {
		j.opts = append(j.opts, match.WithSpaceExponent(spec.SpaceExponent))
	}
	if spec.Seed != nil {
		j.opts = append(j.opts, match.WithSeed(*spec.Seed))
	}
	if spec.Algorithm != "" {
		j.opts = append(j.opts, match.WithAlgorithm(spec.Algorithm))
	}
	j.budget = clampBudget(spec.Budget, s.tenantCap(spec.Tenant))
	if err := s.validateJob(j); err != nil {
		j.discard()
		return nil, &ErrorDoc{Code: "invalid_job", Message: err.Error()}
	}
	warmWanted := spec.WarmStart == nil || *spec.WarmStart
	if warmWanted && s.warm != nil && j.algo == match.DefaultAlgorithm {
		j.fp = fingerprintSource(src, j.algo, eps)
		j.warmEligible = true
	}
	return j, nil
}

// validateJob runs the combined option set through match.New so every
// configuration error surfaces as a 400 at admission, never as a failed
// job later.
func (s *Server) validateJob(j *job) error {
	opts := append(append([]match.Option{}, s.cfg.Options...), j.opts...)
	opts = append(opts, match.WithBudget(j.budget))
	_, err := s.probeSolver(opts)
	return err
}

// probeSolver exists as a seam for validateJob; match.New carries all
// the validation rules.
func (s *Server) probeSolver(opts []match.Option) (*match.Solver, error) {
	return match.New(opts...)
}

// tenantCap resolves the budget cap for a tenant: its TenantBudgets
// entry, else the server-wide default cap.
func (s *Server) tenantCap(tenant string) match.Budget {
	if cap, ok := s.cfg.TenantBudgets[tenant]; ok {
		return cap
	}
	return s.cfg.DefaultBudget
}

// clampBudget tightens a requested budget against a cap, axis by axis:
// an uncapped axis passes through, a capped axis is at most the cap
// (a zero = unlimited request collapses to the cap).
func clampBudget(req, cap match.Budget) match.Budget {
	clamp := func(want, limit int) int {
		if limit == 0 {
			return want
		}
		if want == 0 || want > limit {
			return limit
		}
		return want
	}
	return match.Budget{
		Passes:     clamp(req.Passes, cap.Passes),
		Rounds:     clamp(req.Rounds, cap.Rounds),
		SpaceWords: clamp(req.SpaceWords, cap.SpaceWords),
	}
}

// buildSource turns a SourceSpec into a Source plus its cleanup.
func (s *Server) buildSource(spec *SourceSpec) (match.Source, func(), *ErrorDoc) {
	bad := func(format string, a ...any) (match.Source, func(), *ErrorDoc) {
		return nil, nil, &ErrorDoc{Code: "invalid_job", Message: fmt.Sprintf(format, a...)}
	}
	switch spec.Kind {
	case "edges":
		if spec.N <= 0 {
			return bad("source.n must be >= 1 for kind edges, got %d", spec.N)
		}
		if len(spec.Edges) == 0 {
			return bad("source.edges must hold at least one [u, v, w] triple")
		}
		g := graph.New(spec.N)
		for i, e := range spec.Edges {
			if len(e) != 3 {
				return bad("source.edges[%d] must be a [u, v, w] triple, got %d elements", i, len(e))
			}
			u, v, w := e[0], e[1], e[2]
			if u != float64(int(u)) || v != float64(int(v)) {
				return bad("source.edges[%d] endpoints must be integers, got [%v, %v]", i, u, v)
			}
			if err := g.AddEdge(int(u), int(v), w); err != nil {
				return bad("source.edges[%d]: %v", i, err)
			}
		}
		if len(spec.B) > 0 {
			if len(spec.B) != spec.N {
				return bad("source.b must have length n=%d, got %d", spec.N, len(spec.B))
			}
			for v, b := range spec.B {
				if b < 1 {
					return bad("source.b[%d] = %d must be >= 1", v, b)
				}
				g.SetB(v, b)
			}
		}
		return stream.NewEdgeStream(g), nil, nil
	case "gen":
		if spec.M <= 0 {
			return bad("source.m must be >= 1 for kind gen, got %d", spec.M)
		}
		wc, err := weightConfig(spec)
		if err != nil {
			return bad("%v", err)
		}
		src, err := stream.NewGen(stream.GenSpec{
			N: spec.N, M: spec.M, Weights: wc, Seed: spec.Seed, BMax: spec.BMax,
		})
		if err != nil {
			return bad("source.gen: %v", err)
		}
		return src, nil, nil
	case "rbg1":
		if spec.DataBase64 == "" {
			return bad("source.dataBase64 must hold the RBG1 file content for kind rbg1")
		}
		raw, err := base64.StdEncoding.DecodeString(spec.DataBase64)
		if err != nil {
			return bad("source.dataBase64 is not valid base64: %v", err)
		}
		tmp, err := os.CreateTemp("", "matchd-*.rbg")
		if err != nil {
			return nil, nil, &ErrorDoc{Code: "solve_failed", Message: fmt.Sprintf("spooling upload: %v", err)}
		}
		path := tmp.Name()
		if _, err := tmp.Write(raw); err == nil {
			err = tmp.Close()
		} else {
			tmp.Close()
		}
		if err != nil {
			os.Remove(path)
			return nil, nil, &ErrorDoc{Code: "solve_failed", Message: fmt.Sprintf("spooling upload: %v", err)}
		}
		src, err := stream.OpenBinary(path)
		if err != nil {
			os.Remove(path)
			return bad("source.dataBase64 is not a valid RBG1 file: %v", err)
		}
		return src, func() { src.Close(); os.Remove(path) }, nil
	default:
		return bad("source.kind must be edges, gen or rbg1, got %q", spec.Kind)
	}
}

// weightConfig maps the wire weight-law name onto graph.WeightConfig
// (the same vocabulary matchsolve's -dist flag speaks).
func weightConfig(spec *SourceSpec) (graph.WeightConfig, error) {
	switch spec.Weights {
	case "", "uniform":
		return graph.WeightConfig{Mode: graph.UniformWeights, WMax: spec.WMax}, nil
	case "unit":
		return graph.WeightConfig{Mode: graph.UnitWeights}, nil
	case "powers":
		return graph.WeightConfig{Mode: graph.PowersOf}, nil
	case "exp":
		return graph.WeightConfig{Mode: graph.ExpWeights}, nil
	default:
		return graph.WeightConfig{}, fmt.Errorf("source.weights must be unit, uniform, powers or exp, got %q", spec.Weights)
	}
}

// OnRound implements match.Observer: the job retains every event so the
// SSE stream can replay the exact in-process sequence, late subscribers
// included.
func (j *job) OnRound(ev match.RoundEvent) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	j.mu.Unlock()
	j.cond.Broadcast()
}

// markRunning transitions queued → running at dispatch time.
func (j *job) markRunning() {
	j.mu.Lock()
	j.state = stateRunning
	j.startedAt = time.Now()
	j.mu.Unlock()
	j.cond.Broadcast()
}

// setWarmHit records that the dispatcher seeded this job from the
// fingerprint cache.
func (j *job) setWarmHit() {
	j.mu.Lock()
	j.warmHit = true
	j.mu.Unlock()
}

// finish classifies a solve outcome onto the job and wakes every
// waiter. A budget trip is a bounded answer — state done, with the
// tripped axis in the status document — matching the library contract.
func (j *job) finish(res *match.Result, err error) {
	j.mu.Lock()
	if j.startedAt.IsZero() {
		j.startedAt = time.Now()
	}
	j.doneAt = time.Now()
	j.result = res
	var be *match.BudgetError
	switch {
	case err == nil:
		j.state, j.solveStatus = stateDone, solveOK
	case errors.As(err, &be):
		j.state, j.solveStatus = stateDone, solveBudget
		j.budgetErr = be
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state, j.solveStatus = stateFailed, solveCanceled
		j.errDoc = &ErrorDoc{Code: "canceled", Message: err.Error()}
	case errors.Is(err, ErrServerClosed) || errors.Is(err, match.ErrPoolClosed):
		j.state, j.solveStatus = stateFailed, solveFailed
		j.errDoc = &ErrorDoc{Code: "server_closed", Message: ErrServerClosed.Error()}
	case errors.Is(err, match.ErrUnsupported):
		j.state, j.solveStatus = stateFailed, solveFailed
		j.errDoc = &ErrorDoc{Code: "unsupported", Message: err.Error()}
	default:
		j.state, j.solveStatus = stateFailed, solveFailed
		j.errDoc = &ErrorDoc{Code: "solve_failed", Message: err.Error()}
	}
	j.mu.Unlock()
	j.cond.Broadcast()
	j.discard()
}

// discard releases the job's source resources (the spooled RBG1 temp
// file); safe to call more than once.
func (j *job) discard() {
	if j.cleanup != nil {
		j.cleanup()
		j.cleanup = nil
	}
}

// eventCount returns how many Observer events the job has retained.
func (j *job) eventCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// snapshot renders the job's current state as the wire status document.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:             j.id,
		Tenant:         j.tenant,
		Status:         j.state,
		Algorithm:      j.algo,
		Instance:       j.inst,
		Rounds:         len(j.events),
		WarmHit:        j.warmHit,
		Result:         j.result,
		BudgetExceeded: j.budgetErr,
		Error:          j.errDoc,
	}
	if !j.startedAt.IsZero() {
		st.QueueMS = float64(j.startedAt.Sub(j.queuedAt).Microseconds()) / 1000
	}
	if !j.doneAt.IsZero() {
		st.SolveMS = float64(j.doneAt.Sub(j.startedAt).Microseconds()) / 1000
	}
	return st
}

// wait blocks until the job reaches a terminal state or ctx is done,
// returning the final status document. A second goroutine nudges the
// condition variable when ctx fires so the wait never outlives the
// caller.
func (j *job) wait(ctx context.Context) (JobStatus, error) {
	stop := context.AfterFunc(ctx, func() { j.cond.Broadcast() })
	defer stop()
	j.mu.Lock()
	for j.state != stateDone && j.state != stateFailed {
		if ctx.Err() != nil {
			j.mu.Unlock()
			return JobStatus{}, ctx.Err()
		}
		j.cond.Wait()
	}
	j.mu.Unlock()
	return j.snapshot(), nil
}
