// httptest-based conformance suite for the serving layer: submit /
// status / result round-trips for all three job kinds, the budget-trip
// contract (best-so-far matching + tripped axis in the body), tenant
// budget clamping, structured 400s for malformed jobs, and the
// discovery/ops endpoints. The whole package runs under -race in CI.

package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/match"
)

// testOptions is the base solver configuration test servers run: the
// warm-friendly ε = 0.3 regime of E17, sequential workers for
// reproducibility on any box.
func testOptions() []match.Option {
	return []match.Option{match.WithEps(0.3), match.WithSeed(8), match.WithWorkers(1)}
}

// startServer builds a Server plus an httptest front end and tears both
// down with the test.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Options == nil {
		cfg.Options = testOptions()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// testGraph is the pinned instance most tests solve.
func testGraph(seed uint64) *graph.Graph {
	return graph.GNM(40, 240, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 25}, seed)
}

// edgesSpec renders a graph as the inline-edge-list source kind.
func edgesSpec(g *graph.Graph) SourceSpec {
	spec := SourceSpec{Kind: "edges", N: g.N()}
	for _, e := range g.Edges() {
		spec.Edges = append(spec.Edges, []float64{float64(e.U), float64(e.V), e.W})
	}
	return spec
}

// rbg1Spec renders a graph as the uploaded-binary source kind.
func rbg1Spec(t *testing.T, g *graph.Graph) SourceSpec {
	t.Helper()
	var buf bytes.Buffer
	if err := stream.WriteBinary(&buf, stream.NewEdgeStream(g)); err != nil {
		t.Fatal(err)
	}
	return SourceSpec{Kind: "rbg1", DataBase64: base64.StdEncoding.EncodeToString(buf.Bytes())}
}

// genSpec is a named generator spec matching testGraph's scale.
func genSpec(seed uint64) SourceSpec {
	return SourceSpec{Kind: "gen", N: 40, M: 240, Weights: "uniform", WMax: 25, Seed: seed}
}

// postJSON posts a document and returns status code and body.
func postJSON(t *testing.T, url string, doc any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// getJSON fetches a URL and decodes the body into out.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s: %v\nbody: %s", url, err, body)
		}
	}
	return resp.StatusCode
}

// waitDone polls the status endpoint until the job is terminal.
func waitDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobStatus
		if code := getJSON(t, base+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d", id, code)
		}
		if st.Status == stateDone || st.Status == stateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished (status %s)", id, st.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// submitJob posts to /v1/jobs and returns the accepted job id.
func submitJob(t *testing.T, base string, spec JobSpec) string {
	t.Helper()
	code, body := postJSON(t, base+"/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, body %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatalf("submit: no job id in %s", body)
	}
	return st.ID
}

// TestJobKindsRoundTrip pins the submit → status → result loop for all
// three source kinds, and that every kind solves the same instance to
// the same weight as an in-process solve of that instance.
func TestJobKindsRoundTrip(t *testing.T) {
	g := testGraph(3)
	want, err := match.Solve(t.Context(), stream.NewEdgeStream(g), testOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	// The edges and rbg1 specs encode the identical instance; disable
	// warm reuse so every kind pins the cold pass count.
	_, ts := startServer(t, Config{WarmCacheSize: -1})
	kinds := map[string]SourceSpec{
		"edges": edgesSpec(g),
		"rbg1":  rbg1Spec(t, g),
	}
	for kind, src := range kinds {
		t.Run(kind, func(t *testing.T) {
			id := submitJob(t, ts.URL, JobSpec{Source: src})
			st := waitDone(t, ts.URL, id)
			if st.Status != stateDone {
				t.Fatalf("status = %s (error %+v), want done", st.Status, st.Error)
			}
			if st.Result == nil {
				t.Fatal("done job carries no result")
			}
			if st.Result.Weight != want.Weight {
				t.Errorf("weight = %v, want %v (in-process)", st.Result.Weight, want.Weight)
			}
			if st.Result.Stats.Passes != want.Stats.Passes {
				t.Errorf("passes = %d, want %d", st.Result.Stats.Passes, want.Stats.Passes)
			}
			if st.Instance.N != g.N() || st.Instance.M != g.M() {
				t.Errorf("instance = %+v, want n=%d m=%d", st.Instance, g.N(), g.M())
			}
			// The result endpoint serves the same document once terminal.
			var res JobStatus
			if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", &res); code != http.StatusOK {
				t.Fatalf("result: HTTP %d", code)
			}
			if res.Result == nil || res.Result.Weight != st.Result.Weight {
				t.Error("result endpoint disagrees with status endpoint")
			}
		})
	}
	t.Run("gen", func(t *testing.T) {
		// The generator kind solves its own replayed instance; pin it
		// against an in-process solve of the same GenSource.
		spec := genSpec(5)
		gsrc, err := stream.NewGen(stream.GenSpec{N: spec.N, M: spec.M,
			Weights: graph.WeightConfig{Mode: graph.UniformWeights, WMax: spec.WMax}, Seed: spec.Seed})
		if err != nil {
			t.Fatal(err)
		}
		want, err := match.Solve(t.Context(), gsrc, testOptions()...)
		if err != nil {
			t.Fatal(err)
		}
		id := submitJob(t, ts.URL, JobSpec{Source: spec})
		st := waitDone(t, ts.URL, id)
		if st.Status != stateDone || st.Result == nil {
			t.Fatalf("status = %s, result %v", st.Status, st.Result)
		}
		if st.Result.Weight != want.Weight {
			t.Errorf("weight = %v, want %v", st.Result.Weight, want.Weight)
		}
	})
}

// TestSyncSolve pins POST /v1/solve: one round trip, full document.
func TestSyncSolve(t *testing.T) {
	_, ts := startServer(t, Config{})
	code, body := postJSON(t, ts.URL+"/v1/solve", JobSpec{Source: edgesSpec(testGraph(4))})
	if code != http.StatusOK {
		t.Fatalf("HTTP %d, body %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != stateDone || st.Result == nil || st.Result.Weight <= 0 {
		t.Fatalf("sync solve returned %s, result %+v", st.Status, st.Result)
	}
	if st.Rounds == 0 {
		t.Error("sync solve reported zero rounds")
	}
}

// TestBudgetTripReturnsBestSoFar pins the budget contract over the
// wire: a job whose budget trips is still "done", its body carries the
// best-so-far matching and names the tripped axis.
func TestBudgetTripReturnsBestSoFar(t *testing.T) {
	_, ts := startServer(t, Config{})
	spec := JobSpec{
		Source: edgesSpec(testGraph(3)),
		Budget: match.Budget{Rounds: 2}, // the ε=0.3 cold solve needs ~21
	}
	id := submitJob(t, ts.URL, spec)
	st := waitDone(t, ts.URL, id)
	if st.Status != stateDone {
		t.Fatalf("status = %s, want done (budget trip is a bounded answer)", st.Status)
	}
	if st.BudgetExceeded == nil {
		t.Fatal("no budgetExceeded in the body")
	}
	if st.BudgetExceeded.Axis != match.AxisRounds {
		t.Errorf("axis = %q, want %q", st.BudgetExceeded.Axis, match.AxisRounds)
	}
	if st.Result == nil {
		t.Fatal("budget-tripped job carries no best-so-far result")
	}
	if st.Result.Stats.SamplingRounds > 2 {
		t.Errorf("rounds consumed = %d, budget was 2", st.Result.Stats.SamplingRounds)
	}
}

// TestTenantBudgetClamp pins per-tenant admission policy: a tenant's
// cap binds even when the job asks for more (or for nothing).
func TestTenantBudgetClamp(t *testing.T) {
	_, ts := startServer(t, Config{
		TenantBudgets: map[string]match.Budget{"capped": {Rounds: 2}},
	})
	// The capped tenant requests an unlimited budget and still trips.
	id := submitJob(t, ts.URL, JobSpec{Tenant: "capped", Source: edgesSpec(testGraph(3))})
	st := waitDone(t, ts.URL, id)
	if st.BudgetExceeded == nil || st.BudgetExceeded.Axis != match.AxisRounds {
		t.Fatalf("capped tenant: budgetExceeded = %+v, want rounds trip", st.BudgetExceeded)
	}
	// An unknown tenant is uncapped (no DefaultBudget configured).
	id = submitJob(t, ts.URL, JobSpec{Tenant: "free", Source: edgesSpec(testGraph(3))})
	if st = waitDone(t, ts.URL, id); st.BudgetExceeded != nil {
		t.Fatalf("uncapped tenant tripped: %+v", st.BudgetExceeded)
	}
}

func TestClampBudget(t *testing.T) {
	cases := []struct {
		req, cap, want match.Budget
	}{
		{match.Budget{}, match.Budget{}, match.Budget{}},
		{match.Budget{Rounds: 5}, match.Budget{}, match.Budget{Rounds: 5}},
		{match.Budget{}, match.Budget{Rounds: 3}, match.Budget{Rounds: 3}},
		{match.Budget{Rounds: 5}, match.Budget{Rounds: 3}, match.Budget{Rounds: 3}},
		{match.Budget{Rounds: 2}, match.Budget{Rounds: 3}, match.Budget{Rounds: 2}},
		{match.Budget{Passes: 9, SpaceWords: 100}, match.Budget{Rounds: 3, SpaceWords: 50},
			match.Budget{Passes: 9, Rounds: 3, SpaceWords: 50}},
	}
	for i, c := range cases {
		if got := clampBudget(c.req, c.cap); got != c.want {
			t.Errorf("case %d: clamp(%+v, %+v) = %+v, want %+v", i, c.req, c.cap, got, c.want)
		}
	}
}

// TestMalformedJobs pins the structured-400 contract: every bad job is
// rejected at admission with a machine-readable code, never queued.
func TestMalformedJobs(t *testing.T) {
	_, ts := startServer(t, Config{})
	errCode := func(body []byte) string {
		var doc struct {
			Error ErrorDoc `json:"error"`
		}
		json.Unmarshal(body, &doc)
		return doc.Error.Code
	}
	t.Run("syntax", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusBadRequest || errCode(body) != "invalid_json" {
			t.Fatalf("HTTP %d code %q, want 400 invalid_json", resp.StatusCode, errCode(body))
		}
	})
	bad := []struct {
		name string
		spec JobSpec
	}{
		{"unknown-kind", JobSpec{Source: SourceSpec{Kind: "magic"}}},
		{"edges-no-n", JobSpec{Source: SourceSpec{Kind: "edges", Edges: [][]float64{{0, 1, 2}}}}},
		{"edges-bad-triple", JobSpec{Source: SourceSpec{Kind: "edges", N: 4, Edges: [][]float64{{0, 1}}}}},
		{"edges-fractional-endpoint", JobSpec{Source: SourceSpec{Kind: "edges", N: 4, Edges: [][]float64{{0.5, 1, 2}}}}},
		{"edges-out-of-range", JobSpec{Source: SourceSpec{Kind: "edges", N: 4, Edges: [][]float64{{0, 9, 2}}}}},
		{"edges-bad-b", JobSpec{Source: SourceSpec{Kind: "edges", N: 2, Edges: [][]float64{{0, 1, 2}}, B: []int{1}}}},
		{"gen-no-m", JobSpec{Source: SourceSpec{Kind: "gen", N: 10}}},
		{"gen-bad-weights", JobSpec{Source: SourceSpec{Kind: "gen", N: 10, M: 5, Weights: "zipf"}}},
		{"rbg1-empty", JobSpec{Source: SourceSpec{Kind: "rbg1"}}},
		{"rbg1-bad-base64", JobSpec{Source: SourceSpec{Kind: "rbg1", DataBase64: "!!!"}}},
		{"rbg1-bad-magic", JobSpec{Source: SourceSpec{Kind: "rbg1",
			DataBase64: base64.StdEncoding.EncodeToString([]byte("not an rbg1 file at all......"))}}},
		{"bad-eps", JobSpec{Eps: 0.9, Source: SourceSpec{Kind: "gen", N: 10, M: 5}}},
		{"bad-algorithm", JobSpec{Algorithm: "quantum", Source: SourceSpec{Kind: "gen", N: 10, M: 5}}},
	}
	for _, c := range bad {
		t.Run(c.name, func(t *testing.T) {
			code, body := postJSON(t, ts.URL+"/v1/jobs", c.spec)
			if code != http.StatusBadRequest {
				t.Fatalf("HTTP %d, want 400; body %s", code, body)
			}
			if got := errCode(body); got != "invalid_job" {
				t.Errorf("error code = %q, want invalid_job", got)
			}
		})
	}
}

// TestUnknownJob404s pins the not-found contract for all job readers.
func TestUnknownJob404s(t *testing.T) {
	_, ts := startServer(t, Config{})
	for _, path := range []string{"/v1/jobs/j-000099", "/v1/jobs/j-000099/result", "/v1/jobs/j-000099/events"} {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusNotFound {
			t.Errorf("GET %s: HTTP %d, want 404", path, code)
		}
	}
}

// TestAlgorithmsEndpoint pins discovery: the registry over the wire
// matches match.Algorithms.
func TestAlgorithmsEndpoint(t *testing.T) {
	_, ts := startServer(t, Config{})
	var doc struct {
		Default    string                `json:"default"`
		Algorithms []match.AlgorithmInfo `json:"algorithms"`
	}
	if code := getJSON(t, ts.URL+"/v1/algorithms", &doc); code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if doc.Default != match.DefaultAlgorithm {
		t.Errorf("default = %q, want %q", doc.Default, match.DefaultAlgorithm)
	}
	if len(doc.Algorithms) != len(match.Algorithms()) {
		t.Errorf("%d algorithms on the wire, %d in process", len(doc.Algorithms), len(match.Algorithms()))
	}
}

// TestHealthz pins the liveness endpoint.
func TestHealthz(t *testing.T) {
	_, ts := startServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
}

// TestMetricsEndpoint pins the Prometheus surface: after a handful of
// solves the counters, the histogram and the p99 gauge are present and
// consistent.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := startServer(t, Config{})
	const jobs = 3
	for i := 0; i < jobs; i++ {
		id := submitJob(t, ts.URL, JobSpec{Source: genSpec(uint64(i))})
		waitDone(t, ts.URL, id)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	if !strings.Contains(resp.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("content type = %q", resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{
		fmt.Sprintf("matchd_jobs_admitted_total %d", jobs),
		fmt.Sprintf(`matchd_solves_total{status="ok"} %d`, jobs),
		fmt.Sprintf("matchd_solve_seconds_count %d", jobs),
		"matchd_solve_seconds_p99",
		"matchd_queue_depth 0",
		"matchd_pool_sessions 2",
		`matchd_budget_trips_total{axis="rounds"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}
