// The load driver: the client half of experiment E18 and of
// `matchd -bench`. It hammers a running server's synchronous solve
// endpoint with concurrent clients, honors the server's backpressure
// (429 + Retry-After means sleep and retry, exactly what a well-behaved
// caller does), and reports end-to-end throughput and latency
// percentiles — the module's first heavy-traffic numbers measured
// through a socket rather than a function call.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8470".
	BaseURL string
	// Clients is the number of concurrent client goroutines.
	Clients int
	// JobsPerClient is how many solves each client completes.
	JobsPerClient int
	// Specs are the job bodies, assigned round-robin across the run.
	Specs []JobSpec
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
}

// LoadStats is the outcome of a load run. Latency is end-to-end per
// job as the client experienced it: queueing, backpressure retries and
// the solve itself all count.
type LoadStats struct {
	// Jobs is the number of completed solves (done, including budget
	// trips); Failed counts jobs that ended in any other way.
	Jobs   int
	Failed int
	// Retries429 counts backpressure rejections that were retried.
	Retries429 int
	// Wall is the whole run's duration; SolvesPerSec is Jobs / Wall.
	Wall         time.Duration
	SolvesPerSec float64
	// P50, P95, P99 are latency percentiles over completed jobs.
	P50, P95, P99 time.Duration
}

// RunLoad drives cfg.Clients concurrent clients against the server's
// POST /v1/solve endpoint until each has completed its share of jobs,
// then aggregates throughput and latency. It fails only on misuse or
// when every job failed; partial failures are reported in the stats.
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadStats, error) {
	if cfg.BaseURL == "" || cfg.Clients < 1 || cfg.JobsPerClient < 1 || len(cfg.Specs) == 0 {
		return LoadStats{}, errors.New("serve: load config needs a base URL, >= 1 client, >= 1 job and >= 1 spec")
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	bodies := make([][]byte, len(cfg.Specs))
	for i := range cfg.Specs {
		raw, err := json.Marshal(&cfg.Specs[i])
		if err != nil {
			return LoadStats{}, fmt.Errorf("serve: encoding spec %d: %w", i, err)
		}
		bodies[i] = raw
	}

	type clientTally struct {
		latencies []time.Duration
		failed    int
		retries   int
	}
	tallies := make([]clientTally, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tally := &tallies[c]
			for r := 0; r < cfg.JobsPerClient; r++ {
				body := bodies[(c+r*cfg.Clients)%len(bodies)]
				lat, retries, ok := solveOnce(ctx, client, cfg.BaseURL, body)
				tally.retries += retries
				if !ok {
					tally.failed++
					continue
				}
				tally.latencies = append(tally.latencies, lat)
			}
		}(c)
	}
	wg.Wait()
	stats := LoadStats{Wall: time.Since(start)}
	var all []time.Duration
	for _, t := range tallies {
		all = append(all, t.latencies...)
		stats.Failed += t.failed
		stats.Retries429 += t.retries
	}
	stats.Jobs = len(all)
	if stats.Wall > 0 {
		stats.SolvesPerSec = float64(stats.Jobs) / stats.Wall.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	stats.P50 = percentile(all, 0.50)
	stats.P95 = percentile(all, 0.95)
	stats.P99 = percentile(all, 0.99)
	if stats.Jobs == 0 {
		return stats, fmt.Errorf("serve: all %d jobs failed", stats.Failed)
	}
	return stats, nil
}

// solveOnce completes one job end to end: POST, and on 429 honor
// Retry-After and try again. The reported latency spans the first
// attempt to the final response — the latency the caller felt.
func solveOnce(ctx context.Context, client *http.Client, baseURL string, body []byte) (time.Duration, int, bool) {
	start := time.Now()
	retries := 0
	for {
		if ctx.Err() != nil {
			return 0, retries, false
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/solve", bytes.NewReader(body))
		if err != nil {
			return 0, retries, false
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return 0, retries, false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return time.Since(start), retries, true
		case http.StatusTooManyRequests:
			retries++
			select {
			case <-ctx.Done():
				return 0, retries, false
			case <-time.After(retryDelay(resp)):
			}
		default:
			return 0, retries, false
		}
	}
}

// retryDelay turns a 429's Retry-After hint into a sleep, clamped so a
// generous server hint does not stall a bench run.
func retryDelay(resp *http.Response) time.Duration {
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		d := time.Duration(secs) * time.Second
		if d > 250*time.Millisecond {
			d = 250 * time.Millisecond
		}
		return d
	}
	return 25 * time.Millisecond
}

// percentile reads the q-quantile off sorted latencies.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted))*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
