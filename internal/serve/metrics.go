// Prometheus-style metrics, hand-rolled: the module takes no external
// dependencies, and the exposition format is simple enough that a small
// registry rendering text format 0.0.4 keeps /metrics scrapeable by any
// Prometheus-compatible collector. Counters and the latency histogram
// accumulate under one mutex (solve completion is the hot event, and it
// is orders of magnitude rarer than edge processing); gauges — queue
// depth, pool in-flight, warm-cache size — are sampled at scrape time
// from the live structures.

package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// latencyRing bounds the window the p99 gauge is computed over: the
// last latencyRing completed solves.
const latencyRing = 2048

// solveBuckets are the histogram upper bounds in seconds.
var solveBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

type metrics struct {
	mu          sync.Mutex
	start       time.Time
	admittedN   uint64
	rejectedN   uint64
	solves      map[string]uint64 // by solve status label
	trips       map[string]uint64 // by budget axis
	warmHits    uint64
	warmMisses  uint64
	bucketCount []uint64
	latSum      float64
	latCount    uint64
	ring        [latencyRing]float64
	ringN       uint64
}

func newMetrics() *metrics {
	return &metrics{
		start:       time.Now(),
		solves:      make(map[string]uint64),
		trips:       make(map[string]uint64),
		bucketCount: make([]uint64, len(solveBuckets)),
	}
}

func (m *metrics) admitted() {
	m.mu.Lock()
	m.admittedN++
	m.mu.Unlock()
}

func (m *metrics) rejected() {
	m.mu.Lock()
	m.rejectedN++
	m.mu.Unlock()
}

func (m *metrics) warm(hit bool) {
	m.mu.Lock()
	if hit {
		m.warmHits++
	} else {
		m.warmMisses++
	}
	m.mu.Unlock()
}

func (m *metrics) tripped(axis string) {
	m.mu.Lock()
	m.trips[axis]++
	m.mu.Unlock()
}

// solved records one completed solve: its status label and its wall
// time (which feeds the histogram, the sum/count pair and the p99
// ring — for every status, since a budget-tripped or failed solve
// occupied a session just the same).
func (m *metrics) solved(status string, seconds float64) {
	m.mu.Lock()
	m.solves[status]++
	for i, ub := range solveBuckets {
		if seconds <= ub {
			m.bucketCount[i]++
		}
	}
	m.latSum += seconds
	m.latCount++
	m.ring[m.ringN%latencyRing] = seconds
	m.ringN++
	m.mu.Unlock()
}

// p99Locked computes the 99th-percentile solve latency over the ring
// window. Caller holds mu.
func (m *metrics) p99Locked() float64 {
	n := m.ringN
	if n == 0 {
		return 0
	}
	if n > latencyRing {
		n = latencyRing
	}
	window := make([]float64, n)
	copy(window, m.ring[:n])
	sort.Float64s(window)
	idx := int(math.Ceil(0.99*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	return window[idx]
}

// gauges carries the scrape-time samples render interleaves with the
// accumulated counters.
type gauges struct {
	queueDepth   int
	poolSessions int
	poolQueued   int
	poolInFlight int
	warmEntries  int
}

// render writes the registry in Prometheus text exposition format
// 0.0.4. Metric order is fixed so scrapes diff cleanly.
func (m *metrics) render(w io.Writer, g gauges) {
	m.mu.Lock()
	defer m.mu.Unlock()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("matchd_jobs_admitted_total", "Jobs accepted into the admission queue.", m.admittedN)
	counter("matchd_jobs_rejected_total", "Jobs rejected with 429 because the admission queue was full.", m.rejectedN)

	fmt.Fprintf(w, "# HELP matchd_solves_total Completed solves by outcome.\n# TYPE matchd_solves_total counter\n")
	for _, status := range []string{solveOK, solveBudget, solveCanceled, solveFailed} {
		fmt.Fprintf(w, "matchd_solves_total{status=%q} %d\n", status, m.solves[status])
	}

	fmt.Fprintf(w, "# HELP matchd_budget_trips_total Budget trips by resource axis.\n# TYPE matchd_budget_trips_total counter\n")
	for _, axis := range []string{"passes", "rounds", "space-words"} {
		fmt.Fprintf(w, "matchd_budget_trips_total{axis=%q} %d\n", axis, m.trips[axis])
	}

	counter("matchd_warm_hits_total", "Solves seeded from the warm-dual fingerprint cache.", m.warmHits)
	counter("matchd_warm_misses_total", "Warm-eligible solves whose fingerprint missed the cache.", m.warmMisses)

	gauge("matchd_queue_depth", "Jobs waiting in the admission queue.", float64(g.queueDepth))
	gauge("matchd_pool_sessions", "Solve sessions in the fleet.", float64(g.poolSessions))
	gauge("matchd_pool_queue_depth", "Jobs accepted by the pool, waiting for a session.", float64(g.poolQueued))
	gauge("matchd_pool_inflight", "Solves currently running on a session.", float64(g.poolInFlight))
	gauge("matchd_warm_cache_entries", "Dual snapshots held by the fingerprint cache.", float64(g.warmEntries))
	gauge("matchd_solve_seconds_p99", "99th-percentile solve wall time over the recent window.", m.p99Locked())
	gauge("matchd_uptime_seconds", "Seconds since the server started.", time.Since(m.start).Seconds())

	fmt.Fprintf(w, "# HELP matchd_solve_seconds Solve wall time.\n# TYPE matchd_solve_seconds histogram\n")
	for i, ub := range solveBuckets {
		fmt.Fprintf(w, "matchd_solve_seconds_bucket{le=%q} %d\n", fmt.Sprintf("%g", ub), m.bucketCount[i])
	}
	fmt.Fprintf(w, "matchd_solve_seconds_bucket{le=\"+Inf\"} %d\n", m.latCount)
	fmt.Fprintf(w, "matchd_solve_seconds_sum %g\n", m.latSum)
	fmt.Fprintf(w, "matchd_solve_seconds_count %d\n", m.latCount)
}
