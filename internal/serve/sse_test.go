// The SSE observer stream: the event sequence a network subscriber
// reads from GET /v1/jobs/{id}/events must be bit-identical to the
// RoundEvent sequence an in-process Observer receives for the same
// (instance, options) — λ and β compared as float64 bits, not
// approximately — and the stream must replay in full for subscribers
// that arrive after the solve finished. The raw data lines are also
// pinned against a golden file (regenerate with -update).

package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stream"
	"repro/match"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sseStream is one decoded SSE session: the round-event data lines in
// order, plus the terminal done document.
type sseStream struct {
	rounds [][]byte
	done   JobStatus
}

// readSSE consumes a /events stream to its terminal event.
func readSSE(t *testing.T, url string) sseStream {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	var out sseStream
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := []byte(strings.TrimPrefix(line, "data: "))
			switch event {
			case "round":
				out.rounds = append(out.rounds, data)
			case "done":
				if err := json.Unmarshal(data, &out.done); err != nil {
					t.Fatalf("decoding done event: %v\n%s", err, data)
				}
				return out
			default:
				t.Fatalf("unknown SSE event %q", event)
			}
		case line == "":
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	t.Fatalf("stream ended without a done event (scan err %v)", sc.Err())
	return out
}

// decodeRounds parses the data lines back into RoundEvents.
func decodeRounds(t *testing.T, raw [][]byte) []match.RoundEvent {
	t.Helper()
	events := make([]match.RoundEvent, len(raw))
	for i, data := range raw {
		if err := json.Unmarshal(data, &events[i]); err != nil {
			t.Fatalf("decoding round event %d: %v\n%s", i, err, data)
		}
	}
	return events
}

// TestSSEBitIdenticalToObserver pins the core streaming contract: for a
// pinned-seed instance, the streamed sequence equals the in-process
// Observer callback sequence field for field — float64s included,
// because Go's JSON encoding round-trips them exactly.
func TestSSEBitIdenticalToObserver(t *testing.T) {
	g := testGraph(3)
	var trace match.TraceObserver
	want, err := match.Solve(t.Context(), stream.NewEdgeStream(g),
		append(testOptions(), match.WithObserver(&trace))...)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Events) < 2 {
		t.Fatalf("pinned instance produced %d events; the test needs a trajectory", len(trace.Events))
	}

	_, ts := startServer(t, Config{WarmCacheSize: -1})
	id := submitJob(t, ts.URL, JobSpec{Source: edgesSpec(g)})
	got := readSSE(t, ts.URL+"/v1/jobs/"+id+"/events")

	events := decodeRounds(t, got.rounds)
	if len(events) != len(trace.Events) {
		t.Fatalf("streamed %d events, observer saw %d", len(events), len(trace.Events))
	}
	for i, ev := range events {
		if ev != trace.Events[i] {
			t.Errorf("event %d: streamed %+v, observer saw %+v", i, ev, trace.Events[i])
		}
	}
	if got.done.Status != stateDone || got.done.Result == nil {
		t.Fatalf("terminal event: status %s, result %v", got.done.Status, got.done.Result)
	}
	if got.done.Result.Weight != want.Weight {
		t.Errorf("terminal weight = %v, want %v", got.done.Result.Weight, want.Weight)
	}
	if got.done.Rounds != len(trace.Events) {
		t.Errorf("terminal rounds = %d, want %d", got.done.Rounds, len(trace.Events))
	}

	// A second subscriber after completion replays the identical stream.
	replay := readSSE(t, ts.URL+"/v1/jobs/"+id+"/events")
	if len(replay.rounds) != len(got.rounds) {
		t.Fatalf("replay streamed %d events, first subscriber saw %d", len(replay.rounds), len(got.rounds))
	}
	for i := range replay.rounds {
		if !bytes.Equal(replay.rounds[i], got.rounds[i]) {
			t.Errorf("replay event %d differs:\n%s\n%s", i, replay.rounds[i], got.rounds[i])
		}
	}
}

// TestSSEGolden pins the raw wire bytes of the pinned-seed stream
// against testdata/sse_events.golden: any drift in the event schema,
// field order or the solver trajectory itself shows up as a diff.
// Regenerate with: go test ./internal/serve -run TestSSEGolden -update
func TestSSEGolden(t *testing.T) {
	_, ts := startServer(t, Config{WarmCacheSize: -1})
	id := submitJob(t, ts.URL, JobSpec{Source: edgesSpec(testGraph(3))})
	got := readSSE(t, ts.URL+"/v1/jobs/"+id+"/events")

	var buf bytes.Buffer
	for _, data := range got.rounds {
		fmt.Fprintf(&buf, "%s\n", data)
	}
	path := filepath.Join("testdata", "sse_events.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SSE stream drifted from golden (run with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
