// Warm-dual reuse keyed by instance fingerprint — the serving-layer
// transplant of "Faster Matchings via Learned Duals" (arXiv:2107.09770):
// across a stream of jobs, instances repeat, and a repeat can start
// from the dual snapshot the previous solve of the identical instance
// left behind instead of the cold Lemma 20/21 initial solution. The
// fingerprint is (algorithm, n, ΣB, m, ε, W*, content hash): the first
// five are exactly the quantities that determine the discretization a
// snapshot addresses (WithInitialDuals re-validates them at install
// time), and the content hash pins the instance bit-for-bit, so any
// perturbation — one reweighted edge — misses the cache and falls back
// to the certified cold start. A hit can only save rounds, never weaken
// the certificate: λ and the dual objective are re-evaluated against
// the current instance every round regardless of where the starting
// duals came from.

package serve

import (
	"math"
	"sync"

	"repro/internal/graph"
	"repro/match"
)

// fpKey is the comparable fingerprint of (instance, solve regime).
type fpKey struct {
	algo   string
	n      int
	totalB int
	m      int
	eps    float64
	wstar  float64
	hash   uint64
}

// FNV-1a 64-bit, inlined so hashing an edge record costs no interface
// or allocation overhead on the fingerprint sweep.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

// fingerprintSource computes the fingerprint in one un-metered sweep
// (Sweep, not ForEach: fingerprinting is serving-layer bookkeeping, not
// one of the algorithm's data accesses, so it must not disturb the
// job's pass meters). W* falls out of the same sweep.
func fingerprintSource(src match.Source, algo string, eps float64) fpKey {
	h := uint64(fnvOffset)
	n := src.N()
	for v := 0; v < n; v++ {
		h = fnvMix(h, uint64(src.B(v)))
	}
	wstar := 0.0
	//lint:unmetered admission-time fingerprint of the full file, not an algorithm pass
	src.Sweep(func(_ int, e graph.Edge) bool {
		h = fnvMix(h, uint64(e.U))
		h = fnvMix(h, uint64(e.V))
		h = fnvMix(h, math.Float64bits(e.W))
		if e.W > wstar {
			wstar = e.W
		}
		return true
	})
	return fpKey{algo: algo, n: n, totalB: src.TotalB(), m: src.Len(), eps: eps, wstar: wstar, hash: h}
}

// warmCache is the bounded fingerprint → completed-result map the
// dispatcher consults. Eviction is FIFO by insertion: the serving
// workload this exists for (the same instances recurring) refreshes
// entries by re-inserting them on every completed solve, so plain FIFO
// behaves like LRU without the bookkeeping. The cached *match.Result is
// shared read-only: WithInitialDuals installs a snapshot by copying, so
// concurrent sessions can seed from one entry safely.
type warmCache struct {
	mu    sync.Mutex
	limit int
	m     map[fpKey]*match.Result
	order []fpKey
}

func newWarmCache(limit int) *warmCache {
	return &warmCache{limit: limit, m: make(map[fpKey]*match.Result, limit)}
}

// get returns the cached result for k, nil on a miss.
func (c *warmCache) get(k fpKey) *match.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[k]
}

// put inserts (or refreshes) k, evicting the oldest entry when full.
func (c *warmCache) put(k fpKey, r *match.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.m[k]; !exists {
		for len(c.m) >= c.limit && len(c.order) > 0 {
			delete(c.m, c.order[0])
			c.order = c.order[1:]
		}
		c.order = append(c.order, k)
	}
	c.m[k] = r
}

// size reports the number of cached snapshots (metrics gauge).
func (c *warmCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
