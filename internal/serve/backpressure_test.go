// Backpressure and drain semantics: a full admission queue answers 429
// with Retry-After over the wire, Close mid-queue finishes every job
// the pool already holds while failing the still-queued ones with a
// clean server-closed error, and a closed server answers 503. The
// tests freeze the fleet with gated sources (metered passes block on a
// channel) so the queue topology is observable at a known state.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/stream"
)

// gatedSource is an EdgeStream whose metered passes block until the
// gate closes; Sweep (the fingerprint path) stays un-gated.
type gatedSource struct {
	*stream.EdgeStream
	gate <-chan struct{}
}

func (g *gatedSource) ForEach(f func(int, graph.Edge) bool) {
	<-g.gate
	g.EdgeStream.ForEach(f)
}

func (g *gatedSource) ForEachParallel(workers int, f func(int, graph.Edge)) {
	<-g.gate
	g.EdgeStream.ForEachParallel(workers, f)
}

func (g *gatedSource) ForEachBlocks(f func(int, []graph.Edge) bool) {
	<-g.gate
	g.EdgeStream.ForEachBlocks(f)
}

func (g *gatedSource) ForEachBlocksParallel(workers int, f func(int, []graph.Edge)) {
	<-g.gate
	g.EdgeStream.ForEachBlocksParallel(workers, f)
}

// gatedJob hand-builds an admitted job around a gated source, skipping
// the wire codec (the codec cannot express a blocking source).
func gatedJob(s *Server, gate <-chan struct{}, seed uint64) *job {
	g := testGraph(seed)
	src := &gatedSource{EdgeStream: stream.NewEdgeStream(g), gate: gate}
	j := &job{
		algo:     s.defaultAlgo,
		src:      src,
		inst:     Instance{N: src.N(), M: src.Len(), TotalB: src.TotalB()},
		ctx:      context.Background(),
		state:    stateQueued,
		queuedAt: time.Now(),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// waitFor polls until ok returns true (the dispatcher moves jobs
// asynchronously, so topology assertions must wait for a settle).
func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// fillServer freezes a PoolSize-1, QueueLimit-2 server at its exact
// capacity: 1 job in flight, 4 in the pool's own queue, 1 held by the
// blocked dispatcher, 2 in the admission queue — 8 admitted jobs, the
// 9th must bounce. Returns the jobs in admission order.
func fillServer(t *testing.T, s *Server, gate <-chan struct{}) []*job {
	t.Helper()
	const capacity = 8 // 1 in flight + 4 pool queue + 1 dispatcher-held + 2 admission queue
	jobs := make([]*job, 0, capacity)
	for i := 0; i < capacity; i++ {
		j := gatedJob(s, gate, uint64(i))
		if code, errDoc := s.admit(j); errDoc != nil {
			t.Fatalf("job %d bounced with %d %+v before capacity", i, code, errDoc)
		}
		jobs = append(jobs, j)
		if i < capacity-2 {
			// The first six jobs land in the pool (or on the blocked
			// dispatcher); wait for the pickup so the admission queue
			// is empty when the last two arrive to occupy it.
			waitFor(t, "dispatcher pickup", func() bool { return s.QueueDepth() == 0 })
		}
	}
	waitFor(t, "saturated fleet", func() bool {
		ps := s.pool.Stats()
		return ps.InFlight == 1 && ps.Queued == 4 && s.QueueDepth() == 2
	})
	// The dispatcher holds job 5 blocked on the pool; wait until it is
	// past the drain check (marked running), so a Close racing the
	// dispatcher cannot misclassify it as still-queued.
	waitFor(t, "dispatcher-held job running", func() bool {
		return jobs[5].snapshot().Status == stateRunning
	})
	return jobs
}

// TestBackpressure429 pins admission control over the wire: at
// capacity the next submission gets 429 with a Retry-After hint, and
// once the fleet drains the same submission is accepted.
func TestBackpressure429(t *testing.T) {
	s, ts := startServer(t, Config{PoolSize: 1, QueueLimit: 2, RetryAfter: 3 * time.Second})
	gate := make(chan struct{})
	jobs := fillServer(t, s, gate)

	spec := JobSpec{Source: genSpec(99)}
	code, body := postJSON(t, ts.URL+"/v1/jobs", spec)
	if code != http.StatusTooManyRequests {
		t.Fatalf("submission at capacity: HTTP %d, body %s", code, body)
	}
	// Re-issue to read the header (postJSON drops it): the rejection is
	// stable while the fleet stays frozen.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", specReader(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second rejection: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", got)
	}
	// Both rejections are visible on the metrics surface.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "matchd_jobs_rejected_total 2") {
		t.Errorf("metrics missing rejected counter:\n%s", mbody)
	}

	close(gate)
	for i, j := range jobs {
		if st, err := j.wait(t.Context()); err != nil || st.Status != stateDone {
			t.Fatalf("gated job %d ended %s (err %v), want done", i, st.Status, err)
		}
	}
	if code, body = postJSON(t, ts.URL+"/v1/jobs", spec); code != http.StatusAccepted {
		t.Fatalf("submission after drain: HTTP %d, body %s", code, body)
	}
}

// TestCloseDrainsInFlight pins the drain contract: jobs the pool
// already holds (in flight, pool-queued, dispatcher-held) finish with
// queryable results; jobs still in the admission queue fail with the
// server-closed error; submissions during and after the drain get 503.
func TestCloseDrainsInFlight(t *testing.T) {
	s, ts := startServer(t, Config{PoolSize: 1, QueueLimit: 2})
	gate := make(chan struct{})
	jobs := fillServer(t, s, gate)

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	waitFor(t, "draining flag", s.draining.Load)

	// The server refuses new work the moment the drain starts.
	code, body := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Source: genSpec(99)})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submission mid-drain: HTTP %d, body %s", code, body)
	}

	close(gate)
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close never returned after the gate opened")
	}

	// Admission order was j0..j7: the pool held j0..j5, the admission
	// queue held j6 and j7.
	for i, j := range jobs[:6] {
		st := j.snapshot()
		if st.Status != stateDone || st.Result == nil {
			t.Errorf("pool-held job %d: status %s result %v, want done with result", i, st.Status, st.Result)
		}
	}
	for i, j := range jobs[6:] {
		st := j.snapshot()
		if st.Status != stateFailed || st.Error == nil || st.Error.Code != "server_closed" {
			t.Errorf("queued job %d: status %s error %+v, want failed server_closed", 6+i, st.Status, st.Error)
		}
	}

	// Finished jobs stay queryable over the wire after the drain.
	var st JobStatus
	if code := getJSON(t, ts.URL+"/v1/jobs/"+jobs[0].id, &st); code != http.StatusOK || st.Status != stateDone {
		t.Errorf("post-drain status of %s: HTTP %d status %s", jobs[0].id, code, st.Status)
	}
	// And Close is idempotent.
	s.Close()
}

// TestSyncSolveCancel pins that a synchronous caller walking away
// cancels its solve: the job fails with the canceled code and the
// canceled outcome is counted, not the ok one.
func TestSyncSolveCancel(t *testing.T) {
	s, ts := startServer(t, Config{PoolSize: 1})
	gate := make(chan struct{})
	j := gatedJob(s, gate, 1)
	if _, errDoc := s.admit(j); errDoc != nil {
		t.Fatalf("admit: %+v", errDoc)
	}
	waitFor(t, "gated job in flight", func() bool { return s.pool.Stats().InFlight == 1 })

	ctx, cancel := context.WithCancel(t.Context())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve",
		specReader(t, JobSpec{Source: genSpec(7)}))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// Give the solve a moment to admit, then hang up.
	waitFor(t, "second job admitted", func() bool { return s.lookup("j-000002") != nil })
	cancel()
	<-done
	// The canceled job still waits behind the gated one for a session;
	// open the gate so the pool reaches it and observes the dead context.
	close(gate)
	sync := s.lookup("j-000002")
	waitFor(t, "canceled job terminal", func() bool {
		st := sync.snapshot()
		return st.Status == stateFailed
	})
	if st := sync.snapshot(); st.Error == nil || st.Error.Code != "canceled" {
		t.Errorf("canceled job error = %+v, want code canceled", st.Error)
	}
}

// specReader marshals a spec for a hand-rolled request.
func specReader(t *testing.T, spec JobSpec) *bytes.Reader {
	t.Helper()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(raw)
}
