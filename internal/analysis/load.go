package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader resolves packages with `go list -deps -test -export -json`:
// the go tool compiles (or reuses from the build cache) export data for
// every dependency — standard library included — and we type-check each
// target package's syntax against that export data with the stock gc
// importer. This keeps the framework dependency-free (no
// golang.org/x/tools) and works fully offline; the only requirement is
// that the tree compiles, which the tier-1 gate guarantees anyway.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir            string
	ImportPath     string
	Export         string
	ForTest        string
	Standard       bool
	GoFiles        []string
	TestGoFiles    []string
	XTestGoFiles   []string
	DepsErrors     []*listPkgError
	Error          *listPkgError
	IgnoredGoFiles []string
}

type listPkgError struct {
	Err string
}

// Load lists the packages matching patterns from dir (the module root or
// any directory inside it) and returns one type-checked Unit per package
// — in-package test files are checked together with the library files,
// and external _test packages form their own Unit with a _test suffix on
// the path.
func Load(dir string, patterns ...string) ([]*Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-test", "-export",
		"-json=ImportPath,Export,Standard,ForTest,Dir,GoFiles,TestGoFiles,XTestGoFiles,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}

	// exports maps import path -> export data file. Test variants of a
	// package appear as `path [path.test]`; they are recorded under that
	// spelling and consulted only when checking that package's external
	// test unit.
	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s", p.Error.Err)
		}
		if p.Export != "" {
			if _, dup := exports[p.ImportPath]; !dup {
				exports[p.ImportPath] = p.Export
			}
		}
		// Targets are the module's own plain packages (not test variants,
		// not synthesized .test mains, not the standard library).
		if !p.Standard && p.ForTest == "" && !strings.HasSuffix(p.ImportPath, ".test") && !strings.Contains(p.ImportPath, " ") {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, errors.New("go list matched no packages")
	}

	fset := token.NewFileSet()
	var units []*Unit
	for _, t := range targets {
		lib, err := checkUnit(fset, t.ImportPath, t.Dir,
			append(append([]string{}, t.GoFiles...), t.TestGoFiles...),
			exports, nil)
		if err != nil {
			return nil, err
		}
		units = append(units, lib)
		if len(t.XTestGoFiles) > 0 {
			// The external test package imports the library package; when
			// in-package test files add declarations the x_test files use,
			// those live in the test-variant export data, so prefer it.
			override := map[string]string{}
			variant := t.ImportPath + " [" + t.ImportPath + ".test]"
			if f, ok := exports[variant]; ok {
				override[t.ImportPath] = f
			}
			xt, err := checkUnit(fset, t.ImportPath+"_test", t.Dir, t.XTestGoFiles, exports, override)
			if err != nil {
				return nil, err
			}
			units = append(units, xt)
		}
	}
	return units, nil
}

// checkUnit parses and type-checks one set of files as a package unit.
func checkUnit(fset *token.FileSet, path, dir string, files []string, exports, override map[string]string) (*Unit, error) {
	u := &Unit{Path: path, Fset: fset}
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		u.Files = append(u.Files, f)
	}
	lookup := func(p string) (io.ReadCloser, error) {
		if f, ok := override[p]; ok {
			return os.Open(f)
		}
		if f, ok := exports[p]; ok {
			return os.Open(f)
		}
		return nil, fmt.Errorf("no export data for %q", p)
	}
	// A fresh importer per unit: the gc importer caches packages by path,
	// and the test-variant override must not leak between units.
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { u.TypeErrors = append(u.TypeErrors, err) },
	}
	u.Info = NewInfo()
	pkg, _ := conf.Check(path, fset, u.Files, u.Info)
	u.Pkg = pkg
	return u, nil
}

// NewInfo allocates the types.Info maps the analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}
