package analysis

import (
	"go/ast"
	"go/types"
)

// powScope lists the packages on the solver's per-round hot path where
// math.Pow showed up as a top-10 CPU consumer before the pow tables
// landed: level bucketing (ŵ = (1+ε)^k per stream update), sparsifier
// retention probabilities (2^-level per stored item) and the oracle
// core. In these packages every repeated power is a geometric series
// over small integer indices, so a table built once with math.Pow at
// construction is bit-identical and removes the transcendental call
// from the per-item path. Cold one-shot uses (parameter derivation at
// Init, table construction itself, out-of-range fallbacks) are fine —
// justify them with //lint:powtable.
var powScope = []string{
	"repro/internal/levels",
	"repro/internal/sparsify",
	"repro/internal/core",
}

// PowHot reports math.Pow calls in the hot solver packages, where they
// belong in a precomputed geometric table rather than the per-item
// path. See levels.NewScheme and sparsify's pow05 for the pattern.
var PowHot = &Analyzer{
	Name:     "powhot",
	Doc:      "flags math.Pow in the hot solver packages (levels, sparsify, core) where powers of a fixed base belong in a construction-time table; justify cold-path uses with //lint:powtable",
	Suppress: "powtable",
	Run:      runPowHot,
}

func runPowHot(pass *Pass) error {
	if !inScope(pass.PkgPath(), powScope) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Pow" {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.objectOf(id).(*types.PkgName)
			if !ok || pn.Imported().Path() != "math" {
				return true
			}
			pass.Reportf(call.Pos(), "math.Pow in a hot solver package: powers of a fixed base belong in a table built once at construction (bit-identical, see levels.NewScheme); justify cold-path uses with //lint:powtable")
			return true
		})
	}
	return nil
}
