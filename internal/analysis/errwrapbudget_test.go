package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestErrWrapBudget(t *testing.T) {
	diags := analysistest.Run(t, "testdata", "repro/internal/lp", analysis.ErrWrapBudget)
	if len(diags) != 5 {
		t.Errorf("got %d diagnostics, want 5: %v", len(diags), diags)
	}
}
