// Package analysistest runs an analyzer over a golden fixture package
// and checks its diagnostics against `// want` comment expectations —
// the same contract as golang.org/x/tools/go/analysis/analysistest,
// rebuilt on the standard library so the repo stays dependency-free.
//
// Fixtures live in a GOPATH-style tree under testdata/src/<importpath>.
// Fixture imports resolve first against other fixture packages in the
// same tree (so stubs of repro/internal/... packages can stand in for
// the real ones), then against the standard library via the source
// importer. The fixture's import path doubles as the unit path the
// analyzer sees, which is how scope-sensitive analyzers (maprange,
// noclock) are exercised both inside and outside their scope.
//
// Expectations are trailing comments of the form
//
//	code() // want "regexp"
//	code() // want "first" "second"
//
// Every diagnostic must match a want on its line (regexp match against
// the message), and every want must be matched by some diagnostic.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// Run loads testdata/src/<path>, applies the analyzer, and reports any
// mismatch between diagnostics and // want expectations as test errors.
// It returns the surviving diagnostics for optional further assertions.
func Run(t *testing.T, testdata, path string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	ld := &fixtureLoader{root: filepath.Join(testdata, "src")}
	unit, err := ld.load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	if len(unit.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", path, unit.TypeErrors)
	}
	diags, err := unit.Run([]*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, path, err)
	}
	checkWants(t, unit, diags)
	return diags
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

func checkWants(t *testing.T, unit *analysis.Unit, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := unit.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					pattern := strings.ReplaceAll(m[1], `\"`, `"`)
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pattern})
				}
			}
		}
	}
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", filepath.Base(w.file), w.line, w.raw)
		}
	}
}

// fixtureLoader type-checks fixture packages from a testdata/src tree.
type fixtureLoader struct {
	root  string
	mu    sync.Mutex
	cache map[string]*types.Package
	fset  *token.FileSet
	std   types.Importer
}

func (l *fixtureLoader) init() {
	if l.fset == nil {
		l.fset = token.NewFileSet()
		l.cache = map[string]*types.Package{}
		l.std = stdImporter(l.fset)
	}
}

// load parses and type-checks the fixture package at import path p,
// returning a ready analysis.Unit.
func (l *fixtureLoader) load(p string) (*analysis.Unit, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.init()
	files, err := l.parseDir(p)
	if err != nil {
		return nil, err
	}
	u := &analysis.Unit{Path: p, Fset: l.fset, Files: files}
	conf := types.Config{
		Importer: (*fixtureImporter)(l),
		Error:    func(err error) { u.TypeErrors = append(u.TypeErrors, err) },
	}
	u.Info = analysis.NewInfo()
	u.Pkg, _ = conf.Check(p, l.fset, files, u.Info)
	return u, nil
}

func (l *fixtureLoader) parseDir(p string) ([]*ast.File, error) {
	dir := filepath.Join(l.root, filepath.FromSlash(p))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// fixtureImporter resolves fixture-tree packages first, stdlib second.
type fixtureImporter fixtureLoader

func (l *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if _, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil {
		files, err := (*fixtureLoader)(l).parseDir(path)
		if err != nil {
			return nil, err
		}
		conf := types.Config{Importer: l}
		pkg, err := conf.Check(path, l.fset, files, nil)
		if err != nil {
			return nil, fmt.Errorf("fixture dependency %s: %w", path, err)
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// stdImporter returns an importer for standard-library packages. The
// source importer type-checks from GOROOT source, which works offline
// and needs no export data for the test process.
func stdImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}
