package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestFieldHot(t *testing.T) {
	diags := analysistest.Run(t, "testdata", "repro/internal/sketch/fieldhot", analysis.FieldHot)
	if len(diags) != 1 {
		t.Errorf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
}

func TestFieldHotOutOfScope(t *testing.T) {
	diags := analysistest.Run(t, "testdata", "repro/internal/xrand", analysis.FieldHot)
	if len(diags) != 0 {
		t.Errorf("xrand owns the generic field helpers and is out of scope, got: %v", diags)
	}
}
