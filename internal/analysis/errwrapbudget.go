package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// ErrWrapBudget keeps error chains matchable across layers: budget trips
// (match.ErrBudgetExceeded, *engine.BudgetError) and stream I/O failures
// (*stream.ReadError) are classified with errors.Is/errors.As at the
// facade, the pool, the serving layer and in CLI exit codes, so any
// fmt.Errorf that re-formats an error with %v/%s instead of wrapping it
// with %w silently severs that chain. The analyzer flags every
// error-typed argument formatted with a non-wrapping verb (%T — printing
// the type — is exempt). Deliberate chain breaks carry //lint:nowrap.
var ErrWrapBudget = &Analyzer{
	Name:     "errwrapbudget",
	Doc:      "flags fmt.Errorf calls that format an error value with %v/%s instead of wrapping with %w, which breaks errors.Is(err, ErrBudgetExceeded) and *stream.ReadError matching across layers; justify with //lint:nowrap",
	Suppress: "nowrap",
	Run:      runErrWrapBudget,
}

func runErrWrapBudget(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isFmtErrorf(pass, call) || len(call.Args) < 2 || call.Ellipsis.IsValid() {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind.String() != "STRING" {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			verbs, ok := formatVerbs(format)
			if !ok {
				return true // explicit argument indexes etc.: stay silent
			}
			for i, verb := range verbs {
				argIdx := 1 + i
				if argIdx >= len(call.Args) {
					break // arity mismatch is vet's problem
				}
				if verb == 'w' || verb == 'T' || verb == '*' {
					continue
				}
				t := pass.TypeOf(call.Args[argIdx])
				if t == nil || !isErrorType(t) {
					continue
				}
				pass.Reportf(call.Args[argIdx].Pos(), "error formatted with %%%c loses the chain: errors.Is/As matching (budget trips, stream read errors) stops working downstream; wrap with %%w or justify with //lint:nowrap", verb)
			}
			return true
		})
	}
	return nil
}

// isFmtErrorf reports whether call is fmt.Errorf.
func isFmtErrorf(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return false
	}
	obj := pass.objectOf(sel.Sel)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt"
}

// isErrorType reports whether t is assignable to the error interface.
func isErrorType(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type()
	return types.AssignableTo(t, errType)
}

// formatVerbs scans a printf format string and returns one entry per
// argument the format consumes, in order: the verb letter for normal
// operands and '*' for width/precision stars. It bails out (ok=false)
// on explicit argument indexes (%[1]v), whose mapping is not positional.
func formatVerbs(format string) (verbs []rune, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
	scan:
		for ; i < len(format); i++ {
			switch c := format[i]; {
			case c == '[':
				return nil, false
			case c == '*':
				verbs = append(verbs, '*')
			case c == '#' || c == '+' || c == '-' || c == ' ' || c == '0' || c == '.' || (c >= '0' && c <= '9'):
				// flags, width, precision: keep scanning
			case (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
				verbs = append(verbs, rune(c))
				break scan
			default:
				// Unrecognized character: treat as the end of this verb.
				break scan
			}
		}
	}
	return verbs, true
}
