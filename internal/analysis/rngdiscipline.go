package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// xrandPkg is the only package allowed to touch math/rand: everything
// else takes explicit seeds through its splittable RNG so experiments
// replay bit-for-bit (DESIGN.md §5).
const xrandPkg = "repro/internal/xrand"

// parallelPkg hosts the pre-split RNG pattern: children are derived
// sequentially with parallel.SplitRNGs before any goroutine starts, so
// the random stream each shard consumes is independent of the worker
// count and of goroutine interleaving.
const parallelPkg = "repro/internal/parallel"

// RNGDiscipline enforces the two RNG rules: (1) no math/rand anywhere
// outside internal/xrand — its global state and non-replayable seeding
// break determinism, and even seeded local use bypasses the splittable
// discipline; (2) a *xrand.RNG captured from an enclosing scope must not
// be used inside a parallel callback (parallel.Run/Map/ForEachShard
// bodies, ForEachParallel/SweepParallel sweep callbacks, go statements):
// shared generators make the consumed stream depend on interleaving.
// Pre-split with parallel.SplitRNGs and index the children instead.
var RNGDiscipline = &Analyzer{
	Name:         "rngdiscipline",
	Doc:          "flags math/rand imports outside internal/xrand and captured *xrand.RNG use inside parallel callbacks (use parallel.SplitRNGs); justify with //lint:rng",
	Suppress:     "rng",
	IncludeTests: true,
	Run:          runRNGDiscipline,
}

func runRNGDiscipline(pass *Pass) error {
	if pass.PkgPath() == xrandPkg {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s outside %s; use the splittable xrand.RNG (xrand.Std bridges APIs that require *rand.Rand)", path, xrandPkg)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.FuncLit
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					body = lit
				}
			case *ast.CallExpr:
				if isParallelEntry(pass, n) {
					for _, arg := range n.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							body = lit
						}
					}
				}
			}
			if body != nil {
				checkCapturedRNG(pass, body)
			}
			return true
		})
	}
	return nil
}

// isParallelEntry reports whether call enters parallel execution: a
// repro/internal/parallel fan-out helper or a parallel sweep method.
func isParallelEntry(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Run", "Map", "ForEachShard":
		obj := pass.objectOf(sel.Sel)
		return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == parallelPkg
	case "ForEachParallel", "SweepParallel":
		// Any parallel sweep: the callback runs on multiple goroutines.
		return true
	}
	return false
}

// checkCapturedRNG reports uses, inside the callback body, of RNG-typed
// variables declared outside it.
func checkCapturedRNG(pass *Pass, lit *ast.FuncLit) {
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.objectOf(id)
		if obj == nil || seen[obj] {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if !isXrandRNG(obj.Type()) {
			return true
		}
		// Declared inside the literal (parameter or local): fine.
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		seen[obj] = true
		pass.Reportf(id.Pos(), "RNG %q captured by a parallel callback: the stream it yields depends on goroutine interleaving; pre-split with parallel.SplitRNGs and index per job", id.Name)
		return true
	})
}

// isXrandRNG reports whether t is xrand.RNG or *xrand.RNG.
func isXrandRNG(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "RNG" && obj.Pkg() != nil && obj.Pkg().Path() == xrandPkg
}

// objectOf resolves an identifier to its object via Uses or Defs.
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}
