package analysis

import (
	"go/ast"
	"go/types"
)

// clockScope lists the packages whose computations must replay
// bit-identically: the deterministic substrates plus the round-loop
// driver, the algorithm adapters, the stream backends and the shared
// model packages. Wall-clock reads there would leak real time into
// round decisions, breaking replay, session reuse and the
// worker-count-independence contract. The serving and benchmarking
// layers (internal/serve, internal/bench) measure latency by design and
// are out of scope, as are cmd/ and the public facade.
var clockScope = append([]string{
	"repro/internal/engine",
	"repro/internal/algos",
	"repro/internal/stream",
	"repro/internal/matching",
	"repro/internal/graph",
	"repro/internal/unionfind",
	"repro/internal/parallel",
	"repro/internal/xrand",
	"repro/internal/cover",
}, DeterministicPkgs...)

// NoClock reports wall-clock reads (time.Now, time.Since, time.Until)
// inside the deterministic packages and the round-loop machinery.
// time.Duration values and timers for tests are fine — the analyzer
// skips _test.go files — but algorithm code must never branch on real
// time.
var NoClock = &Analyzer{
	Name:     "noclock",
	Doc:      "flags time.Now/Since/Until in algorithm and round-loop packages where wall-clock reads break replay and bit-identity; justify with //lint:wallclock",
	Suppress: "wallclock",
	Run:      runNoClock,
}

func runNoClock(pass *Pass) error {
	if !inScope(pass.PkgPath(), clockScope) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Now", "Since", "Until":
			default:
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.objectOf(id).(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(call.Pos(), "wall-clock read time.%s in a deterministic package: round decisions must be pure functions of the input (replay and session reuse depend on it); justify with //lint:wallclock if this never influences results", sel.Sel.Name)
			return true
		})
	}
	return nil
}
