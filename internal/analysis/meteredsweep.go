package analysis

import (
	"go/ast"
	"go/types"
)

// streamPkg is where the metered Source abstraction and its raw sweep
// primitives live; derived views there legitimately forward Sweep.
const streamPkg = "repro/internal/stream"

// MeteredSweep keeps the paper's central meter unforgeable: outside
// internal/stream, calling a Sweep/SweepParallel method reads the data
// without charging a pass, so algorithm, solver and engine code must go
// through ForEach/ForEachParallel (or the stream block helpers) instead.
// Source decorators and serving-layer bookkeeping that deliberately stay
// off the meter carry a //lint:unmetered justification.
var MeteredSweep = &Analyzer{
	Name:     "meteredsweep",
	Doc:      "flags Sweep/SweepParallel method calls outside internal/stream: they bypass the pass accountant; use the metered ForEach/ForEachParallel or justify with //lint:unmetered",
	Suppress: "unmetered",
	Run:      runMeteredSweep,
}

func runMeteredSweep(pass *Pass) error {
	if pass.PkgPath() == streamPkg {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Sweep" && name != "SweepParallel" {
				return true
			}
			// Only method calls count: a package-level function that
			// happens to be called Sweep is not a Source sweep.
			if pass.Info != nil {
				if s := pass.Info.Selections[sel]; s == nil || s.Kind() != types.MethodVal {
					return true
				}
			}
			metered := "ForEach"
			if name == "SweepParallel" {
				metered = "ForEachParallel"
			}
			pass.Reportf(call.Pos(), "%s bypasses the pass accountant; use the metered %s (or justify with //lint:unmetered if this is a view/bookkeeping sweep)", name, metered)
			return true
		})
	}
	return nil
}
