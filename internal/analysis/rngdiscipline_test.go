package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestRNGDiscipline(t *testing.T) {
	diags := analysistest.Run(t, "testdata", "repro/internal/sketch", analysis.RNGDiscipline)
	if len(diags) != 5 {
		t.Errorf("got %d diagnostics, want 5: %v", len(diags), diags)
	}
}

func TestRNGDisciplineXrandExempt(t *testing.T) {
	diags := analysistest.Run(t, "testdata", "repro/internal/xrand", analysis.RNGDiscipline)
	if len(diags) != 0 {
		t.Errorf("xrand may import math/rand, got: %v", diags)
	}
}
