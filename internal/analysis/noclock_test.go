package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestNoClock(t *testing.T) {
	diags := analysistest.Run(t, "testdata", "repro/internal/engine", analysis.NoClock)
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, want 4: %v", len(diags), diags)
	}
}

func TestNoClockOutOfScope(t *testing.T) {
	diags := analysistest.Run(t, "testdata", "repro/internal/serve", analysis.NoClock)
	if len(diags) != 0 {
		t.Errorf("serve measures latency by design, got: %v", diags)
	}
}
