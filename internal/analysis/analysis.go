// Package analysis is the repo's static-analysis framework: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// model (Analyzer / Pass / Diagnostic) plus a package loader built on
// `go list -export` and the standard go/types checker.
//
// The analyzers in this package encode the invariants the conformance
// suites otherwise only catch dynamically — bit-identical determinism
// across worker counts, the unforgeable pass meter, RNG discipline, and
// error-chain integrity (see DESIGN.md §13). cmd/matchlint is the CLI
// driver; `make lint` and CI run it over the whole tree.
//
// # Suppression policy
//
// A finding can be justified away with a directive comment on the same
// line (or the line directly above):
//
//	//lint:<token> <justification>
//
// where <token> is the analyzer's suppression token (e.g. "ordered" for
// maprange). The justification text is mandatory: a bare //lint:<token>
// does not suppress, so every exception in the tree documents *why* the
// invariant holds at that site.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is the one-paragraph description shown by matchlint -list.
	Doc string
	// Suppress is the //lint:<token> that justifies findings away.
	Suppress string
	// IncludeTests makes findings in _test.go files reportable. Most
	// analyzers guard production determinism and skip test files.
	IncludeTests bool
	// Run inspects one package unit and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package unit.
type Pass struct {
	Analyzer *Analyzer
	// Path is the unit's import path. External test packages ("x_test"
	// files) form their own unit with Path = <pkgpath>_test.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	diags []Diagnostic
}

// Diagnostic is one reported finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// PkgPath returns the unit's library import path: for an external test
// unit ("repro/internal/core_test") it strips the _test suffix, so scope
// checks treat test files as part of the package they exercise.
func (p *Pass) PkgPath() string {
	return strings.TrimSuffix(p.Path, "_test")
}

// suppression is one //lint:<token> directive found in a file.
type suppression struct {
	token     string
	justified bool
}

// suppressionsByLine scans a file's comments for //lint: directives.
// A directive covers its own line and the line below it, so both
// trailing comments and a comment line directly above the finding work.
func suppressionsByLine(fset *token.FileSet, f *ast.File) map[int][]suppression {
	out := map[int][]suppression{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//lint:")
			if !ok {
				continue
			}
			tok, just, _ := strings.Cut(rest, " ")
			if tok == "" {
				continue
			}
			s := suppression{token: tok, justified: strings.TrimSpace(just) != ""}
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], s)
			out[line+1] = append(out[line+1], s)
		}
	}
	return out
}

// Unit is one loaded, type-checked package unit ready for analysis.
type Unit struct {
	Path  string // import path; external test units carry a _test suffix
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-check failures. Analysis proceeds on
	// partial information; the CLI surfaces them as fatal.
	TypeErrors []error
}

// Run applies the analyzers to the unit and returns the surviving
// diagnostics: findings in _test.go files are dropped for analyzers that
// exclude tests, and findings covered by a justified //lint:<token>
// directive are suppressed (a bare directive keeps the finding and says
// so, keeping the justification policy honest).
func (u *Unit) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	supp := map[string]map[int][]suppression{}
	for _, f := range u.Files {
		pos := u.Fset.Position(f.Pos())
		supp[pos.Filename] = suppressionsByLine(u.Fset, f)
	}
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     u.Path,
			Fset:     u.Fset,
			Files:    u.Files,
			Pkg:      u.Pkg,
			Info:     u.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, u.Path, err)
		}
	diags:
		for _, d := range pass.diags {
			if !a.IncludeTests && strings.HasSuffix(d.Pos.Filename, "_test.go") {
				continue
			}
			bare := false
			for _, s := range supp[d.Pos.Filename][d.Pos.Line] {
				if s.token != a.Suppress {
					continue
				}
				if s.justified {
					continue diags
				}
				bare = true
			}
			if bare {
				d.Message += fmt.Sprintf(" (bare //lint:%s needs a justification)", a.Suppress)
			}
			out = append(out, d)
		}
	}
	sortDiagnostics(out)
	return out, nil
}

// RunAll applies the analyzers to every unit and returns all surviving
// diagnostics in file/line order.
func RunAll(units []*Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, u := range units {
		ds, err := u.Run(analyzers)
		if err != nil {
			return nil, err
		}
		out = append(out, ds...)
	}
	sortDiagnostics(out)
	return out, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// inScope reports whether path matches any of the given import paths.
func inScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s {
			return true
		}
	}
	return false
}
