package analysis

import (
	"go/ast"
	"go/types"
)

// DeterministicPkgs are the packages whose outputs must be pure
// functions of their inputs: the solver core and its substrates (the
// bit-identical-across-worker-counts contract of DESIGN.md §5), plus the
// low-traffic model packages whose results feed pinned experiment
// tables. Inside them, a bare `range` over a map is a determinism bug
// waiting to happen — Go randomizes map iteration order per statement
// execution, so any order-sensitive consumption (float accumulation
// across keys, first-wins selection, append-then-use) varies run to run.
var DeterministicPkgs = []string{
	"repro/internal/core",
	"repro/internal/sparsify",
	"repro/internal/sketch",
	"repro/internal/semistream",
	"repro/internal/levels",
	"repro/internal/oddset",
	"repro/internal/lp",
	"repro/internal/mapreduce",
	"repro/internal/congest",
	"repro/internal/pack",
}

// MapRange reports `range` statements over map values in the
// deterministic packages. Sites whose consumption is genuinely
// order-insensitive (per-key writes, commutative integer accumulation,
// collect-then-sort) carry a //lint:ordered justification; everything
// else must iterate sorted keys.
var MapRange = &Analyzer{
	Name:     "maprange",
	Doc:      "flags bare range-over-map in the deterministic packages (core, sparsify, sketch, semistream, levels, oddset, lp, mapreduce, congest, pack); sort the keys first or justify with //lint:ordered",
	Suppress: "ordered",
	Run:      runMapRange,
}

func runMapRange(pass *Pass) error {
	if !inScope(pass.PkgPath(), DeterministicPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pass.Reportf(rs.For, "range over map %s iterates in randomized order; sort the keys first or justify with //lint:ordered", exprString(rs.X))
			}
			return true
		})
	}
	return nil
}

// exprString renders simple expressions for diagnostics (identifier or
// dotted selector); anything more complex degrades to "expression".
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return "expression"
}
