// rngdiscipline fixture: math/rand is banned outside internal/xrand,
// and a captured RNG must not be consumed inside parallel callbacks.
package sketch

import (
	"math/rand" // want "import of math/rand outside repro/internal/xrand"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/xrand"
)

func usesGlobalRand() int { return rand.Intn(10) }

type bank struct{}

func (bank) ForEachParallel(workers int, f func(idx int, e graph.Edge)) {}

func capturedInParallelRun(rng *xrand.RNG) []int {
	return parallel.Map(4, 8, func(j int) int {
		return rng.Intn(100) // want "captured by a parallel callback"
	})
}

func capturedInSweepCallback(b bank, rng *xrand.RNG) {
	sink := 0.0
	b.ForEachParallel(4, func(idx int, e graph.Edge) {
		sink += rng.Float64() // want "captured by a parallel callback"
	})
	_ = sink
}

func capturedInGoStmt(rng *xrand.RNG, done chan struct{}) {
	go func() {
		_ = rng.Uint64() // want "captured by a parallel callback"
		close(done)
	}()
	<-done
}

func preSplitIsThePattern(parent *xrand.RNG) []int {
	rngs := parallel.SplitRNGs(parent, 8)
	return parallel.Map(4, 8, func(j int) int {
		return rngs[j].Intn(100) // rngs is a slice; each job owns its child
	})
}

func perJobLocalIsFine(parent *xrand.RNG) []int {
	seeds := make([]uint64, 8)
	for i := range seeds {
		seeds[i] = parent.Uint64()
	}
	return parallel.Map(4, 8, func(j int) int {
		local := xrand.New(seeds[j])
		return local.Intn(100)
	})
}

func justifiedCapture(rng *xrand.RNG) {
	done := make(chan struct{})
	go func() {
		//lint:rng single goroutine, serialized by the channel handshake
		_ = rng.Uint64()
		close(done)
	}()
	<-done
}

func sequentialUseIsFine(rng *xrand.RNG) int {
	t := 0
	for i := 0; i < 4; i++ {
		t += rng.Intn(10)
	}
	return t
}
