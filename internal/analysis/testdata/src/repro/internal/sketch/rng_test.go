// rngdiscipline includes test files: seeding tests from math/rand is how
// the sketch suite once drifted from the splittable discipline.
package sketch

import "math/rand" // want "import of math/rand outside repro/internal/xrand"

func testHelper() int { return rand.Int() }
