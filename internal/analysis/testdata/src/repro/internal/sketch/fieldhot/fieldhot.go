// fieldhot fixture: square-and-multiply exponentiation is banned in the
// sketch subtree, where every hot power has a fixed base that belongs
// in a construction-time window table.
package fieldhot

const prime = 1<<61 - 1

func mulm(a, b uint64) uint64 { return a * b % prime }

func powm(a, e uint64) uint64 {
	r := uint64(1)
	a %= prime
	for e > 0 {
		if e&1 == 1 {
			r = mulm(r, a)
		}
		a = mulm(a, a)
		e >>= 1
	}
	return r
}

// table is the fpPow pattern the analyzer pushes toward: entries built
// with mulm at construction, lookups on the per-update path.
type table struct{ win [16][16]uint64 }

func newTable(z uint64) *table {
	t := &table{}
	base := z % prime
	for w := range t.win {
		t.win[w][0] = 1
		for d := 1; d < 16; d++ {
			t.win[w][d] = mulm(t.win[w][d-1], base)
		}
		base = mulm(t.win[w][15], base)
	}
	return t
}

func (t *table) pow(e uint64) uint64 {
	r := uint64(1)
	for w := 0; e != 0; w++ {
		if d := e & 15; d != 0 {
			r = mulm(r, t.win[w][d])
		}
		e >>= 4
	}
	return r
}

func perUpdateFingerprint(z, key, d uint64) uint64 {
	return mulm(d, powm(z, key)) // want "powm in the sketch hot path"
}

func inverse(a uint64) uint64 {
	//lint:fieldhot the base varies per call; no fixed-base table applies
	return powm(a, prime-2)
}

func tableRead(t *table, key, d uint64) uint64 {
	return mulm(d, t.pow(key)) // the pattern the analyzer pushes toward
}

type otherPow struct{}

func (otherPow) powm(a, e uint64) uint64 { return a }

func methodIsFine(o otherPow) uint64 {
	return o.powm(2, 8) // a method named powm, not the package function
}
