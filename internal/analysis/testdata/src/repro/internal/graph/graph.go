// Package graph is a fixture stub of the real repro/internal/graph.
package graph

// Edge is one weighted edge (stub).
type Edge struct {
	U, V int32
	W    float64
}
