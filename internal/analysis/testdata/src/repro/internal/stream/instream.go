// Negative fixture: inside internal/stream the raw sweep primitives are
// the implementation substrate — meteredsweep must stay silent.
package stream

import "repro/internal/graph"

type Source interface {
	Sweep(f func(idx int, e graph.Edge) bool)
}

type concat struct{ subs []Source }

func (c concat) Sweep(f func(idx int, e graph.Edge) bool) {
	for _, s := range c.subs {
		s.Sweep(f)
	}
}
