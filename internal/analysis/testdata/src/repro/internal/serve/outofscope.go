// Negative fixtures: internal/serve is outside the deterministic scope
// (maprange) and outside the no-wall-clock scope (noclock) — latency
// bookkeeping and cache maps are its job. No analyzer should fire here.
package serve

import "time"

func cacheSizeByTenant(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

func stamp() time.Time { return time.Now() }

func elapsed(t0 time.Time) time.Duration { return time.Since(t0) }
