// Test files are exempt from maprange: assertions over map contents are
// routinely order-insensitive, and flagging them would bury the signal.
package core

func rangesFreely(m map[int]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}
