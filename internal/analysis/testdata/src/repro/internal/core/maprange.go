// maprange fixture: range-over-map in a deterministic package.
package core

import "sort"

type counts map[string]int

func sumsInMapOrder(m map[int]float64) float64 {
	t := 0.0
	for _, v := range m { // want "range over map m iterates in randomized order"
		t += v
	}
	return t
}

func keyOnlyStillFlagged(m map[int]bool) []int {
	var out []int
	for k := range m { // want "range over map m iterates in randomized order"
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func namedMapTypeFlagged(c counts) int {
	n := 0
	for range c { // want "range over map c iterates in randomized order"
		n++
	}
	return n
}

func justifiedIsSuppressed(m map[int]int) int {
	t := 0
	//lint:ordered integer accumulation is commutative; order cannot matter
	for _, v := range m {
		t += v
	}
	return t
}

func bareSuppressionStillFlagged(m map[int]int) int {
	t := 0
	//lint:ordered
	for _, v := range m { // want "bare //lint:ordered needs a justification"
		t += v
	}
	return t
}

func trailingJustification(m map[int]int) int {
	t := 0
	for _, v := range m { //lint:ordered commutative integer sum
		t += v
	}
	return t
}

func slicesAndChannelsAreFine(xs []int, ch chan int, s string) int {
	t := 0
	for _, v := range xs {
		t += v
	}
	for v := range ch {
		t += v
	}
	for range s {
		t++
	}
	for i := range 3 {
		t += i
	}
	return t
}
