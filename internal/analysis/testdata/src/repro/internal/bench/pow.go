// powhot out-of-scope fixture: the bench layer computes reference
// values with math.Pow by design — no table pressure there.
package bench

import "math"

func referenceBudget(n, p float64) float64 {
	return math.Pow(n, 1+1/p)
}
