// Package xrand is a fixture stub of the real repro/internal/xrand:
// just enough surface for analyzer fixtures to type-check. The
// rngdiscipline analyzer matches the import path, so this stand-in
// exercises the same code paths as the real package.
package xrand

// RNG is the deterministic splittable generator (stub).
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Split returns an independent child generator.
func (r *RNG) Split(label uint64) *RNG { return &RNG{state: r.state ^ label} }

// Uint64 returns a uniform 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return r.state
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

// Intn returns a uniform integer in [0, n).
func (r *RNG) Intn(n int) int { return int(r.Uint64() % uint64(n)) }
