package xrand

// powm exists so the fieldhot out-of-scope test has a real call to not
// flag: xrand owns the generic field helpers and sits outside the
// analyzer's sketch subtree, so no diagnostic may fire here.

const mersenne61 = 1<<61 - 1

func mulm61(a, b uint64) uint64 { return a * b % mersenne61 }

func powm(a, e uint64) uint64 {
	r := uint64(1)
	a %= mersenne61
	for e > 0 {
		if e&1 == 1 {
			r = mulm61(r, a)
		}
		a = mulm61(a, a)
		e >>= 1
	}
	return r
}

func outOfScopeUse(z, key uint64) uint64 { return powm(z, key) }
