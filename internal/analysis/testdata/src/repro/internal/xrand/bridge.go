package xrand

// The one place in the tree allowed to import math/rand: the bridge for
// third-party APIs that demand a *rand.Rand (mirrors the real package's
// Std; the rngdiscipline fixture asserts no diagnostic fires here).

import "math/rand"

// Std returns a *rand.Rand driven by a deterministic RNG.
func Std(seed uint64) *rand.Rand { return rand.New(&source{rng: New(seed)}) }

type source struct{ rng *RNG }

func (s *source) Int63() int64    { return int64(s.rng.Uint64() >> 1) }
func (s *source) Seed(seed int64) { s.rng = New(uint64(seed)) }
