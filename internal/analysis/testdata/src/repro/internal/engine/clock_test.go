// Test files may read the clock: deadlines and latency assertions are
// test machinery, not algorithm state.
package engine

import "time"

func pollUntil(deadline time.Time) bool {
	return time.Now().After(deadline)
}
