// noclock fixture: the round-loop driver must not read the wall clock —
// replay and session reuse require rounds to be pure functions of input.
package engine

import (
	"time"

	tm "time"
)

func stampsRound() time.Time {
	return time.Now() // want "wall-clock read time.Now"
}

func measuresRound(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall-clock read time.Since"
}

func deadlineCheck(d time.Time) time.Duration {
	return time.Until(d) // want "wall-clock read time.Until"
}

func aliasDoesNotHide() tm.Time {
	return tm.Now() // want "wall-clock read time.Now"
}

func durationsAreData(d time.Duration) time.Duration {
	return d * 2 // constructing and passing durations is fine
}

func parsingIsFine() (time.Time, error) {
	return time.Parse(time.RFC3339, "2015-06-13T00:00:00Z")
}

func justifiedRead() time.Time {
	//lint:wallclock diagnostics only: logged, never branches the round loop
	return time.Now()
}

type fakeClock struct{}

func (fakeClock) Now() int64 { return 0 }

func injectedClockIsFine(c fakeClock) int64 {
	return c.Now() // method on an injected clock, not package time
}
