// errwrapbudget fixture: error values must be wrapped with %w so
// errors.Is/errors.As matching survives the layer boundary.
package lp

import (
	"errors"
	"fmt"
)

var errBudget = errors.New("budget exceeded")

func reformatsLosesChain(err error) error {
	return fmt.Errorf("solve failed: %v", err) // want "error formatted with %v loses the chain"
}

func stringVerbLosesChain(err error) error {
	return fmt.Errorf("solve failed: %s", err) // want "error formatted with %s loses the chain"
}

func quotedVerbLosesChain(err error) error {
	return fmt.Errorf("solve failed: %q", err) // want "error formatted with %q loses the chain"
}

func wrapKeepsChain(err error) error {
	return fmt.Errorf("solve failed: %w", err)
}

func laterArgCaught(round int, err error) error {
	return fmt.Errorf("round %d: %v", round, err) // want "error formatted with %v loses the chain"
}

func starWidthDoesNotShift(width int, err error) error {
	return fmt.Errorf("%*d %w", width, width, err)
}

func typeVerbIsFine(err error) error {
	return fmt.Errorf("unexpected error type %T", err)
}

func concreteErrorTypeCaught() error {
	err := errors.Join(errBudget)
	return fmt.Errorf("joined: %v", err) // want "error formatted with %v loses the chain"
}

func nonErrorsAreFine(n int, s string, f float64) error {
	return fmt.Errorf("n=%d s=%s f=%v", n, s, f)
}

func justifiedOpaque(err error) error {
	//lint:nowrap boundary redaction: internal error text must not leak to tenants
	return fmt.Errorf("internal failure: %v", err)
}

func errorStringIsFine(err error) error {
	return fmt.Errorf("solve failed: %s", err.Error()) // a string, not an error value
}
