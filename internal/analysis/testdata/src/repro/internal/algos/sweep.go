// meteredsweep fixture: algorithm code must consume sources through the
// metered ForEach/ForEachParallel, never the raw sweep primitives.
package algos

import "repro/internal/graph"

// Source mirrors the sweep surface of the real stream.Source.
type Source interface {
	ForEach(f func(idx int, e graph.Edge) bool)
	ForEachParallel(workers int, f func(idx int, e graph.Edge))
	Sweep(f func(idx int, e graph.Edge) bool)
	SweepParallel(workers int, f func(idx int, e graph.Edge))
}

func countsEdgesOffMeter(src Source) int {
	n := 0
	src.Sweep(func(idx int, e graph.Edge) bool { // want "Sweep bypasses the pass accountant"
		n++
		return true
	})
	return n
}

func parallelOffMeter(src Source) {
	src.SweepParallel(4, func(idx int, e graph.Edge) {}) // want "SweepParallel bypasses the pass accountant"
}

func meteredIsThePath(src Source) int {
	n := 0
	src.ForEach(func(idx int, e graph.Edge) bool {
		n++
		return true
	})
	src.ForEachParallel(4, func(idx int, e graph.Edge) {})
	return n
}

type view struct{ parent Source }

func (v view) enumerate(f func(idx int, e graph.Edge) bool) {
	//lint:unmetered derived view: the parent is not charged, the view meters its own passes
	v.parent.Sweep(f)
}

func bareJustification(src Source) {
	//lint:unmetered
	src.Sweep(func(idx int, e graph.Edge) bool { return true }) // want "bare //lint:unmetered needs a justification"
}

// Sweep the package-level function is not a Source sweep.
func Sweep() {}

func packageFuncIsFine() { Sweep() }
