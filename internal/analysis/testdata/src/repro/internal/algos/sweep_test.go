// Test files may sweep raw: conformance suites verify the sweep
// primitives themselves.
package algos

import "repro/internal/graph"

func sweepInTest(src Source) {
	src.Sweep(func(idx int, e graph.Edge) bool { return true })
}
