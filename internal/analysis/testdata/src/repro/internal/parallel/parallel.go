// Package parallel is a fixture stub of the real repro/internal/parallel
// worker pool: same import path and entry-point names, minimal bodies.
package parallel

import "repro/internal/xrand"

// Run executes fn(job) for every job in [0, jobs) (stub: sequential).
func Run(workers, jobs int, fn func(job int)) {
	for j := 0; j < jobs; j++ {
		fn(j)
	}
}

// Map executes fn over [0, jobs) and collects results in job order.
func Map(workers, jobs int, fn func(job int) int) []int {
	out := make([]int, jobs)
	Run(workers, jobs, func(j int) { out[j] = fn(j) })
	return out
}

// Range is a half-open shard (stub).
type Range struct{ Lo, Hi int }

// ForEachShard partitions [0, n) and runs fn per shard (stub).
func ForEachShard(workers, n int, fn func(shard int, r Range)) {
	fn(0, Range{0, n})
}

// SplitRNGs derives one child generator per job sequentially.
func SplitRNGs(parent *xrand.RNG, jobs int) []*xrand.RNG {
	out := make([]*xrand.RNG, jobs)
	for i := range out {
		out[i] = parent.Split(uint64(i))
	}
	return out
}
