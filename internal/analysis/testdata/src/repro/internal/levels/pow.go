// powhot fixture: math.Pow in a hot solver package must live in a
// construction-time table, not the per-item path.
package levels

import (
	"math"

	m "math"
)

func perUpdate(eps float64, k int) float64 {
	return math.Pow(1+eps, float64(k)) // want "math.Pow in a hot solver package"
}

func aliasDoesNotHide(level int) float64 {
	return m.Pow(0.5, float64(level)) // want "math.Pow in a hot solver package"
}

var table = buildTable(0.25)

func buildTable(eps float64) []float64 {
	t := make([]float64, 64)
	for k := range t {
		//lint:powtable table construction; per-call path reads the table
		t[k] = math.Pow(1+eps, float64(k))
	}
	return t
}

func tableRead(k int) float64 {
	return table[k] // the pattern the analyzer pushes toward
}

func exponentialIsFine(x float64) float64 {
	return math.Exp(x) // only Pow is a table candidate
}

type fakeMath struct{}

func (fakeMath) Pow(a, b float64) float64 { return a }

func methodOnValueIsFine(fm fakeMath) float64 {
	return fm.Pow(2, 8) // method named Pow, not package math
}
