package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestMeteredSweep(t *testing.T) {
	diags := analysistest.Run(t, "testdata", "repro/internal/algos", analysis.MeteredSweep)
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
}

func TestMeteredSweepStreamExempt(t *testing.T) {
	diags := analysistest.Run(t, "testdata", "repro/internal/stream", analysis.MeteredSweep)
	if len(diags) != 0 {
		t.Errorf("internal/stream owns the raw sweeps, got: %v", diags)
	}
}
