package analysis

// All returns the repo's analyzers in the order matchlint runs them.
func All() []*Analyzer {
	return []*Analyzer{
		MapRange,
		RNGDiscipline,
		MeteredSweep,
		NoClock,
		PowHot,
		FieldHot,
		ErrWrapBudget,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
