package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestMapRange(t *testing.T) {
	diags := analysistest.Run(t, "testdata", "repro/internal/core", analysis.MapRange)
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, want 4: %v", len(diags), diags)
	}
}

func TestMapRangeOutOfScope(t *testing.T) {
	diags := analysistest.Run(t, "testdata", "repro/internal/serve", analysis.MapRange)
	if len(diags) != 0 {
		t.Errorf("out-of-scope package produced diagnostics: %v", diags)
	}
}
