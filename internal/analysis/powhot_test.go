package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestPowHot(t *testing.T) {
	diags := analysistest.Run(t, "testdata", "repro/internal/levels", analysis.PowHot)
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
}

func TestPowHotOutOfScope(t *testing.T) {
	diags := analysistest.Run(t, "testdata", "repro/internal/bench", analysis.PowHot)
	if len(diags) != 0 {
		t.Errorf("bench computes reference values by design, got: %v", diags)
	}
}
