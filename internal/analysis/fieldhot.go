package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// fieldScope is the package subtree where GF(2^61−1) exponentiation is
// hot: every sketch update computes z^key for a fingerprint base fixed
// at spec construction, so square-and-multiply (~2·61 mulm per call)
// belongs in a fixed-base window table (fpPow, ~15 mulm) built once per
// spec. The field is exact, so the table is bit-identical — the same
// argument as the powhot pow tables.
const fieldScope = "repro/internal/sketch"

// FieldHot reports powm calls in internal/sketch, where update and
// decode paths must go through the spec's fixed-base window table.
// Reference scalar entry points and varying-base sites (the modular
// inverse) are justified with //lint:fieldhot.
var FieldHot = &Analyzer{
	Name:     "fieldhot",
	Doc:      "flags powm (square-and-multiply) in internal/sketch, where fixed-base z^e belongs in the spec's fpPow window table (bit-identical, ~15 mulm vs ~120); justify reference or varying-base sites with //lint:fieldhot",
	Suppress: "fieldhot",
	Run:      runFieldHot,
}

func runFieldHot(pass *Pass) error {
	if p := pass.PkgPath(); p != fieldScope && !strings.HasPrefix(p, fieldScope+"/") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "powm" {
				return true
			}
			fn, ok := pass.objectOf(id).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pass.Pkg.Path() {
				return true
			}
			pass.Reportf(call.Pos(), "powm in the sketch hot path: a fixed-base z^e belongs in the spec's fpPow window table (bit-identical, built once per spec); justify reference or varying-base sites with //lint:fieldhot")
			return true
		})
	}
	return nil
}
