package parallel

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/xrand"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != 1 {
		t.Fatalf("Workers(-3) = %d", got)
	}
}

func TestShardsCoverExactly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000, 1001} {
		for _, s := range []int{1, 2, 3, 8, 64, 2000} {
			shards := Shards(n, s)
			covered := 0
			prev := 0
			for i, r := range shards {
				if r.Lo != prev {
					t.Fatalf("n=%d s=%d shard %d starts at %d, want %d", n, s, i, r.Lo, prev)
				}
				if r.Len() <= 0 {
					t.Fatalf("n=%d s=%d shard %d empty", n, s, i)
				}
				covered += r.Len()
				prev = r.Hi
			}
			if covered != n {
				t.Fatalf("n=%d s=%d covered %d", n, s, covered)
			}
			if n > 0 && len(shards) > s {
				t.Fatalf("n=%d s=%d produced %d shards", n, s, len(shards))
			}
		}
	}
}

func TestShardsBalanced(t *testing.T) {
	shards := Shards(10, 4)
	if len(shards) != 4 {
		t.Fatalf("got %d shards", len(shards))
	}
	for _, r := range shards {
		if r.Len() < 2 || r.Len() > 3 {
			t.Fatalf("unbalanced shard %+v", r)
		}
	}
}

func TestRunExecutesEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const jobs = 257
		var counts [jobs]atomic.Int64
		Run(workers, jobs, func(j int) { counts[j].Add(1) })
		for j := range counts {
			if c := counts[j].Load(); c != 1 {
				t.Fatalf("workers=%d job %d ran %d times", workers, j, c)
			}
		}
	}
}

func TestMapOrderedAndWorkerInvariant(t *testing.T) {
	fn := func(j int) int { return j*j + 1 }
	seq := Map(1, 100, fn)
	par := Map(7, 100, fn)
	for i := range seq {
		if seq[i] != fn(i) || par[i] != seq[i] {
			t.Fatalf("index %d: seq=%d par=%d want %d", i, seq[i], par[i], fn(i))
		}
	}
}

func TestForEachShardCoversAll(t *testing.T) {
	const n = 1003
	var hits [n]atomic.Int64
	ForEachShard(5, n, func(_ int, r Range) {
		for i := r.Lo; i < r.Hi; i++ {
			hits[i].Add(1)
		}
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d hit %d times", i, hits[i].Load())
		}
	}
}

func TestSplitRNGsWorkerInvariant(t *testing.T) {
	a := SplitRNGs(xrand.New(42), 8)
	b := SplitRNGs(xrand.New(42), 8)
	for i := range a {
		if a[i].Uint64() != b[i].Uint64() {
			t.Fatalf("child %d differs", i)
		}
	}
	// Children must be pairwise distinct streams.
	c := SplitRNGs(xrand.New(42), 8)
	seen := map[uint64]bool{}
	for _, r := range c {
		v := r.Uint64()
		if seen[v] {
			t.Fatalf("duplicate child stream output %d", v)
		}
		seen[v] = true
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		jp, ok := r.(*JobPanic)
		if !ok {
			t.Fatalf("unexpected panic payload %T: %v", r, r)
		}
		if jp.Value != "boom" {
			t.Fatalf("original panic value lost: %v", jp.Value)
		}
		if !strings.Contains(string(jp.Stack), "TestRunPropagatesPanic") {
			t.Fatalf("worker stack does not reach the panic site:\n%s", jp.Stack)
		}
		if !strings.Contains(jp.String(), "boom") {
			t.Fatalf("String() lost the value: %s", jp.String())
		}
	}()
	Run(4, 64, func(j int) {
		if j == 13 {
			panic("boom")
		}
	})
}

func TestRunZeroJobs(t *testing.T) {
	Run(4, 0, func(int) { t.Fatal("should not run") })
	if out := Map(4, 0, func(int) int { return 1 }); len(out) != 0 {
		t.Fatalf("Map on zero jobs returned %v", out)
	}
}
