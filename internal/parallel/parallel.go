// Package parallel is the worker-pool substrate of the sharded
// sampling/sparsification pipeline (see DESIGN.md, "Parallel pipeline").
//
// The contract every user of this package relies on is *determinism*: the
// decomposition of work into jobs or shards is a function of the input
// only — never of the worker count — per-shard randomness is derived by
// splitting a parent generator sequentially before any goroutine starts,
// and results are merged in job order. Consequently a computation run
// with Workers: k is bit-identical to the same computation run with
// Workers: 1; the worker count changes wall-clock time and nothing else.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/xrand"
)

// Workers resolves a requested worker count: values > 0 are taken as-is,
// 0 selects runtime.GOMAXPROCS(0), and negative values select 1
// (sequential execution).
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	if requested < 0 {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// Range is a half-open shard [Lo, Hi) of an index space.
type Range struct{ Lo, Hi int }

// Len returns the number of indices in the shard.
func (r Range) Len() int { return r.Hi - r.Lo }

// Contains reports whether i falls inside the shard.
func (r Range) Contains(i int) bool { return i >= r.Lo && i < r.Hi }

// Shards splits [0, n) into at most maxShards contiguous near-equal
// ranges (the first n mod s shards are one element longer). The
// decomposition is a pure function of n and maxShards; callers that need
// worker-independent output must therefore pass a maxShards that does not
// depend on the worker count, or use shard-local computations whose merge
// is associative over any contiguous partition (all callers in this
// repository are in the second category).
func Shards(n, maxShards int) []Range {
	if n <= 0 {
		return nil
	}
	if maxShards < 1 {
		maxShards = 1
	}
	if maxShards > n {
		maxShards = n
	}
	out := make([]Range, 0, maxShards)
	base := n / maxShards
	rem := n % maxShards
	lo := 0
	for s := 0; s < maxShards; s++ {
		hi := lo + base
		if s < rem {
			hi++
		}
		out = append(out, Range{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// JobPanic wraps a panic raised inside a parallel job: the original
// panic value plus the worker goroutine's stack at the panic site. Run
// re-raises it on the calling goroutine, so the faulting frame survives
// the pool boundary (a bare re-panic would point only at Run itself).
type JobPanic struct {
	Value any    // the job's original panic value
	Stack []byte // debug.Stack() captured on the worker
}

func (p *JobPanic) String() string {
	return fmt.Sprintf("parallel: job panicked: %v\n\nworker stack:\n%s", p.Value, p.Stack)
}

// Run executes fn(job) for every job in [0, jobs) on up to workers
// goroutines (resolved via Workers). With one worker the jobs run on the
// calling goroutine in increasing order — panics propagate untouched —
// with more, jobs are claimed from an atomic counter, so each runs
// exactly once but interleaving is unspecified; fn must not depend on
// cross-job ordering. The first panic in any job is re-raised on the
// calling goroutine as a *JobPanic after all workers stop.
func Run(workers, jobs int, fn func(job int)) {
	if jobs <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > jobs {
		workers = jobs
	}
	if workers <= 1 {
		for j := 0; j < jobs; j++ {
			fn(j)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var panicked atomic.Pointer[JobPanic]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &JobPanic{Value: r, Stack: debug.Stack()})
				}
			}()
			for panicked.Load() == nil {
				j := int(next.Add(1))
				if j >= jobs {
					return
				}
				fn(j)
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
}

// Map executes fn over [0, jobs) with Run and returns the results in job
// order — the ordered merge that keeps sharded computations bit-identical
// to their sequential counterparts.
func Map[T any](workers, jobs int, fn func(job int) T) []T {
	out := make([]T, jobs)
	Run(workers, jobs, func(j int) { out[j] = fn(j) })
	return out
}

// ForEachShard partitions [0, n) into one shard per resolved worker and
// runs fn(shardIndex, shard) for each. The partition depends on the
// worker count, so fn's effects must be independent of how [0, n) is cut
// into contiguous ranges (e.g. per-index work with an order-insensitive
// or index-keyed merge).
func ForEachShard(workers, n int, fn func(shard int, r Range)) {
	shards := Shards(n, Workers(workers))
	Run(workers, len(shards), func(s int) { fn(s, shards[s]) })
}

// SplitRNGs derives one child generator per job by splitting the parent
// sequentially (labels 0..jobs-1) before any worker starts. The children
// are therefore identical regardless of how many goroutines later consume
// them. The parent's state advances exactly jobs splits.
func SplitRNGs(parent *xrand.RNG, jobs int) []*xrand.RNG {
	out := make([]*xrand.RNG, jobs)
	for i := range out {
		out[i] = parent.Split(uint64(i))
	}
	return out
}
