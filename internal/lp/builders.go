package lp

import (
	"math"

	"repro/internal/graph"
)

// Builders for the paper's LP formulations on small graphs. Odd sets are
// enumerated exhaustively (exponential) — these builders exist for
// verification experiments on instances with at most ~16 vertices.

// OddSets enumerates all odd sets (3 <= |U| <= maxSize, ||U||_b odd) as
// vertex lists.
func OddSets(g *graph.Graph, maxSize int) [][]int {
	var sets [][]int
	g.EnumerateOddSets(maxSize, func(set []int) bool {
		sets = append(sets, append([]int(nil), set...))
		return true
	})
	return sets
}

// MatchingLP1 builds the exact matching LP (LP1): variables y_e,
// maximize Σ w_e y_e subject to vertex degree constraints and all odd-set
// constraints. Returns the optimum β*.
func MatchingLP1(g *graph.Graph) (float64, Status) {
	m := g.M()
	obj := make([]float64, m)
	for i, e := range g.Edges() {
		obj[i] = e.W
	}
	p := NewProblem(obj)
	addDegreeRows(p, g)
	for _, set := range OddSets(g, g.N()) {
		row := make([]float64, m)
		mask := g.SetMask(set)
		for i, e := range g.Edges() {
			if mask[e.U] && mask[e.V] {
				row[i] = 1
			}
		}
		p.AddLE(row, math.Floor(float64(g.SetBNorm(set))/2))
	}
	_, v, st := p.Solve()
	return v, st
}

// BipartiteRelaxation builds LP1 without the odd-set constraints (the
// fractional matching polytope); its value can exceed β* on nonbipartite
// graphs — the Section 1 triangle example quantifies the gap.
func BipartiteRelaxation(g *graph.Graph) (float64, Status) {
	m := g.M()
	obj := make([]float64, m)
	for i, e := range g.Edges() {
		obj[i] = e.W
	}
	p := NewProblem(obj)
	addDegreeRows(p, g)
	_, v, st := p.Solve()
	return v, st
}

func addDegreeRows(p *Problem, g *graph.Graph) {
	m := g.M()
	for v := 0; v < g.N(); v++ {
		row := make([]float64, m)
		any := false
		for i, e := range g.Edges() {
			if int(e.U) == v || int(e.V) == v {
				row[i] = 1
				any = true
			}
		}
		if any {
			p.AddLE(row, float64(g.B(v)))
		}
	}
}

// MatchingDualLP2 builds and solves the dual (LP2): variables x_i and
// z_U, minimize Σ b_i x_i + Σ floor(||U||_b/2) z_U subject to edge cover
// constraints. Returns the optimum (equal to LP1's by strong duality).
func MatchingDualLP2(g *graph.Graph) (float64, Status) {
	sets := OddSets(g, g.N())
	n := g.N()
	nv := n + len(sets)
	obj := make([]float64, nv) // minimize => maximize negation
	for v := 0; v < n; v++ {
		obj[v] = -float64(g.B(v))
	}
	for s, set := range sets {
		obj[n+s] = -math.Floor(float64(g.SetBNorm(set)) / 2)
	}
	p := NewProblem(obj)
	masks := make([][]bool, len(sets))
	for s, set := range sets {
		masks[s] = g.SetMask(set)
	}
	for _, e := range g.Edges() {
		row := make([]float64, nv)
		row[e.U] += 1
		row[e.V] += 1
		for s := range sets {
			if masks[s][e.U] && masks[s][e.V] {
				row[n+s] = 1
			}
		}
		p.AddGE(row, e.W)
	}
	_, v, st := p.Solve()
	return -v, st
}

// PenaltyPrimalLP3 builds the penalty-based primal (LP3, unit weights):
// max Σ y_e - 3 Σ μ_i, where each vertex may exceed its capacity by 2μ_i
// and each odd set by Σ_{i∈U} μ_i, charged in the objective. The paper
// proves (via total dual integrality) that the optimum equals LP1's for
// w_ij = 1. Only meaningful for unit-weight graphs.
func PenaltyPrimalLP3(g *graph.Graph) (float64, Status) {
	m := g.M()
	n := g.N()
	nv := m + n // y then mu
	obj := make([]float64, nv)
	for i := range g.Edges() {
		obj[i] = 1
	}
	for v := 0; v < n; v++ {
		obj[m+v] = -3
	}
	p := NewProblem(obj)
	for v := 0; v < n; v++ {
		row := make([]float64, nv)
		for i, e := range g.Edges() {
			if int(e.U) == v || int(e.V) == v {
				row[i] = 1
			}
		}
		row[m+v] = -2
		p.AddLE(row, float64(g.B(v)))
	}
	for _, set := range OddSets(g, g.N()) {
		row := make([]float64, nv)
		mask := g.SetMask(set)
		for i, e := range g.Edges() {
			if mask[e.U] && mask[e.V] {
				row[i] = 1
			}
		}
		for _, v := range set {
			row[m+v] = -1
		}
		p.AddLE(row, math.Floor(float64(g.SetBNorm(set))/2))
	}
	_, v, st := p.Solve()
	return v, st
}

// PenaltyDualLP4 builds the penalty dual (LP4, unit weights): LP2 plus
// the box constraints 2x_i + Σ_{U∋i} z_U <= 3 contributed by the penalty
// variables — the formulation whose width is an absolute constant (<= 6).
// Returns the optimum.
func PenaltyDualLP4(g *graph.Graph) (float64, Status) {
	sets := OddSets(g, g.N())
	n := g.N()
	nv := n + len(sets)
	obj := make([]float64, nv)
	for v := 0; v < n; v++ {
		obj[v] = -float64(g.B(v))
	}
	for s, set := range sets {
		obj[n+s] = -math.Floor(float64(g.SetBNorm(set)) / 2)
	}
	p := NewProblem(obj)
	masks := make([][]bool, len(sets))
	for s, set := range sets {
		masks[s] = g.SetMask(set)
	}
	for _, e := range g.Edges() {
		row := make([]float64, nv)
		row[e.U] += 1
		row[e.V] += 1
		for s := range sets {
			if masks[s][e.U] && masks[s][e.V] {
				row[n+s] = 1
			}
		}
		p.AddGE(row, 1)
	}
	// Penalty box: 2x_i + Σ_{U∋i} z_U <= 3.
	for v := 0; v < n; v++ {
		row := make([]float64, nv)
		row[v] = 2
		for s := range sets {
			if masks[s][v] {
				row[n+s] = 1
			}
		}
		p.AddLE(row, 3)
	}
	_, v, st := p.Solve()
	return -v, st
}

// WidthLP2 measures the width of the standard dual LP2's covering rows:
// the maximum of (x_i + x_j + Σ_{U∋i,j} z_U)/w_e over the region
// normalized by the objective bound b·x + Σ floor z <= beta. This grows
// with beta (and hence with n for unit weights) — the "width parameter of
// LP1 is at least n" observation. maxSetSize limits the enumerated odd
// sets (the width is attained on vertex duals, so restricting sets does
// not change the answer).
func WidthLP2(g *graph.Graph, beta float64, maxSetSize int) float64 {
	sets := OddSets(g, maxSetSize)
	n := g.N()
	nv := n + len(sets)
	masks := make([][]bool, len(sets))
	for s, set := range sets {
		masks[s] = g.SetMask(set)
	}
	width := 0.0
	for _, e := range g.Edges() {
		obj := make([]float64, nv)
		obj[e.U] += 1
		obj[e.V] += 1
		for s := range sets {
			if masks[s][e.U] && masks[s][e.V] {
				obj[n+s] = 1
			}
		}
		p := NewProblem(obj)
		row := make([]float64, nv)
		for v := 0; v < n; v++ {
			row[v] = float64(g.B(v))
		}
		for s, set := range sets {
			row[n+s] = math.Floor(float64(g.SetBNorm(set)) / 2)
		}
		p.AddLE(row, beta)
		_, v, st := p.Solve()
		if st == Optimal && v/e.W > width {
			width = v / e.W
		}
		if st == Unbounded {
			return math.Inf(1)
		}
	}
	return width
}

// WidthLP4 measures the width of the penalty dual LP4's covering rows
// under its box constraints 2x_i + Σ_{U∋i} z_U <= 3; the paper proves it
// is at most 6 regardless of the graph or the odd-set family.
func WidthLP4(g *graph.Graph, maxSetSize int) float64 {
	sets := OddSets(g, maxSetSize)
	n := g.N()
	nv := n + len(sets)
	masks := make([][]bool, len(sets))
	for s, set := range sets {
		masks[s] = g.SetMask(set)
	}
	width := 0.0
	for _, e := range g.Edges() {
		obj := make([]float64, nv)
		obj[e.U] += 1
		obj[e.V] += 1
		for s := range sets {
			if masks[s][e.U] && masks[s][e.V] {
				obj[n+s] = 1
			}
		}
		p := NewProblem(obj)
		for v := 0; v < n; v++ {
			row := make([]float64, nv)
			row[v] = 2
			for s := range sets {
				if masks[s][v] {
					row[n+s] = 1
				}
			}
			p.AddLE(row, 3)
		}
		_, v, st := p.Solve()
		if st == Optimal && v > width {
			width = v
		}
		if st == Unbounded {
			return math.Inf(1)
		}
	}
	return width
}
