package lp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// exactMWMBrute computes maximum-weight matching weight by brute force.
func exactMWMBrute(g *graph.Graph) float64 {
	used := make([]bool, g.N())
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == g.M() {
			return 0
		}
		best := rec(i + 1)
		e := g.Edge(i)
		if !used[e.U] && !used[e.V] {
			used[e.U], used[e.V] = true, true
			if w := e.W + rec(i+1); w > best {
				best = w
			}
			used[e.U], used[e.V] = false, false
		}
		return best
	}
	return rec(0)
}

func smallGraph(seed uint64) *graph.Graph {
	r := xrand.New(seed)
	n := 4 + r.Intn(4) // 4..7
	m := 3 + r.Intn(8)
	return graph.GNM(n, m, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 9}, seed+5)
}

func TestLP1MatchesIntegralOptimum(t *testing.T) {
	// With all odd-set constraints, LP1 is the exact matching polytope
	// (b = 1): the LP optimum equals the integral optimum.
	f := func(seed uint64) bool {
		g := smallGraph(seed)
		v, st := MatchingLP1(g)
		if st != Optimal {
			return false
		}
		return math.Abs(v-exactMWMBrute(g)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStrongDualityLP1LP2(t *testing.T) {
	f := func(seed uint64) bool {
		g := smallGraph(seed)
		p, st1 := MatchingLP1(g)
		d, st2 := MatchingDualLP2(g)
		if st1 != Optimal || st2 != Optimal {
			return false
		}
		return math.Abs(p-d) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBipartiteRelaxationGapOnTriangle(t *testing.T) {
	g := graph.TriangleChain(1) // one unit triangle
	frac, st := BipartiteRelaxation(g)
	if st != Optimal {
		t.Fatal(st)
	}
	if math.Abs(frac-1.5) > 1e-7 {
		t.Fatalf("fractional value %f, want 1.5", frac)
	}
	exact, st := MatchingLP1(g)
	if st != Optimal || math.Abs(exact-1) > 1e-7 {
		t.Fatalf("odd-set LP value %f, want 1", exact)
	}
}

func TestBipartiteRelaxationTightOnBipartite(t *testing.T) {
	g := graph.Bipartite(4, 4, 10, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 7}, 9)
	frac, _ := BipartiteRelaxation(g)
	exact, _ := MatchingLP1(g)
	if math.Abs(frac-exact) > 1e-6 {
		t.Fatalf("bipartite gap should vanish: %f vs %f", frac, exact)
	}
}

func TestTriangleGapGadget(t *testing.T) {
	// The Section 1 example: weights {1, 1, 10ε} on a triangle. The
	// integral optimum is 1, the bipartite relaxation is exactly 1 + 5ε.
	for _, eps := range []float64{0.02, 0.05, 0.1} {
		g := graph.TriangleGap(eps)
		exact, _ := MatchingLP1(g)
		if math.Abs(exact-1) > 1e-6 {
			t.Fatalf("eps=%f: integral LP %f, want 1", eps, exact)
		}
		frac, _ := BipartiteRelaxation(g)
		if math.Abs(frac-(1+5*eps)) > 1e-6 {
			t.Fatalf("eps=%f: bipartite relaxation %f, want %f", eps, frac, 1+5*eps)
		}
	}
}

func TestPenaltyLP3EqualsLP1Unweighted(t *testing.T) {
	// The paper: "the objective function has not increased from LP1 (for
	// wij = 1)" — and it cannot decrease because μ = 0 recovers LP1.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 4 + r.Intn(3)
		m := 3 + r.Intn(6)
		g := graph.GNM(n, m, graph.WeightConfig{Mode: graph.UnitWeights}, seed+13)
		v1, st1 := MatchingLP1(g)
		v3, st3 := PenaltyPrimalLP3(g)
		if st1 != Optimal || st3 != Optimal {
			return false
		}
		return math.Abs(v1-v3) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPenaltyLP4EqualsLP2Unweighted(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 4 + r.Intn(3)
		m := 3 + r.Intn(6)
		g := graph.GNM(n, m, graph.WeightConfig{Mode: graph.UnitWeights}, seed+17)
		v2, st2 := MatchingDualLP2(g)
		v4, st4 := PenaltyDualLP4(g)
		if st2 != Optimal || st4 != Optimal {
			return false
		}
		// LP4 adds constraints to a minimization, so v4 >= v2; the paper
		// proves no increase: v4 == v2.
		return math.Abs(v2-v4) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestWidthSeparation(t *testing.T) {
	// LP4's width stays <= 6 (absolute constant) at every size; LP2's
	// width equals the objective bound β* ≈ n/2 for complete unit-weight
	// graphs, overtaking LP4 once n >= 14.
	for _, n := range []int{6, 10, 14, 16} {
		g := graph.GNM(n, n*(n-1)/2, graph.WeightConfig{Mode: graph.UnitWeights}, uint64(n))
		w4 := WidthLP4(g, 3)
		if w4 > 6+1e-6 {
			t.Fatalf("n=%d: LP4 width %f > 6", n, w4)
		}
		beta := float64(n / 2) // K_n unit weights: perfect matching
		w2 := WidthLP2(g, beta, 3)
		if math.Abs(w2-beta) > 1e-6 {
			t.Fatalf("n=%d: LP2 width %f, want β=%f", n, w2, beta)
		}
		if n >= 14 && w2 <= w4 {
			t.Fatalf("n=%d: width separation missing: LP2 %f <= LP4 %f", n, w2, w4)
		}
	}
}

func TestLayeredLP10VsLP11(t *testing.T) {
	// Theorem 23: β̂ <= β̃ <= (1+ε)β̂ on discretized-weight graphs.
	epsilon := 1.0 / 16
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 4 + r.Intn(2) // 4..5 (layered LP is big)
		m := 3 + r.Intn(5)
		g := graph.GNM(n, m, graph.WeightConfig{Mode: graph.PowersOf, Eps: epsilon, Levels: 6}, seed+23)
		bHat, st1 := DiscretizedDualLP11(g)
		bTilde, st2 := LayeredDualLP10(g, epsilon, g.N())
		if st1 != Optimal || st2 != Optimal {
			return false
		}
		if bTilde < bHat-1e-6 {
			return false // restriction cannot be cheaper
		}
		return bTilde <= (1+epsilon)*bHat+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestOddSetsEnumeration(t *testing.T) {
	g := graph.New(5)
	sets := OddSets(g, 5)
	if len(sets) != 11 { // C(5,3)+C(5,5)
		t.Fatalf("got %d odd sets, want 11", len(sets))
	}
	sets3 := OddSets(g, 3)
	if len(sets3) != 10 {
		t.Fatalf("got %d size-3 sets, want 10", len(sets3))
	}
}
