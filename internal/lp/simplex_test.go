package lp

import (
	"math"
	"testing"
)

func solveOK(t *testing.T, p *Problem) ([]float64, float64) {
	t.Helper()
	x, v, st := p.Solve()
	if st != Optimal {
		t.Fatalf("status %v", st)
	}
	return x, v
}

func TestSimplexBasic2D(t *testing.T) {
	// max 3x + 2y st x+y <= 4, x <= 2 -> x=2,y=2, value 10.
	p := NewProblem([]float64{3, 2})
	p.AddLE([]float64{1, 1}, 4)
	p.AddLE([]float64{1, 0}, 2)
	x, v := solveOK(t, p)
	if math.Abs(v-10) > 1e-7 || math.Abs(x[0]-2) > 1e-7 || math.Abs(x[1]-2) > 1e-7 {
		t.Fatalf("x=%v v=%f", x, v)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	p := NewProblem([]float64{1})
	p.AddLE([]float64{-1}, 0) // x >= 0 only
	if _, _, st := p.Solve(); st != Unbounded {
		t.Fatalf("status %v, want unbounded", st)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	p := NewProblem([]float64{1})
	p.AddLE([]float64{1}, 1)
	p.AddGE([]float64{1}, 2)
	if _, _, st := p.Solve(); st != Infeasible {
		t.Fatalf("status %v, want infeasible", st)
	}
}

func TestSimplexGEAndEquality(t *testing.T) {
	// max x + y st x + y == 3, x <= 1 -> value 3 with x=1,y=2 (any split).
	p := NewProblem([]float64{1, 1})
	p.AddEQ([]float64{1, 1}, 3)
	p.AddLE([]float64{1, 0}, 1)
	x, v := solveOK(t, p)
	if math.Abs(v-3) > 1e-7 {
		t.Fatalf("x=%v v=%f", x, v)
	}
}

func TestSimplexMinViaNegation(t *testing.T) {
	// min 2x + 3y st x + y >= 4, x,y >= 0 -> 8 at x=4.
	p := NewProblem([]float64{-2, -3})
	p.AddGE([]float64{1, 1}, 4)
	x, v := solveOK(t, p)
	if math.Abs(-v-8) > 1e-7 || math.Abs(x[0]-4) > 1e-7 {
		t.Fatalf("x=%v v=%f", x, v)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Degenerate vertex (redundant constraints) must not cycle.
	p := NewProblem([]float64{1, 1})
	p.AddLE([]float64{1, 0}, 1)
	p.AddLE([]float64{0, 1}, 1)
	p.AddLE([]float64{1, 1}, 2)
	p.AddLE([]float64{2, 2}, 4)
	_, v := solveOK(t, p)
	if math.Abs(v-2) > 1e-7 {
		t.Fatalf("v=%f", v)
	}
}

func TestSimplexNoConstraints(t *testing.T) {
	p := NewProblem([]float64{-1, -2})
	x, v, st := p.Solve()
	if st != Optimal || v != 0 || x[0] != 0 {
		t.Fatalf("x=%v v=%f st=%v", x, v, st)
	}
	p2 := NewProblem([]float64{1})
	if _, _, st := p2.Solve(); st != Unbounded {
		t.Fatal("positive objective with no constraints should be unbounded")
	}
}

func TestSimplexRedundantEqualities(t *testing.T) {
	// Same equality twice (redundant row must not break phase 1).
	p := NewProblem([]float64{1})
	p.AddEQ([]float64{1}, 2)
	p.AddEQ([]float64{1}, 2)
	x, v := solveOK(t, p)
	if math.Abs(v-2) > 1e-7 || math.Abs(x[0]-2) > 1e-7 {
		t.Fatalf("x=%v v=%f", x, v)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// max -x st -x <= -3 (i.e. x >= 3) -> x=3, value -3.
	p := NewProblem([]float64{-1})
	p.AddLE([]float64{-1}, -3)
	x, v := solveOK(t, p)
	if math.Abs(x[0]-3) > 1e-7 || math.Abs(v+3) > 1e-7 {
		t.Fatalf("x=%v v=%f", x, v)
	}
}

func TestSimplexBiggerSystem(t *testing.T) {
	// Transportation-like LP with known optimum.
	// max 5a+4b+3c st 2a+3b+c<=5, 4a+b+2c<=11, 3a+4b+2c<=8 -> 13.
	p := NewProblem([]float64{5, 4, 3})
	p.AddLE([]float64{2, 3, 1}, 5)
	p.AddLE([]float64{4, 1, 2}, 11)
	p.AddLE([]float64{3, 4, 2}, 8)
	_, v := solveOK(t, p)
	if math.Abs(v-13) > 1e-7 {
		t.Fatalf("v=%f, want 13", v)
	}
}
