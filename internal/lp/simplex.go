// Package lp provides a small dense linear-programming toolkit: a
// two-phase primal simplex solver (Bland's rule, suitable for the small
// verification instances in this repository) and builders for the paper's
// LP formulations (LP1–LP11), including odd-set constraints enumerated
// exhaustively on small graphs.
//
// It exists to verify the paper's structural claims numerically:
// equality of the penalty relaxations with the exact matching LP
// (LP3/LP4, Theorem 23's LP10 vs LP11), the width separation between the
// standard dual LP2 and the penalty dual LP4 (experiment E6), and the
// triangle-gap example of Section 1 (experiment E5).
package lp

import (
	"fmt"
	"math"
)

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective is unbounded above.
	Unbounded
)

// String renders the status for logs and errors.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Problem is max C·x subject to A x <= B, x >= 0. Use negated rows to
// express >= constraints and paired rows for equalities.
type Problem struct {
	C [][]float64 // unused; reserved (kept nil)
	c []float64
	a [][]float64
	b []float64
}

// NewProblem creates a problem with the given objective (maximize).
func NewProblem(obj []float64) *Problem {
	c := append([]float64(nil), obj...)
	return &Problem{c: c}
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.c) }

// AddLE adds the constraint row·x <= rhs.
func (p *Problem) AddLE(row []float64, rhs float64) {
	if len(row) != len(p.c) {
		panic("lp: row length mismatch")
	}
	p.a = append(p.a, append([]float64(nil), row...))
	p.b = append(p.b, rhs)
}

// AddGE adds the constraint row·x >= rhs.
func (p *Problem) AddGE(row []float64, rhs float64) {
	neg := make([]float64, len(row))
	for i, v := range row {
		neg[i] = -v
	}
	p.AddLE(neg, -rhs)
}

// AddEQ adds row·x == rhs (as a <= and >= pair).
func (p *Problem) AddEQ(row []float64, rhs float64) {
	p.AddLE(row, rhs)
	p.AddGE(row, rhs)
}

const eps = 1e-9

// Solve runs two-phase simplex. On Optimal it returns the variable values
// and the objective.
func (p *Problem) Solve() (x []float64, value float64, status Status) {
	m := len(p.a)
	n := len(p.c)
	if m == 0 {
		// Unconstrained: bounded only if c <= 0.
		x = make([]float64, n)
		for _, cv := range p.c {
			if cv > eps {
				return nil, 0, Unbounded
			}
		}
		return x, 0, Optimal
	}
	// Tableau columns: n structural + m slack + up to m artificial + RHS.
	// Rows with negative RHS are negated (slack coefficient -1) and given
	// an artificial variable.
	needArt := 0
	for i := 0; i < m; i++ {
		if p.b[i] < 0 {
			needArt++
		}
	}
	total := n + m + needArt
	t := make([][]float64, m+1)
	for i := range t {
		t[i] = make([]float64, total+1)
	}
	basis := make([]int, m)
	artCols := []int{}
	ai := 0
	for i := 0; i < m; i++ {
		sign := 1.0
		if p.b[i] < 0 {
			sign = -1
		}
		for j := 0; j < n; j++ {
			t[i][j] = sign * p.a[i][j]
		}
		t[i][n+i] = sign // slack
		t[i][total] = sign * p.b[i]
		if sign < 0 {
			col := n + m + ai
			t[i][col] = 1
			basis[i] = col
			artCols = append(artCols, col)
			ai++
		} else {
			basis[i] = n + i
		}
	}
	// Phase 1: minimize sum of artificials = maximize -sum. The tableau
	// objective row stores negated costs (row entry < 0 marks an
	// improving column), so artificial columns get +1 here.
	if needArt > 0 {
		obj := t[m]
		for j := range obj {
			obj[j] = 0
		}
		for _, col := range artCols {
			obj[col] = 1
		}
		// Price out the artificial basis columns.
		for i := 0; i < m; i++ {
			if t[m][basis[i]] != 0 {
				pivotPrice(t, i, basis[i], m, total)
			}
		}
		if st := simplexLoop(t, basis, m, total); st == Unbounded {
			return nil, 0, Infeasible // cannot happen; defensive
		}
		if t[m][total] < -1e-7 {
			return nil, 0, Infeasible
		}
		// Drive any remaining artificial variables out of the basis.
		for i := 0; i < m; i++ {
			if !isArt(basis[i], n+m) {
				continue
			}
			pivoted := false
			for j := 0; j < n+m; j++ {
				if math.Abs(t[i][j]) > eps {
					pivot(t, i, j, m, total)
					basis[i] = j
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; leave the artificial at zero.
				continue
			}
		}
		// Remove artificial columns by zeroing them (simplexLoop below
		// never enters a column with objective coefficient <= 0 and we
		// will set them so).
		for _, col := range artCols {
			for i := 0; i <= m; i++ {
				t[i][col] = 0
			}
		}
	}
	// Phase 2: objective row = -c (we maximize; row stores negated
	// reduced costs so that "negative entry" means improving column).
	obj := t[m]
	for j := range obj {
		obj[j] = 0
	}
	for j := 0; j < n; j++ {
		obj[j] = -p.c[j]
	}
	for i := 0; i < m; i++ {
		if t[m][basis[i]] != 0 {
			pivotPrice(t, i, basis[i], m, total)
		}
	}
	if st := simplexLoop(t, basis, m, total); st == Unbounded {
		return nil, 0, Unbounded
	}
	x = make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]] = t[i][total]
		}
	}
	return x, t[m][total], Optimal
}

func isArt(col, artStart int) bool { return col >= artStart }

// simplexLoop runs Bland's rule until optimality or unboundedness.
func simplexLoop(t [][]float64, basis []int, m, total int) Status {
	for iter := 0; ; iter++ {
		if iter > 200000 {
			panic("lp: simplex iteration limit (cycling?)")
		}
		// Bland: choose the lowest-index column with negative reduced cost.
		col := -1
		for j := 0; j < total; j++ {
			if t[m][j] < -eps {
				col = j
				break
			}
		}
		if col == -1 {
			return Optimal
		}
		// Ratio test, Bland tie-break on basis index.
		row := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][col] > eps {
				r := t[i][total] / t[i][col]
				if r < best-eps || (r < best+eps && (row == -1 || basis[i] < basis[row])) {
					best = r
					row = i
				}
			}
		}
		if row == -1 {
			return Unbounded
		}
		pivot(t, row, col, m, total)
		basis[row] = col
	}
}

// pivot performs a full pivot on (row, col).
func pivot(t [][]float64, row, col, m, total int) {
	pv := t[row][col]
	for j := 0; j <= total; j++ {
		t[row][j] /= pv
	}
	for i := 0; i <= m; i++ {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			t[i][j] -= f * t[row][j]
		}
	}
}

// pivotPrice eliminates the objective-row entry of a basis column.
func pivotPrice(t [][]float64, row, col, m, total int) {
	f := t[m][col] / t[row][col]
	if f == 0 {
		return
	}
	for j := 0; j <= total; j++ {
		t[m][j] -= f * t[row][j]
	}
}
