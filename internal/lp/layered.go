package lp

import (
	"math"

	"repro/internal/graph"
)

// Layered relaxation builders for Theorem 23: LP11 is the standard dual
// on discretized weights ŵ_k = (1+ε)^k; LP10 is the layered penalty
// variant (identical to LP5) with per-level vertex costs x_i(k), a
// per-vertex maximum x_i, additive per-level odd-set costs z_{U,ℓ}, and
// the width-bounding box 2x_i(k) + Σ_{ℓ≤k} Σ_{U∋i} z_{U,ℓ} <= 3ŵ_k.
// Theorem 23 asserts β̂ <= β̃ <= (1+ε)·β̂.

// edgeLevel recovers k from a weight of the form (1+eps)^k.
func edgeLevel(w, eps float64) int {
	return int(math.Round(math.Log(w) / math.Log1p(eps)))
}

// DiscretizedDualLP11 solves LP11 (the dual LP2 on a graph whose weights
// are powers of (1+eps)).
func DiscretizedDualLP11(g *graph.Graph) (float64, Status) {
	return MatchingDualLP2(g)
}

// LayeredDualLP10 builds and solves LP10 for a graph with (1+eps)-power
// weights. maxSetSize limits the odd sets Os (pass g.N() for all).
func LayeredDualLP10(g *graph.Graph, epsilon float64, maxSetSize int) (float64, Status) {
	n := g.N()
	L := 0
	lev := make([]int, g.M())
	for i, e := range g.Edges() {
		lev[i] = edgeLevel(e.W, epsilon)
		if lev[i] > L {
			L = lev[i]
		}
	}
	nl := L + 1
	sets := OddSets(g, maxSetSize)
	masks := make([][]bool, len(sets))
	for s, set := range sets {
		masks[s] = g.SetMask(set)
	}
	// Variables: x_i(k) [n*nl] then x_i [n] then z_{U,l} [len(sets)*nl].
	xik := func(i, k int) int { return i*nl + k }
	xi := func(i int) int { return n*nl + i }
	zul := func(s, l int) int { return n*nl + n + s*nl + l }
	nv := n*nl + n + len(sets)*nl

	obj := make([]float64, nv) // minimize => negate
	for i := 0; i < n; i++ {
		obj[xi(i)] = -float64(g.B(i))
	}
	for s, set := range sets {
		f := math.Floor(float64(g.SetBNorm(set)) / 2)
		for l := 0; l < nl; l++ {
			obj[zul(s, l)] = -f
		}
	}
	p := NewProblem(obj)
	// ŵ table: one math.Pow per level instead of one per constraint row.
	whTab := make([]float64, nl)
	for k := range whTab {
		whTab[k] = math.Pow(1+epsilon, float64(k))
	}
	wh := func(k int) float64 { return whTab[k] }
	// Edge cover constraints at the edge's level.
	for i, e := range g.Edges() {
		k := lev[i]
		row := make([]float64, nv)
		row[xik(int(e.U), k)] += 1
		row[xik(int(e.V), k)] += 1
		for s := range sets {
			if masks[s][e.U] && masks[s][e.V] {
				for l := 0; l <= k; l++ {
					row[zul(s, l)] += 1
				}
			}
		}
		p.AddGE(row, wh(k))
	}
	// Box constraints for every (i, k).
	for i := 0; i < n; i++ {
		for k := 0; k < nl; k++ {
			row := make([]float64, nv)
			row[xik(i, k)] = 2
			for s := range sets {
				if masks[s][i] {
					for l := 0; l <= k; l++ {
						row[zul(s, l)] += 1
					}
				}
			}
			p.AddLE(row, 3*wh(k))
		}
	}
	// Layering: x_i >= x_i(k).
	for i := 0; i < n; i++ {
		for k := 0; k < nl; k++ {
			row := make([]float64, nv)
			row[xi(i)] = 1
			row[xik(i, k)] = -1
			p.AddGE(row, 0)
		}
	}
	_, v, st := p.Solve()
	return -v, st
}
