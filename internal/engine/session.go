package engine

import (
	"context"
	"fmt"

	"repro/internal/stream"
)

// Session is a reusable solve lifecycle around one registry algorithm:
// construct once, Solve many times. Between solves the algorithm is
// Reset — per-run state cleared, scratch capacity retained — and the
// session's arena is reclaimed, so a second solve on a same-shape
// instance reuses the first solve's working memory instead of
// reallocating it. Each Solve is bit-identical to a cold Drive of a
// factory-fresh instance (the Algorithm.Reset contract), including
// every resource meter: the arena retains capacity, never live words.
//
// A Session is not safe for concurrent use — it is one algorithm
// instance plus one arena. Run many instances in flight by holding many
// sessions (the public repro/match.Pool does exactly that).
type Session struct {
	name  string
	p     Params
	alg   Algorithm
	arena *Arena
	runs  int
}

// NewSession builds a session for the named registry algorithm.
func NewSession(name string, p Params) (*Session, error) {
	_, factory, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown algorithm %q (registered: %s)", name, Names())
	}
	alg, err := factory(p)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &Session{name: name, p: p, alg: alg, arena: NewArena()}, nil
}

// Solve runs one driven solve through the session: Reset + arena
// reclaim when a prior run left state behind, then the shared Drive
// loop with the session's arena.
func (s *Session) Solve(ctx context.Context, src stream.Source, ext Extensions) (*Outcome, error) {
	if s.runs > 0 {
		s.alg.Reset(s.p)
		s.arena.Reclaim()
	}
	s.runs++
	return DriveArena(ctx, s.alg, src, ext, s.arena)
}

// Algorithm returns the registry name the session runs.
func (s *Session) Algorithm() string { return s.name }

// Runs returns how many solves the session has started.
func (s *Session) Runs() int { return s.runs }

// RetainedWords reports the arena's retained scratch capacity — memory
// kept warm between runs, deliberately NOT part of any run's metered
// live space (see Arena).
func (s *Session) RetainedWords() int { return s.arena.RetainedWords() }
