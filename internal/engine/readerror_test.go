package engine_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/stream"
)

// TestReadErrorSurfacesAsError drives a registered algorithm over a
// file whose bytes vanish mid-solve: the FileSource sweep panics with a
// typed *stream.ReadError, and the engine must convert it into an
// ordinary error with a best-so-far outcome — a bad file fails one
// solve, it does not take down the process (or a serving pool).
func TestReadErrorSurfacesAsError(t *testing.T) {
	g := conformanceGraph()
	path := filepath.Join(t.TempDir(), "g.rbg")
	if err := stream.WriteBinaryFile(path, stream.NewEdgeStream(g)); err != nil {
		t.Fatal(err)
	}
	src, err := stream.OpenBinaryWith(path, stream.OpenOptions{NoMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	// Truncate underneath the open handle: the first sweep's ReadAt
	// fails, exactly like a disk or network-filesystem fault mid-solve.
	if err := os.Truncate(path, 24); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"dual-primal", "greedy"} {
		t.Run(name, func(t *testing.T) {
			out, err := drive(t, name, context.Background(), src, engine.Extensions{})
			var re *stream.ReadError
			if !errors.As(err, &re) {
				t.Fatalf("err = %v (%T), want *stream.ReadError", err, err)
			}
			if re.Path != path {
				t.Errorf("ReadError.Path = %q, want %q", re.Path, path)
			}
			if out == nil || out.Matching == nil {
				t.Fatal("aborted run did not return a best-so-far outcome")
			}
			if out.Lambda != 0 {
				t.Errorf("aborted run kept a certificate: Lambda = %v", out.Lambda)
			}
		})
	}
}
