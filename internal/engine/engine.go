// Package engine is the shared round-loop driver behind every matching
// substrate in this module. The paper's thesis is that passes, rounds
// and space are the currency in which different models of computation —
// semi-streaming, MapReduce, congested clique — pay for a matching; the
// engine makes that currency common infrastructure: one Run owns the
// SpaceAccountant, the pass meter, the round counter, the budget trips
// with best-so-far semantics and the per-round observer events, and
// every Algorithm (the dual-primal solver, the one-pass greedy
// baselines, the simulated clique protocol, the exact Hopcroft–Karp
// reference) plugs its own Init/Round/Finish into the same loop. Cross-
// model comparison then falls out of the registry: every registered
// algorithm answers with the same Result shape, metered the same way,
// budgeted and cancellable the same way.
package engine

import (
	"context"
	"errors"

	"repro/internal/matching"
	"repro/internal/parallel"
	"repro/internal/stream"
)

// catchStreamPanics runs f, converting the typed *stream.ReadError
// panic a FileSource sweep raises on I/O failure or frame corruption
// into an ordinary error return — a bad or truncated file fails one
// solve through the normal abort path (best-so-far Outcome, Finish
// called) instead of taking down the process or a serving pool. The
// error may arrive wrapped in a *parallel.JobPanic when the failing
// sweep ran on a worker goroutine. Every other panic value is a
// programmer error and is re-raised untouched.
func catchStreamPanics(f func() error) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if jp, ok := r.(*parallel.JobPanic); ok {
			if re, ok := jp.Value.(*stream.ReadError); ok {
				err = re
				return
			}
		}
		if re, ok := r.(*stream.ReadError); ok {
			err = re
			return
		}
		panic(r)
	}()
	return f()
}

// Algorithm is one matching substrate plugged into the driver's round
// loop. The contract:
//
//   - Init prepares all pre-loop state: instance scans, initial
//     solutions, data structures. It charges central allocations to
//     run.Acct, reads the stream only through the src it is handed (the
//     driver may have wrapped it for cancellation), and calls
//     run.Check() after each metered pass so pass/space budgets trip at
//     the same boundaries the paper's accounting recognizes.
//   - Round runs one adaptive round, or reports done. An implementation
//     first decides whether another round is needed; if yes it MUST call
//     run.BeginRound() before doing any work (that is where the rounds
//     budget trips and the observer event fires), then do the round and
//     return (false, nil). If converged, it returns (true, nil) without
//     consuming anything. Returning a non-nil error aborts the run with
//     best-so-far semantics.
//   - Finish reports the best matching found so far plus the extras. It
//     must be safe to call after a partial Init or mid-loop abort — on
//     cancellation or a budget trip the driver still calls Finish, and
//     "best so far" may legitimately be an empty matching.
//   - Reset prepares the same instance for another driven run: it clears
//     every per-run field (results, duals, convergence flags) while
//     *retaining* reusable scratch capacity, and absorbs the session's
//     Params again (a factory-fresh instance and a Reset one must be
//     indistinguishable to Init). Two contracts follow. Identity: solve →
//     Reset → solve is bit-identical to two cold solves, including every
//     resource meter — retained capacity must never surface as live words.
//     No aliasing: state reachable from a previously returned Outcome
//     (the matching's index slices above all) must not be mutated by the
//     next run; scratch that would alias a result is released, not
//     retained. The instance size n is not a Reset input — it is
//     rediscovered from the Source at Init, so one session can serve
//     instances of different shapes (reuse simply pays allocation again
//     when the shape grows).
type Algorithm interface {
	Init(ctx context.Context, run *Run, src stream.Source) error
	Round(ctx context.Context, run *Run) (done bool, err error)
	Finish(run *Run) (*matching.Matching, Extras)
	Reset(p Params)
}

// Run owns the resource machinery of one driven solve: the space
// accountant, the pass meter baseline, the round counter, the budget and
// the observer. Algorithms read and charge it; the driver settles it
// into the Outcome.
type Run struct {
	// Acct meters words of central storage; its high-water mark is the
	// space axis the paper bounds. Algorithms Alloc/Free on it directly.
	Acct *stream.SpaceAccountant

	// Lambda and Beta are the algorithm-published dual trajectory that
	// the next RoundEvent snapshots. Algorithms that maintain a dual set
	// them before calling BeginRound; others leave them zero.
	Lambda, Beta float64

	src      stream.Source
	ctx      context.Context
	arena    *Arena
	budget   Budget
	observer func(RoundEvent)
	passes0  int
	rounds   int
}

// Source returns the stream the run reads (already wrapped for prompt
// cancellation when the context is cancellable).
func (r *Run) Source() stream.Source { return r.src }

// Arena returns the run's scratch arena: session-retained capacity when
// the run was started through a Session, a throwaway arena otherwise.
// Algorithms draw working buffers from it instead of make so a reused
// session converges to near-zero allocation; the buffers come back
// logically fresh either way, so taking scratch from the arena never
// changes results.
func (r *Run) Arena() *Arena { return r.arena }

// Rounds returns how many rounds have begun (1-based inside a round's
// body, equal to the completed count between rounds).
func (r *Run) Rounds() int { return r.rounds }

// Passes returns the metered passes consumed by this run so far.
func (r *Run) Passes() int { return r.src.Passes() - r.passes0 }

// PeakWords returns the accountant's high-water mark so far.
func (r *Run) PeakWords() int { return r.Acct.Peak() }

// BeginRound opens the next round: it trips the rounds budget exactly
// when the algorithm wants a round it is not allowed (a run that
// converges within budget never trips), advances the accountant's round
// counter, and emits the per-round observer event. Algorithms call it
// once per round, after deciding the round is needed and before doing
// any of its work.
func (r *Run) BeginRound() error {
	if r.budget.Rounds > 0 && r.rounds >= r.budget.Rounds {
		return &BudgetError{Axis: AxisRounds, Limit: r.budget.Rounds, Used: r.rounds + 1}
	}
	r.Acct.BeginRound()
	r.rounds++
	if r.observer != nil {
		r.observer(RoundEvent{Round: r.rounds, Lambda: r.Lambda, Beta: r.Beta,
			Passes: r.Passes(), PeakWords: r.Acct.Peak()})
	}
	return nil
}

// Check is the pass/round-boundary checkpoint: context first, then the
// pass and space budgets against the live meters. All reads, no writes —
// an un-tripped run is bit-identical to an unbudgeted one. Algorithms
// call it after every metered pass and every central allocation; the
// driver also calls it after Init and between rounds.
func (r *Run) Check() error {
	if err := r.ctx.Err(); err != nil {
		return err
	}
	if r.budget.Passes > 0 {
		if used := r.Passes(); used > r.budget.Passes {
			return &BudgetError{Axis: AxisPasses, Limit: r.budget.Passes, Used: used}
		}
	}
	if r.budget.SpaceWords > 0 {
		if peak := r.Acct.Peak(); peak > r.budget.SpaceWords {
			return &BudgetError{Axis: AxisSpaceWords, Limit: r.budget.SpaceWords, Used: peak}
		}
	}
	return nil
}

// Extras carries the algorithm-specific outcome fields beyond the
// matching itself. Algorithms without a dual leave the dual fields zero;
// CertifiedUpperBound then reports +Inf, which is honest.
type Extras struct {
	// Weight is the matching's weight in original units.
	Weight float64
	// DualObjective is the final dual objective scaled back to original
	// units (0 when the algorithm computes no dual).
	DualObjective float64
	// Lambda is the final minimum normalized coverage over kept edges (0
	// when the algorithm computes no dual).
	Lambda float64
	// EarlyStopped reports whether the algorithm converged before its
	// round cap.
	EarlyStopped bool
}

// Outcome is what the driver settles a run into: the best matching, the
// algorithm extras, and the resource meters the Run accumulated.
type Outcome struct {
	// Matching is the best matching found (never nil; possibly empty).
	Matching *matching.Matching
	Extras
	// Rounds is how many rounds the loop ran.
	Rounds int
	// Passes is the metered passes consumed over the input Source.
	Passes int
	// PeakWords is the high-water mark of metered central storage.
	PeakWords int
}

// Drive runs alg under the shared round loop: cancellation is honored at
// pass and round boundaries (in-flight sequential sweeps abort within a
// constant number of edges), budgets trip at the same checkpoints, and a
// trip or cancellation returns the best-so-far Outcome together with the
// error. A budget trip fires only at checkpoints, so the dual fields an
// algorithm reports are the last completely evaluated ones and a
// positive certificate stands; a non-budget abort can interrupt a dual
// evaluation mid-flight, leaving an unsound prefix-minimum, so those
// runs surrender the certificate: Lambda is zeroed and only the primal
// matching is the contract. The Outcome is non-nil on every path.
func Drive(ctx context.Context, alg Algorithm, src stream.Source, ext Extensions) (*Outcome, error) {
	return DriveArena(ctx, alg, src, ext, NewArena())
}

// DriveArena is Drive with the scratch arena supplied by the caller —
// the session entry point (engine.Session for registry algorithms,
// core's dual-primal session for the rich-result path). The arena
// changes where working buffers' backing memory comes from and nothing
// else.
func DriveArena(ctx context.Context, alg Algorithm, src stream.Source, ext Extensions, arena *Arena) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := &Outcome{Matching: &matching.Matching{}}
	if src.Len() == 0 {
		return out, nil
	}
	if ctx.Done() != nil {
		// Only a cancellable context needs the guarded sweeps; a plain
		// background context keeps the unwrapped source (identical code
		// path).
		src = newCtxSource(ctx, src)
	}
	run := &Run{
		Acct:     stream.NewSpaceAccountant(),
		src:      src,
		ctx:      ctx,
		arena:    arena,
		budget:   ext.Budget,
		observer: ext.Observer,
		passes0:  src.Passes(),
	}
	// finish settles the Outcome — the one block shared by the normal
	// exit and every abort, so completed and tripped/cancelled runs can
	// never diverge on a field.
	finish := func(err error) (*Outcome, error) {
		m, ex := alg.Finish(run)
		if m != nil {
			out.Matching = m
		}
		out.Extras = ex
		out.Rounds = run.rounds
		out.Passes = run.Passes()
		out.PeakWords = run.Acct.Peak()
		if err != nil {
			var be *BudgetError
			if !errors.As(err, &be) {
				out.Lambda = 0
			}
		}
		return out, err
	}
	if err := catchStreamPanics(func() error { return alg.Init(ctx, run, src) }); err != nil {
		return finish(err)
	}
	if err := run.Check(); err != nil {
		return finish(err)
	}
	for {
		var done bool
		err := catchStreamPanics(func() (err error) {
			done, err = alg.Round(ctx, run)
			return err
		})
		if err != nil {
			return finish(err)
		}
		if done {
			break
		}
		if err := run.Check(); err != nil {
			return finish(err)
		}
	}
	return finish(nil)
}
