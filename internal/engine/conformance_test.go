package engine_test

// The engine conformance suite: every algorithm in the registry — the
// dual-primal solver and all ported substrates — must honor the shared
// resource contract. For each registered algorithm it checks that
//
//   - an unbudgeted run completes with nonzero pass and peak-words
//     meters and a feasible matching whose weight matches the reported
//     one;
//   - observer events arrive once per round, in strictly increasing
//     round order, with nondecreasing pass and peak-words meters;
//   - an ample budget is a strict no-op (bit-identical outcome);
//   - on every axis the algorithm can actually exhaust, a budget one
//     notch under the unbudgeted usage trips with
//     errors.Is(err, ErrBudgetExceeded), names that axis, and still
//     hands back a feasible best-so-far matching;
//   - cancelling the context mid-pass aborts within a bounded number of
//     edge deliveries and surrenders the certificate (Lambda = 0).

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	_ "repro/internal/algos" // register the ported substrates
	_ "repro/internal/core"  // register the dual-primal solver

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/stream"
)

// conformanceParams is the shared configuration every algorithm is
// driven with.
var conformanceParams = engine.Params{Eps: 0.25, P: 2, Seed: 7, Workers: 1}

// conformanceGraph is an instance every registered algorithm supports:
// bipartite (for hopcroft-karp), unit capacities, weighted, dense enough
// that augmentation and multiple rounds actually happen.
func conformanceGraph() *graph.Graph {
	return graph.Bipartite(20, 20, 150, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 10}, 5)
}

// drive builds a fresh instance of the named algorithm and runs it.
func drive(t *testing.T, name string, ctx context.Context, src stream.Source, ext engine.Extensions) (*engine.Outcome, error) {
	t.Helper()
	_, factory, ok := engine.Lookup(name)
	if !ok {
		t.Fatalf("algorithm %q not registered", name)
	}
	alg, err := factory(conformanceParams)
	if err != nil {
		t.Fatalf("%s: factory: %v", name, err)
	}
	return engine.Drive(ctx, alg, src, ext)
}

func TestConformanceEveryRegisteredAlgorithm(t *testing.T) {
	infos := engine.List()
	if len(infos) < 5 {
		t.Fatalf("registry has %d algorithms, want >= 5: %s", len(infos), engine.Names())
	}
	g := conformanceGraph()
	for _, info := range infos {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			// Unbudgeted baseline, with observer capture.
			var events []engine.RoundEvent
			base, err := drive(t, info.Name, context.Background(), stream.NewEdgeStream(g),
				engine.Extensions{Observer: func(ev engine.RoundEvent) { events = append(events, ev) }})
			if err != nil {
				t.Fatalf("unbudgeted run failed: %v", err)
			}
			assertOutcome(t, g, base)
			assertEvents(t, base, events)
			t.Run("ample-budget-noop", func(t *testing.T) {
				ample := engine.Budget{Passes: base.Passes*10 + 10,
					Rounds: base.Rounds*10 + 10, SpaceWords: base.PeakWords*10 + 10}
				out, err := drive(t, info.Name, context.Background(), stream.NewEdgeStream(g),
					engine.Extensions{Budget: ample})
				if err != nil {
					t.Fatalf("ample budget tripped: %v", err)
				}
				assertSameOutcome(t, base, out)
			})
			t.Run("budget-trips", func(t *testing.T) {
				testBudgetTrips(t, g, info.Name, base)
			})
			t.Run("cancellation-mid-pass", func(t *testing.T) {
				testCancellation(t, g, info.Name)
			})
			t.Run("session-reuse", func(t *testing.T) {
				testSessionReuse(t, g, info.Name, base)
			})
			t.Run("budget-on-warm-session", func(t *testing.T) {
				testWarmSessionBudget(t, g, info.Name, base)
			})
		})
	}
}

// assertOutcome checks the generic outcome contract: nonzero meters and
// a feasible matching whose recomputed weight agrees with the report.
func assertOutcome(t *testing.T, g *graph.Graph, out *engine.Outcome) {
	t.Helper()
	if out.Passes <= 0 {
		t.Errorf("Passes = %d, want > 0 (data access must be metered)", out.Passes)
	}
	if out.PeakWords <= 0 {
		t.Errorf("PeakWords = %d, want > 0 (central state must be metered)", out.PeakWords)
	}
	if out.Rounds <= 0 {
		t.Errorf("Rounds = %d, want > 0", out.Rounds)
	}
	if out.Matching == nil {
		t.Fatal("Matching is nil")
	}
	if err := out.Matching.Validate(g); err != nil {
		t.Fatalf("matching infeasible: %v", err)
	}
	if w := out.Matching.Weight(g); math.Abs(w-out.Weight) > 1e-9*(1+math.Abs(w)) {
		t.Errorf("reported Weight %v != recomputed %v", out.Weight, w)
	}
}

// assertEvents checks the observer stream: one event per round, strictly
// increasing 1-based rounds, monotone resource meters.
func assertEvents(t *testing.T, out *engine.Outcome, events []engine.RoundEvent) {
	t.Helper()
	if len(events) != out.Rounds {
		t.Fatalf("observer saw %d events, run had %d rounds", len(events), out.Rounds)
	}
	for i, ev := range events {
		if ev.Round != i+1 {
			t.Errorf("event %d has Round %d, want %d", i, ev.Round, i+1)
		}
		if i > 0 {
			if ev.Passes < events[i-1].Passes {
				t.Errorf("Passes not monotone: event %d has %d after %d", i, ev.Passes, events[i-1].Passes)
			}
			if ev.PeakWords < events[i-1].PeakWords {
				t.Errorf("PeakWords not monotone: event %d has %d after %d", i, ev.PeakWords, events[i-1].PeakWords)
			}
		}
	}
	last := events[len(events)-1]
	if last.Passes > out.Passes || last.PeakWords > out.PeakWords {
		t.Errorf("final event meters (%d passes, %d words) exceed outcome (%d, %d)",
			last.Passes, last.PeakWords, out.Passes, out.PeakWords)
	}
}

// assertSameOutcome checks bit-identity of two outcomes (the ample-
// budget no-op contract).
func assertSameOutcome(t *testing.T, want, got *engine.Outcome) {
	t.Helper()
	if math.Float64bits(want.Weight) != math.Float64bits(got.Weight) {
		t.Errorf("Weight %v != %v", got.Weight, want.Weight)
	}
	if want.Rounds != got.Rounds || want.Passes != got.Passes || want.PeakWords != got.PeakWords {
		t.Errorf("meters (%d, %d, %d) != (%d, %d, %d)",
			got.Rounds, got.Passes, got.PeakWords, want.Rounds, want.Passes, want.PeakWords)
	}
	if len(want.Matching.EdgeIdx) != len(got.Matching.EdgeIdx) {
		t.Fatalf("matching sizes differ: %d != %d", len(got.Matching.EdgeIdx), len(want.Matching.EdgeIdx))
	}
	for i := range want.Matching.EdgeIdx {
		if want.Matching.EdgeIdx[i] != got.Matching.EdgeIdx[i] {
			t.Fatalf("matching edge %d differs: %d != %d", i, got.Matching.EdgeIdx[i], want.Matching.EdgeIdx[i])
		}
	}
}

// testBudgetTrips constrains each axis one notch below the unbudgeted
// usage and demands a trip with best-so-far semantics. Axes whose
// unbudgeted usage cannot exceed any positive limit (a one-pass
// algorithm under a pass budget) are structurally untrippable and are
// skipped.
func testBudgetTrips(t *testing.T, g *graph.Graph, name string, base *engine.Outcome) {
	cases := []struct {
		axis   engine.BudgetAxis
		usage  int
		budget engine.Budget
	}{
		{engine.AxisPasses, base.Passes, engine.Budget{Passes: base.Passes - 1}},
		{engine.AxisRounds, base.Rounds, engine.Budget{Rounds: base.Rounds - 1}},
		{engine.AxisSpaceWords, base.PeakWords, engine.Budget{SpaceWords: base.PeakWords - 1}},
	}
	tripped := 0
	for _, tc := range cases {
		if tc.usage <= 1 {
			continue // no positive limit can be exceeded
		}
		out, err := drive(t, name, context.Background(), stream.NewEdgeStream(g),
			engine.Extensions{Budget: tc.budget})
		if !errors.Is(err, engine.ErrBudgetExceeded) {
			t.Errorf("axis %s: err = %v, want ErrBudgetExceeded", tc.axis, err)
			continue
		}
		var be *engine.BudgetError
		if !errors.As(err, &be) {
			t.Errorf("axis %s: error is not a *BudgetError: %v", tc.axis, err)
			continue
		}
		if be.Axis != tc.axis {
			t.Errorf("tripped axis %s, want %s", be.Axis, tc.axis)
		}
		if be.Used <= be.Limit {
			t.Errorf("axis %s: Used %d <= Limit %d", tc.axis, be.Used, be.Limit)
		}
		if out == nil {
			t.Fatalf("axis %s: tripped run returned nil outcome", tc.axis)
		}
		if out.Matching == nil {
			t.Fatalf("axis %s: tripped run has nil matching", tc.axis)
		}
		if err := out.Matching.Validate(g); err != nil {
			t.Errorf("axis %s: best-so-far matching infeasible: %v", tc.axis, err)
		}
		tripped++
	}
	if tripped == 0 {
		t.Error("no axis was trippable — conformance cannot exercise budget semantics")
	}
}

// testSessionReuse is the reuse clause of the conformance suite:
// solve → Reset → solve through one Session must be bit-identical to
// two cold solves — including every resource meter, so retained scratch
// can never surface as live words in the second solve's PeakWords — and
// the second solve must not mutate the first solve's returned Outcome.
// A third solve on a different-shape instance checks that reuse does
// not pin a session to one instance shape.
func testSessionReuse(t *testing.T, g *graph.Graph, name string, cold *engine.Outcome) {
	sess, err := engine.NewSession(name, conformanceParams)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	first, err := sess.Solve(context.Background(), stream.NewEdgeStream(g), engine.Extensions{})
	if err != nil {
		t.Fatalf("first session solve: %v", err)
	}
	assertSameOutcome(t, cold, first)
	// Snapshot the first outcome's matching, then solve again: the
	// second run must equal a cold run AND must not clobber the
	// snapshot (retained scratch must not alias returned results).
	firstIdx := append([]int(nil), first.Matching.EdgeIdx...)
	firstMult := append([]int(nil), first.Matching.Mult...)
	second, err := sess.Solve(context.Background(), stream.NewEdgeStream(g), engine.Extensions{})
	if err != nil {
		t.Fatalf("second session solve: %v", err)
	}
	assertSameOutcome(t, cold, second)
	if sess.Runs() != 2 {
		t.Errorf("session reports %d runs, want 2", sess.Runs())
	}
	if !equalInts(first.Matching.EdgeIdx, firstIdx) || !equalInts(first.Matching.Mult, firstMult) {
		t.Error("second solve mutated the first solve's returned matching")
	}
	// Different shape through the same session.
	g2 := graph.Bipartite(12, 12, 60, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 8}, 9)
	cold2, err := drive(t, name, context.Background(), stream.NewEdgeStream(g2), engine.Extensions{})
	if err != nil {
		t.Fatalf("cold solve on second shape: %v", err)
	}
	third, err := sess.Solve(context.Background(), stream.NewEdgeStream(g2), engine.Extensions{})
	if err != nil {
		t.Fatalf("session solve on second shape: %v", err)
	}
	assertSameOutcome(t, cold2, third)
}

// testWarmSessionBudget is the arena-exhaustion clause: a space budget
// one notch under the cold peak must trip on a session's SECOND solve —
// the one whose working memory comes from retained pools rather than
// the allocator — with the same typed abort a cold run produces. This
// is what keeps the arena honest: pooled buffers are retained
// *capacity*, but the words an algorithm semantically holds are metered
// by the SpaceAccountant regardless of where the bytes came from, so
// warming the pools can never smuggle a run under a space budget.
func testWarmSessionBudget(t *testing.T, g *graph.Graph, name string, base *engine.Outcome) {
	if base.PeakWords <= 1 {
		t.Skip("peak too small for a positive sub-peak budget")
	}
	sess, err := engine.NewSession(name, conformanceParams)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	// First solve, unbudgeted: warms every pool the algorithm retains.
	if _, err := sess.Solve(context.Background(), stream.NewEdgeStream(g), engine.Extensions{}); err != nil {
		t.Fatalf("warming solve failed: %v", err)
	}
	// Second solve under a just-too-small space budget: pooled memory
	// must still be counted, so the trip must fire exactly as cold.
	out, err := sess.Solve(context.Background(), stream.NewEdgeStream(g),
		engine.Extensions{Budget: engine.Budget{SpaceWords: base.PeakWords - 1}})
	if !errors.Is(err, engine.ErrBudgetExceeded) {
		t.Fatalf("warm run under sub-peak space budget: err = %v, want ErrBudgetExceeded", err)
	}
	var be *engine.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error is not a *BudgetError: %v", err)
	}
	if be.Axis != engine.AxisSpaceWords {
		t.Errorf("tripped axis %s, want %s", be.Axis, engine.AxisSpaceWords)
	}
	if be.Used <= be.Limit {
		t.Errorf("Used %d <= Limit %d", be.Used, be.Limit)
	}
	if out == nil || out.Matching == nil {
		t.Fatal("tripped warm run did not return a best-so-far outcome")
	}
	if err := out.Matching.Validate(g); err != nil {
		t.Errorf("best-so-far matching infeasible: %v", err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cancelAfterSource delegates to an inner source but cancels the given
// context after `after` edge deliveries on metered sequential passes,
// then keeps counting: only the engine's own guard may end the pass.
type cancelAfterSource struct {
	stream.Source
	cancel context.CancelFunc
	after  int

	mu   sync.Mutex
	seen int
}

func (c *cancelAfterSource) ForEach(f func(idx int, e graph.Edge) bool) {
	c.Source.ForEach(func(idx int, e graph.Edge) bool {
		c.mu.Lock()
		c.seen++
		if c.seen == c.after {
			c.cancel()
		}
		c.mu.Unlock()
		return f(idx, e)
	})
}

func (c *cancelAfterSource) delivered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seen
}

// testCancellation cancels the context partway through the first pass
// and demands a prompt abort: ctx.Err() surfaces, no certificate
// survives, and the guarded sweeps stop within the engine's check
// interval (256 edges) plus one fresh-pass grace.
func testCancellation(t *testing.T, g *graph.Graph, name string) {
	const after = 40
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancelAfterSource{Source: stream.NewEdgeStream(g), cancel: cancel, after: after}
	out, err := drive(t, name, ctx, src, engine.Extensions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out == nil {
		t.Fatal("cancelled run returned nil outcome")
	}
	if out.Lambda != 0 {
		t.Errorf("cancelled run kept a certificate: Lambda = %v", out.Lambda)
	}
	if err := out.Matching.Validate(g); err != nil {
		t.Errorf("cancelled run's matching infeasible: %v", err)
	}
	// The cancel fires mid-pass at delivery `after`; the engine's guard
	// checks every 256 deliveries, so the aborting pass delivers at most
	// ~256 more edges and no further pass gets past its first check.
	if d := src.delivered(); d > after+2*256 {
		t.Errorf("cancellation was not honored within a pass: %d edges delivered (cancelled at %d)", d, after)
	}
}
