package engine

import "repro/internal/sketch"

// The scratch arena of a solve session. A cold solve allocates every
// working buffer from the Go heap and drops it on the floor at Finish;
// a *session* (see Session) keeps the same Algorithm alive across
// solves, and the arena is where the session parks the capacity those
// buffers occupied between runs. The distinction the accountant cannot
// see on its own is made explicit here: the SpaceAccountant meters
// *live* words — what the algorithm semantically holds right now, the
// quantity the paper's space bounds constrain — while the arena's
// RetainedWords is *retained capacity* — heap the process keeps warm so
// the next run does not pay allocation again. Retained capacity never
// touches the accountant: a reused solve charges exactly the words a
// cold solve charges, which is what keeps reused Stats.PeakWords
// bit-identical to cold ones.
//
// The contract of every getter is "logically fresh": a returned buffer
// has the requested length and is zeroed, whether it came from the free
// pool or from make, so an algorithm written against the arena cannot
// observe whether it is the first run of a session or the hundredth.
// Buffers are handed back wholesale: the session calls Reclaim between
// runs, which returns every buffer lent since the last Reclaim to the
// free pools. Arenas are not safe for concurrent use; a session runs
// one solve at a time, which is the only discipline the engine needs.

// bufPool is one typed free-list of the arena. get pops the smallest
// retained buffer whose capacity fits (best fit keeps a pool serving
// mixed sizes from oversupplying small requests with huge buffers),
// zeroes it to the requested length, and records it as lent; reclaim
// moves everything lent back to the free list.
type bufPool[T any] struct {
	free [][]T
	lent [][]T
}

func (p *bufPool[T]) get(n int) []T {
	best := -1
	for i, b := range p.free {
		if cap(b) >= n && (best < 0 || cap(b) < cap(p.free[best])) {
			best = i
		}
	}
	var buf []T
	if best >= 0 {
		last := len(p.free) - 1
		buf = p.free[best][:n]
		p.free[best] = p.free[last]
		p.free = p.free[:last]
		clear(buf)
	} else {
		buf = make([]T, n)
	}
	p.lent = append(p.lent, buf)
	return buf
}

func (p *bufPool[T]) reclaim() {
	p.free = append(p.free, p.lent...)
	p.lent = p.lent[:0]
}

// words sums the retained capacity of both lists in elements.
func (p *bufPool[T]) caps() int {
	t := 0
	for _, b := range p.free {
		t += cap(b)
	}
	for _, b := range p.lent {
		t += cap(b)
	}
	return t
}

// Arena is the per-session scratch allocator. The zero value is not
// usable; construct with NewArena. See the package comment above for
// the live-words vs retained-capacity semantics.
type Arena struct {
	ints    bufPool[int]
	int32s  bufPool[int32]
	f64s    bufPool[float64]
	bools   bufPool[bool]
	f64rows bufPool[[]float64]
	i32rows bufPool[[]int32]

	// sketches pools whole sketch structures (spec-keyed free lists; see
	// sketch.Arena), created on first use. Unlike the typed buffer pools
	// it has no lent tracking: sketches are Put back explicitly by their
	// owner (e.g. Bank.ReleaseTo) and a sketch dropped mid-run is plain
	// garbage, so Reclaim has nothing to do for it.
	sketches *sketch.Arena
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Ints returns a zeroed []int of length n, reusing retained capacity
// when some fits.
func (a *Arena) Ints(n int) []int { return a.ints.get(n) }

// Int32s returns a zeroed []int32 of length n.
func (a *Arena) Int32s(n int) []int32 { return a.int32s.get(n) }

// Float64s returns a zeroed []float64 of length n.
func (a *Arena) Float64s(n int) []float64 { return a.f64s.get(n) }

// Bools returns a zeroed []bool of length n.
func (a *Arena) Bools(n int) []bool { return a.bools.get(n) }

// Float64Rows returns a length-n slice of nil []float64 row headers —
// the outer spine of a [vertex][level] table whose rows the caller
// carves out of one flat Float64s backing.
func (a *Arena) Float64Rows(n int) [][]float64 { return a.f64rows.get(n) }

// Int32Rows returns a length-n slice of nil []int32 row headers.
func (a *Arena) Int32Rows(n int) [][]int32 { return a.i32rows.get(n) }

// Sketches returns the session's sketch pool, creating it on first use.
// Sketch memory retained here survives Reclaim (explicit Put/ReleaseTo
// is the return path), so a session's bank builds stay allocation-flat
// across rounds and runs.
func (a *Arena) Sketches() *sketch.Arena {
	if a.sketches == nil {
		a.sketches = sketch.NewArena()
	}
	return a.sketches
}

// Reclaim returns every buffer lent since the last Reclaim to the free
// pools. The session calls it between runs; calling it while a lent
// buffer is still in use hands that memory to the next run, so only the
// session — which knows no run is in flight — may call it.
func (a *Arena) Reclaim() {
	a.ints.reclaim()
	a.int32s.reclaim()
	a.f64s.reclaim()
	a.bools.reclaim()
	a.f64rows.reclaim()
	a.i32rows.reclaim()
}

// RetainedWords reports the arena's retained capacity in 64-bit words
// (int32s count half a word, bools an eighth, row headers three words
// each). This is the observability side of the arena/accountant split:
// it is what the process keeps warm between runs, NOT part of any run's
// metered live space.
func (a *Arena) RetainedWords() int {
	w := a.ints.caps() + a.f64s.caps()
	w += (a.int32s.caps() + 1) / 2
	w += (a.bools.caps() + 7) / 8
	w += 3 * (a.f64rows.caps() + a.i32rows.caps())
	if a.sketches != nil {
		w += a.sketches.RetainedWords()
	}
	return w
}
