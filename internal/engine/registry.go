package engine

import (
	"fmt"
	"sort"
	"strings"
)

// Info describes one registered algorithm for enumeration: the registry
// is how tooling (match.Algorithms, matchsolve -algo list, bench E16)
// learns what substrates exist and how they pay for a matching.
type Info struct {
	// Name is the registry key (kebab-case, e.g. "dual-primal").
	Name string `json:"name"`
	// Model is the model of computation the algorithm belongs to
	// (semi-streaming, congested clique, offline, ...).
	Model string `json:"model"`
	// Guarantee states the approximation guarantee.
	Guarantee string `json:"guarantee"`
	// Resources is the resource profile in the paper's currency: passes,
	// rounds, central words.
	Resources string `json:"resources"`
}

// Params is the model-agnostic configuration a Factory receives: the
// subset of solver options every substrate can meaningfully interpret
// (or ignore). Algorithm-specific knobs beyond these stay behind the
// algorithm's own package API.
type Params struct {
	// Eps is the accuracy target for algorithms that take one.
	Eps float64
	// P is the space exponent p > 1 (central space ~ n^(1+1/p)).
	P float64
	// Seed drives all randomness.
	Seed uint64
	// Workers shards parallelizable per-edge work (0 = GOMAXPROCS).
	Workers int
	// MaxRounds overrides the algorithm's own round cap (0 = default).
	MaxRounds int
}

// Factory builds a fresh Algorithm instance for one run. Factories
// validate the params they use and must return an algorithm whose state
// is independent of any previous run.
type Factory func(p Params) (Algorithm, error)

type registration struct {
	info    Info
	factory Factory
}

var registry = map[string]registration{}

// Register adds an algorithm to the registry. It is called from package
// init functions (internal/core for the dual-primal solver,
// internal/algos for the ported substrates) and panics on a duplicate or
// empty name — both are programmer errors.
func Register(info Info, f Factory) {
	if info.Name == "" {
		panic("engine: Register with empty name")
	}
	if _, dup := registry[info.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate algorithm %q", info.Name))
	}
	registry[info.Name] = registration{info: info, factory: f}
}

// Lookup returns the registration for name.
func Lookup(name string) (Info, Factory, bool) {
	reg, ok := registry[name]
	return reg.info, reg.factory, ok
}

// List returns every registered algorithm's Info, sorted by name.
func List() []Info {
	out := make([]Info, 0, len(registry))
	for _, reg := range registry {
		out = append(out, reg.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted registered names, joined for error messages.
func Names() string {
	infos := List()
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	return strings.Join(names, ", ")
}
