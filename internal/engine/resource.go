package engine

// The enforceable resource axes of the paper, as engine inputs. The
// paper's whole point is that matching quality trades off against
// explicit resource constraints — passes over the data, adaptive rounds,
// central space — and the engine turns each axis from a post-hoc Stats
// reading into a budget enforced at pass and round boundaries, returning
// the best-so-far primal result when one trips. The public repro/match
// package re-exports these types; they live here because enforcement
// happens inside the shared round-loop driver and accountant, not in the
// facade and not in any one algorithm.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/stream"
)

// Budget bounds the resources one solve run may consume. The zero value
// (and any zero field) means "unlimited" on that axis. An ample budget
// is a strict no-op: enforcement only reads the meters the engine
// already keeps, so a run that never trips is bit-identical to an
// unbudgeted run.
type Budget struct {
	// Passes bounds the metered passes over the input Source — the same
	// quantity Stats.Passes reports (per-level initial-solution views
	// meter their own passes and are charged to the conceptual round,
	// exactly as in Stats).
	Passes int `json:"passes,omitempty"`
	// Rounds bounds the adaptive rounds of the driver's round loop
	// (sampling rounds for the dual-primal solver, simulated clique
	// rounds for the distributed protocol, phases for Hopcroft–Karp).
	Rounds int `json:"rounds,omitempty"`
	// SpaceWords bounds the SpaceAccountant's high-water mark of central
	// storage (Stats.PeakWords).
	SpaceWords int `json:"spaceWords,omitempty"`
}

// IsZero reports whether no axis is constrained.
func (b Budget) IsZero() bool { return b.Passes == 0 && b.Rounds == 0 && b.SpaceWords == 0 }

// BudgetAxis names the resource axis that tripped a budget.
type BudgetAxis string

// The three resource axes of the paper: data accesses, adaptive rounds,
// central space.
const (
	AxisPasses     BudgetAxis = "passes"
	AxisRounds     BudgetAxis = "rounds"
	AxisSpaceWords BudgetAxis = "space-words"
)

// ErrBudgetExceeded is the sentinel all budget trips match via
// errors.Is. The concrete error is always a *BudgetError carrying the
// axis and the amounts; the solve's best-so-far result accompanies it.
var ErrBudgetExceeded = errors.New("resource budget exceeded")

// ErrUnsupported is the sentinel an Algorithm wraps when the instance
// falls outside its model (e.g. Hopcroft–Karp on a nonbipartite graph or
// non-unit capacities). It signals "wrong algorithm for this input", not
// a solver failure.
var ErrUnsupported = errors.New("algorithm does not support this instance")

// BudgetError reports which budget axis tripped. It matches
// ErrBudgetExceeded under errors.Is and is extracted with errors.As.
type BudgetError struct {
	// Axis is the resource that ran out.
	Axis BudgetAxis `json:"axis"`
	// Limit is the configured budget on that axis.
	Limit int `json:"limit"`
	// Used is the amount the run needed when it tripped (always > Limit:
	// for rounds it is the round the loop wanted to start, for passes and
	// space the metered consumption at the checkpoint).
	Used int `json:"used"`
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("resource budget exceeded on %s: used %d, limit %d", e.Axis, e.Used, e.Limit)
}

// Is matches the ErrBudgetExceeded sentinel.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// RoundEvent is the per-round notification of an Extensions.Observer:
// a snapshot of the dual trajectory and the resource meters, emitted
// once per round, at the start of the round, in round order.
type RoundEvent struct {
	// Round is the 1-based round about to run.
	Round int `json:"round"`
	// Lambda is the minimum normalized coverage entering the round, for
	// algorithms that maintain a dual (0 otherwise).
	Lambda float64 `json:"lambda"`
	// Beta is the primal target entering the round (0 for algorithms
	// without one).
	Beta float64 `json:"beta"`
	// Passes is the metered passes consumed so far.
	Passes int `json:"passes"`
	// PeakWords is the central-storage high-water mark so far.
	PeakWords int `json:"peakWords"`
}

// Extensions carries the optional engine hooks of a driven run: nothing
// in it changes the computed result — budgets only cut a run short and
// the observer only watches.
type Extensions struct {
	// Budget bounds the run's resources; zero axes are unlimited.
	Budget Budget
	// Observer, when non-nil, receives one RoundEvent per round. It is
	// called synchronously from the solve goroutine and must not block.
	Observer func(RoundEvent)
}

// ctxCheckEvery is how many edges a guarded sweep delivers between
// context checks. Small enough that cancellation mid-pass is prompt even
// when every edge is slow, large enough that the check never shows up in
// a profile.
const ctxCheckEvery = 256

// ctxSource wraps a Source so sequential sweeps abort promptly once ctx
// is cancelled: the callback chain checks ctx.Err() every ctxCheckEvery
// edges (including before the first) and ends the pass via the normal
// early-abort path, so pass metering is untouched. Derived views built
// on top of the wrapper (the per-level Filtered streams) inherit the
// guard through Sweep. Parallel sweeps delegate unguarded — the engine
// only reaches them through code paths it bounds itself — and the pass
// counter is the inner source's, so a run that is never cancelled is
// bit-identical to an unwrapped one.
type ctxSource struct {
	inner stream.Source
	ctx   context.Context
}

var _ stream.Source = (*ctxSource)(nil)
var _ stream.BlockSweeper = (*ctxSource)(nil)

func newCtxSource(ctx context.Context, src stream.Source) *ctxSource {
	return &ctxSource{inner: src, ctx: ctx}
}

// N returns the number of vertices.
func (s *ctxSource) N() int { return s.inner.N() }

// B returns the capacity of vertex v.
func (s *ctxSource) B(v int) int { return s.inner.B(v) }

// TotalB returns Σ b_i.
func (s *ctxSource) TotalB() int { return s.inner.TotalB() }

// Len returns the stream length m.
func (s *ctxSource) Len() int { return s.inner.Len() }

// Passes returns the inner source's metered pass count.
func (s *ctxSource) Passes() int { return s.inner.Passes() }

// guard wraps a sweep callback with the periodic context check.
func (s *ctxSource) guard(f func(idx int, e graph.Edge) bool) func(idx int, e graph.Edge) bool {
	count := 0
	cancelled := false
	return func(idx int, e graph.Edge) bool {
		if cancelled {
			return false
		}
		if count%ctxCheckEvery == 0 && s.ctx.Err() != nil {
			cancelled = true
			return false
		}
		count++
		return f(idx, e)
	}
}

// ForEach performs one guarded metered pass.
func (s *ctxSource) ForEach(f func(idx int, e graph.Edge) bool) { s.inner.ForEach(s.guard(f)) }

// Sweep is the guarded un-metered sweep.
//
//lint:unmetered decorator forwarding; metering stays with the inner source
func (s *ctxSource) Sweep(f func(idx int, e graph.Edge) bool) { s.inner.Sweep(s.guard(f)) }

// ForEachParallel delegates to the inner source (see the type comment).
func (s *ctxSource) ForEachParallel(workers int, f func(idx int, e graph.Edge)) {
	s.inner.ForEachParallel(workers, f)
}

// SweepParallel delegates to the inner source (see the type comment).
func (s *ctxSource) SweepParallel(workers int, f func(idx int, e graph.Edge)) {
	//lint:unmetered decorator forwarding; metering stays with the inner source
	s.inner.SweepParallel(workers, f)
}

// guardBlocks wraps a block callback with a per-block context check —
// the block granule (at most BlockEdges edges) is the "constant number
// of edges" the cancellation contract promises.
func (s *ctxSource) guardBlocks(f func(base int, edges []graph.Edge) bool) func(base int, edges []graph.Edge) bool {
	cancelled := false
	return func(base int, edges []graph.Edge) bool {
		if cancelled || s.ctx.Err() != nil {
			cancelled = true
			return false
		}
		return f(base, edges)
	}
}

// ForEachBlocks performs one guarded metered block pass, preserving the
// inner source's native block shape (BlockSweeper contract).
func (s *ctxSource) ForEachBlocks(f func(base int, edges []graph.Edge) bool) {
	stream.ForEachBlocks(s.inner, s.guardBlocks(f))
}

// SweepBlocks is the guarded un-metered block sweep.
func (s *ctxSource) SweepBlocks(f func(base int, edges []graph.Edge) bool) {
	stream.SweepBlocks(s.inner, s.guardBlocks(f))
}

// ForEachBlocksParallel delegates to the inner source unguarded,
// exactly like ForEachParallel (see the type comment).
func (s *ctxSource) ForEachBlocksParallel(workers int, f func(base int, edges []graph.Edge)) {
	stream.ForEachBlocksParallel(s.inner, workers, f)
}

// SweepBlocksParallel delegates to the inner source unguarded.
func (s *ctxSource) SweepBlocksParallel(workers int, f func(base int, edges []graph.Edge)) {
	stream.SweepBlocksParallel(s.inner, workers, f)
}
