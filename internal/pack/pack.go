// Package pack implements the fractional packing framework of Plotkin,
// Shmoys and Tardos as restated in Theorem 7 of the paper, with the
// Corollary 8 relaxation: the oracle may return any x̃ ∈ P with
// zᵀApx̃ <= (1+δ/2)·zᵀd. It is the inner loop of the dual-primal method
// (Theorem 4): the MicroOracle's Lagrangian answers are converted into
// packing-oracle answers by the ϱ binary search of Lemma 10, and this
// solver drives the packed system Pox <= 2qo to near-feasibility in
// O(ρi log ρi log ño) oracle calls.
package pack

import (
	"errors"
	"math"
)

// Status reports how a Solve run ended.
type Status int

const (
	// Solved: the row values reached λp <= 1+6δ.
	Solved Status = iota
	// OracleFailed: the oracle reported it cannot meet the Corollary 8
	// inequality (the packing system is infeasible over P).
	OracleFailed
	// IterLimit: the safety iteration cap was reached.
	IterLimit
)

// String renders the status for logs and errors.
func (s Status) String() string {
	switch s {
	case Solved:
		return "solved"
	case OracleFailed:
		return "oracle-failed"
	case IterLimit:
		return "iteration-limit"
	default:
		return "unknown"
	}
}

// Oracle receives multipliers z (one per row, normalized by d) and must
// return normalized row values a_r = (Apx̃)_r/d_r of a solution x̃ ∈ P
// with Σ z_r a_r <= (1+δ/2) Σ z_r, or ok=false.
type Oracle func(z []float64, step int) (rowValues []float64, ok bool)

// Options configures the solver.
type Options struct {
	// Delta is the packing accuracy δ (the dual-primal core uses ε/6).
	Delta float64
	// RhoPrime is the packing width ρ′: max over P of (Apx)_r/d_r.
	RhoPrime float64
	// MaxIters caps oracle calls; 0 derives the theorem bound.
	MaxIters int
	// OnPhase instruments phase boundaries.
	OnPhase func(iter int, lambdaP float64)
	// OnAccept, if non-nil, is called after each accepted oracle answer
	// with the step size σ′ used in x ← (1-σ′)x + σ′x̃, so callers can
	// mirror the framework's averaging on their own representation of x̃.
	OnAccept func(iter int, sigma float64)
}

// Result carries the outcome.
type Result struct {
	Rows    []float64
	LambdaP float64 // max row value
	Iters   int
	Status  Status
}

// Solve runs the packing framework from initial normalized row values
// (Apx0)_r/d_r for some x0 ∈ P (δ0 in the theorem is their maximum).
func Solve(initRows []float64, oracle Oracle, opt Options) (Result, error) {
	m := len(initRows)
	if m == 0 {
		return Result{Status: Solved}, nil
	}
	if !(opt.Delta > 0) || opt.Delta > 1 {
		return Result{}, errors.New("pack: Delta must be in (0, 1]")
	}
	if !(opt.RhoPrime > 0) {
		return Result{}, errors.New("pack: RhoPrime must be positive")
	}
	rows := append([]float64(nil), initRows...)
	lambdaP := maxOf(rows)
	delta := opt.Delta
	target := 1 + 6*delta
	maxIters := opt.MaxIters
	if maxIters == 0 {
		// Theorem 7's T = O(ρ′(δ⁻² + log δ0) log M′) with hidden
		// constant ~64.
		d0 := lambdaP
		if d0 < 1 {
			d0 = 1
		}
		t := opt.RhoPrime * (1/(delta*delta) + math.Log(d0)) * math.Log(float64(m)/delta)
		maxIters = int(64*t) + 64
	}
	z := make([]float64, m)
	iters := 0
	for lambdaP > target {
		lambdaT := lambdaP
		alpha := 2 * math.Log(float64(m)/delta) / (lambdaT * delta)
		// The classical step uses α λ_t >= ln(m/δ)/δ relative to the
		// *current* scale; σ' = δ/(4 α' ρ').
		sigma := delta / (4 * alpha * opt.RhoPrime)
		if opt.OnPhase != nil {
			opt.OnPhase(iters, lambdaP)
		}
		phaseEnd := lambdaT / 2
		if phaseEnd < target {
			phaseEnd = target
		}
		for lambdaP > phaseEnd {
			if iters >= maxIters {
				return Result{Rows: rows, LambdaP: lambdaP, Iters: iters, Status: IterLimit}, nil
			}
			maxR := maxOf(rows)
			for r := range z {
				z[r] = math.Exp(alpha * (rows[r] - maxR))
			}
			a, ok := oracle(z, iters)
			if !ok {
				return Result{Rows: rows, LambdaP: lambdaP, Iters: iters, Status: OracleFailed}, nil
			}
			if len(a) != m {
				return Result{}, errors.New("pack: oracle returned wrong row count")
			}
			for r := range rows {
				rows[r] = (1-sigma)*rows[r] + sigma*a[r]
			}
			if opt.OnAccept != nil {
				opt.OnAccept(iters, sigma)
			}
			lambdaP = maxOf(rows)
			iters++
		}
	}
	if opt.OnPhase != nil {
		opt.OnPhase(iters, lambdaP)
	}
	return Result{Rows: rows, LambdaP: lambdaP, Iters: iters, Status: Solved}, nil
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// CheckOracleInequality is a test helper verifying Corollary 8's
// contract.
func CheckOracleInequality(z, rowValues []float64, delta float64) bool {
	lhs, rhs := 0.0, 0.0
	for r := range z {
		lhs += z[r] * rowValues[r]
		rhs += z[r]
	}
	return lhs <= (1+delta/2)*rhs+1e-12
}
