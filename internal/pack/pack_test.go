package pack

import (
	"testing"

	"repro/internal/xrand"
)

// identityOracle: packing system I·x <= 1 over P = {x >= 0, Σx = s}. The
// oracle puts all mass on the smallest multiplier.
func identityOracle(m int, s, delta float64) Oracle {
	return func(z []float64, _ int) ([]float64, bool) {
		best, sum := 0, 0.0
		for r := range z {
			sum += z[r]
			if z[r] < z[best] {
				best = r
			}
		}
		if s*z[best] > (1+delta/2)*sum {
			return nil, false
		}
		a := make([]float64, m)
		a[best] = s
		return a, true
	}
}

func TestPackIdentityFeasible(t *testing.T) {
	const m = 8
	delta := 1.0 / 6
	s := 4.0 // fits: balanced x has max 0.5 <= 1
	init := make([]float64, m)
	init[0] = s // all mass on row 0: λp0 = s
	res, err := Solve(init, identityOracle(m, s, delta), Options{Delta: delta, RhoPrime: s})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Solved {
		t.Fatalf("status %v (λp %f, %d iters)", res.Status, res.LambdaP, res.Iters)
	}
	if res.LambdaP > 1+6*delta {
		t.Fatalf("λp %f above target", res.LambdaP)
	}
}

func TestPackAlreadyFeasible(t *testing.T) {
	init := []float64{0.5, 0.7}
	res, err := Solve(init, nil, Options{Delta: 0.1, RhoPrime: 2})
	if err != nil || res.Status != Solved || res.Iters != 0 {
		t.Fatalf("already-feasible start mishandled: %+v err=%v", res, err)
	}
}

func TestPackValidatesInput(t *testing.T) {
	if _, err := Solve([]float64{1}, nil, Options{Delta: 0, RhoPrime: 1}); err == nil {
		t.Fatal("delta=0 accepted")
	}
	if _, err := Solve([]float64{1}, nil, Options{Delta: 0.1, RhoPrime: 0}); err == nil {
		t.Fatal("rho'=0 accepted")
	}
}

func TestPackOracleFailurePropagates(t *testing.T) {
	init := []float64{5, 0}
	orc := func(z []float64, _ int) ([]float64, bool) { return nil, false }
	res, err := Solve(init, orc, Options{Delta: 0.1, RhoPrime: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != OracleFailed {
		t.Fatalf("status %v", res.Status)
	}
}

func TestPackIterLimit(t *testing.T) {
	m := 3
	stuck := func(z []float64, _ int) ([]float64, bool) {
		return []float64{5, 5, 5}, true
	}
	res, err := Solve([]float64{5, 5, 5}, stuck, Options{Delta: 0.1, RhoPrime: 5, MaxIters: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != IterLimit || res.Iters != 30 {
		t.Fatalf("status %v iters %d", res.Status, res.Iters)
	}
	_ = m
}

func TestPackMultipliersFavorHighRows(t *testing.T) {
	var captured []float64
	orc := func(z []float64, _ int) ([]float64, bool) {
		if captured == nil {
			captured = append([]float64(nil), z...)
		}
		return []float64{0, 0, 0}, true
	}
	init := []float64{4, 2, 1}
	if _, err := Solve(init, orc, Options{Delta: 0.1, RhoPrime: 4}); err != nil {
		t.Fatal(err)
	}
	if captured[0] <= captured[1] || captured[1] <= captured[2] {
		t.Fatalf("multipliers not increasing with row value: %v", captured)
	}
}

func TestPackRandomSystems(t *testing.T) {
	// Random packing: columns of A in [0, 1], P = {x >= 0, Σx = s} with s
	// small enough that balancing keeps every row below 1.
	for seed := uint64(0); seed < 10; seed++ {
		r := xrand.New(seed)
		m, n := 6, 5
		A := make([][]float64, m)
		for i := range A {
			A[i] = make([]float64, n)
			for j := range A[i] {
				A[i][j] = r.Float64()
			}
		}
		s := 1.2
		delta := 1.0 / 6
		orc := func(z []float64, _ int) ([]float64, bool) {
			bestJ, bestV := 0, 1e300
			for j := 0; j < n; j++ {
				v := 0.0
				for i := 0; i < m; i++ {
					v += z[i] * A[i][j]
				}
				if v < bestV {
					bestJ, bestV = j, v
				}
			}
			sum := 0.0
			for _, zv := range z {
				sum += zv
			}
			if s*bestV > (1+delta/2)*sum {
				return nil, false
			}
			a := make([]float64, m)
			for i := 0; i < m; i++ {
				a[i] = s * A[i][bestJ]
			}
			return a, true
		}
		init := make([]float64, m)
		for i := range init {
			init[i] = s * A[i][0]
		}
		res, err := Solve(init, orc, Options{Delta: delta, RhoPrime: s})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status == IterLimit {
			t.Fatalf("seed %d: iteration limit (λp %f)", seed, res.LambdaP)
		}
	}
}

func TestCheckOracleInequality(t *testing.T) {
	z := []float64{1, 1}
	if !CheckOracleInequality(z, []float64{1, 1}, 0.2) {
		t.Fatal("tight pack rejected")
	}
	if CheckOracleInequality(z, []float64{3, 3}, 0.2) {
		t.Fatal("overfull pack accepted")
	}
}
