package sketch

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func buildBank(t *testing.T, g *graph.Graph, seed uint64) *Bank {
	t.Helper()
	spec := NewIncidenceSpec(xrand.New(seed), g.N(), log2ceil(g.N())+3, 12, 8)
	bank := spec.NewBank()
	for _, e := range g.Edges() {
		bank.AddEdge(e.U, e.V)
	}
	return bank
}

func TestSampleCutEdge(t *testing.T) {
	// Path 0-1-2-3: cut {0,1} has exactly edge (1,2).
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	bank := buildBank(t, g, 21)
	u, v, ok := bank.SampleCutEdge(0, []int{0, 1})
	if !ok {
		t.Fatal("cut edge not found")
	}
	if graph.KeyOf(u, v) != graph.KeyOf(1, 2) {
		t.Fatalf("sampled (%d,%d), want (1,2)", u, v)
	}
}

func TestSampleCutEmpty(t *testing.T) {
	// Two disconnected edges: cut around one component is empty.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	bank := buildBank(t, g, 22)
	if _, _, ok := bank.SampleCutEdge(0, []int{0, 1}); ok {
		t.Fatal("sampled an edge from an empty cut")
	}
}

func TestInternalEdgesCancel(t *testing.T) {
	// Triangle: merging all three vertices leaves the zero vector.
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 1)
	bank := buildBank(t, g, 23)
	merged := bank.MergeCut(0, []int{0, 1, 2})
	if _, _, ok := merged.Sample(); ok {
		t.Fatal("internal edges did not cancel")
	}
}

func TestEdgeDeletion(t *testing.T) {
	g := graph.New(3)
	spec := NewIncidenceSpec(xrand.New(24), 3, 4, 8, 8)
	bank := spec.NewBank()
	_ = g
	bank.AddEdge(0, 1)
	bank.AddEdge(1, 2)
	bank.RemoveEdge(0, 1)
	u, v, ok := bank.SampleCutEdge(0, []int{0, 1})
	if !ok || graph.KeyOf(u, v) != graph.KeyOf(1, 2) {
		t.Fatalf("after deletion sampled (%d,%d,%v), want (1,2)", u, v, ok)
	}
}

func TestSpanningForestConnected(t *testing.T) {
	g := graph.GNM(60, 300, graph.WeightConfig{}, 25)
	_, comps := g.ConnectedComponents()
	bank := buildBank(t, g, 26)
	forest, uf, err := bank.SpanningForest()
	if err != nil {
		t.Fatal(err)
	}
	if uf.Components() != comps {
		t.Fatalf("sketch forest found %d components, true %d", uf.Components(), comps)
	}
	if len(forest) != g.N()-comps {
		t.Fatalf("forest has %d edges, want %d", len(forest), g.N()-comps)
	}
	// Every forest edge must be a real edge.
	real := map[uint64]bool{}
	for _, e := range g.Edges() {
		real[e.Key()] = true
	}
	for _, e := range forest {
		if !real[e.Key()] {
			t.Fatalf("forest edge (%d,%d) not in graph", e.U, e.V)
		}
	}
}

func TestSpanningForestDisconnected(t *testing.T) {
	g := graph.New(9)
	// Three triangles.
	for tIdx := 0; tIdx < 3; tIdx++ {
		a := 3 * tIdx
		g.MustAddEdge(a, a+1, 1)
		g.MustAddEdge(a+1, a+2, 1)
		g.MustAddEdge(a, a+2, 1)
	}
	bank := buildBank(t, g, 27)
	forest, uf, err := bank.SpanningForest()
	if err != nil {
		t.Fatal(err)
	}
	if uf.Components() != 3 || len(forest) != 6 {
		t.Fatalf("components=%d forest=%d, want 3 and 6", uf.Components(), len(forest))
	}
}

func TestSpanningForestPath(t *testing.T) {
	// Worst case for Boruvka depth: long path.
	const n = 64
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	bank := buildBank(t, g, 28)
	_, uf, err := bank.SpanningForest()
	if err != nil {
		t.Fatal(err)
	}
	if uf.Components() != 1 {
		t.Fatalf("path not connected by sketch forest: %d comps", uf.Components())
	}
}

func TestBankWordsAccounting(t *testing.T) {
	spec := NewIncidenceSpec(xrand.New(29), 10, 3, 4, 4)
	bank := spec.NewBank()
	total := 0
	for v := 0; v < 10; v++ {
		total += bank.VertexWords(v)
	}
	if total != bank.Words() {
		t.Fatalf("per-vertex words %d != total %d", total, bank.Words())
	}
}
